package checker_test

// The relative differential suite: the tail tier (req high-tail, biased
// low-tail) driven through the full workload matrix — plain, sharded,
// keyed, and weighted — against rank.RelativeOracle, with the req cells
// gated at EXACT eps, no slack: max relative rank error ≤ ε at every ϕ
// including the tail column ϕ ∈ {0.999, 0.9999}, where the budget shrinks
// below one item and the gate degenerates to an exactness assertion. A
// uniform family is also driven through the same gate and must FAIL it
// somewhere: that is the matrix's teeth — uniform ε·N error is useless in
// the tail, which is why the relative tier exists.

import (
	"testing"

	"quantilelb/internal/biased"
	"quantilelb/internal/checker"
	"quantilelb/internal/gk"
	"quantilelb/internal/req"
	"quantilelb/internal/sharded"
	"quantilelb/internal/store"
	"quantilelb/internal/summary"
)

// relCases is the relative family table: req plain and sharded at the
// strict high-tail gate, biased at its documented low-tail allowance
// (ε·(1+2ε) multiplicative — the compress/query slack its GK-style
// invariant carries — plus 2 items for integer rounding at rank 1).
func relCases() []checker.RelativeCase {
	return []checker.RelativeCase{
		{Name: "req", Eps: diffEps,
			New: func() summary.Summary[float64] { return req.NewFloat64(diffEps) }},
		{Name: "sharded-req", Eps: diffEps,
			New: func() summary.Summary[float64] {
				return sharded.New(func() *req.Summary { return req.NewFloat64(diffEps) }, 8)
			}},
		{Name: "biased", Eps: diffEps * (1 + 2*diffEps), LowTail: true, SlackAdd: 2,
			New: func() summary.Summary[float64] { return biased.NewFloat64(diffEps) }},
	}
}

// TestRelativeDifferentialAllWorkloads is the suite: req plain and sharded
// plus low-tail biased, every workload including the paper's adversarial
// stream, every cell gated.
func TestRelativeDifferentialAllWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("full relative differential matrix")
	}
	workloads := diffWorkloads(t)
	results := checker.RunRelativeDifferential(relCases(), workloads, diffGrid)
	wantCells := len(relCases()) * len(workloads)
	if len(results) != wantCells {
		t.Fatalf("got %d cells, want %d", len(results), wantCells)
	}
	for _, r := range results {
		if !r.Pass {
			t.Errorf("%s/%s: %s", r.Case, r.Workload, r.Report)
		}
		// The tail column is the point of the tier: for req cells the
		// budget at phi=0.9999 is ε·(N/10⁴+1) ≈ 0.08 items, so any ratio
		// within eps means the answer was exact.
		if r.Case != "biased" {
			for i, tail := range r.Report.TailRelError {
				if tail > diffEps {
					t.Errorf("%s/%s: tail column phi=%v relative error %v exceeds eps %v",
						r.Case, r.Workload, checker.TailPhis[i], tail, diffEps)
				}
			}
		}
	}
}

// TestRelativeDifferentialKeyedStore drives the multi-tenant store with a
// req per-key factory through the same matrix: each workload partitioned
// over five keys (two carrying accuracy overrides), every key verified
// against its own exact substream at exactly its configured eps, no slack.
func TestRelativeDifferentialKeyedStore(t *testing.T) {
	if testing.Short() {
		t.Skip("keyed relative differential matrix")
	}
	keys := []string{"k0", "k1", "k2", "fine", "coarse"}
	newStore := func() *store.Store {
		return store.New(store.Config{
			Eps: diffEps,
			EpsOverrides: map[string]float64{
				"fine":   0.005,
				"coarse": 0.05,
			},
			Factory: func(eps float64) store.Summary { return req.NewFloat64(eps) },
		})
	}
	workloads := diffWorkloads(t)
	results := checker.RunKeyedRelativeDifferential(newStore, keys, workloads, diffGrid)
	if len(results) != len(keys)*len(workloads) {
		t.Fatalf("got %d cells, want %d", len(results), len(keys)*len(workloads))
	}
	for _, r := range results {
		if !r.Pass {
			t.Errorf("%s on %s: %s", r.Case, r.Workload, r.Report)
		}
	}
}

// TestRelativeDifferentialWeighted drives req's native weighted ingest
// through the weighted workload columns (including the heavy-hitter pattern
// and the weighted adversarial stream) under the weighted high-tail gate at
// exact eps: rank error ≤ ε·(W−t+1) in weight units.
func TestRelativeDifferentialWeighted(t *testing.T) {
	if testing.Short() {
		t.Skip("weighted relative differential matrix")
	}
	cases := []checker.WeightedCase{
		{Name: "weighted-req", Eps: wdiffEps,
			New: func(int64) checker.WeightedTarget { return req.NewFloat64(wdiffEps) }},
		{Name: "weighted-sharded-req", Eps: wdiffEps,
			New: func(int64) checker.WeightedTarget {
				return sharded.New(func() *req.Summary { return req.NewFloat64(wdiffEps) }, 8)
			}},
	}
	workloads := wdiffWorkloads(t)
	results := checker.RunWeightedRelativeDifferential(cases, workloads, wdiffGrid)
	if len(results) != len(cases)*len(workloads) {
		t.Fatalf("got %d cells, want %d", len(results), len(cases)*len(workloads))
	}
	for _, r := range results {
		if !r.Pass {
			t.Errorf("%s/%s: %s", r.Case, r.Workload, r.Report)
		}
	}
}

// TestUniformFamilyFailsRelativeGate pins the matrix's teeth: a uniform
// summary at the same eps must violate the high-tail relative gate on some
// workload. If GK ever passed everywhere, the gate would no longer be
// distinguishing relative from uniform accuracy.
func TestUniformFamilyFailsRelativeGate(t *testing.T) {
	if testing.Short() {
		t.Skip("relative matrix teeth")
	}
	failed := false
	for _, wl := range diffWorkloads(t) {
		s := gk.NewFloat64(diffEps)
		for _, x := range wl.Items {
			s.Update(x)
		}
		rep := checker.VerifyRelative(s, wl.Items, diffEps, diffGrid, 0)
		if !rep.Passed() {
			failed = true
			break
		}
	}
	if !failed {
		t.Fatal("gk passed the strict relative gate on every workload; the relative matrix has lost its teeth")
	}
}

// TestVerifyRelativeSemantics pins the verifier itself on a hand-built
// case: an exact summary reports zero worst error and passes; the report
// carries the tail column.
func TestVerifyRelativeSemantics(t *testing.T) {
	items := make([]float64, 20_000)
	for i := range items {
		items[i] = float64(i)
	}
	s := req.NewFloat64(0.01)
	s.UpdateBatch(items)
	rep := checker.VerifyRelative(s, items, 0.01, 100, 0)
	if !rep.Passed() {
		t.Fatalf("req on its own stream failed: %s", rep)
	}
	if rep.WorstRelError > 0.01 {
		t.Fatalf("worst relative error %v over eps", rep.WorstRelError)
	}
	if rep.N != len(items) || rep.QueriesChecked == 0 {
		t.Fatalf("malformed report: %s", rep)
	}
	// Empty data: a zero report that still passes.
	empty := checker.VerifyRelative(req.NewFloat64(0.1), nil, 0.1, 100, 0)
	if !empty.Passed() || empty.N != 0 || empty.QueriesChecked != 0 {
		t.Fatalf("empty-stream report malformed: %s", empty)
	}
}

// TestRelativeDifferentialLogTable dumps the T-series table recorded in
// EXPERIMENTS.md: the tail column (error in ε·(N−t+1) budget units at
// ϕ ∈ {0.999, 0.9999}) for the relative tier next to a uniform family at
// the same eps, whose tail ratios blow up exactly as the teeth test
// demands. Run with -v to see the table.
func TestRelativeDifferentialLogTable(t *testing.T) {
	if testing.Short() || !testing.Verbose() {
		t.Skip("table dump only under -v")
	}
	cases := append(relCases(), checker.RelativeCase{
		Name: "gk-uniform", Eps: diffEps,
		New: func() summary.Summary[float64] { return gk.NewFloat64(diffEps) },
	})
	results := checker.RunRelativeDifferential(cases, diffWorkloads(t), diffGrid)
	t.Logf("%-12s %-16s %8s %12s %12s %12s %8s %6s",
		"family", "workload", "N", "tail@.999", "tail@.9999", "worst", "stored", "pass")
	for _, r := range results {
		t.Logf("%-12s %-16s %8d %12.4f %12.4f %12.4f %8d %6v",
			r.Case, r.Workload, r.Report.N, r.Report.TailRelError[0], r.Report.TailRelError[1],
			r.Report.WorstRelError, r.Report.StoredItems, r.Pass)
	}
}
