package checker_test

// The cross-family differential suite: every summary family in the
// repository plus the multi-tenant keyed store, driven through the full
// workload matrix (including the paper's adversarial stream) against the
// exact oracle, asserting each family's accuracy bound — with documented
// slack for the randomized families — in one table. This is the canonical
// accuracy matrix; per-package tests keep their family-specific contracts
// (batch-vs-update equivalence, invariants) but new families get their
// accuracy coverage by adding one Case here.

import (
	"sync/atomic"
	"testing"

	"quantilelb/internal/bench"
	"quantilelb/internal/biased"
	"quantilelb/internal/capped"
	"quantilelb/internal/checker"
	"quantilelb/internal/fo"
	"quantilelb/internal/gk"
	"quantilelb/internal/kll"
	"quantilelb/internal/mlq"
	"quantilelb/internal/mrl"
	"quantilelb/internal/order"
	"quantilelb/internal/sampling"
	"quantilelb/internal/sharded"
	"quantilelb/internal/store"
	"quantilelb/internal/stream"
	"quantilelb/internal/summary"
	"quantilelb/internal/testseed"
	"quantilelb/internal/window"
)

const (
	diffN    = 30_000
	diffEps  = 0.02
	diffGrid = 200
	// randomizedSlack matches the CI benchdiff gate: KLL and the reservoir
	// carry a constant per-query failure probability, so their observed
	// error may exceed eps on some grids; 3x bounds an in-contract draw
	// while still catching real regressions.
	randomizedSlack = 3
)

// diffWorkloads materializes the full matrix: the six generator streams plus
// the paper's adversarial lower-bound stream.
func diffWorkloads(t testing.TB) []checker.Workload {
	t.Helper()
	gen := stream.NewGenerator(42)
	var out []checker.Workload
	for _, name := range []string{"sorted", "reverse", "shuffled", "zipf", "duplicates", "drift"} {
		st, err := gen.ByName(name, diffN)
		if err != nil {
			t.Fatalf("workload %s: %v", name, err)
		}
		out = append(out, checker.Workload{Name: st.Name(), Items: st.Items()})
	}
	adv, err := bench.AdversarialWorkload(diffN)
	if err != nil {
		t.Fatalf("adversarial workload: %v", err)
	}
	out = append(out, checker.Workload{Name: adv.Name, Items: adv.Items})
	return out
}

// diffCases is the family table. Every summary family of the facade appears:
// deterministic families gate at their exact eps, randomized families at
// randomizedSlack times it, biased at its relative-error guarantee, and the
// deliberately capacity-capped strawman records without gating (the lower
// bound proves it must fail somewhere — asserted separately below).
func diffCases(t testing.TB) []checker.Case {
	// Named base seeds so a CI failure in a randomized cell is reproducible
	// (and sweepable) from the log line via -quantile.seed.
	kllBase := testseed.For(t, "differential-kll", 100)
	resBase := testseed.For(t, "differential-reservoir", 200)
	foBase := testseed.For(t, "differential-fo", 300)
	var kllSeed, resSeed, foSeed atomic.Int64
	maxN := 2 * diffN
	return []checker.Case{
		{Name: "gk", Eps: diffEps,
			New: func() summary.Summary[float64] { return gk.NewFloat64(diffEps) }},
		{Name: "gk-greedy", Eps: diffEps,
			New: func() summary.Summary[float64] {
				return gk.NewWithPolicy(order.Floats[float64](), diffEps, gk.PolicyGreedy)
			}},
		{Name: "kll", Eps: diffEps, Slack: randomizedSlack,
			New: func() summary.Summary[float64] {
				return kll.NewFloat64(diffEps, kll.WithSeed(kllBase+kllSeed.Add(1)))
			}},
		{Name: "mrl", Eps: diffEps,
			New: func() summary.Summary[float64] { return mrl.NewFloat64(diffEps, maxN) }},
		{Name: "mlq", Eps: diffEps,
			New: func() summary.Summary[float64] { return mlq.NewFloat64(diffEps) }},
		{Name: "reservoir", Eps: diffEps, Slack: randomizedSlack,
			New: func() summary.Summary[float64] {
				return sampling.NewFloat64(diffEps, 0.01, resBase+resSeed.Add(1))
			}},
		{Name: "fo", Eps: diffEps, Slack: randomizedSlack,
			// Single-run smoke at the slack allowance; the exact-eps
			// statistical contract is TestRandomizedDifferentialStatisticalGate.
			New: func() summary.Summary[float64] {
				return fo.NewFloat64(fo.Config{Eps: diffEps, Delta: 0.01, Seed: foBase + foSeed.Add(1)})
			}},
		{Name: "sharded-fo", Eps: diffEps, Slack: randomizedSlack,
			New: func() summary.Summary[float64] {
				return sharded.New(func() *fo.Summary[float64] {
					return fo.NewFloat64(fo.Config{Eps: diffEps, Delta: 0.01, Seed: foBase + 100 + foSeed.Add(1)})
				}, 8)
			}},
		{Name: "biased", Eps: diffEps, Biased: true,
			New: func() summary.Summary[float64] { return biased.NewFloat64(diffEps) }},
		{Name: "window-full", Eps: diffEps,
			// Window sized to the whole stream: checked against the same
			// full-stream oracle as everyone else while paying the
			// block/expiry bookkeeping of the sliding-window reduction.
			New: func() summary.Summary[float64] { return window.NewFloat64(diffEps, maxN) }},
		{Name: "sharded-gk", Eps: diffEps,
			New: func() summary.Summary[float64] {
				return sharded.New(func() *gk.Summary[float64] { return gk.NewFloat64(diffEps) }, 8)
			}},
		{Name: "sharded-mlq", Eps: diffEps,
			New: func() summary.Summary[float64] {
				return sharded.New(func() *mlq.Summary { return mlq.NewFloat64(diffEps) }, 8)
			}},
		{Name: "capped-64", Eps: 0, // record-only: deliberately unsound
			New: func() summary.Summary[float64] { return capped.NewFloat64(64) }},
	}
}

// TestDifferentialAllFamiliesAllWorkloads is the suite: one table, every
// family, every workload, each gated cell within its family's bound.
func TestDifferentialAllFamiliesAllWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("full differential matrix")
	}
	workloads := diffWorkloads(t)
	results := checker.RunDifferential(diffCases(t), workloads, diffGrid)
	wantCells := len(diffCases(t)) * len(workloads)
	if len(results) != wantCells {
		t.Fatalf("got %d cells, want %d", len(results), wantCells)
	}
	cappedFailedSomewhere := false
	for _, r := range results {
		if r.Gated && !r.Pass {
			t.Errorf("%s/%s: %s", r.Case, r.Workload, r.Report)
		}
		if r.Case == "capped-64" && r.Report.WorstRankError > int(diffEps*float64(r.Report.N))+1 {
			cappedFailedSomewhere = true
		}
	}
	// The capacity-capped strawman must violate eps on some workload — that
	// is Theorem 2.2 biting: o((1/ε)·log εN) items cannot be ε-accurate
	// everywhere. A capped summary that passed every workload would mean the
	// matrix lost its adversarial teeth.
	if !cappedFailedSomewhere {
		t.Error("capped-64 stayed within eps on every workload; the matrix no longer exercises the lower bound")
	}
}

// TestDifferentialKeyedStore drives the multi-tenant store through the same
// matrix: each workload partitioned over seven keys (two of them carrying
// per-key accuracy overrides, finer and coarser), every key verified against
// its own exact substream at its own accuracy. This is the per-key eps
// assertion of the keyed tier.
func TestDifferentialKeyedStore(t *testing.T) {
	if testing.Short() {
		t.Skip("full keyed differential matrix")
	}
	keys := []string{"k0", "k1", "k2", "k3", "k4", "fine", "coarse"}
	newStore := func() *store.Store {
		return store.New(store.Config{
			Eps: diffEps,
			EpsOverrides: map[string]float64{
				"fine":   0.005,
				"coarse": 0.05,
			},
		})
	}
	workloads := diffWorkloads(t)
	results := checker.RunKeyedDifferential(newStore, keys, workloads, diffGrid, 1)
	if len(results) != len(keys)*len(workloads) {
		t.Fatalf("got %d cells, want %d", len(results), len(keys)*len(workloads))
	}
	for _, r := range results {
		if !r.Report.Passed() {
			t.Errorf("key %s on %s (eps=%g): %s", r.Key, r.Workload, r.Eps, r.Report)
		}
	}
}

// TestDifferentialKeyedStoreKLL runs the keyed matrix with a randomized
// per-key family, at the randomized slack: the store's guarantee is the
// factory family's guarantee, per key.
func TestDifferentialKeyedStoreKLL(t *testing.T) {
	if testing.Short() {
		t.Skip("keyed differential matrix (KLL)")
	}
	keys := []string{"a", "b", "c"}
	keyedBase := testseed.For(t, "differential-keyed-kll", 300)
	var seed atomic.Int64
	newStore := func() *store.Store {
		return store.New(store.Config{
			Eps: diffEps,
			Factory: func(eps float64) store.Summary {
				return kll.NewFloat64(eps, kll.WithSeed(keyedBase+seed.Add(1)))
			},
		})
	}
	results := checker.RunKeyedDifferential(newStore, keys, diffWorkloads(t), diffGrid, randomizedSlack)
	for _, r := range results {
		if !r.Report.Passed() {
			t.Errorf("KLL key %s on %s (eps=%g): %s", r.Key, r.Workload, r.Eps, r.Report)
		}
	}
}
