package checker

// Weighted differential harness: the weighted twin of RunDifferential. Every
// weighted-capable family is driven through a matrix of weighted workloads —
// items paired with positive integer weights — and verified against the
// exact weighted oracle of internal/rank: each ϕ-quantile answer must have
// weighted rank within ±ε·W of ⌊ϕW⌋ where W is the total weight, the
// guarantee the weighted GK generalization (Assadi et al., PAPERS.md)
// carries over from the unit-weight setting, and weighted rank estimates
// must land within the same allowance.

import (
	"quantilelb/internal/rank"
)

// WeightedTarget is what a weighted cell drives: a summary's native weighted
// ingest plus its query surface. Every natively weighted family (GK both
// policies, KLL, MRL, the reservoir), the sharded wrapper over one, and the
// per-key adapters of the keyed store satisfy it.
type WeightedTarget interface {
	WeightedUpdate(x float64, w int64)
	Query(phi float64) (float64, bool)
	EstimateRank(q float64) int
	Count() int
	StoredCount() int
}

// WeightedWorkload is one named, materialized weighted stream: parallel
// items and positive integer weights.
type WeightedWorkload struct {
	// Name identifies the workload ("uniform-weights", "weighted-adversarial", ...).
	Name string
	// Items is the stream; Weights carries one positive weight per item.
	Items   []float64
	Weights []int64
}

// TotalWeight returns W = Σ weights, the expanded length of the workload.
func (w WeightedWorkload) TotalWeight() int64 {
	var total int64
	for _, wt := range w.Weights {
		total += wt
	}
	return total
}

// WeightedCase is one weighted-capable summary family of the matrix.
type WeightedCase struct {
	// Name identifies the family in reports ("weighted-gk", ...).
	Name string
	// New builds a fresh weighted target for one cell; totalW is the
	// workload's total weight, for families that must declare the expanded
	// stream length up front (MRL).
	New func(totalW int64) WeightedTarget
	// Eps is the accuracy bound to assert against ε·W.
	Eps float64
	// Slack multiplies the allowance for randomized families, as in Case.
	Slack float64
}

// VerifyWeightedUniform checks the weighted uniform guarantee of a summary
// that ingested the given weighted stream: `grid`+1 evenly spaced quantile
// queries, each answer's weighted rank within ±ε·W of its target, plus a
// weighted rank-estimation sweep over the distinct items under the same
// allowance (folded into the same Report; a rank estimate off by more than
// the allowance counts as a failure). Report.N carries the total weight W.
func VerifyWeightedUniform(s WeightedTarget, items []float64, weights []int64, eps float64, grid int) Report {
	if grid < 1 {
		grid = 1
	}
	oracle := rank.Float64WeightedOracle(items, weights)
	totalW := oracle.TotalWeight()
	rep := Report{N: int(totalW), Eps: eps, StoredItems: s.StoredCount()}
	if totalW == 0 {
		return rep
	}
	allowance := eps * float64(totalW)
	totalErr := int64(0)
	for i := 0; i <= grid; i++ {
		phi := float64(i) / float64(grid)
		got, ok := s.Query(phi)
		if !ok {
			rep.Failures++
			continue
		}
		rep.QueriesChecked++
		e := oracle.RankError(got, phi)
		totalErr += e
		if int(e) > rep.WorstRankError {
			rep.WorstRankError = int(e)
			rep.WorstPhi = phi
		}
		if float64(e) > allowance+1e-9 {
			rep.Failures++
		}
	}
	if rep.QueriesChecked > 0 {
		rep.MeanRankError = float64(totalErr) / float64(rep.QueriesChecked)
	}
	// Weighted rank estimation: sample the stream's own items as queries.
	step := len(items) / grid
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(items); i += step {
		q := items[i]
		est := int64(s.EstimateRank(q))
		exact := oracle.RankLE(q)
		e := est - exact
		if e < 0 {
			e = -e
		}
		if int(e) > rep.WorstRankError {
			rep.WorstRankError = int(e)
		}
		if float64(e) > allowance+1e-9 {
			rep.Failures++
		}
	}
	return rep
}

// RunWeightedDifferential drives every weighted case through every weighted
// workload and returns one result per cell, in (workload-major, case-minor)
// order, mirroring RunDifferential. Each cell builds a fresh target, ingests
// the workload pair-at-a-time through WeightedUpdate, and verifies it with
// VerifyWeightedUniform at allowance Slack·ε·W.
func RunWeightedDifferential(cases []WeightedCase, workloads []WeightedWorkload, grid int) []DiffResult {
	out := make([]DiffResult, 0, len(cases)*len(workloads))
	for _, wl := range workloads {
		totalW := wl.TotalWeight()
		for _, c := range cases {
			s := c.New(totalW)
			for i, x := range wl.Items {
				s.WeightedUpdate(x, wl.Weights[i])
			}
			if r, ok := s.(refresher); ok {
				r.Refresh()
			}
			slack := c.Slack
			if slack <= 0 {
				slack = 1
			}
			rep := VerifyWeightedUniform(s, wl.Items, wl.Weights, c.Eps*slack, grid)
			res := DiffResult{
				Case:     c.Name,
				Workload: wl.Name,
				Report:   rep,
				Gated:    c.Eps > 0,
			}
			res.Pass = !res.Gated || rep.Passed()
			out = append(out, res)
		}
	}
	return out
}
