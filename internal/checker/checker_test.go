package checker

import (
	"strings"
	"testing"

	"quantilelb/internal/biased"
	"quantilelb/internal/capped"
	"quantilelb/internal/gk"
	"quantilelb/internal/order"
	"quantilelb/internal/stream"
	"quantilelb/internal/summary"
)

func buildGK(eps float64, data []float64) summary.Summary[float64] {
	s := gk.NewFloat64(eps)
	for _, x := range data {
		s.Update(x)
	}
	return s
}

func TestVerifyUniformPassesForGK(t *testing.T) {
	gen := stream.NewGenerator(1)
	st := gen.Uniform(20000)
	eps := 0.02
	s := buildGK(eps, st.Items())
	rep := VerifyUniform(order.Floats[float64](), s, st.Items(), eps, 500)
	if !rep.Passed() {
		t.Fatalf("GK should pass: %s", rep)
	}
	if rep.QueriesChecked != 501 {
		t.Errorf("expected 501 queries, got %d", rep.QueriesChecked)
	}
	if rep.StoredItems != s.StoredCount() {
		t.Errorf("stored items not recorded")
	}
	if rep.N != 20000 {
		t.Errorf("N = %d", rep.N)
	}
	if !strings.HasPrefix(rep.String(), "PASS") {
		t.Errorf("String should start with PASS: %q", rep.String())
	}
}

func TestVerifyUniformFailsForTinyCappedSummary(t *testing.T) {
	gen := stream.NewGenerator(2)
	st := gen.Sorted(50000)
	eps := 0.001
	// Capacity 5 cannot achieve eps=0.001 on 50000 items.
	s := capped.NewFloat64(5)
	for _, x := range st.Items() {
		s.Update(x)
	}
	rep := VerifyUniform(order.Floats[float64](), s, st.Items(), eps, 200)
	if rep.Passed() {
		t.Fatalf("capacity-5 summary should fail eps=0.001: %s", rep)
	}
	if !strings.HasPrefix(rep.String(), "FAIL") {
		t.Errorf("String should start with FAIL: %q", rep.String())
	}
	if rep.WorstRankError <= int(eps*float64(st.Len())) {
		t.Errorf("worst error should exceed the allowance")
	}
}

func TestVerifyUniformEmptyData(t *testing.T) {
	s := gk.NewFloat64(0.1)
	rep := VerifyUniform(order.Floats[float64](), s, nil, 0.1, 10)
	if rep.N != 0 || rep.QueriesChecked != 0 {
		t.Errorf("empty data should yield an empty report: %+v", rep)
	}
	if !rep.Passed() {
		t.Errorf("empty report should pass vacuously")
	}
}

func TestVerifyUniformGridClamp(t *testing.T) {
	gen := stream.NewGenerator(3)
	st := gen.Uniform(100)
	s := buildGK(0.1, st.Items())
	rep := VerifyUniform(order.Floats[float64](), s, st.Items(), 0.1, 0)
	if rep.QueriesChecked != 2 {
		t.Errorf("grid 0 should clamp to 1 (2 queries), got %d", rep.QueriesChecked)
	}
}

func TestVerifyBiased(t *testing.T) {
	gen := stream.NewGenerator(4)
	st := gen.Shuffled(20000)
	eps := 0.05
	s := biased.NewFloat64(eps)
	for _, x := range st.Items() {
		s.Update(x)
	}
	rep := VerifyBiased(order.Floats[float64](), s, st.Items(), eps, 300)
	if !rep.Passed() {
		t.Fatalf("biased summary should pass the relative-error check: %s", rep)
	}
	// A plain GK summary with the same uniform eps fails the *relative*
	// guarantee at low quantiles on a long stream... unless it happens to
	// keep low ranks exact; use a coarse GK to make the failure robust.
	coarse := buildGK(0.1, st.Items())
	rep2 := VerifyBiased(order.Floats[float64](), coarse, st.Items(), 0.1, 300)
	if rep2.WorstRankError == 0 {
		t.Errorf("expected the uniform summary to show some error under the biased metric")
	}
	// Empty data edge case.
	empty := biased.NewFloat64(0.1)
	rep3 := VerifyBiased(order.Floats[float64](), empty, nil, 0.1, 10)
	if rep3.N != 0 || !rep3.Passed() {
		t.Errorf("empty data should pass vacuously")
	}
}

func TestVerifyRanks(t *testing.T) {
	gen := stream.NewGenerator(5)
	st := gen.Uniform(30000)
	eps := 0.02
	s := buildGK(eps, st.Items())
	rep := VerifyRanks(order.Floats[float64](), s, st.Items(), eps, 200)
	if !rep.Passed() {
		t.Fatalf("GK rank estimates should pass: %+v", rep)
	}
	if rep.QueriesChecked == 0 {
		t.Errorf("no queries checked")
	}
	// Degenerate inputs.
	if got := VerifyRanks(order.Floats[float64](), s, nil, eps, 10); got.QueriesChecked != 0 {
		t.Errorf("empty data should check nothing")
	}
	if got := VerifyRanks(order.Floats[float64](), s, st.Items(), eps, 0); got.QueriesChecked != 0 {
		t.Errorf("zero samples should check nothing")
	}
}

func TestMaxGap(t *testing.T) {
	gen := stream.NewGenerator(6)
	st := gen.Shuffled(10000)
	eps := 0.01
	s := gk.NewFloat64(eps)
	for _, x := range st.Items() {
		s.Update(x)
	}
	gap := MaxGap[float64](order.Floats[float64](), s, st.Items())
	if gap <= 0 {
		t.Fatalf("gap should be positive")
	}
	if float64(gap) > 2*eps*float64(st.Len())+2 {
		t.Errorf("GK max gap %d exceeds 2εN", gap)
	}
	// A tiny capped summary has a much larger gap.
	c := capped.NewFloat64(4)
	for _, x := range st.Items() {
		c.Update(x)
	}
	cGap := MaxGap[float64](order.Floats[float64](), c, st.Items())
	if cGap <= gap {
		t.Errorf("capacity-4 summary should have a larger gap than GK: %d vs %d", cGap, gap)
	}
	// Empty summary: the gap is the whole stream.
	e := gk.NewFloat64(0.1)
	if got := MaxGap[float64](order.Floats[float64](), e, st.Items()); got != st.Len() {
		t.Errorf("empty summary gap = %d, want %d", got, st.Len())
	}
}
