package checker_test

// The trial-repetition statistical gate for randomized families: fo and the
// reservoir are run 100 independently seeded times per workload cell and
// judged on what their δ actually promises — median-of-trials worst error at
// the exact ε·N allowance (no randomized slack) and failure fraction at most
// δ plus the documented Chernoff term. This replaces the ad-hoc Slack
// multiplier as the accuracy contract for randomized families; the plain
// differential matrix keeps the slack only as a cheap single-run smoke.

import (
	"testing"

	"quantilelb/internal/checker"
	"quantilelb/internal/fo"
	"quantilelb/internal/sampling"
	"quantilelb/internal/summary"
	"quantilelb/internal/testseed"
)

const (
	// randTrials is the per-cell trial count; ≥100 keeps the Chernoff slack
	// below 0.19 at the gate's 1e-3 false-alarm probability.
	randTrials = 100
	// randDelta is the failure probability both families are configured
	// with and judged against.
	randDelta = 0.05
)

func randomizedCases() []checker.RandomizedCase {
	return []checker.RandomizedCase{
		{Name: "fo", Eps: diffEps, Delta: randDelta,
			New: func(seed int64) summary.Summary[float64] {
				return fo.NewFloat64(fo.Config{Eps: diffEps, Delta: randDelta, Seed: seed})
			}},
		{Name: "reservoir", Eps: diffEps, Delta: randDelta,
			New: func(seed int64) summary.Summary[float64] {
				return sampling.NewFloat64(diffEps, randDelta, seed)
			}},
	}
}

// TestRandomizedDifferentialStatisticalGate is the gate itself: every
// randomized family, every workload including the paper's adversarial
// stream, 100 seeded trials per cell, exact eps on the median.
func TestRandomizedDifferentialStatisticalGate(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical gate runs 100 trials per cell")
	}
	baseSeed := testseed.For(t, "randomized-differential", 5000)
	workloads := diffWorkloads(t)
	results := checker.RunRandomizedDifferential(randomizedCases(), workloads, diffGrid, randTrials, baseSeed)
	wantCells := len(randomizedCases()) * len(workloads)
	if len(results) != wantCells {
		t.Fatalf("got %d cells, want %d", len(results), wantCells)
	}
	for _, r := range results {
		t.Logf("%s/%s: median worst %.0f (allow %.0f), fail %.2f (limit %.2f), mean %.0f",
			r.Case, r.Workload, r.MedianWorst, r.Allowance, r.FailFraction, r.FailLimit, r.MeanWorst)
		if !r.Passed() {
			t.Errorf("%s/%s: median worst %.0f vs allowance %.0f, failure fraction %.2f vs limit %.2f",
				r.Case, r.Workload, r.MedianWorst, r.Allowance, r.FailFraction, r.FailLimit)
		}
	}
}

// TestChernoffSlackDocumentedValues pins the slack formula the gate and its
// documentation quote: sqrt(ln(1/γ)/(2·trials)).
func TestChernoffSlackDocumentedValues(t *testing.T) {
	got := checker.ChernoffSlack(100, 1e-3)
	if got < 0.185 || got > 0.187 {
		t.Errorf("ChernoffSlack(100, 1e-3) = %v, want ≈0.186", got)
	}
	if s := checker.ChernoffSlack(400, 1e-3); s >= got {
		t.Errorf("slack must shrink with more trials: %v vs %v", s, got)
	}
}
