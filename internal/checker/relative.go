package checker

// Relative differential harness: the tail-focused twin of RunDifferential.
// Where the uniform harness allows every query the same ±εN, the relative
// harness measures each answer's error in BUDGET UNITS against
// rank.RelativeOracle — ε·(N−t+1) for high-tail families (internal/req),
// ε·⌊ϕN⌋ for low-tail ones (internal/biased) — and gates the worst observed
// ratio at ε directly, with no slack unless a case declares one. A tail
// column records the ratio at ϕ ∈ {0.999, 0.9999} separately: those are the
// queries uniform summaries are useless for, and the budgets there shrink
// below one item, so the column doubles as an exactness assertion.

import (
	"fmt"

	"quantilelb/internal/rank"
	"quantilelb/internal/store"
	"quantilelb/internal/summary"
)

// TailPhis are the tail quantiles every relative cell reports separately:
// the p99.9/p99.99 SLO queries the relative-error tier exists for.
var TailPhis = [2]float64{0.999, 0.9999}

// RelativeReport summarizes the relative-error verification of one summary
// against one stream. Errors are in budget units (error ≤ Eps passes), so
// reports are comparable across quantiles and stream lengths.
type RelativeReport struct {
	// N is the stream length (total weight for weighted streams).
	N int
	// Eps is the relative accuracy the summary was checked against.
	Eps float64
	// QueriesChecked is the number of quantile queries issued.
	QueriesChecked int
	// WorstRelError is the largest error-to-budget ratio observed.
	WorstRelError float64
	// WorstPhi is the query at which the worst ratio occurred.
	WorstPhi float64
	// WorstRankError is the largest absolute rank error observed, in items.
	WorstRankError int
	// TailRelError holds the error-to-budget ratio at TailPhis, the
	// tail-focused column of the matrix.
	TailRelError [2]float64
	// Failures is the number of queries whose ratio exceeded the allowance.
	Failures int
	// StoredItems is the number of items the summary held when checked.
	StoredItems int
}

// Passed reports whether no query exceeded its allowance.
func (r RelativeReport) Passed() bool { return r.Failures == 0 }

// String renders a one-line human-readable description.
func (r RelativeReport) String() string {
	status := "PASS"
	if !r.Passed() {
		status = "FAIL"
	}
	return fmt.Sprintf("%s: %d queries, worst %.4f×budget (at phi=%.4f, %d items), tail %.4f/%.4f, eps %.4f, stored %d",
		status, r.QueriesChecked, r.WorstRelError, r.WorstPhi, r.WorstRankError,
		r.TailRelError[0], r.TailRelError[1], r.Eps, r.StoredItems)
}

// relativeGrid returns the ϕ values one relative verification sweeps: a
// uniform grid, a geometric from-the-top grid (top rank 1, 2, 4, ... so
// every budget scale in the accurate tail is exercised), its from-the-bottom
// mirror for low-tail families, and the TailPhis column.
func relativeGrid(n, grid int) []float64 {
	phis := make([]float64, 0, grid+64)
	for i := 0; i <= grid; i++ {
		phis = append(phis, float64(i)/float64(grid))
	}
	for r := 1; r < n; r *= 2 {
		phis = append(phis, float64(n-r)/float64(n)) // top rank r+1-ish
		phis = append(phis, float64(r)/float64(n))   // bottom rank r
	}
	phis = append(phis, TailPhis[0], TailPhis[1])
	return phis
}

// verifyRelativeQueries is the shared sweep: budget(phi) returns the
// query's budget in items (high- or low-tail convention), answer issues the
// query, oracleErr returns its absolute rank error.
func verifyRelativeQueries(rep *RelativeReport, n int, grid int, eps, slackAdd float64,
	budget func(phi float64) float64,
	answer func(phi float64) (float64, bool),
	oracleErr func(candidate float64, phi float64) int64,
) {
	for _, phi := range relativeGrid(n, grid) {
		got, ok := answer(phi)
		if !ok {
			rep.Failures++
			continue
		}
		rep.QueriesChecked++
		e := oracleErr(got, phi)
		b := budget(phi)
		if b <= 0 {
			b = 1
		}
		ratio := float64(e) / b
		if ratio > rep.WorstRelError {
			rep.WorstRelError = ratio
			rep.WorstPhi = phi
		}
		if int(e) > rep.WorstRankError {
			rep.WorstRankError = int(e)
		}
		for i, tp := range TailPhis {
			if phi == tp && ratio > rep.TailRelError[i] {
				rep.TailRelError[i] = ratio
			}
		}
		if float64(e) > eps*b+slackAdd+1e-9 {
			rep.Failures++
		}
	}
}

// VerifyRelative checks the high-tail relative guarantee of a summary on
// the given data: every answer's rank error at most ε·(N−t+1) (+slackAdd
// items), swept over `grid`+1 uniform queries plus geometric tail grids and
// the TailPhis column. slackAdd is 0 for the strict gate internal/req is
// held to.
func VerifyRelative(s summary.Summary[float64], data []float64, eps float64, grid int, slackAdd float64) RelativeReport {
	if grid < 1 {
		grid = 1
	}
	oracle := rank.NewRelativeOracle(data)
	n := oracle.Len()
	rep := RelativeReport{N: n, Eps: eps, StoredItems: s.StoredCount()}
	if n == 0 {
		return rep
	}
	verifyRelativeQueries(&rep, n, grid, eps, slackAdd,
		func(phi float64) float64 { return float64(oracle.TopRank(phi)) },
		s.Query,
		func(c float64, phi float64) int64 { return int64(oracle.RankError(c, phi)) },
	)
	return rep
}

// VerifyLowTailRelative checks the low-tail (biased) relative guarantee:
// every answer's rank error at most ε·⌊ϕN⌋ (+slackAdd items). The biased
// family's documented allowance carries a small additive slack for integer
// rounding at rank 1; pass it here rather than weakening the gate globally.
func VerifyLowTailRelative(s summary.Summary[float64], data []float64, eps float64, grid int, slackAdd float64) RelativeReport {
	if grid < 1 {
		grid = 1
	}
	oracle := rank.NewRelativeOracle(data)
	n := oracle.Len()
	rep := RelativeReport{N: n, Eps: eps, StoredItems: s.StoredCount()}
	if n == 0 {
		return rep
	}
	verifyRelativeQueries(&rep, n, grid, eps, slackAdd,
		func(phi float64) float64 { return float64(rank.QuantileRank(n, phi)) },
		s.Query,
		func(c float64, phi float64) int64 { return int64(oracle.RankError(c, phi)) },
	)
	return rep
}

// VerifyWeightedRelative checks the weighted high-tail relative guarantee:
// every answer's weighted rank error at most ε·(W−t+1) (+slackAdd), with
// budgets in weight units against the exact weighted relative oracle.
// Report.N carries the total weight W.
func VerifyWeightedRelative(s WeightedTarget, items []float64, weights []int64, eps float64, grid int, slackAdd float64) RelativeReport {
	if grid < 1 {
		grid = 1
	}
	oracle := rank.NewRelativeWeightedOracle(items, weights)
	totalW := oracle.TotalWeight()
	rep := RelativeReport{N: int(totalW), Eps: eps, StoredItems: s.StoredCount()}
	if totalW == 0 {
		return rep
	}
	verifyRelativeQueries(&rep, int(totalW), grid, eps, slackAdd,
		func(phi float64) float64 { return float64(oracle.TopRank(phi)) },
		s.Query,
		oracle.RankError,
	)
	return rep
}

// RelativeCase is one family driven through the relative differential
// matrix.
type RelativeCase struct {
	// Name identifies the family in reports ("req", "sharded-req", ...).
	Name string
	// New builds a fresh summary for one (case, workload) cell.
	New func() summary.Summary[float64]
	// Eps is the relative accuracy bound to assert.
	Eps float64
	// LowTail switches the budget convention to ε·⌊ϕN⌋ (the biased family);
	// the default is the high-tail ε·(N−t+1) convention of internal/req.
	LowTail bool
	// SlackAdd is an additive allowance in items, 0 for the strict gate.
	// The biased family's documented guarantee carries +2 for integer
	// rounding at the lowest ranks; req cases leave it 0.
	SlackAdd float64
}

// RelativeResult is one (case, workload) cell of the relative matrix.
type RelativeResult struct {
	// Case and Workload name the cell.
	Case, Workload string
	// Report is the full relative verification report of the cell.
	Report RelativeReport
	// Pass is whether the cell's gate held.
	Pass bool
}

// RunRelativeDifferential drives every case through every workload and
// returns one result per cell, in (workload-major, case-minor) order. Each
// cell builds a fresh summary, ingests the workload item-at-a-time, and
// verifies the relative guarantee in the case's budget convention at exact
// ε (plus the case's declared additive slack only).
func RunRelativeDifferential(cases []RelativeCase, workloads []Workload, grid int) []RelativeResult {
	out := make([]RelativeResult, 0, len(cases)*len(workloads))
	for _, wl := range workloads {
		for _, c := range cases {
			s := c.New()
			for _, x := range wl.Items {
				s.Update(x)
			}
			if r, ok := s.(refresher); ok {
				r.Refresh()
			}
			var rep RelativeReport
			if c.LowTail {
				rep = VerifyLowTailRelative(s, wl.Items, c.Eps, grid, c.SlackAdd)
			} else {
				rep = VerifyRelative(s, wl.Items, c.Eps, grid, c.SlackAdd)
			}
			out = append(out, RelativeResult{
				Case:     c.Name,
				Workload: wl.Name,
				Report:   rep,
				Pass:     rep.Passed(),
			})
		}
	}
	return out
}

// RunKeyedRelativeDifferential drives a multi-tenant store through every
// workload under the high-tail relative gate: each workload's items are
// partitioned round-robin over the given keys (ingested per key through the
// store's batched hot path), and every key's answers are verified against
// that key's own exact substream at exactly EpsFor(key) — the keyed tier
// must deliver the relative guarantee per key, simultaneously across keys.
func RunKeyedRelativeDifferential(newStore func() *store.Store, keys []string, workloads []Workload, grid int) []RelativeResult {
	out := make([]RelativeResult, 0, len(keys)*len(workloads))
	for _, wl := range workloads {
		st := newStore()
		parts := make(map[string][]float64, len(keys))
		for i, x := range wl.Items {
			k := keys[i%len(keys)]
			parts[k] = append(parts[k], x)
		}
		for _, k := range keys {
			st.UpdateBatch(k, parts[k])
		}
		for _, k := range keys {
			rep := VerifyRelative(keyAsSummary{st: st, key: k}, parts[k], st.EpsFor(k), grid, 0)
			out = append(out, RelativeResult{
				Case:     "key:" + k,
				Workload: wl.Name,
				Report:   rep,
				Pass:     rep.Passed(),
			})
		}
	}
	return out
}

// RunWeightedRelativeDifferential drives every weighted case through every
// weighted workload under the weighted high-tail relative gate, mirroring
// RunWeightedDifferential: each cell builds a fresh target, ingests the
// workload pair-at-a-time through WeightedUpdate, and verifies it with
// VerifyWeightedRelative at exact ε.
func RunWeightedRelativeDifferential(cases []WeightedCase, workloads []WeightedWorkload, grid int) []RelativeResult {
	out := make([]RelativeResult, 0, len(cases)*len(workloads))
	for _, wl := range workloads {
		totalW := wl.TotalWeight()
		for _, c := range cases {
			s := c.New(totalW)
			for i, x := range wl.Items {
				s.WeightedUpdate(x, wl.Weights[i])
			}
			if r, ok := s.(refresher); ok {
				r.Refresh()
			}
			rep := VerifyWeightedRelative(s, wl.Items, wl.Weights, c.Eps, grid, 0)
			out = append(out, RelativeResult{
				Case:     c.Name,
				Workload: wl.Name,
				Report:   rep,
				Pass:     rep.Passed(),
			})
		}
	}
	return out
}
