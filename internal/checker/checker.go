// Package checker verifies the accuracy guarantees of quantile summaries
// against ground truth. It is the measurement harness used by the
// experiments: given a summary and the stream it processed, it checks every
// quantile query (on a dense grid of ϕ values), every rank query, and reports
// the worst observed errors.
//
// Terminology follows the paper: a summary passes the uniform guarantee when
// every ϕ-quantile answer has rank within ±εN of ⌊ϕN⌋, and the biased
// (relative-error) guarantee when the error is within ±εϕN.
package checker

import (
	"fmt"
	"math"

	"quantilelb/internal/order"
	"quantilelb/internal/rank"
	"quantilelb/internal/summary"
)

// Report summarizes the verification of one summary against one stream.
type Report struct {
	// N is the stream length.
	N int
	// Eps is the accuracy the summary was checked against.
	Eps float64
	// QueriesChecked is the number of quantile queries issued.
	QueriesChecked int
	// WorstRankError is the largest absolute rank error observed.
	WorstRankError int
	// WorstPhi is the query at which the worst error occurred.
	WorstPhi float64
	// Failures is the number of queries whose error exceeded the allowance.
	Failures int
	// MeanRankError is the mean absolute rank error over all queries.
	MeanRankError float64
	// StoredItems is the number of items the summary held when checked.
	StoredItems int
}

// Passed reports whether no query exceeded its allowance.
func (r Report) Passed() bool { return r.Failures == 0 }

// String renders a one-line human-readable description.
func (r Report) String() string {
	status := "PASS"
	if !r.Passed() {
		status = "FAIL"
	}
	return fmt.Sprintf("%s: %d queries, worst error %d (at phi=%.4f), mean %.1f, allowance %.1f, stored %d",
		status, r.QueriesChecked, r.WorstRankError, r.WorstPhi, r.MeanRankError, r.Eps*float64(r.N), r.StoredItems)
}

// VerifyUniform checks the uniform ε-approximation guarantee of the summary
// on the given data, issuing `grid`+1 evenly spaced quantile queries.
func VerifyUniform[T any](cmp order.Comparator[T], s summary.Summary[T], data []T, eps float64, grid int) Report {
	if grid < 1 {
		grid = 1
	}
	oracle := rank.NewOracle(cmp, data)
	n := oracle.Len()
	rep := Report{N: n, Eps: eps, StoredItems: s.StoredCount()}
	if n == 0 {
		return rep
	}
	allowance := eps * float64(n)
	totalErr := 0
	for i := 0; i <= grid; i++ {
		phi := float64(i) / float64(grid)
		got, ok := s.Query(phi)
		if !ok {
			rep.Failures++
			continue
		}
		rep.QueriesChecked++
		e := oracle.RankError(got, phi)
		totalErr += e
		if e > rep.WorstRankError {
			rep.WorstRankError = e
			rep.WorstPhi = phi
		}
		if float64(e) > allowance+1e-9 {
			rep.Failures++
		}
	}
	if rep.QueriesChecked > 0 {
		rep.MeanRankError = float64(totalErr) / float64(rep.QueriesChecked)
	}
	return rep
}

// VerifyBiased checks the relative-error guarantee (Section 6.4): for each
// query ϕ the allowed rank error is ε·⌊ϕN⌋ (plus a +2 additive slack for
// integer rounding at very low ranks).
func VerifyBiased[T any](cmp order.Comparator[T], s summary.Summary[T], data []T, eps float64, grid int) Report {
	if grid < 1 {
		grid = 1
	}
	oracle := rank.NewOracle(cmp, data)
	n := oracle.Len()
	rep := Report{N: n, Eps: eps, StoredItems: s.StoredCount()}
	if n == 0 {
		return rep
	}
	totalErr := 0
	for i := 1; i <= grid; i++ {
		// Geometric grid emphasises the low quantiles where the biased
		// guarantee is strongest.
		phi := math.Pow(float64(i)/float64(grid), 2)
		if phi <= 0 {
			continue
		}
		got, ok := s.Query(phi)
		if !ok {
			rep.Failures++
			continue
		}
		rep.QueriesChecked++
		e := oracle.RankError(got, phi)
		totalErr += e
		if e > rep.WorstRankError {
			rep.WorstRankError = e
			rep.WorstPhi = phi
		}
		allowance := eps*(1+2*eps)*float64(rank.QuantileRank(n, phi)) + 2
		if float64(e) > allowance {
			rep.Failures++
		}
	}
	if rep.QueriesChecked > 0 {
		rep.MeanRankError = float64(totalErr) / float64(rep.QueriesChecked)
	}
	return rep
}

// RankReport summarizes rank-estimation verification.
type RankReport struct {
	// N is the stream length, QueriesChecked the number of rank queries.
	N, QueriesChecked int
	// WorstError is the largest absolute rank-estimation error.
	WorstError int
	// Failures counts queries whose error exceeded εN.
	Failures int
}

// Passed reports whether no rank query exceeded the allowance.
func (r RankReport) Passed() bool { return r.Failures == 0 }

// VerifyRanks checks the Estimating Rank guarantee (Section 6.2): for each of
// the stream's own items used as a query (sampled down to at most `samples`
// queries), the estimate must be within ±εN of the true count.
func VerifyRanks[T any](cmp order.Comparator[T], s summary.Summary[T], data []T, eps float64, samples int) RankReport {
	oracle := rank.NewOracle(cmp, data)
	n := oracle.Len()
	rep := RankReport{N: n}
	if n == 0 || samples < 1 {
		return rep
	}
	step := n / samples
	if step < 1 {
		step = 1
	}
	allowance := eps * float64(n)
	sorted := oracle.Sorted()
	for i := 0; i < n; i += step {
		q := sorted[i]
		est := s.EstimateRank(q)
		exact := oracle.RankLE(q)
		e := est - exact
		if e < 0 {
			e = -e
		}
		rep.QueriesChecked++
		if e > rep.WorstError {
			rep.WorstError = e
		}
		if float64(e) > allowance+1e-9 {
			rep.Failures++
		}
	}
	return rep
}

// MaxGap returns the largest difference between the ranks of consecutive
// stored items of the summary with respect to the data (plus the boundary
// gaps below the smallest and above the largest stored item). By the
// argument of Section 3 of the paper, a summary can only answer every
// quantile query within εN if this gap is at most 2εN (+O(1)).
func MaxGap[T any](cmp order.Comparator[T], s summary.Inspectable[T], data []T) int {
	oracle := rank.NewOracle(cmp, data)
	stored := s.StoredItems()
	if len(stored) == 0 {
		return oracle.Len()
	}
	maxGap := 0
	prevRank := 0
	for _, x := range stored {
		r := oracle.RankLE(x)
		if g := r - prevRank; g > maxGap {
			maxGap = g
		}
		prevRank = r
	}
	if g := oracle.Len() - prevRank; g > maxGap {
		maxGap = g
	}
	return maxGap
}
