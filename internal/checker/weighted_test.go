package checker_test

// The weighted differential suite: every weighted-capable family — the four
// natively weighted summaries, the sharded wrapper, and the keyed store —
// driven through weighted workload columns (uniform, skewed, heavy-hitter
// weight patterns over the generator streams, plus a weighted variant of the
// paper's adversarial stream) against the exact weighted oracle. Each gated
// cell must answer every quantile and rank query within ±ε·W of the
// weight-expanded ground truth.

import (
	"sync/atomic"
	"testing"

	"quantilelb/internal/bench"
	"quantilelb/internal/checker"
	"quantilelb/internal/gk"
	"quantilelb/internal/kll"
	"quantilelb/internal/mlq"
	"quantilelb/internal/mrl"
	"quantilelb/internal/order"
	"quantilelb/internal/sampling"
	"quantilelb/internal/sharded"
	"quantilelb/internal/store"
	"quantilelb/internal/stream"
)

const (
	wdiffN    = 12_000
	wdiffEps  = 0.02
	wdiffGrid = 100
)

// weightsFor derives a deterministic weight column for a stream: a named
// pattern, independent of any RNG so cells are reproducible byte-for-byte.
func weightsFor(n int, pattern string) []int64 {
	ws := make([]int64, n)
	for i := range ws {
		switch pattern {
		case "unit":
			ws[i] = 1
		case "uniform":
			ws[i] = int64(i%16) + 1
		case "skewed":
			// Mostly light with a power-of-two ladder of heavy items.
			ws[i] = int64(i%4) + 1
			if i%127 == 0 {
				ws[i] <<= 8 // ×256
			}
		case "heavy-hitter":
			ws[i] = 1
		default:
			panic("unknown weight pattern " + pattern)
		}
	}
	if pattern == "heavy-hitter" {
		// One item carries a third of the total weight: the regime where a
		// summary that mishandles runs fails loudest.
		ws[n/2] = int64(n) / 2
	}
	return ws
}

// wdiffWorkloads materializes the weighted matrix: shuffled and zipf item
// streams under each weight pattern, plus the paper's adversarial stream
// carrying cycling weights (the weighted variant of the lower-bound input).
func wdiffWorkloads(t testing.TB) []checker.WeightedWorkload {
	t.Helper()
	gen := stream.NewGenerator(99)
	var out []checker.WeightedWorkload
	for _, streamName := range []string{"shuffled", "zipf"} {
		st, err := gen.ByName(streamName, wdiffN)
		if err != nil {
			t.Fatalf("workload %s: %v", streamName, err)
		}
		for _, pattern := range []string{"unit", "uniform", "skewed", "heavy-hitter"} {
			out = append(out, checker.WeightedWorkload{
				Name:    streamName + "/" + pattern,
				Items:   st.Items(),
				Weights: weightsFor(len(st.Items()), pattern),
			})
		}
	}
	adv, err := bench.AdversarialWorkload(wdiffN)
	if err != nil {
		t.Fatalf("adversarial workload: %v", err)
	}
	out = append(out, checker.WeightedWorkload{
		Name:    "weighted-adversarial",
		Items:   adv.Items,
		Weights: weightsFor(len(adv.Items), "uniform"),
	})
	return out
}

// storeKeyTarget adapts one key of a multi-tenant store to the weighted
// harness, so the keyed tier's weighted path is checked by the same suite.
type storeKeyTarget struct {
	t   *testing.T
	st  *store.Store
	key string
}

func (k storeKeyTarget) WeightedUpdate(x float64, w int64) {
	if err := k.st.WeightedUpdate(k.key, x, w); err != nil {
		k.t.Fatalf("store weighted update: %v", err)
	}
}
func (k storeKeyTarget) Query(phi float64) (float64, bool) { return k.st.Query(k.key, phi) }
func (k storeKeyTarget) EstimateRank(q float64) int        { return k.st.EstimateRank(k.key, q) }
func (k storeKeyTarget) Count() int                        { return k.st.Count(k.key) }
func (k storeKeyTarget) StoredCount() int                  { return k.st.StoredCount(k.key) }

// wdiffCases is the weighted family table: deterministic families gate at
// their exact ε·W, randomized families at the same documented slack as the
// unweighted matrix.
func wdiffCases(t *testing.T) []checker.WeightedCase {
	var kllSeed, resSeed atomic.Int64
	return []checker.WeightedCase{
		{Name: "gk", Eps: wdiffEps,
			New: func(int64) checker.WeightedTarget { return gk.NewFloat64(wdiffEps) }},
		{Name: "gk-greedy", Eps: wdiffEps,
			New: func(int64) checker.WeightedTarget {
				return gk.NewWithPolicy(order.Floats[float64](), wdiffEps, gk.PolicyGreedy)
			}},
		{Name: "kll", Eps: wdiffEps, Slack: randomizedSlack,
			New: func(int64) checker.WeightedTarget {
				return kll.NewFloat64(wdiffEps, kll.WithSeed(500+kllSeed.Add(1)))
			}},
		{Name: "mrl", Eps: wdiffEps,
			// MRL needs the expanded stream length declared up front: the
			// workload's total weight.
			New: func(totalW int64) checker.WeightedTarget {
				return mrl.NewFloat64(wdiffEps, int(totalW))
			}},
		{Name: "mlq", Eps: wdiffEps,
			New: func(int64) checker.WeightedTarget { return mlq.NewFloat64(wdiffEps) }},
		{Name: "reservoir", Eps: wdiffEps, Slack: randomizedSlack,
			New: func(int64) checker.WeightedTarget {
				return sampling.NewFloat64(wdiffEps, 0.01, 600+resSeed.Add(1))
			}},
		{Name: "sharded-gk", Eps: wdiffEps,
			New: func(int64) checker.WeightedTarget {
				return sharded.New(func() *gk.Summary[float64] { return gk.NewFloat64(wdiffEps) }, 8)
			}},
		{Name: "store-gk", Eps: wdiffEps,
			New: func(int64) checker.WeightedTarget {
				return storeKeyTarget{t: t, st: store.New(store.Config{Eps: wdiffEps}), key: "metric"}
			}},
	}
}

// TestWeightedDifferentialAllFamilies is the weighted acceptance suite: one
// table, every weighted-capable family, every weighted workload — including
// the weighted adversarial stream — each cell's observed max weighted-rank
// error within Slack·ε·W.
func TestWeightedDifferentialAllFamilies(t *testing.T) {
	if testing.Short() {
		t.Skip("full weighted differential matrix")
	}
	workloads := wdiffWorkloads(t)
	cases := wdiffCases(t)
	results := checker.RunWeightedDifferential(cases, workloads, wdiffGrid)
	if want := len(cases) * len(workloads); len(results) != want {
		t.Fatalf("got %d cells, want %d", len(results), want)
	}
	for _, r := range results {
		if r.Gated && !r.Pass {
			t.Errorf("%s/%s: %s", r.Case, r.Workload, r.Report)
		}
	}
}

// TestWeightedDifferentialLogTable records the weighted matrix in verbose
// runs: the table EXPERIMENTS.md's W-series is regenerated from.
func TestWeightedDifferentialLogTable(t *testing.T) {
	if testing.Short() || !testing.Verbose() {
		t.Skip("table dump only under -v")
	}
	results := checker.RunWeightedDifferential(wdiffCases(t), wdiffWorkloads(t), wdiffGrid)
	t.Logf("%-12s %-24s %10s %12s %12s %8s", "family", "workload", "W", "worst_err", "allowance", "stored")
	for _, r := range results {
		t.Logf("%-12s %-24s %10d %12d %12.1f %8d",
			r.Case, r.Workload, r.Report.N, r.Report.WorstRankError,
			r.Report.Eps*float64(r.Report.N), r.Report.StoredItems)
	}
}
