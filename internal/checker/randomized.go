package checker

import (
	"math"
	"sort"

	"quantilelb/internal/order"
	"quantilelb/internal/rank"
	"quantilelb/internal/summary"
)

// RandomizedCase describes one randomized family under the trial-repetition
// statistical gate. Unlike Case, whose single run must land inside an ad-hoc
// Slack·ε·N allowance, a RandomizedCase is judged on the statistics its δ
// actually promises: many independently seeded trials per workload, the
// failure fraction bounded by δ plus an explicit Chernoff term, and the
// median trial held to the exact ε·N allowance with no slack at all.
type RandomizedCase struct {
	// Name labels the family in results.
	Name string
	// New builds a fresh summary for one trial; the seed differs per trial
	// and the factory must derive all randomness from it.
	New func(seed int64) summary.Summary[float64]
	// Eps is the rank-error target checked at the exact ε·N allowance.
	Eps float64
	// Delta is the failure probability the family claims for a whole query
	// grid: the probability that any grid query errs beyond ε·N.
	Delta float64
}

// RandomizedResult is the verdict for one (case, workload) cell.
type RandomizedResult struct {
	Case     string
	Workload string
	// Trials is the number of independently seeded runs.
	Trials int
	// MedianWorst is the median over trials of the per-trial worst rank
	// error on the grid; Allowance is the exact ε·N+1 it must not exceed.
	MedianWorst float64
	Allowance   float64
	// FailFraction is the fraction of trials whose worst error exceeded the
	// allowance; FailLimit is δ plus the Chernoff slack it is held to.
	FailFraction float64
	FailLimit    float64
	// MeanWorst is the mean of the per-trial worst errors (diagnostic).
	MeanWorst float64
}

// Passed reports whether the cell met both the median and the
// failure-fraction bounds.
func (r RandomizedResult) Passed() bool {
	return r.MedianWorst <= r.Allowance && r.FailFraction <= r.FailLimit
}

// ChernoffSlack returns the additive slack on an observed failure fraction
// over the given number of trials: by Hoeffding's inequality the empirical
// mean of trials i.i.d. indicator variables overshoots the true failure
// probability by more than sqrt(ln(1/γ)/(2·trials)) with probability at most
// γ, so a gate at δ + ChernoffSlack(trials, γ) false-alarms on a correct
// family with probability at most γ per cell.
func ChernoffSlack(trials int, gamma float64) float64 {
	return math.Sqrt(math.Log(1/gamma) / (2 * float64(trials)))
}

// RandomizedGateGamma is the per-cell false-alarm probability the gate's
// Chernoff slack is computed at.
const RandomizedGateGamma = 1e-3

// RunRandomizedDifferential runs the statistical gate: every case processes
// every workload in `trials` independently seeded runs (seeds baseSeed,
// baseSeed+1, …— reproducible from the log), and each cell is judged on
//
//   - the median of the per-trial worst rank errors at the exact ε·N+1
//     allowance (the +1 absorbs rank rounding, as in the benchdiff gate), and
//   - the fraction of trials whose worst error exceeded that allowance,
//     bounded by δ + ChernoffSlack(trials, RandomizedGateGamma).
//
// The exact rank oracle is built once per workload and shared across trials.
func RunRandomizedDifferential(cases []RandomizedCase, workloads []Workload, grid, trials int, baseSeed int64) []RandomizedResult {
	if grid < 1 {
		grid = 1
	}
	cmp := order.Floats[float64]()
	var results []RandomizedResult
	for _, wl := range workloads {
		oracle := rank.NewOracle(cmp, wl.Items)
		n := oracle.Len()
		for _, c := range cases {
			allowance := c.Eps*float64(n) + 1
			worsts := make([]float64, 0, trials)
			failures := 0
			for t := 0; t < trials; t++ {
				s := c.New(baseSeed + int64(t))
				for _, x := range wl.Items {
					s.Update(x)
				}
				worst := 0
				for i := 0; i <= grid; i++ {
					phi := float64(i) / float64(grid)
					got, ok := s.Query(phi)
					if !ok {
						worst = n
						break
					}
					if e := oracle.RankError(got, phi); e > worst {
						worst = e
					}
				}
				if float64(worst) > allowance {
					failures++
				}
				worsts = append(worsts, float64(worst))
			}
			sort.Float64s(worsts)
			var sum float64
			for _, w := range worsts {
				sum += w
			}
			results = append(results, RandomizedResult{
				Case:         c.Name,
				Workload:     wl.Name,
				Trials:       trials,
				MedianWorst:  worsts[len(worsts)/2],
				Allowance:    allowance,
				FailFraction: float64(failures) / float64(trials),
				FailLimit:    c.Delta + ChernoffSlack(trials, RandomizedGateGamma),
				MeanWorst:    sum / float64(trials),
			})
		}
	}
	return results
}
