package checker

// Differential harness: the one table-driven suite that drives every summary
// family — and the multi-tenant keyed store — through the full workload
// matrix against the exact oracle of internal/rank, asserting each family's
// accuracy bound with documented slack for randomized families. It replaces
// the scattered per-package accuracy-matrix copies: a family added here is
// automatically checked on every workload, uniform or biased, single-stream
// or keyed, instead of growing its own ad-hoc loop.

import (
	"quantilelb/internal/order"
	"quantilelb/internal/store"
	"quantilelb/internal/summary"
)

// Case is one summary family driven through the differential matrix.
type Case struct {
	// Name identifies the family in reports ("gk", "sharded-kll", ...).
	Name string
	// New builds a fresh summary for one (case, workload) cell.
	New func() summary.Summary[float64]
	// Eps is the accuracy bound to assert; 0 records errors without gating
	// (the deliberately unsound capped summary).
	Eps float64
	// Slack multiplies the allowance for randomized families (KLL, the
	// reservoir): their guarantee is probabilistic per query, so a strict
	// eps gate would flake. 0 means 1 (deterministic family).
	Slack float64
	// Biased switches the check to the relative-error guarantee of Section
	// 6.4 instead of the uniform one.
	Biased bool
}

// Workload is one named, materialized stream of the differential matrix.
type Workload struct {
	// Name identifies the workload ("sorted", "adversarial", ...).
	Name string
	// Items is the stream.
	Items []float64
}

// DiffResult is one (case, workload) cell of the differential matrix.
type DiffResult struct {
	// Case and Workload name the cell.
	Case, Workload string
	// Report is the full verification report of the cell.
	Report Report
	// Gated reports whether the cell asserts a bound (Eps > 0); Pass is
	// whether it held (always true for ungated cells).
	Gated, Pass bool
}

// refresher is the optional hook of snapshot-serving summaries (the sharded
// wrapper): the harness forces a rebuild before verifying so buffered items
// are visible, exactly like the benchmark harness does.
type refresher interface {
	Refresh()
}

// RunDifferential drives every case through every workload and returns one
// result per cell, in (workload-major, case-minor) order. Each cell builds a
// fresh summary, ingests the workload item-at-a-time, and verifies `grid`+1
// quantile queries against the exact oracle: uniform cells with allowance
// Slack·ε·N, biased cells with the relative-error allowance.
func RunDifferential(cases []Case, workloads []Workload, grid int) []DiffResult {
	cmp := order.Floats[float64]()
	out := make([]DiffResult, 0, len(cases)*len(workloads))
	for _, wl := range workloads {
		for _, c := range cases {
			s := c.New()
			for _, x := range wl.Items {
				s.Update(x)
			}
			if r, ok := s.(refresher); ok {
				r.Refresh()
			}
			slack := c.Slack
			if slack <= 0 {
				slack = 1
			}
			var rep Report
			if c.Biased {
				rep = VerifyBiased(cmp, s, wl.Items, c.Eps*slack, grid)
			} else {
				eps := c.Eps
				if eps <= 0 {
					// Record-only cell: verify against a vacuous allowance of
					// 1 (every query "fails"), keeping the worst-error fields
					// meaningful while Pass is not gated.
					eps = 1
				}
				rep = VerifyUniform(cmp, s, wl.Items, eps*slack, grid)
			}
			res := DiffResult{
				Case:     c.Name,
				Workload: wl.Name,
				Report:   rep,
				Gated:    c.Eps > 0,
			}
			res.Pass = !res.Gated || rep.Passed()
			out = append(out, res)
		}
	}
	return out
}

// KeyedResult is one (key, workload) cell of the keyed differential matrix.
type KeyedResult struct {
	// Key and Workload name the cell.
	Key, Workload string
	// Eps is the allowance the key was checked against (its store accuracy
	// times the run's slack).
	Eps float64
	// Report verifies the key's answers against its own exact substream.
	Report Report
}

// keyAsSummary adapts one store key to the summary interface VerifyUniform
// drives; Update panics because the harness only reads through it.
type keyAsSummary struct {
	st  *store.Store
	key string
}

func (k keyAsSummary) Update(float64)                    { panic("checker: keyAsSummary is read-only") }
func (k keyAsSummary) Query(phi float64) (float64, bool) { return k.st.Query(k.key, phi) }
func (k keyAsSummary) EstimateRank(q float64) int        { return k.st.EstimateRank(k.key, q) }
func (k keyAsSummary) Count() int                        { return k.st.Count(k.key) }
func (k keyAsSummary) StoredItems() []float64            { return k.st.StoredItems(k.key) }
func (k keyAsSummary) StoredCount() int                  { return k.st.StoredCount(k.key) }

// RunKeyedDifferential drives a multi-tenant store through every workload:
// each workload's items are partitioned round-robin over the given keys
// (ingested per key through the store's batched hot path), and every key's
// answers are then verified against that key's own exact substream with
// allowance slack·EpsFor(key)·N_key. A fresh store is built per workload
// from newStore. This is the per-key eps assertion of the keyed tier: the
// store must deliver each key's configured accuracy — overrides included —
// simultaneously across all keys.
func RunKeyedDifferential(newStore func() *store.Store, keys []string, workloads []Workload, grid int, slack float64) []KeyedResult {
	cmp := order.Floats[float64]()
	if slack <= 0 {
		slack = 1
	}
	out := make([]KeyedResult, 0, len(keys)*len(workloads))
	for _, wl := range workloads {
		st := newStore()
		parts := make(map[string][]float64, len(keys))
		for i, x := range wl.Items {
			k := keys[i%len(keys)]
			parts[k] = append(parts[k], x)
		}
		for _, k := range keys {
			st.UpdateBatch(k, parts[k])
		}
		for _, k := range keys {
			rep := VerifyUniform(cmp, keyAsSummary{st: st, key: k}, parts[k], st.EpsFor(k)*slack, grid)
			out = append(out, KeyedResult{Key: k, Workload: wl.Name, Eps: st.EpsFor(k) * slack, Report: rep})
		}
	}
	return out
}
