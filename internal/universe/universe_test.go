package universe

import (
	"math/big"
	"testing"
	"testing/quick"

	"quantilelb/internal/order"
)

func TestIntervalContains(t *testing.T) {
	cmp := order.Ints[int]()
	iv := Open(1, 5)
	if !iv.Contains(cmp, 3) {
		t.Errorf("3 should be inside (1,5)")
	}
	if iv.Contains(cmp, 1) || iv.Contains(cmp, 5) {
		t.Errorf("open interval must exclude endpoints")
	}
	if iv.Contains(cmp, 0) || iv.Contains(cmp, 6) {
		t.Errorf("values outside bounds must be excluded")
	}
	full := FullInterval[int]()
	if !full.Contains(cmp, -1000) || !full.Contains(cmp, 1000) {
		t.Errorf("full interval should contain everything")
	}
	above := AboveOf(10)
	if above.Contains(cmp, 10) || !above.Contains(cmp, 11) {
		t.Errorf("AboveOf incorrect")
	}
	below := BelowOf(10)
	if below.Contains(cmp, 10) || !below.Contains(cmp, 9) {
		t.Errorf("BelowOf incorrect")
	}
}

func TestIntervalEmpty(t *testing.T) {
	cmp := order.Ints[int]()
	if Open(1, 5).Empty(cmp) {
		t.Errorf("(1,5) is not empty")
	}
	if !Open(5, 5).Empty(cmp) {
		t.Errorf("(5,5) is empty")
	}
	if !Open(6, 5).Empty(cmp) {
		t.Errorf("(6,5) is empty")
	}
	if FullInterval[int]().Empty(cmp) || AboveOf(3).Empty(cmp) || BelowOf(3).Empty(cmp) {
		t.Errorf("unbounded intervals are never empty")
	}
}

func TestRationalBetween(t *testing.T) {
	u := NewRational()
	lo, hi := big.NewRat(1, 3), big.NewRat(1, 2)
	mid, ok := u.Between(Open(lo, hi))
	if !ok {
		t.Fatalf("Between on non-empty interval should succeed")
	}
	if mid.Cmp(lo) <= 0 || mid.Cmp(hi) >= 0 {
		t.Fatalf("midpoint %v not strictly inside (%v,%v)", mid, lo, hi)
	}
	if _, ok := u.Between(Open(hi, lo)); ok {
		t.Errorf("Between on empty interval should fail")
	}
	if v, ok := u.Between(AboveOf(big.NewRat(7, 1))); !ok || v.Cmp(big.NewRat(7, 1)) <= 0 {
		t.Errorf("Between above bound incorrect: %v %v", v, ok)
	}
	if v, ok := u.Between(BelowOf(big.NewRat(7, 1))); !ok || v.Cmp(big.NewRat(7, 1)) >= 0 {
		t.Errorf("Between below bound incorrect: %v %v", v, ok)
	}
	if _, ok := u.Between(FullInterval[*big.Rat]()); !ok {
		t.Errorf("Between on full interval should succeed")
	}
}

func TestRationalPartition(t *testing.T) {
	u := NewRational()
	cmp := u.Comparator()
	iv := Open(big.NewRat(0, 1), big.NewRat(1, 1))
	items, ok := u.Partition(iv, 7)
	if !ok || len(items) != 7 {
		t.Fatalf("Partition failed: ok=%v len=%d", ok, len(items))
	}
	for i, x := range items {
		if !iv.Contains(cmp, x) {
			t.Errorf("item %d = %v outside interval", i, x)
		}
		if i > 0 && cmp(items[i-1], x) >= 0 {
			t.Errorf("items not strictly increasing at %d", i)
		}
	}
	// Empty interval fails.
	if _, ok := u.Partition(Open(big.NewRat(2, 1), big.NewRat(1, 1)), 3); ok {
		t.Errorf("Partition on empty interval should fail")
	}
	// n = 0 succeeds with no items.
	if out, ok := u.Partition(iv, 0); !ok || len(out) != 0 {
		t.Errorf("Partition(.., 0) should return empty, ok")
	}
	// Half-bounded and unbounded intervals.
	for _, tc := range []Interval[*big.Rat]{
		AboveOf(big.NewRat(10, 1)),
		BelowOf(big.NewRat(-10, 1)),
		FullInterval[*big.Rat](),
	} {
		items, ok := u.Partition(tc, 5)
		if !ok || len(items) != 5 {
			t.Fatalf("Partition on %v failed", tc)
		}
		for i, x := range items {
			if !tc.Contains(cmp, x) {
				t.Errorf("item %v outside interval", x)
			}
			if i > 0 && cmp(items[i-1], x) >= 0 {
				t.Errorf("items not strictly increasing")
			}
		}
	}
}

// Property: rational partition of a random non-empty interval always yields n
// strictly increasing items inside the interval, even for very narrow
// intervals obtained by repeated subdivision. This is the continuity property
// the lower-bound proof relies on.
func TestRationalRepeatedRefinement(t *testing.T) {
	u := NewRational()
	cmp := u.Comparator()
	iv := Open(big.NewRat(0, 1), big.NewRat(1, 1))
	// Refine 60 times: far beyond what float64 could support with 12 items
	// per level.
	for depth := 0; depth < 60; depth++ {
		items, ok := u.Partition(iv, 12)
		if !ok {
			t.Fatalf("rational universe exhausted at depth %d", depth)
		}
		for i := 1; i < len(items); i++ {
			if cmp(items[i-1], items[i]) >= 0 {
				t.Fatalf("not strictly increasing at depth %d", depth)
			}
		}
		// Narrow to the interval between two adjacent new items.
		iv = Open(items[5], items[6])
		if iv.Empty(cmp) {
			t.Fatalf("interval became empty at depth %d", depth)
		}
	}
}

func TestFloat64Between(t *testing.T) {
	u := NewFloat64()
	if v, ok := u.Between(Open(1.0, 2.0)); !ok || v <= 1.0 || v >= 2.0 {
		t.Errorf("Between(1,2) = %v, %v", v, ok)
	}
	if _, ok := u.Between(Open(2.0, 1.0)); ok {
		t.Errorf("Between on empty interval should fail")
	}
	if v, ok := u.Between(AboveOf(5.0)); !ok || v <= 5.0 {
		t.Errorf("Between above bound incorrect")
	}
	if v, ok := u.Between(BelowOf(5.0)); !ok || v >= 5.0 {
		t.Errorf("Between below bound incorrect")
	}
	if _, ok := u.Between(FullInterval[float64]()); !ok {
		t.Errorf("Between on full interval should succeed")
	}
}

func TestFloat64PrecisionExhaustion(t *testing.T) {
	u := NewFloat64()
	// An interval of two adjacent floats has no representable interior point.
	lo := 1.0
	hi := 1.0000000000000002 // next float after 1.0
	if _, ok := u.Between(Open(lo, hi)); ok {
		t.Errorf("expected precision exhaustion to be reported")
	}
	if _, ok := u.Partition(Open(lo, hi), 4); ok {
		t.Errorf("expected partition to report exhaustion")
	}
}

func TestFloat64Partition(t *testing.T) {
	u := NewFloat64()
	cmp := u.Comparator()
	iv := Open(0.0, 1.0)
	items, ok := u.Partition(iv, 9)
	if !ok || len(items) != 9 {
		t.Fatalf("Partition failed")
	}
	for i, x := range items {
		if !iv.Contains(cmp, x) {
			t.Errorf("item %v outside interval", x)
		}
		if i > 0 && items[i-1] >= x {
			t.Errorf("items not strictly increasing")
		}
	}
	for _, tc := range []Interval[float64]{AboveOf(3.0), BelowOf(-3.0), FullInterval[float64]()} {
		items, ok := u.Partition(tc, 4)
		if !ok || len(items) != 4 {
			t.Fatalf("Partition on %v failed", tc)
		}
		for i := 1; i < len(items); i++ {
			if items[i-1] >= items[i] {
				t.Errorf("items not strictly increasing for %v", tc)
			}
		}
	}
}

func TestFormatInterval(t *testing.T) {
	u := NewRational()
	got := FormatInterval[*big.Rat](u, FullInterval[*big.Rat]())
	if got != "(-inf, +inf)" {
		t.Errorf("FormatInterval full = %q", got)
	}
	got = FormatInterval[*big.Rat](u, Open(big.NewRat(1, 2), big.NewRat(3, 4)))
	if got != "(0.500000, 0.750000)" {
		t.Errorf("FormatInterval = %q", got)
	}
	fu := NewFloat64()
	got = FormatInterval[float64](fu, AboveOf(2.5))
	if got != "(2.5, +inf)" {
		t.Errorf("FormatInterval above = %q", got)
	}
}

// Property: for random bounded rational intervals, Between always returns a
// point strictly inside.
func TestRationalBetweenProperty(t *testing.T) {
	u := NewRational()
	f := func(aNum, bNum int16, den uint8) bool {
		d := int64(den) + 1
		a := big.NewRat(int64(aNum), d)
		b := big.NewRat(int64(bNum), d)
		if a.Cmp(b) == 0 {
			return true
		}
		lo, hi := a, b
		if lo.Cmp(hi) > 0 {
			lo, hi = hi, lo
		}
		mid, ok := u.Between(Open(lo, hi))
		return ok && mid.Cmp(lo) > 0 && mid.Cmp(hi) < 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
