// Package universe implements the totally ordered, continuous, unbounded
// universes that the lower-bound construction of Cormode & Veselý (PODS 2020)
// draws its items from.
//
// Section 2 of the paper assumes "the universe is unbounded and continuous in
// the sense that any non-empty open interval contains an unbounded number of
// items"; the adversary repeatedly generates fresh items strictly inside
// ever-narrower open intervals. Machine floating point cannot sustain that
// refinement beyond a few levels of recursion, so the primary implementation
// (Rational) uses arbitrary-precision rationals from math/big. A Float64
// universe is provided for shallow constructions, fast experiments, and to
// demonstrate exactly where fixed precision breaks down (it reports exhaustion
// instead of silently generating duplicate items).
package universe

import (
	"fmt"
	"math/big"

	"quantilelb/internal/order"
)

// Universe describes a totally ordered universe from which the adversary can
// draw fresh items. All methods must be consistent with Compare.
type Universe[T any] interface {
	// Compare is the total order on the universe.
	Compare(a, b T) int
	// Between returns an item strictly inside the open interval described by
	// iv. It returns false when the universe cannot produce such an item
	// (for example a fixed-precision universe that has been exhausted).
	Between(iv Interval[T]) (T, bool)
	// Partition returns n items strictly inside the open interval described
	// by iv, in strictly increasing order. It returns false when the
	// universe cannot produce n distinct items inside the interval.
	Partition(iv Interval[T], n int) ([]T, bool)
	// Format renders an item for diagnostics.
	Format(a T) string
}

// Interval is an open interval over the universe. A nil bound represents
// -infinity (for Lo) or +infinity (for Hi); these are the sentinels the
// initial call of the adversarial strategy uses.
type Interval[T any] struct {
	Lo    T
	HasLo bool
	Hi    T
	HasHi bool
}

// FullInterval returns the unbounded interval (-inf, +inf).
func FullInterval[T any]() Interval[T] {
	return Interval[T]{}
}

// Open returns the open interval (lo, hi).
func Open[T any](lo, hi T) Interval[T] {
	return Interval[T]{Lo: lo, HasLo: true, Hi: hi, HasHi: true}
}

// AboveOf returns the open interval (lo, +inf).
func AboveOf[T any](lo T) Interval[T] {
	return Interval[T]{Lo: lo, HasLo: true}
}

// BelowOf returns the open interval (-inf, hi).
func BelowOf[T any](hi T) Interval[T] {
	return Interval[T]{Hi: hi, HasHi: true}
}

// Contains reports whether x lies strictly inside the interval under cmp.
func (iv Interval[T]) Contains(cmp order.Comparator[T], x T) bool {
	if iv.HasLo && cmp(x, iv.Lo) <= 0 {
		return false
	}
	if iv.HasHi && cmp(x, iv.Hi) >= 0 {
		return false
	}
	return true
}

// Empty reports whether the open interval contains no points of a continuous
// universe, i.e. whether Lo >= Hi when both bounds are present.
func (iv Interval[T]) Empty(cmp order.Comparator[T]) bool {
	if iv.HasLo && iv.HasHi {
		return cmp(iv.Lo, iv.Hi) >= 0
	}
	return false
}

// String renders the interval using the universe's formatter.
func FormatInterval[T any](u Universe[T], iv Interval[T]) string {
	lo := "-inf"
	if iv.HasLo {
		lo = u.Format(iv.Lo)
	}
	hi := "+inf"
	if iv.HasHi {
		hi = u.Format(iv.Hi)
	}
	return fmt.Sprintf("(%s, %s)", lo, hi)
}

// Rational is the arbitrary-precision continuous universe over *big.Rat.
// It can always produce a fresh item strictly inside any non-empty open
// interval, matching the paper's continuity assumption exactly.
type Rational struct{}

// NewRational returns the rational universe.
func NewRational() Rational { return Rational{} }

// Compare implements Universe.
func (Rational) Compare(a, b *big.Rat) int { return a.Cmp(b) }

// Comparator returns the comparison function as an order.Comparator.
func (Rational) Comparator() order.Comparator[*big.Rat] {
	return func(a, b *big.Rat) int { return a.Cmp(b) }
}

// Format implements Universe.
func (Rational) Format(a *big.Rat) string {
	if a == nil {
		return "<nil>"
	}
	// Use a decimal rendering for readability; exact value is kept internally.
	return a.FloatString(6)
}

// Between implements Universe. For bounded intervals it returns the midpoint;
// for half-open intervals it steps one unit beyond the finite bound; for the
// unbounded interval it returns zero.
func (u Rational) Between(iv Interval[*big.Rat]) (*big.Rat, bool) {
	one := big.NewRat(1, 1)
	switch {
	case iv.HasLo && iv.HasHi:
		if iv.Lo.Cmp(iv.Hi) >= 0 {
			return nil, false
		}
		mid := new(big.Rat).Add(iv.Lo, iv.Hi)
		mid.Quo(mid, big.NewRat(2, 1))
		return mid, true
	case iv.HasLo:
		return new(big.Rat).Add(iv.Lo, one), true
	case iv.HasHi:
		return new(big.Rat).Sub(iv.Hi, one), true
	default:
		return new(big.Rat), true
	}
}

// Partition implements Universe. For a bounded interval (lo, hi) it returns
// lo + i*(hi-lo)/(n+1) for i = 1..n; for half-bounded intervals it steps in
// unit increments away from the finite bound; for the unbounded interval it
// returns 1..n.
func (u Rational) Partition(iv Interval[*big.Rat], n int) ([]*big.Rat, bool) {
	if n <= 0 {
		return nil, true
	}
	out := make([]*big.Rat, 0, n)
	switch {
	case iv.HasLo && iv.HasHi:
		if iv.Lo.Cmp(iv.Hi) >= 0 {
			return nil, false
		}
		width := new(big.Rat).Sub(iv.Hi, iv.Lo)
		step := new(big.Rat).Quo(width, big.NewRat(int64(n+1), 1))
		cur := new(big.Rat).Set(iv.Lo)
		for i := 0; i < n; i++ {
			cur = new(big.Rat).Add(cur, step)
			out = append(out, cur)
		}
	case iv.HasLo:
		cur := new(big.Rat).Set(iv.Lo)
		one := big.NewRat(1, 1)
		for i := 0; i < n; i++ {
			cur = new(big.Rat).Add(cur, one)
			out = append(out, cur)
		}
	case iv.HasHi:
		// Produce items hi-n, hi-n+1, ..., hi-1 so they are increasing.
		start := new(big.Rat).Sub(iv.Hi, big.NewRat(int64(n), 1))
		one := big.NewRat(1, 1)
		cur := new(big.Rat).Sub(start, one)
		for i := 0; i < n; i++ {
			cur = new(big.Rat).Add(cur, one)
			out = append(out, cur)
		}
	default:
		for i := 1; i <= n; i++ {
			out = append(out, big.NewRat(int64(i), 1))
		}
	}
	return out, true
}

// Float64U is a fixed-precision universe over float64. It refuses to produce
// items once the interval is too narrow to contain a representable value,
// so callers can detect precision exhaustion instead of silently receiving
// duplicates. It exists to benchmark the construction cheaply and to document
// the substitution made for the paper's continuity assumption.
type Float64U struct{}

// NewFloat64 returns the float64 universe.
func NewFloat64() Float64U { return Float64U{} }

// Compare implements Universe.
func (Float64U) Compare(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Comparator returns the comparison function as an order.Comparator.
func (Float64U) Comparator() order.Comparator[float64] {
	return order.Floats[float64]()
}

// Format implements Universe.
func (Float64U) Format(a float64) string { return fmt.Sprintf("%g", a) }

// Between implements Universe.
func (u Float64U) Between(iv Interval[float64]) (float64, bool) {
	switch {
	case iv.HasLo && iv.HasHi:
		if !(iv.Lo < iv.Hi) {
			return 0, false
		}
		mid := iv.Lo + (iv.Hi-iv.Lo)/2
		if mid <= iv.Lo || mid >= iv.Hi {
			return 0, false // precision exhausted
		}
		return mid, true
	case iv.HasLo:
		return iv.Lo + 1, true
	case iv.HasHi:
		return iv.Hi - 1, true
	default:
		return 0, true
	}
}

// Partition implements Universe.
func (u Float64U) Partition(iv Interval[float64], n int) ([]float64, bool) {
	if n <= 0 {
		return nil, true
	}
	out := make([]float64, 0, n)
	switch {
	case iv.HasLo && iv.HasHi:
		if !(iv.Lo < iv.Hi) {
			return nil, false
		}
		width := iv.Hi - iv.Lo
		step := width / float64(n+1)
		prev := iv.Lo
		for i := 1; i <= n; i++ {
			v := iv.Lo + step*float64(i)
			if v <= prev || v >= iv.Hi {
				return nil, false // precision exhausted
			}
			out = append(out, v)
			prev = v
		}
	case iv.HasLo:
		for i := 1; i <= n; i++ {
			out = append(out, iv.Lo+float64(i))
		}
	case iv.HasHi:
		for i := n; i >= 1; i-- {
			out = append(out, iv.Hi-float64(i))
		}
	default:
		for i := 1; i <= n; i++ {
			out = append(out, float64(i))
		}
	}
	return out, true
}
