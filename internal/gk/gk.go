// Package gk implements the Greenwald–Khanna ε-approximate quantile summary
// (SIGMOD 2001), the deterministic comparison-based algorithm whose
// O((1/ε)·log εN) space bound is proved optimal by Cormode & Veselý
// (PODS 2020) — the paper reproduced by this repository.
//
// The summary maintains a sorted list of tuples t_i = (v_i, g_i, Δ_i) where
// v_i is a stored stream item, g_i = rmin(v_i) − rmin(v_{i−1}) and
// Δ_i = rmax(v_i) − rmin(v_i). The invariant g_i + Δ_i ≤ ⌊2εn⌋ guarantees
// that every rank query can be answered within ±εn.
//
// Two compression policies are provided:
//
//   - PolicyBands follows the banding rule of the original paper: a tuple may
//     be merged into its successor only when its band (a function of Δ and
//     the current threshold 2εn) does not exceed the successor's band. This is
//     the "intricate" algorithm whose space bound the lower bound matches.
//     (The original paper additionally merges whole subtrees of the band tree
//     at once; as in most published implementations, this implementation
//     applies the band rule pairwise, which preserves the invariant and the
//     empirical space behaviour.)
//   - PolicyGreedy merges whenever the capacity condition
//     g_i + g_{i+1} + Δ_{i+1} < 2εn allows, ignoring bands. Section 6 of the
//     lower-bound paper highlights this simplified variant as an open problem
//     (its worst-case space is unknown); experiments compare both.
//
// The first and last tuples (current minimum and maximum) are never removed,
// matching the assumption in Section 2 of the lower-bound paper that the
// minimum and maximum are always maintained.
package gk

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"quantilelb/internal/order"
)

// Policy selects the compression rule.
type Policy int

const (
	// PolicyBands is the band-respecting compression of the original paper.
	PolicyBands Policy = iota
	// PolicyGreedy merges any pair allowed by the capacity condition.
	PolicyGreedy
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyBands:
		return "bands"
	case PolicyGreedy:
		return "greedy"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Tuple is one entry of the summary: a stored item v together with
// G = rmin(v) − rmin(previous stored item) and Delta = rmax(v) − rmin(v).
//
// Wt is the weighted extension (Assadi, Joshi, Prabhu & Shah, "Generalizing
// Greenwald-Khanna Streaming Quantile Summaries for Weighted Inputs"): the
// number of equal-value copies of v known to occupy the top of the tuple's
// g-mass, i.e. Wt consecutive expanded ranks ending at the true rank of v.
// Unit-weight inserts carry Wt = 1, recovering classic GK exactly; a
// weighted insert of (x, w) carries Wt = w. Compression and COMBINE only
// ever grow G around an intact run, so 1 ≤ Wt ≤ G always holds, and the
// capacity invariant relaxes to g + Δ ≤ ⌊2εn⌋ + (Wt − 1): a heavy run may
// exceed the classic capacity by exactly the weight it carries, because its
// copies answer any query landing inside the run with zero error.
type Tuple[T any] struct {
	V     T
	G     int
	Delta int
	Wt    int
}

// Summary is a Greenwald–Khanna quantile summary over items of type T.
type Summary[T any] struct {
	cmp    order.Comparator[T]
	eps    float64
	policy Policy
	tuples []Tuple[T]
	n      int
	// compressEvery controls how often Compress runs; the classic schedule is
	// every ⌊1/(2ε)⌋ updates.
	compressEvery int
	sinceCompress int
}

// New returns a summary with the band-based compression policy.
func New[T any](cmp order.Comparator[T], eps float64) *Summary[T] {
	return NewWithPolicy(cmp, eps, PolicyBands)
}

// NewGreedy returns a summary with the greedy compression policy.
func NewGreedy[T any](cmp order.Comparator[T], eps float64) *Summary[T] {
	return NewWithPolicy(cmp, eps, PolicyGreedy)
}

// NewWithPolicy returns a summary with an explicit compression policy.
// It panics if eps is not in (0, 1).
func NewWithPolicy[T any](cmp order.Comparator[T], eps float64, policy Policy) *Summary[T] {
	if !(eps > 0 && eps < 1) {
		panic("gk: eps must be in (0, 1)")
	}
	every := int(1 / (2 * eps))
	if every < 1 {
		every = 1
	}
	return &Summary[T]{cmp: cmp, eps: eps, policy: policy, compressEvery: every}
}

// NewFloat64 returns a float64 summary with the band policy, the most common
// configuration in examples and benchmarks.
func NewFloat64(eps float64) *Summary[float64] {
	return New(order.Floats[float64](), eps)
}

// Epsilon returns the accuracy parameter the summary was built with.
func (s *Summary[T]) Epsilon() float64 { return s.eps }

// PolicyUsed returns the compression policy.
func (s *Summary[T]) PolicyUsed() Policy { return s.policy }

// Count returns the number of items processed.
func (s *Summary[T]) Count() int { return s.n }

// StoredCount returns the number of tuples currently stored, the space
// measure |I| used by the lower bound.
func (s *Summary[T]) StoredCount() int { return len(s.tuples) }

// Tuples returns a copy of the current tuple list in non-decreasing order of
// stored item.
func (s *Summary[T]) Tuples() []Tuple[T] {
	out := make([]Tuple[T], len(s.tuples))
	copy(out, s.tuples)
	return out
}

// StoredItems returns the stored items in non-decreasing order.
func (s *Summary[T]) StoredItems() []T {
	out := make([]T, len(s.tuples))
	for i, t := range s.tuples {
		out[i] = t.V
	}
	return out
}

// threshold returns ⌊2εn⌋, the capacity bound for g_i + Δ_i.
func (s *Summary[T]) threshold() int {
	return int(2 * s.eps * float64(s.n))
}

// Update inserts one stream item.
func (s *Summary[T]) Update(x T) {
	s.n++
	s.insert(x, 1)
	s.sinceCompress++
	if s.sinceCompress >= s.compressEvery {
		s.Compress()
		s.sinceCompress = 0
	}
}

// WeightedUpdate inserts one stream item carrying an integer weight w ≥ 1,
// equivalent to w repeated Updates of x but in one O(S) insertion: the whole
// run becomes a single tuple (x, g = w, Δ as for a unit insert, Wt = w), per
// the weighted GK generalization of Assadi et al. Count afterwards reports
// the total weight W and every query answers over the weight-expanded
// multiset within ±εW. It panics if w is not positive.
func (s *Summary[T]) WeightedUpdate(x T, w int64) {
	checkWeight(w)
	s.n += int(w)
	s.insert(x, int(w))
	s.sinceCompress++
	if s.sinceCompress >= s.compressEvery {
		s.Compress()
		s.sinceCompress = 0
	}
}

// checkWeight panics unless w is positive and representable as int — the
// summary's counters are ints, so on a 32-bit platform a wire-legal weight
// up to 2^32 must fail loudly rather than truncate into a corrupt tuple.
func checkWeight(w int64) {
	if w <= 0 {
		panic("gk: weight must be positive")
	}
	if int64(int(w)) != w {
		panic("gk: weight overflows int on this platform")
	}
}

// WeightedUpdateBatch inserts a batch of weighted stream items in one pass:
// the weighted analogue of UpdateBatch (one sort of the batch, one merge
// scan over the tuple list), equivalent to calling WeightedUpdate per pair.
// len(ws) must equal len(xs); it panics on a length mismatch or a
// non-positive weight.
func (s *Summary[T]) WeightedUpdateBatch(xs []T, ws []int64) {
	if len(xs) != len(ws) {
		panic("gk: WeightedUpdateBatch: items and weights differ in length")
	}
	if len(xs) == 0 {
		return
	}
	runs := make([]Tuple[T], len(xs))
	var total int64
	for i, x := range xs {
		checkWeight(ws[i])
		runs[i] = Tuple[T]{V: x, G: int(ws[i]), Wt: int(ws[i])}
		total += ws[i]
	}
	if int64(int(total)) != total {
		panic("gk: batch total weight overflows int on this platform")
	}
	sort.SliceStable(runs, func(i, j int) bool { return s.cmp(runs[i].V, runs[j].V) < 0 })
	s.n += int(total)
	interior := s.interiorDelta()
	for i := range runs {
		runs[i].Delta = interior
	}
	s.mergeRuns(runs)
}

// interiorDelta returns the uncertainty a fresh interior tuple carries,
// ⌊2εn⌋ − 1 clamped at 0; n must already include the fresh weight.
func (s *Summary[T]) interiorDelta() int {
	d := s.threshold() - 1
	if d < 0 {
		d = 0
	}
	return d
}

// mergeRuns merges fresh run tuples — sorted by value, deltas already set
// to the interior uncertainty — into the tuple list with a single scan,
// applies the shared extremes fix-up, and advances the compression schedule
// by the number of fresh tuples. Both batch ingest paths (unit-weight and
// weighted) share it.
func (s *Summary[T]) mergeRuns(runs []Tuple[T]) {
	merged := make([]Tuple[T], 0, len(s.tuples)+len(runs))
	i, j := 0, 0
	for i < len(s.tuples) || j < len(runs) {
		if j >= len(runs) || (i < len(s.tuples) && s.cmp(s.tuples[i].V, runs[j].V) <= 0) {
			merged = append(merged, s.tuples[i])
			i++
		} else {
			merged = append(merged, runs[j])
			j++
		}
	}
	// The smallest and largest tuples have exactly known ranks: a batch item
	// that became the new global minimum or maximum carries Delta 0, exactly
	// as in the single-item insert path. When the summary was empty every
	// batch item has an exact rank, so all deltas are 0.
	if len(s.tuples) == 0 {
		for k := range merged {
			merged[k].Delta = 0
		}
	} else {
		merged[0].Delta = 0
		merged[len(merged)-1].Delta = 0
	}
	s.tuples = merged
	s.sinceCompress += len(runs)
	if s.sinceCompress >= s.compressEvery {
		s.Compress()
		s.sinceCompress = 0
	}
}

// UpdateBatch inserts a batch of stream items in one pass. It is equivalent
// to calling Update for each item (the summary is a multiset, so intra-batch
// order is irrelevant) but sorts the batch and merges it into the tuple list
// with a single scan, costing O(S + m·log m) for batch size m instead of the
// O(S·m) of m individual updates. This is the fast path used by the
// internal/sharded ingestion layer.
func (s *Summary[T]) UpdateBatch(xs []T) {
	if len(xs) == 0 {
		return
	}
	batch := make([]T, len(xs))
	copy(batch, xs)
	order.Sort(s.cmp, batch)
	s.n += len(batch)
	interior := s.interiorDelta()
	runs := make([]Tuple[T], len(batch))
	for i, x := range batch {
		runs[i] = Tuple[T]{V: x, G: 1, Delta: interior, Wt: 1}
	}
	s.mergeRuns(runs)
}

// insert places a run of w equal copies of x as one tuple. The caller has
// already added w to n.
func (s *Summary[T]) insert(x T, w int) {
	// Locate the first tuple whose value is >= x (insertion point).
	idx := 0
	for idx < len(s.tuples) && s.cmp(s.tuples[idx].V, x) < 0 {
		idx++
	}
	var delta int
	switch {
	case idx == 0 || idx == len(s.tuples):
		// New minimum or maximum: exact rank information.
		delta = 0
	default:
		delta = s.threshold() - 1
		if delta < 0 {
			delta = 0
		}
	}
	t := Tuple[T]{V: x, G: w, Delta: delta, Wt: w}
	s.tuples = append(s.tuples, Tuple[T]{})
	copy(s.tuples[idx+1:], s.tuples[idx:])
	s.tuples[idx] = t
}

// band computes the band of a tuple's Delta with respect to threshold p,
// following Greenwald & Khanna: band 0 for Delta == p, and band α when
// p − 2^α − (p mod 2^α) < Delta ≤ p − 2^(α−1) − (p mod 2^(α−1)).
// Larger bands correspond to smaller Delta (older, more significant tuples).
func band(delta, p int) int {
	if delta == p {
		return 0
	}
	if delta == 0 {
		return math.MaxInt32 // effectively infinite band for exact tuples
	}
	diff := p - delta + 1
	if diff <= 1 {
		return 0
	}
	return int(math.Floor(math.Log2(float64(diff))))
}

// Compress merges tuples whose combined capacity stays below the threshold,
// according to the configured policy. It never removes the first or last
// tuple, so the current minimum and maximum are always retained.
func (s *Summary[T]) Compress() {
	if len(s.tuples) < 3 {
		return
	}
	p := s.threshold()
	// Walk from the second-to-last tuple down to the second tuple, merging
	// tuple i into tuple i+1 when permitted.
	for i := len(s.tuples) - 2; i >= 1; i-- {
		if i+1 >= len(s.tuples) {
			continue
		}
		cur := s.tuples[i]
		next := s.tuples[i+1]
		if cur.G+next.G+next.Delta >= p {
			continue
		}
		if s.policy == PolicyBands && band(cur.Delta, p) > band(next.Delta, p) {
			continue
		}
		// Merge: successor absorbs the g-weight of the removed tuple.
		s.tuples[i+1].G = cur.G + next.G
		s.tuples = append(s.tuples[:i], s.tuples[i+1:]...)
	}
}

// Query returns an ε-approximate ϕ-quantile of the processed items.
func (s *Summary[T]) Query(phi float64) (T, bool) {
	var zero T
	if len(s.tuples) == 0 {
		return zero, false
	}
	if phi < 0 {
		phi = 0
	}
	if phi > 1 {
		phi = 1
	}
	// Target rank ⌊ϕN⌋ (clamped to at least 1), matching the definition of a
	// ϕ-quantile in the paper.
	target := int(phi * float64(s.n))
	if target < 1 {
		target = 1
	}
	if target > s.n {
		target = s.n
	}
	// Classic GK query, generalized for weighted runs: find the first tuple
	// whose rmax exceeds target + εn. Its predecessor answers when that
	// predecessor's rmin is within the allowance — for unit-weight summaries
	// the capacity invariant g + Δ ≤ 2εn makes this always true, recovering
	// the classic rule. When it is not, the stopping tuple must be a heavy
	// weighted run (only Wt > 1 lets g + Δ exceed the classic capacity): its
	// Wt equal copies occupy consecutive expanded ranks reaching down past
	// target + εn − Δ, so the run itself covers a rank within ±εn of the
	// target and is the correct answer.
	slack := s.eps * float64(s.n)
	rmin := 0
	for i := 0; i < len(s.tuples); i++ {
		rmin += s.tuples[i].G
		rmax := rmin + s.tuples[i].Delta
		if float64(rmax) > float64(target)+slack {
			if i == 0 {
				return s.tuples[0].V, true
			}
			if prevRmin := rmin - s.tuples[i].G; float64(prevRmin) < float64(target)-slack {
				return s.tuples[i].V, true
			}
			return s.tuples[i-1].V, true
		}
	}
	// Every stored item has rmax within target + εn; the maximum is the
	// correct answer (it has exact rank n >= target).
	return s.tuples[len(s.tuples)-1].V, true
}

// EstimateRank returns an estimate of the number of processed items that are
// less than or equal to q, accurate to within ±εn.
func (s *Summary[T]) EstimateRank(q T) int {
	if len(s.tuples) == 0 {
		return 0
	}
	// Find the last stored item v_i <= q. The true count of items <= q lies
	// in [rmin_i, rmax_{i+1} - 1]; return the midpoint, which has error at
	// most (g_{i+1} + Δ_{i+1})/2 <= εn by the capacity invariant.
	rmin := 0
	lastRmin := -1
	nextIdx := -1
	for i := 0; i < len(s.tuples); i++ {
		if s.cmp(s.tuples[i].V, q) > 0 {
			nextIdx = i
			break
		}
		rmin += s.tuples[i].G
		lastRmin = rmin
	}
	if lastRmin < 0 {
		// q is smaller than the stored minimum, which is the true minimum.
		return 0
	}
	upper := s.n
	if nextIdx >= 0 {
		// The successor's Wt trailing copies are all > q, so they cannot be
		// counted; for unit weights this is the classic −1.
		upper = lastRmin + s.tuples[nextIdx].G + s.tuples[nextIdx].Delta - s.tuples[nextIdx].Wt
		if upper < lastRmin {
			upper = lastRmin
		}
	}
	return (lastRmin + upper) / 2
}

// MinItem returns the smallest item seen so far.
func (s *Summary[T]) MinItem() (T, bool) {
	var zero T
	if len(s.tuples) == 0 {
		return zero, false
	}
	return s.tuples[0].V, true
}

// MaxItem returns the largest item seen so far.
func (s *Summary[T]) MaxItem() (T, bool) {
	var zero T
	if len(s.tuples) == 0 {
		return zero, false
	}
	return s.tuples[len(s.tuples)-1].V, true
}

// RankBounds returns the deterministic lower and upper bounds [rmin, rmax] the
// summary guarantees for stored item index i (0-based).
func (s *Summary[T]) RankBounds(i int) (rmin, rmax int, err error) {
	if i < 0 || i >= len(s.tuples) {
		return 0, 0, fmt.Errorf("gk: tuple index %d out of range [0,%d)", i, len(s.tuples))
	}
	for j := 0; j <= i; j++ {
		rmin += s.tuples[j].G
	}
	return rmin, rmin + s.tuples[i].Delta, nil
}

// CheckInvariant verifies the GK invariant g_i + Δ_i ≤ max(⌊2εn⌋, 1) + (Wt_i
// − 1) for every tuple — the classic capacity bound for unit-weight tuples,
// relaxed by exactly the run weight for weighted tuples — together with
// 1 ≤ Wt_i ≤ g_i and that tuples are sorted. It returns a descriptive error
// when the invariant is violated; tests use it as a structural oracle.
func (s *Summary[T]) CheckInvariant() error {
	p := s.threshold()
	if p < 1 {
		p = 1
	}
	total := 0
	for i, t := range s.tuples {
		if t.G < 1 {
			return fmt.Errorf("gk: tuple %d has non-positive g=%d", i, t.G)
		}
		if t.Delta < 0 {
			return fmt.Errorf("gk: tuple %d has negative delta", i)
		}
		if t.Wt < 1 || t.Wt > t.G {
			return fmt.Errorf("gk: tuple %d has run weight %d outside [1, g=%d]", i, t.Wt, t.G)
		}
		if t.G+t.Delta > p+t.Wt-1 {
			return fmt.Errorf("gk: tuple %d violates capacity: g+delta=%d > %d (wt=%d)", i, t.G+t.Delta, p+t.Wt-1, t.Wt)
		}
		if i > 0 && s.cmp(s.tuples[i-1].V, t.V) > 0 {
			return fmt.Errorf("gk: tuples out of order at %d", i)
		}
		total += t.G
	}
	if len(s.tuples) > 0 && total != s.n {
		return fmt.Errorf("gk: sum of g = %d does not equal n = %d", total, s.n)
	}
	if len(s.tuples) > 0 {
		if s.tuples[0].Delta != 0 {
			return errors.New("gk: first tuple must have delta 0")
		}
		if s.tuples[len(s.tuples)-1].Delta != 0 {
			return errors.New("gk: last tuple must have delta 0")
		}
	}
	return nil
}

// UpperBoundSize returns the theoretical space bound (11/(2ε))·log2(2εN)
// tuples from Greenwald & Khanna's analysis, clamped below by the trivial
// bound. Experiments plot measured space against it.
func UpperBoundSize(eps float64, n int) float64 {
	if eps <= 0 || n <= 0 {
		return 0
	}
	x := 2 * eps * float64(n)
	if x < 2 {
		x = 2
	}
	return (11 / (2 * eps)) * math.Log2(x)
}

// raiseEps loosens the accuracy parameter to eps and re-derives the classic
// compression schedule (every ⌊1/(2ε)⌋ updates) from it, keeping the two
// consistent when Merge or Prune grow the error budget.
func (s *Summary[T]) raiseEps(eps float64) {
	s.eps = eps
	every := int(1 / (2 * s.eps))
	if every < 1 {
		every = 1
	}
	s.compressEvery = every
}

// rankBoundsAll returns, for every tuple, its deterministic rank bounds
// [rmin_i, rmax_i] in one pass (rmin is the prefix sum of g, rmax adds Delta).
func (s *Summary[T]) rankBoundsAll() (rmins, rmaxs []int) {
	rmins = make([]int, len(s.tuples))
	rmaxs = make([]int, len(s.tuples))
	run := 0
	for i, t := range s.tuples {
		run += t.G
		rmins[i] = run
		rmaxs[i] = run + t.Delta
	}
	return rmins, rmaxs
}

// Merge folds another summary into the receiver using the MERGE (a.k.a.
// COMBINE) operation of the mergeable-summaries GK lineage: the two tuple
// lists are merged in sorted order and each kept item's rank bounds are
// recomputed as the sum of its own bounds and the bounds contributed by its
// predecessor/successor in the other summary.
//
// Error guarantee: eps_new = max(eps_a, eps_b) over the combined stream of
// n_a + n_b items — merging does NOT add error (unlike naive tuple-list
// concatenation, which degrades to eps_a + eps_b). The receiver's accuracy
// parameter becomes max(eps_a, eps_b) and a Compress pass with the combined
// threshold ⌊2·eps_new·(n_a+n_b)⌋ restores the usual space bound.
//
// The argument is read but never modified, so a shard summary can keep
// ingesting after being merged into a snapshot (see internal/sharded).
func (s *Summary[T]) Merge(other *Summary[T]) error {
	if other == nil || other.n == 0 {
		return nil
	}
	if other.eps > s.eps {
		s.raiseEps(other.eps)
	}
	if s.n == 0 {
		s.tuples = other.Tuples()
		s.n = other.n
		return nil
	}
	aRmin, aRmax := s.rankBoundsAll()
	bRmin, bRmax := other.rankBoundsAll()
	a, b := s.tuples, other.tuples
	merged := make([]Tuple[T], 0, len(a)+len(b))
	prevRmin := 0 // rmin of the previously emitted merged tuple
	i, j := 0, 0
	// Each emitted tuple keeps its source tuple's run weight: the Wt equal
	// copies still top the (only enlarged) g-mass of the combined stream, so
	// the weighted capacity invariant survives COMBINE.
	emit := func(v T, rmin, rmax, wt int) {
		g := rmin - prevRmin
		if wt > g {
			wt = g // ties across the two summaries can interleave a run
		}
		merged = append(merged, Tuple[T]{V: v, G: g, Delta: rmax - rmin, Wt: wt})
		prevRmin = rmin
	}
	for i < len(a) || j < len(b) {
		takeA := j >= len(b) || (i < len(a) && s.cmp(a[i].V, b[j].V) <= 0)
		if takeA {
			// Predecessor in b is b[j-1] (all emitted), successor is b[j].
			// The successor's Wt trailing equal copies certainly sit above
			// the emitted item (ties break b-above-a consistently), so they
			// are excluded from its rmax contribution; for unit weights this
			// is the classic −1.
			rmin := aRmin[i]
			rmax := aRmax[i]
			if j > 0 {
				rmin += bRmin[j-1]
			}
			if j < len(b) {
				rmax += bRmax[j] - b[j].Wt
			} else {
				rmax += other.n
			}
			emit(a[i].V, rmin, rmax, a[i].Wt)
			i++
		} else {
			rmin := bRmin[j]
			rmax := bRmax[j]
			if i > 0 {
				rmin += aRmin[i-1]
			}
			if i < len(a) {
				rmax += aRmax[i] - a[i].Wt
			} else {
				rmax += s.n
			}
			emit(b[j].V, rmin, rmax, b[j].Wt)
			j++
		}
	}
	s.tuples = merged
	s.n += other.n
	// The extreme tuples are the exact minimum and maximum of the combined
	// stream; the arithmetic above already yields Delta 0 for them, but pin it
	// explicitly so CheckInvariant never depends on that derivation.
	s.tuples[0].Delta = 0
	s.tuples[len(s.tuples)-1].Delta = 0
	s.Compress()
	return nil
}

// Prune shrinks the summary to at most b+1 tuples by keeping, for each target
// rank i·n/b (i = 0..b), the stored tuple whose rank interval is centred
// closest to it (the PRUNE operation of the mergeable-summaries GK lineage).
//
// Error guarantee: eps_new = eps + 1/(2b) — documented conservatively as
// eps + 1/b. The receiver's accuracy parameter is increased accordingly so
// that subsequent updates and Compress calls use the right threshold.
// Pruning to b below 1 is a no-op.
func (s *Summary[T]) Prune(b int) {
	if b < 1 || len(s.tuples) <= b+1 {
		return
	}
	rmins, rmaxs := s.rankBoundsAll()
	keep := make([]int, 0, b+1)
	last := -1
	for i := 0; i <= b; i++ {
		target := float64(i) * float64(s.n) / float64(b)
		// Advance to the tuple whose bound midpoint is closest to target.
		best := last + 1
		if best >= len(s.tuples) {
			break
		}
		bestDist := math.Abs(float64(rmins[best]+rmaxs[best])/2 - target)
		for k := best + 1; k < len(s.tuples); k++ {
			d := math.Abs(float64(rmins[k]+rmaxs[k])/2 - target)
			if d <= bestDist {
				best, bestDist = k, d
			} else {
				break // midpoints are non-decreasing, distance only grows
			}
		}
		if best != last {
			keep = append(keep, best)
			last = best
		}
	}
	if keep[len(keep)-1] != len(s.tuples)-1 {
		keep = append(keep, len(s.tuples)-1) // never drop the maximum
	}
	pruned := make([]Tuple[T], len(keep))
	prevRmin := 0
	for out, idx := range keep {
		pruned[out] = Tuple[T]{
			V:     s.tuples[idx].V,
			G:     rmins[idx] - prevRmin,
			Delta: rmaxs[idx] - rmins[idx],
			Wt:    s.tuples[idx].Wt, // the kept tuple's run survives intact
		}
		prevRmin = rmins[idx]
	}
	s.tuples = pruned
	s.raiseEps(s.eps + 1/(2*float64(b)))
}

// Restore reconstructs a summary from previously exported state (accuracy,
// policy, item count and tuple list), validating the GK structural invariants
// before accepting it. It is used by the serialization layer.
func Restore[T any](cmp order.Comparator[T], eps float64, policy Policy, count int, tuples []Tuple[T]) (*Summary[T], error) {
	if !(eps > 0 && eps < 1) {
		return nil, errors.New("gk: restore: eps must be in (0, 1)")
	}
	if policy != PolicyBands && policy != PolicyGreedy {
		return nil, fmt.Errorf("gk: restore: unknown policy %d", int(policy))
	}
	if count < 0 {
		return nil, errors.New("gk: restore: negative item count")
	}
	s := NewWithPolicy(cmp, eps, policy)
	s.n = count
	s.tuples = make([]Tuple[T], len(tuples))
	copy(s.tuples, tuples)
	if err := s.CheckInvariant(); err != nil {
		return nil, fmt.Errorf("gk: restore: %w", err)
	}
	return s, nil
}
