package gk

// Weighted-input coverage: WeightedUpdate must be semantically equivalent to
// weight expansion — answers within ±ε·W of the exact weighted oracle, the
// structural invariant (in its weighted relaxation) intact throughout — on
// uniform, skewed, and heavy-hitter weight patterns, through both policies,
// the batch path, merging, and serialization-relevant accessors.

import (
	"math/rand"
	"testing"

	"quantilelb/internal/order"
	"quantilelb/internal/rank"
)

// weightedStream builds a deterministic weighted stream: values from a
// shuffled range with ties, weights from the named pattern.
func weightedStream(n int, pattern string, seed int64) (items []float64, weights []int64) {
	rng := rand.New(rand.NewSource(seed))
	items = make([]float64, n)
	weights = make([]int64, n)
	for i := range items {
		items[i] = float64(rng.Intn(n / 2)) // ~2 copies per value on average
		switch pattern {
		case "unit":
			weights[i] = 1
		case "uniform":
			weights[i] = int64(1 + rng.Intn(16))
		case "skewed":
			// Mostly light, occasionally 3 orders of magnitude heavier.
			weights[i] = int64(1 + rng.Intn(4))
			if rng.Intn(50) == 0 {
				weights[i] *= 1000
			}
		case "heavy-hitter":
			weights[i] = 1
		default:
			panic("unknown weight pattern " + pattern)
		}
	}
	if pattern == "heavy-hitter" {
		// One item carries roughly a third of the total weight, forcing the
		// heavy-run branch of the query rule.
		weights[n/3] = int64(n)
	}
	return items, weights
}

func checkWeightedAccuracy(t *testing.T, s *Summary[float64], items []float64, weights []int64, eps float64, label string) {
	t.Helper()
	oracle := rank.Float64WeightedOracle(items, weights)
	if int64(s.Count()) != oracle.TotalWeight() {
		t.Fatalf("%s: Count = %d, want total weight %d", label, s.Count(), oracle.TotalWeight())
	}
	allowance := eps * float64(oracle.TotalWeight())
	for g := 0; g <= 100; g++ {
		phi := float64(g) / 100
		got, ok := s.Query(phi)
		if !ok {
			t.Fatalf("%s: Query(%g) on non-empty summary failed", label, phi)
		}
		if e := oracle.RankError(got, phi); float64(e) > allowance+1 {
			t.Errorf("%s: phi=%g: weighted rank error %d exceeds allowance %.1f", label, phi, e, allowance)
		}
	}
	// Weighted rank estimation: within ±εW on a grid of query points.
	for q := 0.0; q < float64(len(items)/2); q += float64(len(items)) / 40 {
		est := int64(s.EstimateRank(q))
		exact := oracle.RankLE(q)
		if d := est - exact; d > int64(allowance)+1 || d < -int64(allowance)-1 {
			t.Errorf("%s: EstimateRank(%g) = %d, exact %d, allowance %.1f", label, q, est, exact, allowance)
		}
	}
}

func TestWeightedUpdateWithinEps(t *testing.T) {
	const n, eps = 4000, 0.02
	for _, pattern := range []string{"unit", "uniform", "skewed", "heavy-hitter"} {
		for _, policy := range []Policy{PolicyBands, PolicyGreedy} {
			items, weights := weightedStream(n, pattern, 11)
			s := NewWithPolicy(order.Floats[float64](), eps, policy)
			for i, x := range items {
				s.WeightedUpdate(x, weights[i])
				if i%500 == 0 {
					if err := s.CheckInvariant(); err != nil {
						t.Fatalf("%s/%s after %d weighted updates: %v", pattern, policy, i+1, err)
					}
				}
			}
			if err := s.CheckInvariant(); err != nil {
				t.Fatalf("%s/%s final invariant: %v", pattern, policy, err)
			}
			checkWeightedAccuracy(t, s, items, weights, eps, pattern+"/"+policy.String())
		}
	}
}

func TestWeightedUpdateMatchesExpansion(t *testing.T) {
	// With unit weights WeightedUpdate must be byte-identical to Update; with
	// small weights its answers must stay within the same ε·W envelope the
	// expanded item-at-a-time run satisfies.
	const eps = 0.05
	a := NewFloat64(eps)
	b := NewFloat64(eps)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		x := float64(rng.Intn(500))
		a.Update(x)
		b.WeightedUpdate(x, 1)
	}
	if a.Count() != b.Count() || a.StoredCount() != b.StoredCount() {
		t.Fatalf("unit-weight WeightedUpdate diverged: n %d vs %d, stored %d vs %d",
			a.Count(), b.Count(), a.StoredCount(), b.StoredCount())
	}
	at, bt := a.Tuples(), b.Tuples()
	for i := range at {
		if at[i] != bt[i] {
			t.Fatalf("tuple %d differs: %+v vs %+v", i, at[i], bt[i])
		}
	}
}

func TestWeightedUpdateBatchWithinEps(t *testing.T) {
	const n, eps = 4000, 0.02
	items, weights := weightedStream(n, "uniform", 17)
	s := NewFloat64(eps)
	for i := 0; i < n; i += 97 {
		end := i + 97
		if end > n {
			end = n
		}
		s.WeightedUpdateBatch(items[i:end], weights[i:end])
		if err := s.CheckInvariant(); err != nil {
			t.Fatalf("after batch ending at %d: %v", end, err)
		}
	}
	checkWeightedAccuracy(t, s, items, weights, eps, "batch")
	// Empty batch is a no-op.
	before := s.Count()
	s.WeightedUpdateBatch(nil, nil)
	if s.Count() != before {
		t.Error("empty weighted batch changed the count")
	}
}

func TestWeightedMergeWithinEps(t *testing.T) {
	const n, eps = 3000, 0.02
	items, weights := weightedStream(n, "skewed", 23)
	a := NewFloat64(eps)
	b := NewFloat64(eps)
	for i, x := range items {
		if i%2 == 0 {
			a.WeightedUpdate(x, weights[i])
		} else {
			b.WeightedUpdate(x, weights[i])
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if err := a.CheckInvariant(); err != nil {
		t.Fatalf("post-merge invariant: %v", err)
	}
	checkWeightedAccuracy(t, a, items, weights, eps, "merged")
}

func TestWeightedRestoreRoundTrip(t *testing.T) {
	const eps = 0.05
	s := NewFloat64(eps)
	items, weights := weightedStream(1500, "heavy-hitter", 5)
	for i, x := range items {
		s.WeightedUpdate(x, weights[i])
	}
	restored, err := Restore(order.Floats[float64](), s.Epsilon(), s.PolicyUsed(), s.Count(), s.Tuples())
	if err != nil {
		t.Fatalf("restore of a weighted summary: %v", err)
	}
	for g := 0; g <= 20; g++ {
		phi := float64(g) / 20
		want, _ := s.Query(phi)
		got, _ := restored.Query(phi)
		if want != got {
			t.Fatalf("phi=%g: restored answers %g, original %g", phi, got, want)
		}
	}
}

func TestWeightedUpdatePanics(t *testing.T) {
	assertPanics := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	s := NewFloat64(0.1)
	assertPanics("zero weight", func() { s.WeightedUpdate(1, 0) })
	assertPanics("negative weight", func() { s.WeightedUpdate(1, -3) })
	assertPanics("batch length mismatch", func() { s.WeightedUpdateBatch([]float64{1, 2}, []int64{1}) })
	assertPanics("batch bad weight", func() { s.WeightedUpdateBatch([]float64{1}, []int64{0}) })
}
