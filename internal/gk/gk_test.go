package gk

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"quantilelb/internal/offline"
	"quantilelb/internal/order"
	"quantilelb/internal/rank"
	"quantilelb/internal/stream"
)

func TestNewValidation(t *testing.T) {
	for _, eps := range []float64{0, -0.1, 1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("eps=%v should panic", eps)
				}
			}()
			NewFloat64(eps)
		}()
	}
}

func TestPolicyString(t *testing.T) {
	if PolicyBands.String() != "bands" || PolicyGreedy.String() != "greedy" {
		t.Errorf("policy strings wrong")
	}
	if Policy(42).String() != "Policy(42)" {
		t.Errorf("unknown policy string wrong")
	}
}

func TestEmptySummary(t *testing.T) {
	s := NewFloat64(0.1)
	if _, ok := s.Query(0.5); ok {
		t.Errorf("query on empty summary should report false")
	}
	if s.Count() != 0 || s.StoredCount() != 0 {
		t.Errorf("empty summary should have zero counts")
	}
	if s.EstimateRank(1.0) != 0 {
		t.Errorf("rank estimate on empty summary should be 0")
	}
	if _, ok := s.MinItem(); ok {
		t.Errorf("MinItem on empty should be false")
	}
	if _, ok := s.MaxItem(); ok {
		t.Errorf("MaxItem on empty should be false")
	}
	if err := s.CheckInvariant(); err != nil {
		t.Errorf("empty summary invariant: %v", err)
	}
}

func TestSingleItem(t *testing.T) {
	s := NewFloat64(0.1)
	s.Update(42)
	for _, phi := range []float64{0, 0.5, 1} {
		v, ok := s.Query(phi)
		if !ok || v != 42 {
			t.Errorf("Query(%v) = %v, %v", phi, v, ok)
		}
	}
	if mn, _ := s.MinItem(); mn != 42 {
		t.Errorf("MinItem = %v", mn)
	}
	if mx, _ := s.MaxItem(); mx != 42 {
		t.Errorf("MaxItem = %v", mx)
	}
}

func feed(s *Summary[float64], items []float64) {
	for _, x := range items {
		s.Update(x)
	}
}

// checkAllQuantiles asserts that every quantile query on the summary is an
// ε-approximate quantile of the data.
func checkAllQuantiles(t *testing.T, s *Summary[float64], items []float64, eps float64) {
	t.Helper()
	oracle := rank.Float64Oracle(items)
	n := len(items)
	steps := 200
	for i := 0; i <= steps; i++ {
		phi := float64(i) / float64(steps)
		got, ok := s.Query(phi)
		if !ok {
			t.Fatalf("Query(%v) failed", phi)
		}
		if !oracle.IsApproxQuantile(got, phi, eps+1e-9) {
			target := rank.QuantileRank(n, phi)
			lo, hi := oracle.RankRange(got)
			t.Fatalf("phi=%v: returned item %v with rank range [%d,%d], target %d, eps*n=%v",
				phi, got, lo, hi, target, eps*float64(n))
		}
	}
}

func TestAccuracyOnWorkloads(t *testing.T) {
	gen := stream.NewGenerator(1)
	for _, policy := range []Policy{PolicyBands, PolicyGreedy} {
		for _, name := range []string{"sorted", "reverse", "shuffled", "uniform", "gaussian", "duplicates"} {
			for _, eps := range []float64{0.1, 0.05, 0.01} {
				st, err := gen.ByName(name, 5000)
				if err != nil {
					t.Fatal(err)
				}
				s := NewWithPolicy(order.Floats[float64](), eps, policy)
				feed(s, st.Items())
				if err := s.CheckInvariant(); err != nil {
					t.Fatalf("%s/%s eps=%v: invariant: %v", policy, name, eps, err)
				}
				checkAllQuantiles(t, s, st.Items(), eps)
			}
		}
	}
}

func TestSpaceIsSublinear(t *testing.T) {
	gen := stream.NewGenerator(2)
	eps := 0.01
	n := 200000
	st := gen.Shuffled(n)
	s := NewFloat64(eps)
	maxStored := 0
	for _, x := range st.Items() {
		s.Update(x)
		if s.StoredCount() > maxStored {
			maxStored = s.StoredCount()
		}
	}
	upper := UpperBoundSize(eps, n)
	if float64(maxStored) > upper {
		t.Errorf("stored %d tuples, above theoretical bound %v", maxStored, upper)
	}
	if maxStored >= n/10 {
		t.Errorf("summary is not compressing: %d tuples for %d items", maxStored, n)
	}
}

func TestGreedyUsesNoMoreSpaceOnRandom(t *testing.T) {
	gen := stream.NewGenerator(3)
	st := gen.Shuffled(50000)
	bands := NewWithPolicy(order.Floats[float64](), 0.01, PolicyBands)
	greedy := NewWithPolicy(order.Floats[float64](), 0.01, PolicyGreedy)
	feed(bands, st.Items())
	feed(greedy, st.Items())
	// Luo et al. report the greedy variant performs at least as well in
	// practice; allow a generous factor of 2 either way but require both to
	// be far below the stream length.
	if greedy.StoredCount() > 2*bands.StoredCount()+100 {
		t.Errorf("greedy stores %d, bands %d: unexpectedly large",
			greedy.StoredCount(), bands.StoredCount())
	}
	if bands.StoredCount() > st.Len()/20 || greedy.StoredCount() > st.Len()/20 {
		t.Errorf("summaries not compressing: bands=%d greedy=%d", bands.StoredCount(), greedy.StoredCount())
	}
}

func TestEstimateRank(t *testing.T) {
	gen := stream.NewGenerator(4)
	eps := 0.02
	st := gen.Uniform(20000)
	s := NewFloat64(eps)
	feed(s, st.Items())
	oracle := rank.Float64Oracle(st.Items())
	slack := eps * float64(st.Len())
	for _, q := range []float64{0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.999, 1.5, -1} {
		est := s.EstimateRank(q)
		exact := oracle.RankLE(q)
		if math.Abs(float64(est-exact)) > slack+1 {
			t.Errorf("EstimateRank(%v) = %d, exact %d, slack %v", q, est, exact, slack)
		}
	}
}

func TestRankBounds(t *testing.T) {
	s := NewFloat64(0.1)
	feed(s, []float64{5, 3, 8, 1, 9, 2})
	for i := 0; i < s.StoredCount(); i++ {
		rmin, rmax, err := s.RankBounds(i)
		if err != nil {
			t.Fatal(err)
		}
		if rmin < 1 || rmax < rmin || rmax > s.Count() {
			t.Errorf("tuple %d has invalid bounds [%d,%d]", i, rmin, rmax)
		}
	}
	if _, _, err := s.RankBounds(-1); err == nil {
		t.Errorf("negative index should error")
	}
	if _, _, err := s.RankBounds(s.StoredCount()); err == nil {
		t.Errorf("out-of-range index should error")
	}
}

func TestMinMaxAlwaysStored(t *testing.T) {
	gen := stream.NewGenerator(5)
	st := gen.Shuffled(10000)
	s := NewFloat64(0.01)
	trueMin, trueMax := math.Inf(1), math.Inf(-1)
	for _, x := range st.Items() {
		s.Update(x)
		if x < trueMin {
			trueMin = x
		}
		if x > trueMax {
			trueMax = x
		}
		if mn, _ := s.MinItem(); mn != trueMin {
			t.Fatalf("minimum lost: have %v want %v", mn, trueMin)
		}
		if mx, _ := s.MaxItem(); mx != trueMax {
			t.Fatalf("maximum lost: have %v want %v", mx, trueMax)
		}
	}
}

func TestStoredItemsSorted(t *testing.T) {
	gen := stream.NewGenerator(6)
	st := gen.Uniform(5000)
	s := NewFloat64(0.05)
	feed(s, st.Items())
	items := s.StoredItems()
	if len(items) != s.StoredCount() {
		t.Fatalf("StoredItems length mismatch")
	}
	if !order.IsSorted(order.Floats[float64](), items) {
		t.Fatalf("StoredItems not sorted")
	}
}

func TestInvariantThroughoutStream(t *testing.T) {
	gen := stream.NewGenerator(7)
	st := gen.Shuffled(3000)
	s := NewFloat64(0.05)
	for i, x := range st.Items() {
		s.Update(x)
		if i%97 == 0 {
			if err := s.CheckInvariant(); err != nil {
				t.Fatalf("invariant violated after %d items: %v", i+1, err)
			}
		}
	}
}

func TestUpperBoundSize(t *testing.T) {
	if UpperBoundSize(0, 100) != 0 || UpperBoundSize(0.1, 0) != 0 {
		t.Errorf("degenerate inputs should give 0")
	}
	// Upper bound should grow with log N for fixed eps.
	a := UpperBoundSize(0.01, 10_000)
	b := UpperBoundSize(0.01, 10_000_000)
	if b <= a {
		t.Errorf("upper bound should increase with N: %v vs %v", a, b)
	}
	// And grow with 1/eps for fixed N.
	c := UpperBoundSize(0.001, 10_000)
	if c <= a {
		t.Errorf("upper bound should increase with 1/eps: %v vs %v", c, a)
	}
}

func TestQueryClampsPhi(t *testing.T) {
	s := NewFloat64(0.1)
	feed(s, []float64{1, 2, 3, 4, 5})
	if v, ok := s.Query(-0.5); !ok || v != 1 {
		t.Errorf("Query(-0.5) = %v, %v; want minimum", v, ok)
	}
	if v, ok := s.Query(1.5); !ok || v != 5 {
		t.Errorf("Query(1.5) = %v, %v; want maximum", v, ok)
	}
}

func TestMerge(t *testing.T) {
	gen := stream.NewGenerator(8)
	eps := 0.02
	a := NewFloat64(eps)
	b := NewFloat64(eps)
	s1 := gen.Uniform(20000)
	s2 := gen.Gaussian(30000, 0.5, 0.1)
	feed(a, s1.Items())
	feed(b, s2.Items())
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 50000 {
		t.Fatalf("merged count = %d, want 50000", a.Count())
	}
	if err := a.CheckInvariant(); err != nil {
		t.Fatalf("invariant after merge: %v", err)
	}
	if a.Epsilon() != eps {
		t.Fatalf("merged epsilon = %v, want max(eps_a, eps_b) = %v", a.Epsilon(), eps)
	}
	all := append(append([]float64(nil), s1.Items()...), s2.Items()...)
	oracle := rank.Float64Oracle(all)
	// COMBINE guarantees eps_new = max(eps_a, eps_b): the merged summary must
	// answer within 1x eps of the combined stream (small additive slack for
	// rank-target rounding).
	for _, phi := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		got, ok := a.Query(phi)
		if !ok {
			t.Fatalf("query failed after merge")
		}
		bound := eps*float64(len(all)) + 2
		if err := oracle.RankError(got, phi); float64(err) > bound {
			t.Errorf("phi=%v rank error %d exceeds eps*N=%v", phi, err, bound)
		}
	}
}

// TestMergeProperty is the eps_new = max(eps_a, eps_b) property test: random
// streams are split into random numbers of parts, each part is summarized
// independently, the parts are merged pairwise into one summary, and every
// quantile of the merged summary is checked against the internal/offline
// ground truth (an exact oracle over the full concatenated stream). The GK
// structural invariant must also survive every merge.
func TestMergeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	gen := stream.NewGenerator(99)
	for trial := 0; trial < 20; trial++ {
		eps := []float64{0.05, 0.02, 0.01}[trial%3]
		parts := 2 + rng.Intn(5)
		var all []float64
		merged := NewFloat64(eps)
		for p := 0; p < parts; p++ {
			n := 500 + rng.Intn(4000)
			var items []float64
			switch p % 3 {
			case 0:
				items = gen.Uniform(n).Items()
			case 1:
				items = gen.Gaussian(n, float64(p), 0.3).Items()
			default:
				items = gen.Sorted(n).Items()
			}
			part := NewFloat64(eps)
			feed(part, items)
			all = append(all, items...)
			if err := merged.Merge(part); err != nil {
				t.Fatalf("trial %d: merge part %d: %v", trial, p, err)
			}
			if err := merged.CheckInvariant(); err != nil {
				t.Fatalf("trial %d: invariant after merging part %d: %v", trial, p, err)
			}
		}
		if merged.Count() != len(all) {
			t.Fatalf("trial %d: count = %d, want %d", trial, merged.Count(), len(all))
		}
		oracle := rank.Float64Oracle(all)
		offl := offline.BuildFloat64(eps, all)
		bound := eps*float64(len(all)) + 2
		for _, phi := range []float64{0, 0.05, 0.1, 0.3, 0.5, 0.7, 0.9, 0.95, 1} {
			got, ok := merged.Query(phi)
			if !ok {
				t.Fatalf("trial %d: query failed", trial)
			}
			if err := oracle.RankError(got, phi); float64(err) > bound {
				t.Errorf("trial %d: phi=%v rank error %d exceeds eps*N=%v (parts=%d n=%d)",
					trial, phi, err, bound, parts, len(all))
			}
			// The offline optimal summary answers within eps as well, so the
			// two answers' true ranks differ by at most 2*eps*N.
			want, _ := offl.Query(phi)
			gr, _ := oracle.RankRange(got)
			wr, _ := oracle.RankRange(want)
			if diff := math.Abs(float64(gr - wr)); diff > 2*eps*float64(len(all))+4 {
				t.Errorf("trial %d: phi=%v merged GK and offline optimal disagree by %v ranks",
					trial, phi, diff)
			}
		}
	}
}

// TestPrune verifies the eps + 1/(2b) accounting of PRUNE: pruning to b+1
// tuples keeps every quantile within (eps + 1/(2b))*N of the truth.
func TestPrune(t *testing.T) {
	gen := stream.NewGenerator(7)
	eps := 0.01
	s := NewFloat64(eps)
	items := gen.Uniform(50000).Items()
	feed(s, items)
	b := 20
	s.Prune(b)
	if got := s.StoredCount(); got > b+1 {
		t.Fatalf("pruned to %d tuples, want at most %d", got, b+1)
	}
	if err := s.CheckInvariant(); err != nil {
		t.Fatalf("invariant after prune: %v", err)
	}
	wantEps := eps + 1/(2*float64(b))
	if math.Abs(s.Epsilon()-wantEps) > 1e-12 {
		t.Fatalf("epsilon after prune = %v, want %v", s.Epsilon(), wantEps)
	}
	oracle := rank.Float64Oracle(items)
	for _, phi := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		got, ok := s.Query(phi)
		if !ok {
			t.Fatalf("query after prune failed")
		}
		bound := wantEps*float64(len(items)) + 2
		if err := oracle.RankError(got, phi); float64(err) > bound {
			t.Errorf("phi=%v rank error %d exceeds (eps+1/2b)*N=%v", phi, err, bound)
		}
	}
}

// TestUpdateBatch verifies that the bulk insert path is equivalent in
// accuracy to item-at-a-time updates and preserves the invariant.
func TestUpdateBatch(t *testing.T) {
	gen := stream.NewGenerator(11)
	eps := 0.02
	items := gen.Shuffled(30000).Items()
	s := NewFloat64(eps)
	for i := 0; i < len(items); {
		end := i + 1 + (i % 257)
		if end > len(items) {
			end = len(items)
		}
		s.UpdateBatch(items[i:end])
		i = end
	}
	if s.Count() != len(items) {
		t.Fatalf("count = %d, want %d", s.Count(), len(items))
	}
	if err := s.CheckInvariant(); err != nil {
		t.Fatalf("invariant after batched updates: %v", err)
	}
	oracle := rank.Float64Oracle(items)
	for _, phi := range []float64{0.01, 0.1, 0.5, 0.9, 0.99} {
		got, ok := s.Query(phi)
		if !ok {
			t.Fatalf("query failed")
		}
		bound := eps*float64(len(items)) + 2
		if err := oracle.RankError(got, phi); float64(err) > bound {
			t.Errorf("phi=%v rank error %d exceeds eps*N=%v", phi, err, bound)
		}
	}
	// Batched and sequential summaries see the same multiset, so their space
	// should be in the same ballpark (within the usual GK slack).
	seq := NewFloat64(eps)
	feed(seq, items)
	if s.StoredCount() > 4*seq.StoredCount()+64 {
		t.Errorf("batched summary stores %d tuples vs sequential %d", s.StoredCount(), seq.StoredCount())
	}
	// Empty batch is a no-op.
	before := s.StoredCount()
	s.UpdateBatch(nil)
	if s.StoredCount() != before || s.Count() != len(items) {
		t.Errorf("empty batch changed the summary")
	}
}

func TestMergeEdgeCases(t *testing.T) {
	a := NewFloat64(0.1)
	if err := a.Merge(nil); err != nil {
		t.Fatalf("merge nil: %v", err)
	}
	b := NewFloat64(0.1)
	if err := a.Merge(b); err != nil {
		t.Fatalf("merge empty: %v", err)
	}
	feed(b, []float64{1, 2, 3})
	if err := a.Merge(b); err != nil {
		t.Fatalf("merge into empty: %v", err)
	}
	if a.Count() != 3 {
		t.Fatalf("count after merge into empty = %d", a.Count())
	}
	if v, ok := a.Query(0.5); !ok || v < 1 || v > 3 {
		t.Fatalf("query after merge into empty = %v, %v", v, ok)
	}
}

func TestBandFunction(t *testing.T) {
	p := 100
	if band(p, p) != 0 {
		t.Errorf("band(p, p) should be 0")
	}
	if band(0, p) <= band(50, p) {
		t.Errorf("delta=0 should have the largest band")
	}
	if band(10, p) <= band(90, p) {
		t.Errorf("smaller delta should have larger band")
	}
}

func TestEpsilonAccessor(t *testing.T) {
	s := NewFloat64(0.07)
	if s.Epsilon() != 0.07 {
		t.Errorf("Epsilon = %v", s.Epsilon())
	}
	if s.PolicyUsed() != PolicyBands {
		t.Errorf("default policy should be bands")
	}
	if NewGreedy(order.Floats[float64](), 0.1).PolicyUsed() != PolicyGreedy {
		t.Errorf("NewGreedy should use greedy policy")
	}
}

// Property: for random small streams and random eps, every quantile query is
// an ε-approximate quantile and the invariant holds.
func TestQuantileGuaranteeProperty(t *testing.T) {
	f := func(seed int64, epsRaw uint8, nRaw uint16) bool {
		eps := 0.02 + float64(epsRaw)/255*0.2 // eps in [0.02, 0.22]
		n := int(nRaw)%2000 + 10
		rng := rand.New(rand.NewSource(seed))
		items := make([]float64, n)
		for i := range items {
			items[i] = rng.Float64() * 1000
		}
		s := NewFloat64(eps)
		feed(s, items)
		if err := s.CheckInvariant(); err != nil {
			return false
		}
		oracle := rank.Float64Oracle(items)
		for _, phi := range []float64{0, 0.1, 0.5, 0.9, 1} {
			got, ok := s.Query(phi)
			if !ok || !oracle.IsApproxQuantile(got, phi, eps+1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: summary size never exceeds the number of distinct updates.
func TestSizeNeverExceedsUpdatesProperty(t *testing.T) {
	f := func(items []float64) bool {
		if len(items) == 0 {
			return true
		}
		s := NewFloat64(0.1)
		for i, x := range items {
			s.Update(x)
			if s.StoredCount() > i+1 {
				return false
			}
		}
		return s.Count() == len(items)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
