package gk

import "unsafe"

// RetainedBytes reports the heap bytes retained by the tuple array, counting
// allocated capacity. It implements the summary.Sized accounting contract the
// multi-tenant store budgets with; for float64 items a tuple is 32 bytes.
func (s *Summary[T]) RetainedBytes() int {
	return cap(s.tuples) * int(unsafe.Sizeof(Tuple[T]{}))
}
