package experiments

import "testing"

// TestShootoutMatrix runs the S1 matrix at a reduced scale and checks its
// shape and the gated cells: deterministic GK must pass at exact eps on
// every workload, and every entrant's byte accounting must be populated.
func TestShootoutMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("shoot-out matrix")
	}
	const (
		eps   = 0.01
		delta = 0.01
		n     = 8_000
	)
	table, rows, err := Shootout(eps, delta, n, 42)
	if err != nil {
		t.Fatalf("Shootout: %v", err)
	}
	const workloads, entrants = 7, 3
	if len(rows) != workloads*entrants {
		t.Fatalf("got %d rows, want %d", len(rows), workloads*entrants)
	}
	if len(table.Rows) != len(rows) {
		t.Fatalf("table rows %d != data rows %d", len(table.Rows), len(rows))
	}
	for _, r := range rows {
		if r.MaxStored <= 0 || r.RetainedBytes <= 0 {
			t.Errorf("%s/%s: empty space accounting (stored=%d bytes=%d)",
				r.Workload, r.Summary, r.MaxStored, r.RetainedBytes)
		}
		// GK's deterministic guarantee holds at exact eps on every workload,
		// adversarial included. (The randomized entrants are gated at the 3x
		// slack inside Shootout itself; a failed cell still lands in Passed.)
		if r.Summary == "gk" && !r.Passed {
			t.Errorf("gk failed on %s: worst err %d allowed %v", r.Workload, r.WorstError, r.Allowed)
		}
		if !r.Passed && r.Summary != "gk" {
			t.Errorf("%s exceeded the 3x randomized slack on %s: worst err %d allowed %v",
				r.Summary, r.Workload, r.WorstError, r.Allowed)
		}
	}
}

// TestAdversarialSpaceCurve asserts the PR's headline acceptance criterion:
// on the paper's adversarial stream at eps <= 0.001, FO's retained bytes
// stay strictly below GK's — at the full stream length and at every prefix.
func TestAdversarialSpaceCurve(t *testing.T) {
	if testing.Short() {
		t.Skip("adversarial space curve")
	}
	_, rows, err := AdversarialSpaceCurve([]float64{0.001, 0.0005}, 0.01, 7)
	if err != nil {
		t.Fatalf("AdversarialSpaceCurve: %v", err)
	}
	if len(rows) != 8 {
		t.Fatalf("got %d rows, want 8", len(rows))
	}
	for _, r := range rows {
		if !r.FOBelow {
			t.Errorf("eps=%g n=%d: fo bytes %d not below gk bytes %d",
				r.Eps, r.N, r.FOBytes, r.GKBytes)
		}
		if r.FOBytes != r.FOStored*8 {
			// FO retains bare float64 slots; a drift here means the byte
			// accounting and the stored count diverged.
			t.Logf("eps=%g n=%d: fo bytes %d vs stored*8 %d (capacity slack)", r.Eps, r.N, r.FOBytes, r.FOStored*8)
		}
	}
}
