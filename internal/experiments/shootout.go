package experiments

// The ROADMAP item-5 shoot-out: GK (deterministic, at the lower bound) vs
// KLL and Felber–Ostrovsky (randomized, below it) measured head-to-head on
// space, speed and accuracy — S1 is the full workload matrix including the
// paper's adversarial stream, S2 the retained-bytes-vs-n curve on that
// adversarial stream at the small eps where the randomized space advantage
// is supposed to show. Space is measured in BYTES via each family's
// RetainedBytes accounting, not item counts: GK retains 32-byte tuples while
// KLL and FO retain bare 8-byte float64s, and the byte view is the one the
// multi-tenant store budgets with.

import (
	"fmt"
	"time"

	"quantilelb/internal/bench"
	"quantilelb/internal/checker"
	"quantilelb/internal/fo"
	"quantilelb/internal/gk"
	"quantilelb/internal/kll"
	"quantilelb/internal/order"
	"quantilelb/internal/stream"
	"quantilelb/internal/summary"
)

// sizedSummary is a summary that also reports its retained heap bytes.
type sizedSummary interface {
	summary.Summary[float64]
	RetainedBytes() int
}

// shootoutContender is one entrant of the shoot-out.
type shootoutContender struct {
	name string
	// slack multiplies eps for the pass column: 1 for deterministic GK,
	// the repo-wide randomized slack (3) for KLL and FO, matching the
	// differential suite and the benchdiff gate.
	slack float64
	new   func(eps float64, seed int64) sizedSummary
}

func shootoutContenders(delta float64) []shootoutContender {
	return []shootoutContender{
		{name: "gk", slack: 1, new: func(eps float64, _ int64) sizedSummary {
			return gk.NewFloat64(eps)
		}},
		{name: "kll", slack: 3, new: func(eps float64, seed int64) sizedSummary {
			return kll.NewFloat64(eps, kll.WithSeed(seed))
		}},
		{name: "fo", slack: 3, new: func(eps float64, seed int64) sizedSummary {
			return fo.NewFloat64(fo.Config{Eps: eps, Delta: delta, Seed: seed})
		}},
	}
}

// shootoutWorkloads materializes the same seven-workload matrix as the
// differential suite: the six generator streams plus the paper's adversarial
// lower-bound stream (whose length is quantized by the construction).
func shootoutWorkloads(n int, seed int64) ([]checker.Workload, error) {
	gen := stream.NewGenerator(seed)
	var out []checker.Workload
	for _, name := range []string{"sorted", "reverse", "shuffled", "zipf", "duplicates", "drift"} {
		st, err := gen.ByName(name, n)
		if err != nil {
			return nil, fmt.Errorf("workload %s: %w", name, err)
		}
		out = append(out, checker.Workload{Name: st.Name(), Items: st.Items()})
	}
	adv, err := bench.AdversarialWorkload(n)
	if err != nil {
		return nil, fmt.Errorf("adversarial workload: %w", err)
	}
	return append(out, checker.Workload{Name: adv.Name, Items: adv.Items}), nil
}

// ShootoutRow is one cell of the S1 matrix.
type ShootoutRow struct {
	Workload      string
	Summary       string
	MaxStored     int
	RetainedBytes int
	WorstError    int
	Allowed       float64
	UpdateNsOp    float64
	Passed        bool
}

// Shootout runs S1: GK vs KLL vs FO across the seven workloads, recording
// peak stored items, peak retained bytes, worst uniform rank error against
// the exact oracle, and amortized update time. Deterministic GK is gated at
// its exact eps; the randomized entrants at the repo-wide 3x slack (their
// exact-eps contract is the statistical gate in internal/checker).
func Shootout(eps, delta float64, n int, seed int64) (*Table, []ShootoutRow, error) {
	t := &Table{
		ID:      "S1",
		Title:   fmt.Sprintf("Shoot-out: GK vs KLL vs FO, space/speed/accuracy (eps=%.4g, delta=%.4g, N=%d)", eps, delta, n),
		Columns: []string{"workload", "summary", "max stored", "retained bytes", "worst rank err", "allowed", "update ns/op", "passes"},
	}
	workloads, err := shootoutWorkloads(n, seed)
	if err != nil {
		return nil, nil, err
	}
	cmp := order.Floats[float64]()
	var rows []ShootoutRow
	for _, w := range workloads {
		for ci, c := range shootoutContenders(delta) {
			// Distinct seed per cell: shared coin flips across cells would
			// correlate the randomized entrants' errors.
			s := c.new(eps, seed+int64(100*ci)+int64(len(rows)))
			maxStored, maxBytes := 0, 0
			start := time.Now()
			for i, x := range w.Items {
				s.Update(x)
				// Sample size periodically (as in E12): polling the accessors
				// after every update would dominate the measured update time.
				if i%64 == 0 {
					if v := s.StoredCount(); v > maxStored {
						maxStored = v
					}
					if v := s.RetainedBytes(); v > maxBytes {
						maxBytes = v
					}
				}
			}
			elapsed := time.Since(start)
			if v := s.StoredCount(); v > maxStored {
				maxStored = v
			}
			if v := s.RetainedBytes(); v > maxBytes {
				maxBytes = v
			}
			rep := checker.VerifyUniform(cmp, s, w.Items, c.slack*eps, 200)
			row := ShootoutRow{
				Workload:      w.Name,
				Summary:       c.name,
				MaxStored:     maxStored,
				RetainedBytes: maxBytes,
				WorstError:    rep.WorstRankError,
				Allowed:       c.slack * eps * float64(len(w.Items)),
				UpdateNsOp:    float64(elapsed.Nanoseconds()) / float64(len(w.Items)),
				Passed:        rep.Passed(),
			}
			rows = append(rows, row)
			t.AddRow(row.Workload, row.Summary, row.MaxStored, row.RetainedBytes,
				row.WorstError, row.Allowed, row.UpdateNsOp, row.Passed)
		}
	}
	t.Notes = append(t.Notes,
		"retained bytes: GK stores 32-byte (value, G, Delta, Wt) tuples; KLL and FO store bare 8-byte float64s — byte columns, not item counts, are the space comparison",
		"gk is gated at exact eps (deterministic guarantee); kll and fo at the 3x randomized slack of the differential suite — their exact-eps contract is the statistical gate (TestRandomizedDifferentialStatisticalGate)",
		"the adversarial workload's length is quantized by the construction (N = 2^k/eps_adv), so its allowed column differs from the generator rows")
	return t, rows, nil
}

// SpaceCurveRow is one cell of the S2 adversarial space curve.
type SpaceCurveRow struct {
	Eps      float64
	N        int
	GKBytes  int
	FOBytes  int
	GKStored int
	FOStored int
	FOBelow  bool
}

// AdversarialSpaceCurve runs S2: retained bytes of GK vs FO on prefixes of
// the paper's adversarial stream at small eps — the regime where the
// Felber–Ostrovsky O((1/eps)·log(1/eps))-word guarantee undercuts the
// deterministic Omega((1/eps)·log eps·N) bound GK is subject to. Prefixes of
// an adversarial stream are themselves valid streams, so every row is an
// honest measurement; the stream's full length is quantized by the
// construction (16384 items at the k=8 cap).
func AdversarialSpaceCurve(epsList []float64, delta float64, seed int64) (*Table, []SpaceCurveRow, error) {
	t := &Table{
		ID:      "S2",
		Title:   fmt.Sprintf("Shoot-out: adversarial-stream retained bytes, GK vs FO (delta=%.4g)", delta),
		Columns: []string{"eps", "n", "gk stored", "gk bytes", "fo stored", "fo bytes", "fo/gk", "fo below gk"},
	}
	adv, err := bench.AdversarialWorkload(1 << 20) // request far past the cap: yields the longest stream
	if err != nil {
		return nil, nil, err
	}
	full := adv.Items
	var rows []SpaceCurveRow
	for _, eps := range epsList {
		for _, n := range []int{2048, 4096, 8192, len(full)} {
			if n > len(full) {
				n = len(full)
			}
			g := gk.NewFloat64(eps)
			f := fo.NewFloat64(fo.Config{Eps: eps, Delta: delta, Seed: seed})
			for _, x := range full[:n] {
				g.Update(x)
				f.Update(x)
			}
			row := SpaceCurveRow{
				Eps:      eps,
				N:        n,
				GKBytes:  g.RetainedBytes(),
				FOBytes:  f.RetainedBytes(),
				GKStored: g.StoredCount(),
				FOStored: f.StoredCount(),
				FOBelow:  f.RetainedBytes() < g.RetainedBytes(),
			}
			rows = append(rows, row)
			t.AddRow(fmt.Sprintf("%g", eps), row.N, row.GKStored, row.GKBytes,
				row.FOStored, row.FOBytes,
				float64(row.FOBytes)/float64(row.GKBytes), row.FOBelow)
		}
	}
	t.Notes = append(t.Notes,
		"fo stores MORE items than gk here (the cascade is still partly in passthrough at these n) but each retained slot is a bare float64, a quarter of gk's tuple — the byte totals are what the store budgets",
		"at eps <= 0.001 fo's bytes stay strictly below gk's at every prefix of the adversarial stream (the 'fo below gk' column)")
	return t, rows, nil
}
