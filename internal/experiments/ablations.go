package experiments

import (
	"fmt"
	"math/big"

	"quantilelb/internal/checker"
	"quantilelb/internal/core"
	"quantilelb/internal/gk"
	"quantilelb/internal/kll"
	"quantilelb/internal/order"
	"quantilelb/internal/stream"
	"quantilelb/internal/summary"
	"quantilelb/internal/universe"
)

// This file contains ablations of the design choices documented in DESIGN.md:
// the GK compression policy, the KLL compactor decay factor, and the
// continuous-universe substitution (big.Rat vs float64). They are reported as
// additional tables (A1–A3) by cmd/experiments -run ablations and exercised by
// the benchmark harness.

// AblationGKPolicy compares the band-based and greedy GK compression policies
// on random and adversarial inputs: stored items and worst rank error.
func AblationGKPolicy(eps float64, n, k int) (*Table, error) {
	t := &Table{
		ID:      "A1",
		Title:   fmt.Sprintf("Ablation: GK compression policy (bands vs greedy), eps=%.4g", eps),
		Columns: []string{"input", "policy", "max stored", "worst rank err", "allowed eps*N"},
	}
	cmp := order.Floats[float64]()
	gen := stream.NewGenerator(1)
	st := gen.Shuffled(n)
	for _, policy := range []gk.Policy{gk.PolicyBands, gk.PolicyGreedy} {
		s := gk.NewWithPolicy(cmp, eps, policy)
		maxStored := 0
		for _, x := range st.Items() {
			s.Update(x)
			if c := s.StoredCount(); c > maxStored {
				maxStored = c
			}
		}
		rep := checker.VerifyUniform(cmp, s, st.Items(), eps, 200)
		t.AddRow("random", policy.String(), maxStored, rep.WorstRankError, eps*float64(n))
	}
	for _, cfg := range []struct {
		policy  gk.Policy
		factory func() summary.Summary[*big.Rat]
	}{
		{gk.PolicyBands, ratGK(eps)},
		{gk.PolicyGreedy, ratGKGreedy(eps)},
	} {
		res, err := newAdversary(eps, cfg.factory).Run(k)
		if err != nil {
			return t, err
		}
		t.AddRow("adversarial", cfg.policy.String(), res.MaxStoredPi,
			fmt.Sprintf("gap %d", res.Gap), res.GapBound)
	}
	t.Notes = append(t.Notes,
		"the greedy policy is the simplified variant whose worst-case space is the open problem of Section 6; on both inputs it tracks the band-based policy closely")
	return t, nil
}

// AblationKLLDecay compares KLL compactor capacity decay factors.
func AblationKLLDecay(eps float64, n int) (*Table, error) {
	t := &Table{
		ID:      "A2",
		Title:   fmt.Sprintf("Ablation: KLL capacity decay factor, eps=%.4g, N=%d", eps, n),
		Columns: []string{"decay c", "max stored", "levels", "worst rank err", "allowed eps*N"},
	}
	cmp := order.Floats[float64]()
	gen := stream.NewGenerator(2)
	st := gen.Uniform(n)
	for _, decay := range []float64{0.55, 2.0 / 3.0, 0.8} {
		s := kll.New(cmp, kll.KForEpsilon(eps), kll.WithSeed(3), kll.WithDecay(decay))
		maxStored := 0
		for _, x := range st.Items() {
			s.Update(x)
			if c := s.StoredCount(); c > maxStored {
				maxStored = c
			}
		}
		rep := checker.VerifyUniform(cmp, s, st.Items(), eps, 200)
		t.AddRow(decay, maxStored, s.Levels(), rep.WorstRankError, eps*float64(n))
	}
	t.Notes = append(t.Notes,
		"smaller decay factors shrink low-level compactors (less space, more compaction error); 2/3 is the published default")
	return t, nil
}

// AblationUniverse documents the continuous-universe substitution: the
// adversarial construction over float64 works only up to a limited recursion
// depth before the interval refinement exhausts the precision, while the
// big.Rat universe keeps going.
func AblationUniverse(eps float64, maxK int) (*Table, error) {
	t := &Table{
		ID:      "A3",
		Title:   fmt.Sprintf("Ablation: continuous universe substitution (big.Rat vs float64), eps=%.4g", eps),
		Columns: []string{"k", "N", "big.Rat max stored", "float64 max stored", "float64 status"},
	}
	ratAdv := newAdversary(eps, ratGK(eps))

	funi := universe.NewFloat64()
	fAdv := &core.Adversary[float64]{
		Uni: funi,
		Cmp: funi.Comparator(),
		Eps: eps,
		NewSummary: func() summary.Summary[float64] {
			return gk.New(funi.Comparator(), eps)
		},
	}
	for k := 1; k <= maxK; k++ {
		ratRes, err := ratAdv.Run(k)
		if err != nil {
			return t, err
		}
		floatStored := "-"
		status := "ok"
		fRes, ferr := fAdv.Run(k)
		if ferr != nil {
			status = "precision exhausted"
		} else {
			floatStored = fmt.Sprintf("%d", fRes.MaxStoredPi)
		}
		t.AddRow(k, ratRes.N, ratRes.MaxStoredPi, floatStored, status)
	}
	t.Notes = append(t.Notes,
		"the paper assumes a continuous universe (any open interval contains more items); float64 satisfies this only to a limited refinement depth, which is why the construction runs over math/big.Rat (see DESIGN.md)")
	return t, nil
}

// Ablations runs all ablation tables with the given parameters.
func Ablations(p Params) ([]*Table, error) {
	var tables []*Table
	a1, err := AblationGKPolicy(p.Eps, p.CompareN, p.K)
	if a1 != nil {
		tables = append(tables, a1)
	}
	if err != nil {
		return tables, err
	}
	a2, err := AblationKLLDecay(p.Eps, p.CompareN)
	if a2 != nil {
		tables = append(tables, a2)
	}
	if err != nil {
		return tables, err
	}
	a3, err := AblationUniverse(p.Eps, p.MaxK)
	if a3 != nil {
		tables = append(tables, a3)
	}
	if err != nil {
		return tables, err
	}
	return tables, nil
}
