// Package experiments contains the drivers that regenerate every figure and
// formal claim of Cormode & Veselý (PODS 2020) as a numeric table, plus the
// cross-summary comparison referenced in the paper's related-work discussion.
//
// The paper is a theory paper: it has no measured evaluation, so the
// "tables and figures" reproduced here are (a) the two illustrative figures
// and (b) one verification table per theorem/lemma/claim, each reporting the
// paper-predicted quantity next to the measured one. See DESIGN.md for the
// experiment index (E1–E12) and EXPERIMENTS.md for recorded results.
package experiments

import (
	"fmt"
	"math"
	"math/big"
	"strings"
	"time"

	"quantilelb/internal/biased"
	"quantilelb/internal/capped"
	"quantilelb/internal/checker"
	"quantilelb/internal/core"
	"quantilelb/internal/gk"
	"quantilelb/internal/kll"
	"quantilelb/internal/mlq"
	"quantilelb/internal/mrl"
	"quantilelb/internal/order"
	"quantilelb/internal/rank"
	"quantilelb/internal/sampling"
	"quantilelb/internal/stream"
	"quantilelb/internal/summary"
	"quantilelb/internal/universe"
)

// Table is a rendered experiment result.
type Table struct {
	// ID is the experiment identifier from DESIGN.md (e.g. "E3").
	ID string
	// Title describes what the table reproduces.
	Title string
	// Columns are the column headers.
	Columns []string
	// Rows are the data rows (already formatted as strings).
	Rows [][]string
	// Notes hold free-form observations appended below the table.
	Notes []string
}

// AddRow appends a data row, formatting every value with %v.
func (t *Table) AddRow(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", x)
		default:
			row[i] = fmt.Sprintf("%v", x)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render returns the table as aligned plain text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteString("\n")
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// ratGK returns a factory producing GK summaries over *big.Rat.
func ratGK(eps float64) func() summary.Summary[*big.Rat] {
	cmp := universe.NewRational().Comparator()
	return func() summary.Summary[*big.Rat] { return gk.New(cmp, eps) }
}

// ratGKGreedy returns a factory for the greedy-compression GK variant.
func ratGKGreedy(eps float64) func() summary.Summary[*big.Rat] {
	cmp := universe.NewRational().Comparator()
	return func() summary.Summary[*big.Rat] { return gk.NewGreedy(cmp, eps) }
}

// ratCapped returns a factory for the capacity-bounded strawman.
func ratCapped(capacity int) func() summary.Summary[*big.Rat] {
	cmp := universe.NewRational().Comparator()
	return func() summary.Summary[*big.Rat] { return capped.New(cmp, capacity) }
}

// ratKLL returns a factory for KLL with a fixed seed (deterministic).
func ratKLL(eps float64, seed int64) func() summary.Summary[*big.Rat] {
	cmp := universe.NewRational().Comparator()
	return func() summary.Summary[*big.Rat] {
		return kll.New(cmp, kll.KForEpsilon(eps), kll.WithSeed(seed))
	}
}

// ratSampling returns a factory for the reservoir sampler with a fixed seed.
func ratSampling(capacity int, seed int64) func() summary.Summary[*big.Rat] {
	cmp := universe.NewRational().Comparator()
	return func() summary.Summary[*big.Rat] { return sampling.New(cmp, capacity, seed) }
}

// ratBiased returns a factory for the biased-quantile summary.
func ratBiased(eps float64) func() summary.Summary[*big.Rat] {
	cmp := universe.NewRational().Comparator()
	return func() summary.Summary[*big.Rat] { return biased.New(cmp, eps) }
}

// newAdversary builds an adversary over the rational universe.
func newAdversary(eps float64, factory func() summary.Summary[*big.Rat]) *core.Adversary[*big.Rat] {
	uni := universe.NewRational()
	return &core.Adversary[*big.Rat]{
		Uni:        uni,
		Cmp:        uni.Comparator(),
		Eps:        eps,
		NewSummary: factory,
	}
}

// Figure1 reproduces the largest-gap computation illustrated in Figure 1 of
// the paper: restricted item arrays whose ranks are 1, 6, 11 and 14 in both
// streams, with the largest gap of size 5 found between the second item of
// I'_π and the third item of I'_ϱ.
func Figure1() (*Table, error) {
	// Fourteen items inside the current interval for each stream; the stored
	// (restricted) arrays occupy ranks 1, 6, 11 and 14, exactly as in the
	// figure. Streams are materialized as the values 1..14 (π) and 101..114
	// (ϱ) — only ranks matter.
	ranksStored := []int{1, 6, 11, 14}
	piItems := make([]float64, 14)
	rhoItems := make([]float64, 14)
	for i := 0; i < 14; i++ {
		piItems[i] = float64(i + 1)
		rhoItems[i] = float64(101 + i)
	}
	oraclePi := rank.Float64Oracle(piItems)
	oracleRho := rank.Float64Oracle(rhoItems)

	t := &Table{
		ID:      "E1",
		Title:   "Figure 1: largest-gap computation on restricted item arrays (ranks 1, 6, 11, 14)",
		Columns: []string{"i", "rank_pi(I'pi[i])", "rank_rho(I'rho[i+1])", "gap_i"},
	}
	bestGap, bestI := 0, 0
	for i := 0; i+1 < len(ranksStored); i++ {
		rPi := oraclePi.Rank(piItems[ranksStored[i]-1])
		rRho := oracleRho.Rank(rhoItems[ranksStored[i+1]-1])
		gap := rRho - rPi
		if gap > bestGap {
			bestGap, bestI = gap, i
		}
		t.AddRow(i+1, rPi, rRho, gap)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("largest gap = %d at i = %d (paper: gap of 5 items between I'pi[2] and I'rho[3])", bestGap, bestI+1))
	if bestGap != 5 {
		return t, fmt.Errorf("experiments: Figure 1 gap = %d, expected 5", bestGap)
	}
	return t, nil
}

// Figure2 reproduces the worked example of Section 4.5 / Figure 2: the
// construction with ε = 1/6 and k = 3 (N = 48, four leaves of 12 items),
// run against a GK summary with the same ε.
func Figure2() (*Table, *core.Result[*big.Rat], error) {
	eps := 1.0 / 6
	adv := newAdversary(eps, ratGK(eps))
	adv.RecordLeaves = true
	adv.CheckIndistinguishability = true
	res, err := adv.Run(3)
	if err != nil {
		return nil, nil, err
	}
	t := &Table{
		ID:      "E2",
		Title:   "Figure 2: construction trace for eps=1/6, k=3 (N=48, 12 items per leaf) against GK",
		Columns: []string{"leaf", "items so far", "stored |I_pi|", "stored |I_rho|", "gap bound 2*eps*n"},
	}
	for _, leaf := range res.Leaves {
		t.AddRow(leaf.LeafIndex, leaf.TotalItems, len(leaf.StoredPi), len(leaf.StoredRho),
			2*eps*float64(leaf.TotalItems))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("final gap(pi, rho) = %d, bound 2*eps*N = %.0f (Lemma 3.4)", res.Gap, res.GapBound),
		fmt.Sprintf("indistinguishable: sizes agree = %v, positions agree = %v", res.SizesAgree, res.PositionsAgree))
	return t, res, nil
}

// Theorem22 measures the space the adversarial construction forces on the GK
// summary as k grows, for each ε, and compares it with the Ω((1/ε)·log εN)
// lower bound and the GK upper bound.
func Theorem22(epsList []float64, maxK int) (*Table, error) {
	t := &Table{
		ID:      "E3",
		Title:   "Theorem 2.2: space forced on GK by the adversarial construction vs k = log2(eps*N)",
		Columns: []string{"eps", "k", "N", "GK max stored", "lower bound c(k+1)/(4eps)", "GK upper bound", "gap", "2*eps*N"},
	}
	for _, eps := range epsList {
		adv := newAdversary(eps, ratGK(eps))
		for k := 1; k <= maxK; k++ {
			res, err := adv.Run(k)
			if err != nil {
				return t, err
			}
			t.AddRow(
				fmt.Sprintf("1/%d", int(math.Round(1/eps))),
				k, res.N, res.MaxStoredPi,
				res.LowerBound,
				gk.UpperBoundSize(eps, res.N),
				res.Gap, res.GapBound,
			)
			if float64(res.MaxStoredPi) < res.LowerBound {
				t.Notes = append(t.Notes, fmt.Sprintf("VIOLATION: eps=%v k=%d stored below lower bound", eps, k))
			}
		}
	}
	t.Notes = append(t.Notes,
		"the paper predicts linear growth in k at fixed eps; absolute constants are not comparable (c = 1/8 - 2eps is not optimized)")
	return t, nil
}

// Lemma34 verifies the gap bound: a correct summary (GK) keeps
// gap(π, ϱ) ≤ 2εN, while a space-capped summary exceeds it and then fails a
// quantile query (the failure witness).
func Lemma34(eps float64, k, capacity int) (*Table, error) {
	t := &Table{
		ID:      "E4",
		Title:   fmt.Sprintf("Lemma 3.4: gap vs 2*eps*N (eps=%.4g, k=%d, capped capacity=%d)", eps, k, capacity),
		Columns: []string{"summary", "max stored", "gap", "2*eps*N", "within bound", "failing query error"},
	}
	// Correct summary.
	resGK, err := newAdversary(eps, ratGK(eps)).Run(k)
	if err != nil {
		return t, err
	}
	t.AddRow("gk", resGK.MaxStoredPi, resGK.Gap, resGK.GapBound, float64(resGK.Gap) <= resGK.GapBound, "-")

	// Capped strawman.
	resCap, err := newAdversary(eps, ratCapped(capacity)).Run(k)
	if err != nil {
		return t, err
	}
	failing := "-"
	if resCap.Witness != nil {
		worst := resCap.Witness.ErrPi
		if resCap.Witness.ErrRho > worst {
			worst = resCap.Witness.ErrRho
		}
		failing = fmt.Sprintf("%d (allowed %.0f) at phi=%.3f", worst, resCap.Witness.AllowedError, resCap.Witness.Phi)
	}
	t.AddRow(fmt.Sprintf("capped(%d)", capacity), resCap.MaxStoredPi, resCap.Gap, resCap.GapBound,
		float64(resCap.Gap) <= resCap.GapBound, failing)
	t.Notes = append(t.Notes,
		"a correct comparison-based summary must keep the gap at most 2*eps*N; once the gap exceeds the bound, the witness query errs by more than eps*N on one stream")
	return t, nil
}

// Claim1 verifies the gap additivity g >= g' + g” - 1 at every internal node
// of the recursion tree.
func Claim1(eps float64, k int) (*Table, error) {
	res, err := newAdversary(eps, ratGK(eps)).Run(k)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E5",
		Title:   fmt.Sprintf("Claim 1: g >= g' + g'' - 1 at every internal node (eps=%.4g, k=%d, GK)", eps, k),
		Columns: []string{"node level", "depth", "g", "g'", "g''", "g' + g'' - 1", "holds"},
	}
	for _, n := range res.Nodes {
		t.AddRow(n.Level, n.Depth, n.Gap, n.GapLeft, n.GapRight, n.GapLeft+n.GapRight-1, n.Claim1OK)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("violations: %d of %d nodes", res.Claim1Violations, len(res.Nodes)))
	return t, nil
}

// SpaceGap verifies the space–gap inequality (Lemma 5.2) at every internal
// node of the recursion tree.
func SpaceGap(eps float64, k int) (*Table, error) {
	res, err := newAdversary(eps, ratGK(eps)).Run(k)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E6",
		Title:   fmt.Sprintf("Lemma 5.2 (space-gap inequality): S_k >= c(log2 g + 1)(N_k/g - 1/4eps), c = 1/8 - 2eps (eps=%.4g, k=%d, GK)", eps, k),
		Columns: []string{"node level", "N_k", "gap g", "S_k (restricted stored)", "RHS", "holds"},
	}
	for _, n := range res.Nodes {
		t.AddRow(n.Level, n.Items, n.Gap, n.RestrictedStored, n.SpaceGapRHS, n.SpaceGapOK)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("violations: %d of %d nodes", res.SpaceGapViolations, len(res.Nodes)))
	return t, nil
}

// Sandwich plots (as a table) the lower bound, the measured GK space on the
// adversarial stream, the measured GK space on a random stream of the same
// length, and the GK upper bound, as k grows.
func Sandwich(eps float64, maxK int) (*Table, error) {
	t := &Table{
		ID:      "E7",
		Title:   fmt.Sprintf("Tightness: lower bound <= GK(adversarial) <= GK upper bound (eps=%.4g)", eps),
		Columns: []string{"k", "N", "lower bound", "GK adversarial", "GK-greedy adversarial", "GK random stream", "GK upper bound"},
	}
	adv := newAdversary(eps, ratGK(eps))
	advGreedy := newAdversary(eps, ratGKGreedy(eps))
	gen := stream.NewGenerator(1)
	for k := 1; k <= maxK; k++ {
		res, err := adv.Run(k)
		if err != nil {
			return t, err
		}
		resGreedy, err := advGreedy.Run(k)
		if err != nil {
			return t, err
		}
		// Random stream of the same length for contrast.
		st := gen.Shuffled(res.N)
		g := gk.NewFloat64(eps)
		maxStored := 0
		for _, x := range st.Items() {
			g.Update(x)
			if g.StoredCount() > maxStored {
				maxStored = g.StoredCount()
			}
		}
		t.AddRow(k, res.N, res.LowerBound, res.MaxStoredPi, resGreedy.MaxStoredPi, maxStored, gk.UpperBoundSize(eps, res.N))
	}
	t.Notes = append(t.Notes,
		"the shape to check: the adversarial columns grow roughly linearly in k while staying between the two bound columns",
		"the GK-greedy column addresses the open problem in Section 6: whether the simplified greedy compression also meets the O((1/eps) log eps N) bound (here: measured, not proven)")
	return t, nil
}

// MedianCorollary runs the Theorem 6.1 adversary against GK (which must
// succeed) and against the capped strawman (which must fail).
func MedianCorollary(eps float64, k, capacity int) (*Table, error) {
	t := &Table{
		ID:      "E8",
		Title:   fmt.Sprintf("Theorem 6.1: approximate-median adversary (eps=%.4g, k=%d)", eps, k),
		Columns: []string{"summary", "final N", "padding", "median rank err (pi)", "median rank err (rho)", "allowed eps*N", "fails"},
	}
	for _, cfg := range []struct {
		name    string
		factory func() summary.Summary[*big.Rat]
	}{
		{"gk", ratGK(eps)},
		{fmt.Sprintf("capped(%d)", capacity), ratCapped(capacity)},
	} {
		res, err := newAdversary(eps, cfg.factory).RunMedian(k)
		if err != nil {
			return t, err
		}
		t.AddRow(cfg.name, res.FinalN, res.PaddingItems, res.ErrPi, res.ErrRho, res.AllowedError, res.Fails())
	}
	t.Notes = append(t.Notes,
		"after appending items beyond one end of the stream, the exact median falls inside the largest gap; a summary that stored o((1/eps) log eps N) items cannot answer it")
	return t, nil
}

// RankCorollary runs the Theorem 6.2 adversary.
func RankCorollary(eps float64, k, capacity int) (*Table, error) {
	t := &Table{
		ID:      "E9",
		Title:   fmt.Sprintf("Theorem 6.2: rank-estimation adversary (eps=%.4g, k=%d)", eps, k),
		Columns: []string{"summary", "gap", "2*eps*N+2", "rank err (q_pi)", "rank err (q_rho)", "allowed eps*N", "fails"},
	}
	for _, cfg := range []struct {
		name    string
		factory func() summary.Summary[*big.Rat]
	}{
		{"gk", ratGK(eps)},
		{fmt.Sprintf("capped(%d)", capacity), ratCapped(capacity)},
	} {
		res, err := newAdversary(eps, cfg.factory).RunRank(k)
		if err != nil {
			return t, err
		}
		t.AddRow(cfg.name, res.Gap, 2*eps*float64(res.Construction.N)+2, res.ErrPi, res.ErrRho, res.AllowedError, res.Fails())
	}
	t.Notes = append(t.Notes,
		"q_pi and q_rho are fresh items from the extreme regions of the largest gap; a comparison-based structure answers both identically, so once the gap exceeds 2*eps*N + 2 one of the answers must be off by more than eps*N")
	return t, nil
}

// BiasedCorollary runs the Theorem 6.5 k-phase construction against the
// biased-quantile summary and reports per-phase and total space.
func BiasedCorollary(eps float64, phases int) (*Table, error) {
	res, err := newAdversary(eps, ratBiased(eps)).RunBiased(phases)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E10",
		Title:   fmt.Sprintf("Theorem 6.5: biased-quantile k-phase construction (eps=%.4g, %d phases)", eps, phases),
		Columns: []string{"phase", "items appended", "stored from phase (final)", "per-phase lower bound"},
	}
	for _, p := range res.PhaseReports {
		t.AddRow(p.Phase, p.ItemsAppended, p.StoredFromPhase, p.LowerBoundForPhase)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("total items %d, max stored %d, final stored %d, summed lower bound %.1f (Omega((1/eps) log^2 eps N))",
			res.TotalItems, res.MaxStored, res.FinalStored, res.LowerBound),
		fmt.Sprintf("upper bound (merge-and-prune, Zhang-Wang): %.0f items", biased.UpperBoundSize(eps, res.TotalItems)))
	return t, nil
}

// RandomizedAdversary runs the construction against randomized summaries
// (KLL with a fixed seed and a reservoir sampler) and reports their space and
// whether they keep the gap within the deterministic bound — illustrating
// Section 6.3: fixing the random bits yields a deterministic summary to which
// the lower bound applies, while allowing failures lets the summary store far
// fewer items.
func RandomizedAdversary(eps float64, k int) (*Table, error) {
	t := &Table{
		ID:      "E11",
		Title:   fmt.Sprintf("Section 6.3 / Theorem 6.4: randomized summaries under the adversary (eps=%.4g, k=%d)", eps, k),
		Columns: []string{"summary", "max stored", "deterministic lower bound", "gap", "2*eps*N", "within gap bound"},
	}
	samplingCap := sampling.SizeForAccuracy(eps, 0.1)
	for _, cfg := range []struct {
		name    string
		factory func() summary.Summary[*big.Rat]
	}{
		{"gk (deterministic)", ratGK(eps)},
		{"kll (fixed seed)", ratKLL(eps, 42)},
		{fmt.Sprintf("reservoir(%d)", samplingCap), ratSampling(samplingCap, 42)},
	} {
		res, err := newAdversary(eps, cfg.factory).Run(k)
		if err != nil {
			return t, err
		}
		t.AddRow(cfg.name, res.MaxStoredPi, res.LowerBound, res.Gap, res.GapBound,
			float64(res.Gap) <= res.GapBound)
	}
	t.Notes = append(t.Notes,
		"with fixed random bits a randomized summary is deterministic and comparison-based, so Theorem 2.2 applies: either it stores Omega((1/eps) log eps N) items or its gap exceeds 2*eps*N and some quantile query fails (the failure probability is charged to delta)")
	return t, nil
}

// CompareRow is one row of the cross-summary comparison.
type CompareRow struct {
	Workload   string
	Summary    string
	MaxStored  int
	WorstError int
	Allowed    float64
	UpdateNsOp float64
	Passed     bool
}

// Compare runs the Luo-et-al-style cross-summary comparison: every summary
// processes every workload; space, worst rank error and update time are
// reported.
func Compare(eps float64, n int, workloads []string, seed int64) (*Table, []CompareRow, error) {
	t := &Table{
		ID:      "E12",
		Title:   fmt.Sprintf("Cross-summary comparison (eps=%.4g, N=%d)", eps, n),
		Columns: []string{"workload", "summary", "max stored", "worst rank err", "allowed eps*N", "update ns/op", "passes"},
	}
	cmp := order.Floats[float64]()
	var rows []CompareRow
	for _, w := range workloads {
		gen := stream.NewGenerator(seed)
		st, err := gen.ByName(w, n)
		if err != nil {
			return nil, nil, err
		}
		summaries := []struct {
			name string
			s    summary.Summary[float64]
		}{
			{"gk-bands", gk.NewWithPolicy(cmp, eps, gk.PolicyBands)},
			{"gk-greedy", gk.NewWithPolicy(cmp, eps, gk.PolicyGreedy)},
			{"mrl", mrl.New(cmp, eps, n)},
			{"mlq", mlq.NewFloat64(eps)},
			{"kll", kll.New(cmp, kll.KForEpsilon(eps), kll.WithSeed(seed))},
			{"reservoir", sampling.New(cmp, sampling.SizeForAccuracy(eps, 0.05), seed)},
			{"biased", biased.New(cmp, eps)},
			{"capped", capped.New(cmp, rank.OfflineOptimalSize(eps)*2)},
		}
		for _, cfg := range summaries {
			maxStored := 0
			start := time.Now()
			for i, x := range st.Items() {
				cfg.s.Update(x)
				// Sample the stored size periodically: calling StoredCount
				// after every update would dominate the measured update time
				// for summaries whose size accessor is not O(1).
				if i%64 == 0 {
					if c := cfg.s.StoredCount(); c > maxStored {
						maxStored = c
					}
				}
			}
			if c := cfg.s.StoredCount(); c > maxStored {
				maxStored = c
			}
			elapsed := time.Since(start)
			rep := checker.VerifyUniform(cmp, cfg.s, st.Items(), eps, 200)
			row := CompareRow{
				Workload:   w,
				Summary:    cfg.name,
				MaxStored:  maxStored,
				WorstError: rep.WorstRankError,
				Allowed:    eps * float64(n),
				UpdateNsOp: float64(elapsed.Nanoseconds()) / float64(n),
				Passed:     rep.Passed(),
			}
			rows = append(rows, row)
			t.AddRow(row.Workload, row.Summary, row.MaxStored, row.WorstError, row.Allowed,
				row.UpdateNsOp, row.Passed)
		}
	}
	t.Notes = append(t.Notes,
		"randomized summaries (kll, reservoir) and the capped strawman carry no deterministic worst-case guarantee; deterministic summaries (gk, mrl, mlq, biased) must pass on every workload")
	return t, rows, nil
}

// Params bundles the default parameters used by All and by cmd/experiments.
type Params struct {
	// Eps is the accuracy parameter used by most experiments.
	Eps float64
	// MaxK is the deepest recursion level for the space-growth experiments.
	MaxK int
	// K is the recursion level for the single-run experiments.
	K int
	// CappedCapacity is the capacity of the strawman summary.
	CappedCapacity int
	// BiasedPhases is the number of phases of the Theorem 6.5 construction.
	BiasedPhases int
	// CompareN is the stream length of the cross-summary comparison.
	CompareN int
	// CompareWorkloads lists the workloads of the comparison.
	CompareWorkloads []string
	// Seed is the PRNG seed for workload generation.
	Seed int64
}

// DefaultParams returns moderate parameters that complete in a couple of
// minutes on a laptop.
func DefaultParams() Params {
	return Params{
		Eps:              1.0 / 32,
		MaxK:             9,
		K:                8,
		CappedCapacity:   16,
		BiasedPhases:     6,
		CompareN:         100000,
		CompareWorkloads: []string{"sorted", "shuffled", "uniform", "zipf"},
		Seed:             1,
	}
}

// QuickParams returns small parameters for tests and smoke runs.
func QuickParams() Params {
	return Params{
		Eps:              1.0 / 32,
		MaxK:             5,
		K:                5,
		CappedCapacity:   8,
		BiasedPhases:     4,
		CompareN:         20000,
		CompareWorkloads: []string{"shuffled", "uniform"},
		Seed:             1,
	}
}

// All runs every experiment with the given parameters and returns the tables
// in experiment order. Errors abort the run and are returned with the tables
// produced so far.
func All(p Params) ([]*Table, error) {
	var tables []*Table
	t1, err := Figure1()
	if t1 != nil {
		tables = append(tables, t1)
	}
	if err != nil {
		return tables, err
	}
	t2, _, err := Figure2()
	if t2 != nil {
		tables = append(tables, t2)
	}
	if err != nil {
		return tables, err
	}
	t3, err := Theorem22([]float64{p.Eps, p.Eps / 2}, p.MaxK)
	if t3 != nil {
		tables = append(tables, t3)
	}
	if err != nil {
		return tables, err
	}
	t4, err := Lemma34(p.Eps, p.K, p.CappedCapacity)
	if t4 != nil {
		tables = append(tables, t4)
	}
	if err != nil {
		return tables, err
	}
	t5, err := Claim1(p.Eps, p.K)
	if t5 != nil {
		tables = append(tables, t5)
	}
	if err != nil {
		return tables, err
	}
	t6, err := SpaceGap(p.Eps, p.K)
	if t6 != nil {
		tables = append(tables, t6)
	}
	if err != nil {
		return tables, err
	}
	t7, err := Sandwich(p.Eps, p.MaxK)
	if t7 != nil {
		tables = append(tables, t7)
	}
	if err != nil {
		return tables, err
	}
	t8, err := MedianCorollary(p.Eps, p.K, p.CappedCapacity)
	if t8 != nil {
		tables = append(tables, t8)
	}
	if err != nil {
		return tables, err
	}
	t9, err := RankCorollary(p.Eps, p.K, p.CappedCapacity)
	if t9 != nil {
		tables = append(tables, t9)
	}
	if err != nil {
		return tables, err
	}
	t10, err := BiasedCorollary(p.Eps, p.BiasedPhases)
	if t10 != nil {
		tables = append(tables, t10)
	}
	if err != nil {
		return tables, err
	}
	t11, err := RandomizedAdversary(p.Eps, p.K)
	if t11 != nil {
		tables = append(tables, t11)
	}
	if err != nil {
		return tables, err
	}
	t12, _, err := Compare(p.Eps, p.CompareN, p.CompareWorkloads, p.Seed)
	if t12 != nil {
		tables = append(tables, t12)
	}
	if err != nil {
		return tables, err
	}
	return tables, nil
}
