package experiments

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID:      "T0",
		Title:   "demo",
		Columns: []string{"a", "bbbb"},
	}
	tab.AddRow(1, 2.5)
	tab.AddRow("x", "y")
	tab.Notes = append(tab.Notes, "a note")
	out := tab.Render()
	if !strings.Contains(out, "T0 — demo") {
		t.Errorf("missing title: %q", out)
	}
	if !strings.Contains(out, "2.50") {
		t.Errorf("float formatting missing: %q", out)
	}
	if !strings.Contains(out, "note: a note") {
		t.Errorf("notes missing: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 {
		t.Errorf("expected 6 lines (title, header, separator, 2 rows, note), got %d", len(lines))
	}
}

func TestFigure1(t *testing.T) {
	tab, err := Figure1()
	if err != nil {
		t.Fatalf("Figure1: %v", err)
	}
	if len(tab.Rows) != 3 {
		t.Errorf("expected 3 gap rows, got %d", len(tab.Rows))
	}
	if !strings.Contains(strings.Join(tab.Notes, " "), "largest gap = 5") {
		t.Errorf("expected the figure's gap of 5: %v", tab.Notes)
	}
}

func TestFigure2(t *testing.T) {
	tab, res, err := Figure2()
	if err != nil {
		t.Fatalf("Figure2: %v", err)
	}
	if res.N != 48 {
		t.Errorf("N = %d, want 48", res.N)
	}
	if len(tab.Rows) != 4 {
		t.Errorf("expected 4 leaf rows, got %d", len(tab.Rows))
	}
	if float64(res.Gap) > res.GapBound {
		t.Errorf("GK violated the gap bound in the Figure 2 example")
	}
}

func TestTheorem22Small(t *testing.T) {
	tab, err := Theorem22([]float64{1.0 / 32}, 5)
	if err != nil {
		t.Fatalf("Theorem22: %v", err)
	}
	if len(tab.Rows) != 5 {
		t.Errorf("expected 5 rows, got %d", len(tab.Rows))
	}
	for _, note := range tab.Notes {
		if strings.Contains(note, "VIOLATION") {
			t.Errorf("lower bound violated: %s", note)
		}
	}
}

func TestLemma34Small(t *testing.T) {
	tab, err := Lemma34(1.0/32, 6, 8)
	if err != nil {
		t.Fatalf("Lemma34: %v", err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("expected 2 rows")
	}
	// GK row must be within the bound; the capped row must not be.
	if tab.Rows[0][4] != "true" {
		t.Errorf("GK should be within the gap bound: %v", tab.Rows[0])
	}
	if tab.Rows[1][4] != "false" {
		t.Errorf("capped summary should exceed the gap bound: %v", tab.Rows[1])
	}
	if tab.Rows[1][5] == "-" {
		t.Errorf("capped summary should have a failure witness")
	}
}

func TestClaim1AndSpaceGapSmall(t *testing.T) {
	c1, err := Claim1(1.0/32, 5)
	if err != nil {
		t.Fatalf("Claim1: %v", err)
	}
	if len(c1.Rows) != 15 {
		t.Errorf("k=5 should have 15 internal nodes, got %d", len(c1.Rows))
	}
	if !strings.Contains(strings.Join(c1.Notes, " "), "violations: 0") {
		t.Errorf("Claim 1 should hold at every node: %v", c1.Notes)
	}
	sg, err := SpaceGap(1.0/32, 5)
	if err != nil {
		t.Fatalf("SpaceGap: %v", err)
	}
	if !strings.Contains(strings.Join(sg.Notes, " "), "violations: 0") {
		t.Errorf("space-gap inequality should hold at every node: %v", sg.Notes)
	}
}

func TestSandwichSmall(t *testing.T) {
	tab, err := Sandwich(1.0/32, 4)
	if err != nil {
		t.Fatalf("Sandwich: %v", err)
	}
	if len(tab.Rows) != 4 {
		t.Errorf("expected 4 rows, got %d", len(tab.Rows))
	}
}

func TestMedianAndRankCorollariesSmall(t *testing.T) {
	med, err := MedianCorollary(1.0/32, 6, 8)
	if err != nil {
		t.Fatalf("MedianCorollary: %v", err)
	}
	if len(med.Rows) != 2 {
		t.Fatalf("expected 2 rows")
	}
	if med.Rows[0][6] != "false" {
		t.Errorf("GK should not fail the median adversary: %v", med.Rows[0])
	}
	rk, err := RankCorollary(1.0/32, 6, 8)
	if err != nil {
		t.Fatalf("RankCorollary: %v", err)
	}
	if rk.Rows[0][6] != "false" {
		t.Errorf("GK should not fail the rank adversary: %v", rk.Rows[0])
	}
	if rk.Rows[1][6] != "true" {
		t.Errorf("capped summary should fail the rank adversary: %v", rk.Rows[1])
	}
}

func TestBiasedCorollarySmall(t *testing.T) {
	tab, err := BiasedCorollary(1.0/32, 4)
	if err != nil {
		t.Fatalf("BiasedCorollary: %v", err)
	}
	if len(tab.Rows) != 4 {
		t.Errorf("expected 4 phase rows, got %d", len(tab.Rows))
	}
}

func TestRandomizedAdversarySmall(t *testing.T) {
	tab, err := RandomizedAdversary(1.0/32, 5)
	if err != nil {
		t.Fatalf("RandomizedAdversary: %v", err)
	}
	if len(tab.Rows) != 3 {
		t.Errorf("expected 3 rows, got %d", len(tab.Rows))
	}
	// The deterministic GK row must respect the gap bound.
	if tab.Rows[0][5] != "true" {
		t.Errorf("GK row should be within the gap bound: %v", tab.Rows[0])
	}
}

func TestCompareSmall(t *testing.T) {
	tab, rows, err := Compare(0.02, 20000, []string{"shuffled", "zipf"}, 1)
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if len(rows) != 16 {
		t.Errorf("expected 2 workloads x 8 summaries = 16 rows, got %d", len(rows))
	}
	if len(tab.Rows) != len(rows) {
		t.Errorf("table and row slice disagree")
	}
	for _, r := range rows {
		// Deterministic uniform-error summaries must pass.
		if r.Summary == "gk-bands" || r.Summary == "gk-greedy" || r.Summary == "mrl" || r.Summary == "mlq" || r.Summary == "biased" {
			if !r.Passed {
				t.Errorf("%s on %s should pass the uniform check (worst err %d, allowed %v)",
					r.Summary, r.Workload, r.WorstError, r.Allowed)
			}
		}
		if r.MaxStored <= 0 || r.UpdateNsOp <= 0 {
			t.Errorf("row has degenerate measurements: %+v", r)
		}
	}
	// Unknown workload propagates an error.
	if _, _, err := Compare(0.02, 100, []string{"nope"}, 1); err == nil {
		t.Errorf("unknown workload should error")
	}
}

func TestQuickParamsAll(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping full experiment sweep in -short mode")
	}
	p := QuickParams()
	tables, err := All(p)
	if err != nil {
		t.Fatalf("All: %v", err)
	}
	if len(tables) != 12 {
		t.Errorf("expected 12 tables, got %d", len(tables))
	}
	ids := map[string]bool{}
	for _, tab := range tables {
		ids[tab.ID] = true
		if out := tab.Render(); len(out) == 0 {
			t.Errorf("table %s rendered empty", tab.ID)
		}
	}
	for _, want := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12"} {
		if !ids[want] {
			t.Errorf("missing experiment %s", want)
		}
	}
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams()
	if p.Eps <= 0 || p.MaxK < p.K || p.CompareN <= 0 || len(p.CompareWorkloads) == 0 {
		t.Errorf("default params look wrong: %+v", p)
	}
}
