package experiments

import (
	"strings"
	"testing"
)

func TestAblationGKPolicy(t *testing.T) {
	tab, err := AblationGKPolicy(1.0/32, 20000, 5)
	if err != nil {
		t.Fatalf("AblationGKPolicy: %v", err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("expected 4 rows (2 inputs x 2 policies), got %d", len(tab.Rows))
	}
	// Random-stream rows must be within the allowance.
	for _, row := range tab.Rows[:2] {
		if row[0] != "random" {
			t.Errorf("unexpected row order: %v", row)
		}
	}
	if out := tab.Render(); !strings.Contains(out, "bands") || !strings.Contains(out, "greedy") {
		t.Errorf("both policies should appear: %s", out)
	}
}

func TestAblationKLLDecay(t *testing.T) {
	tab, err := AblationKLLDecay(0.02, 30000)
	if err != nil {
		t.Fatalf("AblationKLLDecay: %v", err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("expected 3 decay rows, got %d", len(tab.Rows))
	}
}

func TestAblationUniverse(t *testing.T) {
	tab, err := AblationUniverse(1.0/32, 4)
	if err != nil {
		t.Fatalf("AblationUniverse: %v", err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("expected 4 rows, got %d", len(tab.Rows))
	}
	// The rational universe column must always be populated.
	for _, row := range tab.Rows {
		if row[2] == "" || row[2] == "-" {
			t.Errorf("big.Rat column missing: %v", row)
		}
	}
}

func TestAblationsDriver(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping ablation sweep in -short mode")
	}
	p := QuickParams()
	tables, err := Ablations(p)
	if err != nil {
		t.Fatalf("Ablations: %v", err)
	}
	if len(tables) != 3 {
		t.Fatalf("expected 3 ablation tables, got %d", len(tables))
	}
	for _, tab := range tables {
		if !strings.HasPrefix(tab.ID, "A") {
			t.Errorf("ablation table id %q should start with A", tab.ID)
		}
	}
}
