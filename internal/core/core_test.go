package core

import (
	"math/big"
	"testing"

	"quantilelb/internal/capped"
	"quantilelb/internal/gk"
	"quantilelb/internal/order"
	"quantilelb/internal/summary"
	"quantilelb/internal/universe"
)

// ratAdversary builds an adversary over the rational universe for the given
// summary factory.
func ratAdversary(eps float64, factory func() summary.Summary[*big.Rat]) *Adversary[*big.Rat] {
	uni := universe.NewRational()
	return &Adversary[*big.Rat]{
		Uni:        uni,
		Cmp:        uni.Comparator(),
		Eps:        eps,
		NewSummary: factory,
	}
}

func gkFactory(eps float64) func() summary.Summary[*big.Rat] {
	uni := universe.NewRational()
	return func() summary.Summary[*big.Rat] {
		return gk.New(uni.Comparator(), eps)
	}
}

func cappedFactory(capacity int) func() summary.Summary[*big.Rat] {
	uni := universe.NewRational()
	return func() summary.Summary[*big.Rat] {
		return capped.New(uni.Comparator(), capacity)
	}
}

func TestValidate(t *testing.T) {
	uni := universe.NewRational()
	cases := []Adversary[*big.Rat]{
		{},
		{Uni: uni},
		{Uni: uni, Cmp: uni.Comparator()},
		{Uni: uni, Cmp: uni.Comparator(), Eps: 2},
		{Uni: uni, Cmp: uni.Comparator(), Eps: 0.1},
	}
	for i, a := range cases {
		if err := a.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	ok := ratAdversary(0.1, gkFactory(0.1))
	if err := ok.Validate(); err != nil {
		t.Errorf("valid adversary rejected: %v", err)
	}
	if _, err := ok.Run(0); err == nil {
		t.Errorf("k=0 should be rejected")
	}
}

func TestHelperFunctions(t *testing.T) {
	if StreamLength(1.0/16, 3) != 16*8 {
		t.Errorf("StreamLength(1/16, 3) = %d, want 128", StreamLength(1.0/16, 3))
	}
	if LowerBoundItems(0.25, 5) != 0 {
		t.Errorf("lower bound with eps >= 1/16 should be 0 (constant non-positive)")
	}
	lb4 := LowerBoundItems(1.0/32, 4)
	lb8 := LowerBoundItems(1.0/32, 8)
	if lb4 <= 0 || lb8 <= lb4 {
		t.Errorf("lower bound should be positive and increasing in k: %v vs %v", lb4, lb8)
	}
	if SpaceGapConstant(1.0/32) <= 0 {
		t.Errorf("space-gap constant should be positive for eps < 1/16")
	}
	if SpaceGapConstant(0.1) >= 0.125 {
		t.Errorf("space-gap constant should shrink with eps")
	}
}

func TestConstructionAgainstGK(t *testing.T) {
	eps := 1.0 / 32
	adv := ratAdversary(eps, gkFactory(eps))
	adv.CheckIndistinguishability = true
	for k := 1; k <= 6; k++ {
		res, err := adv.Run(k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		wantN := StreamLength(eps, k)
		if res.N != wantN {
			t.Errorf("k=%d: N = %d, want %d", k, res.N, wantN)
		}
		if len(res.Pi) != wantN || len(res.Rho) != wantN {
			t.Errorf("k=%d: stream lengths %d/%d, want %d", k, len(res.Pi), len(res.Rho), wantN)
		}
		if !res.SizesAgree {
			t.Errorf("k=%d: GK stored different numbers of items on indistinguishable streams", k)
		}
		if !res.PositionsAgree {
			t.Errorf("k=%d: stored items at different stream positions (not comparison-based?)", k)
		}
		// GK is a correct ε-approximate summary: the gap must obey Lemma 3.4.
		if float64(res.Gap) > res.GapBound {
			t.Errorf("k=%d: gap %d exceeds 2εN = %v for a correct summary", k, res.Gap, res.GapBound)
		}
		if res.Witness != nil {
			t.Errorf("k=%d: unexpected failure witness for a correct summary", k)
		}
		// Theorem 2.2: space at least the (small-constant) lower bound.
		if float64(res.MaxStoredPi) < res.LowerBound {
			t.Errorf("k=%d: GK stored %d items, below the theoretical lower bound %v",
				k, res.MaxStoredPi, res.LowerBound)
		}
		// Claim 1 and the space–gap inequality hold for every internal node.
		if res.Claim1Violations != 0 {
			t.Errorf("k=%d: %d Claim 1 violations", k, res.Claim1Violations)
		}
		if res.SpaceGapViolations != 0 {
			t.Errorf("k=%d: %d space-gap inequality violations", k, res.SpaceGapViolations)
		}
		if k > 1 && len(res.Nodes) != (1<<uint(k-1))-1 {
			t.Errorf("k=%d: %d internal nodes, want %d", k, len(res.Nodes), (1<<uint(k-1))-1)
		}
	}
}

func TestSpaceGrowsWithK(t *testing.T) {
	eps := 1.0 / 32
	adv := ratAdversary(eps, gkFactory(eps))
	res4, err := adv.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	res8, err := adv.Run(8)
	if err != nil {
		t.Fatal(err)
	}
	if res8.MaxStoredPi <= res4.MaxStoredPi {
		t.Errorf("forced space should grow with k: k=4 -> %d, k=8 -> %d",
			res4.MaxStoredPi, res8.MaxStoredPi)
	}
}

func TestCappedSummaryFailsLemma34(t *testing.T) {
	eps := 1.0 / 32
	// Capacity far below (1/eps)·log(eps N): with k=7 the bound is ~  a few
	// hundred; 8 items cannot possibly cover the stream.
	adv := ratAdversary(eps, cappedFactory(8))
	res, err := adv.Run(7)
	if err != nil {
		t.Fatal(err)
	}
	if !res.SizesAgree {
		t.Fatalf("capped summary is deterministic and comparison-based; sizes must agree")
	}
	if float64(res.Gap) <= res.GapBound {
		t.Fatalf("capped summary with capacity 8 should exceed the gap bound: gap %d, bound %v",
			res.Gap, res.GapBound)
	}
	if res.Witness == nil {
		t.Fatalf("expected a failure witness when the gap exceeds 2εN")
	}
	if !res.Witness.Exceeds() {
		t.Errorf("witness does not demonstrate a failure: %+v", *res.Witness)
	}
}

func TestConstructionDeterministic(t *testing.T) {
	eps := 1.0 / 16
	adv := ratAdversary(eps, gkFactory(eps))
	a, err := adv.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := adv.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Pi) != len(b.Pi) {
		t.Fatalf("different stream lengths across runs")
	}
	cmp := universe.NewRational().Comparator()
	for i := range a.Pi {
		if cmp(a.Pi[i], b.Pi[i]) != 0 || cmp(a.Rho[i], b.Rho[i]) != 0 {
			t.Fatalf("construction not deterministic at position %d", i)
		}
	}
	if a.Gap != b.Gap || a.MaxStoredPi != b.MaxStoredPi {
		t.Fatalf("reports differ across identical runs")
	}
}

func TestStreamsAreIncreasingPerLeafAndDistinct(t *testing.T) {
	eps := 1.0 / 16
	adv := ratAdversary(eps, gkFactory(eps))
	adv.RecordLeaves = true
	res, err := adv.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	cmp := universe.NewRational().Comparator()
	if len(res.Leaves) != 4 {
		t.Fatalf("k=3 should have 4 leaves, got %d", len(res.Leaves))
	}
	m := int(2 / eps)
	for _, leaf := range res.Leaves {
		if len(leaf.PiItems) != m || len(leaf.RhoItems) != m {
			t.Errorf("leaf %d appended %d/%d items, want %d", leaf.LeafIndex, len(leaf.PiItems), len(leaf.RhoItems), m)
		}
		for i := 1; i < len(leaf.PiItems); i++ {
			if cmp(leaf.PiItems[i-1], leaf.PiItems[i]) >= 0 {
				t.Errorf("leaf %d: pi items not strictly increasing", leaf.LeafIndex)
			}
			if cmp(leaf.RhoItems[i-1], leaf.RhoItems[i]) >= 0 {
				t.Errorf("leaf %d: rho items not strictly increasing", leaf.LeafIndex)
			}
		}
	}
	// All items within each stream are distinct.
	sortedPi := order.Sorted(cmp, res.Pi)
	for i := 1; i < len(sortedPi); i++ {
		if cmp(sortedPi[i-1], sortedPi[i]) == 0 {
			t.Fatalf("duplicate item in stream pi")
		}
	}
}

func TestFigure2Parameters(t *testing.T) {
	// The worked example of Section 4.5: eps = 1/6, k = 3, N_3 = 48, leaves
	// append 12 items each.
	eps := 1.0 / 6
	adv := ratAdversary(eps, gkFactory(eps))
	adv.RecordLeaves = true
	res, err := adv.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 48 {
		t.Errorf("N = %d, want 48", res.N)
	}
	if len(res.Leaves) != 4 {
		t.Errorf("leaves = %d, want 4", len(res.Leaves))
	}
	for i, leaf := range res.Leaves {
		if leaf.TotalItems != 12*(i+1) {
			t.Errorf("leaf %d total items = %d, want %d", i+1, leaf.TotalItems, 12*(i+1))
		}
	}
	// Lemma 3.4 example: the largest gap can be at most 2εN_1 = 4 after the
	// first leaf; globally at most 2εN_3 = 16 for a correct summary.
	if float64(res.Gap) > res.GapBound {
		t.Errorf("gap %d exceeds bound %v", res.Gap, res.GapBound)
	}
}

func TestFloat64UniverseShallow(t *testing.T) {
	// The float64 universe supports shallow constructions; this documents the
	// substitution (DESIGN.md): big.Rat is needed only for deep recursions.
	uni := universe.NewFloat64()
	eps := 1.0 / 16
	adv := &Adversary[float64]{
		Uni: uni,
		Cmp: uni.Comparator(),
		Eps: eps,
		NewSummary: func() summary.Summary[float64] {
			return gk.New(uni.Comparator(), eps)
		},
	}
	res, err := adv.Run(4)
	if err != nil {
		t.Fatalf("shallow float64 construction should succeed: %v", err)
	}
	if float64(res.Gap) > res.GapBound {
		t.Errorf("gap bound violated on float64 universe")
	}
}

func TestNodeReportsPopulated(t *testing.T) {
	eps := 1.0 / 16
	adv := ratAdversary(eps, gkFactory(eps))
	res, err := adv.Run(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) == 0 {
		t.Fatalf("expected node reports")
	}
	for _, n := range res.Nodes {
		if n.Level < 2 || n.Items <= 0 {
			t.Errorf("node report has invalid level/items: %+v", n)
		}
		if n.Gap < 1 || n.GapLeft < 1 || n.GapRight < 1 {
			t.Errorf("gaps should be at least 1: %+v", n)
		}
		if n.RestrictedStored < 2 {
			t.Errorf("restricted size includes the two endpoints: %+v", n)
		}
		if n.IntervalPi == "" || n.IntervalRho == "" {
			t.Errorf("interval descriptions missing: %+v", n)
		}
	}
	// The root node is reported last (post-order) and covers all items.
	root := res.Nodes[len(res.Nodes)-1]
	if root.Level != 4 || root.Items != res.N {
		t.Errorf("root node report wrong: %+v", root)
	}
}

func TestFailureWitnessExceeds(t *testing.T) {
	w := FailureWitness{ErrPi: 10, ErrRho: 1, AllowedError: 5}
	if !w.Exceeds() {
		t.Errorf("ErrPi beyond allowed should exceed")
	}
	w = FailureWitness{ErrPi: 1, ErrRho: 1, AllowedError: 5}
	if w.Exceeds() {
		t.Errorf("small errors should not exceed")
	}
}
