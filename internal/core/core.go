// Package core implements the primary contribution of Cormode & Veselý,
// "A Tight Lower Bound for Comparison-Based Quantile Summaries" (PODS 2020):
// the recursive adversarial construction of two indistinguishable streams
// (procedures RefineIntervals and AdvStrategy, Section 4 of the paper) and
// the analysis machinery around it (gaps, the space–gap inequality of
// Lemma 5.2, and the corollary adversaries of Section 6).
//
// The paper proves that any deterministic comparison-based ε-approximate
// quantile summary must store Ω((1/ε)·log εN) items on some stream of length
// N. The proof is constructive: an adversary builds two streams π and ϱ of
// length N_k = (1/ε)·2^k that the summary cannot distinguish, while making
// the "gap" — the uncertainty between the ranks of consecutive stored items
// across the two streams — as large as possible. If the summary stores too
// few items, the gap exceeds 2εN and some quantile query must fail
// (Lemma 3.4).
//
// This package turns that existence proof into an executable adversary: it
// drives any summary implementing summary.Summary[T] (the item-array view of
// Definition 2.1) through the construction, measures the space the summary is
// forced to use, records the gap structure at every node of the recursion
// tree, verifies Claim 1 (gap additivity) and the space–gap inequality at
// every node, and reproduces the paper's worked example (Figures 1 and 2).
package core

import (
	"errors"
	"fmt"
	"math"

	"quantilelb/internal/order"
	"quantilelb/internal/summary"
	"quantilelb/internal/universe"
)

// Constant of the space–gap inequality (Lemma 5.2): c = 1/8 − 2ε.
// SpaceGapConstant returns it for a given ε (not optimized in the paper).
func SpaceGapConstant(eps float64) float64 { return 0.125 - 2*eps }

// LowerBoundItems returns the lower bound on the number of stored items that
// Theorem 2.2 gives for streams of length N_k = (1/ε)·2^k:
// c·(log2(2εN_k)+1)·(1/(4ε)) = c·(k+1)/(4ε).
func LowerBoundItems(eps float64, k int) float64 {
	c := SpaceGapConstant(eps)
	if c <= 0 || k < 1 {
		return 0
	}
	return c * float64(k+1) / (4 * eps)
}

// StreamLength returns N_k = (1/ε)·2^k, the length of the constructed
// streams for recursion level k.
func StreamLength(eps float64, k int) int {
	return int(math.Round(1/eps)) * (1 << uint(k))
}

// Adversary drives the recursive construction against a quantile summary.
// The type parameter T is the item type of the universe the construction
// draws from (use universe.Rational / *big.Rat for deep recursions).
type Adversary[T any] struct {
	// Uni is the continuous universe items are drawn from.
	Uni universe.Universe[T]
	// Cmp is the total order on items (must agree with Uni).
	Cmp order.Comparator[T]
	// Eps is the accuracy parameter ε of the summary under attack.
	Eps float64
	// NewSummary creates a fresh instance of the summary D. Two instances
	// are created per run, one fed stream π and one fed stream ϱ; for the
	// construction to be meaningful the factory must be deterministic.
	NewSummary func() summary.Summary[T]
	// CheckIndistinguishability enables the (more expensive) full check of
	// Definition 3.2: stored items of the two instances must sit at the same
	// stream positions. When disabled only the sizes are compared.
	CheckIndistinguishability bool
	// RecordLeaves keeps a snapshot after every leaf of the recursion tree;
	// used to reproduce Figure 2 of the paper.
	RecordLeaves bool
}

// boundary is an interval endpoint that may be an actual stream item or a
// ±infinity sentinel (the initial call of AdvStrategy uses sentinels).
type boundary[T any] struct {
	item T
	has  bool
}

// NodeReport describes one internal node of the recursion tree.
type NodeReport struct {
	// Level is the recursion parameter k of this node (k >= 2 for internal
	// nodes).
	Level int
	// Depth is the distance from the root (root = 0).
	Depth int
	// Items is N_k, the number of items appended by this node's subtree.
	Items int
	// IntervalPi and IntervalRho describe the node's input intervals.
	IntervalPi, IntervalRho string
	// Gap is g, the largest gap in the input intervals after the node's
	// subtree finished (Definition 5.1).
	Gap int
	// GapLeft is g', the largest gap after the first recursive call.
	GapLeft int
	// GapRight is g'', the largest gap in the refined intervals after the
	// second recursive call.
	GapRight int
	// Claim1OK records whether g >= g' + g'' - 1 (Claim 1 of the paper).
	Claim1OK bool
	// RestrictedStored is S_k: the size of the item array restricted to the
	// node's input interval (enclosed by its endpoints) after the node's
	// subtree finished.
	RestrictedStored int
	// SpaceGapRHS is the right-hand side of the space–gap inequality (2):
	// c·(log2 g + 1)·(N_k/g − 1/(4ε)).
	SpaceGapRHS float64
	// SpaceGapOK records whether RestrictedStored >= SpaceGapRHS.
	SpaceGapOK bool
}

// LeafSnapshot captures the state after one leaf of the recursion tree
// appended its items; it is used to render Figure 2.
type LeafSnapshot[T any] struct {
	// LeafIndex counts leaves in execution order, starting at 1.
	LeafIndex int
	// TotalItems is the number of items in each stream so far.
	TotalItems int
	// StoredPi and StoredRho are the item arrays of the two instances.
	StoredPi, StoredRho []T
	// PiItems and RhoItems are the items appended by this leaf, in order.
	PiItems, RhoItems []T
}

// FailureWitness records a quantile query that a summary answered with error
// larger than εN on one of the two streams, demonstrating Lemma 3.4.
type FailureWitness struct {
	// Phi is the query.
	Phi float64
	// TargetRank is ⌊ϕN⌋.
	TargetRank int
	// RankInPi and RankInRho are the ranks of the returned items with respect
	// to streams π and ϱ.
	RankInPi, RankInRho int
	// ErrPi and ErrRho are the corresponding absolute rank errors.
	ErrPi, ErrRho int
	// AllowedError is εN.
	AllowedError float64
}

// Exceeds reports whether the witness demonstrates a failure (error beyond
// the allowed εN on at least one stream).
func (w FailureWitness) Exceeds() bool {
	return float64(w.ErrPi) > w.AllowedError || float64(w.ErrRho) > w.AllowedError
}

// Result is the outcome of running the adversary.
type Result[T any] struct {
	// Eps and K are the construction parameters; N = (1/ε)·2^K.
	Eps float64
	K   int
	N   int

	// Pi and Rho are the two constructed streams in arrival order.
	Pi, Rho []T

	// MaxStoredPi/Rho are the maxima of |I| observed while processing π / ϱ.
	MaxStoredPi, MaxStoredRho int
	// FinalStoredPi/Rho are |I| after the last item.
	FinalStoredPi, FinalStoredRho int

	// Gap is gap(π, ϱ) of Definition 3.3 (computed over the full item
	// arrays, assuming rank_π(I_π[i]) <= rank_ϱ(I_ϱ[i]) as the construction
	// guarantees).
	Gap int
	// GapBound is 2εN, the bound of Lemma 3.4 for a correct summary.
	GapBound float64

	// LowerBound is the number of items Theorem 2.2 forces for these
	// parameters (c·(k+1)/(4ε)).
	LowerBound float64

	// Nodes holds one report per internal node of the recursion tree, in
	// post-order.
	Nodes []NodeReport
	// Leaves holds per-leaf snapshots when RecordLeaves was set.
	Leaves []LeafSnapshot[T]

	// SizesAgree reports whether the two instances always stored the same
	// number of items (necessary condition for indistinguishability).
	SizesAgree bool
	// PositionsAgree reports whether stored items occupied the same stream
	// positions in both instances (the full condition (2) of Definition 3.2);
	// only meaningful when CheckIndistinguishability was set.
	PositionsAgree bool

	// Claim1Violations counts nodes where g >= g' + g'' - 1 failed.
	Claim1Violations int
	// SpaceGapViolations counts nodes where the space–gap inequality failed.
	SpaceGapViolations int

	// Witness demonstrates a failing quantile query when the final gap
	// exceeds 2εN (only set in that case).
	Witness *FailureWitness
}

// runState carries the mutable state of one construction run.
type runState[T any] struct {
	adv    *Adversary[T]
	m      int // items per leaf = ceil(2/ε)
	piSeq  []T
	rhoSeq []T
	piSet  *order.Multiset[T]
	rhoSet *order.Multiset[T]
	dPi    *summary.Instrumented[T]
	dRho   *summary.Instrumented[T]
	nodes  []NodeReport
	leaves []LeafSnapshot[T]
	leafNo int

	sizesAgree     bool
	positionsAgree bool
}

// Validate checks the adversary configuration.
func (a *Adversary[T]) Validate() error {
	if a.Uni == nil {
		return errors.New("core: Uni must be set")
	}
	if a.Cmp == nil {
		return errors.New("core: Cmp must be set")
	}
	if !(a.Eps > 0 && a.Eps < 1) {
		return errors.New("core: Eps must be in (0, 1)")
	}
	if a.NewSummary == nil {
		return errors.New("core: NewSummary must be set")
	}
	return nil
}

// Run executes AdvStrategy(k, ∅, ∅, (−∞,∞), (−∞,∞)) against two fresh
// instances of the summary and returns the full report.
func (a *Adversary[T]) Run(k int) (*Result[T], error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, errors.New("core: k must be at least 1")
	}
	st := &runState[T]{
		adv:            a,
		m:              int(math.Ceil(2 / a.Eps)),
		piSet:          order.NewMultiset(a.Cmp),
		rhoSet:         order.NewMultiset(a.Cmp),
		dPi:            summary.NewInstrumented[T](a.NewSummary(), nil),
		dRho:           summary.NewInstrumented[T](a.NewSummary(), nil),
		sizesAgree:     true,
		positionsAgree: true,
	}
	full := universe.FullInterval[T]()
	if err := st.advStrategy(k, full, full, 0); err != nil {
		return nil, err
	}
	return st.buildResult(a, k), nil
}

// advStrategy is Pseudocode 2 of the paper.
func (st *runState[T]) advStrategy(k int, ivPi, ivRho universe.Interval[T], depth int) error {
	if k == 1 {
		return st.leaf(ivPi, ivRho)
	}
	// First recursive call (line 6).
	if err := st.advStrategy(k-1, ivPi, ivRho, depth+1); err != nil {
		return err
	}
	// RefineIntervals (line 7) — also yields g', the gap after the first
	// half.
	newPi, newRho, gapLeft, err := st.refineIntervals(ivPi, ivRho)
	if err != nil {
		return err
	}
	// Second recursive call (line 8).
	if err := st.advStrategy(k-1, newPi, newRho, depth+1); err != nil {
		return err
	}
	gapRight := st.gapIn(newPi, newRho)
	gap := st.gapIn(ivPi, ivRho)
	restricted := st.enclosedStoredSize(st.dPi, ivPi)

	nk := st.m / 2 * (1 << uint(k)) // N_k = (1/ε)·2^k with m = 2/ε
	rhs := spaceGapRHS(st.adv.Eps, nk, gap)
	st.nodes = append(st.nodes, NodeReport{
		Level:            k,
		Depth:            depth,
		Items:            nk,
		IntervalPi:       universe.FormatInterval(st.adv.Uni, ivPi),
		IntervalRho:      universe.FormatInterval(st.adv.Uni, ivRho),
		Gap:              gap,
		GapLeft:          gapLeft,
		GapRight:         gapRight,
		Claim1OK:         gap >= gapLeft+gapRight-1,
		RestrictedStored: restricted,
		SpaceGapRHS:      rhs,
		SpaceGapOK:       float64(restricted) >= rhs,
	})
	return nil
}

// spaceGapRHS evaluates the right-hand side of inequality (2) of the paper.
func spaceGapRHS(eps float64, nk, gap int) float64 {
	c := SpaceGapConstant(eps)
	if c <= 0 || gap < 1 {
		return 0
	}
	return c * (math.Log2(float64(gap)) + 1) * (float64(nk)/float64(gap) - 1/(4*eps))
}

// leaf is the base case of AdvStrategy: append 2/ε fresh items inside the
// current intervals to both streams, in the same (increasing) order.
func (st *runState[T]) leaf(ivPi, ivRho universe.Interval[T]) error {
	piItems, ok := st.adv.Uni.Partition(ivPi, st.m)
	if !ok {
		return fmt.Errorf("core: universe cannot supply %d items inside %s (precision exhausted?)",
			st.m, universe.FormatInterval(st.adv.Uni, ivPi))
	}
	rhoItems, ok := st.adv.Uni.Partition(ivRho, st.m)
	if !ok {
		return fmt.Errorf("core: universe cannot supply %d items inside %s (precision exhausted?)",
			st.m, universe.FormatInterval(st.adv.Uni, ivRho))
	}
	for i := 0; i < st.m; i++ {
		st.dPi.Update(piItems[i])
		st.dRho.Update(rhoItems[i])
	}
	st.piSeq = append(st.piSeq, piItems...)
	st.rhoSeq = append(st.rhoSeq, rhoItems...)
	st.piSet.AddSortedBatch(piItems)
	st.rhoSet.AddSortedBatch(rhoItems)
	st.leafNo++

	if st.dPi.StoredCount() != st.dRho.StoredCount() {
		st.sizesAgree = false
	}
	if st.adv.CheckIndistinguishability && !st.checkPositions() {
		st.positionsAgree = false
	}
	if st.adv.RecordLeaves {
		st.leaves = append(st.leaves, LeafSnapshot[T]{
			LeafIndex:  st.leafNo,
			TotalItems: len(st.piSeq),
			StoredPi:   st.dPi.StoredItems(),
			StoredRho:  st.dRho.StoredItems(),
			PiItems:    piItems,
			RhoItems:   rhoItems,
		})
	}
	return nil
}

// checkPositions verifies condition (2) of Definition 3.2: the j-th stored
// item of the π instance and the j-th stored item of the ϱ instance arrived
// at the same stream position. All items are distinct, so the position of an
// item is found by scanning its arrival sequence.
func (st *runState[T]) checkPositions() bool {
	itemsPi := st.dPi.StoredItems()
	itemsRho := st.dRho.StoredItems()
	if len(itemsPi) != len(itemsRho) {
		return false
	}
	posPi := positionIndex(st.adv.Cmp, st.piSeq, itemsPi)
	posRho := positionIndex(st.adv.Cmp, st.rhoSeq, itemsRho)
	for j := range itemsPi {
		if posPi[j] != posRho[j] || posPi[j] < 0 {
			return false
		}
	}
	return true
}

// positionIndex returns, for each stored item, its arrival index in seq
// (-1 when not found). Stored items are distinct and sorted; seq items are
// distinct.
func positionIndex[T any](cmp order.Comparator[T], seq []T, stored []T) []int {
	out := make([]int, len(stored))
	for i := range out {
		out[i] = -1
	}
	for pos, x := range seq {
		// Binary search in stored.
		i := order.SearchFirstGE(cmp, stored, x)
		if i < len(stored) && cmp(stored[i], x) == 0 && out[i] == -1 {
			out[i] = pos
		}
	}
	return out
}

// enclosedEntry is one entry of a restricted item array I^(ℓ,r): either an
// actual item or a ±infinity sentinel standing in for an unbounded endpoint.
type enclosedEntry[T any] struct {
	item T
	// kind: -1 = low sentinel, 0 = real item, +1 = high sentinel.
	kind int
}

// enclosedArray builds I^(ℓ,r) for the given stored items: the endpoint ℓ,
// the stored items strictly inside (ℓ, r), and the endpoint r (Section 4.2 of
// the paper). Unbounded endpoints become sentinels.
func enclosedArray[T any](cmp order.Comparator[T], stored []T, iv universe.Interval[T]) []enclosedEntry[T] {
	inside := order.Restrict(cmp, stored, iv.Lo, iv.HasLo, iv.Hi, iv.HasHi)
	out := make([]enclosedEntry[T], 0, len(inside)+2)
	if iv.HasLo {
		out = append(out, enclosedEntry[T]{item: iv.Lo, kind: 0})
	} else {
		out = append(out, enclosedEntry[T]{kind: -1})
	}
	for _, x := range inside {
		out = append(out, enclosedEntry[T]{item: x, kind: 0})
	}
	if iv.HasHi {
		out = append(out, enclosedEntry[T]{item: iv.Hi, kind: 0})
	} else {
		out = append(out, enclosedEntry[T]{kind: 1})
	}
	return out
}

// restrictedRank returns the rank of entry e within the substream of set
// restricted to the closed interval [ℓ, r]: the number of stream items in
// [ℓ, r] that are <= e. Sentinels rank 0 (low) / count+1 (high).
func restrictedRank[T any](set *order.Multiset[T], iv universe.Interval[T], e enclosedEntry[T]) int {
	lowCount := 0
	if iv.HasLo {
		lowCount = set.CountLT(iv.Lo)
	}
	switch e.kind {
	case -1:
		return 0
	case 1:
		total := set.Len() - lowCount
		if iv.HasHi {
			total = set.CountLE(iv.Hi) - lowCount
		}
		return total + 1
	default:
		return set.CountLE(e.item) - lowCount
	}
}

// gapIn computes the largest gap (Definition 5.1) between the two instances'
// item arrays restricted to the given intervals:
// max_i rank_ϱ̄(I'_ϱ[i+1]) − rank_π̄(I'_π[i]).
func (st *runState[T]) gapIn(ivPi, ivRho universe.Interval[T]) int {
	gap, _, _ := st.largestGap(ivPi, ivRho)
	return gap
}

// largestGap returns the gap value together with the pair of entries that
// realize it (the arguments for RefineIntervals).
func (st *runState[T]) largestGap(ivPi, ivRho universe.Interval[T]) (int, enclosedEntry[T], enclosedEntry[T]) {
	arrPi := enclosedArray(st.adv.Cmp, st.dPi.StoredItems(), ivPi)
	arrRho := enclosedArray(st.adv.Cmp, st.dRho.StoredItems(), ivRho)
	n := len(arrPi)
	if len(arrRho) < n {
		n = len(arrRho)
	}
	var bestPi, bestRho enclosedEntry[T]
	best := math.MinInt
	for i := 0; i+1 < n; i++ {
		g := restrictedRank(st.rhoSet, ivRho, arrRho[i+1]) - restrictedRank(st.piSet, ivPi, arrPi[i])
		if g > best {
			best = g
			bestPi = arrPi[i]
			bestRho = arrRho[i+1]
		}
	}
	if best == math.MinInt {
		return 0, bestPi, bestRho
	}
	return best, bestPi, bestRho
}

// refineIntervals is Pseudocode 1 of the paper: locate the largest gap inside
// the current intervals and return new open intervals in its extreme regions,
// together with the gap value g'.
func (st *runState[T]) refineIntervals(ivPi, ivRho universe.Interval[T]) (universe.Interval[T], universe.Interval[T], int, error) {
	gap, entPi, entRho := st.largestGap(ivPi, ivRho)

	// New interval for π: (I'_π[i], next(π, I'_π[i])).
	var newPi universe.Interval[T]
	switch entPi.kind {
	case -1:
		// Lower sentinel: the interval starts unbounded below and ends at the
		// smallest stream item inside the current interval (or r if none).
		if first, ok := st.piSet.Min(); ok && ivPi.Contains(st.adv.Cmp, first) {
			newPi = universe.BelowOf(first)
		} else if ivPi.HasHi {
			newPi = universe.BelowOf(ivPi.Hi)
		} else {
			newPi = universe.FullInterval[T]()
		}
		// Ensure the lower bound matches the current interval's lower bound.
		newPi.Lo, newPi.HasLo = ivPi.Lo, ivPi.HasLo
	default:
		lo := entPi.item
		if next, ok := st.piSet.Next(lo); ok {
			newPi = universe.Open(lo, next)
		} else {
			newPi = universe.AboveOf(lo)
		}
	}

	// New interval for ϱ: (prev(ϱ, I'_ϱ[i+1]), I'_ϱ[i+1]).
	var newRho universe.Interval[T]
	switch entRho.kind {
	case 1:
		if last, ok := st.rhoSet.Max(); ok && ivRho.Contains(st.adv.Cmp, last) {
			newRho = universe.AboveOf(last)
		} else if ivRho.HasLo {
			newRho = universe.AboveOf(ivRho.Lo)
		} else {
			newRho = universe.FullInterval[T]()
		}
		newRho.Hi, newRho.HasHi = ivRho.Hi, ivRho.HasHi
	default:
		hi := entRho.item
		if prev, ok := st.rhoSet.Prev(hi); ok {
			newRho = universe.Open(prev, hi)
		} else {
			newRho = universe.BelowOf(hi)
		}
	}

	if newPi.Empty(st.adv.Cmp) || newRho.Empty(st.adv.Cmp) {
		return newPi, newRho, gap, fmt.Errorf("core: refined interval is empty (pi %s, rho %s)",
			universe.FormatInterval(st.adv.Uni, newPi), universe.FormatInterval(st.adv.Uni, newRho))
	}
	return newPi, newRho, gap, nil
}

// enclosedStoredSize returns |I^(ℓ,r)| for the given instrumented summary:
// the stored items strictly inside the interval plus the two enclosing
// endpoints (Section 4.2).
func (st *runState[T]) enclosedStoredSize(d *summary.Instrumented[T], iv universe.Interval[T]) int {
	inside := order.Restrict(st.adv.Cmp, d.StoredItems(), iv.Lo, iv.HasLo, iv.Hi, iv.HasHi)
	return len(inside) + 2
}

// topLevelGap computes gap(π, ϱ) of Definition 3.3 over the full item arrays:
// max_i rank_ϱ(I_ϱ[i+1]) − rank_π(I_π[i]).
func (st *runState[T]) topLevelGap() int {
	itemsPi := st.dPi.StoredItems()
	itemsRho := st.dRho.StoredItems()
	n := len(itemsPi)
	if len(itemsRho) < n {
		n = len(itemsRho)
	}
	best := 0
	for i := 0; i+1 < n; i++ {
		g := st.rhoSet.CountLE(itemsRho[i+1]) - st.piSet.CountLE(itemsPi[i])
		if g > best {
			best = g
		}
	}
	return best
}

// failureWitness constructs the Lemma 3.4 witness: the ϕ in the middle of the
// largest gap, the items the two instances return for it, and their rank
// errors with respect to their own streams.
func (st *runState[T]) failureWitness(gap int) FailureWitness {
	itemsPi := st.dPi.StoredItems()
	itemsRho := st.dRho.StoredItems()
	n := len(itemsPi)
	if len(itemsRho) < n {
		n = len(itemsRho)
	}
	bestI := -1
	best := math.MinInt
	for i := 0; i+1 < n; i++ {
		g := st.rhoSet.CountLE(itemsRho[i+1]) - st.piSet.CountLE(itemsPi[i])
		if g > best {
			best = g
			bestI = i
		}
	}
	N := len(st.piSeq)
	w := FailureWitness{AllowedError: st.adv.Eps * float64(N)}
	if bestI < 0 {
		return w
	}
	rLow := st.piSet.CountLE(itemsPi[bestI])
	rHigh := st.rhoSet.CountLE(itemsRho[bestI+1])
	mid := float64(rLow+rHigh) / 2
	w.Phi = mid / float64(N)
	w.TargetRank = int(mid)

	// Ask both instances. A comparison-based summary returns the item at the
	// same index for both; we simply measure the realized rank errors.
	ansPi, okPi := st.dPi.Query(w.Phi)
	ansRho, okRho := st.dRho.Query(w.Phi)
	if okPi {
		w.RankInPi = st.piSet.CountLE(ansPi)
		w.ErrPi = abs(w.RankInPi - w.TargetRank)
	}
	if okRho {
		w.RankInRho = st.rhoSet.CountLE(ansRho)
		w.ErrRho = abs(w.RankInRho - w.TargetRank)
	}
	return w
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
