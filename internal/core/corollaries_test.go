package core

import (
	"math/big"
	"testing"

	"quantilelb/internal/biased"
	"quantilelb/internal/summary"
	"quantilelb/internal/universe"
)

func TestRunMedianValidation(t *testing.T) {
	bad := &Adversary[*big.Rat]{}
	if _, err := bad.RunMedian(3); err == nil {
		t.Errorf("invalid adversary should be rejected")
	}
	good := ratAdversary(1.0/16, gkFactory(1.0/16))
	if _, err := good.RunMedian(0); err == nil {
		t.Errorf("k=0 should be rejected")
	}
}

func TestMedianAdversaryAgainstGK(t *testing.T) {
	eps := 1.0 / 32
	adv := ratAdversary(eps, gkFactory(eps))
	res, err := adv.RunMedian(6)
	if err != nil {
		t.Fatal(err)
	}
	// GK is correct, so it must return an ε-approximate median even after the
	// padding step.
	if res.Fails() {
		t.Errorf("GK failed the median adversary: errPi=%d errRho=%d allowed=%v",
			res.ErrPi, res.ErrRho, res.AllowedError)
	}
	if res.FinalN < res.Construction.N {
		t.Errorf("final stream length %d smaller than construction %d", res.FinalN, res.Construction.N)
	}
	if res.TargetRank != res.FinalN/2 {
		t.Errorf("target rank %d, want %d", res.TargetRank, res.FinalN/2)
	}
}

func TestMedianAdversaryDefeatsCappedSummary(t *testing.T) {
	eps := 1.0 / 32
	adv := ratAdversary(eps, cappedFactory(8))
	res, err := adv.RunMedian(7)
	if err != nil {
		t.Fatal(err)
	}
	// The capped summary created a gap wider than 2εN; after padding, the
	// median falls inside it and the summary cannot answer it.
	if float64(res.Construction.Gap) <= res.Construction.GapBound {
		t.Skipf("capped summary unexpectedly kept the gap small (gap=%d)", res.Construction.Gap)
	}
	if !res.Fails() {
		t.Errorf("capped summary should fail the median query: errPi=%d errRho=%d allowed=%v extended=%v",
			res.ErrPi, res.ErrRho, res.AllowedError, res.Extended)
	}
}

func TestRankAdversaryAgainstGK(t *testing.T) {
	eps := 1.0 / 32
	adv := ratAdversary(eps, gkFactory(eps))
	res, err := adv.RunRank(6)
	if err != nil {
		t.Fatal(err)
	}
	if !res.QueriesAvailable {
		t.Fatalf("expected rank queries to be constructible")
	}
	// GK provides ε-approximate ranks, so neither query may fail.
	if res.Fails() {
		t.Errorf("GK failed the rank adversary: errPi=%d errRho=%d allowed=%v",
			res.ErrPi, res.ErrRho, res.AllowedError)
	}
}

func TestRankAdversaryDefeatsCappedSummary(t *testing.T) {
	eps := 1.0 / 32
	adv := ratAdversary(eps, cappedFactory(8))
	res, err := adv.RunRank(7)
	if err != nil {
		t.Fatal(err)
	}
	if !res.QueriesAvailable {
		t.Fatalf("expected rank queries to be constructible")
	}
	if float64(res.Gap) <= 2*eps*float64(res.Construction.N)+2 {
		t.Skipf("capped summary unexpectedly kept the gap small (gap=%d)", res.Gap)
	}
	// Theorem 6.2: with a gap above 2εN + 2, at least one of the two rank
	// estimates must be off by more than εN.
	if !res.Fails() {
		t.Errorf("capped summary should fail a rank query: errPi=%d errRho=%d allowed=%v",
			res.ErrPi, res.ErrRho, res.AllowedError)
	}
	if _, err := ratAdversary(eps, cappedFactory(8)).RunRank(0); err == nil {
		t.Errorf("k=0 should be rejected")
	}
}

func biasedFactory(eps float64) func() summary.Summary[*big.Rat] {
	uni := universe.NewRational()
	return func() summary.Summary[*big.Rat] {
		return biased.New(uni.Comparator(), eps)
	}
}

func TestBiasedAdversary(t *testing.T) {
	eps := 1.0 / 32
	adv := ratAdversary(eps, biasedFactory(eps))
	res, err := adv.RunBiased(5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Phases != 5 || len(res.PhaseReports) != 5 {
		t.Fatalf("expected 5 phase reports, got %d", len(res.PhaseReports))
	}
	wantTotal := 0
	for i := 1; i <= 5; i++ {
		wantTotal += StreamLength(eps, i)
	}
	if res.TotalItems != wantTotal {
		t.Errorf("total items %d, want %d", res.TotalItems, wantTotal)
	}
	// Phase sizes double.
	for i, pr := range res.PhaseReports {
		if pr.ItemsAppended != StreamLength(eps, i+1) {
			t.Errorf("phase %d appended %d items, want %d", i+1, pr.ItemsAppended, StreamLength(eps, i+1))
		}
		if pr.LowerBoundForPhase <= 0 {
			t.Errorf("phase %d lower bound should be positive", i+1)
		}
	}
	// The biased summary must store at least the summed per-phase bound
	// (Theorem 6.5) — with the paper's small constant this is far below what
	// the real summary keeps, so the check is not vacuous but not tight.
	if float64(res.MaxStored) < res.LowerBound {
		t.Errorf("biased summary stored %d items, below the Theorem 6.5 bound %v",
			res.MaxStored, res.LowerBound)
	}
	if res.FinalStored <= 0 || res.MaxStored < res.FinalStored {
		t.Errorf("stored counts inconsistent: max %d final %d", res.MaxStored, res.FinalStored)
	}
	// Per-phase stored counts are recorded and sum to at most the final size.
	sum := 0
	for _, pr := range res.PhaseReports {
		if pr.StoredFromPhase < 0 {
			t.Errorf("negative stored-from-phase")
		}
		sum += pr.StoredFromPhase
	}
	if sum > res.FinalStored {
		t.Errorf("per-phase stored items %d exceed final stored %d", sum, res.FinalStored)
	}
	if _, err := adv.RunBiased(0); err == nil {
		t.Errorf("phases=0 should be rejected")
	}
	bad := &Adversary[*big.Rat]{}
	if _, err := bad.RunBiased(2); err == nil {
		t.Errorf("invalid adversary should be rejected")
	}
}

func TestBiasedAdversaryGrowsWithPhases(t *testing.T) {
	eps := 1.0 / 32
	adv := ratAdversary(eps, biasedFactory(eps))
	r3, err := adv.RunBiased(3)
	if err != nil {
		t.Fatal(err)
	}
	r6, err := adv.RunBiased(6)
	if err != nil {
		t.Fatal(err)
	}
	if r6.MaxStored <= r3.MaxStored {
		t.Errorf("biased summary space should grow with phases: %d vs %d", r3.MaxStored, r6.MaxStored)
	}
	if r6.LowerBound <= r3.LowerBound {
		t.Errorf("lower bound should grow with phases")
	}
}
