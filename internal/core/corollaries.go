package core

import (
	"errors"
	"fmt"
	"math"

	"quantilelb/internal/order"
	"quantilelb/internal/summary"
	"quantilelb/internal/universe"
)

// This file implements the corollary adversaries of Section 6 of the paper:
// approximate median (Theorem 6.1), rank estimation (Theorem 6.2), and biased
// quantiles (Theorem 6.5). Each reuses the recursive construction of
// Section 4 and adds the reduction described in the corresponding proof
// sketch.

// MedianResult is the outcome of the approximate-median adversary
// (Theorem 6.1): after the construction, the streams are extended with items
// smaller (or larger) than everything so far, moving the exact median into
// the middle of the largest gap; a summary that used too little space then
// cannot return an ε-approximate median.
type MedianResult[T any] struct {
	// Construction is the underlying run of the recursive construction.
	Construction *Result[T]
	// Extended reports whether the padding step was applied (it is skipped
	// when the gap is small, i.e. the summary used enough space).
	Extended bool
	// PaddingItems is the number of items appended.
	PaddingItems int
	// FinalN is the stream length after padding.
	FinalN int
	// MedianRankPi / MedianRankRho are the ranks (w.r.t. the extended π / ϱ
	// streams) of the item the summary returned for ϕ = 1/2.
	MedianRankPi, MedianRankRho int
	// TargetRank is ⌊FinalN/2⌋.
	TargetRank int
	// ErrPi / ErrRho are the absolute rank errors on the two streams.
	ErrPi, ErrRho int
	// AllowedError is ε·FinalN.
	AllowedError float64
}

// Fails reports whether the summary failed to return an ε-approximate median
// on at least one of the two streams.
func (m *MedianResult[T]) Fails() bool {
	return float64(m.ErrPi) > m.AllowedError || float64(m.ErrRho) > m.AllowedError
}

// RunMedian executes the Theorem 6.1 adversary: the recursive construction
// followed, when the gap is large, by appending items beyond one end of the
// stream so that the median falls inside the gap.
func (a *Adversary[T]) RunMedian(k int) (*MedianResult[T], error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, errors.New("core: k must be at least 1")
	}
	st := &runState[T]{
		adv:            a,
		m:              int(math.Ceil(2 / a.Eps)),
		piSet:          order.NewMultiset(a.Cmp),
		rhoSet:         order.NewMultiset(a.Cmp),
		dPi:            summary.NewInstrumented[T](a.NewSummary(), nil),
		dRho:           summary.NewInstrumented[T](a.NewSummary(), nil),
		sizesAgree:     true,
		positionsAgree: true,
	}
	full := universe.FullInterval[T]()
	if err := st.advStrategy(k, full, full, 0); err != nil {
		return nil, err
	}
	base := st.buildResult(a, k)

	out := &MedianResult[T]{Construction: base}
	n := len(st.piSeq)

	// Locate the largest gap and the rank interval it spans.
	itemsPi := st.dPi.StoredItems()
	itemsRho := st.dRho.StoredItems()
	limit := len(itemsPi)
	if len(itemsRho) < limit {
		limit = len(itemsRho)
	}
	bestI, bestGap := -1, 0
	for i := 0; i+1 < limit; i++ {
		g := st.rhoSet.CountLE(itemsRho[i+1]) - st.piSet.CountLE(itemsPi[i])
		if g > bestGap {
			bestGap, bestI = g, i
		}
	}
	if bestI < 0 {
		return out, nil
	}
	rLow := st.piSet.CountLE(itemsPi[bestI])
	rHigh := st.rhoSet.CountLE(itemsRho[bestI+1])
	midRank := (rLow + rHigh) / 2
	phiPrime := float64(midRank) / float64(n)

	// Padding (proof of Theorem 6.1): if ϕ' < 1/2 append (1−2ϕ')·N items
	// below everything; otherwise append (2ϕ'−1)·N items above everything.
	var padCount int
	var padInterval universe.Interval[T]
	if phiPrime < 0.5 {
		padCount = int(math.Round((1 - 2*phiPrime) * float64(n)))
		if lo, ok := st.piSet.Min(); ok {
			padInterval = universe.BelowOf(minItem(a, lo, st.rhoSet))
		}
	} else {
		padCount = int(math.Round((2*phiPrime - 1) * float64(n)))
		if hi, ok := st.piSet.Max(); ok {
			padInterval = universe.AboveOf(maxItem(a, hi, st.rhoSet))
		}
	}
	if padCount > 0 {
		items, ok := a.Uni.Partition(padInterval, padCount)
		if !ok {
			return nil, fmt.Errorf("core: cannot generate %d padding items", padCount)
		}
		for _, x := range items {
			st.dPi.Update(x)
			st.dRho.Update(x)
		}
		st.piSeq = append(st.piSeq, items...)
		st.rhoSeq = append(st.rhoSeq, items...)
		st.piSet.AddSortedBatch(items)
		st.rhoSet.AddSortedBatch(items)
		out.Extended = true
		out.PaddingItems = padCount
	}

	finalN := len(st.piSeq)
	out.FinalN = finalN
	out.TargetRank = finalN / 2
	out.AllowedError = a.Eps * float64(finalN)

	ansPi, okPi := st.dPi.Query(0.5)
	ansRho, okRho := st.dRho.Query(0.5)
	if okPi {
		out.MedianRankPi = st.piSet.CountLE(ansPi)
		out.ErrPi = abs(out.MedianRankPi - out.TargetRank)
	}
	if okRho {
		out.MedianRankRho = st.rhoSet.CountLE(ansRho)
		out.ErrRho = abs(out.MedianRankRho - out.TargetRank)
	}
	return out, nil
}

// RankResult is the outcome of the Estimating Rank adversary (Theorem 6.2):
// two queries q_π and q_ϱ drawn from the extreme regions of the largest gap
// receive (for a comparison-based structure) rank estimates that cannot both
// be within εN of the truth once the gap exceeds 2εN + 2.
type RankResult[T any] struct {
	// Construction is the underlying run.
	Construction *Result[T]
	// Gap is gap(π, ϱ).
	Gap int
	// TrueRankPi is the exact rank of q_π in π; TrueRankRho the exact rank of
	// q_ϱ in ϱ.
	TrueRankPi, TrueRankRho int
	// EstimatePi / EstimateRho are the summary's answers.
	EstimatePi, EstimateRho int
	// ErrPi / ErrRho are the absolute errors.
	ErrPi, ErrRho int
	// AllowedError is ε·N.
	AllowedError float64
	// QueriesAvailable is false when the gap region admitted no fresh query
	// item (only possible for degenerate parameters).
	QueriesAvailable bool
}

// Fails reports whether at least one of the two rank estimates exceeds the
// allowed error.
func (r *RankResult[T]) Fails() bool {
	return float64(r.ErrPi) > r.AllowedError || float64(r.ErrRho) > r.AllowedError
}

// RunRank executes the Theorem 6.2 adversary against a summary that also
// implements rank estimation (all summaries in this repository do).
func (a *Adversary[T]) RunRank(k int) (*RankResult[T], error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, errors.New("core: k must be at least 1")
	}
	st := &runState[T]{
		adv:            a,
		m:              int(math.Ceil(2 / a.Eps)),
		piSet:          order.NewMultiset(a.Cmp),
		rhoSet:         order.NewMultiset(a.Cmp),
		dPi:            summary.NewInstrumented[T](a.NewSummary(), nil),
		dRho:           summary.NewInstrumented[T](a.NewSummary(), nil),
		sizesAgree:     true,
		positionsAgree: true,
	}
	full := universe.FullInterval[T]()
	if err := st.advStrategy(k, full, full, 0); err != nil {
		return nil, err
	}
	base := st.buildResult(a, k)

	out := &RankResult[T]{Construction: base, Gap: base.Gap, AllowedError: a.Eps * float64(base.N)}

	itemsPi := st.dPi.StoredItems()
	itemsRho := st.dRho.StoredItems()
	limit := len(itemsPi)
	if len(itemsRho) < limit {
		limit = len(itemsRho)
	}
	bestI, bestGap := -1, 0
	for i := 0; i+1 < limit; i++ {
		g := st.rhoSet.CountLE(itemsRho[i+1]) - st.piSet.CountLE(itemsPi[i])
		if g > bestGap {
			bestGap, bestI = g, i
		}
	}
	if bestI < 0 {
		return out, nil
	}
	// q_π lies just above I_π[i] (inside (I_π[i], next(π, I_π[i]))); q_ϱ lies
	// just below I_ϱ[i+1]. Both exist by the continuity assumption.
	var qPiInterval, qRhoInterval universe.Interval[T]
	if next, ok := st.piSet.Next(itemsPi[bestI]); ok {
		qPiInterval = universe.Open(itemsPi[bestI], next)
	} else {
		qPiInterval = universe.AboveOf(itemsPi[bestI])
	}
	if prev, ok := st.rhoSet.Prev(itemsRho[bestI+1]); ok {
		qRhoInterval = universe.Open(prev, itemsRho[bestI+1])
	} else {
		qRhoInterval = universe.BelowOf(itemsRho[bestI+1])
	}
	qPi, ok1 := a.Uni.Between(qPiInterval)
	qRho, ok2 := a.Uni.Between(qRhoInterval)
	if !ok1 || !ok2 {
		return out, nil
	}
	out.QueriesAvailable = true
	out.TrueRankPi = st.piSet.CountLE(qPi)
	out.TrueRankRho = st.rhoSet.CountLE(qRho)
	out.EstimatePi = st.dPi.EstimateRank(qPi)
	out.EstimateRho = st.dRho.EstimateRank(qRho)
	out.ErrPi = abs(out.EstimatePi - out.TrueRankPi)
	out.ErrRho = abs(out.EstimateRho - out.TrueRankRho)
	return out, nil
}

// BiasedPhaseReport describes one phase of the Theorem 6.5 construction.
type BiasedPhaseReport struct {
	// Phase is the phase index i (1-based); the phase appends (1/ε)·2^i items
	// larger than everything before it.
	Phase int
	// ItemsAppended is the number of items the phase appended to each stream.
	ItemsAppended int
	// StoredFromPhase is the number of items from this phase's value range
	// still stored when the whole construction ends.
	StoredFromPhase int
	// LowerBoundForPhase is c·(1/ε)·i / 4, the per-phase contribution of the
	// Theorem 6.5 argument.
	LowerBoundForPhase float64
}

// BiasedResult is the outcome of the Theorem 6.5 adversary for biased
// (relative-error) quantile summaries.
type BiasedResult struct {
	// Eps and Phases are the construction parameters.
	Eps    float64
	Phases int
	// TotalItems is the final stream length.
	TotalItems int
	// MaxStored is the maximum number of items the summary held.
	MaxStored int
	// FinalStored is the number of items held at the end.
	FinalStored int
	// LowerBound is the Ω((1/ε)·k²) bound (summed per-phase contributions).
	LowerBound float64
	// PhaseReports holds one entry per phase.
	PhaseReports []BiasedPhaseReport
}

// RunBiased executes the k-phase construction of Theorem 6.5 against a
// summary for biased quantiles. Phase i runs AdvStrategy(i) inside the
// interval above everything generated so far.
func (a *Adversary[T]) RunBiased(phases int) (*BiasedResult, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	if phases < 1 {
		return nil, errors.New("core: phases must be at least 1")
	}
	st := &runState[T]{
		adv:            a,
		m:              int(math.Ceil(2 / a.Eps)),
		piSet:          order.NewMultiset(a.Cmp),
		rhoSet:         order.NewMultiset(a.Cmp),
		dPi:            summary.NewInstrumented[T](a.NewSummary(), nil),
		dRho:           summary.NewInstrumented[T](a.NewSummary(), nil),
		sizesAgree:     true,
		positionsAgree: true,
	}
	out := &BiasedResult{Eps: a.Eps, Phases: phases}
	c := SpaceGapConstant(a.Eps)
	// phaseStart[i] records the largest item before phase i, so phase
	// membership can be recovered afterwards.
	type phaseRange[T any] struct {
		lo    T
		hasLo bool
	}
	starts := make([]phaseRange[T], 0, phases)

	for i := 1; i <= phases; i++ {
		ivPi := universe.FullInterval[T]()
		ivRho := universe.FullInterval[T]()
		if maxSoFarPi, ok := st.piSet.Max(); ok {
			maxSoFarRho, _ := st.rhoSet.Max()
			ivPi = universe.AboveOf(maxSoFarPi)
			ivRho = universe.AboveOf(maxSoFarRho)
			starts = append(starts, phaseRange[T]{lo: maxItem(a, maxSoFarPi, st.rhoSet), hasLo: true})
		} else {
			starts = append(starts, phaseRange[T]{})
		}
		before := len(st.piSeq)
		if err := st.advStrategy(i, ivPi, ivRho, 0); err != nil {
			return nil, err
		}
		out.PhaseReports = append(out.PhaseReports, BiasedPhaseReport{
			Phase:              i,
			ItemsAppended:      len(st.piSeq) - before,
			LowerBoundForPhase: c * float64(i) / (4 * a.Eps),
		})
	}

	out.TotalItems = len(st.piSeq)
	out.MaxStored = st.dPi.Stats().MaxStored
	out.FinalStored = st.dPi.StoredCount()
	for i := range out.PhaseReports {
		out.LowerBound += out.PhaseReports[i].LowerBoundForPhase
	}
	// Count stored items per phase value range.
	stored := st.dPi.StoredItems()
	for i := range out.PhaseReports {
		var lo T
		hasLo := starts[i].hasLo
		lo = starts[i].lo
		var hi T
		hasHi := i+1 < len(starts) && starts[i+1].hasLo
		if hasHi {
			hi = starts[i+1].lo
		}
		count := 0
		for _, x := range stored {
			if hasLo && a.Cmp(x, lo) <= 0 {
				continue
			}
			if hasHi && a.Cmp(x, hi) > 0 {
				continue
			}
			count++
		}
		out.PhaseReports[i].StoredFromPhase = count
	}
	return out, nil
}

// buildResult assembles the common Result from the run state.
func (st *runState[T]) buildResult(a *Adversary[T], k int) *Result[T] {
	res := &Result[T]{
		Eps:            a.Eps,
		K:              k,
		N:              len(st.piSeq),
		Pi:             st.piSeq,
		Rho:            st.rhoSeq,
		MaxStoredPi:    st.dPi.Stats().MaxStored,
		MaxStoredRho:   st.dRho.Stats().MaxStored,
		FinalStoredPi:  st.dPi.StoredCount(),
		FinalStoredRho: st.dRho.StoredCount(),
		GapBound:       2 * a.Eps * float64(len(st.piSeq)),
		LowerBound:     LowerBoundItems(a.Eps, k),
		Nodes:          st.nodes,
		Leaves:         st.leaves,
		SizesAgree:     st.sizesAgree,
		PositionsAgree: st.positionsAgree,
	}
	res.Gap = st.topLevelGap()
	for _, n := range st.nodes {
		if !n.Claim1OK {
			res.Claim1Violations++
		}
		if !n.SpaceGapOK {
			res.SpaceGapViolations++
		}
	}
	if float64(res.Gap) > res.GapBound {
		w := st.failureWitness(res.Gap)
		res.Witness = &w
	}
	return res
}

// minItem returns the smaller of x and the minimum of the given multiset
// (used to pad below both streams).
func minItem[T any](a *Adversary[T], x T, other interface{ Min() (T, bool) }) T {
	if m, ok := other.Min(); ok && a.Cmp(m, x) < 0 {
		return m
	}
	return x
}

// maxItem returns the larger of x and the maximum of the given multiset.
func maxItem[T any](a *Adversary[T], x T, other interface{ Max() (T, bool) }) T {
	if m, ok := other.Max(); ok && a.Cmp(m, x) > 0 {
		return m
	}
	return x
}
