package rank

// Weighted ground truth: the exact weighted-rank oracle the weighted
// differential harness (internal/checker) and the weighted benchmark cells
// compare summaries against. A weighted stream of pairs (x_i, w_i) with
// positive integer weights is semantically the expansion in which x_i occurs
// w_i times; the weighted rank of q is the total weight of items ≤ q, and
// the weighted ϕ-quantile is the item at expanded rank ⌊ϕW⌋ where
// W = Σ w_i. An ε-approximate weighted summary must answer every ϕ-quantile
// within ±ε·W expanded ranks — the guarantee Assadi, Joshi, Prabhu & Shah
// ("Generalizing Greenwald-Khanna Streaming Quantile Summaries for Weighted
// Inputs", see PAPERS.md) carry over from the unit-weight setting.

import (
	"sort"

	"quantilelb/internal/order"
)

// WeightedOracle answers exact weighted rank and quantile queries over a
// fixed multiset of (item, weight) pairs. Construction sorts a copy of the
// pairs by item and accumulates prefix weights; queries are O(log n) in the
// number of distinct positions.
type WeightedOracle[T any] struct {
	cmp    order.Comparator[T]
	sorted []T
	// cumw[i] is the total weight of sorted[0..i] — the expanded rank of the
	// last copy of sorted[i].
	cumw   []int64
	totalW int64
}

// NewWeightedOracle builds an oracle over parallel item/weight slices (which
// are copied; weights must be positive and the slices equally long — the
// constructor panics otherwise, as this is ground truth for tests).
func NewWeightedOracle[T any](cmp order.Comparator[T], items []T, weights []int64) *WeightedOracle[T] {
	if len(items) != len(weights) {
		panic("rank: NewWeightedOracle: items and weights differ in length")
	}
	type pair struct {
		x T
		w int64
	}
	pairs := make([]pair, len(items))
	for i, x := range items {
		if weights[i] <= 0 {
			panic("rank: NewWeightedOracle: non-positive weight")
		}
		pairs[i] = pair{x: x, w: weights[i]}
	}
	sort.SliceStable(pairs, func(i, j int) bool { return cmp(pairs[i].x, pairs[j].x) < 0 })
	o := &WeightedOracle[T]{
		cmp:    cmp,
		sorted: make([]T, len(pairs)),
		cumw:   make([]int64, len(pairs)),
	}
	for i, p := range pairs {
		o.sorted[i] = p.x
		o.totalW += p.w
		o.cumw[i] = o.totalW
	}
	return o
}

// TotalWeight returns W, the sum of all weights (the expanded stream length).
func (o *WeightedOracle[T]) TotalWeight() int64 { return o.totalW }

// Len returns the number of weighted pairs (not the expanded length).
func (o *WeightedOracle[T]) Len() int { return len(o.sorted) }

// RankLE returns the total weight of items ≤ x — the weighted analogue of
// Oracle.RankLE, and the quantity a weighted EstimateRank approximates.
func (o *WeightedOracle[T]) RankLE(x T) int64 {
	i := order.CountLE(o.cmp, o.sorted, x)
	if i == 0 {
		return 0
	}
	return o.cumw[i-1]
}

// RankRange returns the inclusive range of expanded ranks occupied by the
// copies of x: [lo, hi]. When x does not occur, lo = hi+1 would be vacuous,
// so both collapse to the insertion rank (the expanded rank x's copies would
// start at), mirroring Oracle.RankRange.
func (o *WeightedOracle[T]) RankRange(x T) (lo, hi int64) {
	lt := order.CountLT(o.cmp, o.sorted, x)
	le := order.CountLE(o.cmp, o.sorted, x)
	var before int64
	if lt > 0 {
		before = o.cumw[lt-1]
	}
	if le > lt {
		return before + 1, o.cumw[le-1]
	}
	return before + 1, before + 1
}

// Select returns the item at expanded rank k (1-based), clamped to [1, W].
func (o *WeightedOracle[T]) Select(k int64) T {
	if len(o.sorted) == 0 {
		panic("rank: Select on empty weighted oracle")
	}
	if k < 1 {
		k = 1
	}
	if k > o.totalW {
		k = o.totalW
	}
	// Binary search the first position whose cumulative weight reaches k.
	lo, hi := 0, len(o.cumw)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if o.cumw[mid] >= k {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return o.sorted[lo]
}

// Quantile returns the exact weighted ϕ-quantile: the item at expanded rank
// ⌊ϕW⌋ (clamped to at least 1).
func (o *WeightedOracle[T]) Quantile(phi float64) T {
	return o.Select(WeightedQuantileRank(o.totalW, phi))
}

// WeightedQuantileRank returns the target expanded rank ⌊ϕW⌋ clamped to
// [1, W], the weighted analogue of QuantileRank.
func WeightedQuantileRank(totalW int64, phi float64) int64 {
	if totalW <= 0 {
		return 0
	}
	k := int64(phi * float64(totalW))
	if k < 1 {
		k = 1
	}
	if k > totalW {
		k = totalW
	}
	return k
}

// RankError returns the absolute expanded-rank error of candidate when used
// to answer the weighted ϕ-quantile query: the distance from the closest
// expanded rank occupied by candidate to the target rank ⌊ϕW⌋.
func (o *WeightedOracle[T]) RankError(candidate T, phi float64) int64 {
	target := WeightedQuantileRank(o.totalW, phi)
	lo, hi := o.RankRange(candidate)
	switch {
	case target < lo:
		return lo - target
	case target > hi:
		return target - hi
	default:
		return 0
	}
}

// Float64WeightedOracle is a convenience constructor for the common float64
// case.
func Float64WeightedOracle(items []float64, weights []int64) *WeightedOracle[float64] {
	return NewWeightedOracle(order.Floats[float64](), items, weights)
}
