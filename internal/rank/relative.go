package rank

// Relative-rank ground truth: the oracle the relative-error tier
// (internal/req high-tail, internal/biased low-tail) is verified against.
// Where the uniform guarantee allows every query the same ±εN, a
// relative-error summary's allowance scales with how deep into its accurate
// tail the query sits — ε·(N−t+1) items for a high-tail (p99.9/p99.99 SLO)
// summary at target rank t, ε·t items for a low-tail (biased) one. The
// RelativeOracle reports each answer's error in budget units, so "≤ ε with
// no slack" is the pass criterion at every ϕ simultaneously.

import "quantilelb/internal/order"

// RelativeOracle answers exact relative-rank queries over a fixed multiset
// of float64 items. It wraps Oracle under the NaN-first total order of
// order.Floats — the same order internal/req and internal/mlq compare by —
// so NaN-bearing streams verify like any other.
type RelativeOracle struct {
	*Oracle[float64]
}

// NewRelativeOracle builds a relative-rank oracle over items (which are
// copied and sorted, NaN-aware).
func NewRelativeOracle(items []float64) *RelativeOracle {
	return &RelativeOracle{Oracle: NewOracle(order.Floats[float64](), items)}
}

// TopRank returns the from-the-top target rank N−⌊ϕN⌋+1 of the ϕ-quantile:
// 1 for the maximum, N for the minimum. This is the budget unit of the
// high-tail relative guarantee.
func (o *RelativeOracle) TopRank(phi float64) int {
	n := o.Len()
	if n == 0 {
		return 0
	}
	return n - QuantileRank(n, phi) + 1
}

// HighTailError returns candidate's rank error for the ϕ-quantile query in
// high-tail budget units: |rank error| / (N−⌊ϕN⌋+1). A summary with the
// high-tail relative guarantee (internal/req) must keep this at most ε for
// every ϕ — which forces exactness at the extreme tail, where the budget
// unit shrinks to a fraction of one item.
func (o *RelativeOracle) HighTailError(candidate float64, phi float64) float64 {
	r := o.TopRank(phi)
	if r <= 0 {
		return 0
	}
	return float64(o.RankError(candidate, phi)) / float64(r)
}

// LowTailError returns candidate's rank error for the ϕ-quantile query in
// low-tail budget units: |rank error| / ⌊ϕN⌋. This is the convention of the
// biased (CKMS-style) guarantee, accurate at low quantiles.
func (o *RelativeOracle) LowTailError(candidate float64, phi float64) float64 {
	n := o.Len()
	if n == 0 {
		return 0
	}
	t := QuantileRank(n, phi)
	if t <= 0 {
		return 0
	}
	return float64(o.RankError(candidate, phi)) / float64(t)
}

// RelativeWeightedOracle is the weighted twin of RelativeOracle: exact
// relative-rank ground truth over a weighted multiset, with budgets in
// weight units.
type RelativeWeightedOracle struct {
	*WeightedOracle[float64]
}

// NewRelativeWeightedOracle builds a weighted relative-rank oracle over
// parallel item and positive-weight slices (NaN-aware). It panics on
// malformed input exactly as NewWeightedOracle does.
func NewRelativeWeightedOracle(items []float64, weights []int64) *RelativeWeightedOracle {
	return &RelativeWeightedOracle{WeightedOracle: NewWeightedOracle(order.Floats[float64](), items, weights)}
}

// TopRank returns the from-the-top weighted target rank W−⌊ϕW⌋+1 of the
// ϕ-quantile, the budget unit of the weighted high-tail guarantee.
func (o *RelativeWeightedOracle) TopRank(phi float64) int64 {
	w := o.TotalWeight()
	if w == 0 {
		return 0
	}
	return w - WeightedQuantileRank(w, phi) + 1
}

// HighTailError returns candidate's weighted rank error for the ϕ-quantile
// query in high-tail budget units: |rank error| / (W−⌊ϕW⌋+1).
func (o *RelativeWeightedOracle) HighTailError(candidate float64, phi float64) float64 {
	r := o.TopRank(phi)
	if r <= 0 {
		return 0
	}
	return float64(o.RankError(candidate, phi)) / float64(r)
}
