// Package rank provides exact order-statistic computation: the ground truth
// that experiments, the internal/checker accuracy oracles, and the
// internal/bench workload harness compare approximate summaries against.
//
// Definitions follow Section 2 of Cormode & Veselý (PODS 2020): the rank of
// an item a with respect to a stream
// σ is its position in the non-decreasing ordering of σ (for distinct items,
// one more than the number of items strictly smaller than a). The ϕ-quantile
// of a stream of N items is the ⌊ϕN⌋-th smallest item, and an ε-approximate
// ϕ-quantile is any k'-th smallest item with k' ∈ [⌊ϕN⌋ − εN, ⌊ϕN⌋ + εN].
package rank

import (
	"sort"

	"quantilelb/internal/order"
)

// Oracle answers exact rank and quantile queries over a fixed multiset of
// items. Construction sorts a copy of the data; queries are O(log n).
type Oracle[T any] struct {
	cmp    order.Comparator[T]
	sorted []T
}

// NewOracle builds an oracle over items (which are copied and sorted).
func NewOracle[T any](cmp order.Comparator[T], items []T) *Oracle[T] {
	sorted := make([]T, len(items))
	copy(sorted, items)
	order.Sort(cmp, sorted)
	return &Oracle[T]{cmp: cmp, sorted: sorted}
}

// Len returns the number of items.
func (o *Oracle[T]) Len() int { return len(o.sorted) }

// Sorted returns the sorted items. Callers must not modify the slice.
func (o *Oracle[T]) Sorted() []T { return o.sorted }

// Rank returns the 1-based rank of x: one more than the number of items
// strictly smaller than x. x need not occur in the data.
func (o *Oracle[T]) Rank(x T) int {
	return order.CountLT(o.cmp, o.sorted, x) + 1
}

// RankLE returns the number of items less than or equal to x, which is the
// convention used by the Estimating Rank problem in Section 6.2.
func (o *Oracle[T]) RankLE(x T) int {
	return order.CountLE(o.cmp, o.sorted, x)
}

// RankRange returns the inclusive range of ranks occupied by x: [lo, hi] where
// lo is the rank of the first occurrence and hi the rank of the last. When x
// does not occur, lo = hi = Rank(x) describes the position it would take.
func (o *Oracle[T]) RankRange(x T) (lo, hi int) {
	lo = order.CountLT(o.cmp, o.sorted, x) + 1
	le := order.CountLE(o.cmp, o.sorted, x)
	if le >= lo {
		return lo, le
	}
	return lo, lo
}

// Select returns the item of 1-based rank k (the k-th smallest item); k is
// clamped to [1, Len].
func (o *Oracle[T]) Select(k int) T {
	if len(o.sorted) == 0 {
		panic("rank: Select on empty oracle")
	}
	if k < 1 {
		k = 1
	}
	if k > len(o.sorted) {
		k = len(o.sorted)
	}
	return o.sorted[k-1]
}

// Quantile returns the exact ϕ-quantile, the ⌊ϕN⌋-th smallest item (with rank
// clamped to at least 1).
func (o *Oracle[T]) Quantile(phi float64) T {
	return o.Select(QuantileRank(len(o.sorted), phi))
}

// QuantileRank returns the target rank ⌊ϕN⌋ clamped to [1, N].
func QuantileRank(n int, phi float64) int {
	if n <= 0 {
		return 0
	}
	k := int(phi * float64(n))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// IsApproxQuantile reports whether candidate is an ε-approximate ϕ-quantile of
// the oracle's data: whether some occurrence of candidate has rank within
// ±εN of ⌊ϕN⌋.
func (o *Oracle[T]) IsApproxQuantile(candidate T, phi, eps float64) bool {
	n := len(o.sorted)
	if n == 0 {
		return false
	}
	target := QuantileRank(n, phi)
	slack := eps * float64(n)
	lo, hi := o.RankRange(candidate)
	// Some rank in [lo, hi] must fall within [target - slack, target + slack].
	lower := float64(target) - slack
	upper := float64(target) + slack
	return float64(hi) >= lower && float64(lo) <= upper
}

// RankError returns the absolute rank error of candidate when used to answer
// the ϕ-quantile query: the distance from the closest rank occupied by
// candidate to the target rank ⌊ϕN⌋, in items.
func (o *Oracle[T]) RankError(candidate T, phi float64) int {
	n := len(o.sorted)
	target := QuantileRank(n, phi)
	lo, hi := o.RankRange(candidate)
	switch {
	case target < lo:
		return lo - target
	case target > hi:
		return target - hi
	default:
		return 0
	}
}

// Select returns the k-th smallest (1-based) element of items without fully
// sorting them, using in-place quickselect with median-of-three pivoting.
// The input slice is reordered. It panics if k is out of range.
func Select[T any](cmp order.Comparator[T], items []T, k int) T {
	if k < 1 || k > len(items) {
		panic("rank: Select k out of range")
	}
	lo, hi := 0, len(items)-1
	target := k - 1
	for lo < hi {
		p := partition(cmp, items, lo, hi)
		switch {
		case target == p:
			return items[p]
		case target < p:
			hi = p - 1
		default:
			lo = p + 1
		}
	}
	return items[target]
}

// Median returns the lower median (the ⌈n/2⌉-th smallest item) of items,
// reordering the slice.
func Median[T any](cmp order.Comparator[T], items []T) T {
	n := len(items)
	if n == 0 {
		panic("rank: Median of empty slice")
	}
	return Select(cmp, items, (n+1)/2)
}

func partition[T any](cmp order.Comparator[T], items []T, lo, hi int) int {
	mid := lo + (hi-lo)/2
	// Median-of-three: order items[lo], items[mid], items[hi].
	if cmp(items[mid], items[lo]) < 0 {
		items[mid], items[lo] = items[lo], items[mid]
	}
	if cmp(items[hi], items[lo]) < 0 {
		items[hi], items[lo] = items[lo], items[hi]
	}
	if cmp(items[hi], items[mid]) < 0 {
		items[hi], items[mid] = items[mid], items[hi]
	}
	pivot := items[mid]
	items[mid], items[hi] = items[hi], items[mid]
	store := lo
	for i := lo; i < hi; i++ {
		if cmp(items[i], pivot) < 0 {
			items[i], items[store] = items[store], items[i]
			store++
		}
	}
	items[store], items[hi] = items[hi], items[store]
	return store
}

// Float64Oracle is a convenience constructor for the common float64 case.
func Float64Oracle(items []float64) *Oracle[float64] {
	return NewOracle(order.Floats[float64](), items)
}

// EvenlySpacedQuantiles returns the exact ϕ-quantiles for m evenly spaced
// probabilities ϕ = 1/m, 2/m, ..., 1, useful for building reference CDFs.
func (o *Oracle[T]) EvenlySpacedQuantiles(m int) []T {
	if m <= 0 || len(o.sorted) == 0 {
		return nil
	}
	out := make([]T, m)
	for i := 1; i <= m; i++ {
		out[i-1] = o.Quantile(float64(i) / float64(m))
	}
	return out
}

// OfflineOptimalSize returns ⌈1/(2ε)⌉, the storage needed by the offline
// optimal summary described in Section 1 of the paper.
func OfflineOptimalSize(eps float64) int {
	if eps <= 0 {
		return 0
	}
	size := int(1 / (2 * eps))
	if float64(size) < 1/(2*eps) {
		size++
	}
	return size
}

// SortedCopy returns a sorted copy of items under the natural float64 order.
func SortedCopy(items []float64) []float64 {
	out := make([]float64, len(items))
	copy(out, items)
	sort.Float64s(out)
	return out
}
