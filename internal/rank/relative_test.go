package rank_test

import (
	"math"
	"testing"

	"quantilelb/internal/rank"
)

func TestRelativeOracleTopRank(t *testing.T) {
	items := make([]float64, 1000)
	for i := range items {
		items[i] = float64(i)
	}
	o := rank.NewRelativeOracle(items)
	cases := []struct {
		phi  float64
		want int
	}{
		{1.0, 1},       // the maximum: budget unit 1
		{0.999, 2},     // target rank 999
		{0.5, 501},     // the median
		{0.0, 1000},    // the minimum (target rank clamps to 1)
		{0.0005, 1000}, // sub-one targets clamp to rank 1
	}
	for _, c := range cases {
		if got := o.TopRank(c.phi); got != c.want {
			t.Fatalf("TopRank(%v) = %d, want %d", c.phi, got, c.want)
		}
	}
}

func TestRelativeOracleHighTailError(t *testing.T) {
	items := make([]float64, 1000)
	for i := range items {
		items[i] = float64(i)
	}
	o := rank.NewRelativeOracle(items)
	// The exact maximum has zero error at phi=1.
	if e := o.HighTailError(999, 1.0); e != 0 {
		t.Fatalf("exact max: HighTailError = %v, want 0", e)
	}
	// Answering phi=1 (top rank 1) one item low costs a full budget unit.
	if e := o.HighTailError(998, 1.0); e != 1 {
		t.Fatalf("off-by-one at the max: HighTailError = %v, want 1", e)
	}
	// The same one-item miss at phi=0.999 (top rank 2) costs half a unit.
	if e := o.HighTailError(997, 0.999); e != 0.5 {
		t.Fatalf("off-by-one at phi=0.999: HighTailError = %v, want 0.5", e)
	}
	// Deep in the body the same absolute miss is nearly free.
	if e := o.HighTailError(489, 0.5); e >= 0.05 {
		t.Fatalf("10-item miss at the median: HighTailError = %v, want < 0.05", e)
	}
}

func TestRelativeOracleLowTailError(t *testing.T) {
	items := make([]float64, 1000)
	for i := range items {
		items[i] = float64(i)
	}
	o := rank.NewRelativeOracle(items)
	// The low-tail convention is the mirror image: rank-1 misses are the
	// expensive ones.
	if e := o.LowTailError(0, 0.0005); e != 0 {
		t.Fatalf("exact min: LowTailError = %v, want 0", e)
	}
	if e := o.LowTailError(1, 0.0005); e != 1 {
		t.Fatalf("off-by-one at the min: LowTailError = %v, want 1", e)
	}
	if e := o.LowTailError(989, 0.99); e >= 0.05 {
		t.Fatalf("1-item miss at phi=0.99: LowTailError = %v, want < 0.05", e)
	}
}

func TestRelativeOracleNaNAware(t *testing.T) {
	// NaN sorts first under the total order, so it is the minimum; the
	// oracle must agree with the summaries' comparator rather than hang or
	// misrank.
	items := []float64{3, math.NaN(), 1, 2, math.NaN()}
	o := rank.NewRelativeOracle(items)
	if got := o.TopRank(1.0); got != 1 {
		t.Fatalf("TopRank(1) = %d, want 1", got)
	}
	if e := o.HighTailError(3, 1.0); e != 0 {
		t.Fatalf("max of NaN stream: HighTailError = %v, want 0", e)
	}
	if e := o.LowTailError(math.NaN(), 0.2); e != 0 {
		t.Fatalf("NaN run at the bottom: LowTailError = %v, want 0", e)
	}
}

func TestRelativeOracleEmpty(t *testing.T) {
	o := rank.NewRelativeOracle(nil)
	if o.TopRank(0.5) != 0 {
		t.Fatal("TopRank on empty oracle must be 0")
	}
	if o.HighTailError(1, 0.5) != 0 || o.LowTailError(1, 0.5) != 0 {
		t.Fatal("errors on empty oracle must be 0")
	}
}

func TestRelativeWeightedOracle(t *testing.T) {
	items := []float64{10, 20, 30}
	weights := []int64{5, 3, 2} // total weight 10; 30 occupies ranks 9-10
	o := rank.NewRelativeWeightedOracle(items, weights)
	if got := o.TopRank(1.0); got != 1 {
		t.Fatalf("TopRank(1) = %d, want 1", got)
	}
	if e := o.HighTailError(30, 1.0); e != 0 {
		t.Fatalf("exact weighted max: HighTailError = %v, want 0", e)
	}
	// Answering phi=1 (weighted top rank 1) with 20 misses by one weight
	// unit (20's last rank is 8, target 10 → error 2, budget 1).
	if e := o.HighTailError(20, 1.0); e != 2 {
		t.Fatalf("weighted off-by-two at the max: HighTailError = %v, want 2", e)
	}
	// phi=0.85 targets rank 8, which 20 covers exactly.
	if e := o.HighTailError(20, 0.85); e != 0 {
		t.Fatalf("weighted in-run answer: HighTailError = %v, want 0", e)
	}
}
