package rank

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"quantilelb/internal/order"
)

func TestOracleRankAndSelect(t *testing.T) {
	o := Float64Oracle([]float64{5, 1, 9, 3, 7})
	if o.Len() != 5 {
		t.Fatalf("Len = %d", o.Len())
	}
	if got := o.Rank(1); got != 1 {
		t.Errorf("Rank(1) = %d, want 1", got)
	}
	if got := o.Rank(9); got != 5 {
		t.Errorf("Rank(9) = %d, want 5", got)
	}
	if got := o.Rank(4); got != 3 {
		t.Errorf("Rank(4) = %d, want 3 (2 smaller + 1)", got)
	}
	if got := o.RankLE(5); got != 3 {
		t.Errorf("RankLE(5) = %d, want 3", got)
	}
	if got := o.Select(1); got != 1 {
		t.Errorf("Select(1) = %v", got)
	}
	if got := o.Select(5); got != 9 {
		t.Errorf("Select(5) = %v", got)
	}
	// Clamping.
	if got := o.Select(0); got != 1 {
		t.Errorf("Select(0) should clamp to min, got %v", got)
	}
	if got := o.Select(100); got != 9 {
		t.Errorf("Select(100) should clamp to max, got %v", got)
	}
}

func TestOracleSortedIsSorted(t *testing.T) {
	o := Float64Oracle([]float64{2, 1, 3})
	if !reflect.DeepEqual(o.Sorted(), []float64{1, 2, 3}) {
		t.Errorf("Sorted = %v", o.Sorted())
	}
}

func TestRankRangeWithDuplicates(t *testing.T) {
	o := Float64Oracle([]float64{1, 2, 2, 2, 3})
	lo, hi := o.RankRange(2)
	if lo != 2 || hi != 4 {
		t.Errorf("RankRange(2) = [%d,%d], want [2,4]", lo, hi)
	}
	lo, hi = o.RankRange(2.5)
	if lo != 5 || hi != 5 {
		t.Errorf("RankRange(2.5) = [%d,%d], want [5,5]", lo, hi)
	}
}

func TestQuantileRank(t *testing.T) {
	cases := []struct {
		n    int
		phi  float64
		want int
	}{
		{100, 0.5, 50},
		{100, 0.0, 1},
		{100, 1.0, 100},
		{100, 0.999, 99},
		{10, 0.05, 1},
		{0, 0.5, 0},
	}
	for _, c := range cases {
		if got := QuantileRank(c.n, c.phi); got != c.want {
			t.Errorf("QuantileRank(%d, %v) = %d, want %d", c.n, c.phi, got, c.want)
		}
	}
}

func TestQuantile(t *testing.T) {
	items := make([]float64, 100)
	for i := range items {
		items[i] = float64(i + 1)
	}
	o := Float64Oracle(items)
	if got := o.Quantile(0.5); got != 50 {
		t.Errorf("Quantile(0.5) = %v, want 50", got)
	}
	if got := o.Quantile(0.25); got != 25 {
		t.Errorf("Quantile(0.25) = %v, want 25", got)
	}
	if got := o.Quantile(1.0); got != 100 {
		t.Errorf("Quantile(1.0) = %v, want 100", got)
	}
	if got := o.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %v, want 1", got)
	}
}

func TestIsApproxQuantile(t *testing.T) {
	items := make([]float64, 100)
	for i := range items {
		items[i] = float64(i + 1)
	}
	o := Float64Oracle(items)
	// Target rank for phi=0.5 is 50, eps=0.1 allows ranks 40..60.
	if !o.IsApproxQuantile(50, 0.5, 0.1) {
		t.Errorf("exact median should qualify")
	}
	if !o.IsApproxQuantile(41, 0.5, 0.1) || !o.IsApproxQuantile(59, 0.5, 0.1) {
		t.Errorf("items within eps*N should qualify")
	}
	if o.IsApproxQuantile(39, 0.5, 0.1) || o.IsApproxQuantile(61, 0.5, 0.1) {
		t.Errorf("items outside eps*N should not qualify")
	}
}

func TestRankError(t *testing.T) {
	items := make([]float64, 100)
	for i := range items {
		items[i] = float64(i + 1)
	}
	o := Float64Oracle(items)
	if got := o.RankError(50, 0.5); got != 0 {
		t.Errorf("RankError(50, 0.5) = %d, want 0", got)
	}
	if got := o.RankError(45, 0.5); got != 5 {
		t.Errorf("RankError(45, 0.5) = %d, want 5", got)
	}
	if got := o.RankError(60, 0.5); got != 10 {
		t.Errorf("RankError(60, 0.5) = %d, want 10", got)
	}
}

func TestSelectQuickselect(t *testing.T) {
	cmp := order.Floats[float64]()
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		items := make([]float64, n)
		for i := range items {
			items[i] = rng.Float64() * 100
		}
		sorted := SortedCopy(items)
		k := 1 + rng.Intn(n)
		work := append([]float64(nil), items...)
		got := Select(cmp, work, k)
		if got != sorted[k-1] {
			t.Fatalf("Select(%d) = %v, want %v", k, got, sorted[k-1])
		}
	}
}

func TestSelectPanicsOutOfRange(t *testing.T) {
	cmp := order.Floats[float64]()
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	Select(cmp, []float64{1, 2, 3}, 4)
}

func TestMedian(t *testing.T) {
	cmp := order.Floats[float64]()
	if got := Median(cmp, []float64{5, 1, 3}); got != 3 {
		t.Errorf("Median odd = %v, want 3", got)
	}
	if got := Median(cmp, []float64{4, 1, 3, 2}); got != 2 {
		t.Errorf("Median even (lower) = %v, want 2", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("Median of empty should panic")
		}
	}()
	Median(cmp, nil)
}

func TestEvenlySpacedQuantiles(t *testing.T) {
	items := make([]float64, 100)
	for i := range items {
		items[i] = float64(i + 1)
	}
	o := Float64Oracle(items)
	qs := o.EvenlySpacedQuantiles(4)
	want := []float64{25, 50, 75, 100}
	if !reflect.DeepEqual(qs, want) {
		t.Errorf("EvenlySpacedQuantiles(4) = %v, want %v", qs, want)
	}
	if o.EvenlySpacedQuantiles(0) != nil {
		t.Errorf("m=0 should return nil")
	}
	empty := Float64Oracle(nil)
	if empty.EvenlySpacedQuantiles(3) != nil {
		t.Errorf("empty oracle should return nil")
	}
}

func TestOfflineOptimalSize(t *testing.T) {
	cases := []struct {
		eps  float64
		want int
	}{
		{0.5, 1},
		{0.25, 2},
		{0.1, 5},
		{0.01, 50},
		{0.3, 2},  // 1/(2*0.3) = 1.67 -> 2
		{0.07, 8}, // 1/(0.14) = 7.14 -> 8
		{0, 0},
		{-1, 0},
	}
	for _, c := range cases {
		if got := OfflineOptimalSize(c.eps); got != c.want {
			t.Errorf("OfflineOptimalSize(%v) = %d, want %d", c.eps, got, c.want)
		}
	}
}

func TestSortedCopy(t *testing.T) {
	in := []float64{3, 1, 2}
	out := SortedCopy(in)
	if !reflect.DeepEqual(out, []float64{1, 2, 3}) {
		t.Errorf("SortedCopy = %v", out)
	}
	if !reflect.DeepEqual(in, []float64{3, 1, 2}) {
		t.Errorf("SortedCopy mutated input")
	}
}

// Property: oracle Rank matches brute force for arbitrary queries.
func TestOracleRankProperty(t *testing.T) {
	f := func(items []float64, q float64) bool {
		o := Float64Oracle(items)
		brute := 1
		for _, x := range items {
			if x < q {
				brute++
			}
		}
		return o.Rank(q) == brute
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Select via quickselect agrees with sorting for random slices.
func TestSelectMatchesSortProperty(t *testing.T) {
	cmp := order.Floats[float64]()
	f := func(items []float64, kRaw uint8) bool {
		if len(items) == 0 {
			return true
		}
		k := int(kRaw)%len(items) + 1
		sorted := append([]float64(nil), items...)
		sort.Float64s(sorted)
		work := append([]float64(nil), items...)
		return Select(cmp, work, k) == sorted[k-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the exact quantile is always an ε-approximate quantile of itself.
func TestExactQuantileIsApproxProperty(t *testing.T) {
	f := func(items []float64, phiRaw uint8) bool {
		if len(items) == 0 {
			return true
		}
		phi := float64(phiRaw) / 255
		o := Float64Oracle(items)
		q := o.Quantile(phi)
		return o.IsApproxQuantile(q, phi, 0.001)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
