package rank

// The weighted oracle is itself ground truth, so it is tested against the
// one thing more trustworthy than it: the plain Oracle over the explicitly
// weight-expanded stream.

import (
	"math/rand"
	"testing"

	"quantilelb/internal/order"
)

// expand materializes the weight-expanded stream.
func expand(items []float64, weights []int64) []float64 {
	var out []float64
	for i, x := range items {
		for j := int64(0); j < weights[i]; j++ {
			out = append(out, x)
		}
	}
	return out
}

func TestWeightedOracleMatchesExpandedOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	items := make([]float64, 500)
	weights := make([]int64, 500)
	for i := range items {
		items[i] = float64(rng.Intn(90)) // plenty of ties
		weights[i] = int64(1 + rng.Intn(12))
	}
	w := Float64WeightedOracle(items, weights)
	plain := Float64Oracle(expand(items, weights))

	if got, want := w.TotalWeight(), int64(plain.Len()); got != want {
		t.Fatalf("TotalWeight = %d, want %d", got, want)
	}
	for q := -1.0; q <= 91; q += 0.5 {
		if got, want := w.RankLE(q), int64(plain.RankLE(q)); got != want {
			t.Fatalf("RankLE(%g) = %d, want %d", q, got, want)
		}
		lo, hi := w.RankRange(q)
		plo, phi := plain.RankRange(q)
		if lo != int64(plo) || hi != int64(phi) {
			t.Fatalf("RankRange(%g) = [%d,%d], want [%d,%d]", q, lo, hi, plo, phi)
		}
	}
	for g := 0; g <= 100; g++ {
		phi := float64(g) / 100
		if got, want := w.Quantile(phi), plain.Quantile(phi); got != want {
			t.Fatalf("Quantile(%g) = %g, want %g", phi, got, want)
		}
		for _, cand := range []float64{0, 13, 45.5, 89} {
			if got, want := w.RankError(cand, phi), int64(plain.RankError(cand, phi)); got != want {
				t.Fatalf("RankError(%g, %g) = %d, want %d", cand, phi, got, want)
			}
		}
	}
}

func TestWeightedOracleSelectClamps(t *testing.T) {
	o := NewWeightedOracle(order.Floats[float64](), []float64{3, 1, 2}, []int64{2, 1, 4})
	// Expanded: 1 2 2 2 2 3 3 (W = 7).
	if got := o.Select(-5); got != 1 {
		t.Errorf("Select(-5) = %g, want 1", got)
	}
	if got := o.Select(99); got != 3 {
		t.Errorf("Select(99) = %g, want 3", got)
	}
	if got := o.Select(5); got != 2 {
		t.Errorf("Select(5) = %g, want 2", got)
	}
	if got := WeightedQuantileRank(0, 0.5); got != 0 {
		t.Errorf("WeightedQuantileRank(0, .5) = %d, want 0", got)
	}
}

func TestWeightedOraclePanics(t *testing.T) {
	assertPanics := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	assertPanics("length mismatch", func() {
		NewWeightedOracle(order.Floats[float64](), []float64{1}, nil)
	})
	assertPanics("non-positive weight", func() {
		NewWeightedOracle(order.Floats[float64](), []float64{1}, []int64{0})
	})
}
