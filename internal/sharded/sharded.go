// Package sharded provides a concurrent ingestion layer over any mergeable
// quantile summary: writes are spread across P independently locked shards,
// and reads are served from a merged snapshot that is rebuilt copy-on-merge,
// so readers never block writers and writers never block readers.
//
// The design exploits the MERGE discipline of the mergeable-summaries
// literature (referenced in Section 1.2 of Cormode & Veselý, PODS 2020):
// when Merge guarantees eps_new = max(eps_a, eps_b) — as the GK COMBINE
// merge, the KLL sketch, the MRL buffer merge, and the reservoir merge in
// this repository all do — a summary sharded P ways answers queries over the
// union of all shards with the *same* accuracy eps as a single-writer
// summary, while accepting updates from P goroutines in parallel.
//
// Write path. Update picks a shard uniformly at random (uniform assignment
// keeps every shard an i.i.d. subsample of the stream, which is all the merge
// guarantee needs — quantile summaries are multisets, so assignment cannot
// bias answers) and appends the item to a small per-shard buffer under the
// shard lock; full buffers are flushed with the summary's bulk UpdateBatch
// when it has one (GK does), amortizing the per-item insertion scan.
// UpdateBatch hands a whole caller-provided batch to one shard in a single
// lock acquisition.
//
// Read path. Query, EstimateRank, CDF, StoredItems and StoredCount read an
// immutable snapshot built by folding every shard into a fresh summary from
// the factory (each shard is locked only while it is being copied out). A
// snapshot is rebuilt when a reader finds it more than refreshEvery updates
// stale and no other rebuild is in flight; readers that lose the race simply
// serve the previous snapshot. Staleness is therefore bounded by
// refreshEvery items plus one in-flight rebuild.
package sharded

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"quantilelb/internal/encoding"
	"quantilelb/internal/summary"
)

// Mergeable constrains the shard summary type S: a full quantile summary
// over items of type T that can fold another instance of its own concrete
// type into itself with bounded error (eps_new = max(eps_a, eps_b) for every
// implementation in this repository).
type Mergeable[T any, S any] interface {
	summary.Summary[T]
	Merge(other S) error
}

// batchUpdater is the optional fast path a summary can provide for flushing
// a write buffer in one pass (see gk.UpdateBatch).
type batchUpdater[T any] interface {
	UpdateBatch(xs []T)
}

// weightedUpdater is the optional native weighted-ingest path (see
// summary.WeightedUpdater); every mergeable family in this repository — GK,
// KLL, MRL, and the reservoir — provides it.
type weightedUpdater[T any] interface {
	WeightedUpdate(x T, w int64)
	WeightedUpdateBatch(xs []T, ws []int64)
}

// Option configures a Sharded summary.
type Option func(*config)

type config struct {
	refreshEvery int64
	bufferSize   int
}

// WithRefreshEvery sets how many accepted updates may accumulate before a
// reader triggers a snapshot rebuild. Lower values give fresher reads at the
// cost of more merge work; 0 rebuilds on every read. The default is 4096.
func WithRefreshEvery(n int) Option {
	return func(c *config) {
		if n >= 0 {
			c.refreshEvery = int64(n)
		}
	}
}

// WithWriteBuffer sets the per-shard write buffer size. Buffered items are
// invisible to queries until the buffer is flushed (on overflow or at the
// next snapshot rebuild, which flushes every shard). 0 disables buffering so
// every Update reaches the shard summary immediately. The default is 128.
func WithWriteBuffer(n int) Option {
	return func(c *config) {
		if n >= 0 {
			c.bufferSize = n
		}
	}
}

// shard is one lock stripe. Shards are allocated individually so that two
// shards never share a cache line through the enclosing slice.
type shard[T any, S Mergeable[T, S]] struct {
	mu  sync.Mutex
	sum S
	buf []T
}

// snapshot is an immutable merged view: sum is never written after
// publication, so any number of readers may query it concurrently.
type snapshot[T any, S Mergeable[T, S]] struct {
	sum S
	n   int64 // accepted updates included in sum
}

// Sharded is a concurrent quantile summary: P lock-striped shards of S plus
// a copy-on-merge snapshot for readers. All methods are safe for concurrent
// use by any number of goroutines. It implements the same Summary interface
// as the underlying sketches, so the histogram/CDF/KS applications work on
// it unchanged.
type Sharded[T any, S Mergeable[T, S]] struct {
	factory  func() S
	shards   []*shard[T, S]
	bufSize  int
	refresh  int64
	batching bool // S implements batchUpdater[T]
	weighted bool // S implements weightedUpdater[T]

	total     atomic.Int64 // accepted updates, including still-buffered ones
	snap      atomic.Pointer[snapshot[T, S]]
	mergeMu   sync.Mutex // serializes snapshot rebuilds
	refreshes atomic.Int64
}

// New returns a Sharded summary with the given number of shards, each
// initialized from factory. The factory must produce summaries that can
// merge with each other (same accuracy, and same structural parameters where
// the summary requires them — KLL's k, MRL's buffer capacity). It panics if
// shards < 1.
func New[T any, S Mergeable[T, S]](factory func() S, shards int, opts ...Option) *Sharded[T, S] {
	if shards < 1 {
		panic("sharded: shards must be positive")
	}
	cfg := config{refreshEvery: 4096, bufferSize: 128}
	for _, o := range opts {
		o(&cfg)
	}
	s := &Sharded[T, S]{
		factory: factory,
		shards:  make([]*shard[T, S], shards),
		bufSize: cfg.bufferSize,
		refresh: cfg.refreshEvery,
	}
	for i := range s.shards {
		s.shards[i] = &shard[T, S]{sum: factory()}
	}
	_, s.batching = any(s.shards[0].sum).(batchUpdater[T])
	_, s.weighted = any(s.shards[0].sum).(weightedUpdater[T])
	return s
}

// Shards returns the number of lock stripes.
func (s *Sharded[T, S]) Shards() int { return len(s.shards) }

// Batched reports whether the underlying summary provides a bulk UpdateBatch
// fast path (every mergeable summary in this repository — GK, KLL, MRL, and
// the reservoir — does). When false, buffered writes fall back to
// item-at-a-time Update on flush.
func (s *Sharded[T, S]) Batched() bool { return s.batching }

// pick selects a shard uniformly at random. math/rand/v2 draws from
// per-goroutine state, so picking is contention-free.
func (s *Sharded[T, S]) pick() *shard[T, S] {
	if len(s.shards) == 1 {
		return s.shards[0]
	}
	return s.shards[rand.IntN(len(s.shards))]
}

// applyLocked feeds items into a shard's summary, using the bulk path when
// the summary has one. The shard lock must be held.
func (s *Sharded[T, S]) applyLocked(sh *shard[T, S], items []T) {
	if len(items) == 0 {
		return
	}
	if s.batching {
		any(sh.sum).(batchUpdater[T]).UpdateBatch(items)
		return
	}
	for _, x := range items {
		sh.sum.Update(x)
	}
}

// flushLocked drains a shard's write buffer into its summary. The shard lock
// must be held.
func (s *Sharded[T, S]) flushLocked(sh *shard[T, S]) {
	if len(sh.buf) == 0 {
		return
	}
	s.applyLocked(sh, sh.buf)
	sh.buf = sh.buf[:0]
}

// Update ingests one item. Safe for concurrent use; with buffering enabled
// the item becomes visible to queries at the latest at the next snapshot
// rebuild.
func (s *Sharded[T, S]) Update(x T) {
	sh := s.pick()
	sh.mu.Lock()
	if s.bufSize > 0 {
		sh.buf = append(sh.buf, x)
		if len(sh.buf) >= s.bufSize {
			s.flushLocked(sh)
		}
	} else {
		sh.sum.Update(x)
	}
	sh.mu.Unlock()
	s.total.Add(1)
}

// UpdateBatch ingests a batch of items through a single shard under one lock
// acquisition — the preferred write path for high-throughput producers that
// already aggregate items (network handlers, log shippers).
func (s *Sharded[T, S]) UpdateBatch(xs []T) {
	if len(xs) == 0 {
		return
	}
	sh := s.pick()
	sh.mu.Lock()
	s.flushLocked(sh) // preserve buffered items' visibility ordering
	s.applyLocked(sh, xs)
	sh.mu.Unlock()
	s.total.Add(int64(len(xs)))
}

// Weighted reports whether the underlying summary provides a native weighted
// ingest path (every mergeable family in this repository does). When false,
// WeightedUpdate and WeightedUpdateBatch panic; use the expansion fallback
// at a higher layer instead.
func (s *Sharded[T, S]) Weighted() bool { return s.weighted }

// WeightedUpdate ingests one item carrying an integer weight w ≥ 1 into one
// shard, equivalent to w repeated Updates of x (Count afterwards reports the
// total weight). Weighted items bypass the write buffer and reach the shard
// summary's native weighted path directly, under one lock acquisition. It
// panics when w is not positive or the summary family has no native weighted
// path (see Weighted).
func (s *Sharded[T, S]) WeightedUpdate(x T, w int64) {
	if !s.weighted {
		panic("sharded: summary family has no native weighted path")
	}
	sh := s.pick()
	sh.mu.Lock()
	any(sh.sum).(weightedUpdater[T]).WeightedUpdate(x, w)
	sh.mu.Unlock()
	s.total.Add(w)
}

// WeightedUpdateBatch ingests a batch of weighted items through a single
// shard under one lock acquisition — the weighted twin of UpdateBatch, and
// the path the HTTP tier's {v,w} JSON batches take. len(ws) must equal
// len(xs); it panics on a length mismatch, a non-positive weight, or a
// family without a native weighted path.
func (s *Sharded[T, S]) WeightedUpdateBatch(xs []T, ws []int64) {
	if !s.weighted {
		panic("sharded: summary family has no native weighted path")
	}
	if len(xs) != len(ws) {
		panic("sharded: WeightedUpdateBatch: items and weights differ in length")
	}
	if len(xs) == 0 {
		return
	}
	var total int64
	for _, w := range ws {
		total += w
	}
	sh := s.pick()
	sh.mu.Lock()
	any(sh.sum).(weightedUpdater[T]).WeightedUpdateBatch(xs, ws)
	sh.mu.Unlock()
	s.total.Add(total)
}

// refreshLocked rebuilds the snapshot. Caller holds mergeMu.
func (s *Sharded[T, S]) refreshLocked() {
	fresh := s.factory()
	var n int64
	for _, sh := range s.shards {
		sh.mu.Lock()
		s.flushLocked(sh)
		err := fresh.Merge(sh.sum)
		sh.mu.Unlock()
		if err != nil {
			// Factories produce mutually mergeable summaries, so this can
			// only mean a misconfigured factory; surface it loudly rather
			// than serving silently wrong answers.
			panic("sharded: snapshot merge failed: " + err.Error())
		}
	}
	n = int64(fresh.Count())
	s.snap.Store(&snapshot[T, S]{sum: fresh, n: n})
	s.refreshes.Add(1)
}

// Refresh synchronously rebuilds the merged snapshot, flushing every shard's
// write buffer. Queries issued afterwards observe every update accepted
// before Refresh was called. When the current snapshot already covers every
// accepted update the rebuild is skipped — an idle AutoRefresh tick costs an
// atomic load, not a full merge.
func (s *Sharded[T, S]) Refresh() {
	if sn := s.snap.Load(); sn != nil && sn.n == s.total.Load() {
		return
	}
	s.mergeMu.Lock()
	s.refreshLocked()
	s.mergeMu.Unlock()
}

// view returns the snapshot to answer a read from, rebuilding it when it is
// missing or stale and no other rebuild is already in flight.
func (s *Sharded[T, S]) view() *snapshot[T, S] {
	sn := s.snap.Load()
	if sn == nil {
		s.Refresh()
		return s.snap.Load()
	}
	if s.total.Load()-sn.n >= s.refresh {
		if s.mergeMu.TryLock() {
			s.refreshLocked()
			s.mergeMu.Unlock()
			return s.snap.Load()
		}
		// Another goroutine is rebuilding; serve the current snapshot.
	}
	return sn
}

// AutoRefresh starts a background goroutine that rebuilds the snapshot every
// interval, giving time-bounded (rather than update-count-bounded) staleness
// for read-light workloads. The returned stop function terminates it.
func (s *Sharded[T, S]) AutoRefresh(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.Refresh()
			case <-done:
				return
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// Query returns an approximate ϕ-quantile of everything ingested so far (up
// to snapshot staleness), with the same eps guarantee as a single instance
// of the underlying summary.
func (s *Sharded[T, S]) Query(phi float64) (T, bool) {
	return s.view().sum.Query(phi)
}

// EstimateRank estimates the number of ingested items ≤ q from the merged
// snapshot.
func (s *Sharded[T, S]) EstimateRank(q T) int {
	return s.view().sum.EstimateRank(q)
}

// CDF returns F̂(q), the estimated fraction of ingested items ≤ q, clamped
// to [0, 1]. The estimate is uniform over q: |F̂(q) − F(q)| ≤ eps.
func (s *Sharded[T, S]) CDF(q T) float64 {
	sn := s.view()
	n := sn.sum.Count()
	if n == 0 {
		return 0
	}
	r := sn.sum.EstimateRank(q)
	if r < 0 {
		r = 0
	}
	if r > n {
		r = n
	}
	return float64(r) / float64(n)
}

// Count returns the number of items accepted so far, including items still
// sitting in write buffers or not yet merged into the snapshot.
func (s *Sharded[T, S]) Count() int { return int(s.total.Load()) }

// StoredItems returns the merged snapshot's retained items in non-decreasing
// order.
func (s *Sharded[T, S]) StoredItems() []T { return s.view().sum.StoredItems() }

// StoredCount returns the number of items retained by the merged snapshot
// (the space measure of the paper, for the reader-facing copy).
func (s *Sharded[T, S]) StoredCount() int { return s.view().sum.StoredCount() }

// Snapshot returns the current merged summary and the number of accepted
// updates it covers, without forcing a rebuild (a nil-snapshot state forces
// one so the returned summary is never nil). The returned summary is
// immutable — callers may query it concurrently but must not update it.
func (s *Sharded[T, S]) Snapshot() (S, int) {
	sn := s.snap.Load()
	if sn == nil {
		s.Refresh()
		sn = s.snap.Load()
	}
	return sn.sum, int(sn.n)
}

// SnapshotPayload serializes the current merged view as a wire payload
// (internal/encoding format) and returns the number of accepted updates the
// payload covers. Like Snapshot it is lock-free on the hot path: it reads the
// published snapshot pointer and never forces a rebuild (except from the
// initial nil-snapshot state), so writers are never blocked by peers pulling
// snapshots. The count is monotonic within this process, so it identifies
// the payload's content for one lifetime — the HTTP tier mixes it with a
// per-boot nonce to form the /snapshot ETag.
func (s *Sharded[T, S]) SnapshotPayload() ([]byte, int64, error) {
	sum, n := s.Snapshot()
	payload, err := encoding.Encode(sum)
	if err != nil {
		return nil, 0, err
	}
	return payload, int64(n), nil
}

// SnapshotVersion reports the number of accepted updates the published
// snapshot covers, without serializing anything; ok is false before the
// first snapshot is built. The count is monotonic within this process, so
// the /snapshot handler (with its per-boot nonce) uses it to answer
// If-None-Match revalidation without paying for an encode.
func (s *Sharded[T, S]) SnapshotVersion() (int64, bool) {
	sn := s.snap.Load()
	if sn == nil {
		return 0, false
	}
	return sn.n, true
}

// MergeSummary folds an independently built summary — typically a peer's
// decoded snapshot — into one shard, under that shard's lock only. The merged
// items become visible to queries at the next snapshot rebuild, and the
// accuracy budget follows the COMBINE rule: eps_new = max(own eps, other's
// eps). other must be mergeable with the factory's summaries (same structural
// parameters where the family requires them); the summary's own Merge
// validates that and its error is returned verbatim. other is not modified,
// but must not be mutated concurrently by the caller.
func (s *Sharded[T, S]) MergeSummary(other S) error {
	n := other.Count()
	sh := s.pick()
	sh.mu.Lock()
	err := sh.sum.Merge(other)
	sh.mu.Unlock()
	if err != nil {
		return err
	}
	s.total.Add(int64(n))
	return nil
}

// Stats reports operational counters for monitoring endpoints.
type Stats struct {
	// Shards is the number of lock stripes.
	Shards int
	// Count is the number of accepted updates.
	Count int
	// SnapshotCount is the number of updates covered by the current snapshot.
	SnapshotCount int
	// SnapshotStored is the number of items the snapshot retains.
	SnapshotStored int
	// Refreshes is the number of snapshot rebuilds performed.
	Refreshes int
}

// Stats returns a point-in-time view of the operational counters. It does
// not force a snapshot rebuild; before the first read all snapshot fields
// are zero.
func (s *Sharded[T, S]) Stats() Stats {
	st := Stats{
		Shards:    len(s.shards),
		Count:     int(s.total.Load()),
		Refreshes: int(s.refreshes.Load()),
	}
	if sn := s.snap.Load(); sn != nil {
		st.SnapshotCount = int(sn.n)
		st.SnapshotStored = sn.sum.StoredCount()
	}
	return st
}
