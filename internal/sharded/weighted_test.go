package sharded

// Weighted ingestion through the concurrent layer: mixed weighted/unweighted
// writers against concurrent readers (the -race smoke CI runs), with the
// merged snapshot checked against the exact weighted oracle.

import (
	"sync"
	"testing"

	"quantilelb/internal/gk"
	"quantilelb/internal/rank"
)

func TestWeightedReporting(t *testing.T) {
	s := New(func() *gk.Summary[float64] { return gk.NewFloat64(0.05) }, 4)
	if !s.Weighted() {
		t.Fatal("GK-backed sharded summary must report a native weighted path")
	}
}

func TestWeightedUpdateCountsWeight(t *testing.T) {
	s := New(func() *gk.Summary[float64] { return gk.NewFloat64(0.05) }, 4)
	s.WeightedUpdate(1.5, 10)
	s.WeightedUpdateBatch([]float64{2.5, 3.5}, []int64{20, 30})
	if s.Count() != 60 {
		t.Fatalf("Count = %d, want total weight 60", s.Count())
	}
	s.Refresh()
	// The merged snapshot answers within ±ε·W (the exact midpoint depends on
	// which shards the three weighted updates landed on).
	if r := s.EstimateRank(2.0); r < 10-3 || r > 10+3 {
		t.Errorf("rank(2.0) = %d, want 10 ± εW = 3", r)
	}
}

// TestWeightedConcurrentIngestion is the weighted-path race smoke: weighted
// writers, unweighted writers, and weighted-batch writers all racing
// readers, then the merged result verified against the weighted oracle.
func TestWeightedConcurrentIngestion(t *testing.T) {
	const (
		eps         = 0.02
		writers     = 4
		perWriter   = 2_000
		batchSize   = 50
		unitPerGoro = 2_000
	)
	s := New(func() *gk.Summary[float64] { return gk.NewFloat64(eps) }, 8)

	var mu sync.Mutex
	var allItems []float64
	var allWeights []int64
	record := func(items []float64, weights []int64) {
		mu.Lock()
		allItems = append(allItems, items...)
		allWeights = append(allWeights, weights...)
		mu.Unlock()
	}

	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		// Weighted item-at-a-time writers.
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			items := make([]float64, perWriter)
			weights := make([]int64, perWriter)
			for i := range items {
				items[i] = float64((g*perWriter + i) % 1000)
				weights[i] = int64(i%9 + 1)
				s.WeightedUpdate(items[i], weights[i])
			}
			record(items, weights)
		}(g)
		// Weighted batch writers.
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			items := make([]float64, perWriter)
			weights := make([]int64, perWriter)
			for i := range items {
				items[i] = float64((g*perWriter+i)%1000) + 0.5
				weights[i] = int64(i%5 + 1)
			}
			for i := 0; i < perWriter; i += batchSize {
				end := i + batchSize
				if end > perWriter {
					end = perWriter
				}
				s.WeightedUpdateBatch(items[i:end], weights[i:end])
			}
			record(items, weights)
		}(g)
		// Unweighted writers sharing the same summary.
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			items := make([]float64, unitPerGoro)
			weights := make([]int64, unitPerGoro)
			for i := range items {
				items[i] = float64((g*unitPerGoro + i) % 1000)
				weights[i] = 1
				s.Update(items[i])
			}
			record(items, weights)
		}(g)
		// Readers racing the writers.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.Query(0.5)
				s.EstimateRank(500)
				s.CDF(250)
			}
		}()
	}
	wg.Wait()
	s.Refresh()

	oracle := rank.Float64WeightedOracle(allItems, allWeights)
	if int64(s.Count()) != oracle.TotalWeight() {
		t.Fatalf("Count = %d, want total weight %d", s.Count(), oracle.TotalWeight())
	}
	allowance := eps * float64(oracle.TotalWeight())
	for g := 0; g <= 100; g++ {
		phi := float64(g) / 100
		got, ok := s.Query(phi)
		if !ok {
			t.Fatalf("Query(%g) failed", phi)
		}
		if e := oracle.RankError(got, phi); float64(e) > allowance+1 {
			t.Errorf("phi=%g: weighted rank error %d exceeds allowance %.1f", phi, e, allowance)
		}
	}
}
