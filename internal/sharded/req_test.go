package sharded

// Torture coverage for the relative-error tail family behind the sharded
// wrapper: req's fold path mutates per-summary scratch buffers in place and
// its Merge materializes the cached read view, so both must only ever run
// under the owning shard's lock (the PR6 lesson, re-pinned here for the new
// family). This test hammers concurrent UpdateBatch/WeightedUpdate writers
// against snapshot readers and is the cell the CI req -race job exists for —
// with the accuracy gate checked in the HIGH-TAIL relative convention, since
// uniform accuracy is not what req is for.

import (
	"math/rand"
	"sync"
	"testing"

	"quantilelb/internal/rank"
	"quantilelb/internal/req"
	"quantilelb/internal/summary"
)

func reqFactory(eps float64) func() *req.Summary {
	return func() *req.Summary { return req.NewFloat64(eps) }
}

// The sharded wrapper over req must satisfy the full summary interface.
var _ summary.Summary[float64] = (*Sharded[float64, *req.Summary])(nil)

// TestREQConcurrentBatchIngestion drives many writers through the batched
// ingest path of req shards while readers pull merged snapshots. Afterwards
// the merged view must hold every item and answer tail queries within the
// relative budget ε·(N−t+1)+2 (COMBINE keeps eps_new = max over equal-eps
// shards; the +2 covers the write-buffer items a final Refresh flushes in a
// different order than a serial ingest would). Run under -race: the mutable
// fold scratch and the cached view make req as likely as mlq to expose a
// locking hole in the wrapper.
func TestREQConcurrentBatchIngestion(t *testing.T) {
	const (
		writers   = 8
		perWriter = 20000
		eps       = 0.02
	)
	s := New(reqFactory(eps), 8, WithRefreshEvery(5000), WithWriteBuffer(64))
	all := make([][]float64, writers)
	for w := range all {
		rng := rand.New(rand.NewSource(int64(w + 211)))
		items := make([]float64, perWriter)
		for i := range items {
			items[i] = float64(w) + rng.Float64()
		}
		all[w] = items
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int, items []float64) {
			defer wg.Done()
			switch w % 3 {
			case 0: // batched, the fast path the buffer exists for
				for i := 0; i < len(items); i += 128 {
					end := i + 128
					if end > len(items) {
						end = len(items)
					}
					s.UpdateBatch(items[i:end])
				}
			case 1: // item-at-a-time
				for _, x := range items {
					s.Update(x)
				}
			default: // weighted, through the same buffered flush machinery
				for _, x := range items {
					s.WeightedUpdate(x, 1)
				}
			}
		}(w, all[w])
	}
	readDone := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-readDone:
					return
				default:
					s.Query(0.999)
					s.EstimateRank(4)
					s.CDF(2.5)
				}
			}
		}()
	}
	wg.Wait()
	close(readDone)
	readers.Wait()
	s.Refresh()

	n := writers * perWriter
	if s.Count() != n {
		t.Fatalf("count = %d, want %d (lost items under concurrency)", s.Count(), n)
	}
	var flat []float64
	for _, items := range all {
		flat = append(flat, items...)
	}
	oracle := rank.NewRelativeOracle(flat)
	for _, phi := range []float64{0.01, 0.5, 0.9, 0.99, 0.999, 0.9999, 1} {
		got, ok := s.Query(phi)
		if !ok {
			t.Fatalf("query failed after ingestion")
		}
		budget := eps*float64(oracle.TopRank(phi)) + 2
		if err := oracle.RankError(got, phi); float64(err) > budget {
			t.Errorf("phi=%v rank error %d exceeds relative budget %v", phi, err, budget)
		}
	}
}
