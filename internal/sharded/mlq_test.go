package sharded

// Torture coverage for the cache-resident multi-level family behind the
// sharded wrapper: mlq's flush path mutates per-summary scratch buffers in
// place (that is what makes its steady state allocation-free), so it must
// only ever run under the owning shard's lock. This test hammers concurrent
// UpdateBatch/WeightedUpdate writers against snapshot readers and is the
// cell the CI mlq -race job exists for.

import (
	"math/rand"
	"sync"
	"testing"

	"quantilelb/internal/mlq"
	"quantilelb/internal/rank"
	"quantilelb/internal/summary"
)

func mlqFactory(eps float64) func() *mlq.Summary {
	return func() *mlq.Summary { return mlq.NewFloat64(eps) }
}

// The sharded wrapper over mlq must satisfy the full summary interface.
var _ summary.Summary[float64] = (*Sharded[float64, *mlq.Summary])(nil)

// TestMLQConcurrentBatchIngestion drives many writers through the batched
// ingest path of mlq shards while readers pull merged snapshots. Afterwards
// the merged view must hold every item and answer within the factory eps
// (COMBINE keeps eps_new = max over equal-eps shards). Run under -race: the
// mutable flush scratch makes mlq the family most likely to expose a
// locking hole in the wrapper.
func TestMLQConcurrentBatchIngestion(t *testing.T) {
	const (
		writers   = 8
		perWriter = 20000
		eps       = 0.02
	)
	s := New(mlqFactory(eps), 8, WithRefreshEvery(5000), WithWriteBuffer(64))
	all := make([][]float64, writers)
	for w := range all {
		rng := rand.New(rand.NewSource(int64(w + 101)))
		items := make([]float64, perWriter)
		for i := range items {
			items[i] = float64(w) + rng.Float64()
		}
		all[w] = items
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int, items []float64) {
			defer wg.Done()
			switch w % 3 {
			case 0: // batched, the fast path the buffer exists for
				for i := 0; i < len(items); i += 128 {
					end := i + 128
					if end > len(items) {
						end = len(items)
					}
					s.UpdateBatch(items[i:end])
				}
			case 1: // item-at-a-time
				for _, x := range items {
					s.Update(x)
				}
			default: // weighted, through the same buffered flush machinery
				for _, x := range items {
					s.WeightedUpdate(x, 1)
				}
			}
		}(w, all[w])
	}
	readDone := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-readDone:
					return
				default:
					s.Query(0.5)
					s.EstimateRank(4)
					s.CDF(2.5)
				}
			}
		}()
	}
	wg.Wait()
	close(readDone)
	readers.Wait()
	s.Refresh()

	n := writers * perWriter
	if s.Count() != n {
		t.Fatalf("count = %d, want %d (lost items under concurrency)", s.Count(), n)
	}
	var flat []float64
	for _, items := range all {
		flat = append(flat, items...)
	}
	oracle := rank.Float64Oracle(flat)
	bound := eps*float64(n) + 2
	for _, phi := range []float64{0.01, 0.1, 0.5, 0.9, 0.99} {
		got, ok := s.Query(phi)
		if !ok {
			t.Fatalf("query failed after ingestion")
		}
		if err := oracle.RankError(got, phi); float64(err) > bound {
			t.Errorf("phi=%v rank error %d exceeds eps*N=%v", phi, err, bound)
		}
	}
}
