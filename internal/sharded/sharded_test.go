package sharded

import (
	"math/rand"
	"sync"
	"testing"

	"quantilelb/internal/encoding"
	"quantilelb/internal/gk"
	"quantilelb/internal/kll"
	"quantilelb/internal/mrl"
	"quantilelb/internal/rank"
	"quantilelb/internal/sampling"
	"quantilelb/internal/summary"
)

func gkFactory(eps float64) func() *gk.Summary[float64] {
	return func() *gk.Summary[float64] { return gk.NewFloat64(eps) }
}

// The sharded wrapper must itself satisfy the full summary interface so the
// histogram/CDF/KS applications can consume it.
var _ summary.Summary[float64] = (*Sharded[float64, *gk.Summary[float64]])(nil)

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("shards < 1 should panic")
		}
	}()
	New(gkFactory(0.1), 0)
}

func TestEmpty(t *testing.T) {
	s := New(gkFactory(0.1), 4)
	if _, ok := s.Query(0.5); ok {
		t.Errorf("query on empty sharded summary should report false")
	}
	if s.Count() != 0 || s.EstimateRank(1) != 0 || s.CDF(1) != 0 {
		t.Errorf("empty summary should report zero counts")
	}
}

func TestSequentialAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	eps := 0.02
	s := New(gkFactory(eps), 8, WithRefreshEvery(1000))
	n := 50000
	items := make([]float64, n)
	for i := range items {
		items[i] = rng.NormFloat64()
	}
	for _, x := range items {
		s.Update(x)
	}
	s.Refresh()
	if s.Count() != n {
		t.Fatalf("count = %d, want %d", s.Count(), n)
	}
	oracle := rank.Float64Oracle(items)
	bound := eps*float64(n) + 2
	for _, phi := range []float64{0.01, 0.1, 0.5, 0.9, 0.99} {
		got, ok := s.Query(phi)
		if !ok {
			t.Fatalf("query failed")
		}
		if err := oracle.RankError(got, phi); float64(err) > bound {
			t.Errorf("phi=%v rank error %d exceeds eps*N=%v", phi, err, bound)
		}
	}
	// CDF error is uniformly bounded by eps.
	for _, q := range []float64{-2, -1, 0, 1, 2} {
		got := s.CDF(q)
		want := float64(oracle.RankLE(q)) / float64(n)
		if diff := got - want; diff > eps+0.001 || diff < -eps-0.001 {
			t.Errorf("CDF(%v) = %v, want %v ± %v", q, got, want, eps)
		}
	}
}

// TestConcurrentIngestion is the headline race test: many writer goroutines
// hammer Update and UpdateBatch concurrently with readers; afterwards the
// merged snapshot must contain every item and answer every quantile within
// the merged eps bound (= the factory's eps, since Merge guarantees
// eps_new = max over same-eps shards). Run under -race.
func TestConcurrentIngestion(t *testing.T) {
	const (
		writers   = 8
		perWriter = 20000
		eps       = 0.02
	)
	s := New(gkFactory(eps), 8, WithRefreshEvery(5000), WithWriteBuffer(64))
	all := make([][]float64, writers)
	for w := range all {
		rng := rand.New(rand.NewSource(int64(w + 1)))
		items := make([]float64, perWriter)
		for i := range items {
			// Give each writer its own distribution so shards are *not*
			// identically loaded unless the random assignment works.
			items[i] = float64(w) + rng.Float64()
		}
		all[w] = items
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(items []float64, batched bool) {
			defer wg.Done()
			if batched {
				for i := 0; i < len(items); i += 100 {
					end := i + 100
					if end > len(items) {
						end = len(items)
					}
					s.UpdateBatch(items[i:end])
				}
			} else {
				for _, x := range items {
					s.Update(x)
				}
			}
		}(all[w], w%2 == 0)
	}
	// Concurrent readers exercise the snapshot path while writers run.
	readDone := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-readDone:
					return
				default:
					s.Query(0.5)
					s.EstimateRank(4)
					s.CDF(2.5)
				}
			}
		}()
	}
	wg.Wait()
	close(readDone)
	readers.Wait()

	s.Refresh()
	total := writers * perWriter
	if s.Count() != total {
		t.Fatalf("count = %d, want %d (lost updates)", s.Count(), total)
	}
	var flat []float64
	for _, items := range all {
		flat = append(flat, items...)
	}
	oracle := rank.Float64Oracle(flat)
	bound := eps*float64(total) + 2
	for _, phi := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		got, ok := s.Query(phi)
		if !ok {
			t.Fatalf("query failed after concurrent ingestion")
		}
		if err := oracle.RankError(got, phi); float64(err) > bound {
			t.Errorf("phi=%v rank error %d exceeds merged eps*N=%v", phi, err, bound)
		}
	}
	st := s.Stats()
	if st.Count != total || st.SnapshotCount != total || st.Shards != 8 {
		t.Errorf("stats = %+v, want count/snapshot %d over 8 shards", st, total)
	}
	if st.Refreshes < 1 {
		t.Errorf("expected at least one snapshot refresh, got %d", st.Refreshes)
	}
}

// TestBackends checks the layer over every mergeable summary family.
func TestBackends(t *testing.T) {
	const n = 30000
	rng := rand.New(rand.NewSource(3))
	items := make([]float64, n)
	for i := range items {
		items[i] = rng.ExpFloat64()
	}
	oracle := rank.Float64Oracle(items)
	run := func(t *testing.T, s interface {
		Update(float64)
		Refresh()
		Query(float64) (float64, bool)
		Count() int
	}, bound float64) {
		t.Helper()
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(part []float64) {
				defer wg.Done()
				for _, x := range part {
					s.Update(x)
				}
			}(items[w*n/4 : (w+1)*n/4])
		}
		wg.Wait()
		s.Refresh()
		if s.Count() != n {
			t.Fatalf("count = %d, want %d", s.Count(), n)
		}
		for _, phi := range []float64{0.1, 0.5, 0.9} {
			got, ok := s.Query(phi)
			if !ok {
				t.Fatalf("query failed")
			}
			if err := oracle.RankError(got, phi); float64(err) > bound {
				t.Errorf("phi=%v rank error %d exceeds %v", phi, err, bound)
			}
		}
	}
	t.Run("gk", func(t *testing.T) {
		run(t, New(gkFactory(0.02), 4), 0.02*n+2)
	})
	t.Run("kll", func(t *testing.T) {
		factory := func() *kll.Sketch[float64] { return kll.NewFloat64(0.02, kll.WithSeed(7)) }
		// KLL is randomized: allow 3x eps slack.
		run(t, New(factory, 4), 3*0.02*n)
	})
	t.Run("mrl", func(t *testing.T) {
		factory := func() *mrl.Summary[float64] { return mrl.NewFloat64(0.02, n) }
		run(t, New(factory, 4), 0.02*n+2)
	})
	t.Run("reservoir", func(t *testing.T) {
		factory := func() *sampling.Reservoir[float64] { return sampling.NewFloat64(0.05, 0.01, 11) }
		// Reservoir sampling is probabilistic: generous slack.
		run(t, New(factory, 4), 3*0.05*n)
	})
}

func TestUpdateBatchAndBufferVisibility(t *testing.T) {
	s := New(gkFactory(0.05), 2, WithWriteBuffer(1000), WithRefreshEvery(1<<30))
	for i := 0; i < 10; i++ {
		s.Update(float64(i))
	}
	// Items sit in buffers; Count sees them immediately.
	if s.Count() != 10 {
		t.Fatalf("count = %d, want 10", s.Count())
	}
	// Refresh flushes buffers into the snapshot.
	s.Refresh()
	if _, n := s.Snapshot(); n != 10 {
		t.Fatalf("snapshot covers %d updates, want 10", n)
	}
	if r := s.EstimateRank(100); r != 10 {
		t.Fatalf("rank = %d, want 10", r)
	}
	s.UpdateBatch([]float64{10, 11, 12})
	s.UpdateBatch(nil)
	s.Refresh()
	if r := s.EstimateRank(100); r != 13 {
		t.Fatalf("rank after batch = %d, want 13", r)
	}
	if got := len(s.StoredItems()); got != s.StoredCount() {
		t.Errorf("StoredItems/StoredCount disagree: %d vs %d", got, s.StoredCount())
	}
}

func TestStaleSnapshotRefreshes(t *testing.T) {
	s := New(gkFactory(0.05), 2, WithRefreshEvery(100), WithWriteBuffer(0))
	for i := 0; i < 99; i++ {
		s.Update(float64(i))
	}
	s.Query(0.5) // builds the first snapshot
	before := s.Stats().Refreshes
	for i := 0; i < 200; i++ {
		s.Update(float64(i))
	}
	s.Query(0.5) // stale by > 100 updates: must rebuild
	if after := s.Stats().Refreshes; after <= before {
		t.Errorf("snapshot was not refreshed after exceeding staleness budget")
	}
	if _, ok := s.Query(0.5); !ok {
		t.Errorf("query failed")
	}
}

// TestAllFactoriesBatched asserts that every mergeable summary family plugs
// into the sharded layer's bulk write path: buffer flushes and UpdateBatch
// calls must hit the summary's UpdateBatch, not the item-at-a-time fallback.
func TestAllFactoriesBatched(t *testing.T) {
	if s := New(gkFactory(0.05), 2); !s.Batched() {
		t.Errorf("GK shards should use the batch path")
	}
	if s := New(func() *kll.Sketch[float64] { return kll.NewFloat64(0.05, kll.WithSeed(1)) }, 2); !s.Batched() {
		t.Errorf("KLL shards should use the batch path")
	}
	if s := New(func() *mrl.Summary[float64] { return mrl.NewFloat64(0.05, 1_000_000) }, 2); !s.Batched() {
		t.Errorf("MRL shards should use the batch path")
	}
	if s := New(func() *sampling.Reservoir[float64] { return sampling.NewFloat64(0.05, 0.05, 1) }, 2); !s.Batched() {
		t.Errorf("reservoir shards should use the batch path")
	}
}

// TestSnapshotPayloadRoundTrip: the wire export of the merged view must
// decode to a summary with the same count and answers, and its covered-count
// must track the published snapshot (the /snapshot ETag contract).
func TestSnapshotPayloadRoundTrip(t *testing.T) {
	s := New(gkFactory(0.01), 4)
	for i := 0; i < 5000; i++ {
		s.Update(float64(i))
	}
	s.Refresh()
	payload, n, err := s.SnapshotPayload()
	if err != nil {
		t.Fatalf("SnapshotPayload: %v", err)
	}
	if n != 5000 {
		t.Fatalf("payload covers %d updates, want 5000", n)
	}
	dec, err := encoding.Decode(payload)
	if err != nil {
		t.Fatalf("decoding payload: %v", err)
	}
	g, ok := dec.(*gk.Summary[float64])
	if !ok {
		t.Fatalf("payload decodes to %T, want *gk.Summary[float64]", dec)
	}
	if g.Count() != 5000 {
		t.Fatalf("decoded count = %d, want 5000", g.Count())
	}
	med, _ := g.Query(0.5)
	if med < 2400 || med > 2600 {
		t.Errorf("decoded median = %g, want ~2500", med)
	}

	// Without new updates the covered-count must not move (ETag stability);
	// with new updates and a refresh it must.
	_, n2, _ := s.SnapshotPayload()
	if n2 != n {
		t.Errorf("covered count moved without updates: %d -> %d", n, n2)
	}
	s.Update(1)
	s.Refresh()
	_, n3, _ := s.SnapshotPayload()
	if n3 != n+1 {
		t.Errorf("covered count after one more update = %d, want %d", n3, n+1)
	}
}

// TestMergeSummary: folding an external summary in must preserve the global
// count and answer over the union, and reject structurally incompatible
// summaries without corrupting state.
func TestMergeSummary(t *testing.T) {
	s := New(gkFactory(0.01), 4)
	for i := 0; i < 1000; i++ {
		s.Update(float64(i))
	}
	other := gk.NewFloat64(0.02)
	for i := 1000; i < 2000; i++ {
		other.Update(float64(i))
	}
	if err := s.MergeSummary(other); err != nil {
		t.Fatalf("MergeSummary: %v", err)
	}
	if s.Count() != 2000 {
		t.Fatalf("count after merge = %d, want 2000", s.Count())
	}
	s.Refresh()
	if r := s.EstimateRank(2000); r != 2000 {
		t.Errorf("rank(2000) = %d, want 2000", r)
	}
	med, _ := s.Query(0.5)
	if med < 900 || med > 1100 {
		t.Errorf("median over the union = %g, want ~1000", med)
	}

	// Structurally incompatible merge (MRL with different capacity) must
	// surface the summary's own error and leave the count unchanged.
	m := New(func() *mrl.Summary[float64] { return mrl.NewFloat64(0.01, 10_000) }, 2)
	m.Update(1)
	foreign := mrl.NewFloat64(0.5, 16) // tiny capacity, incompatible
	foreign.Update(2)
	if err := m.MergeSummary(foreign); err == nil {
		t.Fatal("merging an incompatible MRL should fail")
	}
	if m.Count() != 1 {
		t.Errorf("failed merge changed count to %d", m.Count())
	}
}
