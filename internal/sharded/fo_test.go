package sharded

// Torture coverage for the randomized fo family behind the sharded wrapper:
// fo's Update path mutates the open sampler window and its Merge realigns
// levels and re-materializes the cached read view, so both must only ever
// run under the owning shard's lock. Each shard draws its own seed (shared
// coin flips across shards would correlate the per-shard error), and the
// merged snapshot's failure probability is the SUM of the shard deltas — the
// COMBINE accounting — so the accuracy gate here uses the single-run slack
// convention, not the exact-eps statistical gate (that lives in
// internal/checker's randomized differential).

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"quantilelb/internal/fo"
	"quantilelb/internal/order"
	"quantilelb/internal/rank"
	"quantilelb/internal/summary"
	"quantilelb/internal/testseed"
)

func foFactory(eps, delta float64, seed int64) func() *fo.Summary[float64] {
	var next atomic.Int64
	return func() *fo.Summary[float64] {
		return fo.NewFloat64(fo.Config{Eps: eps, Delta: delta, Seed: seed + next.Add(1)})
	}
}

// The sharded wrapper over fo must satisfy the full summary interface.
var _ summary.Summary[float64] = (*Sharded[float64, *fo.Summary[float64]])(nil)

// TestFOConcurrentBatchIngestion drives writers through fo shards while
// readers pull merged snapshots, under -race. Afterwards the merged view
// must hold the exact total weight and answer uniform queries within the
// single-run randomized slack (3·ε·N + 2: the 3× absorbs one run's
// δ-probability tail at the fixed seed, the +2 the write-buffer reordering).
func TestFOConcurrentBatchIngestion(t *testing.T) {
	const (
		writers   = 8
		perWriter = 20000
		eps       = 0.02
		delta     = 0.01
	)
	base := testseed.For(t, "sharded-fo-torture", 311)
	s := New(foFactory(eps, delta, base), 8, WithRefreshEvery(5000), WithWriteBuffer(64))
	all := make([][]float64, writers)
	for w := range all {
		rng := rand.New(rand.NewSource(base + int64(w)))
		items := make([]float64, perWriter)
		for i := range items {
			items[i] = float64(w) + rng.Float64()
		}
		all[w] = items
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int, items []float64) {
			defer wg.Done()
			switch w % 3 {
			case 0:
				for i := 0; i < len(items); i += 128 {
					end := i + 128
					if end > len(items) {
						end = len(items)
					}
					s.UpdateBatch(items[i:end])
				}
			case 1:
				for _, x := range items {
					s.Update(x)
				}
			default:
				for _, x := range items {
					s.WeightedUpdate(x, 1)
				}
			}
		}(w, all[w])
	}
	readDone := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-readDone:
					return
				default:
					s.Query(0.5)
					s.EstimateRank(4)
					s.CDF(2.5)
				}
			}
		}()
	}
	wg.Wait()
	close(readDone)
	readers.Wait()
	s.Refresh()

	n := writers * perWriter
	if s.Count() != n {
		t.Fatalf("count = %d, want %d (lost items under concurrency)", s.Count(), n)
	}
	var flat []float64
	for _, items := range all {
		flat = append(flat, items...)
	}
	oracle := rank.NewOracle(order.Floats[float64](), flat)
	allowance := 3*eps*float64(n) + 2
	for _, phi := range []float64{0, 0.1, 0.5, 0.9, 0.99, 1} {
		got, ok := s.Query(phi)
		if !ok {
			t.Fatalf("query failed after ingestion")
		}
		if e := oracle.RankError(got, phi); float64(e) > allowance {
			t.Errorf("phi=%v rank error %d exceeds slack allowance %v", phi, e, allowance)
		}
	}
}
