// Package stream provides the insertion-only stream abstraction and workload
// generators used by the experiments, examples, and benchmarks.
//
// The paper (Cormode & Veselý, PODS 2020, Section 2) studies the
// cash-register (insertion-only) streaming model: a sequence of items from a
// totally ordered universe processed in a single pass. This package models
// streams both as materialized slices (convenient
// for ground-truth computation) and as iterators (convenient for feeding
// summaries one item at a time), plus deterministic generators for the
// workload shapes used throughout the evaluation: sorted, reverse-sorted,
// uniformly shuffled, Zipf-like skewed, Gaussian-like, clustered, and
// duplicate-heavy streams.
package stream

import (
	"fmt"
	"math"
	"math/rand"
)

// Stream is a materialized stream of float64 items in arrival order.
type Stream struct {
	name  string
	items []float64
}

// New returns a stream with the given name wrapping items (not copied).
func New(name string, items []float64) *Stream {
	return &Stream{name: name, items: items}
}

// Name returns the human-readable workload name.
func (s *Stream) Name() string { return s.name }

// Len returns the number of items.
func (s *Stream) Len() int { return len(s.items) }

// Items returns the underlying items in arrival order. Callers must not
// modify the returned slice.
func (s *Stream) Items() []float64 { return s.items }

// At returns the i-th item in arrival order.
func (s *Stream) At(i int) float64 { return s.items[i] }

// Each calls fn for every item in arrival order.
func (s *Stream) Each(fn func(x float64)) {
	for _, x := range s.items {
		fn(x)
	}
}

// Iterator returns a pull-based iterator over the stream.
func (s *Stream) Iterator() *Iterator {
	return &Iterator{items: s.items}
}

// Append returns a new stream consisting of s followed by more items. The
// underlying slices are copied so the original stream is unchanged; the
// median-corollary adversary (Theorem 6.1) uses this to extend streams.
func (s *Stream) Append(name string, more []float64) *Stream {
	items := make([]float64, 0, len(s.items)+len(more))
	items = append(items, s.items...)
	items = append(items, more...)
	return &Stream{name: name, items: items}
}

// String implements fmt.Stringer.
func (s *Stream) String() string {
	return fmt.Sprintf("stream %q with %d items", s.name, len(s.items))
}

// Iterator pulls items from a stream one at a time.
type Iterator struct {
	items []float64
	pos   int
}

// Next returns the next item; ok is false when the stream is exhausted.
func (it *Iterator) Next() (x float64, ok bool) {
	if it.pos >= len(it.items) {
		return 0, false
	}
	x = it.items[it.pos]
	it.pos++
	return x, true
}

// Remaining returns the number of items not yet consumed.
func (it *Iterator) Remaining() int { return len(it.items) - it.pos }

// Generator produces deterministic workloads. All generators are seeded so
// experiments are reproducible; the same seed yields the same stream.
type Generator struct {
	rng *rand.Rand
}

// NewGenerator returns a generator seeded with seed.
func NewGenerator(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed))}
}

// Sorted returns 1, 2, ..., n — the worst case for naive samplers and the
// classic stress test for deterministic summaries.
func (g *Generator) Sorted(n int) *Stream {
	items := make([]float64, n)
	for i := range items {
		items[i] = float64(i + 1)
	}
	return New("sorted", items)
}

// Reverse returns n, n-1, ..., 1.
func (g *Generator) Reverse(n int) *Stream {
	items := make([]float64, n)
	for i := range items {
		items[i] = float64(n - i)
	}
	return New("reverse", items)
}

// Shuffled returns a uniformly random permutation of 1..n.
func (g *Generator) Shuffled(n int) *Stream {
	items := make([]float64, n)
	for i := range items {
		items[i] = float64(i + 1)
	}
	g.rng.Shuffle(n, func(i, j int) { items[i], items[j] = items[j], items[i] })
	return New("shuffled", items)
}

// Uniform returns n independent uniform samples from [0, 1).
func (g *Generator) Uniform(n int) *Stream {
	items := make([]float64, n)
	for i := range items {
		items[i] = g.rng.Float64()
	}
	return New("uniform", items)
}

// Gaussian returns n samples from a normal distribution with the given mean
// and standard deviation; heavy middle, light tails.
func (g *Generator) Gaussian(n int, mean, stddev float64) *Stream {
	items := make([]float64, n)
	for i := range items {
		items[i] = mean + stddev*g.rng.NormFloat64()
	}
	return New("gaussian", items)
}

// Zipf returns n samples from a Zipf-like heavy-tailed distribution with
// exponent s over the universe 1..v. Useful for modeling latency tails and
// skewed value distributions.
func (g *Generator) Zipf(n int, s float64, v uint64) *Stream {
	if s <= 1 {
		s = 1.0001
	}
	z := rand.NewZipf(g.rng, s, 1, v)
	items := make([]float64, n)
	for i := range items {
		items[i] = float64(z.Uint64() + 1)
	}
	return New("zipf", items)
}

// LogNormal returns n samples from a log-normal distribution, a common model
// for service latencies (long right tail).
func (g *Generator) LogNormal(n int, mu, sigma float64) *Stream {
	items := make([]float64, n)
	for i := range items {
		items[i] = math.Exp(mu + sigma*g.rng.NormFloat64())
	}
	return New("lognormal", items)
}

// Clustered returns n items drawn from k tight clusters spread over [0, 1000).
// Equi-depth histogram experiments use it because equal-width buckets fail
// badly on it.
func (g *Generator) Clustered(n, k int) *Stream {
	if k < 1 {
		k = 1
	}
	centers := make([]float64, k)
	for i := range centers {
		centers[i] = g.rng.Float64() * 1000
	}
	items := make([]float64, n)
	for i := range items {
		c := centers[g.rng.Intn(k)]
		items[i] = c + g.rng.NormFloat64()*0.5
	}
	return New("clustered", items)
}

// Duplicates returns n items drawn from only d distinct values, exercising
// tie handling in the summaries.
func (g *Generator) Duplicates(n, d int) *Stream {
	if d < 1 {
		d = 1
	}
	items := make([]float64, n)
	for i := range items {
		items[i] = float64(g.rng.Intn(d))
	}
	return New("duplicates", items)
}

// Drift returns n Gaussian samples whose mean shifts linearly from 0 to 1000
// over the course of the stream — a concept-drift workload in which the early
// and late distributions barely overlap. This is the regime sliding-window
// summaries (internal/window) exist for, and it stresses whole-stream
// summaries whose retained items concentrate around stale quantiles.
func (g *Generator) Drift(n int) *Stream {
	items := make([]float64, n)
	for i := range items {
		mean := 1000 * float64(i) / float64(n)
		items[i] = mean + 10*g.rng.NormFloat64()
	}
	return New("drift", items)
}

// SawTooth returns n items cycling through period increasing ramps. This is a
// semi-adversarial pattern for summaries that compress eagerly.
func (g *Generator) SawTooth(n, period int) *Stream {
	if period < 1 {
		period = 1
	}
	items := make([]float64, n)
	for i := range items {
		cycle := i / period
		pos := i % period
		items[i] = float64(pos)*1000 + float64(cycle)
	}
	return New("sawtooth", items)
}

// ByName generates one of the named workloads with n items. Recognized names:
// sorted, reverse, shuffled, uniform, gaussian, zipf, lognormal, clustered,
// duplicates, drift, sawtooth. It returns an error for unknown names.
func (g *Generator) ByName(name string, n int) (*Stream, error) {
	switch name {
	case "sorted":
		return g.Sorted(n), nil
	case "reverse":
		return g.Reverse(n), nil
	case "shuffled":
		return g.Shuffled(n), nil
	case "uniform":
		return g.Uniform(n), nil
	case "gaussian":
		return g.Gaussian(n, 100, 15), nil
	case "zipf":
		return g.Zipf(n, 1.2, 1_000_000), nil
	case "lognormal":
		return g.LogNormal(n, 3, 1), nil
	case "clustered":
		return g.Clustered(n, 10), nil
	case "duplicates":
		return g.Duplicates(n, 100), nil
	case "drift":
		return g.Drift(n), nil
	case "sawtooth":
		return g.SawTooth(n, 1000), nil
	default:
		return nil, fmt.Errorf("stream: unknown workload %q", name)
	}
}

// WorkloadNames lists the workload names understood by ByName.
func WorkloadNames() []string {
	return []string{
		"sorted", "reverse", "shuffled", "uniform", "gaussian",
		"zipf", "lognormal", "clustered", "duplicates", "drift", "sawtooth",
	}
}
