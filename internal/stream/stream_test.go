package stream

import (
	"math"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestStreamBasics(t *testing.T) {
	s := New("demo", []float64{3, 1, 2})
	if s.Name() != "demo" {
		t.Errorf("Name = %q", s.Name())
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
	if s.At(0) != 3 || s.At(2) != 2 {
		t.Errorf("At returned wrong items")
	}
	var seen []float64
	s.Each(func(x float64) { seen = append(seen, x) })
	if !reflect.DeepEqual(seen, []float64{3, 1, 2}) {
		t.Errorf("Each order wrong: %v", seen)
	}
	if got := s.String(); got != `stream "demo" with 3 items` {
		t.Errorf("String = %q", got)
	}
}

func TestIterator(t *testing.T) {
	s := New("it", []float64{10, 20, 30})
	it := s.Iterator()
	if it.Remaining() != 3 {
		t.Errorf("Remaining = %d, want 3", it.Remaining())
	}
	var got []float64
	for {
		x, ok := it.Next()
		if !ok {
			break
		}
		got = append(got, x)
	}
	if !reflect.DeepEqual(got, []float64{10, 20, 30}) {
		t.Errorf("iterator items = %v", got)
	}
	if it.Remaining() != 0 {
		t.Errorf("Remaining after exhaustion = %d", it.Remaining())
	}
	if _, ok := it.Next(); ok {
		t.Errorf("Next after exhaustion should report false")
	}
}

func TestAppendDoesNotMutate(t *testing.T) {
	s := New("base", []float64{1, 2})
	s2 := s.Append("extended", []float64{3, 4})
	if s.Len() != 2 {
		t.Errorf("original stream mutated")
	}
	if s2.Len() != 4 || s2.Name() != "extended" {
		t.Errorf("appended stream wrong: %v", s2)
	}
	if !reflect.DeepEqual(s2.Items(), []float64{1, 2, 3, 4}) {
		t.Errorf("appended items = %v", s2.Items())
	}
}

func TestSortedReverse(t *testing.T) {
	g := NewGenerator(1)
	s := g.Sorted(5)
	if !reflect.DeepEqual(s.Items(), []float64{1, 2, 3, 4, 5}) {
		t.Errorf("Sorted = %v", s.Items())
	}
	r := g.Reverse(5)
	if !reflect.DeepEqual(r.Items(), []float64{5, 4, 3, 2, 1}) {
		t.Errorf("Reverse = %v", r.Items())
	}
}

func TestShuffledIsPermutation(t *testing.T) {
	g := NewGenerator(42)
	s := g.Shuffled(1000)
	sorted := append([]float64(nil), s.Items()...)
	sort.Float64s(sorted)
	for i, x := range sorted {
		if x != float64(i+1) {
			t.Fatalf("shuffled stream is not a permutation of 1..n at %d: %v", i, x)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, name := range WorkloadNames() {
		a, err := NewGenerator(7).ByName(name, 500)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		b, err := NewGenerator(7).ByName(name, 500)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if !reflect.DeepEqual(a.Items(), b.Items()) {
			t.Errorf("workload %q not deterministic for equal seeds", name)
		}
		if a.Len() != 500 {
			t.Errorf("workload %q produced %d items, want 500", name, a.Len())
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	g := NewGenerator(1)
	if _, err := g.ByName("nope", 10); err == nil {
		t.Fatalf("expected error for unknown workload")
	}
}

func TestUniformRange(t *testing.T) {
	g := NewGenerator(3)
	s := g.Uniform(10000)
	for _, x := range s.Items() {
		if x < 0 || x >= 1 {
			t.Fatalf("uniform sample out of range: %v", x)
		}
	}
}

func TestGaussianMoments(t *testing.T) {
	g := NewGenerator(5)
	s := g.Gaussian(200000, 50, 10)
	var sum, sq float64
	for _, x := range s.Items() {
		sum += x
		sq += x * x
	}
	n := float64(s.Len())
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean-50) > 0.5 {
		t.Errorf("gaussian mean = %v, want about 50", mean)
	}
	if math.Abs(math.Sqrt(variance)-10) > 0.5 {
		t.Errorf("gaussian stddev = %v, want about 10", math.Sqrt(variance))
	}
}

func TestZipfSkewAndBounds(t *testing.T) {
	g := NewGenerator(11)
	s := g.Zipf(50000, 1.3, 1000)
	ones := 0
	for _, x := range s.Items() {
		if x < 1 || x > 1001 {
			t.Fatalf("zipf sample out of range: %v", x)
		}
		if x == 1 {
			ones++
		}
	}
	if ones < s.Len()/10 {
		t.Errorf("zipf distribution not skewed toward small values: %d ones of %d", ones, s.Len())
	}
	// Degenerate exponent must not panic and must still produce items.
	s2 := g.Zipf(100, 0.5, 100)
	if s2.Len() != 100 {
		t.Errorf("zipf with clamped exponent produced %d items", s2.Len())
	}
}

func TestLogNormalPositive(t *testing.T) {
	g := NewGenerator(13)
	s := g.LogNormal(10000, 3, 1)
	for _, x := range s.Items() {
		if x <= 0 {
			t.Fatalf("lognormal sample not positive: %v", x)
		}
	}
}

func TestClusteredAndDuplicates(t *testing.T) {
	g := NewGenerator(17)
	c := g.Clustered(5000, 5)
	if c.Len() != 5000 {
		t.Errorf("clustered length wrong")
	}
	// Degenerate cluster count is clamped.
	if g.Clustered(10, 0).Len() != 10 {
		t.Errorf("clustered with k=0 should clamp")
	}
	d := g.Duplicates(5000, 7)
	distinct := map[float64]bool{}
	for _, x := range d.Items() {
		distinct[x] = true
	}
	if len(distinct) > 7 {
		t.Errorf("duplicates stream has %d distinct values, want <= 7", len(distinct))
	}
	if g.Duplicates(10, 0).Len() != 10 {
		t.Errorf("duplicates with d=0 should clamp")
	}
}

func TestSawTooth(t *testing.T) {
	g := NewGenerator(19)
	s := g.SawTooth(100, 10)
	if s.Len() != 100 {
		t.Fatalf("sawtooth length wrong")
	}
	// Within one period values must strictly increase.
	for i := 1; i < 10; i++ {
		if s.At(i) <= s.At(i-1) {
			t.Errorf("sawtooth should increase within a period")
		}
	}
	// Start of the next period drops back down.
	if s.At(10) >= s.At(9) {
		t.Errorf("sawtooth should reset at period boundary")
	}
	if g.SawTooth(5, 0).Len() != 5 {
		t.Errorf("sawtooth with period=0 should clamp")
	}
}

// Property: every generator produces exactly n items for any small n.
func TestGeneratorLengthsProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)
		g := NewGenerator(seed)
		for _, name := range WorkloadNames() {
			s, err := g.ByName(name, n)
			if err != nil || s.Len() != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
