package offline

import (
	"testing"
	"testing/quick"

	"quantilelb/internal/rank"
	"quantilelb/internal/stream"
)

func TestBuildValidation(t *testing.T) {
	for _, eps := range []float64{0, 1, -0.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("eps=%v should panic", eps)
				}
			}()
			BuildFloat64(eps, []float64{1})
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("empty data should panic")
			}
		}()
		BuildFloat64(0.1, nil)
	}()
}

func TestOptimalSize(t *testing.T) {
	gen := stream.NewGenerator(1)
	st := gen.Uniform(10000)
	for _, eps := range []float64{0.5, 0.25, 0.1, 0.05, 0.01} {
		s := BuildFloat64(eps, st.Items())
		want := rank.OfflineOptimalSize(eps)
		got := s.StoredCount()
		if got > want+1 || got < want-1 {
			t.Errorf("eps=%v: stored %d items, offline optimum is %d", eps, got, want)
		}
	}
}

func TestQueryAccuracy(t *testing.T) {
	gen := stream.NewGenerator(2)
	for _, name := range []string{"sorted", "shuffled", "uniform", "gaussian"} {
		st, err := gen.ByName(name, 20000)
		if err != nil {
			t.Fatal(err)
		}
		for _, eps := range []float64{0.1, 0.05, 0.01} {
			s := BuildFloat64(eps, st.Items())
			oracle := rank.Float64Oracle(st.Items())
			for i := 0; i <= 100; i++ {
				phi := float64(i) / 100
				got, ok := s.Query(phi)
				if !ok {
					t.Fatalf("query failed")
				}
				if !oracle.IsApproxQuantile(got, phi, eps+1e-9) {
					t.Fatalf("%s eps=%v phi=%v: error %d", name, eps, phi, oracle.RankError(got, phi))
				}
			}
		}
	}
}

func TestEstimateRank(t *testing.T) {
	gen := stream.NewGenerator(3)
	n := 20000
	eps := 0.02
	st := gen.Uniform(n)
	s := BuildFloat64(eps, st.Items())
	oracle := rank.Float64Oracle(st.Items())
	for _, q := range []float64{-1, 0, 0.1, 0.5, 0.9, 1, 2} {
		est := s.EstimateRank(q)
		exact := oracle.RankLE(q)
		diff := est - exact
		if diff < 0 {
			diff = -diff
		}
		if float64(diff) > eps*float64(n)+1 {
			t.Errorf("EstimateRank(%v) = %d, exact %d", q, est, exact)
		}
	}
}

func TestQueryExtremes(t *testing.T) {
	s := BuildFloat64(0.1, []float64{5, 1, 9, 3})
	if v, _ := s.Query(0); v != 1 {
		t.Errorf("phi=0 should return minimum, got %v", v)
	}
	if v, _ := s.Query(1); v != 9 {
		t.Errorf("phi=1 should return maximum, got %v", v)
	}
	if s.Epsilon() != 0.1 {
		t.Errorf("Epsilon = %v", s.Epsilon())
	}
	if s.Count() != 4 {
		t.Errorf("Count = %d", s.Count())
	}
	items := s.StoredItems()
	if len(items) != s.StoredCount() {
		t.Errorf("StoredItems / StoredCount mismatch")
	}
}

func TestCollectorBasics(t *testing.T) {
	gen := stream.NewGenerator(4)
	st := gen.Gaussian(5000, 0, 1)
	col := NewCollectorFloat64()
	for _, x := range st.Items() {
		col.Update(x)
	}
	if col.Count() != 5000 {
		t.Fatalf("Count = %d", col.Count())
	}
	s := col.Build(0.05)
	oracle := col.Oracle()
	for _, phi := range []float64{0.1, 0.5, 0.9} {
		got, _ := s.Query(phi)
		if !oracle.IsApproxQuantile(got, phi, 0.05+1e-9) {
			t.Errorf("collector-built summary inaccurate at phi=%v", phi)
		}
	}
}

// Property: the offline summary never stores more than ceil(1/(2 eps)) + 1
// items, for any data and eps in a reasonable range.
func TestSizeBoundProperty(t *testing.T) {
	f := func(items []float64, epsRaw uint8) bool {
		if len(items) == 0 {
			return true
		}
		eps := 0.02 + float64(epsRaw)/255*0.4
		s := BuildFloat64(eps, items)
		return s.StoredCount() <= rank.OfflineOptimalSize(eps)+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
