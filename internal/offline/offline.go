// Package offline implements the offline optimal ε-approximate quantile
// summary described in Section 1 of the lower-bound paper: with random access
// to the whole data set, selecting the ε-, 3ε-, 5ε-, ... quantiles yields a
// summary of exactly ⌈1/(2ε)⌉ items that answers every quantile query within
// ε, and no smaller summary can.
//
// The package provides both the one-shot offline construction (Build) and a
// streaming wrapper (Collector) that buffers the entire stream and builds the
// optimal summary on demand; the wrapper is the "unbounded memory" reference
// point in the cross-summary comparison experiment.
package offline

import (
	"math"

	"quantilelb/internal/order"
	"quantilelb/internal/rank"
)

// Summary is an immutable offline-optimal quantile summary.
type Summary[T any] struct {
	cmp   order.Comparator[T]
	eps   float64
	n     int
	items []T // selected quantiles, sorted
	min   T
	max   T
}

// Build constructs the offline optimal summary of data for accuracy eps.
// It panics if eps is not in (0, 1) or data is empty.
func Build[T any](cmp order.Comparator[T], eps float64, data []T) *Summary[T] {
	if !(eps > 0 && eps < 1) {
		panic("offline: eps must be in (0, 1)")
	}
	if len(data) == 0 {
		panic("offline: data must be non-empty")
	}
	oracle := rank.NewOracle(cmp, data)
	n := oracle.Len()
	// Select the (2i+1)ε quantiles for i = 0, 1, ... while (2i+1)ε ≤ 1. The
	// same expression is used at query time so that each stored item's rank
	// is known exactly (up to ties).
	var items []T
	for i := 0; (2*float64(i)+1)*eps <= 1; i++ {
		items = append(items, oracle.Quantile((2*float64(i)+1)*eps))
	}
	if len(items) == 0 {
		items = append(items, oracle.Quantile(1))
	}
	items = order.Sorted(cmp, items)
	return &Summary[T]{
		cmp:   cmp,
		eps:   eps,
		n:     n,
		items: items,
		min:   oracle.Select(1),
		max:   oracle.Select(n),
	}
}

// BuildFloat64 constructs the offline optimal float64 summary.
func BuildFloat64(eps float64, data []float64) *Summary[float64] {
	return Build(order.Floats[float64](), eps, data)
}

// Epsilon returns the accuracy parameter.
func (s *Summary[T]) Epsilon() float64 { return s.eps }

// Count returns the number of items the summary was built from.
func (s *Summary[T]) Count() int { return s.n }

// StoredItems returns the selected quantiles in non-decreasing order.
func (s *Summary[T]) StoredItems() []T {
	out := make([]T, len(s.items))
	copy(out, s.items)
	return out
}

// StoredCount returns the number of stored items, which is at most ⌈1/(2ε)⌉.
func (s *Summary[T]) StoredCount() int { return len(s.items) }

// Query returns an ε-approximate ϕ-quantile.
func (s *Summary[T]) Query(phi float64) (T, bool) {
	var zero T
	if s.n == 0 {
		return zero, false
	}
	if phi <= 0 {
		return s.min, true
	}
	if phi >= 1 {
		return s.max, true
	}
	// Item i was selected as the (2i+1)ε-quantile, i.e. it sits at rank
	// QuantileRank(n, (2i+1)ε). Return the stored item whose rank is closest
	// to the query's target rank; consecutive stored ranks are about 2εn
	// apart, so the error is at most εn.
	target := rank.QuantileRank(s.n, phi)
	bestIdx := 0
	bestDist := math.MaxInt
	for i := range s.items {
		r := rank.QuantileRank(s.n, (2*float64(i)+1)*s.eps)
		dist := r - target
		if dist < 0 {
			dist = -dist
		}
		if dist < bestDist {
			bestIdx, bestDist = i, dist
		}
	}
	return s.items[bestIdx], true
}

// EstimateRank estimates the number of items <= q from the stored quantiles.
func (s *Summary[T]) EstimateRank(q T) int {
	if s.n == 0 {
		return 0
	}
	if s.cmp(q, s.min) < 0 {
		return 0
	}
	if s.cmp(q, s.max) >= 0 {
		return s.n
	}
	// Each stored item i approximates the (2i+1)ε quantile; the rank of q is
	// estimated by the midpoint of the bracket of stored items around q.
	le := order.CountLE(s.cmp, s.items, q)
	phiLow := 2 * float64(le) * s.eps
	return int(phiLow * float64(s.n))
}

// Collector buffers an entire stream in memory and can produce the offline
// optimal summary for any eps after the fact. It is the "exact" reference
// summary in comparisons (unbounded space, zero error).
type Collector[T any] struct {
	cmp  order.Comparator[T]
	data []T
}

// NewCollector returns an empty collector.
func NewCollector[T any](cmp order.Comparator[T]) *Collector[T] {
	return &Collector[T]{cmp: cmp}
}

// NewCollectorFloat64 returns an empty float64 collector.
func NewCollectorFloat64() *Collector[float64] {
	return NewCollector(order.Floats[float64]())
}

// Update buffers one stream item.
func (c *Collector[T]) Update(x T) { c.data = append(c.data, x) }

// Count returns the number of buffered items.
func (c *Collector[T]) Count() int { return len(c.data) }

// Build produces the offline optimal summary for accuracy eps.
func (c *Collector[T]) Build(eps float64) *Summary[T] {
	return Build(c.cmp, eps, c.data)
}

// Oracle returns an exact rank oracle over the buffered data.
func (c *Collector[T]) Oracle() *rank.Oracle[T] {
	return rank.NewOracle(c.cmp, c.data)
}
