// Package ks implements approximate two-sample Kolmogorov–Smirnov tests on
// top of quantile summaries.
//
// Section 1 of the lower-bound paper lists Kolmogorov–Smirnov statistical
// tests among the applications of quantile summaries (citing Lall, 2015): the
// KS statistic is the maximum distance between two empirical CDFs, and an
// ε-approximate summary of each stream estimates it to within 2ε without
// storing the streams.
package ks

import (
	"math"
	"sort"

	"quantilelb/internal/summary"
)

// Statistic returns the approximate two-sample KS statistic
// D = sup_x |F̂_a(x) − F̂_b(x)| computed by evaluating both estimated CDFs at
// every item stored by either summary. The estimate is within ε_a + ε_b of
// the exact statistic.
func Statistic[T any](a, b summary.Summary[T]) float64 {
	na, nb := a.Count(), b.Count()
	if na == 0 || nb == 0 {
		return 0
	}
	best := 0.0
	eval := func(x T) {
		fa := float64(clamp(a.EstimateRank(x), 0, na)) / float64(na)
		fb := float64(clamp(b.EstimateRank(x), 0, nb)) / float64(nb)
		if d := math.Abs(fa - fb); d > best {
			best = d
		}
	}
	for _, x := range a.StoredItems() {
		eval(x)
	}
	for _, x := range b.StoredItems() {
		eval(x)
	}
	return best
}

// ExactStatistic computes the exact two-sample KS statistic from raw float64
// samples (ground truth for tests and experiments).
func ExactStatistic(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	sa := sortedCopy(a)
	sb := sortedCopy(b)
	best := 0.0
	i, j := 0, 0
	for i < len(sa) && j < len(sb) {
		var x float64
		if sa[i] <= sb[j] {
			x = sa[i]
		} else {
			x = sb[j]
		}
		for i < len(sa) && sa[i] <= x {
			i++
		}
		for j < len(sb) && sb[j] <= x {
			j++
		}
		fa := float64(i) / float64(len(sa))
		fb := float64(j) / float64(len(sb))
		if d := math.Abs(fa - fb); d > best {
			best = d
		}
	}
	return best
}

// RejectAtAlpha reports whether the KS statistic d rejects the null
// hypothesis (same distribution) at significance level alpha for sample sizes
// na and nb, using the standard asymptotic critical value
// c(α)·sqrt((na+nb)/(na·nb)) with c(α) = sqrt(−ln(α/2)/2).
func RejectAtAlpha(d float64, na, nb int, alpha float64) bool {
	if na == 0 || nb == 0 || alpha <= 0 || alpha >= 1 {
		return false
	}
	c := math.Sqrt(-math.Log(alpha/2) / 2)
	critical := c * math.Sqrt(float64(na+nb)/float64(na)/float64(nb))
	return d > critical
}

func clamp(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func sortedCopy(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	sort.Float64s(out)
	return out
}
