package ks

import (
	"math"
	"testing"

	"quantilelb/internal/gk"
	"quantilelb/internal/stream"
	"quantilelb/internal/summary"
)

func buildGK(eps float64, data []float64) summary.Summary[float64] {
	s := gk.NewFloat64(eps)
	for _, x := range data {
		s.Update(x)
	}
	return s
}

func TestStatisticSameDistribution(t *testing.T) {
	gen := stream.NewGenerator(1)
	eps := 0.01
	a := gen.Gaussian(40000, 0, 1)
	b := gen.Gaussian(40000, 0, 1)
	sa := buildGK(eps, a.Items())
	sb := buildGK(eps, b.Items())
	approx := Statistic(sa, sb)
	exact := ExactStatistic(a.Items(), b.Items())
	if math.Abs(approx-exact) > 2*eps+0.01 {
		t.Errorf("approx KS %v vs exact %v", approx, exact)
	}
	// Same distribution: the statistic should be small. (Rejection decisions
	// at this sample size require a finer summary than eps=0.01, since the
	// approximation error 2ε dominates the critical value; the
	// different-distribution test below exercises rejection.)
	if approx > 0.05 {
		t.Errorf("KS statistic %v too large for identical distributions", approx)
	}
	if exact > 0.05 {
		t.Errorf("exact KS statistic %v unexpectedly large", exact)
	}
}

func TestStatisticDifferentDistributions(t *testing.T) {
	gen := stream.NewGenerator(2)
	eps := 0.01
	a := gen.Gaussian(30000, 0, 1)
	b := gen.Gaussian(30000, 1, 1) // shifted mean
	sa := buildGK(eps, a.Items())
	sb := buildGK(eps, b.Items())
	approx := Statistic(sa, sb)
	exact := ExactStatistic(a.Items(), b.Items())
	if math.Abs(approx-exact) > 2*eps+0.01 {
		t.Errorf("approx KS %v vs exact %v", approx, exact)
	}
	if approx < 0.2 {
		t.Errorf("KS statistic %v too small for clearly different distributions", approx)
	}
	if !RejectAtAlpha(approx, a.Len(), b.Len(), 0.01) {
		t.Errorf("shifted distributions should be rejected at alpha=0.01")
	}
}

func TestStatisticEmpty(t *testing.T) {
	sa := buildGK(0.1, nil)
	sb := buildGK(0.1, []float64{1, 2, 3})
	if Statistic(sa, sb) != 0 {
		t.Errorf("empty summary should give 0 statistic")
	}
	if ExactStatistic(nil, []float64{1}) != 0 {
		t.Errorf("empty data should give 0 exact statistic")
	}
}

func TestExactStatisticKnownValue(t *testing.T) {
	// Two completely disjoint samples have KS statistic 1.
	a := []float64{1, 2, 3}
	b := []float64{10, 11, 12}
	if got := ExactStatistic(a, b); got != 1 {
		t.Errorf("disjoint samples KS = %v, want 1", got)
	}
	// Identical samples have statistic 0.
	if got := ExactStatistic(a, a); got != 0 {
		t.Errorf("identical samples KS = %v, want 0", got)
	}
}

func TestRejectAtAlphaEdgeCases(t *testing.T) {
	if RejectAtAlpha(0.5, 0, 10, 0.05) || RejectAtAlpha(0.5, 10, 10, 0) || RejectAtAlpha(0.5, 10, 10, 1) {
		t.Errorf("degenerate inputs should not reject")
	}
	// A huge statistic with decent sample sizes must reject.
	if !RejectAtAlpha(0.9, 1000, 1000, 0.05) {
		t.Errorf("statistic 0.9 should reject")
	}
	// A tiny statistic must not reject.
	if RejectAtAlpha(0.001, 1000, 1000, 0.05) {
		t.Errorf("statistic 0.001 should not reject")
	}
}
