package sampling

import (
	"testing"

	"quantilelb/internal/order"
	"quantilelb/internal/rank"
	"quantilelb/internal/stream"
)

// TestUpdateBatchEquivalence asserts that the batch path keeps the reservoir
// a uniform sample: quantile estimates stay within the DKW eps allowance (with
// slack for the randomized guarantee) and the sample size matches the
// sequential path exactly.
func TestUpdateBatchEquivalence(t *testing.T) {
	const eps = 0.05
	const delta = 0.01
	const n = 50_000
	gen := stream.NewGenerator(13)
	items := gen.Shuffled(n).Items()
	oracle := rank.Float64Oracle(items)
	// DKW holds with probability 1-delta; double the allowance keeps the
	// fixed-seed test deterministic and far from the boundary.
	allowance := int(2*eps*float64(n)) + 1

	for _, batch := range []int{1, 33, 1024, n} {
		r := NewFloat64(eps, delta, 17)
		for i := 0; i < len(items); i += batch {
			end := i + batch
			if end > len(items) {
				end = len(items)
			}
			r.UpdateBatch(items[i:end])
		}
		if r.Count() != n {
			t.Fatalf("batch=%d: count %d, want %d", batch, r.Count(), n)
		}
		if got, want := len(r.Sample()), r.Capacity(); got != want {
			t.Fatalf("batch=%d: sample size %d, want full capacity %d", batch, got, want)
		}
		worst := 0
		for i := 0; i <= 100; i++ {
			phi := float64(i) / 100
			got, ok := r.Query(phi)
			if !ok {
				t.Fatalf("batch=%d: query failed", batch)
			}
			if e := oracle.RankError(got, phi); e > worst {
				worst = e
			}
		}
		if worst > allowance {
			t.Errorf("batch=%d: worst rank error %d exceeds 2*eps*n=%d", batch, worst, allowance)
		}
	}
}

// TestUpdateBatchEdgeCases covers empty and single-item batches and exact
// min/max tracking through the batch path.
func TestUpdateBatchEdgeCases(t *testing.T) {
	r := NewFloat64(0.1, 0.1, 1)
	r.UpdateBatch(nil)
	r.UpdateBatch([]float64{})
	if r.Count() != 0 {
		t.Fatalf("empty batches must not change the count, got %d", r.Count())
	}
	r.UpdateBatch([]float64{3})
	if r.Count() != 1 {
		t.Fatalf("count = %d, want 1", r.Count())
	}
	if v, ok := r.Query(0.5); !ok || v != 3 {
		t.Fatalf("Query(0.5) = %v, %v; want 3, true", v, ok)
	}
	r.Update(10)
	r.UpdateBatch([]float64{-1, 5})
	mn, mx, ok := r.Extremes()
	if !ok || mn != -1 || mx != 10 {
		t.Fatalf("extremes (%v,%v), want (-1,10)", mn, mx)
	}
	if r.Count() != 4 {
		t.Fatalf("count = %d, want 4", r.Count())
	}
}

// TestRestoreRejectsShortSample: a sample smaller than min(capacity, count)
// is not a state Algorithm R can produce; restoring it would let subsequent
// updates enter the sample with probability 1 and break uniformity.
func TestRestoreRejectsShortSample(t *testing.T) {
	if _, err := Restore(order.Floats[float64](), 10, 1000, nil, 0, 1, true); err == nil {
		t.Errorf("Restore accepted an empty sample for a 1000-item stream")
	}
	if _, err := Restore(order.Floats[float64](), 10, 5, []float64{1, 2, 3}, 1, 3, true); err == nil {
		t.Errorf("Restore accepted a 3-item sample for count=5 < capacity")
	}
	// The exact-fill states round-trip.
	if _, err := Restore(order.Floats[float64](), 10, 5, []float64{1, 2, 3, 4, 5}, 1, 5, true); err != nil {
		t.Errorf("Restore rejected a legitimate fill-phase state: %v", err)
	}
}
