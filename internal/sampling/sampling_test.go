package sampling

import (
	"math"
	"testing"
	"testing/quick"

	"quantilelb/internal/order"
	"quantilelb/internal/rank"
	"quantilelb/internal/stream"
)

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("capacity < 1 should panic")
		}
	}()
	New(order.Floats[float64](), 0, 1)
}

func TestSizeForAccuracyValidation(t *testing.T) {
	for _, c := range []struct{ eps, delta float64 }{{0, 0.1}, {1, 0.1}, {0.1, 0}, {0.1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("eps=%v delta=%v should panic", c.eps, c.delta)
				}
			}()
			SizeForAccuracy(c.eps, c.delta)
		}()
	}
	// DKW: m >= ln(2/delta)/(2 eps^2).
	if got := SizeForAccuracy(0.1, 0.05); got != int(math.Ceil(math.Log(40)/0.02)) {
		t.Errorf("SizeForAccuracy(0.1, 0.05) = %d", got)
	}
	if SizeForAccuracy(0.01, 0.05) <= SizeForAccuracy(0.1, 0.05) {
		t.Errorf("size should grow as eps shrinks")
	}
}

func TestEmpty(t *testing.T) {
	r := NewFloat64(0.1, 0.1, 1)
	if _, ok := r.Query(0.5); ok {
		t.Errorf("query on empty should fail")
	}
	if r.EstimateRank(1) != 0 {
		t.Errorf("rank on empty should be 0")
	}
	if r.Count() != 0 || r.StoredCount() != 0 {
		t.Errorf("empty reservoir has nonzero counts")
	}
}

func TestSmallStreamExact(t *testing.T) {
	r := New(order.Floats[float64](), 100, 1)
	for i := 1; i <= 50; i++ {
		r.Update(float64(i))
	}
	// Whole stream fits in the reservoir: quantiles are exact.
	if v, _ := r.Query(0.5); v != 25 {
		t.Errorf("median of 1..50 = %v, want 25", v)
	}
	if v, _ := r.Query(0); v != 1 {
		t.Errorf("min = %v", v)
	}
	if v, _ := r.Query(1); v != 50 {
		t.Errorf("max = %v", v)
	}
	if got := r.EstimateRank(10); got != 10 {
		t.Errorf("EstimateRank(10) = %d, want 10", got)
	}
}

func TestCapacityRespected(t *testing.T) {
	r := New(order.Floats[float64](), 64, 2)
	gen := stream.NewGenerator(1)
	for _, x := range gen.Uniform(10000).Items() {
		r.Update(x)
	}
	if r.Capacity() != 64 {
		t.Errorf("Capacity = %d", r.Capacity())
	}
	// Stored items: sample plus possibly min and max.
	if r.StoredCount() > 66 {
		t.Errorf("StoredCount = %d, want <= 66", r.StoredCount())
	}
	if r.Count() != 10000 {
		t.Errorf("Count = %d", r.Count())
	}
}

func TestAccuracyWithDKWSize(t *testing.T) {
	eps, delta := 0.05, 0.01
	r := NewFloat64(eps, delta, 7)
	gen := stream.NewGenerator(3)
	n := 100000
	st := gen.Uniform(n)
	for _, x := range st.Items() {
		r.Update(x)
	}
	oracle := rank.Float64Oracle(st.Items())
	// Randomized guarantee: allow most queries within eps and all within 4eps
	// for this fixed seed.
	within := 0
	for i := 0; i <= 100; i++ {
		phi := float64(i) / 100
		got, ok := r.Query(phi)
		if !ok {
			t.Fatalf("query failed")
		}
		e := oracle.RankError(got, phi)
		if float64(e) <= eps*float64(n) {
			within++
		}
		if float64(e) > 4*eps*float64(n) {
			t.Errorf("phi=%v error %d > 4 eps N", phi, e)
		}
	}
	if within < 90 {
		t.Errorf("only %d/101 queries within eps", within)
	}
}

func TestEstimateRank(t *testing.T) {
	eps := 0.05
	r := NewFloat64(eps, 0.01, 11)
	gen := stream.NewGenerator(5)
	n := 50000
	st := gen.Uniform(n)
	for _, x := range st.Items() {
		r.Update(x)
	}
	oracle := rank.Float64Oracle(st.Items())
	for _, q := range []float64{0.1, 0.5, 0.9} {
		est := r.EstimateRank(q)
		exact := oracle.RankLE(q)
		if math.Abs(float64(est-exact)) > 3*eps*float64(n) {
			t.Errorf("EstimateRank(%v) = %d, exact %d", q, est, exact)
		}
	}
}

func TestMinMaxAlwaysAvailable(t *testing.T) {
	r := New(order.Floats[float64](), 4, 3)
	gen := stream.NewGenerator(6)
	st := gen.Shuffled(5000)
	for _, x := range st.Items() {
		r.Update(x)
	}
	if v, _ := r.Query(0); v != 1 {
		t.Errorf("min = %v, want 1", v)
	}
	if v, _ := r.Query(1); v != 5000 {
		t.Errorf("max = %v, want 5000", v)
	}
	// StoredItems must include min and max even with a tiny reservoir.
	items := r.StoredItems()
	if items[0] != 1 || items[len(items)-1] != 5000 {
		t.Errorf("StoredItems does not include extremes: %v", items)
	}
}

func TestStoredItemsSorted(t *testing.T) {
	r := New(order.Floats[float64](), 32, 9)
	gen := stream.NewGenerator(7)
	for _, x := range gen.Uniform(2000).Items() {
		r.Update(x)
	}
	items := r.StoredItems()
	for i := 1; i < len(items); i++ {
		if items[i-1] > items[i] {
			t.Fatalf("StoredItems not sorted")
		}
	}
}

// Property: the reservoir never exceeds its capacity and counts correctly.
func TestReservoirBoundsProperty(t *testing.T) {
	f := func(items []float64, seed int64) bool {
		r := New(order.Floats[float64](), 16, seed)
		for _, x := range items {
			r.Update(x)
		}
		return r.Count() == len(items) && len(r.sample) <= 16
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
