package sampling

import (
	"math"
	"testing"
	"testing/quick"

	"quantilelb/internal/order"
	"quantilelb/internal/rank"
	"quantilelb/internal/stream"
)

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("capacity < 1 should panic")
		}
	}()
	New(order.Floats[float64](), 0, 1)
}

func TestSizeForAccuracyValidation(t *testing.T) {
	for _, c := range []struct{ eps, delta float64 }{{0, 0.1}, {1, 0.1}, {0.1, 0}, {0.1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("eps=%v delta=%v should panic", c.eps, c.delta)
				}
			}()
			SizeForAccuracy(c.eps, c.delta)
		}()
	}
	// DKW: m >= ln(2/delta)/(2 eps^2).
	if got := SizeForAccuracy(0.1, 0.05); got != int(math.Ceil(math.Log(40)/0.02)) {
		t.Errorf("SizeForAccuracy(0.1, 0.05) = %d", got)
	}
	if SizeForAccuracy(0.01, 0.05) <= SizeForAccuracy(0.1, 0.05) {
		t.Errorf("size should grow as eps shrinks")
	}
}

func TestEmpty(t *testing.T) {
	r := NewFloat64(0.1, 0.1, 1)
	if _, ok := r.Query(0.5); ok {
		t.Errorf("query on empty should fail")
	}
	if r.EstimateRank(1) != 0 {
		t.Errorf("rank on empty should be 0")
	}
	if r.Count() != 0 || r.StoredCount() != 0 {
		t.Errorf("empty reservoir has nonzero counts")
	}
}

func TestSmallStreamExact(t *testing.T) {
	r := New(order.Floats[float64](), 100, 1)
	for i := 1; i <= 50; i++ {
		r.Update(float64(i))
	}
	// Whole stream fits in the reservoir: quantiles are exact.
	if v, _ := r.Query(0.5); v != 25 {
		t.Errorf("median of 1..50 = %v, want 25", v)
	}
	if v, _ := r.Query(0); v != 1 {
		t.Errorf("min = %v", v)
	}
	if v, _ := r.Query(1); v != 50 {
		t.Errorf("max = %v", v)
	}
	if got := r.EstimateRank(10); got != 10 {
		t.Errorf("EstimateRank(10) = %d, want 10", got)
	}
}

func TestCapacityRespected(t *testing.T) {
	r := New(order.Floats[float64](), 64, 2)
	gen := stream.NewGenerator(1)
	for _, x := range gen.Uniform(10000).Items() {
		r.Update(x)
	}
	if r.Capacity() != 64 {
		t.Errorf("Capacity = %d", r.Capacity())
	}
	// Stored items: sample plus possibly min and max.
	if r.StoredCount() > 66 {
		t.Errorf("StoredCount = %d, want <= 66", r.StoredCount())
	}
	if r.Count() != 10000 {
		t.Errorf("Count = %d", r.Count())
	}
}

func TestAccuracyWithDKWSize(t *testing.T) {
	eps, delta := 0.05, 0.01
	r := NewFloat64(eps, delta, 7)
	gen := stream.NewGenerator(3)
	n := 100000
	st := gen.Uniform(n)
	for _, x := range st.Items() {
		r.Update(x)
	}
	oracle := rank.Float64Oracle(st.Items())
	// Randomized guarantee: allow most queries within eps and all within 4eps
	// for this fixed seed.
	within := 0
	for i := 0; i <= 100; i++ {
		phi := float64(i) / 100
		got, ok := r.Query(phi)
		if !ok {
			t.Fatalf("query failed")
		}
		e := oracle.RankError(got, phi)
		if float64(e) <= eps*float64(n) {
			within++
		}
		if float64(e) > 4*eps*float64(n) {
			t.Errorf("phi=%v error %d > 4 eps N", phi, e)
		}
	}
	if within < 90 {
		t.Errorf("only %d/101 queries within eps", within)
	}
}

func TestEstimateRank(t *testing.T) {
	eps := 0.05
	r := NewFloat64(eps, 0.01, 11)
	gen := stream.NewGenerator(5)
	n := 50000
	st := gen.Uniform(n)
	for _, x := range st.Items() {
		r.Update(x)
	}
	oracle := rank.Float64Oracle(st.Items())
	for _, q := range []float64{0.1, 0.5, 0.9} {
		est := r.EstimateRank(q)
		exact := oracle.RankLE(q)
		if math.Abs(float64(est-exact)) > 3*eps*float64(n) {
			t.Errorf("EstimateRank(%v) = %d, exact %d", q, est, exact)
		}
	}
}

func TestMinMaxAlwaysAvailable(t *testing.T) {
	r := New(order.Floats[float64](), 4, 3)
	gen := stream.NewGenerator(6)
	st := gen.Shuffled(5000)
	for _, x := range st.Items() {
		r.Update(x)
	}
	if v, _ := r.Query(0); v != 1 {
		t.Errorf("min = %v, want 1", v)
	}
	if v, _ := r.Query(1); v != 5000 {
		t.Errorf("max = %v, want 5000", v)
	}
	// StoredItems must include min and max even with a tiny reservoir.
	items := r.StoredItems()
	if items[0] != 1 || items[len(items)-1] != 5000 {
		t.Errorf("StoredItems does not include extremes: %v", items)
	}
}

func TestStoredItemsSorted(t *testing.T) {
	r := New(order.Floats[float64](), 32, 9)
	gen := stream.NewGenerator(7)
	for _, x := range gen.Uniform(2000).Items() {
		r.Update(x)
	}
	items := r.StoredItems()
	for i := 1; i < len(items); i++ {
		if items[i-1] > items[i] {
			t.Fatalf("StoredItems not sorted")
		}
	}
}

// Property: the reservoir never exceeds its capacity and counts correctly.
func TestReservoirBoundsProperty(t *testing.T) {
	f := func(items []float64, seed int64) bool {
		r := New(order.Floats[float64](), 16, seed)
		for _, x := range items {
			r.Update(x)
		}
		return r.Count() == len(items) && len(r.sample) <= 16
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestMerge verifies the weighted-draw reservoir merge: the merged reservoir
// is a uniform-ish sample of the union, so quantile estimates must stay
// within the DKW eps bound (with generous slack for sampling noise).
func TestMerge(t *testing.T) {
	gen := stream.NewGenerator(31)
	eps, delta := 0.05, 0.01
	a := NewFloat64(eps, delta, 1)
	b := NewFloat64(eps, delta, 2)
	sa := gen.Uniform(30000).Items()
	sb := gen.Gaussian(20000, 3, 0.5).Items()
	for _, x := range sa {
		a.Update(x)
	}
	for _, x := range sb {
		b.Update(x)
	}
	bSample := len(b.sample)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 50000 {
		t.Fatalf("merged count = %d, want 50000", a.Count())
	}
	if len(a.sample) > a.Capacity() {
		t.Fatalf("merged sample %d exceeds capacity %d", len(a.sample), a.Capacity())
	}
	if b.Count() != 20000 || len(b.sample) != bSample {
		t.Fatalf("merge modified its argument")
	}
	all := append(append([]float64(nil), sa...), sb...)
	oracle := rank.Float64Oracle(all)
	// 3x slack: the DKW bound is probabilistic and the merge adds one more
	// round of sampling noise.
	bound := 3 * eps * float64(len(all))
	for _, phi := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		got, ok := a.Query(phi)
		if !ok {
			t.Fatalf("query after merge failed")
		}
		if err := oracle.RankError(got, phi); float64(err) > bound {
			t.Errorf("phi=%v rank error %d exceeds 3*eps*N=%v", phi, err, bound)
		}
	}
	// Min and max are tracked exactly across the merge.
	if v, _ := a.Query(0); v != oracle.Select(1) {
		t.Errorf("merged min = %v, want %v", v, oracle.Select(1))
	}
	if v, _ := a.Query(1); v != oracle.Select(oracle.Len()) {
		t.Errorf("merged max = %v, want %v", v, oracle.Select(oracle.Len()))
	}
}

func TestMergeIntoEmpty(t *testing.T) {
	b := New(order.Floats[float64](), 100, 3)
	for i := 0; i < 1000; i++ {
		b.Update(float64(i))
	}
	a := New(order.Floats[float64](), 10, 4)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 1000 {
		t.Fatalf("count = %d, want 1000", a.Count())
	}
	if len(a.sample) != 10 {
		t.Fatalf("merged-into-empty sample = %d, want capacity 10", len(a.sample))
	}
	if err := a.Merge(nil); err != nil {
		t.Fatalf("merge nil: %v", err)
	}
}
