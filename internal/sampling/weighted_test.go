package sampling

// Weighted-input coverage: WeightedUpdate must keep the reservoir a uniform
// sample of the weight-expanded stream. The skip-based steady phase is
// distribution-equivalent to Algorithm R, so the DKW sizing applies with the
// total weight W as the stream length.

import (
	"math"
	"math/rand"
	"testing"

	"quantilelb/internal/order"
	"quantilelb/internal/rank"
	"quantilelb/internal/testseed"
)

func TestWeightedUpdateWithinEps(t *testing.T) {
	const n, eps, slack = 3000, 0.05, 3.0
	rng := rand.New(rand.NewSource(testseed.For(t, "sampling-weighted-stream", 37)))
	items := make([]float64, n)
	weights := make([]int64, n)
	for i := range items {
		items[i] = float64(rng.Intn(500))
		weights[i] = int64(1 + rng.Intn(50))
		if rng.Intn(150) == 0 {
			weights[i] = 100_000 // heavy item: must occupy many slots
		}
	}
	r := NewFloat64(eps, 0.01, 41)
	for i, x := range items {
		r.WeightedUpdate(x, weights[i])
	}
	oracle := rank.Float64WeightedOracle(items, weights)
	if int64(r.Count()) != oracle.TotalWeight() {
		t.Fatalf("Count = %d, want total weight %d", r.Count(), oracle.TotalWeight())
	}
	allowance := slack * eps * float64(oracle.TotalWeight())
	for g := 0; g <= 100; g++ {
		phi := float64(g) / 100
		got, ok := r.Query(phi)
		if !ok {
			t.Fatalf("Query(%g) failed", phi)
		}
		if e := oracle.RankError(got, phi); float64(e) > allowance+1 {
			t.Errorf("phi=%g: weighted rank error %d exceeds allowance %.1f", phi, e, allowance)
		}
	}
}

// TestWeightedHeavyItemOccupancy pins the statistical point that separates
// expanded-stream sampling from distinct-item weighted sampling: an item
// carrying half the total weight must end up in roughly half the sample
// slots, or quantile answers over the weighted distribution would be wrong.
func TestWeightedHeavyItemOccupancy(t *testing.T) {
	const capacity = 2000
	r := New(order.Floats[float64](), capacity, testseed.For(t, "sampling-occupancy", 43))
	// 100k light items of weight 1, then one item carrying another 100k.
	for i := 0; i < 100_000; i++ {
		r.Update(float64(i))
	}
	r.WeightedUpdate(-1, 100_000)
	occupancy := 0
	for _, x := range r.Sample() {
		if x == -1 {
			occupancy++
		}
	}
	frac := float64(occupancy) / capacity
	if math.Abs(frac-0.5) > 0.05 {
		t.Fatalf("heavy item occupies %.1f%% of the sample, want ~50%%", 100*frac)
	}
}

// TestWeightedSkipMatchesPerCopyRates compares the skip-based acceptance
// count against the exact per-copy simulation over many trials: the two must
// agree in expectation, or the closed-form inversion drifted from
// Algorithm R's acceptance probabilities.
func TestWeightedSkipMatchesPerCopyRates(t *testing.T) {
	const capacity, pre, w, trials = 50, 400, 1200, 300
	base := testseed.For(t, "sampling-skip-vs-percopy", 1)
	var skipTotal, exactTotal float64
	for trial := 0; trial < trials; trial++ {
		r := New(order.Floats[float64](), capacity, base+int64(trial))
		for i := 0; i < pre; i++ {
			r.Update(float64(i))
		}
		r.WeightedUpdate(-1, w)
		for _, x := range r.Sample() {
			if x == -1 {
				skipTotal++
			}
		}
		e := New(order.Floats[float64](), capacity, base+int64(trial+1_000_003))
		for i := 0; i < pre; i++ {
			e.Update(float64(i))
		}
		for i := 0; i < w; i++ {
			e.Update(-1)
		}
		for _, x := range e.Sample() {
			if x == -1 {
				exactTotal++
			}
		}
	}
	skipMean := skipTotal / trials
	exactMean := exactTotal / trials
	// Means over 300 trials of a [0, 50]-bounded count: ±1.5 slots is ~4
	// standard errors of headroom.
	if math.Abs(skipMean-exactMean) > 1.5 {
		t.Fatalf("skip path places %.2f heavy slots on average, per-copy simulation %.2f", skipMean, exactMean)
	}
}

func TestWeightedRestoreRoundTrip(t *testing.T) {
	r := NewFloat64(0.05, 0.01, 47)
	r.WeightedUpdate(1.5, 10)
	r.WeightedUpdate(2.5, 100_000)
	restored, err := Restore(order.Floats[float64](), r.Capacity(), r.Count(), r.Sample(), 1.5, 2.5, true)
	if err != nil {
		t.Fatalf("restore of a weighted reservoir: %v", err)
	}
	if restored.Count() != r.Count() {
		t.Fatalf("restored Count = %d, want %d", restored.Count(), r.Count())
	}
}

func TestWeightedUpdatePanics(t *testing.T) {
	assertPanics := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	r := NewFloat64(0.1, 0.01, 1)
	assertPanics("zero weight", func() { r.WeightedUpdate(1, 0) })
	assertPanics("batch length mismatch", func() { r.WeightedUpdateBatch([]float64{1}, nil) })
}
