package sampling

import "unsafe"

// RetainedBytes reports the heap bytes retained by the sample array, counting
// allocated capacity (summary.Sized). The reservoir stores bare items: ~8
// bytes per slot on float64 streams.
func (r *Reservoir[T]) RetainedBytes() int {
	return cap(r.sample) * int(unsafe.Sizeof(*new(T)))
}
