// Package sampling implements a reservoir-sampling quantile estimator, the
// simplest randomized comparison-based baseline referenced in Section 1.2 of
// the lower-bound paper (sampling-based approaches need Θ((1/ε²)·log(1/δ))
// samples for a uniform ε guarantee).
//
// The estimator keeps a uniform random sample of the stream (Vitter's
// reservoir sampling, Algorithm R) plus the exact minimum and maximum, and
// answers quantile and rank queries from the sample. It exists as a baseline
// in the cross-summary comparison experiments and to illustrate that the
// deterministic lower bound does not constrain randomized summaries with
// constant failure probability.
package sampling

import (
	"fmt"
	"math"
	"math/rand"

	"quantilelb/internal/order"
)

// Reservoir is a reservoir-sampling quantile estimator.
type Reservoir[T any] struct {
	cmp      order.Comparator[T]
	capacity int
	rng      *rand.Rand
	n        int
	sample   []T

	// sorted caches the sample in query order; sortedStale marks it for
	// rebuild after a sample mutation. The cache is materialized eagerly at
	// the end of Merge and Restore so summaries served as shared read
	// snapshots (the sharded tier's merged views) answer queries without
	// mutating themselves; single-writer ingest rebuilds it lazily.
	sorted      []T
	sortedStale bool

	hasMin, hasMax bool
	min, max       T
}

// New returns a reservoir of the given capacity. It panics if capacity < 1.
func New[T any](cmp order.Comparator[T], capacity int, seed int64) *Reservoir[T] {
	if capacity < 1 {
		panic("sampling: capacity must be positive")
	}
	return &Reservoir[T]{
		cmp:      cmp,
		capacity: capacity,
		rng:      rand.New(rand.NewSource(seed)),
	}
}

// NewFloat64 returns a float64 reservoir sized for accuracy eps and failure
// probability delta using the standard (1/ε²)·ln(2/δ)/2 bound.
func NewFloat64(eps, delta float64, seed int64) *Reservoir[float64] {
	return New(order.Floats[float64](), SizeForAccuracy(eps, delta), seed)
}

// SizeForAccuracy returns the sample size needed so that, with probability at
// least 1−δ, every quantile estimate from the sample is within ε of the true
// quantile (by the DKW inequality: m ≥ ln(2/δ)/(2ε²)).
func SizeForAccuracy(eps, delta float64) int {
	if eps <= 0 || eps >= 1 {
		panic("sampling: eps must be in (0, 1)")
	}
	if delta <= 0 || delta >= 1 {
		panic("sampling: delta must be in (0, 1)")
	}
	m := int(math.Ceil(math.Log(2/delta) / (2 * eps * eps)))
	if m < 1 {
		m = 1
	}
	return m
}

// Capacity returns the reservoir capacity.
func (r *Reservoir[T]) Capacity() int { return r.capacity }

// Count returns the number of items processed.
func (r *Reservoir[T]) Count() int { return r.n }

// Update processes one stream item.
func (r *Reservoir[T]) Update(x T) {
	r.n++
	if !r.hasMin || r.cmp(x, r.min) < 0 {
		r.min, r.hasMin = x, true
	}
	if !r.hasMax || r.cmp(x, r.max) > 0 {
		r.max, r.hasMax = x, true
	}
	if len(r.sample) < r.capacity {
		r.sample = append(r.sample, x)
		r.sortedStale = true
		return
	}
	// Algorithm R: replace a random slot with probability capacity/n.
	j := r.rng.Intn(r.n)
	if j < r.capacity {
		r.sample[j] = x
		r.sortedStale = true
	}
}

// UpdateBatch processes a batch of stream items in one tight loop. The
// sampling decisions are exactly those of calling Update per item — each item
// x_i replaces a uniformly random slot with probability capacity/n_i, so the
// reservoir remains a uniform sample of the whole stream — but the batch path
// amortizes the per-item method dispatch and keeps the acceptance test in a
// branch-predictable loop. This is the fast path the internal/sharded
// ingestion layer uses for flushing write buffers.
func (r *Reservoir[T]) UpdateBatch(xs []T) {
	for _, x := range xs {
		if !r.hasMin || r.cmp(x, r.min) < 0 {
			r.min, r.hasMin = x, true
		}
		if !r.hasMax || r.cmp(x, r.max) > 0 {
			r.max, r.hasMax = x, true
		}
		r.n++
		if len(r.sample) < r.capacity {
			r.sample = append(r.sample, x)
			r.sortedStale = true
			continue
		}
		if j := r.rng.Intn(r.n); j < r.capacity {
			r.sample[j] = x
			r.sortedStale = true
		}
	}
}

// WeightedUpdate processes one item carrying an integer weight w ≥ 1,
// equivalent to w repeated Updates of x: the sample stays a uniform random
// sample of the weight-expanded stream, so the DKW guarantee applies with
// the total weight W in place of the stream length. The equal copies
// commute, so only how many acceptances occur and which slots they overwrite
// matter; the gaps between acceptances are drawn in closed form (the
// exponential-jump idea of Efraimidis–Spirakis weighted sampling, realized
// here through the log-Gamma form of Algorithm R's skip distribution), which
// makes a heavy item cost O(capacity·log w) expected work instead of O(w).
// It panics if w is not positive.
func (r *Reservoir[T]) WeightedUpdate(x T, w int64) {
	if w <= 0 {
		panic("sampling: weight must be positive")
	}
	if int64(int(w)) != w {
		// The reservoir's counter is an int: fail loudly on 32-bit platforms
		// rather than truncate the stream position.
		panic("sampling: weight overflows int on this platform")
	}
	if !r.hasMin || r.cmp(x, r.min) < 0 {
		r.min, r.hasMin = x, true
	}
	if !r.hasMax || r.cmp(x, r.max) > 0 {
		r.max, r.hasMax = x, true
	}
	// Fill phase: copies enter the sample directly until it is full.
	for w > 0 && len(r.sample) < r.capacity {
		r.sample = append(r.sample, x)
		r.sortedStale = true
		r.n++
		w--
	}
	// Steady phase: copy number i (stream position) is accepted with
	// probability capacity/i and overwrites a uniformly random slot, exactly
	// as in Update; the skip to the next acceptance is drawn directly.
	for w > 0 {
		s := r.skip(w)
		if s > w {
			r.n += int(w)
			return
		}
		r.n += int(s)
		w -= s
		r.sample[r.rng.Intn(r.capacity)] = x
		r.sortedStale = true
	}
}

// WeightedUpdateBatch processes a batch of weighted items, equivalent to
// calling WeightedUpdate per pair. len(ws) must equal len(xs); it panics on
// a length mismatch or a non-positive weight.
func (r *Reservoir[T]) WeightedUpdateBatch(xs []T, ws []int64) {
	if len(xs) != len(ws) {
		panic("sampling: WeightedUpdateBatch: items and weights differ in length")
	}
	for i, x := range xs {
		r.WeightedUpdate(x, ws[i])
	}
}

// skip draws the number of copies consumed up to and including the next
// Algorithm R acceptance, given m copies remain after stream position r.n:
// copies r.n+1 … r.n+s−1 are rejected and copy r.n+s accepted, where copy i
// is accepted independently with probability capacity/i. Returns m+1 when
// all m remaining copies are rejected. The survival function telescopes into
// a ratio of Gamma functions —
//
//	P(skip > s) = Π_{i=n+1}^{n+s} (i−c)/i
//	            = exp(lnΓ(n+s+1−c) − lnΓ(n+1−c) + lnΓ(n+1) − lnΓ(n+s+1))
//
// — so the skip is found by inverting one uniform draw with a binary search
// over the monotone log-survival, O(log m) per acceptance.
func (r *Reservoir[T]) skip(m int64) int64 {
	n := float64(r.n)
	c := float64(r.capacity)
	base := lgamma(n+1-c) - lgamma(n+1)
	logSurvival := func(s int64) float64 {
		fs := float64(s)
		return lgamma(n+fs+1-c) - lgamma(n+fs+1) - base
	}
	logU := math.Log(r.rng.Float64())
	if logSurvival(m) >= logU {
		return m + 1 // every remaining copy rejected
	}
	// Smallest s in [1, m] with log P(skip > s) < log u.
	lo, hi := int64(1), m
	for lo < hi {
		mid := lo + (hi-lo)/2
		if logSurvival(mid) < logU {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// lgamma is math.Lgamma without the sign result (all arguments here are
// positive, where Γ is positive).
func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// Merge folds another reservoir into the receiver so that the result is
// (approximately) a uniform random sample of the union of the two input
// streams, using weighted draws without replacement: each next sample slot is
// filled from one of the two reservoirs with probability proportional to the
// number of stream items that reservoir still represents. This is the
// standard distributed reservoir merge (as in Apache DataFu); it never
// requires revisiting the raw streams.
//
// Error guarantee: the merged sample is again uniform over the combined
// stream, so the DKW bound applies unchanged and eps_new = max(eps_a, eps_b)
// for reservoirs sized with SizeForAccuracy. The merged sample size is the
// receiver's capacity.
//
// The argument is read but never modified (see internal/sharded).
func (r *Reservoir[T]) Merge(other *Reservoir[T]) error {
	if other == nil || other.n == 0 {
		return nil
	}
	if other.hasMin && (!r.hasMin || r.cmp(other.min, r.min) < 0) {
		r.min, r.hasMin = other.min, true
	}
	if other.hasMax && (!r.hasMax || r.cmp(other.max, r.max) > 0) {
		r.max, r.hasMax = other.max, true
	}
	if r.n == 0 {
		r.sample = append(r.sample[:0], other.sample...)
		if len(r.sample) > r.capacity {
			// The other reservoir was larger: keep a uniform subsample.
			r.rng.Shuffle(len(r.sample), func(i, j int) {
				r.sample[i], r.sample[j] = r.sample[j], r.sample[i]
			})
			r.sample = r.sample[:r.capacity]
		}
		r.n = other.n
		r.sortedStale = true
		r.refreshSorted()
		return nil
	}
	a := append([]T(nil), r.sample...)
	b := append([]T(nil), other.sample...)
	// wa and wb track how many stream items the remaining portion of each
	// sample still represents; drawing an item from a sample scales its
	// weight down proportionally.
	wa, wb := float64(r.n), float64(other.n)
	merged := make([]T, 0, r.capacity)
	for len(merged) < r.capacity && (len(a) > 0 || len(b) > 0) {
		takeA := len(b) == 0 || (len(a) > 0 && r.rng.Float64() < wa/(wa+wb))
		if takeA {
			i := r.rng.Intn(len(a))
			merged = append(merged, a[i])
			wa *= float64(len(a)-1) / float64(len(a))
			a[i] = a[len(a)-1]
			a = a[:len(a)-1]
		} else {
			i := r.rng.Intn(len(b))
			merged = append(merged, b[i])
			wb *= float64(len(b)-1) / float64(len(b))
			b[i] = b[len(b)-1]
			b = b[:len(b)-1]
		}
	}
	r.sample = merged
	r.n += other.n
	r.sortedStale = true
	r.refreshSorted()
	return nil
}

// Query returns an approximate ϕ-quantile computed from the sample.
func (r *Reservoir[T]) Query(phi float64) (T, bool) {
	var zero T
	if r.n == 0 {
		return zero, false
	}
	if phi <= 0 {
		return r.min, true
	}
	if phi >= 1 {
		return r.max, true
	}
	sorted := r.sortedView()
	k := int(phi * float64(len(sorted)))
	if k < 1 {
		k = 1
	}
	if k > len(sorted) {
		k = len(sorted)
	}
	return sorted[k-1], true
}

// EstimateRank estimates the number of items less than or equal to q by
// scaling the sample rank.
func (r *Reservoir[T]) EstimateRank(q T) int {
	if r.n == 0 || len(r.sample) == 0 {
		return 0
	}
	sorted := r.sortedView()
	le := order.CountLE(r.cmp, sorted, q)
	return int(math.Round(float64(le) / float64(len(sorted)) * float64(r.n)))
}

// StoredItems returns the sampled items (plus min and max if not sampled) in
// non-decreasing order.
func (r *Reservoir[T]) StoredItems() []T {
	items := append([]T(nil), r.sortedView()...)
	if r.hasMin && !order.Contains(r.cmp, items, r.min) {
		items = order.InsertSorted(r.cmp, items, r.min)
	}
	if r.hasMax && !order.Contains(r.cmp, items, r.max) {
		items = order.InsertSorted(r.cmp, items, r.max)
	}
	return items
}

// StoredCount returns the number of retained items.
func (r *Reservoir[T]) StoredCount() int {
	return len(r.StoredItems())
}

// Sample returns a copy of the current sample in insertion order (not
// sorted). It is used by the serialization layer.
func (r *Reservoir[T]) Sample() []T {
	return append([]T(nil), r.sample...)
}

// Extremes returns the exact minimum and maximum seen so far; ok is false
// when the reservoir is empty.
func (r *Reservoir[T]) Extremes() (min, max T, ok bool) {
	return r.min, r.max, r.hasMin && r.hasMax
}

// sortedView returns the sample in non-decreasing order, rebuilding the
// cached copy only after a mutation. Lazy rebuilds serve the single-writer
// ingest path; shared read snapshots are materialized by Merge/Restore and
// never rebuild here.
func (r *Reservoir[T]) sortedView() []T {
	r.refreshSorted()
	return r.sorted
}

// refreshSorted rebuilds the sorted cache if it is stale.
func (r *Reservoir[T]) refreshSorted() {
	if r.sortedStale || (r.sorted == nil && len(r.sample) > 0) {
		r.sorted = order.Sorted(r.cmp, r.sample)
		r.sortedStale = false
	}
}

// Restore reconstructs a reservoir from previously exported state, validating
// consistency before accepting it. The restored reservoir uses a fresh
// deterministic random source; the sample remains a uniform sample of the
// original stream, so the DKW accuracy guarantee is unaffected.
func Restore[T any](cmp order.Comparator[T], capacity, count int, sample []T, min, max T, hasExtremes bool) (*Reservoir[T], error) {
	if capacity < 1 {
		return nil, fmt.Errorf("sampling: restore: capacity must be positive, got %d", capacity)
	}
	if count < 0 {
		return nil, fmt.Errorf("sampling: restore: negative item count")
	}
	// Algorithm R keeps the sample at exactly min(capacity, count) items; a
	// smaller sample would make the fill branch of Update re-enter items
	// with probability 1 and destroy uniformity, so reject it.
	want := capacity
	if count < want {
		want = count
	}
	if len(sample) != want {
		return nil, fmt.Errorf("sampling: restore: sample has %d items, want min(capacity, count) = %d", len(sample), want)
	}
	if count > 0 && !hasExtremes {
		return nil, fmt.Errorf("sampling: restore: non-empty reservoir without extremes")
	}
	r := New(cmp, capacity, int64(count)+1)
	r.n = count
	r.sample = append([]T(nil), sample...)
	if hasExtremes {
		r.min, r.max = min, max
		r.hasMin, r.hasMax = true, true
	}
	r.sortedStale = true
	r.refreshSorted()
	return r, nil
}
