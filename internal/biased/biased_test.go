package biased

import (
	"math"
	"testing"
	"testing/quick"

	"quantilelb/internal/order"
	"quantilelb/internal/rank"
	"quantilelb/internal/stream"
)

func TestNewValidation(t *testing.T) {
	for _, eps := range []float64{0, 1, -0.2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("eps=%v should panic", eps)
				}
			}()
			NewFloat64(eps)
		}()
	}
}

func TestEmpty(t *testing.T) {
	s := NewFloat64(0.1)
	if _, ok := s.Query(0.5); ok {
		t.Errorf("query on empty should fail")
	}
	if s.EstimateRank(1) != 0 {
		t.Errorf("rank on empty should be 0")
	}
	if err := s.CheckInvariant(); err != nil {
		t.Errorf("invariant on empty: %v", err)
	}
	if s.Epsilon() != 0.1 {
		t.Errorf("Epsilon = %v", s.Epsilon())
	}
}

func feed(s *Summary[float64], items []float64) {
	for _, x := range items {
		s.Update(x)
	}
}

func TestRelativeErrorGuarantee(t *testing.T) {
	gen := stream.NewGenerator(1)
	n := 20000
	for _, name := range []string{"sorted", "reverse", "shuffled", "uniform", "lognormal"} {
		for _, eps := range []float64{0.1, 0.05} {
			st, err := gen.ByName(name, n)
			if err != nil {
				t.Fatal(err)
			}
			s := NewFloat64(eps)
			feed(s, st.Items())
			if err := s.CheckInvariant(); err != nil {
				t.Fatalf("%s eps=%v: %v", name, eps, err)
			}
			oracle := rank.Float64Oracle(st.Items())
			// Check quantiles across several orders of magnitude of phi,
			// which is where the relative-error guarantee matters.
			for _, phi := range []float64{0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 1.0} {
				got, ok := s.Query(phi)
				if !ok {
					t.Fatalf("query failed")
				}
				target := rank.QuantileRank(n, phi)
				errRank := oracle.RankError(got, phi)
				allowed := eps*(1+2*eps)*float64(target) + 2
				if float64(errRank) > allowed {
					t.Errorf("%s eps=%v phi=%v: rank error %d, allowed %.1f (target rank %d)",
						name, eps, phi, errRank, allowed, target)
				}
			}
		}
	}
}

func TestLowQuantilesAreNearlyExact(t *testing.T) {
	gen := stream.NewGenerator(2)
	n := 50000
	st := gen.Shuffled(n)
	s := NewFloat64(0.1)
	feed(s, st.Items())
	oracle := rank.Float64Oracle(st.Items())
	// phi = 10/n: allowed error is about eps*10 = 1 item.
	phi := 10.0 / float64(n)
	got, _ := s.Query(phi)
	if err := oracle.RankError(got, phi); err > 3 {
		t.Errorf("low quantile error %d, want <= 3", err)
	}
}

func TestSpaceGrowsModerately(t *testing.T) {
	gen := stream.NewGenerator(3)
	n := 100000
	eps := 0.05
	s := NewFloat64(eps)
	maxStored := 0
	for _, x := range gen.Shuffled(n).Items() {
		s.Update(x)
		if s.StoredCount() > maxStored {
			maxStored = s.StoredCount()
		}
	}
	// The biased summary must store at least the lower-bound number of items
	// (Section 6.4: even offline, Ω((1/ε)·log εN)) and should stay well below
	// the stream length.
	if maxStored >= n/10 {
		t.Errorf("biased summary not compressing: %d of %d", maxStored, n)
	}
	trivial := int((1 / eps))
	if maxStored < trivial {
		t.Errorf("biased summary stores %d items, below the trivial bound %d", maxStored, trivial)
	}
}

func TestEstimateRankRelativeError(t *testing.T) {
	gen := stream.NewGenerator(4)
	n := 30000
	eps := 0.05
	st := gen.Uniform(n)
	s := NewFloat64(eps)
	feed(s, st.Items())
	oracle := rank.Float64Oracle(st.Items())
	for _, q := range []float64{0.001, 0.01, 0.1, 0.5, 0.9} {
		est := s.EstimateRank(q)
		exact := oracle.RankLE(q)
		allowed := eps*float64(exact) + 2
		if math.Abs(float64(est-exact)) > allowed {
			t.Errorf("EstimateRank(%v) = %d, exact %d, allowed ±%.1f", q, est, exact, allowed)
		}
	}
	if s.EstimateRank(-1) != 0 {
		t.Errorf("rank below minimum should be 0")
	}
}

func TestTuplesAndStoredItems(t *testing.T) {
	s := New(order.Floats[float64](), 0.1)
	feed(s, []float64{5, 2, 9, 1, 7})
	if len(s.Tuples()) != s.StoredCount() {
		t.Errorf("Tuples / StoredCount mismatch")
	}
	items := s.StoredItems()
	if !order.IsSorted(order.Floats[float64](), items) {
		t.Errorf("StoredItems not sorted")
	}
	if s.Count() != 5 {
		t.Errorf("Count = %d", s.Count())
	}
}

func TestQueryClamping(t *testing.T) {
	s := NewFloat64(0.1)
	feed(s, []float64{1, 2, 3, 4, 5})
	if v, _ := s.Query(-1); v != 1 {
		t.Errorf("phi<0 should clamp to minimum")
	}
	if v, _ := s.Query(2); v != 5 {
		t.Errorf("phi>1 should clamp to maximum")
	}
}

func TestBoundFunctions(t *testing.T) {
	if LowerBoundSize(0, 100) != 0 || LowerBoundSize(0.1, 0) != 0 {
		t.Errorf("degenerate lower bound should be 0")
	}
	if LowerBoundSize(0.3, 1000) != 0 {
		t.Errorf("lower bound with eps >= 1/16 constant should clamp to 0")
	}
	if UpperBoundSize(0, 100) != 0 || UpperBoundSize(0.1, 0) != 0 {
		t.Errorf("degenerate upper bound should be 0")
	}
	lo := LowerBoundSize(0.01, 1_000_000)
	hi := UpperBoundSize(0.01, 1_000_000)
	if lo <= 0 || hi <= lo {
		t.Errorf("bounds not ordered: lower %v upper %v", lo, hi)
	}
	if LowerBoundSize(0.01, 10_000_000) <= LowerBoundSize(0.01, 10_000) {
		t.Errorf("lower bound should grow with N")
	}
}

// Property: invariant holds and min/max are always exact for arbitrary
// streams.
func TestInvariantProperty(t *testing.T) {
	f := func(items []float64) bool {
		if len(items) == 0 {
			return true
		}
		s := NewFloat64(0.1)
		mn, mx := items[0], items[0]
		for _, x := range items {
			s.Update(x)
			if x < mn {
				mn = x
			}
			if x > mx {
				mx = x
			}
		}
		if s.CheckInvariant() != nil {
			return false
		}
		stored := s.StoredItems()
		return stored[0] == mn && stored[len(stored)-1] == mx
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
