package biased

import (
	"errors"
	"fmt"
	"unsafe"

	"quantilelb/internal/order"
)

// rankBoundsAll returns, for every tuple, its deterministic rank bounds
// [rmin_i, rmax_i] in one pass (rmin is the prefix sum of g, rmax adds Delta).
func (s *Summary[T]) rankBoundsAll() (rmins, rmaxs []int) {
	rmins = make([]int, len(s.tuples))
	rmaxs = make([]int, len(s.tuples))
	run := 0
	for i, t := range s.tuples {
		run += t.G
		rmins[i] = run
		rmaxs[i] = run + t.Delta
	}
	return rmins, rmaxs
}

// raiseEps loosens the summary to a larger relative accuracy parameter and
// refreshes the compression schedule accordingly.
func (s *Summary[T]) raiseEps(eps float64) {
	if eps <= s.eps {
		return
	}
	s.eps = eps
	every := int(1 / (2 * eps))
	if every < 1 {
		every = 1
	}
	s.compressEvery = every
}

// Merge folds another biased summary into the receiver using the MERGE
// (COMBINE) operation of the GK lineage: the two tuple lists are merged in
// sorted order and each kept item's rank bounds are recomputed as the sum of
// its own bounds and the bounds contributed by its predecessor/successor in
// the other summary. Because both inputs keep low-rank tuples nearly exact,
// the combined gaps at rank r stay within 2·eps_new·r, so the relative
// guarantee survives with eps_new = max(eps_a, eps_b) — the same COMBINE rule
// every family in this repository follows.
//
// The argument is read but never modified.
func (s *Summary[T]) Merge(other *Summary[T]) error {
	if other == nil || other.n == 0 {
		return nil
	}
	s.raiseEps(other.eps)
	if s.n == 0 {
		s.tuples = other.Tuples()
		s.n = other.n
		return nil
	}
	aRmin, aRmax := s.rankBoundsAll()
	bRmin, bRmax := other.rankBoundsAll()
	a, b := s.tuples, other.tuples
	merged := make([]Tuple[T], 0, len(a)+len(b))
	prevRmin := 0 // rmin of the previously emitted merged tuple
	i, j := 0, 0
	emit := func(v T, rmin, rmax int) {
		merged = append(merged, Tuple[T]{V: v, G: rmin - prevRmin, Delta: rmax - rmin})
		prevRmin = rmin
	}
	for i < len(a) || j < len(b) {
		takeA := j >= len(b) || (i < len(a) && s.cmp(a[i].V, b[j].V) <= 0)
		if takeA {
			// Predecessor in b is b[j-1] (all emitted), successor is b[j]; the
			// successor itself certainly sits above the emitted item, hence −1.
			rmin := aRmin[i]
			rmax := aRmax[i]
			if j > 0 {
				rmin += bRmin[j-1]
			}
			if j < len(b) {
				rmax += bRmax[j] - 1
			} else {
				rmax += other.n
			}
			emit(a[i].V, rmin, rmax)
			i++
		} else {
			rmin := bRmin[j]
			rmax := bRmax[j]
			if i > 0 {
				rmin += aRmin[i-1]
			}
			if i < len(a) {
				rmax += aRmax[i] - 1
			} else {
				rmax += s.n
			}
			emit(b[j].V, rmin, rmax)
			j++
		}
	}
	s.tuples = merged
	s.n += other.n
	// The extreme tuples are the exact minimum and maximum of the combined
	// stream; pin Delta = 0 explicitly so CheckInvariant never depends on the
	// arithmetic above deriving it.
	s.tuples[0].Delta = 0
	s.tuples[len(s.tuples)-1].Delta = 0
	s.Compress()
	return nil
}

// Restore reconstructs a biased summary from previously exported state,
// validating the structural invariants before accepting it. It is used by the
// serialization layer.
func Restore[T any](cmp order.Comparator[T], eps float64, count int, tuples []Tuple[T]) (*Summary[T], error) {
	if !(eps > 0 && eps < 1) {
		return nil, errors.New("biased: restore: eps must be in (0, 1)")
	}
	if count < 0 {
		return nil, errors.New("biased: restore: negative item count")
	}
	s := New(cmp, eps)
	s.n = count
	s.tuples = make([]Tuple[T], len(tuples))
	copy(s.tuples, tuples)
	if err := s.CheckInvariant(); err != nil {
		return nil, fmt.Errorf("biased: restore: %w", err)
	}
	return s, nil
}

// RestoreFloat64 is Restore specialized to float64 items, the form the wire
// decoder uses.
func RestoreFloat64(eps float64, count int, tuples []Tuple[float64]) (*Summary[float64], error) {
	return Restore(order.Floats[float64](), eps, count, tuples)
}

// RetainedBytes reports the heap bytes retained by the tuple array, counting
// allocated capacity (summary.Sized): for float64 items a tuple is 24 bytes.
func (s *Summary[T]) RetainedBytes() int {
	return cap(s.tuples) * int(unsafe.Sizeof(Tuple[T]{}))
}
