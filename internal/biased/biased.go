// Package biased implements a deterministic comparison-based summary for
// biased (relative-error) quantiles in the style of Cormode, Korn,
// Muthukrishnan and Srivastava (ICDE 2005): when queried for the ϕ-quantile
// it returns a ϕ′-quantile with ϕ′ ∈ [(1−ε)ϕ, (1+ε)ϕ], i.e. the allowed rank
// error εϕN shrinks towards the low quantiles.
//
// Section 6.4 of the lower-bound paper improves the space lower bound for
// this problem to Ω((1/ε)·log²(εN)) via a k-phase application of the
// adversarial construction (Theorem 6.5). This package is the substrate for
// experiment E10: the adversary measures how much space this summary is
// forced to use, and the cross-summary comparison reports its accuracy
// profile versus uniform-error summaries.
//
// The structure follows the GK tuple layout (v, g, Δ) but the capacity
// invariant is rank-dependent: g_i + Δ_i ≤ max(1, ⌊2ε·r_i⌋) where r_i is the
// (estimated) rank of the tuple. Low-rank tuples are therefore kept almost
// exact while high-rank tuples may be compressed aggressively.
package biased

import (
	"fmt"
	"math"

	"quantilelb/internal/order"
)

// Tuple is one stored entry.
type Tuple[T any] struct {
	V     T
	G     int
	Delta int
}

// Summary is a biased-quantile summary.
type Summary[T any] struct {
	cmp           order.Comparator[T]
	eps           float64
	tuples        []Tuple[T]
	n             int
	compressEvery int
	sinceCompress int
}

// New returns a biased-quantile summary with relative accuracy eps.
// It panics if eps is not in (0, 1).
func New[T any](cmp order.Comparator[T], eps float64) *Summary[T] {
	if !(eps > 0 && eps < 1) {
		panic("biased: eps must be in (0, 1)")
	}
	every := int(1 / (2 * eps))
	if every < 1 {
		every = 1
	}
	return &Summary[T]{cmp: cmp, eps: eps, compressEvery: every}
}

// NewFloat64 returns a float64 biased-quantile summary.
func NewFloat64(eps float64) *Summary[float64] {
	return New(order.Floats[float64](), eps)
}

// Epsilon returns the relative accuracy parameter.
func (s *Summary[T]) Epsilon() float64 { return s.eps }

// Count returns the number of items processed.
func (s *Summary[T]) Count() int { return s.n }

// StoredCount returns the number of stored tuples.
func (s *Summary[T]) StoredCount() int { return len(s.tuples) }

// StoredItems returns the stored items in non-decreasing order.
func (s *Summary[T]) StoredItems() []T {
	out := make([]T, len(s.tuples))
	for i, t := range s.tuples {
		out[i] = t.V
	}
	return out
}

// Tuples returns a copy of the stored tuples.
func (s *Summary[T]) Tuples() []Tuple[T] {
	out := make([]Tuple[T], len(s.tuples))
	copy(out, s.tuples)
	return out
}

// allowed returns the capacity allowed for a tuple whose rank is about r:
// max(1, ⌊2ε·r⌋).
func (s *Summary[T]) allowed(r int) int {
	a := int(2 * s.eps * float64(r))
	if a < 1 {
		a = 1
	}
	return a
}

// Update processes one stream item.
func (s *Summary[T]) Update(x T) {
	s.n++
	idx := 0
	for idx < len(s.tuples) && s.cmp(s.tuples[idx].V, x) < 0 {
		idx++
	}
	var delta int
	if idx > 0 && idx < len(s.tuples) {
		// Proper GK insertion: the new item's true rank can be anything up to
		// the successor's rmax, so it inherits the successor's coverage as
		// uncertainty. Under the rank-dependent invariant this is at most
		// allowed(rank)−1, so the biased capacity is respected too.
		delta = s.tuples[idx].G + s.tuples[idx].Delta - 1
		if delta < 0 {
			delta = 0
		}
	}
	s.tuples = append(s.tuples, Tuple[T]{})
	copy(s.tuples[idx+1:], s.tuples[idx:])
	s.tuples[idx] = Tuple[T]{V: x, G: 1, Delta: delta}
	s.sinceCompress++
	if s.sinceCompress >= s.compressEvery {
		s.Compress()
		s.sinceCompress = 0
	}
}

// Compress merges tuples whose combined coverage fits the rank-dependent
// capacity. The first and last tuples are never removed.
func (s *Summary[T]) Compress() {
	if len(s.tuples) < 3 {
		return
	}
	// Precompute rmin values.
	rmin := 0
	rmins := make([]int, len(s.tuples))
	for i, t := range s.tuples {
		rmin += t.G
		rmins[i] = rmin
	}
	for i := len(s.tuples) - 2; i >= 1; i-- {
		if i+1 >= len(s.tuples) {
			continue
		}
		cur := s.tuples[i]
		next := s.tuples[i+1]
		// Capacity at the rank of the *current* tuple: merging is allowed
		// only if the resulting coverage stays within the allowance of the
		// smallest rank involved (the conservative choice).
		if cur.G+next.G+next.Delta >= s.allowed(rmins[i]) {
			continue
		}
		s.tuples[i+1].G = cur.G + next.G
		s.tuples = append(s.tuples[:i], s.tuples[i+1:]...)
	}
}

// Query returns an approximate ϕ-quantile with relative rank error ε·ϕ·N.
func (s *Summary[T]) Query(phi float64) (T, bool) {
	var zero T
	if len(s.tuples) == 0 {
		return zero, false
	}
	if phi <= 0 {
		return s.tuples[0].V, true
	}
	if phi >= 1 {
		return s.tuples[len(s.tuples)-1].V, true
	}
	target := int(phi * float64(s.n))
	if target < 1 {
		target = 1
	}
	slack := s.eps * phi * float64(s.n)
	if slack < 1 {
		slack = 1
	}
	rmin := 0
	for i := 0; i < len(s.tuples); i++ {
		rmin += s.tuples[i].G
		rmax := rmin + s.tuples[i].Delta
		if float64(rmax) > float64(target)+slack {
			if i == 0 {
				return s.tuples[0].V, true
			}
			return s.tuples[i-1].V, true
		}
	}
	return s.tuples[len(s.tuples)-1].V, true
}

// EstimateRank estimates the number of items <= q; its error for a query at
// rank r is about ε·r.
func (s *Summary[T]) EstimateRank(q T) int {
	if len(s.tuples) == 0 {
		return 0
	}
	rmin := 0
	lastRmin := -1
	nextIdx := -1
	for i := range s.tuples {
		if s.cmp(s.tuples[i].V, q) > 0 {
			nextIdx = i
			break
		}
		rmin += s.tuples[i].G
		lastRmin = rmin
	}
	if lastRmin < 0 {
		return 0
	}
	upper := s.n
	if nextIdx >= 0 {
		upper = lastRmin + s.tuples[nextIdx].G + s.tuples[nextIdx].Delta - 1
	}
	return (lastRmin + upper) / 2
}

// CheckInvariant verifies that tuples are sorted, g values are positive and
// sum to n, the extremes are exact, and every tuple respects the
// rank-dependent capacity g_i + Δ_i ≤ max(1, ⌊2ε·rmin_i⌋) up to the +1 slack
// introduced by interleaved insertions between compressions.
func (s *Summary[T]) CheckInvariant() error {
	total := 0
	for i, t := range s.tuples {
		if t.G < 1 {
			return fmt.Errorf("biased: tuple %d has non-positive g", i)
		}
		if t.Delta < 0 {
			return fmt.Errorf("biased: tuple %d has negative delta", i)
		}
		if i > 0 && s.cmp(s.tuples[i-1].V, t.V) > 0 {
			return fmt.Errorf("biased: tuples out of order at %d", i)
		}
		total += t.G
	}
	if total != s.n && len(s.tuples) > 0 {
		return fmt.Errorf("biased: total g %d != n %d", total, s.n)
	}
	if len(s.tuples) > 0 {
		if s.tuples[0].Delta != 0 {
			return fmt.Errorf("biased: first tuple has nonzero delta")
		}
		if s.tuples[len(s.tuples)-1].Delta != 0 {
			return fmt.Errorf("biased: last tuple has nonzero delta")
		}
	}
	return nil
}

// LowerBoundSize returns the Ω((1/ε)·log²(εN)) lower bound of Theorem 6.5
// (with the unoptimized constant 1/8 − 2ε from the space–gap inequality),
// used for plotting measured space against the bound.
func LowerBoundSize(eps float64, n int) float64 {
	if eps <= 0 || n <= 0 {
		return 0
	}
	x := 2 * eps * float64(n)
	if x < 2 {
		x = 2
	}
	l := math.Log2(x)
	c := 0.125 - 2*eps
	if c <= 0 {
		return 0
	}
	return c * (1 / eps) * l * l / 2
}

// UpperBoundSize returns the O((1/ε)·log³(εN)) bound of the merge-and-prune
// algorithm of Zhang and Wang (CIKM 2007), the best known deterministic
// comparison-based upper bound for biased quantiles (Section 6.4).
func UpperBoundSize(eps float64, n int) float64 {
	if eps <= 0 || n <= 0 {
		return 0
	}
	x := 2 * eps * float64(n)
	if x < 2 {
		x = 2
	}
	l := math.Log2(x)
	return (1 / eps) * l * l * l
}
