package qdigest

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	for _, c := range []struct {
		bits uint
		k    int
	}{{0, 10}, {63, 10}, {16, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bits=%d k=%d should panic", c.bits, c.k)
				}
			}()
			New(c.bits, c.k)
		}()
	}
	for _, eps := range []float64{0, 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("eps=%v should panic", eps)
				}
			}()
			NewForEpsilon(16, eps)
		}()
	}
}

func TestUniverseBounds(t *testing.T) {
	d := New(8, 10)
	if d.UniverseSize() != 256 {
		t.Errorf("UniverseSize = %d", d.UniverseSize())
	}
	defer func() {
		if recover() == nil {
			t.Errorf("out-of-universe value should panic")
		}
	}()
	d.Update(256)
}

func TestEmpty(t *testing.T) {
	d := New(8, 10)
	if _, ok := d.Query(0.5); ok {
		t.Errorf("query on empty digest should fail")
	}
	if d.EstimateRank(10) != 0 {
		t.Errorf("rank on empty digest should be 0")
	}
	if err := d.CheckInvariant(); err != nil {
		t.Errorf("invariant on empty: %v", err)
	}
	d.UpdateWeighted(3, 0) // no-op
	if d.Count() != 0 {
		t.Errorf("zero-weight update should be ignored")
	}
}

func TestNodeRange(t *testing.T) {
	d := New(3, 4) // universe 0..7
	lo, hi := d.nodeRange(1)
	if lo != 0 || hi != 7 {
		t.Errorf("root range = [%d,%d]", lo, hi)
	}
	lo, hi = d.nodeRange(2)
	if lo != 0 || hi != 3 {
		t.Errorf("left child range = [%d,%d]", lo, hi)
	}
	lo, hi = d.nodeRange(3)
	if lo != 4 || hi != 7 {
		t.Errorf("right child range = [%d,%d]", lo, hi)
	}
	lo, hi = d.nodeRange(d.leaf(5))
	if lo != 5 || hi != 5 {
		t.Errorf("leaf range = [%d,%d]", lo, hi)
	}
}

func TestExactOnSmallStream(t *testing.T) {
	d := New(10, 1000)
	for v := uint64(1); v <= 100; v++ {
		d.Update(v)
	}
	if d.Count() != 100 {
		t.Fatalf("Count = %d", d.Count())
	}
	if got, _ := d.Query(0.5); got < 48 || got > 52 {
		t.Errorf("median = %d, want about 50", got)
	}
	if got := d.EstimateRank(30); got < 28 || got > 32 {
		t.Errorf("EstimateRank(30) = %d", got)
	}
}

func TestAccuracyAndCompression(t *testing.T) {
	bits := uint(16)
	eps := 0.02
	d := NewForEpsilon(bits, eps)
	rng := rand.New(rand.NewSource(1))
	n := 100000
	values := make([]uint64, n)
	for i := range values {
		values[i] = uint64(rng.Intn(1 << bits))
		d.Update(values[i])
	}
	d.Compress()
	if err := d.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	slack := eps * float64(n)
	for i := 1; i <= 20; i++ {
		phi := float64(i) / 20
		got, ok := d.Query(phi)
		if !ok {
			t.Fatalf("query failed")
		}
		// Rank of the returned value.
		rank := sort.Search(len(values), func(j int) bool { return values[j] > got })
		target := int(phi * float64(n))
		if math.Abs(float64(rank-target)) > slack+1 {
			t.Errorf("phi=%v: returned %d with rank %d, target %d, slack %v", phi, got, rank, target, slack)
		}
	}
	// Space must be far below n and within the 3k bound (with slack for the
	// lazily compressed fringe).
	if d.StoredCount() > 4*d.TheoreticalSize() {
		t.Errorf("stored %d nodes, theoretical bound %d", d.StoredCount(), d.TheoreticalSize())
	}
	if d.StoredCount() >= n/10 {
		t.Errorf("digest not compressing: %d nodes", d.StoredCount())
	}
}

func TestEstimateRankAccuracy(t *testing.T) {
	bits := uint(14)
	eps := 0.02
	d := NewForEpsilon(bits, eps)
	rng := rand.New(rand.NewSource(2))
	n := 50000
	values := make([]uint64, n)
	for i := range values {
		values[i] = uint64(rng.Intn(1 << bits))
		d.Update(values[i])
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	for _, q := range []uint64{100, 1000, 8000, 16000} {
		exact := sort.Search(len(values), func(j int) bool { return values[j] > q })
		got := d.EstimateRank(q)
		if math.Abs(float64(got-exact)) > 2*eps*float64(n) {
			t.Errorf("EstimateRank(%d) = %d, exact %d", q, got, exact)
		}
	}
}

func TestWeightedUpdates(t *testing.T) {
	d := New(8, 100)
	d.UpdateWeighted(10, 500)
	d.UpdateWeighted(200, 500)
	if d.Count() != 1000 {
		t.Fatalf("Count = %d", d.Count())
	}
	if got, _ := d.Query(0.25); got > 100 {
		t.Errorf("low quantile should come from the low value, got %d", got)
	}
	if got, _ := d.Query(0.9); got < 100 {
		t.Errorf("high quantile should come from the high value, got %d", got)
	}
}

func TestMerge(t *testing.T) {
	a := New(12, 500)
	b := New(12, 500)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20000; i++ {
		a.Update(uint64(rng.Intn(2048)))        // low half
		b.Update(uint64(2048 + rng.Intn(2048))) // high half
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 40000 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if err := a.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	// Median should be near the boundary between the halves.
	if got, _ := a.Query(0.5); got < 1800 || got > 2300 {
		t.Errorf("median after merge = %d, want near 2048", got)
	}
	// Mismatched universes must error.
	c := New(8, 500)
	if err := a.Merge(c); err == nil {
		t.Errorf("merging different universes should fail")
	}
	if err := a.Merge(nil); err != nil {
		t.Errorf("merging nil should be a no-op")
	}
}

func TestCompressionFactorAccessor(t *testing.T) {
	d := New(10, 77)
	if d.CompressionFactor() != 77 {
		t.Errorf("CompressionFactor = %d", d.CompressionFactor())
	}
}

// Property: counts are conserved (invariant holds) under arbitrary updates.
func TestCountConservationProperty(t *testing.T) {
	f := func(values []uint16) bool {
		d := New(16, 50)
		for _, v := range values {
			d.Update(uint64(v))
		}
		d.Compress()
		return d.CheckInvariant() == nil && d.Count() == len(values)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the returned quantile is always inside the universe and its
// estimated rank is monotone in phi.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(values []uint16, seed int64) bool {
		if len(values) == 0 {
			return true
		}
		d := New(16, 20)
		for _, v := range values {
			d.Update(uint64(v))
		}
		prev := uint64(0)
		for i := 0; i <= 10; i++ {
			phi := float64(i) / 10
			got, ok := d.Query(phi)
			if !ok || got >= d.UniverseSize() {
				return false
			}
			if i > 0 && got < prev {
				return false
			}
			prev = got
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
