// Package qdigest implements the q-digest quantile summary of Shrivastava,
// Buragohain, Agrawal and Suri (SenSys 2004) for a bounded integer universe.
//
// Section 2 of the lower-bound paper singles out q-digest as a structure that
// is *not* comparison-based: it builds a binary tree over the universe
// [0, 2^bits) and may return an item that never occurred in the stream, so
// the Ω((1/ε)·log εN) lower bound does not apply to it. Its space is
// O((1/ε)·log |U|) words, which for N ≫ |U| can be far below the
// comparison-based bound. The experiments include it as the contrast point:
// the lower bound is a statement about a model, not about all summaries.
//
// The digest stores counts on nodes of the implicit complete binary tree over
// the universe (heap numbering: root 1, children 2i and 2i+1, leaves
// 2^bits + v). The digest property enforced by Compress is that every
// non-root node with a parent of small total count is merged upward, keeping
// the number of stored nodes at O(k) for compression factor k while ranks are
// preserved to within (log |U|)·n/k.
package qdigest

import (
	"fmt"
	"math"
	"sort"
)

// Digest is a q-digest over the universe [0, 2^bits).
type Digest struct {
	bits   uint
	k      int // compression factor
	n      int64
	counts map[uint64]int64
	// pending counts updates since the last compression.
	sinceCompress int64
}

// New returns a digest over [0, 2^bits) with compression factor k. Larger k
// means more space and lower error: rank error is at most bits·n/k.
// It panics if bits is not in [1, 62] or k < 1.
func New(bits uint, k int) *Digest {
	if bits < 1 || bits > 62 {
		panic("qdigest: bits must be in [1, 62]")
	}
	if k < 1 {
		panic("qdigest: k must be positive")
	}
	return &Digest{bits: bits, k: k, counts: make(map[uint64]int64)}
}

// NewForEpsilon returns a digest over [0, 2^bits) with compression factor
// chosen so that the rank error is at most εn: k = ⌈bits/ε⌉.
func NewForEpsilon(bits uint, eps float64) *Digest {
	if eps <= 0 || eps >= 1 {
		panic("qdigest: eps must be in (0, 1)")
	}
	return New(bits, int(math.Ceil(float64(bits)/eps)))
}

// UniverseSize returns |U| = 2^bits.
func (d *Digest) UniverseSize() uint64 { return 1 << d.bits }

// CompressionFactor returns k.
func (d *Digest) CompressionFactor() int { return d.k }

// Count returns the number of items processed.
func (d *Digest) Count() int { return int(d.n) }

// StoredCount returns the number of tree nodes with a non-zero count, the
// space measure comparable to the item counts of comparison-based summaries.
func (d *Digest) StoredCount() int { return len(d.counts) }

// leaf returns the node id of the leaf for value v.
func (d *Digest) leaf(v uint64) uint64 { return (1 << d.bits) + v }

// nodeRange returns the [lo, hi] value range covered by node id.
func (d *Digest) nodeRange(id uint64) (lo, hi uint64) {
	level := uint(bitsLen(id)) - 1 // depth of the node; root (id 1) is level 0
	span := d.bits - level
	base := (id - (1 << level)) << span
	return base, base + (1<<span - 1)
}

func bitsLen(x uint64) int {
	n := 0
	for x > 0 {
		n++
		x >>= 1
	}
	return n
}

// Update adds one occurrence of value v. It panics if v is outside the
// universe.
func (d *Digest) Update(v uint64) {
	d.UpdateWeighted(v, 1)
}

// UpdateWeighted adds weight occurrences of value v.
func (d *Digest) UpdateWeighted(v uint64, weight int64) {
	if v >= d.UniverseSize() {
		panic(fmt.Sprintf("qdigest: value %d outside universe [0, %d)", v, d.UniverseSize()))
	}
	if weight <= 0 {
		return
	}
	d.counts[d.leaf(v)] += weight
	d.n += weight
	d.sinceCompress += weight
	if d.sinceCompress >= int64(d.k) {
		d.Compress()
		d.sinceCompress = 0
	}
}

// threshold returns ⌊n/k⌋, the per-node count threshold of the digest
// property.
func (d *Digest) threshold() int64 { return d.n / int64(d.k) }

// Compress restores the q-digest property: any node whose count, together
// with its sibling's and parent's counts, is below ⌊n/k⌋ is merged into its
// parent. Nodes are processed bottom-up.
func (d *Digest) Compress() {
	if len(d.counts) == 0 {
		return
	}
	thr := d.threshold()
	if thr < 1 {
		return
	}
	// Collect node ids grouped by depth, deepest first.
	ids := make([]uint64, 0, len(d.counts))
	for id := range d.counts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] > ids[j] })
	for _, id := range ids {
		if id <= 1 {
			continue // root has no parent
		}
		c, ok := d.counts[id]
		if !ok {
			continue // already merged
		}
		sibling := id ^ 1
		parent := id >> 1
		total := c + d.counts[sibling] + d.counts[parent]
		if total < thr {
			d.counts[parent] = total
			delete(d.counts, id)
			delete(d.counts, sibling)
		}
	}
}

// Query returns an approximate ϕ-quantile: a universe value v such that the
// number of stream items ≤ v is approximately ⌊ϕN⌋, within (log |U|)·n/k.
func (d *Digest) Query(phi float64) (uint64, bool) {
	if d.n == 0 {
		return 0, false
	}
	if phi < 0 {
		phi = 0
	}
	if phi > 1 {
		phi = 1
	}
	target := int64(phi * float64(d.n))
	if target < 1 {
		target = 1
	}
	nodes := d.sortedNodes()
	var cum int64
	for _, nd := range nodes {
		cum += d.counts[nd.id]
		if cum >= target {
			return nd.hi, true
		}
	}
	last := nodes[len(nodes)-1]
	return last.hi, true
}

// EstimateRank estimates the number of items less than or equal to q.
func (d *Digest) EstimateRank(q uint64) int {
	if d.n == 0 {
		return 0
	}
	var est int64
	for id, c := range d.counts {
		lo, hi := d.nodeRange(id)
		switch {
		case hi <= q:
			est += c
		case lo > q:
			// node entirely above q contributes nothing
		default:
			// node straddles q: attribute a proportional share
			width := hi - lo + 1
			covered := q - lo + 1
			est += c * int64(covered) / int64(width)
		}
	}
	return int(est)
}

type nodeInfo struct {
	id     uint64
	lo, hi uint64
	depth  int
}

// sortedNodes returns the stored nodes in the post-order used for quantile
// queries: increasing upper bound, deeper nodes first on ties.
func (d *Digest) sortedNodes() []nodeInfo {
	nodes := make([]nodeInfo, 0, len(d.counts))
	for id := range d.counts {
		lo, hi := d.nodeRange(id)
		nodes = append(nodes, nodeInfo{id: id, lo: lo, hi: hi, depth: bitsLen(id)})
	}
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].hi != nodes[j].hi {
			return nodes[i].hi < nodes[j].hi
		}
		return nodes[i].depth > nodes[j].depth
	})
	return nodes
}

// TheoreticalSize returns the 3k bound on the number of stored nodes from the
// q-digest paper.
func (d *Digest) TheoreticalSize() int { return 3 * d.k }

// CheckInvariant verifies structural invariants: all node ids are valid for
// the universe, counts are positive, and counts sum to n.
func (d *Digest) CheckInvariant() error {
	var total int64
	maxID := uint64(1) << (d.bits + 1)
	for id, c := range d.counts {
		if id < 1 || id >= maxID {
			return fmt.Errorf("qdigest: invalid node id %d", id)
		}
		if c <= 0 {
			return fmt.Errorf("qdigest: node %d has non-positive count %d", id, c)
		}
		total += c
	}
	if total != d.n {
		return fmt.Errorf("qdigest: counts sum to %d, n is %d", total, d.n)
	}
	return nil
}

// Merge folds another digest over the same universe and compression factor
// into the receiver (q-digests are mergeable by adding node counts).
func (d *Digest) Merge(other *Digest) error {
	if other == nil {
		return nil
	}
	if other.bits != d.bits {
		return fmt.Errorf("qdigest: universe mismatch (%d vs %d bits)", d.bits, other.bits)
	}
	if other.n == 0 {
		return nil
	}
	for id, c := range other.counts {
		d.counts[id] += c
	}
	d.n += other.n
	d.Compress()
	return nil
}
