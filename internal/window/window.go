// Package window provides approximate quantiles over a sliding window of the
// most recent W stream items.
//
// The sliding-window model is one of the settings surveyed in the
// related-work discussion of the lower-bound paper (Greenwald & Khanna's
// survey chapter, cited as [7]). This implementation uses the standard
// block/bucket reduction: the window is covered by ⌈W/B⌉ + 1 blocks of B
// items each; every block carries its own ε′-accurate summary; expired blocks
// are dropped whole. Queries merge the weighted stored items of the live
// blocks. The oldest (partially expired) block contributes up to B items of
// slack, so the overall rank error is at most ε′·W + B; choosing
// B = ⌊εW/2⌋ and ε′ = ε/2 gives the usual ε-approximate sliding-window
// guarantee with O((1/ε)·(1/ε + log εW)) stored items.
package window

import (
	"fmt"
	"math"
	"sort"

	"quantilelb/internal/gk"
	"quantilelb/internal/order"
)

// Summary maintains ε-approximate quantiles over the last W items.
type Summary[T any] struct {
	cmp       order.Comparator[T]
	eps       float64
	windowLen int
	blockLen  int

	n      int // total items ever seen
	blocks []*block[T]
}

type block[T any] struct {
	start   int // index (0-based) of the first item in the block
	count   int
	summary *gk.Summary[T]
}

// New returns a sliding-window summary with accuracy eps over a window of
// windowLen items. It panics if eps is not in (0, 1) or windowLen < 2.
func New[T any](cmp order.Comparator[T], eps float64, windowLen int) *Summary[T] {
	if !(eps > 0 && eps < 1) {
		panic("window: eps must be in (0, 1)")
	}
	if windowLen < 2 {
		panic("window: window length must be at least 2")
	}
	blockLen := int(eps * float64(windowLen) / 2)
	if blockLen < 1 {
		blockLen = 1
	}
	return &Summary[T]{
		cmp:       cmp,
		eps:       eps,
		windowLen: windowLen,
		blockLen:  blockLen,
	}
}

// NewFloat64 returns a float64 sliding-window summary.
func NewFloat64(eps float64, windowLen int) *Summary[float64] {
	return New(order.Floats[float64](), eps, windowLen)
}

// Epsilon returns the accuracy parameter.
func (s *Summary[T]) Epsilon() float64 { return s.eps }

// WindowLen returns the configured window length.
func (s *Summary[T]) WindowLen() int { return s.windowLen }

// BlockLen returns the derived block length.
func (s *Summary[T]) BlockLen() int { return s.blockLen }

// TotalSeen returns the number of items processed since creation.
func (s *Summary[T]) TotalSeen() int { return s.n }

// Count returns the number of items currently inside the window.
func (s *Summary[T]) Count() int {
	if s.n < s.windowLen {
		return s.n
	}
	return s.windowLen
}

// Update processes one stream item.
func (s *Summary[T]) Update(x T) {
	if len(s.blocks) == 0 || s.blocks[len(s.blocks)-1].count >= s.blockLen {
		s.blocks = append(s.blocks, &block[T]{
			start:   s.n,
			summary: gk.New(s.cmp, s.eps/2),
		})
	}
	b := s.blocks[len(s.blocks)-1]
	b.summary.Update(x)
	b.count++
	s.n++
	s.expire()
}

// expire drops blocks that have fully left the window.
func (s *Summary[T]) expire() {
	windowStart := s.n - s.windowLen
	keep := 0
	for keep < len(s.blocks) && s.blocks[keep].start+s.blocks[keep].count <= windowStart {
		keep++
	}
	if keep > 0 {
		s.blocks = append([]*block[T]{}, s.blocks[keep:]...)
	}
}

// StoredCount returns the total number of items retained across all live
// block summaries.
func (s *Summary[T]) StoredCount() int {
	total := 0
	for _, b := range s.blocks {
		total += b.summary.StoredCount()
	}
	return total
}

// StoredItems returns the retained items of all live blocks, sorted.
func (s *Summary[T]) StoredItems() []T {
	var out []T
	for _, b := range s.blocks {
		out = append(out, b.summary.StoredItems()...)
	}
	order.Sort(s.cmp, out)
	return out
}

// Blocks returns the number of live blocks.
func (s *Summary[T]) Blocks() int { return len(s.blocks) }

// weighted gathers (item, weight) pairs from every live block summary, where
// an item's weight is the g value of its tuple (so the weights of a block sum
// to the block's item count).
func (s *Summary[T]) weighted() ([]T, []int, int) {
	var items []T
	var weights []int
	total := 0
	for _, b := range s.blocks {
		for _, t := range b.summary.Tuples() {
			items = append(items, t.V)
			weights = append(weights, t.G)
			total += t.G
		}
	}
	idx := make([]int, len(items))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, c int) bool { return s.cmp(items[idx[a]], items[idx[c]]) < 0 })
	sortedItems := make([]T, len(items))
	sortedWeights := make([]int, len(items))
	for i, j := range idx {
		sortedItems[i] = items[j]
		sortedWeights[i] = weights[j]
	}
	return sortedItems, sortedWeights, total
}

// Query returns an approximate ϕ-quantile of the items currently in the
// window. The rank error is at most ε·W once the window is full (and ε·n
// before that, up to the partial-block slack).
func (s *Summary[T]) Query(phi float64) (T, bool) {
	var zero T
	if s.n == 0 {
		return zero, false
	}
	items, weights, total := s.weighted()
	if total == 0 {
		return zero, false
	}
	if phi < 0 {
		phi = 0
	}
	if phi > 1 {
		phi = 1
	}
	target := int(math.Ceil(phi * float64(total)))
	if target < 1 {
		target = 1
	}
	cum := 0
	for i, x := range items {
		cum += weights[i]
		if cum >= target {
			return x, true
		}
	}
	return items[len(items)-1], true
}

// EstimateRank estimates how many items currently in the window are less than
// or equal to q.
func (s *Summary[T]) EstimateRank(q T) int {
	if s.n == 0 {
		return 0
	}
	est := 0
	for _, b := range s.blocks {
		est += b.summary.EstimateRank(q)
	}
	// The oldest block may be partially expired; scale its contribution.
	if len(s.blocks) > 0 {
		oldest := s.blocks[0]
		windowStart := s.n - s.windowLen
		if windowStart > oldest.start {
			expired := windowStart - oldest.start
			blockEst := oldest.summary.EstimateRank(q)
			// Remove the expected share of expired items.
			est -= int(float64(blockEst) * float64(expired) / float64(oldest.count))
		}
	}
	if est < 0 {
		est = 0
	}
	if est > s.Count() {
		est = s.Count()
	}
	return est
}

// BlockState is the exported state of one live block, used by the
// serialization layer (internal/encoding) to round-trip a sliding-window
// summary. Summary is the block's own GK summary (built with accuracy eps/2);
// callers must not mutate it.
type BlockState[T any] struct {
	// Start is the 0-based stream index of the block's first item.
	Start int
	// Count is the number of items the block ingested.
	Count int
	// Summary is the block's ε/2-accurate GK summary over those items.
	Summary *gk.Summary[T]
}

// ExportBlocks returns the state of every live block in stream order. The
// returned block summaries are shared with the receiver, not copied; treat
// them as read-only.
func (s *Summary[T]) ExportBlocks() []BlockState[T] {
	out := make([]BlockState[T], len(s.blocks))
	for i, b := range s.blocks {
		out[i] = BlockState[T]{Start: b.start, Count: b.count, Summary: b.summary}
	}
	return out
}

// Restore reconstructs a sliding-window summary from previously exported
// state (accuracy, window length, total items seen, and the live blocks),
// validating the structural invariants before accepting it. Block summaries
// are deep-copied, so restoring from a live summary's ExportBlocks never
// shares mutable GK state with the original; decoders that own freshly
// built blocks use RestoreOwned to skip the copy.
func Restore[T any](cmp order.Comparator[T], eps float64, windowLen, totalSeen int, blocks []BlockState[T]) (*Summary[T], error) {
	copied := make([]BlockState[T], len(blocks))
	for i, b := range blocks {
		if b.Summary == nil {
			return nil, fmt.Errorf("window: restore: block %d has no summary", i)
		}
		sum, err := gk.Restore(cmp, b.Summary.Epsilon(), b.Summary.PolicyUsed(), b.Summary.Count(), b.Summary.Tuples())
		if err != nil {
			return nil, fmt.Errorf("window: restore: block %d: %w", i, err)
		}
		copied[i] = BlockState[T]{Start: b.Start, Count: b.Count, Summary: sum}
	}
	return RestoreOwned(cmp, eps, windowLen, totalSeen, copied)
}

// RestoreOwned is Restore without the defensive deep copy: the caller
// transfers ownership of the block summaries and must not touch them
// afterwards. The serialization decoder uses it — its blocks are freshly
// built from the payload, so copying them again would only double the
// restore cost.
func RestoreOwned[T any](cmp order.Comparator[T], eps float64, windowLen, totalSeen int, blocks []BlockState[T]) (*Summary[T], error) {
	if !(eps > 0 && eps < 1) {
		return nil, fmt.Errorf("window: restore: eps %v out of (0, 1)", eps)
	}
	if windowLen < 2 {
		return nil, fmt.Errorf("window: restore: window length %d below 2", windowLen)
	}
	if totalSeen < 0 {
		return nil, fmt.Errorf("window: restore: negative item count")
	}
	if totalSeen > 0 && len(blocks) == 0 {
		return nil, fmt.Errorf("window: restore: %d items seen but no live blocks", totalSeen)
	}
	s := New(cmp, eps, windowLen)
	s.n = totalSeen
	s.blocks = make([]*block[T], len(blocks))
	for i, b := range blocks {
		if b.Summary == nil {
			return nil, fmt.Errorf("window: restore: block %d has no summary", i)
		}
		s.blocks[i] = &block[T]{start: b.Start, count: b.Count, summary: b.Summary}
	}
	if err := s.CheckInvariant(); err != nil {
		return nil, fmt.Errorf("window: restore: %w", err)
	}
	return s, nil
}

// CheckInvariant validates structural invariants: block boundaries are
// contiguous, block counts are within the block length, and no fully expired
// block is retained.
func (s *Summary[T]) CheckInvariant() error {
	windowStart := s.n - s.windowLen
	prevEnd := -1
	for i, b := range s.blocks {
		if b.count < 1 || b.count > s.blockLen {
			return fmt.Errorf("window: block %d has count %d (block length %d)", i, b.count, s.blockLen)
		}
		if prevEnd >= 0 && b.start != prevEnd {
			return fmt.Errorf("window: block %d not contiguous (start %d, previous end %d)", i, b.start, prevEnd)
		}
		if b.start+b.count <= windowStart {
			return fmt.Errorf("window: block %d fully expired but retained", i)
		}
		if b.summary.Count() != b.count {
			return fmt.Errorf("window: block %d summary count %d != block count %d", i, b.summary.Count(), b.count)
		}
		prevEnd = b.start + b.count
	}
	if prevEnd >= 0 && prevEnd != s.n {
		return fmt.Errorf("window: last block ends at %d, expected %d", prevEnd, s.n)
	}
	return nil
}
