package window

// RetainedBytes reports the heap bytes retained across the per-block GK
// summaries (summary.Sized): the sum of each block's tuple storage plus the
// fixed block bookkeeping.
func (s *Summary[T]) RetainedBytes() int {
	total := 0
	for _, b := range s.blocks {
		total += b.summary.RetainedBytes() + 24 // start, count, pointer
	}
	return total
}
