package window

import (
	"testing"
	"testing/quick"

	"quantilelb/internal/order"
	"quantilelb/internal/rank"
	"quantilelb/internal/stream"
)

func TestNewValidation(t *testing.T) {
	for _, c := range []struct {
		eps float64
		w   int
	}{{0, 100}, {1, 100}, {0.1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("eps=%v w=%d should panic", c.eps, c.w)
				}
			}()
			NewFloat64(c.eps, c.w)
		}()
	}
}

func TestEmpty(t *testing.T) {
	s := NewFloat64(0.1, 100)
	if _, ok := s.Query(0.5); ok {
		t.Errorf("query on empty should fail")
	}
	if s.EstimateRank(1) != 0 {
		t.Errorf("rank on empty should be 0")
	}
	if s.Count() != 0 || s.StoredCount() != 0 || s.Blocks() != 0 {
		t.Errorf("empty summary has nonzero counters")
	}
	if err := s.CheckInvariant(); err != nil {
		t.Errorf("invariant on empty: %v", err)
	}
}

func TestAccessors(t *testing.T) {
	s := NewFloat64(0.05, 1000)
	if s.Epsilon() != 0.05 || s.WindowLen() != 1000 {
		t.Errorf("accessors wrong")
	}
	if s.BlockLen() != 25 {
		t.Errorf("BlockLen = %d, want 25 (= eps*W/2)", s.BlockLen())
	}
	// Tiny windows clamp the block length to 1.
	if NewFloat64(0.1, 2).BlockLen() != 1 {
		t.Errorf("tiny window should clamp block length to 1")
	}
}

func TestCountTracksWindow(t *testing.T) {
	s := NewFloat64(0.1, 100)
	for i := 0; i < 50; i++ {
		s.Update(float64(i))
	}
	if s.Count() != 50 || s.TotalSeen() != 50 {
		t.Errorf("Count=%d TotalSeen=%d, want 50/50", s.Count(), s.TotalSeen())
	}
	for i := 50; i < 1000; i++ {
		s.Update(float64(i))
	}
	if s.Count() != 100 {
		t.Errorf("Count = %d, want window length 100", s.Count())
	}
	if s.TotalSeen() != 1000 {
		t.Errorf("TotalSeen = %d", s.TotalSeen())
	}
}

func TestAccuracyWithinWindow(t *testing.T) {
	eps := 0.05
	windowLen := 10000
	s := NewFloat64(eps, windowLen)
	gen := stream.NewGenerator(1)
	st := gen.Shuffled(50000)
	for i, x := range st.Items() {
		s.Update(x)
		if i%9973 == 0 {
			if err := s.CheckInvariant(); err != nil {
				t.Fatalf("after %d items: %v", i+1, err)
			}
		}
	}
	if err := s.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	// Ground truth: the last windowLen items of the stream.
	items := st.Items()
	windowItems := items[len(items)-windowLen:]
	oracle := rank.Float64Oracle(windowItems)
	for i := 0; i <= 50; i++ {
		phi := float64(i) / 50
		got, ok := s.Query(phi)
		if !ok {
			t.Fatalf("query failed")
		}
		// Allowance: eps*W plus one block of slack from the partially
		// expired oldest block.
		allowed := eps*float64(windowLen) + float64(s.BlockLen()) + 1
		if e := oracle.RankError(got, phi); float64(e) > allowed {
			t.Errorf("phi=%v: rank error %d > %v", phi, e, allowed)
		}
	}
}

func TestOldItemsExpire(t *testing.T) {
	s := NewFloat64(0.05, 1000)
	// First 10000 items are huge, the final 1000 (the window) are 1..1000.
	for i := 0; i < 10000; i++ {
		s.Update(1e9 + float64(i))
	}
	for i := 1; i <= 1000; i++ {
		s.Update(float64(i))
	}
	med, ok := s.Query(0.5)
	if !ok {
		t.Fatal("query failed")
	}
	if med > 1000 {
		t.Fatalf("median %v reflects expired items", med)
	}
	if med < 400 || med > 600 {
		t.Errorf("median of the window should be about 500, got %v", med)
	}
	if r := s.EstimateRank(500); r < 400 || r > 600 {
		t.Errorf("EstimateRank(500) = %d, want about 500", r)
	}
	if r := s.EstimateRank(1e12); r != s.Count() {
		t.Errorf("rank above everything should be the window count, got %d", r)
	}
}

func TestSpaceStaysBounded(t *testing.T) {
	eps := 0.02
	windowLen := 20000
	s := NewFloat64(eps, windowLen)
	gen := stream.NewGenerator(2)
	maxStored := 0
	maxBlocks := 0
	for _, x := range gen.Uniform(100000).Items() {
		s.Update(x)
		if s.StoredCount() > maxStored {
			maxStored = s.StoredCount()
		}
		if s.Blocks() > maxBlocks {
			maxBlocks = s.Blocks()
		}
	}
	wantBlocks := windowLen/s.BlockLen() + 2
	if maxBlocks > wantBlocks {
		t.Errorf("blocks grew to %d, want at most %d", maxBlocks, wantBlocks)
	}
	if maxStored >= windowLen/2 {
		t.Errorf("sliding-window summary stores %d items for a window of %d", maxStored, windowLen)
	}
	items := s.StoredItems()
	if len(items) != s.StoredCount() {
		t.Errorf("StoredItems / StoredCount mismatch")
	}
	for i := 1; i < len(items); i++ {
		if items[i-1] > items[i] {
			t.Fatalf("StoredItems not sorted")
		}
	}
}

func TestBeforeWindowFullMatchesPlainSummary(t *testing.T) {
	eps := 0.05
	s := NewFloat64(eps, 100000)
	gen := stream.NewGenerator(3)
	st := gen.Uniform(5000)
	for _, x := range st.Items() {
		s.Update(x)
	}
	oracle := rank.Float64Oracle(st.Items())
	for _, phi := range []float64{0.1, 0.5, 0.9} {
		got, _ := s.Query(phi)
		if e := oracle.RankError(got, phi); float64(e) > eps*float64(st.Len())+float64(s.BlockLen()) {
			t.Errorf("phi=%v error %d", phi, e)
		}
	}
}

// TestWorkloadMatrix is the window's workload-matrix coverage: for every
// generator in internal/stream, the summary is checked against the exact
// oracle over the window's true content at several checkpoints — before the
// window fills, right as it fills, and deep into steady-state expiry — and
// the structural invariant must hold at every checkpoint.
func TestWorkloadMatrix(t *testing.T) {
	const (
		eps       = 0.05
		windowLen = 2000
		n         = 7000
	)
	gen := stream.NewGenerator(7)
	for _, name := range stream.WorkloadNames() {
		t.Run(name, func(t *testing.T) {
			st, err := gen.ByName(name, n)
			if err != nil {
				t.Fatalf("generating %s: %v", name, err)
			}
			items := st.Items()
			s := NewFloat64(eps, windowLen)
			checkpoints := map[int]bool{
				windowLen / 2: true, // window partially full
				windowLen:     true, // exactly full
				3 * windowLen: true, // steady-state expiry
				n:             true, // final state
			}
			for i, x := range items {
				s.Update(x)
				if !checkpoints[i+1] {
					continue
				}
				if err := s.CheckInvariant(); err != nil {
					t.Fatalf("after %d items: %v", i+1, err)
				}
				lo := 0
				if i+1 > windowLen {
					lo = i + 1 - windowLen
				}
				oracle := rank.Float64Oracle(items[lo : i+1])
				w := i + 1 - lo
				// Query guarantee: ε′·W from the block summaries plus one
				// block of slack from the partially expired oldest block
				// (≤ εW in total); +1 absorbs rank quantization.
				queryLimit := eps*float64(w) + float64(s.BlockLen()) + 1
				for g := 0; g <= 40; g++ {
					phi := float64(g) / 40
					got, ok := s.Query(phi)
					if !ok {
						t.Fatalf("Query(%g) failed with %d items in window", phi, w)
					}
					if e := oracle.RankError(got, phi); float64(e) > queryLimit {
						t.Errorf("n=%d phi=%g: rank error %d > %.0f", i+1, phi, e, queryLimit)
					}
				}
				// EstimateRank additionally scales the oldest block's
				// contribution by its expired share, a heuristic worth one
				// more block of slack.
				rankLimit := eps*float64(w) + 2*float64(s.BlockLen()) + 1
				for g := 0; g <= 10; g++ {
					q := oracle.Quantile(float64(g) / 10)
					got := s.EstimateRank(q)
					rlo, rhi := oracle.RankRange(q)
					errLow, errHigh := float64(rlo-got), float64(got-rhi)
					if errLow > rankLimit || errHigh > rankLimit {
						t.Errorf("n=%d EstimateRank(%g) = %d outside [%d, %d] ± %.0f", i+1, q, got, rlo, rhi, rankLimit)
					}
				}
			}
		})
	}
}

// TestExportRestoreRoundTrip pins the serialization contract used by
// internal/encoding: an exported-and-restored summary answers exactly like
// the original and keeps expiring correctly as the stream continues.
func TestExportRestoreRoundTrip(t *testing.T) {
	eps := 0.05
	s := NewFloat64(eps, 500)
	gen := stream.NewGenerator(11)
	st := gen.Shuffled(2000)
	for _, x := range st.Items() {
		s.Update(x)
	}
	r, err := Restore(order.Floats[float64](), eps, s.WindowLen(), s.TotalSeen(), s.ExportBlocks())
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	for g := 0; g <= 20; g++ {
		phi := float64(g) / 20
		want, _ := s.Query(phi)
		got, _ := r.Query(phi)
		if want != got {
			t.Fatalf("phi=%g: restored answers %g, original %g", phi, got, want)
		}
	}
	// Continue the stream on the restored copy; expiry must pick up where
	// the original's stream position left off.
	for i := 0; i < 1000; i++ {
		r.Update(float64(i))
		if i%251 == 0 {
			if err := r.CheckInvariant(); err != nil {
				t.Fatalf("restored summary after %d more items: %v", i+1, err)
			}
		}
	}
	if r.Count() != 500 {
		t.Errorf("restored window count = %d, want 500", r.Count())
	}
	// Restore deep-copies block state: mutating the restored copy above must
	// not have leaked items into the still-live original.
	if err := s.CheckInvariant(); err != nil {
		t.Fatalf("original summary corrupted by updates to its restored copy: %v", err)
	}
	if s.TotalSeen() != 2000 {
		t.Errorf("original TotalSeen = %d after mutating the copy, want 2000", s.TotalSeen())
	}
}

// TestRestoreRejectsCorruptState: restore must not accept states that break
// the window invariants.
func TestRestoreRejectsCorruptState(t *testing.T) {
	s := NewFloat64(0.1, 100)
	for i := 0; i < 300; i++ {
		s.Update(float64(i))
	}
	blocks := s.ExportBlocks()
	if _, err := Restore(order.Floats[float64](), 0.1, 100, s.TotalSeen(), nil); err == nil {
		t.Error("restore with items seen but no blocks should fail")
	}
	if _, err := Restore(order.Floats[float64](), 0.1, 100, s.TotalSeen()+5, blocks); err == nil {
		t.Error("restore with non-contiguous final block should fail")
	}
	if _, err := Restore(order.Floats[float64](), 1.5, 100, s.TotalSeen(), blocks); err == nil {
		t.Error("restore with eps out of range should fail")
	}
	bad := append([]BlockState[float64](nil), blocks...)
	bad[0].Summary = nil
	if _, err := Restore(order.Floats[float64](), 0.1, 100, s.TotalSeen(), bad); err == nil {
		t.Error("restore with a nil block summary should fail")
	}
}

// Property: the invariant holds throughout arbitrary streams and the window
// count never exceeds the window length.
func TestInvariantProperty(t *testing.T) {
	f := func(items []float64) bool {
		s := NewFloat64(0.1, 50)
		for _, x := range items {
			s.Update(x)
			if s.CheckInvariant() != nil || s.Count() > 50 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
