// Package summary defines the interfaces shared by all quantile summaries in
// this repository, together with an instrumentation wrapper that records the
// quantities the lower-bound experiments measure (maximum number of stored
// items, number of comparisons, number of updates).
//
// The interfaces mirror Definition 2.1 of Cormode & Veselý (PODS 2020): a
// comparison-based quantile summary processes a stream one item at a time,
// stores a subset of the items it has seen (the item array I), and answers
// quantile queries by returning one of the stored items.
package summary

import (
	"fmt"

	"quantilelb/internal/order"
)

// Quantile is the minimal interface of a streaming quantile summary.
type Quantile[T any] interface {
	// Update processes the next stream item.
	Update(x T)
	// Query returns an (approximate) ϕ-quantile of the items processed so
	// far, for ϕ in [0, 1]. The boolean is false when the summary is empty.
	Query(phi float64) (T, bool)
	// Count returns the number of items processed so far.
	Count() int
}

// RankEstimator is implemented by summaries that can also estimate the rank
// of an arbitrary query item (the Estimating Rank problem of Section 6.2):
// the number of stream items that are not larger than q, up to ±εN.
type RankEstimator[T any] interface {
	// EstimateRank returns an estimate of |{x in stream : x <= q}|.
	EstimateRank(q T) int
}

// Inspectable is implemented by summaries that expose their item array I of
// Definition 2.1: the items from the stream currently retained in memory.
// The adversarial construction requires this view.
type Inspectable[T any] interface {
	// StoredItems returns the retained items in non-decreasing order.
	// The returned slice is owned by the caller.
	StoredItems() []T
	// StoredCount returns len(StoredItems()) without materializing it.
	StoredCount() int
}

// Summary combines the capabilities every deterministic comparison-based
// summary in this repository provides.
type Summary[T any] interface {
	Quantile[T]
	RankEstimator[T]
	Inspectable[T]
}

// WeightedUpdater is implemented by summaries that ingest weighted items
// natively. WeightedUpdate(x, w) is semantically equivalent to w repeated
// calls of Update(x) — the summary afterwards answers queries over the
// weight-expanded multiset, with rank error at most ε·W where W is the total
// weight ingested — but a native implementation achieves it in o(w) time
// (GK inserts one tuple carrying the whole run, KLL and MRL place the weight
// by its binary decomposition, the reservoir draws closed-form skips).
//
// Under this equivalence Count reports the total weight W, Query(ϕ) answers
// the weighted ϕ-quantile, and EstimateRank(q) estimates the total weight of
// items ≤ q. Weights must be positive; implementations panic on w ≤ 0
// exactly as constructors panic on an invalid ε (the HTTP tier validates
// weights before they reach the library). Families without a native path use
// the ExpandWeighted fallback instead.
type WeightedUpdater[T any] interface {
	// WeightedUpdate processes one item carrying an integer weight w ≥ 1.
	WeightedUpdate(x T, w int64)
	// WeightedUpdateBatch processes a batch of items with their parallel
	// weights slice (len(ws) must equal len(xs)).
	WeightedUpdateBatch(xs []T, ws []int64)
}

// MaxExpansionWeight bounds the per-item weight ExpandWeighted accepts. The
// fallback costs O(w) work and O(w) stream positions, so an unbounded weight
// would let a single request stall the process; native implementations are
// sublinear in w and accept any positive weight.
const MaxExpansionWeight = 1 << 16

// ExpandWeighted ingests (x, w) into any summary by repeating Update w
// times: the documented fallback for families without a native weighted path
// (biased, capped, window, offline; qdigest counts natively over its own
// fixed universe outside this plumbing). It returns an error — rather
// than looping unboundedly — when w is non-positive or exceeds
// MaxExpansionWeight, the overflow guard for the expansion.
func ExpandWeighted[T any](s Quantile[T], x T, w int64) error {
	if w <= 0 {
		return fmt.Errorf("summary: weight %d is not positive", w)
	}
	if w > MaxExpansionWeight {
		return fmt.Errorf("summary: weight %d exceeds the expansion-fallback cap %d (use a natively weighted family)", w, MaxExpansionWeight)
	}
	for i := int64(0); i < w; i++ {
		s.Update(x)
	}
	return nil
}

// Sized is implemented by summaries that can report the bytes they actually
// retain — including preallocated ingest buffers and per-level scratch, not
// just the item count times a per-item estimate. The multi-tenant store uses
// it for budget accounting: families that preallocate capacity (req's airtight
// buffer, mlq's block buffer) retain far more than StoredCount()×32 on small
// keys, and families storing bare items (KLL, MRL, the reservoir) retain far
// less, so a flat estimate over- or under-evicts by family. Callers fall back
// to the documented flat estimate (StoredCount × BytesPerItem) for summaries
// that do not implement Sized.
type Sized interface {
	// RetainedBytes returns the approximate heap bytes retained by the
	// summary's item storage, counting allocated capacity (not just length).
	RetainedBytes() int
}

// Mergeable is implemented by summaries that support merging a same-typed
// summary into the receiver (the "mergeable summaries" setting referenced in
// Section 1.2 of the paper).
type Mergeable[S any] interface {
	Merge(other S) error
}

// Epsiloned is implemented by summaries constructed for a specific accuracy
// target ε.
type Epsiloned interface {
	Epsilon() float64
}

// Stats aggregates the instrumentation counters collected by Instrumented.
type Stats struct {
	// Updates is the number of items processed.
	Updates int
	// Queries is the number of quantile queries answered.
	Queries int
	// MaxStored is the maximum value of |I| (stored items) observed after any
	// update. This is the space measure used by the paper: space in words is
	// measured by the number of items retained.
	MaxStored int
	// FinalStored is |I| after the last update.
	FinalStored int
	// Comparisons is the number of item comparisons performed, when the
	// summary was built with a counting comparator.
	Comparisons uint64
}

// Instrumented wraps a Summary and records Stats. It forwards every call to
// the wrapped summary; after each update it samples StoredCount to maintain
// the running maximum, which is exactly the "space on the worst-case input"
// quantity that Theorem 2.2 lower-bounds.
type Instrumented[T any] struct {
	inner   Summary[T]
	counter *order.Counting[T]
	stats   Stats
}

// NewInstrumented wraps inner. If counter is non-nil its comparison count is
// reported in Stats.
func NewInstrumented[T any](inner Summary[T], counter *order.Counting[T]) *Instrumented[T] {
	return &Instrumented[T]{inner: inner, counter: counter}
}

// Update implements Quantile.
func (w *Instrumented[T]) Update(x T) {
	w.inner.Update(x)
	w.stats.Updates++
	stored := w.inner.StoredCount()
	w.stats.FinalStored = stored
	if stored > w.stats.MaxStored {
		w.stats.MaxStored = stored
	}
}

// Query implements Quantile.
func (w *Instrumented[T]) Query(phi float64) (T, bool) {
	w.stats.Queries++
	return w.inner.Query(phi)
}

// Count implements Quantile.
func (w *Instrumented[T]) Count() int { return w.inner.Count() }

// EstimateRank implements RankEstimator.
func (w *Instrumented[T]) EstimateRank(q T) int { return w.inner.EstimateRank(q) }

// StoredItems implements Inspectable.
func (w *Instrumented[T]) StoredItems() []T { return w.inner.StoredItems() }

// StoredCount implements Inspectable.
func (w *Instrumented[T]) StoredCount() int { return w.inner.StoredCount() }

// Inner returns the wrapped summary.
func (w *Instrumented[T]) Inner() Summary[T] { return w.inner }

// Stats returns a copy of the collected statistics, with the comparison count
// read from the counting comparator if one was supplied.
func (w *Instrumented[T]) Stats() Stats {
	s := w.stats
	if w.counter != nil {
		s.Comparisons = w.counter.Count()
	}
	return s
}

// Factory constructs a fresh summary instance for a given ε. The adversarial
// construction uses a factory to create the two summary instances that process
// the indistinguishable streams π and ϱ.
type Factory[T any] func(eps float64) Summary[T]

// Named couples a factory with a human-readable algorithm name; experiment
// drivers iterate over a list of Named factories.
type Named[T any] struct {
	Name string
	New  Factory[T]
}
