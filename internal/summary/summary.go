// Package summary defines the interfaces shared by all quantile summaries in
// this repository, together with an instrumentation wrapper that records the
// quantities the lower-bound experiments measure (maximum number of stored
// items, number of comparisons, number of updates).
//
// The interfaces mirror Definition 2.1 of Cormode & Veselý (PODS 2020): a
// comparison-based quantile summary processes a stream one item at a time,
// stores a subset of the items it has seen (the item array I), and answers
// quantile queries by returning one of the stored items.
package summary

import "quantilelb/internal/order"

// Quantile is the minimal interface of a streaming quantile summary.
type Quantile[T any] interface {
	// Update processes the next stream item.
	Update(x T)
	// Query returns an (approximate) ϕ-quantile of the items processed so
	// far, for ϕ in [0, 1]. The boolean is false when the summary is empty.
	Query(phi float64) (T, bool)
	// Count returns the number of items processed so far.
	Count() int
}

// RankEstimator is implemented by summaries that can also estimate the rank
// of an arbitrary query item (the Estimating Rank problem of Section 6.2):
// the number of stream items that are not larger than q, up to ±εN.
type RankEstimator[T any] interface {
	// EstimateRank returns an estimate of |{x in stream : x <= q}|.
	EstimateRank(q T) int
}

// Inspectable is implemented by summaries that expose their item array I of
// Definition 2.1: the items from the stream currently retained in memory.
// The adversarial construction requires this view.
type Inspectable[T any] interface {
	// StoredItems returns the retained items in non-decreasing order.
	// The returned slice is owned by the caller.
	StoredItems() []T
	// StoredCount returns len(StoredItems()) without materializing it.
	StoredCount() int
}

// Summary combines the capabilities every deterministic comparison-based
// summary in this repository provides.
type Summary[T any] interface {
	Quantile[T]
	RankEstimator[T]
	Inspectable[T]
}

// Mergeable is implemented by summaries that support merging a same-typed
// summary into the receiver (the "mergeable summaries" setting referenced in
// Section 1.2 of the paper).
type Mergeable[S any] interface {
	Merge(other S) error
}

// Epsiloned is implemented by summaries constructed for a specific accuracy
// target ε.
type Epsiloned interface {
	Epsilon() float64
}

// Stats aggregates the instrumentation counters collected by Instrumented.
type Stats struct {
	// Updates is the number of items processed.
	Updates int
	// Queries is the number of quantile queries answered.
	Queries int
	// MaxStored is the maximum value of |I| (stored items) observed after any
	// update. This is the space measure used by the paper: space in words is
	// measured by the number of items retained.
	MaxStored int
	// FinalStored is |I| after the last update.
	FinalStored int
	// Comparisons is the number of item comparisons performed, when the
	// summary was built with a counting comparator.
	Comparisons uint64
}

// Instrumented wraps a Summary and records Stats. It forwards every call to
// the wrapped summary; after each update it samples StoredCount to maintain
// the running maximum, which is exactly the "space on the worst-case input"
// quantity that Theorem 2.2 lower-bounds.
type Instrumented[T any] struct {
	inner   Summary[T]
	counter *order.Counting[T]
	stats   Stats
}

// NewInstrumented wraps inner. If counter is non-nil its comparison count is
// reported in Stats.
func NewInstrumented[T any](inner Summary[T], counter *order.Counting[T]) *Instrumented[T] {
	return &Instrumented[T]{inner: inner, counter: counter}
}

// Update implements Quantile.
func (w *Instrumented[T]) Update(x T) {
	w.inner.Update(x)
	w.stats.Updates++
	stored := w.inner.StoredCount()
	w.stats.FinalStored = stored
	if stored > w.stats.MaxStored {
		w.stats.MaxStored = stored
	}
}

// Query implements Quantile.
func (w *Instrumented[T]) Query(phi float64) (T, bool) {
	w.stats.Queries++
	return w.inner.Query(phi)
}

// Count implements Quantile.
func (w *Instrumented[T]) Count() int { return w.inner.Count() }

// EstimateRank implements RankEstimator.
func (w *Instrumented[T]) EstimateRank(q T) int { return w.inner.EstimateRank(q) }

// StoredItems implements Inspectable.
func (w *Instrumented[T]) StoredItems() []T { return w.inner.StoredItems() }

// StoredCount implements Inspectable.
func (w *Instrumented[T]) StoredCount() int { return w.inner.StoredCount() }

// Inner returns the wrapped summary.
func (w *Instrumented[T]) Inner() Summary[T] { return w.inner }

// Stats returns a copy of the collected statistics, with the comparison count
// read from the counting comparator if one was supplied.
func (w *Instrumented[T]) Stats() Stats {
	s := w.stats
	if w.counter != nil {
		s.Comparisons = w.counter.Count()
	}
	return s
}

// Factory constructs a fresh summary instance for a given ε. The adversarial
// construction uses a factory to create the two summary instances that process
// the indistinguishable streams π and ϱ.
type Factory[T any] func(eps float64) Summary[T]

// Named couples a factory with a human-readable algorithm name; experiment
// drivers iterate over a list of Named factories.
type Named[T any] struct {
	Name string
	New  Factory[T]
}
