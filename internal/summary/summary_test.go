package summary_test

import (
	"testing"

	"quantilelb/internal/gk"
	"quantilelb/internal/order"
	"quantilelb/internal/stream"
	"quantilelb/internal/summary"
)

func TestInstrumentedTracksMaxStored(t *testing.T) {
	counter := order.NewCounting(order.Floats[float64]())
	inner := gk.New(counter.Comparator(), 0.05)
	w := summary.NewInstrumented[float64](inner, counter)
	gen := stream.NewGenerator(1)
	st := gen.Shuffled(5000)
	for _, x := range st.Items() {
		w.Update(x)
	}
	stats := w.Stats()
	if stats.Updates != 5000 {
		t.Errorf("Updates = %d", stats.Updates)
	}
	if stats.MaxStored < stats.FinalStored || stats.MaxStored <= 0 {
		t.Errorf("MaxStored %d should be at least FinalStored %d and positive", stats.MaxStored, stats.FinalStored)
	}
	if stats.FinalStored != inner.StoredCount() {
		t.Errorf("FinalStored %d != inner stored %d", stats.FinalStored, inner.StoredCount())
	}
	if stats.Comparisons == 0 {
		t.Errorf("comparisons should have been counted")
	}
	if stats.Queries != 0 {
		t.Errorf("no queries issued yet")
	}
	if w.Count() != 5000 {
		t.Errorf("Count = %d", w.Count())
	}
	if _, ok := w.Query(0.5); !ok {
		t.Errorf("query should succeed")
	}
	if w.Stats().Queries != 1 {
		t.Errorf("query count not tracked")
	}
	if w.EstimateRank(2500) <= 0 {
		t.Errorf("rank estimate should be positive")
	}
	if len(w.StoredItems()) != w.StoredCount() {
		t.Errorf("StoredItems / StoredCount mismatch")
	}
	if w.Inner() != summary.Summary[float64](inner) {
		t.Errorf("Inner should return the wrapped summary")
	}
}

func TestInstrumentedWithoutCounter(t *testing.T) {
	inner := gk.NewFloat64(0.1)
	w := summary.NewInstrumented[float64](inner, nil)
	w.Update(1)
	w.Update(2)
	if w.Stats().Comparisons != 0 {
		t.Errorf("without a counter, comparisons should be 0")
	}
	if w.Stats().MaxStored != 2 {
		t.Errorf("MaxStored = %d, want 2", w.Stats().MaxStored)
	}
}

func TestNamedFactory(t *testing.T) {
	named := summary.Named[float64]{
		Name: "gk",
		New:  func(eps float64) summary.Summary[float64] { return gk.NewFloat64(eps) },
	}
	s := named.New(0.1)
	s.Update(1)
	if s.Count() != 1 {
		t.Errorf("factory-built summary broken")
	}
	if named.Name != "gk" {
		t.Errorf("name lost")
	}
}

// Compile-time checks that every summary in the repository satisfies the
// shared interface (this test exists to keep the interface honest).
func TestInterfacesSatisfied(t *testing.T) {
	var _ summary.Summary[float64] = gk.NewFloat64(0.1)
	var _ summary.Epsiloned = gk.NewFloat64(0.1)
	var _ summary.Mergeable[*gk.Summary[float64]] = gk.NewFloat64(0.1)
}
