// Package fo implements the Felber–Ostrovsky randomized online quantile
// summary: a sampled substream feeding a cascade of fixed-size blocks, using
// O((1/ε)·log(1/ε)) words independently of the stream length — the randomized
// upper bound that sidesteps the deterministic Ω((1/ε)·log(1/ε)·log(εn))
// lower bound of Cormode & Veselý (the source paper).
//
// Layout. Items enter through a window sampler: the stream is split into
// consecutive windows of 2^σ items and one uniformly random representative
// per window survives, carrying the window's weight. Sampled items land in a
// cascade of levels; level e holds items of weight 2^e in a block of at most
// b slots. A full block is sorted and compacted: a random parity keeps every
// other item at double weight in the level above, an unbiased halving whose
// per-query error is ±w/2 with probability 1/2. At most L live levels are
// kept; when the span would exceed L the bottom level is folded upward and
// the sampler rate σ doubles, so total space stays at b·L = O((1/ε)log(1/ε))
// items no matter how long the stream runs.
//
// Accuracy. With b = ⌈2·sqrt(ln(2/δ))/ε⌉ the compaction noise for any fixed
// rank query is sub-Gaussian with standard deviation at most N/b and the
// sampler contributes at most as much, so the rank error stays within ε·N
// except with probability at most δ. The guarantee is statistical, not
// worst-case: with the random bits fixed the summary is deterministic and
// comparison-based, so the paper's adversary applies to it (Section 6.3) —
// the failure probability δ is exactly what the lower bound charges.
//
// All randomness flows through an injectable seeded RNG (Config.Seed or
// Config.Rand — never the global source) driven by a serializable splitmix64
// state, so the wire format (encoding.KindFO) can carry the generator state
// and snapshot/restore/resume is bit-for-bit deterministic.
package fo

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"quantilelb/internal/order"
)

// Config carries the construction parameters of a Felber–Ostrovsky summary.
type Config struct {
	// Eps is the additive rank-error target: ε·N after N items, with
	// probability at least 1−Delta per query. Must be in (0, 0.5].
	Eps float64
	// Delta is the per-query failure probability δ. Must be in (0, 1).
	// Zero selects DefaultDelta.
	Delta float64
	// Seed seeds the summary's private RNG when Rand is nil. Two summaries
	// built with equal Config and fed equal streams are byte-identical.
	Seed int64
	// Rand, when non-nil, supplies the initial RNG state (one Uint64 draw)
	// instead of Seed. The summary never retains Rand itself: all later
	// randomness comes from the private serializable generator, so sharing
	// one *rand.Rand across summaries is safe.
	Rand *rand.Rand
}

// DefaultDelta is the failure probability used when Config.Delta is zero.
const DefaultDelta = 0.01

// blockConstant scales the block size b = ⌈blockConstant·sqrt(ln(2/δ))/ε⌉.
// The value 2 makes the per-query failure bound close at δ for query grids
// of up to ~2/δ distinct ranks (see the package comment).
const blockConstant = 2.0

// maxLevelSpan caps the number of live levels accepted on the wire.
const maxLevelSpan = 64

// maxBaseExp caps the sampler exponent so window widths fit in int64.
const maxBaseExp = 62

// BlockSize returns b, the per-level block capacity for the given ε and δ.
func BlockSize(eps, delta float64) int {
	b := int(math.Ceil(blockConstant * math.Sqrt(math.Log(2/delta)) / eps))
	if b < 8 {
		b = 8
	}
	return b
}

// LevelCap returns L, the maximum number of live levels for the given ε and
// block size: enough that the sampler's variance N²·2^{1−L}/(4b) stays below
// the compaction variance, which needs 2^L ≳ 1/(b·ε²).
func LevelCap(eps float64, b int) int {
	l := int(math.Ceil(math.Log2(1/(float64(b)*eps*eps)))) + 2
	if l < 4 {
		l = 4
	}
	if l > maxLevelSpan {
		l = maxLevelSpan
	}
	return l
}

// Summary is a Felber–Ostrovsky randomized quantile summary over T.
// It is not safe for concurrent use; wrap it in the sharded layer for that.
type Summary[T any] struct {
	cmp   order.Comparator[T]
	eps   float64
	delta float64
	b     int // block capacity per level
	maxL  int // live-level span cap

	n    int64 // total weight processed
	base int   // absolute weight exponent of levels[0]; sampler windows are 2^base wide

	// levels[i] holds unsorted items of weight 2^(base+i), fewer than b of
	// them between operations.
	levels [][]T

	// Pending sampler window: winExp is the absolute exponent the window was
	// opened at (≤ base — the cascade may have folded since), winSeen counts
	// items consumed, winPick is the pre-drawn surviving index, winVal the
	// representative observed so far (meaningful iff winSeen > winPick).
	winExp  int
	winSeen int64
	winPick int64
	winVal  T

	src *source
	rng *rand.Rand

	hasMin, hasMax bool
	min, max       T

	view      []weighted[T]
	viewDirty bool
}

type weighted[T any] struct {
	v   T
	cum int64 // cumulative weight up to and including v in sorted order
}

// source is a splitmix64 rand.Source64 with a single exportable word of
// state, so the wire format can persist the generator exactly.
type source struct{ state uint64 }

func (s *source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *source) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *source) Seed(seed int64) { s.state = uint64(seed) }

// New builds an empty summary over cmp with the given configuration.
// It panics when cfg.Eps or cfg.Delta is out of range, matching the other
// families' constructors.
func New[T any](cmp order.Comparator[T], cfg Config) *Summary[T] {
	if cfg.Delta == 0 {
		cfg.Delta = DefaultDelta
	}
	if !(cfg.Eps > 0 && cfg.Eps <= 0.5) {
		panic(fmt.Sprintf("fo: eps %v out of (0, 0.5]", cfg.Eps))
	}
	if !(cfg.Delta > 0 && cfg.Delta < 1) {
		panic(fmt.Sprintf("fo: delta %v out of (0, 1)", cfg.Delta))
	}
	var state uint64
	if cfg.Rand != nil {
		state = cfg.Rand.Uint64()
	} else {
		// Run the seed through one splitmix step so nearby seeds yield
		// unrelated streams.
		state = (&source{state: uint64(cfg.Seed)}).Uint64()
	}
	s := &Summary[T]{
		cmp:   cmp,
		eps:   cfg.Eps,
		delta: cfg.Delta,
		b:     BlockSize(cfg.Eps, cfg.Delta),
		src:   &source{state: state},
	}
	s.maxL = LevelCap(s.eps, s.b)
	s.rng = rand.New(s.src)
	s.startWindow()
	// A non-nil empty view with viewDirty=false makes reads on a fresh
	// summary pure: concurrent readers of an empty sharded snapshot must not
	// re-enter refresh and race on the cache fields.
	s.view = make([]weighted[T], 0)
	s.viewDirty = false
	return s
}

// NewFloat64 builds a summary over float64 with the natural order.
func NewFloat64(cfg Config) *Summary[float64] {
	return New(order.Floats[float64](), cfg)
}

// Epsilon returns the rank-error target currently guaranteed (it grows under
// Merge and Prune).
func (s *Summary[T]) Epsilon() float64 { return s.eps }

// Delta returns the failure probability currently recorded (it grows under
// Merge: COMBINE sums the operands' δ).
func (s *Summary[T]) Delta() float64 { return s.delta }

// startWindow opens a fresh sampler window at the current rate.
func (s *Summary[T]) startWindow() {
	s.winExp = s.base
	s.winSeen = 0
	if s.winExp == 0 {
		s.winPick = 0
	} else {
		s.winPick = s.rng.Int63n(int64(1) << uint(s.winExp))
	}
	var zero T
	s.winVal = zero
}

// Update processes one stream item.
func (s *Summary[T]) Update(x T) {
	s.touchExtremes(x)
	s.n++
	if s.winSeen == s.winPick {
		s.winVal = x
	}
	s.winSeen++
	if s.winSeen == int64(1)<<uint(s.winExp) {
		s.place(s.winVal, s.winExp)
		s.restructure()
		s.startWindow()
	}
	s.viewDirty = true
}

// UpdateBatch processes a batch of items.
func (s *Summary[T]) UpdateBatch(xs []T) {
	for _, x := range xs {
		s.Update(x)
	}
}

// WeightedUpdate ingests x with integer weight w ≥ 1 in O(log w) amortized
// work: the current window is completed span-wise, whole windows of copies
// are placed exactly by the binary decomposition of their count (no sampling
// error — all candidates are equal), and the residue reopens a partial
// window. It panics on w ≤ 0 like the other natively weighted families.
func (s *Summary[T]) WeightedUpdate(x T, w int64) {
	if w <= 0 {
		panic(fmt.Sprintf("fo: weight %d is not positive", w))
	}
	s.touchExtremes(x)
	s.n += w
	rem := w
	if s.winSeen > 0 {
		width := int64(1) << uint(s.winExp)
		take := width - s.winSeen
		if take > rem {
			take = rem
		}
		if s.winPick >= s.winSeen && s.winPick < s.winSeen+take {
			s.winVal = x
		}
		s.winSeen += take
		rem -= take
		if s.winSeen == width {
			s.place(s.winVal, s.winExp)
			s.restructure()
			s.startWindow()
		}
	}
	if rem > 0 {
		e := s.winExp
		q := rem >> uint(e)
		rem &= int64(1)<<uint(e) - 1
		placed := false
		for j := 0; q>>uint(j) > 0; j++ {
			if q>>uint(j)&1 == 1 {
				s.place(x, e+j)
				placed = true
			}
		}
		if placed {
			s.restructure()
			s.startWindow()
		}
		if rem > 0 {
			// rem < 2^e ≤ 2^winExp (the rate only coarsens), so the residue
			// fits in the fresh window as one span of equal items.
			if s.winPick < rem {
				s.winVal = x
			}
			s.winSeen = rem
		}
	}
	s.viewDirty = true
}

// WeightedUpdateBatch processes parallel item and weight slices.
func (s *Summary[T]) WeightedUpdateBatch(xs []T, ws []int64) {
	if len(xs) != len(ws) {
		panic(fmt.Sprintf("fo: WeightedUpdateBatch length mismatch: %d items, %d weights", len(xs), len(ws)))
	}
	for i, x := range xs {
		s.WeightedUpdate(x, ws[i])
	}
}

func (s *Summary[T]) touchExtremes(x T) {
	if !s.hasMin || s.cmp(x, s.min) < 0 {
		s.min = x
		s.hasMin = true
	}
	if !s.hasMax || s.cmp(x, s.max) > 0 {
		s.max = x
		s.hasMax = true
	}
}

// place appends one item of weight 2^e into the cascade. Items below the
// current bottom rate (the cascade folded since their window opened) are
// resampled up to the bottom level by an unbiased survival coin.
func (s *Summary[T]) place(v T, e int) {
	if e < s.base {
		if s.rng.Int63n(int64(1)<<uint(s.base-e)) != 0 {
			return
		}
		e = s.base
	}
	idx := e - s.base
	for len(s.levels) <= idx {
		s.levels = append(s.levels, nil)
	}
	s.levels[idx] = append(s.levels[idx], v)
}

// restructure restores the two size invariants: every level holds fewer than
// b items (full blocks compact upward) and at most maxL levels are live
// (excess folds the bottom level up and doubles the sampler rate).
func (s *Summary[T]) restructure() {
	for {
		changed := false
		for i := 0; i < len(s.levels); i++ {
			if len(s.levels[i]) >= s.b {
				s.compact(i)
				changed = true
			}
		}
		for len(s.levels) > 0 && len(s.levels[len(s.levels)-1]) == 0 {
			s.levels = s.levels[:len(s.levels)-1]
		}
		if len(s.levels) > s.maxL && s.base < maxBaseExp {
			s.foldBottom()
			changed = true
		}
		if !changed {
			return
		}
	}
}

// compact halves level i into level i+1: sort, keep a random parity at
// double weight, and promote an odd leftover with probability 1/2 — both
// unbiased, each contributing ±2^(base+i)/2 per straddled query with equal
// signs equally likely.
func (s *Summary[T]) compact(i int) {
	lv := s.levels[i]
	sort.Slice(lv, func(a, b int) bool { return s.cmp(lv[a], lv[b]) < 0 })
	parity := int(s.rng.Int63n(2))
	if i+1 >= len(s.levels) {
		s.levels = append(s.levels, nil)
	}
	up := s.levels[i+1]
	m := len(lv)
	for j := 0; j+1 < m; j += 2 {
		up = append(up, lv[j+parity])
	}
	if m%2 == 1 && s.rng.Int63n(2) == 0 {
		// Unpaired leftover: promote with probability 1/2.
		up = append(up, lv[m-1])
	}
	s.levels[i+1] = up
	s.levels[i] = lv[:0]
}

// foldBottom halves level 0 into level 1 regardless of occupancy, drops the
// bottom slot, and doubles the sampler rate.
func (s *Summary[T]) foldBottom() {
	s.compact(0)
	copy(s.levels, s.levels[1:])
	s.levels = s.levels[:len(s.levels)-1]
	s.base++
}

// Count returns the total weight processed.
func (s *Summary[T]) Count() int { return int(s.n) }

// StoredCount returns the number of retained items.
func (s *Summary[T]) StoredCount() int {
	c := 0
	for _, lv := range s.levels {
		c += len(lv)
	}
	if s.winSeen > s.winPick {
		c++
	}
	return c
}

// StoredItems returns the retained items in non-decreasing order.
func (s *Summary[T]) StoredItems() []T {
	out := make([]T, 0, s.StoredCount())
	for _, lv := range s.levels {
		out = append(out, lv...)
	}
	if s.winSeen > s.winPick {
		out = append(out, s.winVal)
	}
	sort.Slice(out, func(a, b int) bool { return s.cmp(out[a], out[b]) < 0 })
	return out
}

// RetainedBytes reports the heap bytes retained by item storage, counting
// allocated capacity: the level slots, the cached query view, and the fixed
// window/extremes fields.
func (s *Summary[T]) RetainedBytes() int {
	var t T
	itemBytes := int(sizeofApprox(t))
	bytes := 0
	for _, lv := range s.levels {
		bytes += cap(lv) * itemBytes
	}
	bytes += cap(s.view) * (itemBytes + 8)
	bytes += 3 * itemBytes // winVal, min, max
	return bytes
}

// sizeofApprox estimates the in-slot size of T without reflection: 8 bytes
// for word-sized kinds (float64, int64, pointers like *big.Rat) — every T
// this repository instantiates.
func sizeofApprox[T any](T) uintptr { return 8 }

// refresh rebuilds the sorted cumulative-weight view.
func (s *Summary[T]) refresh() {
	if !s.viewDirty && s.view != nil {
		return
	}
	type entry struct {
		v T
		w int64
	}
	items := make([]entry, 0, s.StoredCount())
	for i, lv := range s.levels {
		w := int64(1) << uint(s.base+i)
		for _, v := range lv {
			items = append(items, entry{v, w})
		}
	}
	if s.winSeen > s.winPick {
		// The open window's representative stands for the winSeen items
		// consumed so far; its error is bounded by the window width, which
		// is within the sampler's error budget.
		items = append(items, entry{s.winVal, s.winSeen})
	}
	sort.Slice(items, func(a, b int) bool { return s.cmp(items[a].v, items[b].v) < 0 })
	if s.view == nil {
		// Keep the rebuilt view non-nil even when empty, so refresh's guard
		// short-circuits and concurrent readers stay read-only.
		s.view = make([]weighted[T], 0, len(items))
	}
	s.view = s.view[:0]
	var cum int64
	for _, it := range items {
		cum += it.w
		s.view = append(s.view, weighted[T]{v: it.v, cum: cum})
	}
	s.viewDirty = false
}

// Query returns an approximate ϕ-quantile. The exact minimum and maximum are
// tracked out of band, so ϕ=0 and ϕ=1 are answered exactly.
func (s *Summary[T]) Query(phi float64) (T, bool) {
	var zero T
	if s.n == 0 {
		return zero, false
	}
	if phi <= 0 && s.hasMin {
		return s.min, true
	}
	if phi >= 1 && s.hasMax {
		return s.max, true
	}
	s.refresh()
	if len(s.view) == 0 {
		if s.hasMin {
			return s.min, true
		}
		return zero, false
	}
	target := int64(math.Ceil(phi * float64(s.n)))
	if target < 1 {
		target = 1
	}
	total := s.view[len(s.view)-1].cum
	if target > total {
		target = total
	}
	i := sort.Search(len(s.view), func(i int) bool { return s.view[i].cum >= target })
	return s.view[i].v, true
}

// EstimateRank estimates |{x in stream : x ≤ q}| as the retained weight of
// items not larger than q.
func (s *Summary[T]) EstimateRank(q T) int {
	s.refresh()
	i := sort.Search(len(s.view), func(i int) bool { return s.cmp(s.view[i].v, q) > 0 })
	if i == 0 {
		return 0
	}
	return int(s.view[i-1].cum)
}

// Merge folds other into s as a COMBINE: ε becomes the pairwise maximum and
// the failure probabilities add (a union bound over the operands' coin
// flips), recorded honestly in Delta. Levels align by absolute weight
// exponent, other's open sampler window contributes its representative iff
// the pre-drawn pick falls inside the consumed prefix (probability
// winSeen/2^winExp — expected weight winSeen, unbiased), and the cascade is
// restructured under the merged parameters. other is not modified.
func (s *Summary[T]) Merge(other *Summary[T]) error {
	if other == nil || other.n == 0 {
		return nil
	}
	if other.eps > s.eps {
		s.eps = other.eps
	}
	s.delta += other.delta
	if s.delta >= 1 {
		s.delta = 0.999999
	}
	s.b = BlockSize(s.eps, s.delta)
	s.maxL = LevelCap(s.eps, s.b)
	s.n += other.n
	if other.hasMin {
		s.touchExtremes(other.min)
	}
	if other.hasMax {
		s.touchExtremes(other.max)
	}
	for i, lv := range other.levels {
		e := other.base + i
		for _, v := range lv {
			s.place(v, e)
		}
	}
	if other.winSeen > other.winPick {
		s.place(other.winVal, other.winExp)
	}
	s.restructure()
	// Materialize the query view now: merged summaries are served to
	// concurrent readers as sharded snapshots, and a lazy rebuild inside
	// Query would race.
	s.viewDirty = true
	s.refresh()
	return nil
}

// Prune shrinks the summary to at most k retained items by folding the
// bottom level upward, recording the coarsening as ε ← ε + 1/(2k) (the same
// convention as GK's Prune). k must be positive.
func (s *Summary[T]) Prune(k int) {
	if k <= 0 {
		panic(fmt.Sprintf("fo: prune target %d is not positive", k))
	}
	if s.StoredCount() <= k {
		return
	}
	for s.StoredCount() > k && s.base < maxBaseExp {
		if len(s.levels) == 0 {
			break
		}
		s.foldBottom()
		s.restructure()
	}
	s.eps += 1 / (2 * float64(k))
	if s.eps > 0.5 {
		s.eps = 0.5
	}
	s.b = BlockSize(s.eps, s.delta)
	s.maxL = LevelCap(s.eps, s.b)
	s.restructure()
	s.viewDirty = true
}

// State exposes every field of the summary for serialization: the wire
// format must carry the RNG state and the open sampler window so a restored
// summary resumes bit-for-bit identically.
type State[T any] struct {
	Eps     float64
	Delta   float64
	N       int64
	Base    int
	Levels  [][]T
	WinExp  int
	WinSeen int64
	WinPick int64
	WinVal  T
	RNG     uint64
	HasMin  bool
	HasMax  bool
	Min     T
	Max     T
}

// ExportState snapshots the summary. The level slices are deep-copied.
func (s *Summary[T]) ExportState() State[T] {
	levels := make([][]T, len(s.levels))
	for i, lv := range s.levels {
		levels[i] = append([]T(nil), lv...)
	}
	return State[T]{
		Eps:     s.eps,
		Delta:   s.delta,
		N:       s.n,
		Base:    s.base,
		Levels:  levels,
		WinExp:  s.winExp,
		WinSeen: s.winSeen,
		WinPick: s.winPick,
		WinVal:  s.winVal,
		RNG:     s.src.state,
		HasMin:  s.hasMin,
		HasMax:  s.hasMax,
		Min:     s.min,
		Max:     s.max,
	}
}

// Restore rebuilds a summary from a snapshot, validating every structural
// invariant the decoder relies on; it never restructures, so encode → decode
// → encode is the identity and a resumed summary matches an uninterrupted
// run exactly.
func Restore[T any](cmp order.Comparator[T], st State[T]) (*Summary[T], error) {
	if !(st.Eps > 0 && st.Eps <= 0.5) {
		return nil, fmt.Errorf("fo: restore: eps %v out of (0, 0.5]", st.Eps)
	}
	if !(st.Delta > 0 && st.Delta < 1) {
		return nil, fmt.Errorf("fo: restore: delta %v out of (0, 1)", st.Delta)
	}
	if st.N < 0 {
		return nil, fmt.Errorf("fo: restore: negative count %d", st.N)
	}
	if st.Base < 0 || st.Base > maxBaseExp {
		return nil, fmt.Errorf("fo: restore: base exponent %d out of [0, %d]", st.Base, maxBaseExp)
	}
	if st.WinExp < 0 || st.WinExp > st.Base {
		return nil, fmt.Errorf("fo: restore: window exponent %d out of [0, base=%d]", st.WinExp, st.Base)
	}
	width := int64(1) << uint(st.WinExp)
	if st.WinSeen < 0 || st.WinSeen >= width {
		return nil, fmt.Errorf("fo: restore: window progress %d out of [0, %d)", st.WinSeen, width)
	}
	if st.WinPick < 0 || st.WinPick >= width {
		return nil, fmt.Errorf("fo: restore: window pick %d out of [0, %d)", st.WinPick, width)
	}
	if len(st.Levels) > maxLevelSpan {
		return nil, fmt.Errorf("fo: restore: %d levels exceed the span cap %d", len(st.Levels), maxLevelSpan)
	}
	if st.Base+len(st.Levels) > maxBaseExp+1 {
		return nil, fmt.Errorf("fo: restore: top exponent %d overflows", st.Base+len(st.Levels)-1)
	}
	b := BlockSize(st.Eps, st.Delta)
	s := &Summary[T]{
		cmp:       cmp,
		eps:       st.Eps,
		delta:     st.Delta,
		b:         b,
		maxL:      LevelCap(st.Eps, b),
		n:         st.N,
		base:      st.Base,
		winExp:    st.WinExp,
		winSeen:   st.WinSeen,
		winPick:   st.WinPick,
		winVal:    st.WinVal,
		src:       &source{state: st.RNG},
		hasMin:    st.HasMin,
		hasMax:    st.HasMax,
		min:       st.Min,
		max:       st.Max,
		viewDirty: true,
	}
	if len(st.Levels) > s.maxL {
		return nil, fmt.Errorf("fo: restore: %d levels exceed the cap %d for eps=%v delta=%v",
			len(st.Levels), s.maxL, st.Eps, st.Delta)
	}
	var stored int64
	s.levels = make([][]T, len(st.Levels))
	for i, lv := range st.Levels {
		if len(lv) >= b {
			return nil, fmt.Errorf("fo: restore: level %d holds %d items, block capacity is %d", i, len(lv), b)
		}
		stored += int64(len(lv)) << uint(st.Base+i)
		s.levels[i] = append([]T(nil), lv...)
	}
	if stored > 2*st.N+width {
		return nil, fmt.Errorf("fo: restore: retained weight %d implausible for count %d", stored, st.N)
	}
	s.rng = rand.New(s.src)
	// Restored summaries may be handed to concurrent readers (store snapshot
	// loads); materialize the view on this write path.
	s.refresh()
	return s, nil
}
