package fo_test

// The paper's separation, executable: cmd/lowerbound's adversarial
// construction (core.Adversary, Pseudocode 2) is driven directly against the
// randomized fo summary. With the coin flips fixed the summary is
// deterministic and comparison-based, so Theorem 2.2 applies to each run —
// but across independently seeded runs the failure rate must stay within the
// configured δ (plus Chernoff slack), while fo's space never leaves its
// b·L = O((1/eps)·log(1/eps)) ceiling. The same harness shows GK's retained
// bytes growing with log(eps·n), the Ω((1/eps)·log(1/eps)·log(eps·n)) side
// of the separation.

import (
	"math/big"
	"testing"

	"quantilelb/internal/checker"
	"quantilelb/internal/core"
	"quantilelb/internal/fo"
	"quantilelb/internal/gk"
	"quantilelb/internal/summary"
	"quantilelb/internal/testseed"
	"quantilelb/internal/universe"
)

const (
	advEps    = 1.0 / 16
	advDelta  = 0.1
	advTrials = 100
	advK      = 5 // N = (1/eps)·2^k = 512 items per run
)

func newRatAdversary(factory func() summary.Summary[*big.Rat]) *core.Adversary[*big.Rat] {
	uni := universe.NewRational()
	return &core.Adversary[*big.Rat]{
		Uni:        uni,
		Cmp:        uni.Comparator(),
		Eps:        advEps,
		NewSummary: factory,
	}
}

// TestFOUnderAdversaryFailureRate runs the adversarial construction against
// fo over ≥100 seeds. Per seed, the run fails when the constructed stream
// either forces a gap beyond the 2εN bound of Lemma 3.4 (the paper's
// incorrectness witness) or, replayed into a fresh same-configured summary,
// produces a quantile answer off by more than ε·N. The observed failure
// fraction must stay within δ plus the gate's Chernoff slack.
func TestFOUnderAdversaryFailureRate(t *testing.T) {
	if testing.Short() {
		t.Skip("adversary sweep over 100 seeds")
	}
	baseSeed := testseed.For(t, "fo-adversary", 9000)
	uni := universe.NewRational()
	cmp := uni.Comparator()
	bound := fo.BlockSize(advEps, advDelta)*fo.LevelCap(advEps, fo.BlockSize(advEps, advDelta)) + 1
	failures := 0
	for trial := 0; trial < advTrials; trial++ {
		seed := baseSeed + int64(trial)
		adv := newRatAdversary(func() summary.Summary[*big.Rat] {
			return fo.New(cmp, fo.Config{Eps: advEps, Delta: advDelta, Seed: seed})
		})
		res, err := adv.Run(advK)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		failed := float64(res.Gap) > res.GapBound
		// Replay the constructed stream into a fresh summary (new coins) and
		// check its quantile answers against the exact oracle.
		replay := fo.New(cmp, fo.Config{Eps: advEps, Delta: advDelta, Seed: seed + 1_000_000})
		for _, x := range res.Pi {
			replay.Update(x)
		}
		rep := checker.VerifyUniform(cmp, replay, res.Pi, advEps, 64)
		if !rep.Passed() {
			failed = true
		}
		if c := replay.StoredCount(); c > bound {
			t.Fatalf("trial %d: fo stored %d items, above its b·L+1 = %d ceiling", trial, c, bound)
		}
		if failed {
			failures++
		}
	}
	frac := float64(failures) / float64(advTrials)
	limit := advDelta + checker.ChernoffSlack(advTrials, checker.RandomizedGateGamma)
	t.Logf("adversarial failure fraction %.2f (delta %.2f + slack %.2f)", frac, advDelta, limit-advDelta)
	if frac > limit {
		t.Errorf("failure fraction %.2f exceeds delta+slack = %.2f", frac, limit)
	}
}

// TestDeterministicSpaceGrowsUnderAdversary is the other side of the
// separation: GK's retained bytes under the adversarial construction grow
// with log(eps·n) as k increases, while fo's ceiling does not move at all.
func TestDeterministicSpaceGrowsUnderAdversary(t *testing.T) {
	if testing.Short() {
		t.Skip("adversary growth sweep")
	}
	uni := universe.NewRational()
	cmp := uni.Comparator()
	const gkTupleBytes = 32
	var gkBytes []int
	for _, k := range []int{4, 6, 8} {
		adv := newRatAdversary(func() summary.Summary[*big.Rat] { return gk.New(cmp, advEps) })
		res, err := adv.Run(k)
		if err != nil {
			t.Fatalf("gk at k=%d: %v", k, err)
		}
		gkBytes = append(gkBytes, res.MaxStoredPi*gkTupleBytes)
		t.Logf("gk: k=%d N=%d max stored %d (%d bytes), theorem 2.2 floor %.0f items",
			k, res.N, res.MaxStoredPi, res.MaxStoredPi*gkTupleBytes, res.LowerBound)
	}
	for i := 1; i < len(gkBytes); i++ {
		if gkBytes[i] <= gkBytes[i-1] {
			t.Errorf("gk retained bytes did not grow with log(eps·n): %v", gkBytes)
		}
	}
	// fo's space ceiling is a function of (eps, delta) only — no k anywhere.
	b := fo.BlockSize(advEps, advDelta)
	ceiling := (b*fo.LevelCap(advEps, b) + 1) * 8
	for _, k := range []int{4, 6, 8} {
		adv := newRatAdversary(func() summary.Summary[*big.Rat] {
			return fo.New(cmp, fo.Config{Eps: advEps, Delta: advDelta, Seed: int64(k)})
		})
		res, err := adv.Run(k)
		if err != nil {
			t.Fatalf("fo at k=%d: %v", k, err)
		}
		if got := res.MaxStoredPi * 8; got > ceiling {
			t.Errorf("fo at k=%d retained %d bytes, above its flat ceiling %d", k, got, ceiling)
		}
	}
}
