package fo_test

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"quantilelb/internal/checker"
	"quantilelb/internal/fo"
	"quantilelb/internal/order"
	"quantilelb/internal/stream"
	"quantilelb/internal/testseed"
)

const (
	foTestEps   = 0.02
	foTestDelta = 0.05
	foTestN     = 30_000
)

var foWorkloads = []string{"sorted", "reverse", "shuffled", "zipf", "duplicates", "drift"}

func newFO(eps, delta float64, seed int64) *fo.Summary[float64] {
	return fo.NewFloat64(fo.Config{Eps: eps, Delta: delta, Seed: seed})
}

func workloadItems(t *testing.T, name string, n int, seed int64) []float64 {
	t.Helper()
	gen := stream.NewGenerator(seed)
	st, err := gen.ByName(name, n)
	if err != nil {
		t.Fatalf("workload %s: %v", name, err)
	}
	return st.Items()
}

// medianWorstError feeds items into trials summaries at distinct seeds and
// returns the median of the per-trial worst rank errors on a 200-point grid.
func medianWorstError(t *testing.T, items []float64, eps, delta float64, baseSeed int64, trials int) float64 {
	t.Helper()
	cmp := order.Floats[float64]()
	worsts := make([]float64, 0, trials)
	for i := 0; i < trials; i++ {
		s := newFO(eps, delta, baseSeed+int64(i))
		rep := checker.VerifyUniform(cmp, s, items, eps, 200)
		worsts = append(worsts, float64(rep.WorstRankError))
	}
	sort.Float64s(worsts)
	return worsts[len(worsts)/2]
}

// TestFOMedianAccuracyPerWorkload is the in-package mirror of the statistical
// gate: on every workload the median-of-trials worst rank error must stay
// within the exact eps*N allowance — no randomized slack.
func TestFOMedianAccuracyPerWorkload(t *testing.T) {
	seed := testseed.For(t, "fo-median-accuracy", 1000)
	allow := foTestEps*float64(foTestN) + 1
	for _, name := range foWorkloads {
		items := workloadItems(t, name, foTestN, 42)
		med := medianWorstError(t, items, foTestEps, foTestDelta, seed, 15)
		if med > allow {
			t.Errorf("%s: median worst rank error %.0f exceeds eps*N = %.0f", name, med, allow)
		}
	}
}

func TestFOEmptyAndSmall(t *testing.T) {
	s := newFO(0.1, 0.1, 1)
	if _, ok := s.Query(0.5); ok {
		t.Fatal("Query on empty summary returned ok")
	}
	if s.Count() != 0 || s.StoredCount() != 0 {
		t.Fatalf("empty summary: Count=%d StoredCount=%d", s.Count(), s.StoredCount())
	}
	// Below the block size nothing is compacted or sampled: answers are exact.
	s = newFO(0.02, 0.1, 1) // block size well above the 50 items fed below
	for i := 1; i <= 50; i++ {
		s.Update(float64(i))
	}
	for i := 1; i <= 50; i++ {
		if got := s.EstimateRank(float64(i)); got != i {
			t.Fatalf("EstimateRank(%d) = %d before any compaction", i, got)
		}
	}
	if v, ok := s.Query(0); !ok || v != 1 {
		t.Fatalf("Query(0) = %v, %v", v, ok)
	}
	if v, ok := s.Query(1); !ok || v != 50 {
		t.Fatalf("Query(1) = %v, %v", v, ok)
	}
}

func TestFOExtremesExact(t *testing.T) {
	seed := testseed.For(t, "fo-extremes", 7)
	s := newFO(0.01, 0.05, seed)
	items := workloadItems(t, "shuffled", foTestN, seed)
	for _, x := range items {
		s.Update(x)
	}
	lo, hi := items[0], items[0]
	for _, x := range items {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	if v, _ := s.Query(0); v != lo {
		t.Errorf("Query(0) = %v, want exact minimum %v", v, lo)
	}
	if v, _ := s.Query(1); v != hi {
		t.Errorf("Query(1) = %v, want exact maximum %v", v, hi)
	}
}

// TestFOSpaceIndependentOfN pins the headline bound: retained items stay at
// b*L = O((1/eps) log(1/eps)) no matter how long the stream runs.
func TestFOSpaceIndependentOfN(t *testing.T) {
	seed := testseed.For(t, "fo-space", 11)
	eps, delta := 0.01, 0.01
	b := fo.BlockSize(eps, delta)
	l := fo.LevelCap(eps, b)
	cap := b*l + 1
	rng := rand.New(rand.NewSource(seed))
	s := newFO(eps, delta, seed)
	var atSmall int
	for i := 0; i < 400_000; i++ {
		s.Update(rng.Float64())
		if i == 99_999 {
			atSmall = s.StoredCount()
		}
		if c := s.StoredCount(); c > cap {
			t.Fatalf("after %d items StoredCount %d exceeds b*L+1 = %d", i+1, c, cap)
		}
	}
	atLarge := s.StoredCount()
	t.Logf("b=%d L=%d stored@100k=%d stored@400k=%d", b, l, atSmall, atLarge)
	if float64(atLarge) > 1.5*float64(atSmall)+float64(b) {
		t.Errorf("retained items grew from %d to %d over 4x the stream: not flat", atSmall, atLarge)
	}
}

// TestFOWeightedMatchesExpanded checks the sampling-expanded weighted path
// against the exact expansion: the weighted summary must answer over the
// weight-expanded multiset within its guarantee.
func TestFOWeightedMatchesExpanded(t *testing.T) {
	seed := testseed.For(t, "fo-weighted", 13)
	cmp := order.Floats[float64]()
	rng := rand.New(rand.NewSource(seed))
	var xs []float64
	var ws []int64
	var expanded []float64
	for len(expanded) < foTestN {
		x := rng.NormFloat64()
		w := 1 + rng.Int63n(500)
		xs = append(xs, x)
		ws = append(ws, w)
		for i := int64(0); i < w; i++ {
			expanded = append(expanded, x)
		}
	}
	allow := foTestEps*float64(len(expanded)) + 1
	worsts := make([]float64, 0, 15)
	for i := 0; i < 15; i++ {
		s := newFO(foTestEps, foTestDelta, seed+int64(i))
		s.WeightedUpdateBatch(xs, ws)
		if s.Count() != len(expanded) {
			t.Fatalf("Count = %d, want total weight %d", s.Count(), len(expanded))
		}
		rep := checker.VerifyUniform(cmp, s, expanded, foTestEps, 200)
		worsts = append(worsts, float64(rep.WorstRankError))
	}
	sort.Float64s(worsts)
	if med := worsts[len(worsts)/2]; med > allow {
		t.Errorf("weighted ingest: median worst rank error %.0f exceeds eps*W = %.0f", med, allow)
	}
}

func TestFOMergeCombine(t *testing.T) {
	seed := testseed.For(t, "fo-merge", 17)
	cmp := order.Floats[float64]()
	items := workloadItems(t, "shuffled", foTestN, seed)
	allow := foTestEps*float64(len(items)) + 1
	worsts := make([]float64, 0, 15)
	for i := 0; i < 15; i++ {
		a := newFO(foTestEps, foTestDelta, seed+int64(2*i))
		b := newFO(foTestEps/2, foTestDelta, seed+int64(2*i+1))
		for _, x := range items[:len(items)/2] {
			a.Update(x)
		}
		for _, x := range items[len(items)/2:] {
			b.Update(x)
		}
		if err := a.Merge(b); err != nil {
			t.Fatalf("merge: %v", err)
		}
		if a.Count() != len(items) {
			t.Fatalf("merged Count = %d, want %d", a.Count(), len(items))
		}
		if a.Epsilon() != foTestEps {
			t.Fatalf("merged Epsilon = %v, want the pairwise max %v", a.Epsilon(), foTestEps)
		}
		if got, want := a.Delta(), 2*foTestDelta; math.Abs(got-want) > 1e-12 {
			t.Fatalf("merged Delta = %v, want the honest sum %v", got, want)
		}
		rep := checker.VerifyUniform(cmp, a, items, foTestEps, 200)
		worsts = append(worsts, float64(rep.WorstRankError))
	}
	sort.Float64s(worsts)
	if med := worsts[len(worsts)/2]; med > allow {
		t.Errorf("merged: median worst rank error %.0f exceeds eps*N = %.0f", med, allow)
	}
}

func TestFOPrune(t *testing.T) {
	seed := testseed.For(t, "fo-prune", 19)
	items := workloadItems(t, "shuffled", foTestN, seed)
	s := newFO(foTestEps, foTestDelta, seed)
	for _, x := range items {
		s.Update(x)
	}
	k := s.StoredCount() / 3
	s.Prune(k)
	if got := s.StoredCount(); got > k {
		t.Errorf("after Prune(%d): StoredCount = %d", k, got)
	}
	want := foTestEps + 1/(2*float64(k))
	if math.Abs(s.Epsilon()-want) > 1e-12 {
		t.Errorf("after Prune(%d): Epsilon = %v, want %v recorded", k, s.Epsilon(), want)
	}
	cmp := order.Floats[float64]()
	rep := checker.VerifyUniform(cmp, s, items, s.Epsilon(), 200)
	// A single pruned trial stays a statistical guarantee; allow the
	// documented randomized slack on one draw rather than a median sweep.
	if float64(rep.WorstRankError) > 3*s.Epsilon()*float64(len(items))+1 {
		t.Errorf("pruned summary worst rank error %d far beyond %v*N", rep.WorstRankError, s.Epsilon())
	}
}

// TestFODeterministicGivenSeed pins the injectable-RNG contract: equal seed
// and equal input give identical retained state and identical answers.
func TestFODeterministicGivenSeed(t *testing.T) {
	items := workloadItems(t, "zipf", foTestN, 23)
	a := newFO(foTestEps, foTestDelta, 99)
	b := newFO(foTestEps, foTestDelta, 99)
	for _, x := range items {
		a.Update(x)
		b.Update(x)
	}
	if !reflect.DeepEqual(a.ExportState(), b.ExportState()) {
		t.Fatal("same seed, same input: exported states differ")
	}
	for phi := 0.0; phi <= 1.0; phi += 0.01 {
		va, _ := a.Query(phi)
		vb, _ := b.Query(phi)
		if va != vb {
			t.Fatalf("same seed, same input: Query(%v) differs: %v vs %v", phi, va, vb)
		}
	}
	// A different seed must actually change the coin flips.
	c := newFO(foTestEps, foTestDelta, 100)
	for _, x := range items {
		c.Update(x)
	}
	if reflect.DeepEqual(a.ExportState().Levels, c.ExportState().Levels) {
		t.Error("different seeds retained identical level contents; RNG looks unused")
	}
}

// TestFOInjectedRand covers the Config.Rand injection path: the summary
// draws its initial state from the supplied generator and never touches the
// global source.
func TestFOInjectedRand(t *testing.T) {
	items := workloadItems(t, "shuffled", 5000, 29)
	mk := func() *fo.Summary[float64] {
		return fo.NewFloat64(fo.Config{Eps: 0.05, Delta: 0.05, Rand: rand.New(rand.NewSource(31))})
	}
	a, b := mk(), mk()
	for _, x := range items {
		a.Update(x)
		b.Update(x)
	}
	if !reflect.DeepEqual(a.ExportState(), b.ExportState()) {
		t.Fatal("fresh injected rand with equal seed: states differ")
	}
}

// TestFORestoreResume: an exported-and-restored summary must continue
// identically to the uninterrupted one — RNG state and the open sampler
// window travel with the snapshot.
func TestFORestoreResume(t *testing.T) {
	items := workloadItems(t, "drift", foTestN, 37)
	cut := len(items) / 3
	full := newFO(foTestEps, foTestDelta, 41)
	head := newFO(foTestEps, foTestDelta, 41)
	for _, x := range items[:cut] {
		full.Update(x)
		head.Update(x)
	}
	resumed, err := fo.Restore(order.Floats[float64](), head.ExportState())
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	for _, x := range items[cut:] {
		full.Update(x)
		resumed.Update(x)
	}
	if !reflect.DeepEqual(full.ExportState(), resumed.ExportState()) {
		t.Fatal("resumed summary diverged from the uninterrupted run")
	}
}

func TestFORestoreRejects(t *testing.T) {
	cmp := order.Floats[float64]()
	good := func() fo.State[float64] {
		s := newFO(0.1, 0.1, 1)
		for i := 0; i < 1000; i++ {
			s.Update(float64(i))
		}
		return s.ExportState()
	}
	cases := []struct {
		name   string
		mutate func(*fo.State[float64])
	}{
		{"eps-zero", func(st *fo.State[float64]) { st.Eps = 0 }},
		{"eps-large", func(st *fo.State[float64]) { st.Eps = 0.7 }},
		{"delta-zero", func(st *fo.State[float64]) { st.Delta = 0 }},
		{"delta-one", func(st *fo.State[float64]) { st.Delta = 1 }},
		{"negative-n", func(st *fo.State[float64]) { st.N = -1 }},
		{"base-negative", func(st *fo.State[float64]) { st.Base = -1 }},
		{"base-huge", func(st *fo.State[float64]) { st.Base = 63 }},
		{"winexp-above-base", func(st *fo.State[float64]) { st.WinExp = st.Base + 1 }},
		{"winseen-overflow", func(st *fo.State[float64]) { st.WinSeen = int64(1) << uint(st.WinExp) }},
		{"winpick-overflow", func(st *fo.State[float64]) { st.WinPick = int64(1) << uint(st.WinExp) }},
		{"level-overflow", func(st *fo.State[float64]) {
			big := make([]float64, fo.BlockSize(st.Eps, st.Delta))
			st.Levels = append(st.Levels, big)
		}},
		{"too-many-levels", func(st *fo.State[float64]) {
			st.Levels = make([][]float64, 65)
		}},
		{"weight-implausible", func(st *fo.State[float64]) { st.N = 1 }},
	}
	for _, tc := range cases {
		st := good()
		tc.mutate(&st)
		if _, err := fo.Restore(cmp, st); err == nil {
			t.Errorf("%s: Restore accepted an invalid state", tc.name)
		}
	}
}

func TestFOPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	expectPanic("eps-zero", func() { fo.NewFloat64(fo.Config{Eps: 0}) })
	expectPanic("eps-large", func() { fo.NewFloat64(fo.Config{Eps: 0.6}) })
	expectPanic("delta-range", func() { fo.NewFloat64(fo.Config{Eps: 0.1, Delta: 2}) })
	expectPanic("weight-zero", func() {
		s := newFO(0.1, 0.1, 1)
		s.WeightedUpdate(1, 0)
	})
	expectPanic("prune-zero", func() {
		s := newFO(0.1, 0.1, 1)
		s.Prune(0)
	})
}

func TestFOStoredItemsSorted(t *testing.T) {
	seed := testseed.For(t, "fo-stored-items", 43)
	s := newFO(0.05, 0.05, seed)
	for _, x := range workloadItems(t, "shuffled", 20_000, seed) {
		s.Update(x)
	}
	got := s.StoredItems()
	if len(got) != s.StoredCount() {
		t.Fatalf("len(StoredItems) = %d, StoredCount = %d", len(got), s.StoredCount())
	}
	if !sort.Float64sAreSorted(got) {
		t.Error("StoredItems not sorted")
	}
	if s.RetainedBytes() < 8*s.StoredCount() {
		t.Errorf("RetainedBytes %d below 8*StoredCount %d", s.RetainedBytes(), 8*s.StoredCount())
	}
}
