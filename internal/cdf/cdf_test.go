package cdf

import (
	"math"
	"testing"

	"quantilelb/internal/gk"
	"quantilelb/internal/stream"
)

func buildEstimator(eps float64, data []float64) *Estimator[float64] {
	s := gk.NewFloat64(eps)
	for _, x := range data {
		s.Update(x)
	}
	return New[float64](s)
}

func TestValueMatchesExactCDF(t *testing.T) {
	gen := stream.NewGenerator(1)
	n := 50000
	eps := 0.01
	st := gen.Uniform(n)
	e := buildEstimator(eps, st.Items())
	for _, x := range []float64{0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0} {
		got := e.Value(x)
		want := Float64Exact(st.Items(), x)
		if math.Abs(got-want) > eps+1e-6 {
			t.Errorf("F(%v) = %v, exact %v", x, got, want)
		}
	}
	// Out-of-range queries clamp to [0, 1].
	if e.Value(-100) != 0 {
		t.Errorf("F(-100) = %v, want 0", e.Value(-100))
	}
	if e.Value(100) != 1 {
		t.Errorf("F(100) = %v, want 1", e.Value(100))
	}
}

func TestValueEmpty(t *testing.T) {
	e := New[float64](gk.NewFloat64(0.1))
	if e.Value(1) != 0 {
		t.Errorf("empty estimator should return 0")
	}
	if _, ok := e.Inverse(0.5); ok {
		t.Errorf("Inverse on empty should report false")
	}
	if len(e.Table()) != 0 {
		t.Errorf("Table on empty should be empty")
	}
}

func TestInverseRoundTrip(t *testing.T) {
	gen := stream.NewGenerator(2)
	n := 20000
	eps := 0.02
	st := gen.Gaussian(n, 50, 10)
	e := buildEstimator(eps, st.Items())
	for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		x, ok := e.Inverse(p)
		if !ok {
			t.Fatalf("Inverse(%v) failed", p)
		}
		back := e.Value(x)
		if math.Abs(back-p) > 2*eps+1e-6 {
			t.Errorf("F(F^-1(%v)) = %v, want within 2*eps", p, back)
		}
	}
}

func TestTableMonotone(t *testing.T) {
	gen := stream.NewGenerator(3)
	st := gen.Zipf(20000, 1.3, 100000)
	e := buildEstimator(0.02, st.Items())
	table := e.Table()
	if len(table) == 0 {
		t.Fatalf("table should not be empty")
	}
	for i := 1; i < len(table); i++ {
		if table[i].P < table[i-1].P {
			t.Errorf("table probabilities not monotone at %d", i)
		}
		if table[i].X < table[i-1].X {
			t.Errorf("table items not sorted at %d", i)
		}
	}
	if table[len(table)-1].P < 0.99 {
		t.Errorf("last table entry should be near 1, got %v", table[len(table)-1].P)
	}
	if got := table[0].String(); got == "" {
		t.Errorf("Point.String should render")
	}
}

func TestFloat64Exact(t *testing.T) {
	data := []float64{1, 2, 2, 3}
	cases := []struct {
		x    float64
		want float64
	}{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := Float64Exact(data, c.x); got != c.want {
			t.Errorf("Float64Exact(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if Float64Exact(nil, 1) != 0 {
		t.Errorf("empty data should give 0")
	}
}
