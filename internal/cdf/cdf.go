// Package cdf estimates cumulative distribution functions from quantile
// summaries.
//
// Estimating the empirical CDF is the first motivating application listed in
// Section 1 of the lower-bound paper: an ε-approximate quantile summary
// immediately yields an estimate F̂ with |F̂(x) − F(x)| ≤ ε for every x
// (a uniform, Kolmogorov–Smirnov style guarantee).
package cdf

import (
	"fmt"
	"sort"

	"quantilelb/internal/summary"
)

// Estimator evaluates an approximate empirical CDF backed by a quantile
// summary.
type Estimator[T any] struct {
	s summary.Summary[T]
}

// New returns an Estimator reading from the given summary. The summary may
// continue to receive updates; the estimator always reflects its current
// state.
func New[T any](s summary.Summary[T]) *Estimator[T] {
	return &Estimator[T]{s: s}
}

// Value returns F̂(x): the estimated fraction of stream items that are less
// than or equal to x. It returns 0 for an empty stream.
func (e *Estimator[T]) Value(x T) float64 {
	n := e.s.Count()
	if n == 0 {
		return 0
	}
	r := e.s.EstimateRank(x)
	if r < 0 {
		r = 0
	}
	if r > n {
		r = n
	}
	return float64(r) / float64(n)
}

// Inverse returns F̂⁻¹(p): the estimated p-quantile. The boolean is false for
// an empty stream.
func (e *Estimator[T]) Inverse(p float64) (T, bool) {
	return e.s.Query(p)
}

// Table returns the estimated CDF evaluated at the summary's stored items:
// pairs (item, F̂(item)) in non-decreasing item order. It is the natural
// "step function" representation for plotting.
func (e *Estimator[T]) Table() []Point[T] {
	items := e.s.StoredItems()
	out := make([]Point[T], 0, len(items))
	for _, x := range items {
		out = append(out, Point[T]{X: x, P: e.Value(x)})
	}
	// Stored items are sorted; probabilities of a valid summary are
	// non-decreasing up to estimation noise. Enforce monotonicity so the
	// result is a valid CDF.
	for i := 1; i < len(out); i++ {
		if out[i].P < out[i-1].P {
			out[i].P = out[i-1].P
		}
	}
	return out
}

// Point is one evaluation point of the estimated CDF.
type Point[T any] struct {
	X T
	P float64
}

// String implements fmt.Stringer.
func (p Point[T]) String() string { return fmt.Sprintf("(%v, %.4f)", p.X, p.P) }

// Float64Exact computes the exact empirical CDF of float64 data at a point;
// tests and experiments use it as ground truth.
func Float64Exact(data []float64, x float64) float64 {
	if len(data) == 0 {
		return 0
	}
	sorted := append([]float64(nil), data...)
	sort.Float64s(sorted)
	i := sort.SearchFloat64s(sorted, x)
	for i < len(sorted) && sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(sorted))
}
