// Package cluster is the distributed snapshot/aggregation tier: it turns K
// single-node writers (cmd/quantileserver instances, each a sharded mergeable
// summary) into one logical quantile summary served by an aggregator
// (cmd/quantileagg).
//
// The paper reproduced here (Cormode & Veselý, PODS 2020) proves that a
// single comparison-based summary must retain Ω((1/ε)·log(1/ε)) items; the
// practical way to scale past any single node is horizontal: every summary in
// this repository merges with eps_new = max(eps_1, eps_2) (the COMBINE
// discipline of the mergeable-summaries literature the paper cites), so an
// aggregator that pulls the wire snapshot of every node and folds them
// together answers queries over the union of all nodes' streams with
// accuracy max_i eps_i — no error is added by distribution itself.
//
// Pull loop. The Aggregator periodically fetches each configured Source
// (normally GET /snapshot of a quantileserver, via HTTPSource). Fetches carry
// the previous ETag, so an idle node answers 304 and ships no bytes. The
// merged view is rebuilt from the latest payload of every peer — decoding
// fresh summaries each time, so merging (which mutates the receiver) never
// corrupts retained peer state — and published atomically; readers never
// block on a pull, and a round in which every reachable peer answered 304
// skips the rebuild entirely.
//
// Failure handling. A peer that cannot be reached keeps contributing its last
// successful snapshot (stale-but-available beats absent: quantile summaries
// are monotone accumulations, so a stale substream only under-counts recent
// items); the error is recorded per peer and surfaced via Status and the
// aggregator's /stats endpoint. A peer that has never been reached
// contributes nothing until its first successful pull.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"quantilelb/internal/encoding"
	"quantilelb/internal/summary"
)

// Source yields wire payloads of one node's current summary. Implementations
// must be safe for use from the aggregator's pull goroutine.
type Source interface {
	// Name identifies the peer in status reports (for HTTPSource, its URL).
	Name() string
	// Fetch returns the node's current snapshot payload. etag carries the
	// value returned by the previous fetch ("" on the first); notModified
	// reports that the content is unchanged since then, in which case payload
	// is nil and the previous payload remains valid.
	Fetch(ctx context.Context, etag string) (payload []byte, newETag string, notModified bool, err error)
}

// defaultPullClient bounds fetches when HTTPSource.Client is nil. A pull
// must always have a deadline: PullOnce holds pullMu across the round, so a
// single half-open connection to a blackholed peer would otherwise wedge
// every future pull for every peer.
var defaultPullClient = &http.Client{Timeout: 10 * time.Second}

// Adaptive delta suppression (see HTTPSource.Delta): after
// deltaSuppressAfter consecutive delta-eligible fetches answered with a full
// payload, the source stops asking for deltas for deltaReprobeEvery fetches,
// then probes again. A peer whose snapshot layout shuffles every refresh
// (so its deltas never save bytes and it always falls back to full) thus
// stops paying the per-fetch delta-computation cost after a few rounds,
// while a peer that starts producing profitable deltas again is rediscovered
// within a probe cycle.
const (
	deltaSuppressAfter = 3
	deltaReprobeEvery  = 32
)

// HTTPSource pulls GET {URL}/snapshot from a quantileserver (or another
// aggregator — the tier composes into trees, since aggregators re-export
// /snapshot). An HTTPSource carries per-peer negotiation state and must not
// be copied after first use.
type HTTPSource struct {
	// URL is the peer's base URL, e.g. "http://10.0.0.7:8080".
	URL string
	// Client is the HTTP client to use; nil means a shared default with a
	// 10s timeout (never the deadline-less http.DefaultClient — see
	// defaultPullClient).
	Client *http.Client
	// Fresh requests ?fresh=1 snapshots (the peer rebuilds its merged view
	// before answering). Deterministic, at the cost of a merge on the peer
	// per pull; leave false in production, where the peer's AutoRefresh
	// bounds staleness.
	Fresh bool
	// Path is the snapshot endpoint to pull; empty means "/v1/snapshot"
	// (the single-stream tier). The keyed tier pulls "/v1/store/snapshot".
	Path string
	// Delta negotiates incremental snapshots: revalidation fetches ask for
	// ?mode=delta&base=<etag>, and the peer answers with a KindDelta payload
	// when it still holds the base and the delta saves bytes (falling back
	// to the full payload otherwise). The aggregator's pull loop applies the
	// delta to the peer's retained payload; a base mismatch simply forces a
	// full refetch on the next round, so Delta is purely a bandwidth
	// optimization. Negotiation is adaptive: a peer that keeps falling back
	// to full payloads (e.g. one whose snapshot layout changes on every
	// refresh, making every delta as large as the full) is asked for deltas
	// only every deltaReprobeEvery fetches instead of every round, so
	// unprofitable peers do not pay the delta-computation cost forever.
	Delta bool

	// mu guards the adaptive-suppression state below.
	mu sync.Mutex
	// consecFulls counts consecutive delta-requesting fetches the peer
	// answered with a full payload (its "delta would not save bytes"
	// fallback); at deltaSuppressAfter the source suppresses negotiation.
	consecFulls int
	// suppressRemaining is the countdown of fetches left in the current
	// suppression window; while positive, fetches do not ask for deltas.
	suppressRemaining int
}

// shouldAskDelta consumes one step of the suppression state machine and
// reports whether this fetch should negotiate a delta.
func (h *HTTPSource) shouldAskDelta() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.suppressRemaining > 0 {
		h.suppressRemaining--
		if h.suppressRemaining == 0 {
			// The next eligible fetch is the re-probe; a single further full
			// answer re-suppresses immediately.
			h.consecFulls = deltaSuppressAfter - 1
		}
		return false
	}
	return true
}

// recordDeltaOutcome feeds the answer to a delta-negotiated fetch back into
// the suppression state machine.
func (h *HTTPSource) recordDeltaOutcome(gotDelta bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if gotDelta {
		h.consecFulls = 0
		return
	}
	h.consecFulls++
	if h.consecFulls >= deltaSuppressAfter {
		h.consecFulls = 0
		h.suppressRemaining = deltaReprobeEvery
	}
}

// Name returns the peer's base URL.
func (h *HTTPSource) Name() string { return h.URL }

// Fetch implements Source over GET /v1/snapshot with If-None-Match (and
// delta negotiation when Delta is set).
func (h *HTTPSource) Fetch(ctx context.Context, etag string) ([]byte, string, bool, error) {
	path := h.Path
	if path == "" {
		path = "/v1/snapshot"
	}
	u := strings.TrimSuffix(h.URL, "/") + path
	params := url.Values{}
	if h.Fresh {
		params.Set("fresh", "1")
	}
	askedDelta := false
	if h.Delta && etag != "" && h.shouldAskDelta() {
		askedDelta = true
		params.Set("mode", "delta")
		params.Set("base", etag)
	}
	if len(params) > 0 {
		u += "?" + params.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, "", false, err
	}
	if etag != "" {
		req.Header.Set("If-None-Match", etag)
	}
	client := h.Client
	if client == nil {
		client = defaultPullClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, "", false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNotModified:
		return nil, etag, true, nil
	case http.StatusOK:
		payload, err := io.ReadAll(io.LimitReader(resp.Body, MaxBodyBytes+1))
		if err != nil {
			return nil, "", false, fmt.Errorf("reading snapshot body: %w", err)
		}
		if len(payload) > MaxBodyBytes {
			return nil, "", false, fmt.Errorf("snapshot exceeds %d bytes", MaxBodyBytes)
		}
		if askedDelta {
			h.recordDeltaOutcome(encoding.IsDelta(payload))
		}
		return payload, resp.Header.Get("ETag"), false, nil
	}
	return nil, "", false, fmt.Errorf("GET %s: status %s", u, resp.Status)
}

// SummarySource adapts an in-process payload producer to the Source
// interface — used by tests and by the benchmark harness to drive the
// aggregation path without HTTP.
type SummarySource struct {
	// SourceName identifies the peer in status reports.
	SourceName string
	// Payload returns the node's current wire payload.
	Payload func() ([]byte, error)
}

// Name returns the configured source name.
func (s *SummarySource) Name() string { return s.SourceName }

// Fetch implements Source; it never reports 304 (local producers are cheap
// enough to re-encode).
func (s *SummarySource) Fetch(context.Context, string) ([]byte, string, bool, error) {
	p, err := s.Payload()
	return p, "", false, err
}

// peerState is the aggregator's record of one source. Fields are written
// only by the pull round in flight (pullMu serializes rounds) and every
// write additionally holds Aggregator.mu, so Status can copy a consistent
// view without waiting out a round's network fetches.
type peerState struct {
	src          Source
	etag         string
	payload      []byte
	kind         encoding.Kind
	n            int
	lastErr      error
	lastSuccess  time.Time
	fetches      int
	notModified  int
	deltaFetches int   // fetches answered with a KindDelta payload
	wireBytes    int64 // total snapshot bytes received (deltas at delta size)
}

// PeerStatus is a point-in-time view of one peer for monitoring.
type PeerStatus struct {
	// Name identifies the peer (its URL for HTTP sources).
	Name string `json:"name"`
	// Healthy reports that the most recent pull succeeded.
	Healthy bool `json:"healthy"`
	// LastError is the most recent pull error, empty when Healthy.
	LastError string `json:"last_error,omitempty"`
	// Kind names the summary family of the peer's last payload.
	Kind string `json:"kind,omitempty"`
	// N is the update count the peer's last payload covers.
	N int `json:"n"`
	// PayloadBytes is the size of the retained payload.
	PayloadBytes int `json:"payload_bytes"`
	// Fetches counts pull attempts; NotModified counts those answered 304.
	Fetches     int `json:"fetches"`
	NotModified int `json:"not_modified"`
	// DeltaFetches counts fetches answered with an incremental KindDelta
	// payload; WireBytes totals the snapshot bytes actually received
	// (deltas counted at delta size — the bandwidth the tier paid).
	DeltaFetches int   `json:"delta_fetches,omitempty"`
	WireBytes    int64 `json:"wire_bytes"`
	// LastSuccess is the time of the last successful pull (zero if never).
	LastSuccess time.Time `json:"last_success,omitzero"`
}

// fetchOutcome is the result of one peer fetch within a pull round.
type fetchOutcome struct {
	payload     []byte
	etag        string
	notModified bool
	err         error
}

// fetchRound fetches every peer's snapshot concurrently — with no lock held,
// so a blackholed peer never makes Status (and GET /stats, the endpoint that
// diagnoses exactly that incident) wait out the HTTP timeout — then records
// the outcomes into the peer states under mu. It reports whether any peer
// shipped a new payload, plus the per-peer fetch errors. The caller must
// hold its pull-round mutex, which makes this round the only writer of the
// peer fields read here. Shared by the single-stream Aggregator and the
// KeyedAggregator.
func fetchRound(ctx context.Context, peers []*peerState, mu *sync.Mutex) (changed bool, errs []error) {
	outcomes := make([]fetchOutcome, len(peers))
	var wg sync.WaitGroup
	for i, p := range peers {
		wg.Add(1)
		go func(i int, p *peerState) {
			defer wg.Done()
			var o fetchOutcome
			o.payload, o.etag, o.notModified, o.err = p.src.Fetch(ctx, p.etag)
			outcomes[i] = o
		}(i, p)
	}
	wg.Wait()

	errs = make([]error, 0, len(peers)+1)
	now := time.Now()
	mu.Lock()
	for i, p := range peers {
		o := outcomes[i]
		p.fetches++
		if o.err != nil {
			errs = append(errs, fmt.Errorf("peer %s: %w", p.src.Name(), o.err))
			p.lastErr = o.err
			continue
		}
		p.lastErr = nil
		p.lastSuccess = now
		if o.notModified {
			p.notModified++
			continue
		}
		p.wireBytes += int64(len(o.payload))
		if encoding.IsDelta(o.payload) {
			// An incremental snapshot: reconstruct the full payload against
			// the peer's retained base. ApplyDelta verifies both content
			// hashes, so a stale or wrong base can never splice a corrupt
			// payload into the merge — it clears the peer's state instead,
			// forcing a full refetch next round.
			p.deltaFetches++
			full, err := encoding.ApplyDelta(p.payload, o.payload)
			if err != nil {
				err = fmt.Errorf("applying delta snapshot: %w", err)
				errs = append(errs, fmt.Errorf("peer %s: %w", p.src.Name(), err))
				p.lastErr = err
				p.payload = nil
				p.etag = ""
				continue
			}
			o.payload = full
		}
		p.payload = o.payload
		p.etag = o.etag
		changed = true
	}
	mu.Unlock()
	return changed, errs
}

// statusLocked builds the per-peer monitoring view; the caller holds the
// owning aggregator's field mutex.
func statusLocked(peers []*peerState) []PeerStatus {
	out := make([]PeerStatus, len(peers))
	for i, p := range peers {
		st := PeerStatus{
			Name:         p.src.Name(),
			Healthy:      p.lastErr == nil && !p.lastSuccess.IsZero(),
			N:            p.n,
			PayloadBytes: len(p.payload),
			Fetches:      p.fetches,
			NotModified:  p.notModified,
			DeltaFetches: p.deltaFetches,
			WireBytes:    p.wireBytes,
			LastSuccess:  p.lastSuccess,
		}
		if p.lastErr != nil {
			st.LastError = p.lastErr.Error()
		}
		if p.kind != 0 {
			st.Kind = p.kind.String()
		}
		out[i] = st
	}
	return out
}

// view is the immutable published merged state.
type view struct {
	sum     summary.Summary[float64]
	n       int
	peers   int   // number of peers contributing a payload
	version int64 // strictly monotonic rebuild counter, the ETag basis
}

// Aggregator merges the snapshots of many Sources into one logical summary
// and serves the read API from the merged view. All read methods are safe
// for concurrent use and never block on a pull in flight.
type Aggregator struct {
	peers    []*peerState
	pullMu   sync.Mutex // serializes pull rounds; never held while reading
	mu       sync.Mutex // guards peerState fields; held only for field access
	view     atomic.Pointer[view]
	pulls    atomic.Int64
	rebuilds atomic.Int64
	tree     *TreeConfig  // non-nil for combiners (see tree.go)
	sheds    atomic.Int64 // rounds that hit the tree's RoundTimeout
}

// New returns an aggregator over the given sources. The merged view is empty
// until the first PullOnce (or Start tick) completes.
func New(sources ...Source) *Aggregator {
	a := &Aggregator{}
	for _, src := range sources {
		a.peers = append(a.peers, &peerState{src: src})
	}
	return a
}

// NewHTTP returns an aggregator pulling GET /snapshot from each peer base
// URL with the given client (nil for http.DefaultClient).
func NewHTTP(client *http.Client, peerURLs ...string) *Aggregator {
	srcs := make([]Source, len(peerURLs))
	for i, u := range peerURLs {
		srcs[i] = &HTTPSource{URL: u, Client: client}
	}
	return New(srcs...)
}

// PullOnce fetches every peer's snapshot concurrently, rebuilds the merged
// view from the latest payload of each peer, and publishes it. Peers that
// fail keep their previous payload (see the package comment on failure
// handling); their errors are joined into the returned error, so a non-nil
// return with a still-updated view is the expected partial-failure outcome.
// An error decoding or merging a payload aborts the rebuild instead: a
// corrupt peer must not silently vanish from the global answer.
func (a *Aggregator) PullOnce(ctx context.Context) error {
	a.pullMu.Lock()
	defer a.pullMu.Unlock()
	a.pulls.Add(1)

	// Backpressure: a combiner bounds its round so one slow child cannot
	// stall the whole level — children past the deadline are shed to stale
	// serving and the shed counter ticks.
	if a.tree != nil && a.tree.RoundTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, a.tree.RoundTimeout)
		defer cancel()
	}
	changed, errs := fetchRound(ctx, a.peers, &a.mu)
	if a.tree != nil && errors.Is(ctx.Err(), context.DeadlineExceeded) {
		a.sheds.Add(1)
	}

	// Nothing moved (every reachable peer answered 304) and a view is
	// already published: skip the decode + merge entirely — the whole point
	// of the ETag path is that idle rounds cost nothing.
	if !changed && a.view.Load() != nil {
		return errors.Join(errs...)
	}
	if badPeer, err := a.rebuild(); err != nil {
		// A payload that fails to decode or merge must not be retained: its
		// ETag would keep answering 304 and freeze the view behind a
		// rebuild that can never succeed. Dropping payload and ETag forces
		// a refetch next round, and the recorded error makes the peer show
		// unhealthy in Status until a usable payload arrives.
		if badPeer != nil {
			a.mu.Lock()
			badPeer.payload = nil
			badPeer.etag = ""
			badPeer.lastErr = err
			a.mu.Unlock()
		}
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// rebuild decodes every retained payload and publishes the merged view; on
// failure it returns the peer whose payload could not be used. Caller holds
// pullMu (but not mu: decoding and merging large payloads must not block
// Status).
func (a *Aggregator) rebuild() (*peerState, error) {
	var merged any
	contributing := 0
	for _, p := range a.peers {
		if len(p.payload) == 0 {
			continue
		}
		dec, err := encoding.Decode(p.payload)
		if err != nil {
			return p, fmt.Errorf("peer %s: decoding snapshot: %w", p.src.Name(), err)
		}
		kind, _ := encoding.DetectKind(p.payload)
		sum, ok := dec.(summary.Summary[float64])
		if !ok {
			return p, fmt.Errorf("peer %s: payload kind %v is not a quantile summary", p.src.Name(), kind)
		}
		if a.tree != nil {
			// Per-level budget: a child that spent more than its level allows
			// would silently void the tree's end-to-end guarantee — reject it
			// like a corrupt payload (dropped and refetched, peer unhealthy).
			if err := a.tree.validateChild(p.src.Name(), dec); err != nil {
				return p, err
			}
		}
		a.mu.Lock()
		p.kind = kind
		p.n = sum.Count()
		a.mu.Unlock()
		contributing++
		if merged == nil {
			merged = dec
			continue
		}
		if err := mergeAny(merged, dec); err != nil {
			return p, fmt.Errorf("peer %s: %w", p.src.Name(), err)
		}
	}
	if merged == nil {
		a.view.Store(&view{version: a.rebuilds.Add(1)})
		return nil, nil
	}
	if a.tree != nil {
		// Spend this level's eps/h: prune the merged view to ⌈h/eps⌉+1
		// retained entries so the payload shipped upward is O(h/eps)
		// regardless of fan-in. The view is decoded fresh every rebuild, so
		// the degradation never compounds across rounds.
		if pr, ok := merged.(pruner); ok {
			pr.Prune(a.tree.pruneK())
		}
	}
	sum := merged.(summary.Summary[float64])
	a.view.Store(&view{sum: sum, n: sum.Count(), peers: contributing, version: a.rebuilds.Add(1)})
	return nil, nil
}

// mergeAny folds src into dst when both hold the same mergeable concrete
// summary type, delegating to the shared dispatch of internal/encoding.
// Every branch preserves the COMBINE budget eps_new = max.
func mergeAny(dst, src any) error {
	if err := encoding.MergeAny(dst, src); err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	return nil
}

// Start launches a background pull loop with the given interval and returns
// a function that stops it. Pull errors are retained per peer and visible
// via Status; the loop itself never stops on error.
func (a *Aggregator) Start(interval time.Duration) (stop func()) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				_ = a.PullOnce(ctx)
			case <-ctx.Done():
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			cancel()
			<-done
		})
	}
}

// load returns the published merged view, never nil.
func (a *Aggregator) load() *view {
	if v := a.view.Load(); v != nil {
		return v
	}
	return &view{}
}

// Query returns an approximate ϕ-quantile over the union of all peers'
// streams (as of each peer's last pulled snapshot); false while no peer has
// contributed yet.
func (a *Aggregator) Query(phi float64) (float64, bool) {
	v := a.load()
	if v.sum == nil {
		return 0, false
	}
	return v.sum.Query(phi)
}

// EstimateRank estimates the number of items ≤ q across all peers.
func (a *Aggregator) EstimateRank(q float64) int {
	v := a.load()
	if v.sum == nil {
		return 0
	}
	return v.sum.EstimateRank(q)
}

// CDF returns the estimated fraction of items ≤ q across all peers, clamped
// to [0, 1].
func (a *Aggregator) CDF(q float64) float64 {
	v := a.load()
	if v.sum == nil || v.n == 0 {
		return 0
	}
	r := v.sum.EstimateRank(q)
	if r < 0 {
		r = 0
	}
	if r > v.n {
		r = v.n
	}
	return float64(r) / float64(v.n)
}

// Count returns the total number of items covered by the merged view.
func (a *Aggregator) Count() int { return a.load().n }

// StoredItems returns the merged view's retained items in non-decreasing
// order.
func (a *Aggregator) StoredItems() []float64 {
	v := a.load()
	if v.sum == nil {
		return nil
	}
	return v.sum.StoredItems()
}

// StoredCount returns the number of items the merged view retains (the
// paper's space measure, for the global summary).
func (a *Aggregator) StoredCount() int {
	v := a.load()
	if v.sum == nil {
		return 0
	}
	return v.sum.StoredCount()
}

// Update panics: the aggregator is a read-only tier. Writes go to the
// underlying quantileserver nodes.
func (a *Aggregator) Update(float64) {
	panic("cluster: the aggregator is read-only; send updates to a server node")
}

// ContributingPeers returns how many peers' payloads are in the merged view.
func (a *Aggregator) ContributingPeers() int { return a.load().peers }

// Pulls returns the number of pull rounds performed.
func (a *Aggregator) Pulls() int { return int(a.pulls.Load()) }

// SnapshotVersion reports the merged view's rebuild version without
// serializing it; ok is false before the first successful rebuild. The
// version is a change detector (the content-hash ETag is derived from the
// payload itself): it ticks on every rebuild, so a rebuild that changed the
// content at an unchanged count can never serve a stale cached snapshot.
func (a *Aggregator) SnapshotVersion() (int64, bool) {
	v := a.load()
	if v.sum == nil {
		return 0, false
	}
	return v.version, true
}

// SnapshotPayload re-exports the merged view as a wire payload, so
// aggregators compose: a higher-level aggregator can pull from this one
// exactly as it pulls from a server node.
func (a *Aggregator) SnapshotPayload() ([]byte, int64, error) {
	v := a.load()
	if v.sum == nil {
		return nil, 0, errors.New("cluster: no merged view yet")
	}
	payload, err := encoding.Encode(v.sum)
	if err != nil {
		return nil, 0, err
	}
	return payload, v.version, nil
}

// Status reports the per-peer pull state for monitoring. It never waits on
// a pull round in flight — only on the brief field-update sections — so
// /stats stays responsive while a dead peer times out.
func (a *Aggregator) Status() []PeerStatus {
	a.mu.Lock()
	defer a.mu.Unlock()
	return statusLocked(a.peers)
}

// NewAggregatorHandler returns the aggregator's HTTP API: the same read
// endpoints a server node exposes (/quantile, /rank, /cdf — identical JSON
// shapes, so clients need not know which tier they query), plus:
//
//	GET  /stats     merged view size and per-peer pull health
//	GET  /snapshot  the merged view re-exported as a wire payload (ETag'd by
//	                a content hash, deltas served against recent bases), so
//	                aggregators compose into trees
//	POST /pull      force a pull round now; 502 when every peer failed
//
// Every route is also mounted under the versioned /v1/ prefix. Combiners
// with pushing children use NewTreeAggregatorHandler instead, which adds the
// POST /v1/child/{name}/snapshot route on top of this surface.
func NewAggregatorHandler(a *Aggregator) http.Handler {
	mux := http.NewServeMux()
	registerAggregatorAPI(mux, a)
	return mux
}

// registerAggregatorAPI mounts the aggregator surface on mux; shared by
// NewAggregatorHandler and NewTreeAggregatorHandler.
func registerAggregatorAPI(mux *http.ServeMux, a *Aggregator) {
	snaps := &snapCache{}
	registerReadAPI(mux, a)
	handleBoth(mux, "GET /stats", func(w http.ResponseWriter, r *http.Request) {
		stats := map[string]any{
			"n":            a.Count(),
			"stored":       a.StoredCount(),
			"contributing": a.ContributingPeers(),
			"pulls":        a.Pulls(),
			"peers":        a.Status(),
		}
		if cfg := a.Tree(); cfg != nil {
			stats["tree"] = map[string]any{
				"eps":    cfg.Eps,
				"height": cfg.Height,
				"level":  cfg.Level,
				"sheds":  a.Sheds(),
			}
		}
		writeJSON(w, stats)
	})
	handleBoth(mux, "GET /snapshot", func(w http.ResponseWriter, r *http.Request) {
		serveSnapshot(w, r, snaps, a)
	})
	handleBoth(mux, "POST /pull", func(w http.ResponseWriter, r *http.Request) {
		err := a.PullOnce(r.Context())
		if err != nil && a.ContributingPeers() == 0 {
			httpError(w, http.StatusBadGateway, "pull failed: %v", err)
			return
		}
		resp := map[string]any{"n": a.Count(), "contributing": a.ContributingPeers()}
		if err != nil {
			resp["partial_error"] = err.Error()
		}
		writeJSON(w, resp)
	})
}
