package cluster_test

// The end-to-end proof of the keyed tier: three real keyed writer nodes
// (httptest servers running the full NewStoreServerHandler surface), one
// keyed aggregator pulling their KindStore containers over HTTP, and the
// exact oracle of internal/rank checking that every per-key merged answer
// respects the COMBINE budget — error ≤ max eps over the nodes holding the
// key — across disjoint keys, overlapping keys, heterogeneous per-node
// accuracies, and the paper's own adversarial lower-bound stream
// concentrated on one hot key split over all three nodes.

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	quantilelb "quantilelb"
	"quantilelb/internal/bench"
	"quantilelb/internal/cluster"
	"quantilelb/internal/rank"
	"quantilelb/internal/store"
	"quantilelb/internal/stream"
)

// postKeyedBatch ships a batch to one node's keyed update endpoint the way a
// real producer would: a JSON array in chunks.
func postKeyedBatch(t *testing.T, baseURL, key string, items []float64) {
	t.Helper()
	const chunk = 4096
	for i := 0; i < len(items); i += chunk {
		end := min(i+chunk, len(items))
		body := new(bytes.Buffer)
		body.WriteByte('[')
		for j := i; j < end; j++ {
			if j > i {
				body.WriteByte(',')
			}
			fmt.Fprintf(body, "%g", items[j])
		}
		body.WriteByte(']')
		resp, err := http.Post(baseURL+"/k/"+key+"/update", "application/json", body)
		if err != nil {
			t.Fatalf("POST /k/%s/update: %v", key, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /k/%s/update: status %d", key, resp.StatusCode)
		}
	}
}

func TestKeyedEndToEndThreeNodesOneAggregator(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end keyed cluster test")
	}
	// Heterogeneous per-node accuracy: the COMBINE bound for a key is the
	// max eps over the nodes that hold it.
	nodeEps := []float64{0.01, 0.02, 0.015}
	stores := make([]*store.Store, 3)
	servers := make([]*httptest.Server, 3)
	urls := make([]string, 3)
	for i := range stores {
		stores[i] = store.New(store.Config{Eps: nodeEps[i]})
		// The full writer-node surface: single-stream sharded summary plus
		// the keyed store, exactly what cmd/quantileserver serves.
		h := cluster.NewStoreServerHandler(
			quantilelb.NewSharded(quantilelb.GKFactory(nodeEps[i]), 4),
			stores[i],
		)
		servers[i] = httptest.NewServer(h)
		defer servers[i].Close()
		urls[i] = servers[i].URL
	}

	gen := stream.NewGenerator(11)
	// sent[key] accumulates the true union substream per key.
	sent := map[string][]float64{}
	send := func(node int, key string, items []float64) {
		postKeyedBatch(t, urls[node], key, items)
		sent[key] = append(sent[key], items...)
	}
	// epsFor[key] = max eps over nodes holding the key.
	epsFor := map[string]float64{}
	holds := func(key string, nodes ...int) {
		for _, n := range nodes {
			if nodeEps[n] > epsFor[key] {
				epsFor[key] = nodeEps[n]
			}
		}
	}

	// Overlapping key on all three nodes, different distributions per node.
	send(0, "lat.api", gen.Shuffled(12_000).Items())
	send(1, "lat.api", gen.Uniform(9_000).Items())
	send(2, "lat.api", gen.Zipf(6_000, 1.3, 1).Items())
	holds("lat.api", 0, 1, 2)

	// Overlapping on two nodes.
	send(0, "lat.db", gen.Sorted(8_000).Items())
	send(1, "lat.db", gen.Reverse(8_000).Items())
	holds("lat.db", 0, 1)

	// Disjoint keys, one per node.
	send(0, "tenant.a", gen.Gaussian(5_000, 100, 15).Items())
	send(1, "tenant.b", gen.Duplicates(5_000, 50).Items())
	send(2, "tenant.c", gen.Drift(5_000).Items())
	holds("tenant.a", 0)
	holds("tenant.b", 1)
	holds("tenant.c", 2)

	// The paper's adversarial stream on one hot key, split round-robin over
	// all three nodes: the worst-case input the lower bound constructs,
	// concentrated on a single tenant of the multi-tenant tier.
	adv, err := bench.AdversarialWorkload(8_192)
	if err != nil {
		t.Fatalf("building adversarial workload: %v", err)
	}
	third := len(adv.Items) / 3
	send(0, "hot.adversarial", adv.Items[:third])
	send(1, "hot.adversarial", adv.Items[third:2*third])
	send(2, "hot.adversarial", adv.Items[2*third:])
	holds("hot.adversarial", 0, 1, 2)

	agg := cluster.NewKeyedHTTP(nil, urls...)
	if err := agg.PullOnce(t.Context()); err != nil {
		t.Fatalf("pull: %v", err)
	}
	if got := agg.ContributingPeers(); got != 3 {
		t.Fatalf("contributing peers = %d, want 3", got)
	}
	wantKeys := []string{"hot.adversarial", "lat.api", "lat.db", "tenant.a", "tenant.b", "tenant.c"}
	gotKeys := agg.Keys()
	if len(gotKeys) != len(wantKeys) {
		t.Fatalf("merged keys = %v, want %v", gotKeys, wantKeys)
	}
	for i := range wantKeys {
		if gotKeys[i] != wantKeys[i] {
			t.Fatalf("merged keys = %v, want %v", gotKeys, wantKeys)
		}
	}

	// Every per-key merged answer over a dense quantile grid must respect
	// the COMBINE budget of the nodes holding the key.
	const grid = 100
	for key, items := range sent {
		oracle := rank.Float64Oracle(items)
		n := len(items)
		if got := agg.Count(key); got != n {
			t.Errorf("key %q: merged count %d, want %d", key, got, n)
		}
		allowance := epsFor[key]*float64(n) + 1
		worst := 0
		for i := 0; i <= grid; i++ {
			phi := float64(i) / float64(grid)
			got, ok := agg.Query(key, phi)
			if !ok {
				t.Fatalf("key %q: empty merged answer at phi=%g", key, phi)
			}
			if e := oracle.RankError(got, phi); e > worst {
				worst = e
			}
		}
		if float64(worst) > allowance {
			t.Errorf("key %q: worst merged rank error %d exceeds COMBINE allowance %.0f (eps=%g, n=%d)",
				key, worst, allowance, epsFor[key], n)
		}
		// Rank estimates carry the same budget.
		q := oracle.Quantile(0.5)
		if e := abs(agg.EstimateRank(key, q) - oracle.RankLE(q)); float64(e) > allowance {
			t.Errorf("key %q: rank estimate error %d exceeds allowance %.0f", key, e, allowance)
		}
	}

	// A second idle round is all 304s and leaves the view untouched.
	v1, _ := agg.SnapshotVersion()
	if err := agg.PullOnce(t.Context()); err != nil {
		t.Fatalf("idle pull: %v", err)
	}
	if v2, _ := agg.SnapshotVersion(); v2 != v1 {
		t.Errorf("idle pull rebuilt the view: version %d -> %d", v1, v2)
	}

	// New writes on one node flow through on the next pull.
	send(2, "tenant.c", []float64{1e9})
	if err := agg.PullOnce(t.Context()); err != nil {
		t.Fatalf("post-write pull: %v", err)
	}
	if got := agg.Count("tenant.c"); got != len(sent["tenant.c"]) {
		t.Errorf("tenant.c count after new write = %d, want %d", got, len(sent["tenant.c"]))
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
