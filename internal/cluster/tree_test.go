package cluster_test

// Acceptance tests of the hierarchical tier: a 100-leaf height-2 tree
// answers within the end-to-end budget eps (eps/h spent per level), a
// height-3 tree composes combiners over combiners with delta negotiation on
// every edge, mis-budgeted children are rejected instead of silently voiding
// the guarantee, slow children are shed to stale serving under the round
// deadline, and pushed snapshots replace (never accumulate).

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"quantilelb/internal/cluster"
	"quantilelb/internal/encoding"
	"quantilelb/internal/gk"
	"quantilelb/internal/rank"
	"quantilelb/internal/sharded"
	"quantilelb/internal/stream"
)

// startLeaf boots one writer node at the given accuracy.
func startLeaf(t *testing.T, eps float64) (*httptest.Server, *sharded.Sharded[float64, *gk.Summary[float64]]) {
	t.Helper()
	s := sharded.New(func() *gk.Summary[float64] { return gk.NewFloat64(eps) }, 1)
	srv := httptest.NewServer(cluster.NewServerHandler(s))
	t.Cleanup(srv.Close)
	return srv, s
}

// assertWithinEps checks the merged view against the exact oracle on a
// 101-point phi grid: rank error ≤ eps·N + 1 (the +1 forgives rank
// rounding at the grid ends).
func assertWithinEps(t *testing.T, agg *cluster.Aggregator, items []float64, eps float64) {
	t.Helper()
	n := len(items)
	if agg.Count() != n {
		t.Fatalf("merged view covers %d items, want %d", agg.Count(), n)
	}
	oracle := rank.Float64Oracle(items)
	limit := eps*float64(n) + 1
	for i := 0; i <= 100; i++ {
		phi := float64(i) / 100
		v, ok := agg.Query(phi)
		if !ok {
			t.Fatalf("Query(%g) on a non-empty tree root", phi)
		}
		if e := oracle.RankError(v, phi); float64(e) > limit {
			t.Errorf("phi=%g: rank error %d exceeds the tree budget %.0f", phi, e, limit)
		}
	}
}

// TestTreeHeight2Fanin100 is the headline acceptance test: 100 leaf servers
// at eps/2 under one root combiner (height 2), merged rank error ≤ eps, with
// delta snapshots negotiated on the second round.
func TestTreeHeight2Fanin100(t *testing.T) {
	const (
		leaves  = 100
		eps     = 0.02
		perLeaf = 2000
	)
	items := stream.NewGenerator(31).Shuffled(leaves * perLeaf).Items()

	shards := make([]*sharded.Sharded[float64, *gk.Summary[float64]], leaves)
	sources := make([]cluster.Source, leaves)
	for i := 0; i < leaves; i++ {
		srv, s := startLeaf(t, eps/2)
		shards[i] = s
		sources[i] = &cluster.HTTPSource{URL: srv.URL, Fresh: true, Delta: true}
	}
	// First round: 3/4 of each leaf's slice.
	cut := perLeaf * 3 / 4
	for i := 0; i < leaves; i++ {
		shard := items[i*perLeaf : (i+1)*perLeaf]
		shards[i].UpdateBatch(shard[:cut])
	}

	root, err := cluster.NewTree(cluster.TreeConfig{Eps: eps, Height: 2, Level: 2}, sources...)
	if err != nil {
		t.Fatal(err)
	}
	if err := root.PullOnce(context.Background()); err != nil {
		t.Fatalf("round 1: %v", err)
	}

	// Second round ingests the rest, so revalidation fetches can negotiate
	// deltas against the bases pulled in round 1.
	for i := 0; i < leaves; i++ {
		shard := items[i*perLeaf : (i+1)*perLeaf]
		shards[i].UpdateBatch(shard[cut:])
	}
	if err := root.PullOnce(context.Background()); err != nil {
		t.Fatalf("round 2: %v", err)
	}

	assertWithinEps(t, root, items, eps)

	// The root's exported view must be pruned to the level budget's size —
	// O(h/eps) entries, not the sum of 100 leaf summaries.
	k := int(float64(2)/eps) + 2
	if got := root.StoredCount(); got > k {
		t.Errorf("root retains %d entries after prune, want ≤ %d", got, k)
	}

	// Delta negotiation must have fired on the incremental round.
	deltas, wire := 0, int64(0)
	for _, ps := range root.Status() {
		deltas += ps.DeltaFetches
		wire += ps.WireBytes
	}
	if deltas == 0 {
		t.Error("no peer negotiated a delta snapshot on the incremental round")
	}
	if wire == 0 {
		t.Error("wire-byte accounting recorded nothing")
	}
}

// TestTreeHeight3Composes stacks combiners: 6 leaves at eps/3, two mid
// combiners (level 2) over 3 leaves each, one root (level 3) over the mids,
// deltas negotiated on every edge. End-to-end error ≤ eps.
func TestTreeHeight3Composes(t *testing.T) {
	const (
		eps     = 0.03
		perLeaf = 3000
	)
	items := stream.NewGenerator(37).Drift(6 * perLeaf).Items()

	var midURLs []string
	shards := make([]*sharded.Sharded[float64, *gk.Summary[float64]], 6)
	for m := 0; m < 2; m++ {
		var leafSources []cluster.Source
		for l := 0; l < 3; l++ {
			i := m*3 + l
			srv, s := startLeaf(t, eps/3)
			shards[i] = s
			s.UpdateBatch(items[i*perLeaf : (i+1)*perLeaf])
			leafSources = append(leafSources, &cluster.HTTPSource{URL: srv.URL, Fresh: true, Delta: true})
		}
		mid, err := cluster.NewTree(cluster.TreeConfig{Eps: eps, Height: 3, Level: 2}, leafSources...)
		if err != nil {
			t.Fatal(err)
		}
		if err := mid.PullOnce(context.Background()); err != nil {
			t.Fatalf("mid %d: %v", m, err)
		}
		midSrv := httptest.NewServer(cluster.NewAggregatorHandler(mid))
		t.Cleanup(midSrv.Close)
		midURLs = append(midURLs, midSrv.URL)
	}

	root, err := cluster.NewTreeHTTP(cluster.TreeConfig{Eps: eps, Height: 3, Level: 3}, nil, midURLs...)
	if err != nil {
		t.Fatal(err)
	}
	if err := root.PullOnce(context.Background()); err != nil {
		t.Fatalf("root: %v", err)
	}
	assertWithinEps(t, root, items, eps)
}

// TestTreeRejectsMisbudgetedChild: a leaf running at full eps under a
// height-2 tree (budget eps/2) is rejected at rebuild — the round errors,
// the child shows unhealthy, and the view excludes it.
func TestTreeRejectsMisbudgetedChild(t *testing.T) {
	srvGood, sGood := startLeaf(t, 0.01)
	sGood.UpdateBatch(stream.NewGenerator(3).Shuffled(1000).Items())
	srvBad, sBad := startLeaf(t, 0.05) // exceeds the 0.01 = eps/2 budget
	sBad.UpdateBatch(stream.NewGenerator(4).Shuffled(1000).Items())

	root, err := cluster.NewTree(cluster.TreeConfig{Eps: 0.02, Height: 2, Level: 2},
		&cluster.HTTPSource{URL: srvGood.URL, Fresh: true},
		&cluster.HTTPSource{URL: srvBad.URL, Fresh: true})
	if err != nil {
		t.Fatal(err)
	}
	err = root.PullOnce(context.Background())
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("PullOnce with a mis-budgeted child: err = %v, want a budget violation", err)
	}

	// Construction itself validates the config.
	if _, err := cluster.NewTree(cluster.TreeConfig{Eps: 0.02, Height: 1, Level: 1}); err == nil {
		t.Error("NewTree accepted height 1")
	}
	if _, err := cluster.NewTree(cluster.TreeConfig{Eps: 1.5, Height: 2, Level: 2}); err == nil {
		t.Error("NewTree accepted eps 1.5")
	}
	if _, err := cluster.NewTree(cluster.TreeConfig{Eps: 0.02, Height: 2, Level: 3}); err == nil {
		t.Error("NewTree accepted level > height")
	}
}

// TestTreeBackpressureSheds: a child that misses the round deadline is shed
// — the round returns promptly, the shed counter ticks, and the root keeps
// serving the child's last good snapshot.
func TestTreeBackpressureSheds(t *testing.T) {
	items := stream.NewGenerator(41).Shuffled(2000).Items()
	s := sharded.New(func() *gk.Summary[float64] { return gk.NewFloat64(0.01) }, 1)
	s.UpdateBatch(items)
	s.Refresh()

	var slow atomic.Bool
	inner := cluster.NewServerHandler(s)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if slow.Load() {
			time.Sleep(400 * time.Millisecond)
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	root, err := cluster.NewTree(
		cluster.TreeConfig{Eps: 0.02, Height: 2, Level: 2, RoundTimeout: 80 * time.Millisecond},
		&cluster.HTTPSource{URL: srv.URL, Delta: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := root.PullOnce(context.Background()); err != nil {
		t.Fatalf("fast round: %v", err)
	}
	if root.Sheds() != 0 {
		t.Fatalf("fast round shed: %d", root.Sheds())
	}
	before, ok := root.Query(0.5)
	if !ok {
		t.Fatal("no view after the fast round")
	}

	slow.Store(true)
	start := time.Now()
	err = root.PullOnce(context.Background())
	if elapsed := time.Since(start); elapsed > 300*time.Millisecond {
		t.Fatalf("slow round took %v, deadline did not bound it", elapsed)
	}
	if err == nil {
		t.Fatal("slow round reported no error")
	}
	if root.Sheds() != 1 {
		t.Fatalf("sheds = %d, want 1", root.Sheds())
	}
	// Stale serving: the pre-shed view still answers.
	if after, ok := root.Query(0.5); !ok || after != before {
		t.Fatalf("shed round disturbed the served view: %v/%v vs %v", after, ok, before)
	}
}

// TestPushSourceReplacement: pushed snapshots replace the child's retained
// payload (repeat pushes never double-count, unlike POST /merge), unknown
// children 404, and non-wire payloads are rejected.
func TestPushSourceReplacement(t *testing.T) {
	child := cluster.NewPushSource("leaf-a")
	root, err := cluster.NewTree(cluster.TreeConfig{Eps: 0.02, Height: 2, Level: 2}, child)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(cluster.NewTreeAggregatorHandler(root, child))
	defer srv.Close()

	mk := func(n int) []byte {
		g := gk.NewFloat64(0.01)
		g.UpdateBatch(stream.NewGenerator(9).Shuffled(n).Items())
		p, err := encoding.EncodeGK(g)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	push := func(name string, payload []byte) *http.Response {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/child/"+name+"/snapshot", "application/octet-stream", bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	if resp := push("leaf-a", mk(1000)); resp.StatusCode != 200 {
		t.Fatalf("push 1: status %d", resp.StatusCode)
	}
	if err := root.PullOnce(context.Background()); err != nil {
		t.Fatalf("pull after push 1: %v", err)
	}
	if root.Count() != 1000 {
		t.Fatalf("count after push 1: %d", root.Count())
	}

	// A newer snapshot covering more items REPLACES the old one: the count
	// becomes 1500, not 2500.
	if resp := push("leaf-a", mk(1500)); resp.StatusCode != 200 {
		t.Fatalf("push 2: status %d", resp.StatusCode)
	}
	if err := root.PullOnce(context.Background()); err != nil {
		t.Fatalf("pull after push 2: %v", err)
	}
	if root.Count() != 1500 {
		t.Fatalf("count after push 2: %d, want 1500 (replacement, not accumulation)", root.Count())
	}

	if resp := push("unknown", mk(10)); resp.StatusCode != 404 {
		t.Fatalf("unknown child: status %d, want 404", resp.StatusCode)
	}
	if resp := push("leaf-a", []byte("garbage")); resp.StatusCode != 400 {
		t.Fatalf("garbage push: status %d, want 400", resp.StatusCode)
	}
	// The rejected garbage must not have clobbered the retained snapshot.
	if err := root.PullOnce(context.Background()); err != nil {
		t.Fatalf("pull after rejected push: %v", err)
	}
	if root.Count() != 1500 {
		t.Fatalf("count after rejected push: %d", root.Count())
	}
}
