package cluster

// Adaptive delta-suppression tests: a peer whose snapshot re-lays-out on
// every refresh makes every delta as large as the full payload, so its
// server falls back to full responses — the source must stop asking for
// deltas after a few rounds instead of making the peer compute an
// unprofitable delta per pull forever.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"

	"quantilelb/internal/encoding"
	"quantilelb/internal/gk"
)

func TestHTTPSourceSuppressesUnprofitableDeltas(t *testing.T) {
	// A peer that always has new content and never serves a delta (the
	// fallback shape of a snapshot whose layout shuffles every refresh).
	var serves atomic.Int64
	var deltaRequests atomic.Int64
	sum := gk.NewFloat64(0.05)
	for i := 0; i < 2_000; i++ {
		sum.Update(float64(i % 211))
	}
	payload, err := encoding.Encode(sum)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("mode") == "delta" {
			deltaRequests.Add(1)
		}
		n := serves.Add(1)
		w.Header().Set("ETag", `"v`+strconv.FormatInt(n, 10)+`"`)
		w.Write(payload)
	}))
	defer srv.Close()

	src := &HTTPSource{URL: srv.URL, Client: srv.Client(), Delta: true}
	const rounds = 50
	etag := ""
	var wireBytes int64
	for i := 0; i < rounds; i++ {
		p, newETag, notModified, err := src.Fetch(context.Background(), etag)
		if err != nil {
			t.Fatalf("fetch %d: %v", i, err)
		}
		if notModified {
			t.Fatalf("fetch %d unexpectedly 304", i)
		}
		wireBytes += int64(len(p))
		etag = newETag
	}

	// Round 1 has no ETag, so negotiation starts at round 2. Three full
	// answers (rounds 2–4) suppress; one re-probe fires after the
	// 32-round window and is itself answered full, re-suppressing. Every
	// other round must not have asked for a delta.
	if got := deltaRequests.Load(); got != 4 {
		t.Fatalf("delta-mode requests = %d over %d rounds, want exactly 4 (3 before suppression + 1 re-probe)", got, rounds)
	}
	// The wire carried exactly the full payloads — no delta overhead, no
	// extra bytes for the failed negotiation.
	if want := int64(rounds * len(payload)); wireBytes != want {
		t.Fatalf("wire bytes = %d, want %d (full payload per round)", wireBytes, want)
	}
}

func TestHTTPSourceKeepsProfitableDeltas(t *testing.T) {
	// A peer that honors delta negotiation must keep being asked: profitable
	// deltas never trip the suppression.
	base := gk.NewFloat64(0.05)
	for i := 0; i < 2_000; i++ {
		base.Update(float64(i % 211))
	}
	full, err := encoding.Encode(base)
	if err != nil {
		t.Fatal(err)
	}
	var version atomic.Int64
	var deltaRequests, deltaServes atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		v := version.Add(1)
		w.Header().Set("ETag", `"v`+strconv.FormatInt(v, 10)+`"`)
		if r.URL.Query().Get("mode") == "delta" {
			deltaRequests.Add(1)
			// A real peer diffs against the client's base; a same-base delta
			// (a tiny header-only payload) is enough to exercise the
			// negotiation bookkeeping.
			d, err := encoding.EncodeDelta(full, full)
			if err == nil && len(d) < len(full) {
				deltaServes.Add(1)
				w.Write(d)
				return
			}
		}
		w.Write(full)
	}))
	defer srv.Close()

	src := &HTTPSource{URL: srv.URL, Client: srv.Client(), Delta: true}
	etag := ""
	const rounds = 40
	for i := 0; i < rounds; i++ {
		p, newETag, _, err := src.Fetch(context.Background(), etag)
		if err != nil {
			t.Fatalf("fetch %d: %v", i, err)
		}
		if i > 0 && !encoding.IsDelta(p) {
			t.Fatalf("fetch %d: expected a delta payload", i)
		}
		etag = newETag
	}
	if got := deltaRequests.Load(); got != rounds-1 {
		t.Fatalf("delta-mode requests = %d, want %d (every revalidation round)", got, rounds-1)
	}
	if deltaServes.Load() != deltaRequests.Load() {
		t.Fatalf("server fell back on %d of %d delta requests", deltaRequests.Load()-deltaServes.Load(), deltaRequests.Load())
	}
}
