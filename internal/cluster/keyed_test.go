package cluster_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"quantilelb/internal/cluster"
	"quantilelb/internal/store"
)

// get decodes a JSON response body into a generic map, failing on non-2xx
// unless wantStatus says otherwise.
func doJSON(t *testing.T, method, url string, body []byte, contentType string, wantStatus int) map[string]any {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s %s: status %d, want %d", method, url, resp.StatusCode, wantStatus)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s %s: decoding body: %v", method, url, err)
	}
	return out
}

func TestKeyedServerEndpoints(t *testing.T) {
	st := store.New(store.Config{Eps: 0.02})
	srv := httptest.NewServer(cluster.NewKeyedServerHandler(st))
	defer srv.Close()

	// Ingest through every body format.
	out := doJSON(t, "POST", srv.URL+"/k/lat.api/update", []byte("1 2 3, 4\n5"), "", 200)
	if out["accepted"].(float64) != 5 {
		t.Fatalf("plain-text accepted = %v", out["accepted"])
	}
	out = doJSON(t, "POST", srv.URL+"/k/lat.api/update", []byte("[6,7,8]"), "application/json", 200)
	if out["accepted"].(float64) != 3 || out["n"].(float64) != 8 {
		t.Fatalf("JSON batch: %v", out)
	}
	doJSON(t, "POST", srv.URL+"/k/lat.db/update?x=10&x=20", nil, "", 200)

	// Per-key reads are isolated.
	out = doJSON(t, "GET", srv.URL+"/k/lat.api/quantile?phi=1", nil, "", 200)
	results := out["results"].([]any)
	if v := results[0].(map[string]any)["value"].(float64); v != 8 {
		t.Fatalf("api max = %v, want 8", v)
	}
	out = doJSON(t, "GET", srv.URL+"/k/lat.db/rank?q=15", nil, "", 200)
	if out["rank"].(float64) != 1 || out["n"].(float64) != 2 {
		t.Fatalf("db rank: %v", out)
	}
	out = doJSON(t, "GET", srv.URL+"/k/lat.db/cdf?q=25", nil, "", 200)
	if p := out["points"].([]any)[0].(map[string]any)["p"].(float64); p != 1 {
		t.Fatalf("db cdf(25) = %v, want 1", p)
	}

	// Key listing and store stats.
	out = doJSON(t, "GET", srv.URL+"/keys", nil, "", 200)
	if out["count"].(float64) != 2 {
		t.Fatalf("keys: %v", out)
	}
	out = doJSON(t, "GET", srv.URL+"/store/stats", nil, "", 200)
	if out["keys"].(float64) != 2 || out["updates"].(float64) != 10 {
		t.Fatalf("store stats: %v", out)
	}

	// Error paths: unknown key 404s like an empty summary, an oversized key
	// and a NaN batch 400, and all errors carry the structured JSON shape.
	out = doJSON(t, "GET", srv.URL+"/k/nope/quantile?phi=0.5", nil, "", 404)
	if _, ok := out["error"]; !ok {
		t.Fatalf("404 body: %v", out)
	}
	doJSON(t, "GET", srv.URL+"/k/"+strings.Repeat("x", 300)+"/quantile?phi=0.5", nil, "", 400)
	doJSON(t, "POST", srv.URL+"/k/lat.api/update", []byte("NaN"), "", 400)
	// The rejected batch must not have been half-ingested.
	if st.Count("lat.api") != 8 {
		t.Fatalf("count after rejected batch = %d, want 8", st.Count("lat.api"))
	}
}

func TestKeyedSnapshotMergeAndETag(t *testing.T) {
	a := store.New(store.Config{Eps: 0.05})
	b := store.New(store.Config{Eps: 0.05})
	for i := 0; i < 500; i++ {
		a.Update("shared", float64(i))
		a.Update("only-a", float64(i))
		b.Update("shared", float64(i+500))
		b.Update("only-b", float64(i))
	}
	srvA := httptest.NewServer(cluster.NewKeyedServerHandler(a))
	defer srvA.Close()
	srvB := httptest.NewServer(cluster.NewKeyedServerHandler(b))
	defer srvB.Close()

	// Pull A's container and 304-revalidate it.
	resp, err := http.Get(srvA.URL + "/store/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	buf := new(bytes.Buffer)
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	payload := buf.Bytes()
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("snapshot has no ETag")
	}
	req, _ := http.NewRequest("GET", srvA.URL+"/store/snapshot", nil)
	req.Header.Set("If-None-Match", etag)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation status %d, want 304", resp2.StatusCode)
	}

	// Push A's container into B: per-key COMBINE merge plus key adoption.
	out := doJSON(t, "POST", srvB.URL+"/store/merge", payload, "application/octet-stream", 200)
	if out["merged_keys"].(float64) != 2 || out["keys"].(float64) != 3 {
		t.Fatalf("merge response: %v", out)
	}
	if b.Count("shared") != 1000 || b.Count("only-a") != 500 {
		t.Fatalf("merged counts: shared=%d only-a=%d", b.Count("shared"), b.Count("only-a"))
	}
	// Garbage payloads are rejected with a structured 400.
	doJSON(t, "POST", srvB.URL+"/store/merge", []byte("garbage"), "", 400)
}

func TestKeyedAggregatorHandlerEndpoints(t *testing.T) {
	st := store.New(store.Config{Eps: 0.02})
	for i := 0; i < 1000; i++ {
		st.Update("m", float64(i))
	}
	node := httptest.NewServer(cluster.NewKeyedServerHandler(st))
	defer node.Close()

	agg := cluster.NewKeyedHTTP(nil, node.URL)
	aggSrv := httptest.NewServer(cluster.NewKeyedAggregatorHandler(agg))
	defer aggSrv.Close()

	// Before any pull the view is empty; /pull forces one.
	out := doJSON(t, "POST", aggSrv.URL+"/pull", nil, "", 200)
	if out["keys"].(float64) != 1 || out["n"].(float64) != 1000 {
		t.Fatalf("pull response: %v", out)
	}
	out = doJSON(t, "GET", aggSrv.URL+"/k/m/quantile?phi=0.5", nil, "", 200)
	v := out["results"].([]any)[0].(map[string]any)["value"].(float64)
	if v < 400 || v > 600 {
		t.Fatalf("merged median %v out of range", v)
	}
	doJSON(t, "GET", aggSrv.URL+"/k/m/rank?q=500", nil, "", 200)
	doJSON(t, "GET", aggSrv.URL+"/k/m/cdf?q=500", nil, "", 200)
	out = doJSON(t, "GET", aggSrv.URL+"/keys", nil, "", 200)
	if out["count"].(float64) != 1 {
		t.Fatalf("agg keys: %v", out)
	}
	out = doJSON(t, "GET", aggSrv.URL+"/stats", nil, "", 200)
	if out["contributing"].(float64) != 1 {
		t.Fatalf("agg stats: %v", out)
	}

	// The merged view re-exports as a container a second-tier keyed
	// aggregator (or a store) can ingest: trees compose.
	resp, err := http.Get(aggSrv.URL + "/store/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	buf := new(bytes.Buffer)
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	restored, err := store.Restore(store.Config{Eps: 0.02}, buf.Bytes())
	if err != nil {
		t.Fatalf("restoring re-exported container: %v", err)
	}
	if restored.Count("m") != 1000 {
		t.Fatalf("restored count = %d", restored.Count("m"))
	}
}

func TestKeyedAggregatorDeadPeerKeepsLastSnapshot(t *testing.T) {
	st := store.New(store.Config{Eps: 0.05})
	for i := 0; i < 200; i++ {
		st.Update("m", float64(i))
	}
	node := httptest.NewServer(cluster.NewKeyedServerHandler(st))
	agg := cluster.NewKeyedHTTP(nil, node.URL)
	if err := agg.PullOnce(t.Context()); err != nil {
		t.Fatalf("first pull: %v", err)
	}
	node.Close()
	if err := agg.PullOnce(t.Context()); err == nil {
		t.Fatal("pull from a dead peer should error")
	}
	// Stale-but-available: the key still answers from the last snapshot.
	if n := agg.Count("m"); n != 200 {
		t.Fatalf("count after peer death = %d, want 200", n)
	}
	status := agg.Status()
	if len(status) != 1 || status[0].Healthy {
		t.Fatalf("dead peer should show unhealthy: %+v", status)
	}
	if status[0].Kind != "store" {
		t.Fatalf("peer kind = %q, want store", status[0].Kind)
	}
}

func TestKeyedAggregator304SkipsRebuild(t *testing.T) {
	st := store.New(store.Config{Eps: 0.05})
	st.Update("m", 1)
	node := httptest.NewServer(cluster.NewKeyedServerHandler(st))
	defer node.Close()
	agg := cluster.NewKeyedHTTP(nil, node.URL)
	for i := 0; i < 3; i++ {
		if err := agg.PullOnce(t.Context()); err != nil {
			t.Fatalf("pull %d: %v", i, err)
		}
	}
	status := agg.Status()
	if status[0].NotModified < 2 {
		t.Fatalf("expected >= 2 not-modified rounds, got %d", status[0].NotModified)
	}
	if v, ok := agg.SnapshotVersion(); !ok || v != 1 {
		t.Fatalf("304 rounds must not rebuild: version %d, ok %v", v, ok)
	}
}
