package cluster_test

// Pins of the redesigned /v1/ API surface: every legacy unversioned route
// serves byte-identical responses to its /v1/ alias (so PR3/PR4 clients and
// the versioned surface cannot drift), snapshot ETags are derived from
// payload content (a restarted node with identical state answers 304), the
// delta negotiation of GET /v1/snapshot round-trips over real HTTP, and the
// structured error envelope ({"error": message, "code": machine-code}) is
// uniform across every cluster handler.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"quantilelb/internal/cluster"
	"quantilelb/internal/encoding"
	"quantilelb/internal/gk"
	"quantilelb/internal/kll"
	"quantilelb/internal/sharded"
	"quantilelb/internal/store"
	"quantilelb/internal/stream"
)

// rawResponse is the full comparable shape of one HTTP exchange.
type rawResponse struct {
	status      int
	contentType string
	etag        string
	body        []byte
}

func doRaw(t *testing.T, method, url string, body []byte, contentType string) rawResponse {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return rawResponse{
		status:      resp.StatusCode,
		contentType: resp.Header.Get("Content-Type"),
		etag:        resp.Header.Get("ETag"),
		body:        data,
	}
}

// v1TestStack is one writer node (single-stream + keyed) with deterministic
// ingested state, plus an aggregator and keyed aggregator pulled over it.
type v1TestStack struct {
	server, agg, keyedAgg *httptest.Server
}

func newV1TestStack(t *testing.T) *v1TestStack {
	t.Helper()
	items := stream.NewGenerator(5).Shuffled(4000).Items()
	s := sharded.New(func() *gk.Summary[float64] { return gk.NewFloat64(0.01) }, 1)
	s.UpdateBatch(items)
	s.Refresh()
	st := store.New(store.Config{Eps: 0.02})
	st.UpdateBatch("lat.api", items[:2000])
	st.UpdateBatch("lat.db", items[2000:])
	srv := httptest.NewServer(cluster.NewStoreServerHandler(s, st))
	t.Cleanup(srv.Close)

	agg := cluster.New(&cluster.HTTPSource{URL: srv.URL})
	if err := agg.PullOnce(context.Background()); err != nil {
		t.Fatalf("aggregator pull: %v", err)
	}
	aggSrv := httptest.NewServer(cluster.NewAggregatorHandler(agg))
	t.Cleanup(aggSrv.Close)

	kagg := cluster.NewKeyed(&cluster.HTTPSource{URL: srv.URL, Path: "/store/snapshot"})
	if err := kagg.PullOnce(context.Background()); err != nil {
		t.Fatalf("keyed aggregator pull: %v", err)
	}
	kaggSrv := httptest.NewServer(cluster.NewKeyedAggregatorHandler(kagg))
	t.Cleanup(kaggSrv.Close)

	return &v1TestStack{server: srv, agg: aggSrv, keyedAgg: kaggSrv}
}

// TestV1RouteEquivalence: every route answers byte-identically under its
// legacy path and its /v1/ alias — read routes on one instance (idempotent),
// mutating routes on twin identically-ingested stacks.
func TestV1RouteEquivalence(t *testing.T) {
	stack := newV1TestStack(t)
	tierOf := func(tier string) *httptest.Server {
		switch tier {
		case "server":
			return stack.server
		case "agg":
			return stack.agg
		default:
			return stack.keyedAgg
		}
	}

	reads := []struct {
		tier, route string
	}{
		{"server", "/quantile?phi=0.5&phi=0.99"},
		{"server", "/rank?q=1200"},
		{"server", "/cdf?q=100&q=3000"},
		{"server", "/stats"},
		{"server", "/snapshot"},
		{"server", "/keys"},
		{"server", "/store/stats"},
		{"server", "/store/snapshot"},
		{"server", "/k/lat.api/quantile?phi=0.9"},
		{"server", "/k/lat.api/rank?q=500"},
		{"server", "/k/lat.db/cdf?q=2500"},
		{"agg", "/quantile?phi=0.5"},
		{"agg", "/rank?q=1200"},
		{"agg", "/cdf?q=100"},
		{"agg", "/stats"},
		{"agg", "/snapshot"},
		{"keyedAgg", "/k/lat.api/quantile?phi=0.5"},
		{"keyedAgg", "/keys"},
		{"keyedAgg", "/stats"},
		{"keyedAgg", "/store/snapshot"},
		// Error paths must carry the identical envelope on both surfaces.
		{"server", "/quantile?phi=2"},
		{"server", "/k/absent/quantile?phi=0.5"},
		{"server", "/snapshot?mode=bogus"},
	}
	for _, tc := range reads {
		srv := tierOf(tc.tier)
		legacy := doRaw(t, "GET", srv.URL+tc.route, nil, "")
		v1 := doRaw(t, "GET", srv.URL+"/v1"+tc.route, nil, "")
		if legacy.status != v1.status || legacy.contentType != v1.contentType ||
			legacy.etag != v1.etag || !bytes.Equal(legacy.body, v1.body) {
			t.Errorf("%s GET %s: legacy (%d, %q, %d bytes) != /v1 (%d, %q, %d bytes)",
				tc.tier, tc.route, legacy.status, legacy.etag, len(legacy.body),
				v1.status, v1.etag, len(v1.body))
		}
	}

	// Mutating routes: twin stacks, legacy on one, /v1/ on the other.
	g := gk.NewFloat64(0.01)
	g.UpdateBatch(stream.NewGenerator(6).Shuffled(500).Items())
	mergePayload, err := encoding.EncodeGK(g)
	if err != nil {
		t.Fatal(err)
	}
	storePayload, err := encoding.EncodeStore([]encoding.KeyedPayload{{Key: "lat.api", Payload: mergePayload}})
	if err != nil {
		t.Fatal(err)
	}
	writes := []struct {
		tier, route string
		body        []byte
		contentType string
	}{
		{"server", "/update", []byte("1 2 3"), ""},
		{"server", "/update", []byte("[4,5]"), "application/json"},
		{"server", "/merge", mergePayload, "application/octet-stream"},
		{"server", "/k/lat.api/update", []byte("6 7"), ""},
		{"server", "/store/merge", storePayload, "application/octet-stream"},
		{"agg", "/pull", nil, ""},
		{"keyedAgg", "/pull", nil, ""},
	}
	a, b := newV1TestStack(t), newV1TestStack(t)
	for _, tc := range writes {
		var srvA, srvB *httptest.Server
		switch tc.tier {
		case "server":
			srvA, srvB = a.server, b.server
		case "agg":
			srvA, srvB = a.agg, b.agg
		default:
			srvA, srvB = a.keyedAgg, b.keyedAgg
		}
		legacy := doRaw(t, "POST", srvA.URL+tc.route, tc.body, tc.contentType)
		v1 := doRaw(t, "POST", srvB.URL+"/v1"+tc.route, tc.body, tc.contentType)
		if legacy.status != v1.status || !bytes.Equal(legacy.body, v1.body) {
			t.Errorf("POST %s: legacy (%d, %s) != /v1 (%d, %s)",
				tc.route, legacy.status, legacy.body, v1.status, v1.body)
		}
	}
}

// TestSnapshotETagSurvivesRestart pins the content-hash ETag bugfix: a node
// rebuilt from scratch with identical state (a restart that replayed its
// input) must answer 304 to an ETag obtained before the restart — the old
// per-boot nonce ETag forced a full refetch of unchanged bytes from every
// child of a restarted combiner.
func TestSnapshotETagSurvivesRestart(t *testing.T) {
	items := stream.NewGenerator(17).Shuffled(3000).Items()
	boot := func() *httptest.Server {
		s := sharded.New(func() *gk.Summary[float64] { return gk.NewFloat64(0.01) }, 1)
		s.UpdateBatch(items)
		s.Refresh()
		return httptest.NewServer(cluster.NewServerHandler(s))
	}
	before := boot()
	defer before.Close()
	first := doRaw(t, "GET", before.URL+"/v1/snapshot", nil, "")
	if first.status != 200 || first.etag == "" {
		t.Fatalf("pre-restart snapshot: status %d, etag %q", first.status, first.etag)
	}

	after := boot() // the "restarted" process: fresh handler, same state
	defer after.Close()
	req, _ := http.NewRequest("GET", after.URL+"/v1/snapshot", nil)
	req.Header.Set("If-None-Match", first.etag)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("post-restart revalidation: status %d, want 304 (etag %q vs %q)",
			resp.StatusCode, resp.Header.Get("ETag"), first.etag)
	}
}

// TestSnapshotDeltaNegotiation drives GET /v1/snapshot?mode=delta over real
// HTTP: a client holding a recent base receives a KindDelta payload that
// applies to its base and reconstructs the current full snapshot; unknown
// bases fall back to full payloads.
func TestSnapshotDeltaNegotiation(t *testing.T) {
	items := stream.NewGenerator(23).Shuffled(50_000).Items()
	s := sharded.New(func() *gk.Summary[float64] { return gk.NewFloat64(0.005) }, 1)
	s.UpdateBatch(items[:49_000])
	s.Refresh()
	srv := httptest.NewServer(cluster.NewServerHandler(s))
	defer srv.Close()

	base := doRaw(t, "GET", srv.URL+"/v1/snapshot", nil, "")
	if base.status != 200 || base.etag == "" {
		t.Fatalf("base snapshot: status %d, etag %q", base.status, base.etag)
	}

	s.UpdateBatch(items[49_000:])
	s.Refresh()
	full := doRaw(t, "GET", srv.URL+"/v1/snapshot?mode=full", nil, "")
	if full.status != 200 || full.etag == base.etag {
		t.Fatalf("head snapshot: status %d, etag %q (unchanged?)", full.status, full.etag)
	}

	delta := doRaw(t, "GET", srv.URL+"/v1/snapshot?mode=delta&base="+strings.Trim(base.etag, `"`), nil, "")
	if delta.status != 200 {
		t.Fatalf("delta snapshot: status %d", delta.status)
	}
	// The ?base= value is the quoted ETag; clients pass it verbatim. Retry
	// with the exact quoted form, which is what HTTPSource sends.
	if !encoding.IsDelta(delta.body) {
		delta = doRaw(t, "GET", srv.URL+"/v1/snapshot?mode=delta&base="+base.etag, nil, "")
	}
	if !encoding.IsDelta(delta.body) {
		t.Fatalf("mode=delta with a known base served a full payload (%d bytes)", len(delta.body))
	}
	if delta.etag != full.etag {
		t.Fatalf("delta response ETag %q, want the head's %q", delta.etag, full.etag)
	}
	if len(delta.body) >= len(full.body) {
		t.Fatalf("delta (%d bytes) not smaller than full (%d bytes)", len(delta.body), len(full.body))
	}
	rebuilt, err := encoding.ApplyDelta(base.body, delta.body)
	if err != nil {
		t.Fatalf("applying served delta: %v", err)
	}
	if !bytes.Equal(rebuilt, full.body) {
		t.Fatal("served delta does not reconstruct the full snapshot")
	}

	// Unknown base: full payload, no Delta-Base header, same ETag.
	unknown := doRaw(t, "GET", srv.URL+`/v1/snapshot?mode=delta&base="nope"`, nil, "")
	if unknown.status != 200 || encoding.IsDelta(unknown.body) || !bytes.Equal(unknown.body, full.body) {
		t.Fatalf("unknown base: status %d, delta=%v", unknown.status, encoding.IsDelta(unknown.body))
	}
}

// TestErrorEnvelope pins the unified error shape across every cluster
// handler: each non-2xx response decodes to {"error": non-empty message,
// "code": the closed machine-readable code for its status}.
func TestErrorEnvelope(t *testing.T) {
	stack := newV1TestStack(t)

	// A kll node makes the 409 merge-conflict path reachable: kll summaries
	// with different k refuse to COMBINE.
	kllS := sharded.New(func() *kll.Sketch[float64] { return kll.NewFloat64(0.01, kll.WithSeed(3)) }, 1)
	kllS.UpdateBatch(stream.NewGenerator(2).Shuffled(1000).Items())
	kllSrv := httptest.NewServer(cluster.NewServerHandler(kllS))
	defer kllSrv.Close()
	coarse := kll.NewFloat64(0.1, kll.WithSeed(4))
	coarse.UpdateBatch(stream.NewGenerator(2).Shuffled(1000).Items())
	conflictPayload, err := encoding.Encode(coarse)
	if err != nil {
		t.Fatal(err)
	}

	// An aggregator over an unreachable peer makes the 502 path reachable.
	deadAgg := httptest.NewServer(cluster.NewAggregatorHandler(
		cluster.New(&cluster.HTTPSource{URL: "http://127.0.0.1:1/nope"})))
	defer deadAgg.Close()

	cases := []struct {
		name        string
		method, url string
		body        []byte
		contentType string
		status      int
		code        string
	}{
		{"missing phi", "GET", stack.server.URL + "/v1/quantile", nil, "", 400, "bad_request"},
		{"phi out of range", "GET", stack.server.URL + "/quantile?phi=2", nil, "", 400, "bad_request"},
		{"bad rank q", "GET", stack.server.URL + "/v1/rank?q=NaN", nil, "", 400, "bad_request"},
		{"update NaN", "POST", stack.server.URL + "/v1/update?x=NaN", nil, "", 400, "bad_request"},
		{"update bad JSON", "POST", stack.server.URL + "/update", []byte(`[1,"x"]`), "application/json", 400, "bad_request"},
		{"update null element", "POST", stack.server.URL + "/v1/update", []byte(`[1,null]`), "application/json", 400, "bad_request"},
		{"weighted NaN weight", "POST", stack.server.URL + "/v1/update", []byte(`[{"v":1,"w":-2}]`), "application/json", 400, "bad_request"},
		{"merge garbage", "POST", stack.server.URL + "/v1/merge", []byte("junk"), "", 400, "bad_request"},
		{"merge conflict", "POST", kllSrv.URL + "/v1/merge", conflictPayload, "", 409, "conflict"},
		{"bad snapshot mode", "GET", stack.server.URL + "/v1/snapshot?mode=zip", nil, "", 400, "bad_request"},
		{"unknown key", "GET", stack.server.URL + "/v1/k/absent/quantile?phi=0.5", nil, "", 404, "not_found"},
		{"oversized key", "GET", stack.server.URL + "/v1/k/" + strings.Repeat("x", 300) + "/quantile?phi=0.5", nil, "", 400, "bad_request"},
		{"keyed update bad weight", "POST", stack.server.URL + "/v1/k/lat.api/update", []byte(`[{"v":1,"w":0.5}]`), "application/json", 400, "bad_request"},
		{"store merge garbage", "POST", stack.server.URL + "/v1/store/merge", []byte("junk"), "", 400, "bad_request"},
		{"agg missing phi", "GET", stack.agg.URL + "/v1/quantile", nil, "", 400, "bad_request"},
		{"keyed agg unknown key", "GET", stack.keyedAgg.URL + "/v1/k/absent/quantile?phi=0.5", nil, "", 404, "not_found"},
		{"pull all peers down", "POST", deadAgg.URL + "/v1/pull", nil, "", 502, "bad_gateway"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := doRaw(t, tc.method, tc.url, tc.body, tc.contentType)
			if got.status != tc.status {
				t.Fatalf("status %d, want %d (body %s)", got.status, tc.status, got.body)
			}
			if !strings.HasPrefix(got.contentType, "application/json") {
				t.Fatalf("content type %q, want JSON", got.contentType)
			}
			var envelope struct {
				Error string `json:"error"`
				Code  string `json:"code"`
			}
			if err := json.Unmarshal(got.body, &envelope); err != nil {
				t.Fatalf("decoding envelope: %v (body %s)", err, got.body)
			}
			if envelope.Error == "" {
				t.Fatalf("empty error message: %s", got.body)
			}
			if envelope.Code != tc.code {
				t.Fatalf("code %q, want %q (body %s)", envelope.Code, tc.code, got.body)
			}
		})
	}
}
