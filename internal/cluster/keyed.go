package cluster

// Keyed tier: the HTTP surface and aggregation layer of the multi-tenant
// store (internal/store). A writer node serves per-key endpoints next to its
// single-stream API; the whole store snapshots as one KindStore container;
// and a KeyedAggregator pulls those containers from every peer and merges
// them *per key* under the COMBINE rule, so the merged answer for each key
// carries eps = max over the peers that hold that key — exactly the
// single-stream guarantee, multiplied across the key space.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"quantilelb/internal/encoding"
	"quantilelb/internal/sharded"
	"quantilelb/internal/store"
	"quantilelb/internal/summary"
)

// MaxKeyBytes caps the length of a store key accepted over HTTP. The wire
// format tolerates longer keys (encoding.MaxStoreKeyBytes); the HTTP tier is
// stricter because keys arrive from untrusted clients one request at a time.
const MaxKeyBytes = 256

// keyView adapts one store key to the readView the shared read handlers
// serve, so the keyed endpoints reuse the exact JSON shapes of the
// single-stream tier.
type keyView struct {
	st  *store.Store
	key string
}

func (v keyView) Query(phi float64) (float64, bool) { return v.st.Query(v.key, phi) }
func (v keyView) EstimateRank(q float64) int        { return v.st.EstimateRank(v.key, q) }
func (v keyView) CDF(q float64) float64             { return v.st.CDF(v.key, q) }
func (v keyView) Count() int                        { return v.st.Count(v.key) }

// requestKey extracts and validates the {key} path segment, writing the
// error response itself when the key is unusable.
func requestKey(w http.ResponseWriter, r *http.Request) (string, bool) {
	key := r.PathValue("key")
	if key == "" {
		httpError(w, http.StatusBadRequest, "empty store key")
		return "", false
	}
	if len(key) > MaxKeyBytes {
		httpError(w, http.StatusBadRequest, "store key of %d bytes exceeds %d", len(key), MaxKeyBytes)
		return "", false
	}
	return key, true
}

// NewKeyedServerHandler returns the keyed (multi-tenant) HTTP API of a
// writer node, serving the given store:
//
//	POST /k/{key}/update    ingest a batch into one key (same body formats
//	                        as POST /update: floats, JSON array, weighted
//	                        {v,w} JSON array, ?x=)
//	GET  /k/{key}/quantile  per-key quantiles, same JSON shape as /quantile
//	GET  /k/{key}/rank      per-key rank estimate
//	GET  /k/{key}/cdf       per-key CDF points
//	GET  /keys              {"keys":[...],"count":N}
//	GET  /store/stats       key count, retained bytes vs budget, evictions
//	GET  /store/snapshot    the whole store as one KindStore container
//	                        payload, ETag'd by the store's content version
//	POST /store/merge       ingest a peer's KindStore container, merging
//	                        per key under the COMBINE rule
//
// Keys are opaque strings up to MaxKeyBytes (URL-escaped in paths). A query
// on a key that does not exist answers 404 exactly like an empty
// single-stream summary. Every route is also mounted under the versioned
// /v1/ prefix (GET /v1/k/{key}/quantile, GET /v1/store/snapshot, …) serving
// identical responses. Use NewStoreServerHandler to serve the keyed API
// next to a single-stream summary on one mux (what cmd/quantileserver does).
func NewKeyedServerHandler(st *store.Store) http.Handler {
	mux := http.NewServeMux()
	registerKeyedAPI(mux, st)
	return mux
}

// NewStoreServerHandler returns the full HTTP API of a writer node of the
// keyed tier: the single-stream endpoints of NewServerHandler (serving s)
// plus the keyed endpoints of NewKeyedServerHandler (serving st), on one
// mux. The two APIs are disjoint by path, so clients of either tier work
// unchanged.
func NewStoreServerHandler[S sharded.Mergeable[float64, S]](s *sharded.Sharded[float64, S], st *store.Store) http.Handler {
	mux := http.NewServeMux()
	registerServerAPI(mux, s)
	registerKeyedAPI(mux, st)
	return mux
}

// registerKeyedAPI mounts the keyed endpoints on mux, each under both its
// legacy path and its /v1/ alias.
func registerKeyedAPI(mux *http.ServeMux, st *store.Store) {
	snaps := &snapCache{}
	handleBoth(mux, "POST /k/{key}/update", func(w http.ResponseWriter, r *http.Request) {
		key, ok := requestKey(w, r)
		if !ok {
			return
		}
		batch, weights, ok := parseUpdateRequest(w, r)
		if !ok {
			return
		}
		resp := map[string]any{"key": key, "accepted": len(batch)}
		if weights != nil {
			if len(batch) > 0 {
				if err := st.WeightedUpdateBatch(key, batch, weights); err != nil {
					// Weights passed wire validation, so this is the store's
					// own contract (e.g. the expansion-fallback guard of a
					// family without a native weighted path): still a client
					// problem, reported structurally.
					httpError(w, http.StatusBadRequest, "%v", err)
					return
				}
			}
			var total int64
			for _, wt := range weights {
				total += wt
			}
			resp["weight"] = total
		} else if len(batch) > 0 {
			st.UpdateBatch(key, batch)
		}
		resp["n"] = st.Count(key)
		writeJSON(w, resp)
	})
	forKey := func(serve func(readView, http.ResponseWriter, *http.Request)) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			key, ok := requestKey(w, r)
			if !ok {
				return
			}
			serve(keyView{st: st, key: key}, w, r)
		}
	}
	handleBoth(mux, "GET /k/{key}/quantile", forKey(handleQuantile))
	handleBoth(mux, "GET /k/{key}/rank", forKey(handleRank))
	handleBoth(mux, "GET /k/{key}/cdf", forKey(handleCDF))
	handleBoth(mux, "GET /keys", func(w http.ResponseWriter, r *http.Request) {
		keys := st.Keys()
		writeJSON(w, map[string]any{"keys": keys, "count": len(keys)})
	})
	handleBoth(mux, "GET /store/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, storeStatsPayload(st.Stats()))
	})
	handleBoth(mux, "GET /store/snapshot", func(w http.ResponseWriter, r *http.Request) {
		serveSnapshot(w, r, snaps, st)
	})
	handleBoth(mux, "POST /store/merge", func(w http.ResponseWriter, r *http.Request) {
		body, err := readBody(w, r)
		if err != nil {
			return
		}
		merged, err := st.MergePayload(body)
		if err != nil {
			httpError(w, http.StatusBadRequest, "merging keyed payload: %v", err)
			return
		}
		writeJSON(w, map[string]any{"merged_keys": merged, "keys": st.Len()})
	})
}

// storeStatsPayload renders store counters as the /store/stats JSON body.
func storeStatsPayload(st store.Stats) map[string]any {
	return map[string]any{
		"keys":               st.Keys,
		"retained_items":     st.RetainedItems,
		"retained_bytes":     st.RetainedBytes,
		"max_retained_bytes": st.MaxRetainedBytes,
		"buffered_keys":      st.BufferedKeys,
		"promoted_keys":      st.PromotedKeys,
		"promotions":         st.Promotions,
		"updates":            st.Updates,
		"creates":            st.Creates,
		"evictions_lru":      st.EvictionsLRU,
		"evictions_idle":     st.EvictionsIdle,
		"checkpoints":        st.Checkpoints,
		"wal_records":        st.WALRecords,
		"wal_replayed":       st.WALReplayed,
		"last_checkpoint_ns": st.LastCheckpointUnix,
	}
}

// keyedView is the immutable published merged state of a KeyedAggregator:
// one merged summary per key over every peer that holds the key.
type keyedView struct {
	sums    map[string]summary.Summary[float64]
	keys    []string // ascending
	n       int      // total items over all keys
	peers   int      // peers contributing a payload
	version int64    // strictly monotonic rebuild counter, the ETag basis
}

// KeyedAggregator merges the KindStore snapshots of many sources into one
// logical multi-tenant store view and serves the per-key read API over it.
// It is the keyed twin of Aggregator: same pull loop, same failure handling
// (a peer that cannot be reached keeps contributing its last successful
// snapshot), but the rebuild merges per key — a key held by several peers
// gets their summaries COMBINE-merged (eps = max over those peers), and a
// key held by one peer passes through unchanged.
type KeyedAggregator struct {
	peers    []*peerState
	pullMu   sync.Mutex // serializes pull rounds; never held while reading
	mu       sync.Mutex // guards peerState fields; held only for field access
	view     atomic.Pointer[keyedView]
	pulls    atomic.Int64
	rebuilds atomic.Int64
}

// NewKeyed returns a keyed aggregator over the given sources, which must
// yield KindStore container payloads (normally GET /store/snapshot of a
// keyed writer node). The merged view is empty until the first PullOnce.
func NewKeyed(sources ...Source) *KeyedAggregator {
	a := &KeyedAggregator{}
	for _, src := range sources {
		a.peers = append(a.peers, &peerState{src: src})
	}
	return a
}

// NewKeyedHTTP returns a keyed aggregator pulling GET /v1/store/snapshot
// from each peer base URL with the given client (nil for a shared
// 10s-timeout default).
func NewKeyedHTTP(client *http.Client, peerURLs ...string) *KeyedAggregator {
	srcs := make([]Source, len(peerURLs))
	for i, u := range peerURLs {
		srcs[i] = &HTTPSource{URL: u, Client: client, Path: "/v1/store/snapshot"}
	}
	return NewKeyed(srcs...)
}

// PullOnce fetches every peer's keyed snapshot concurrently, rebuilds the
// per-key merged view, and publishes it. The failure contract matches
// Aggregator.PullOnce: fetch failures leave the peer's previous payload
// contributing and are joined into the returned error; a payload that fails
// to decode or merge aborts the rebuild and is dropped so the next round
// refetches it.
func (a *KeyedAggregator) PullOnce(ctx context.Context) error {
	a.pullMu.Lock()
	defer a.pullMu.Unlock()
	a.pulls.Add(1)

	changed, errs := fetchRound(ctx, a.peers, &a.mu)
	if !changed && a.view.Load() != nil {
		return errors.Join(errs...)
	}
	if badPeer, err := a.rebuild(); err != nil {
		if badPeer != nil {
			a.mu.Lock()
			badPeer.payload = nil
			badPeer.etag = ""
			badPeer.lastErr = err
			a.mu.Unlock()
		}
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// rebuild decodes every retained container and publishes the per-key merged
// view; on failure it returns the peer whose payload could not be used.
// Caller holds pullMu (but not mu: decoding large payloads must not block
// Status).
func (a *KeyedAggregator) rebuild() (*peerState, error) {
	merged := make(map[string]summary.Summary[float64])
	contributing := 0
	for _, p := range a.peers {
		if len(p.payload) == 0 {
			continue
		}
		records, err := encoding.DecodeStore(p.payload)
		if err != nil {
			return p, fmt.Errorf("peer %s: decoding keyed snapshot: %w", p.src.Name(), err)
		}
		peerN := 0
		for _, rec := range records {
			dec, err := encoding.Decode(rec.Payload)
			if err != nil {
				return p, fmt.Errorf("peer %s: key %q: %w", p.src.Name(), rec.Key, err)
			}
			sum, ok := dec.(summary.Summary[float64])
			if !ok {
				return p, fmt.Errorf("peer %s: key %q decodes to %T, which is not a summary", p.src.Name(), rec.Key, dec)
			}
			peerN += sum.Count()
			if existing, ok := merged[rec.Key]; ok {
				// MergeAdopting handles the cross-stage case: when the
				// existing entry is a cold key's exact buffer and the incoming
				// record is a sketch, the sketch absorbs the buffer and takes
				// the slot.
				res, err := encoding.MergeAdopting(existing, sum)
				if err != nil {
					return p, fmt.Errorf("peer %s: key %q: cluster: %w", p.src.Name(), rec.Key, err)
				}
				merged[rec.Key] = res.(summary.Summary[float64])
			} else {
				merged[rec.Key] = sum
			}
		}
		a.mu.Lock()
		p.kind = encoding.KindStore
		p.n = peerN
		a.mu.Unlock()
		contributing++
	}
	keys := make([]string, 0, len(merged))
	n := 0
	for k, s := range merged {
		keys = append(keys, k)
		n += s.Count()
	}
	sort.Strings(keys)
	a.view.Store(&keyedView{
		sums:    merged,
		keys:    keys,
		n:       n,
		peers:   contributing,
		version: a.rebuilds.Add(1),
	})
	return nil, nil
}

// Start launches a background pull loop with the given interval and returns
// a function that stops it. Pull errors are retained per peer and visible
// via Status; the loop itself never stops on error.
func (a *KeyedAggregator) Start(interval time.Duration) (stop func()) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				_ = a.PullOnce(ctx)
			case <-ctx.Done():
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			cancel()
			<-done
		})
	}
}

// load returns the published merged view, never nil.
func (a *KeyedAggregator) load() *keyedView {
	if v := a.view.Load(); v != nil {
		return v
	}
	return &keyedView{}
}

// Query returns an approximate ϕ-quantile of key's substream over the union
// of all peers holding the key; false when no peer holds it.
func (a *KeyedAggregator) Query(key string, phi float64) (float64, bool) {
	s := a.load().sums[key]
	if s == nil {
		return 0, false
	}
	return s.Query(phi)
}

// EstimateRank estimates the number of items ≤ q in key's merged substream;
// 0 when no peer holds the key.
func (a *KeyedAggregator) EstimateRank(key string, q float64) int {
	s := a.load().sums[key]
	if s == nil {
		return 0
	}
	return s.EstimateRank(q)
}

// CDF returns the estimated fraction of key's merged items ≤ q, clamped to
// [0, 1].
func (a *KeyedAggregator) CDF(key string, q float64) float64 {
	s := a.load().sums[key]
	if s == nil {
		return 0
	}
	n := s.Count()
	if n == 0 {
		return 0
	}
	r := s.EstimateRank(q)
	if r < 0 {
		r = 0
	}
	if r > n {
		r = n
	}
	return float64(r) / float64(n)
}

// Count returns the number of items in key's merged substream.
func (a *KeyedAggregator) Count(key string) int {
	s := a.load().sums[key]
	if s == nil {
		return 0
	}
	return s.Count()
}

// Keys returns every key any peer holds, in ascending order.
func (a *KeyedAggregator) Keys() []string { return a.load().keys }

// TotalCount returns the total items over all keys and peers.
func (a *KeyedAggregator) TotalCount() int { return a.load().n }

// ContributingPeers returns how many peers' payloads are in the merged view.
func (a *KeyedAggregator) ContributingPeers() int { return a.load().peers }

// Pulls returns the number of pull rounds performed.
func (a *KeyedAggregator) Pulls() int { return int(a.pulls.Load()) }

// Status reports the per-peer pull state for monitoring; it never waits on a
// pull round in flight.
func (a *KeyedAggregator) Status() []PeerStatus {
	a.mu.Lock()
	defer a.mu.Unlock()
	return statusLocked(a.peers)
}

// SnapshotVersion reports the merged view's rebuild version without
// serializing it; ok is false before the first rebuild.
func (a *KeyedAggregator) SnapshotVersion() (int64, bool) {
	v := a.view.Load()
	if v == nil {
		return 0, false
	}
	return v.version, true
}

// SnapshotPayload re-exports the merged view as one KindStore container, so
// keyed aggregators compose into trees exactly like the single-stream tier.
func (a *KeyedAggregator) SnapshotPayload() ([]byte, int64, error) {
	v := a.view.Load()
	if v == nil {
		return nil, 0, errors.New("cluster: no merged keyed view yet")
	}
	entries := make([]encoding.KeyedPayload, 0, len(v.keys))
	for _, k := range v.keys {
		payload, err := encoding.Encode(v.sums[k])
		if err != nil {
			return nil, 0, fmt.Errorf("cluster: encoding merged key %q: %w", k, err)
		}
		entries = append(entries, encoding.KeyedPayload{Key: k, Payload: payload})
	}
	payload, err := encoding.EncodeStore(entries)
	if err != nil {
		return nil, 0, err
	}
	return payload, v.version, nil
}

// aggKeyView adapts one merged key to the shared read handlers.
type aggKeyView struct {
	a   *KeyedAggregator
	key string
}

func (v aggKeyView) Query(phi float64) (float64, bool) { return v.a.Query(v.key, phi) }
func (v aggKeyView) EstimateRank(q float64) int        { return v.a.EstimateRank(v.key, q) }
func (v aggKeyView) CDF(q float64) float64             { return v.a.CDF(v.key, q) }
func (v aggKeyView) Count() int                        { return v.a.Count(v.key) }

// NewKeyedAggregatorHandler returns the keyed aggregator's HTTP API: the
// same per-key read endpoints a keyed writer node exposes (identical JSON
// shapes, so clients need not know which tier they query), plus:
//
//	GET  /keys            every key any peer holds
//	GET  /stats           merged-view size and per-peer pull health
//	GET  /store/snapshot  the merged view re-exported as a KindStore
//	                      container (keyed aggregators compose into trees)
//	POST /pull            force a pull round now; 502 when every peer failed
//
// Every route is also mounted under the versioned /v1/ prefix.
func NewKeyedAggregatorHandler(a *KeyedAggregator) http.Handler {
	snaps := &snapCache{}
	mux := http.NewServeMux()
	forKey := func(serve func(readView, http.ResponseWriter, *http.Request)) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			key, ok := requestKey(w, r)
			if !ok {
				return
			}
			serve(aggKeyView{a: a, key: key}, w, r)
		}
	}
	handleBoth(mux, "GET /k/{key}/quantile", forKey(handleQuantile))
	handleBoth(mux, "GET /k/{key}/rank", forKey(handleRank))
	handleBoth(mux, "GET /k/{key}/cdf", forKey(handleCDF))
	handleBoth(mux, "GET /keys", func(w http.ResponseWriter, r *http.Request) {
		keys := a.Keys()
		writeJSON(w, map[string]any{"keys": keys, "count": len(keys)})
	})
	handleBoth(mux, "GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{
			"keys":         len(a.Keys()),
			"n":            a.TotalCount(),
			"contributing": a.ContributingPeers(),
			"pulls":        a.Pulls(),
			"peers":        a.Status(),
		})
	})
	handleBoth(mux, "GET /store/snapshot", func(w http.ResponseWriter, r *http.Request) {
		serveSnapshot(w, r, snaps, a)
	})
	handleBoth(mux, "POST /pull", func(w http.ResponseWriter, r *http.Request) {
		err := a.PullOnce(r.Context())
		if err != nil && a.ContributingPeers() == 0 {
			httpError(w, http.StatusBadGateway, "pull failed: %v", err)
			return
		}
		resp := map[string]any{"keys": len(a.Keys()), "n": a.TotalCount(), "contributing": a.ContributingPeers()}
		if err != nil {
			resp["partial_error"] = err.Error()
		}
		writeJSON(w, resp)
	})
	return mux
}
