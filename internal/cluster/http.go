package cluster

import (
	"encoding/json"
	"fmt"
	"log"
	"math"
	"net/http"
	"strconv"
)

// readView is the slice of the summary API both HTTP tiers serve reads from:
// the sharded single-node summary and the cluster aggregator both satisfy it.
type readView interface {
	Query(phi float64) (float64, bool)
	EstimateRank(q float64) int
	CDF(q float64) float64
	Count() int
}

// registerReadAPI mounts the shared read endpoints (/quantile, /rank, /cdf)
// on mux. The JSON shapes are identical on every node of the tier, so a
// client needs no knowledge of whether it is talking to a single server or to
// an aggregator.
func registerReadAPI(mux *http.ServeMux, v readView) {
	mux.HandleFunc("GET /quantile", func(w http.ResponseWriter, r *http.Request) {
		handleQuantile(v, w, r)
	})
	mux.HandleFunc("GET /rank", func(w http.ResponseWriter, r *http.Request) {
		handleRank(v, w, r)
	})
	mux.HandleFunc("GET /cdf", func(w http.ResponseWriter, r *http.Request) {
		handleCDF(v, w, r)
	})
}

func handleQuantile(s readView, w http.ResponseWriter, r *http.Request) {
	phis := r.URL.Query()["phi"]
	if len(phis) == 0 {
		httpError(w, http.StatusBadRequest, "at least one phi parameter is required")
		return
	}
	type result struct {
		Phi   float64 `json:"phi"`
		Value float64 `json:"value"`
	}
	results := make([]result, 0, len(phis))
	for _, raw := range phis {
		phi, err := strconv.ParseFloat(raw, 64)
		if err != nil || phi < 0 || phi > 1 {
			httpError(w, http.StatusBadRequest, "bad phi %q: want a number in [0,1]", raw)
			return
		}
		v, ok := s.Query(phi)
		if !ok {
			httpError(w, http.StatusNotFound, "summary is empty")
			return
		}
		results = append(results, result{Phi: phi, Value: v})
	}
	writeJSON(w, map[string]any{"results": results, "n": s.Count()})
}

func handleRank(s readView, w http.ResponseWriter, r *http.Request) {
	raw := r.URL.Query().Get("q")
	q, err := strconv.ParseFloat(raw, 64)
	if err != nil || math.IsNaN(q) {
		httpError(w, http.StatusBadRequest, "bad q %q: want a float64", raw)
		return
	}
	writeJSON(w, map[string]any{"q": q, "rank": s.EstimateRank(q), "n": s.Count()})
}

func handleCDF(s readView, w http.ResponseWriter, r *http.Request) {
	qs := r.URL.Query()["q"]
	if len(qs) == 0 {
		httpError(w, http.StatusBadRequest, "at least one q parameter is required")
		return
	}
	type point struct {
		Q float64 `json:"q"`
		P float64 `json:"p"`
	}
	points := make([]point, 0, len(qs))
	for _, raw := range qs {
		q, err := strconv.ParseFloat(raw, 64)
		if err != nil || math.IsNaN(q) {
			httpError(w, http.StatusBadRequest, "bad q %q: want a float64", raw)
			return
		}
		points = append(points, point{Q: q, P: s.CDF(q)})
	}
	writeJSON(w, map[string]any{"points": points, "n": s.Count()})
}

// writeJSON marshals the payload before touching the ResponseWriter, so a
// payload JSON cannot represent (a NaN that slipped into the summary, say)
// produces a structured 500 instead of a 200 header with an empty body.
func writeJSON(w http.ResponseWriter, payload any) {
	data, err := json.Marshal(payload)
	if err != nil {
		log.Printf("cluster: encoding response: %v", err)
		httpError(w, http.StatusInternalServerError, "encoding response: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n'))
}

// snapshotSource is the slice of the snapshot API serveSnapshot needs; the
// sharded summary and the aggregator both provide it.
type snapshotSource interface {
	// SnapshotVersion cheaply reports the covered update count of the
	// current view; ok is false when no view exists yet.
	SnapshotVersion() (int64, bool)
	// SnapshotPayload serializes the current view.
	SnapshotPayload() ([]byte, int64, error)
}

// serveSnapshot answers a GET /snapshot request with the ETag/If-None-Match
// contract shared by the server and aggregator tiers. The ETag mixes the
// handler's per-boot nonce with the covered update count: the count alone
// identifies content only within one process lifetime (a node that restarts
// empty and re-ingests to the same count must not 304 against a pre-restart
// ETag), and pullers treat the ETag as opaque, so revalidation composes
// across tiers. The version is checked before serializing, so a 304 costs
// neither bytes on the wire nor an encode of the view.
func serveSnapshot(w http.ResponseWriter, r *http.Request, nonce uint64, src snapshotSource) {
	if v, ok := src.SnapshotVersion(); ok && r.Header.Get("If-None-Match") == snapshotETag(nonce, v) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	payload, n, err := src.SnapshotPayload()
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, "snapshot unavailable: %v", err)
		return
	}
	w.Header().Set("ETag", snapshotETag(nonce, n))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(payload)
}

// snapshotETag formats a per-boot nonce and covered update count as the
// snapshot ETag.
func snapshotETag(nonce uint64, n int64) string {
	return fmt.Sprintf("%q", strconv.FormatUint(nonce, 36)+"-"+strconv.FormatInt(n, 10))
}

// httpError sends a structured JSON error body with the given status. Every
// non-2xx response of the tier goes through it, so clients can always parse
// {"error": ...}.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
