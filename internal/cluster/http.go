package cluster

import (
	"encoding/json"
	"fmt"
	"log"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"quantilelb/internal/encoding"
)

// APIVersionPrefix is the path prefix of the versioned HTTP surface. Every
// route of the cluster tier is mounted twice: once under its legacy
// unversioned path (PR3/PR4 clients) and once under /v1/ — the two serve
// byte-identical responses (pinned by TestV1RouteEquivalence), so clients can
// migrate route by route.
const APIVersionPrefix = "/v1"

// handleBoth mounts one handler under both the legacy unversioned pattern
// and its /v1/ alias. pattern must be a "METHOD /path" ServeMux pattern.
func handleBoth(mux *http.ServeMux, pattern string, h http.HandlerFunc) {
	mux.HandleFunc(pattern, h)
	method, path, ok := strings.Cut(pattern, " ")
	if !ok {
		panic("cluster: route pattern without a method: " + pattern)
	}
	mux.HandleFunc(method+" "+APIVersionPrefix+path, h)
}

// readView is the slice of the summary API both HTTP tiers serve reads from:
// the sharded single-node summary and the cluster aggregator both satisfy it.
type readView interface {
	Query(phi float64) (float64, bool)
	EstimateRank(q float64) int
	CDF(q float64) float64
	Count() int
}

// registerReadAPI mounts the shared read endpoints (/quantile, /rank, /cdf)
// on mux. The JSON shapes are identical on every node of the tier, so a
// client needs no knowledge of whether it is talking to a single server or to
// an aggregator.
func registerReadAPI(mux *http.ServeMux, v readView) {
	handleBoth(mux, "GET /quantile", func(w http.ResponseWriter, r *http.Request) {
		handleQuantile(v, w, r)
	})
	handleBoth(mux, "GET /rank", func(w http.ResponseWriter, r *http.Request) {
		handleRank(v, w, r)
	})
	handleBoth(mux, "GET /cdf", func(w http.ResponseWriter, r *http.Request) {
		handleCDF(v, w, r)
	})
}

func handleQuantile(s readView, w http.ResponseWriter, r *http.Request) {
	phis := r.URL.Query()["phi"]
	if len(phis) == 0 {
		httpError(w, http.StatusBadRequest, "at least one phi parameter is required")
		return
	}
	type result struct {
		Phi   float64 `json:"phi"`
		Value float64 `json:"value"`
	}
	results := make([]result, 0, len(phis))
	for _, raw := range phis {
		phi, err := strconv.ParseFloat(raw, 64)
		if err != nil || phi < 0 || phi > 1 {
			httpError(w, http.StatusBadRequest, "bad phi %q: want a number in [0,1]", raw)
			return
		}
		v, ok := s.Query(phi)
		if !ok {
			httpError(w, http.StatusNotFound, "summary is empty")
			return
		}
		results = append(results, result{Phi: phi, Value: v})
	}
	writeJSON(w, map[string]any{"results": results, "n": s.Count()})
}

func handleRank(s readView, w http.ResponseWriter, r *http.Request) {
	raw := r.URL.Query().Get("q")
	q, err := strconv.ParseFloat(raw, 64)
	if err != nil || math.IsNaN(q) {
		httpError(w, http.StatusBadRequest, "bad q %q: want a float64", raw)
		return
	}
	writeJSON(w, map[string]any{"q": q, "rank": s.EstimateRank(q), "n": s.Count()})
}

func handleCDF(s readView, w http.ResponseWriter, r *http.Request) {
	qs := r.URL.Query()["q"]
	if len(qs) == 0 {
		httpError(w, http.StatusBadRequest, "at least one q parameter is required")
		return
	}
	type point struct {
		Q float64 `json:"q"`
		P float64 `json:"p"`
	}
	points := make([]point, 0, len(qs))
	for _, raw := range qs {
		q, err := strconv.ParseFloat(raw, 64)
		if err != nil || math.IsNaN(q) {
			httpError(w, http.StatusBadRequest, "bad q %q: want a float64", raw)
			return
		}
		points = append(points, point{Q: q, P: s.CDF(q)})
	}
	writeJSON(w, map[string]any{"points": points, "n": s.Count()})
}

// writeJSON marshals the payload before touching the ResponseWriter, so a
// payload JSON cannot represent (a NaN that slipped into the summary, say)
// produces a structured 500 instead of a 200 header with an empty body.
func writeJSON(w http.ResponseWriter, payload any) {
	data, err := json.Marshal(payload)
	if err != nil {
		log.Printf("cluster: encoding response: %v", err)
		httpError(w, http.StatusInternalServerError, "encoding response: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n'))
}

// snapshotSource is the slice of the snapshot API serveSnapshot needs; the
// sharded summary and the aggregator both provide it.
type snapshotSource interface {
	// SnapshotVersion cheaply reports the covered update count of the
	// current view; ok is false when no view exists yet.
	SnapshotVersion() (int64, bool)
	// SnapshotPayload serializes the current view.
	SnapshotPayload() ([]byte, int64, error)
}

// snapHistoryLen bounds the per-handler ring of recent snapshot payloads a
// handler retains as delta bases. A puller is normally at most one version
// behind, so a short ring covers the realistic base set; a base that has
// rotated out simply falls back to a full payload.
const snapHistoryLen = 8

// snapEntry is one retained (ETag, payload) pair of the delta-base ring.
type snapEntry struct {
	etag    string
	payload []byte
}

// snapCache is the per-handler snapshot state behind serveSnapshot: the
// current serialized payload keyed by the source's cheap version counter
// (so 304s and repeat GETs never re-encode an unchanged view), its
// content-derived ETag, and a ring of recent payloads that can serve as
// delta bases. Replacing the old per-boot nonce ETag with a content hash
// fixes a real defect: a restarted node with identical state used to
// invalidate every puller's cached ETag, forcing a full refetch of
// unchanged bytes; hashing the payload makes the ETag a pure function of
// content, so revalidation survives restarts (and the same hash is the
// base identity of the KindDelta format — see internal/encoding).
type snapCache struct {
	mu      sync.Mutex
	valid   bool
	version int64
	payload []byte
	etag    string
	history [snapHistoryLen]snapEntry
	next    int
}

// current returns the up-to-date payload and its content ETag, re-encoding
// only when the source's version moved since the last call.
func (c *snapCache) current(src snapshotSource) ([]byte, string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if v, ok := src.SnapshotVersion(); ok && c.valid && v == c.version {
		return c.payload, c.etag, nil
	}
	payload, v, err := src.SnapshotPayload()
	if err != nil {
		return nil, "", err
	}
	etag := contentETag(payload)
	c.valid, c.version, c.payload, c.etag = true, v, payload, etag
	c.remember(etag, payload)
	return payload, etag, nil
}

// remember records a payload in the delta-base ring (idempotent per ETag).
// Caller holds mu.
func (c *snapCache) remember(etag string, payload []byte) {
	for _, e := range c.history {
		if e.etag == etag {
			return
		}
	}
	c.history[c.next] = snapEntry{etag: etag, payload: payload}
	c.next = (c.next + 1) % snapHistoryLen
}

// base returns the retained payload whose content ETag matches, if any.
func (c *snapCache) base(etag string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.history {
		if e.payload != nil && e.etag == etag {
			return e.payload, true
		}
	}
	return nil, false
}

// contentETag derives a snapshot ETag from payload bytes alone: two
// byte-identical snapshots carry the same ETag across processes and
// restarts, and the quoted hash doubles as the delta-base name a client
// echoes in ?base=.
func contentETag(payload []byte) string {
	return `"` + strconv.FormatUint(encoding.PayloadHash(payload), 36) + `"`
}

// serveSnapshot answers GET /v1/snapshot (and its legacy alias) with the
// shared snapshot contract of the server and aggregator tiers:
//
//   - If-None-Match revalidation against the content-derived ETag (304 ships
//     no bytes; because the ETag hashes the payload, it also survives node
//     restarts with identical state).
//   - ?mode=delta&base=<etag>: when the named base is still in the handler's
//     history ring and the delta is smaller than the full payload, the
//     response is a KindDelta container (Delta-Base header set) the client
//     applies to its retained base via encoding.ApplyDelta. Unknown bases,
//     oversized payloads, and deltas that would not save bytes all fall back
//     to the full payload — mode=delta is a bandwidth hint, never a
//     correctness requirement.
//   - ?mode=full (or no mode) serves the complete payload.
func serveSnapshot(w http.ResponseWriter, r *http.Request, c *snapCache, src snapshotSource) {
	mode := r.URL.Query().Get("mode")
	if mode != "" && mode != "delta" && mode != "full" {
		httpError(w, http.StatusBadRequest, "bad mode %q: want delta or full", mode)
		return
	}
	payload, etag, err := c.current(src)
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, "snapshot unavailable: %v", err)
		return
	}
	w.Header().Set("ETag", etag)
	if r.Header.Get("If-None-Match") == etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if base := r.URL.Query().Get("base"); mode != "full" && base != "" && base != etag {
		if basePayload, ok := c.base(base); ok && len(payload) <= encoding.MaxDeltaInputBytes && len(basePayload) <= encoding.MaxDeltaInputBytes {
			if delta, err := encoding.EncodeDelta(basePayload, payload); err == nil && len(delta) < len(payload) {
				w.Header().Set("Delta-Base", base)
				w.Write(delta)
				return
			}
		}
	}
	w.Write(payload)
}

// errorCode maps an HTTP status to the machine-readable "code" field of the
// error envelope; the set is closed so clients can switch on it.
func errorCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusConflict:
		return "conflict"
	case http.StatusRequestEntityTooLarge:
		return "payload_too_large"
	case http.StatusBadGateway:
		return "bad_gateway"
	case http.StatusServiceUnavailable:
		return "unavailable"
	case http.StatusGatewayTimeout:
		return "timeout"
	default:
		return "internal"
	}
}

// httpError sends the tier's structured JSON error envelope with the given
// status. Every non-2xx response of every cluster handler goes through it,
// so clients can always parse {"error": <human message>, "code": <machine
// code>} — the "error" string predates the "code" field and is kept
// verbatim for legacy clients.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{
		"error": fmt.Sprintf(format, args...),
		"code":  errorCode(status),
	})
}
