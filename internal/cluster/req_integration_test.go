package cluster_test

// TestClusterREQNodesEndToEnd runs the 3-node + aggregator topology with
// every node holding a sharded relative-error summary: the binary snapshots
// travel as KindREQ payloads, the aggregator's COMBINE goes through
// req.Merge, and the merged view must hold the HIGH-TAIL relative guarantee
// at the max per-node eps — checked against rank.RelativeOracle at exact eps
// with no slack, including ϕ ∈ {0.999, 0.9999, 1}, where the budget shrinks
// below one item. Unlike mlq (which must agree on block size) and KLL (on
// k), req's merge is a free COMBINE, so the nodes deliberately run the
// heterogeneous nodeEps and the merged budget is their max.

import (
	"context"
	"net/http/httptest"
	"testing"

	"quantilelb/internal/bench"
	"quantilelb/internal/cluster"
	"quantilelb/internal/encoding"
	"quantilelb/internal/rank"
	"quantilelb/internal/req"
	"quantilelb/internal/sharded"
)

func TestClusterREQNodesEndToEnd(t *testing.T) {
	cfg := bench.DefaultConfig()
	cfg.N = 12_000
	workloads, err := bench.Workloads(cfg)
	if err != nil {
		t.Fatalf("building workloads: %v", err)
	}
	for _, wl := range workloads {
		if wl.Name != "shuffled" && wl.Name != "adversarial-cv" {
			continue
		}
		t.Run(wl.Name, func(t *testing.T) {
			urls := make([]string, len(nodeEps))
			sources := make([]cluster.Source, len(nodeEps))
			for i, eps := range nodeEps {
				eps := eps
				s := sharded.New(func() *req.Summary { return req.NewFloat64(eps) }, 4)
				srv := httptest.NewServer(cluster.NewServerHandler(s))
				t.Cleanup(srv.Close)
				urls[i] = srv.URL
				sources[i] = &cluster.HTTPSource{URL: srv.URL, Fresh: true}
			}
			const batchSize = 500
			for i, next := 0, 0; i < len(wl.Items); i += batchSize {
				end := min(i+batchSize, len(wl.Items))
				postBatch(t, urls[next], wl.Items[i:end])
				next = (next + 1) % len(urls)
			}
			agg := cluster.New(sources...)
			if err := agg.PullOnce(context.Background()); err != nil {
				t.Fatalf("PullOnce: %v", err)
			}
			n := len(wl.Items)
			if agg.Count() != n {
				t.Fatalf("aggregator covers %d items, want %d", agg.Count(), n)
			}
			// The strict relative gate: budget ε·(N−t+1) at the max per-node
			// eps, no slack. The TopRank(1)=1 query forces the globally merged
			// view to return the exact overall maximum.
			oracle := rank.NewRelativeOracle(wl.Items)
			phis := make([]float64, 0, 104)
			for i := 0; i <= 100; i++ {
				phis = append(phis, float64(i)/100)
			}
			phis = append(phis, 0.999, 0.9999)
			for _, phi := range phis {
				v, ok := agg.Query(phi)
				if !ok {
					t.Fatalf("Query(%g) on a non-empty aggregator", phi)
				}
				budget := maxEps * float64(oracle.TopRank(phi))
				if e := oracle.RankError(v, phi); float64(e) > budget+1e-9 {
					t.Errorf("phi=%g: rank error %d exceeds relative budget %v", phi, e, budget)
				}
			}
			// The re-exported global snapshot is itself a KindREQ payload at
			// the COMBINE eps: aggregators of req nodes feed higher
			// aggregators without losing the tail guarantee.
			p, _, err := agg.SnapshotPayload()
			if err != nil {
				t.Fatalf("aggregator snapshot: %v", err)
			}
			dec, err := encoding.Decode(p)
			if err != nil {
				t.Fatalf("decoding aggregator snapshot: %v", err)
			}
			global, ok := dec.(*req.Summary)
			if !ok {
				t.Fatalf("aggregator re-exports %T, want *req.Summary", dec)
			}
			if global.Epsilon() != maxEps {
				t.Errorf("merged eps = %g, want max over nodes = %g", global.Epsilon(), maxEps)
			}
		})
	}
}
