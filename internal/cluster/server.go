package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"mime"
	"net/http"
	"strconv"
	"strings"

	"quantilelb/internal/encoding"
	"quantilelb/internal/sharded"
)

// MaxBodyBytes caps the request body of ingestion endpoints (/update and
// /merge) at 64 MiB.
const MaxBodyBytes = 64 << 20

// NewServerHandler returns the HTTP API of one writer node of the
// distributed tier, serving reads and writes of the given sharded summary:
//
//	POST /update    body: whitespace/comma-separated float64s, or — with
//	                Content-Type: application/json — a JSON array of numbers.
//	                Either way the whole request is ingested as one batch
//	                through the summary's bulk UpdateBatch path. A single
//	                item can also be sent as a ?x= query parameter. NaNs are
//	                rejected: they have no place in a total order and would
//	                silently corrupt a comparison-based summary.
//	GET  /quantile  ?phi=0.5&phi=0.99 -> {"results":[{"phi":0.5,"value":...}],"n":...}
//	GET  /rank      ?q=1.5            -> {"q":1.5,"rank":...,"n":...}
//	GET  /cdf       ?q=1&q=2          -> {"points":[{"q":1,"p":...}],"n":...}
//	GET  /stats                       -> shards, counts, snapshot freshness
//	GET  /snapshot  the merged view as a binary wire payload
//	                (internal/encoding format), ETag'd by the update count it
//	                covers; If-None-Match yields 304 when nothing changed.
//	                ?fresh=1 forces a snapshot rebuild first (used by tests
//	                and pull-now tooling; the lock-free default serves the
//	                published snapshot).
//	POST /merge     ingest a peer's wire payload: the decoded summary is
//	                folded into one shard under the COMBINE rule
//	                (eps_new = max), so nodes can push state to each other.
//
// The aggregator (cmd/quantileagg) serves the same read API over the merged
// view of many such nodes.
func NewServerHandler[S sharded.Mergeable[float64, S]](s *sharded.Sharded[float64, S]) http.Handler {
	nonce := rand.Uint64() // per-boot ETag component, see serveSnapshot
	mux := http.NewServeMux()
	registerServerAPI(mux, s, nonce)
	return mux
}

// registerServerAPI mounts the single-stream writer-node endpoints on mux;
// NewServerHandler and NewStoreServerHandler both build on it.
func registerServerAPI[S sharded.Mergeable[float64, S]](mux *http.ServeMux, s *sharded.Sharded[float64, S], nonce uint64) {
	mux.HandleFunc("POST /update", func(w http.ResponseWriter, r *http.Request) {
		handleUpdate(s, w, r)
	})
	registerReadAPI(mux, s)
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		st := s.Stats()
		writeJSON(w, map[string]any{
			"shards":          st.Shards,
			"count":           st.Count,
			"snapshot_count":  st.SnapshotCount,
			"snapshot_stored": st.SnapshotStored,
			"snapshot_lag":    st.Count - st.SnapshotCount,
			"refreshes":       st.Refreshes,
		})
	})
	mux.HandleFunc("GET /snapshot", func(w http.ResponseWriter, r *http.Request) {
		handleSnapshot(s, nonce, w, r)
	})
	mux.HandleFunc("POST /merge", func(w http.ResponseWriter, r *http.Request) {
		handleMerge(s, w, r)
	})
}

func handleUpdate[S sharded.Mergeable[float64, S]](s *sharded.Sharded[float64, S], w http.ResponseWriter, r *http.Request) {
	batch, ok := parseUpdateRequest(w, r)
	if !ok {
		return // parseUpdateRequest wrote the response
	}
	if len(batch) > 0 {
		s.UpdateBatch(batch)
	}
	writeJSON(w, map[string]any{"accepted": len(batch), "n": s.Count()})
}

// parseUpdateRequest parses an ingestion request (the ?x= parameters plus a
// whitespace/comma-separated or JSON-array body) into one batch, writing the
// error response itself when the request is malformed. Everything is parsed
// and validated before anything is ingested: a request is either accepted
// whole or rejected whole (there is no way to remove items from a summary,
// so a partial ingest before a 400 would leave a retrying client
// double-counting). Shared by the single-stream and keyed update endpoints.
func parseUpdateRequest(w http.ResponseWriter, r *http.Request) ([]float64, bool) {
	var batch []float64
	for _, raw := range r.URL.Query()["x"] {
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil || math.IsNaN(v) {
			httpError(w, http.StatusBadRequest, "bad x parameter %q: want a non-NaN float64", raw)
			return nil, false
		}
		batch = append(batch, v)
	}
	body, err := readBody(w, r)
	if err != nil {
		return nil, false // readBody wrote the response
	}
	if len(body) > 0 {
		var fromBody []float64
		if isJSONContent(r.Header.Get("Content-Type")) {
			fromBody, err = parseJSONBatch(body)
		} else {
			fromBody, err = parseFloats(string(body))
		}
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return nil, false
		}
		batch = append(batch, fromBody...)
	}
	return batch, true
}

func handleSnapshot[S sharded.Mergeable[float64, S]](s *sharded.Sharded[float64, S], nonce uint64, w http.ResponseWriter, r *http.Request) {
	if f := r.URL.Query().Get("fresh"); f == "1" || f == "true" {
		s.Refresh()
	}
	serveSnapshot(w, r, nonce, s)
}

func handleMerge[S sharded.Mergeable[float64, S]](s *sharded.Sharded[float64, S], w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		return
	}
	dec, err := encoding.Decode(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "decoding payload: %v", err)
		return
	}
	other, ok := dec.(S)
	if !ok {
		httpError(w, http.StatusBadRequest,
			"payload holds a %T, which this node's summary cannot merge", dec)
		return
	}
	if err := s.MergeSummary(other); err != nil {
		httpError(w, http.StatusConflict, "merging payload: %v", err)
		return
	}
	writeJSON(w, map[string]any{"merged": other.Count(), "n": s.Count()})
}

// readBody drains an ingestion request body under the MaxBodyBytes cap,
// writing the error response itself when reading fails.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes; split the batch", MaxBodyBytes)
			return nil, err
		}
		httpError(w, http.StatusBadRequest, "reading body: %v", err)
		return nil, err
	}
	return body, nil
}

// isJSONContent reports whether a Content-Type header declares JSON. Media
// types are case-insensitive (RFC 9110) and may carry parameters like
// "; charset=utf-8".
func isJSONContent(ct string) bool {
	mediaType, _, err := mime.ParseMediaType(ct)
	return err == nil && mediaType == "application/json"
}

// parseJSONBatch decodes a JSON array of numbers — the batched payload
// format for producers that already aggregate items (log shippers, metric
// agents). NaN and infinities are rejected by JSON syntax itself; any other
// shape (object, nested array, string element) is rejected whole with a
// structured 400 by the caller.
func parseJSONBatch(body []byte) ([]float64, error) {
	dec := json.NewDecoder(bytes.NewReader(body))
	// Pointers distinguish a JSON null (left nil) from a number: null would
	// otherwise silently decode to 0 and be ingested.
	var raw []*float64
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("bad JSON batch: want an array of numbers: %v", err)
	}
	// A valid array followed by trailing garbage ("[1,2] oops") must not be
	// silently half-accepted.
	if dec.More() {
		return nil, fmt.Errorf("bad JSON batch: trailing data after the array")
	}
	out := make([]float64, len(raw))
	for i, p := range raw {
		if p == nil {
			return nil, fmt.Errorf("bad JSON batch: element %d is null, want a number", i)
		}
		out[i] = *p
	}
	return out, nil
}

// parseFloats splits a body on whitespace, commas and newlines.
func parseFloats(body string) ([]float64, error) {
	fields := strings.FieldsFunc(body, func(r rune) bool {
		return r == ' ' || r == '\t' || r == '\n' || r == '\r' || r == ','
	})
	out := make([]float64, 0, len(fields))
	for _, f := range fields {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil || math.IsNaN(v) {
			// Truncate the echoed token: a malformed multi-megabyte body
			// must not turn into a multi-megabyte error response.
			if len(f) > 32 {
				f = f[:32] + "…"
			}
			return nil, fmt.Errorf("bad value %q: want a non-NaN float64", f)
		}
		out = append(out, v)
	}
	return out, nil
}
