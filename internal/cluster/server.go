package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"mime"
	"net/http"
	"strconv"
	"strings"

	"quantilelb/internal/encoding"
	"quantilelb/internal/sharded"
)

// MaxBodyBytes caps the request body of ingestion endpoints (/update and
// /merge) at 64 MiB.
const MaxBodyBytes = 64 << 20

// MaxItemWeight caps the weight a single {v,w} batch element may carry.
// Weights beyond it are rejected as overflow-inducing: with the body cap a
// request holds fewer than 2^23 items, so per-item weights up to 2^32 keep
// every total-weight accumulator far from int64 overflow, while an
// effectively unbounded weight would let one element dwarf every counter.
const MaxItemWeight = int64(1) << 32

// NewServerHandler returns the HTTP API of one writer node of the
// distributed tier, serving reads and writes of the given sharded summary:
//
//	POST /update    body: whitespace/comma-separated float64s, or — with
//	                Content-Type: application/json — a JSON array of numbers,
//	                or a JSON array of {"v": value, "w": weight} objects for
//	                weighted (pre-counted) batches: each value is ingested as
//	                w stream items through the summary's native weighted path
//	                (error ≤ ε·W over the total weight W; "w" defaults to 1).
//	                Either way the whole request is ingested as one batch
//	                through the summary's bulk path. A single item can also
//	                be sent as a ?x= query parameter. NaNs are rejected: they
//	                have no place in a total order and would silently corrupt
//	                a comparison-based summary. Weights that are NaN,
//	                non-positive, non-integral, or above MaxItemWeight are
//	                rejected whole with a structured 400.
//	GET  /quantile  ?phi=0.5&phi=0.99 -> {"results":[{"phi":0.5,"value":...}],"n":...}
//	GET  /rank      ?q=1.5            -> {"q":1.5,"rank":...,"n":...}
//	GET  /cdf       ?q=1&q=2          -> {"points":[{"q":1,"p":...}],"n":...}
//	GET  /stats                       -> shards, counts, snapshot freshness
//	GET  /snapshot  the merged view as a binary wire payload
//	                (internal/encoding format), ETag'd by a content hash of
//	                the payload (so revalidation survives restarts);
//	                If-None-Match yields 304 when nothing changed.
//	                ?fresh=1 forces a snapshot rebuild first (used by tests
//	                and pull-now tooling; the lock-free default serves the
//	                published snapshot). ?mode=delta&base=<etag> asks for an
//	                incremental KindDelta payload against a recently served
//	                snapshot; see serveSnapshot.
//	POST /merge     ingest a peer's wire payload: the decoded summary is
//	                folded into one shard under the COMBINE rule
//	                (eps_new = max), so nodes can push state to each other.
//
// Every route is also mounted under the versioned /v1/ prefix
// (GET /v1/snapshot, POST /v1/merge, …) serving identical responses; new
// clients should use /v1/, the unversioned paths are legacy aliases.
//
// The aggregator (cmd/quantileagg) serves the same read API over the merged
// view of many such nodes.
func NewServerHandler[S sharded.Mergeable[float64, S]](s *sharded.Sharded[float64, S]) http.Handler {
	mux := http.NewServeMux()
	registerServerAPI(mux, s)
	return mux
}

// registerServerAPI mounts the single-stream writer-node endpoints on mux,
// each under both its legacy path and its /v1/ alias; NewServerHandler and
// NewStoreServerHandler both build on it.
func registerServerAPI[S sharded.Mergeable[float64, S]](mux *http.ServeMux, s *sharded.Sharded[float64, S]) {
	snaps := &snapCache{}
	handleBoth(mux, "POST /update", func(w http.ResponseWriter, r *http.Request) {
		handleUpdate(s, w, r)
	})
	registerReadAPI(mux, s)
	handleBoth(mux, "GET /stats", func(w http.ResponseWriter, r *http.Request) {
		st := s.Stats()
		writeJSON(w, map[string]any{
			"shards":          st.Shards,
			"count":           st.Count,
			"snapshot_count":  st.SnapshotCount,
			"snapshot_stored": st.SnapshotStored,
			"snapshot_lag":    st.Count - st.SnapshotCount,
			"refreshes":       st.Refreshes,
		})
	})
	handleBoth(mux, "GET /snapshot", func(w http.ResponseWriter, r *http.Request) {
		handleSnapshot(s, snaps, w, r)
	})
	handleBoth(mux, "POST /merge", func(w http.ResponseWriter, r *http.Request) {
		handleMerge(s, w, r)
	})
}

func handleUpdate[S sharded.Mergeable[float64, S]](s *sharded.Sharded[float64, S], w http.ResponseWriter, r *http.Request) {
	batch, weights, ok := parseUpdateRequest(w, r)
	if !ok {
		return // parseUpdateRequest wrote the response
	}
	if weights != nil && !s.Weighted() {
		httpError(w, http.StatusBadRequest, "this node's summary family has no native weighted path")
		return
	}
	resp := map[string]any{"accepted": len(batch)}
	if weights != nil {
		if len(batch) > 0 {
			s.WeightedUpdateBatch(batch, weights)
		}
		var total int64
		for _, wt := range weights {
			total += wt
		}
		resp["weight"] = total
	} else if len(batch) > 0 {
		s.UpdateBatch(batch)
	}
	resp["n"] = s.Count()
	writeJSON(w, resp)
}

// parseUpdateRequest parses an ingestion request (the ?x= parameters plus a
// whitespace/comma-separated or JSON-array body) into one batch, writing the
// error response itself when the request is malformed. A JSON body may be a
// plain array of numbers (unit weights) or an array of {"v":…,"w":…}
// objects — a weighted batch for pre-counted or importance-weighted
// observations — in which case the returned weights slice parallels the
// batch (nil for an unweighted request). Everything is parsed and validated
// before anything is ingested: a request is either accepted whole or
// rejected whole (there is no way to remove items from a summary, so a
// partial ingest before a 400 would leave a retrying client
// double-counting). Weighted requests additionally reject, with a structured
// 400, any element whose weight is NaN, non-positive, non-integral, or
// overflow-inducing (above MaxItemWeight). Shared by the single-stream and
// keyed update endpoints.
func parseUpdateRequest(w http.ResponseWriter, r *http.Request) ([]float64, []int64, bool) {
	var batch []float64
	for _, raw := range r.URL.Query()["x"] {
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil || math.IsNaN(v) {
			httpError(w, http.StatusBadRequest, "bad x parameter %q: want a non-NaN float64", raw)
			return nil, nil, false
		}
		batch = append(batch, v)
	}
	body, err := readBody(w, r)
	if err != nil {
		return nil, nil, false // readBody wrote the response
	}
	var weights []int64
	if len(body) > 0 {
		var fromBody []float64
		if isJSONContent(r.Header.Get("Content-Type")) {
			if isWeightedBatch(body) {
				fromBody, weights, err = parseJSONWeightedBatch(body)
				if err == nil && len(batch) > 0 {
					// ?x= items ride along with weight 1.
					unit := make([]int64, len(batch))
					for i := range unit {
						unit[i] = 1
					}
					weights = append(unit, weights...)
				}
			} else {
				fromBody, err = parseJSONBatch(body)
			}
		} else {
			fromBody, err = parseFloats(string(body))
		}
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return nil, nil, false
		}
		batch = append(batch, fromBody...)
	}
	return batch, weights, true
}

// isWeightedBatch sniffs whether a JSON body is an array of objects (the
// weighted {v,w} format) rather than an array of numbers: the first
// non-whitespace byte inside the array decides.
func isWeightedBatch(body []byte) bool {
	i := 0
	for i < len(body) && isJSONSpace(body[i]) {
		i++
	}
	if i >= len(body) || body[i] != '[' {
		return false
	}
	i++
	for i < len(body) && isJSONSpace(body[i]) {
		i++
	}
	return i < len(body) && body[i] == '{'
}

func isJSONSpace(b byte) bool {
	return b == ' ' || b == '\t' || b == '\n' || b == '\r'
}

// parseJSONWeightedBatch decodes a JSON array of {"v": value, "w": weight}
// objects into parallel value/weight slices. The value is required (a null
// or missing v is rejected); the weight defaults to 1 when absent and must
// otherwise be a positive integral number no larger than MaxItemWeight —
// NaN, zero, negative, fractional, and overflow-inducing weights are all
// rejected whole with a structured 400 by the caller. Unknown fields are
// rejected so a typo ("weight" for "w") cannot silently ingest at weight 1.
func parseJSONWeightedBatch(body []byte) ([]float64, []int64, error) {
	type point struct {
		V *float64 `json:"v"`
		W *float64 `json:"w"`
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var raw []point
	if err := dec.Decode(&raw); err != nil {
		return nil, nil, fmt.Errorf("bad weighted batch: want an array of {\"v\":…,\"w\":…} objects: %v", err)
	}
	if dec.More() {
		return nil, nil, fmt.Errorf("bad weighted batch: trailing data after the array")
	}
	vals := make([]float64, len(raw))
	weights := make([]int64, len(raw))
	for i, p := range raw {
		if p.V == nil {
			return nil, nil, fmt.Errorf("bad weighted batch: element %d has no value (\"v\")", i)
		}
		if math.IsNaN(*p.V) {
			return nil, nil, fmt.Errorf("bad weighted batch: element %d has a NaN value", i)
		}
		vals[i] = *p.V
		if p.W == nil {
			weights[i] = 1
			continue
		}
		wt := *p.W
		switch {
		case math.IsNaN(wt):
			return nil, nil, fmt.Errorf("bad weighted batch: element %d has a NaN weight", i)
		case wt <= 0:
			return nil, nil, fmt.Errorf("bad weighted batch: element %d has non-positive weight %v", i, wt)
		case wt != math.Trunc(wt):
			return nil, nil, fmt.Errorf("bad weighted batch: element %d has non-integral weight %v (weights are counts)", i, wt)
		case wt > float64(MaxItemWeight):
			return nil, nil, fmt.Errorf("bad weighted batch: element %d has overflow-inducing weight %v (max %d)", i, wt, MaxItemWeight)
		}
		weights[i] = int64(wt)
	}
	return vals, weights, nil
}

func handleSnapshot[S sharded.Mergeable[float64, S]](s *sharded.Sharded[float64, S], snaps *snapCache, w http.ResponseWriter, r *http.Request) {
	if f := r.URL.Query().Get("fresh"); f == "1" || f == "true" {
		s.Refresh()
	}
	serveSnapshot(w, r, snaps, s)
}

func handleMerge[S sharded.Mergeable[float64, S]](s *sharded.Sharded[float64, S], w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		return
	}
	dec, err := encoding.Decode(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "decoding payload: %v", err)
		return
	}
	other, ok := dec.(S)
	if !ok {
		httpError(w, http.StatusBadRequest,
			"payload holds a %T, which this node's summary cannot merge", dec)
		return
	}
	if err := s.MergeSummary(other); err != nil {
		httpError(w, http.StatusConflict, "merging payload: %v", err)
		return
	}
	writeJSON(w, map[string]any{"merged": other.Count(), "n": s.Count()})
}

// readBody drains an ingestion request body under the MaxBodyBytes cap,
// writing the error response itself when reading fails.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			httpError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes; split the batch", MaxBodyBytes)
			return nil, err
		}
		httpError(w, http.StatusBadRequest, "reading body: %v", err)
		return nil, err
	}
	return body, nil
}

// isJSONContent reports whether a Content-Type header declares JSON. Media
// types are case-insensitive (RFC 9110) and may carry parameters like
// "; charset=utf-8".
func isJSONContent(ct string) bool {
	mediaType, _, err := mime.ParseMediaType(ct)
	return err == nil && mediaType == "application/json"
}

// parseJSONBatch decodes a JSON array of numbers — the batched payload
// format for producers that already aggregate items (log shippers, metric
// agents). NaN and infinities are rejected by JSON syntax itself; any other
// shape (object, nested array, string element) is rejected whole with a
// structured 400 by the caller.
func parseJSONBatch(body []byte) ([]float64, error) {
	dec := json.NewDecoder(bytes.NewReader(body))
	// Pointers distinguish a JSON null (left nil) from a number: null would
	// otherwise silently decode to 0 and be ingested.
	var raw []*float64
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("bad JSON batch: want an array of numbers: %v", err)
	}
	// A valid array followed by trailing garbage ("[1,2] oops") must not be
	// silently half-accepted.
	if dec.More() {
		return nil, fmt.Errorf("bad JSON batch: trailing data after the array")
	}
	out := make([]float64, len(raw))
	for i, p := range raw {
		if p == nil {
			return nil, fmt.Errorf("bad JSON batch: element %d is null, want a number", i)
		}
		out[i] = *p
	}
	return out, nil
}

// parseFloats splits a body on whitespace, commas and newlines.
func parseFloats(body string) ([]float64, error) {
	fields := strings.FieldsFunc(body, func(r rune) bool {
		return r == ' ' || r == '\t' || r == '\n' || r == '\r' || r == ','
	})
	out := make([]float64, 0, len(fields))
	for _, f := range fields {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil || math.IsNaN(v) {
			// Truncate the echoed token: a malformed multi-megabyte body
			// must not turn into a multi-megabyte error response.
			if len(f) > 32 {
				f = f[:32] + "…"
			}
			return nil, fmt.Errorf("bad value %q: want a non-NaN float64", f)
		}
		out = append(out, v)
	}
	return out, nil
}
