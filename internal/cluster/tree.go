package cluster

// Hierarchical aggregation: combiner nodes that pull children (leaf servers
// or other combiners), merge under a per-level error budget, and re-export
// the merged view upward, so aggregators compose into trees of height 2–3
// (and beyond) instead of one flat fan-in.
//
// Error accounting. The paper's lower bound fixes what each *summary* must
// pay; a tree splits the end-to-end budget eps across its levels. A tree of
// height h (levels counted from the leaves, which are level 1) gives every
// level eps/h to spend: leaves run their summaries at eps/h, and each
// combiner at level L ≥ 2 (a) verifies that every child's declared accuracy
// is within the cumulative budget of level L-1, i.e. (L-1)·eps/h — merging
// is free under the COMBINE rule (eps_merged = max over children) — and
// (b) prunes its merged view to ⌈h/eps⌉+1 retained entries, adding at most
// eps/h, before re-exporting it. By induction the level-L view carries error
// ≤ L·eps/h, so the root (level h) answers within eps — and every level
// ships O((h/eps)) entries upward regardless of fan-in.
//
// Backpressure. A combiner round is bounded by TreeConfig.RoundTimeout:
// children that do not answer within the deadline are shed from the round
// (the shed counter ticks, visible in /stats) and keep contributing their
// last successful snapshot — the stale-serving discipline the flat
// aggregator already follows, which also means the combiner's own parent
// keeps revalidating 304 against an unchanged merged view instead of
// stalling on a slow grandchild.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"quantilelb/internal/encoding"
)

// TreeConfig declares a combiner's position in an aggregation tree and the
// tree-wide error budget. The zero value means "not a tree" (flat
// aggregation, no per-level accounting).
type TreeConfig struct {
	// Eps is the end-to-end rank-error budget of the whole tree: the root's
	// merged view answers within Eps·N.
	Eps float64
	// Height is the number of levels in the tree, counting the leaf servers
	// as level 1. Leaves must run their summaries at accuracy ≤ Eps/Height.
	Height int
	// Level is this combiner's level, between 2 and Height. The root of the
	// tree is level Height.
	Level int
	// RoundTimeout bounds one pull round; children that miss the deadline
	// are shed (stale-served) instead of stalling the round. Zero means no
	// deadline beyond the caller's context.
	RoundTimeout time.Duration
}

// validate checks the configuration invariants at construction time.
func (c TreeConfig) validate() error {
	if !(c.Eps > 0 && c.Eps < 1) {
		return fmt.Errorf("cluster: tree eps %v must be in (0, 1)", c.Eps)
	}
	if c.Height < 2 {
		return fmt.Errorf("cluster: tree height %d must be at least 2 (a height-1 tree is just a server)", c.Height)
	}
	if c.Level < 2 || c.Level > c.Height {
		return fmt.Errorf("cluster: tree level %d must be between 2 and the height %d", c.Level, c.Height)
	}
	return nil
}

// childBudget is the cumulative error budget a child of this combiner may
// have spent: (Level-1)·Eps/Height.
func (c TreeConfig) childBudget() float64 {
	return float64(c.Level-1) * c.Eps / float64(c.Height)
}

// pruneK is the retained-entry parameter the combiner prunes its merged view
// to: ⌈Height/Eps⌉, so one prune adds at most Eps/Height error.
func (c TreeConfig) pruneK() int {
	return int(math.Ceil(float64(c.Height) / c.Eps))
}

// epsReporter is the optional self-declared accuracy of a decoded child
// summary; every comparison-based family in this repository implements it.
type epsReporter interface{ Epsilon() float64 }

// pruner is the optional PRUNE operation of a decoded summary (gk, mlq, req).
type pruner interface{ Prune(k int) }

// validateChild enforces the per-level budget on one decoded child summary.
// Families that do not declare an accuracy (randomized sketches) pass
// unchecked — the budget rule is a comparison-based-summary contract.
func (c TreeConfig) validateChild(name string, dec any) error {
	e, ok := dec.(epsReporter)
	if !ok {
		return nil
	}
	// A hair of slack absorbs the float rounding of eps/h computed at the
	// leaf versus here.
	if budget := c.childBudget(); e.Epsilon() > budget*(1+1e-9) {
		return fmt.Errorf("cluster: child %s declares eps %v, exceeding the level-%d budget %v (= %d·%v/%d) — run leaves at eps/height and intermediate combiners with matching tree flags",
			name, e.Epsilon(), c.Level-1, budget, c.Level-1, c.Eps, c.Height)
	}
	return nil
}

// NewTree returns a combiner: an aggregator that enforces cfg's per-level
// budget on every child payload and prunes its merged view to ⌈h/eps⌉+1
// entries before re-exporting it. Children are pulled exactly like New's —
// leaf servers and lower combiners are indistinguishable sources.
func NewTree(cfg TreeConfig, sources ...Source) (*Aggregator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	a := New(sources...)
	a.tree = &cfg
	return a, nil
}

// NewTreeHTTP returns a combiner pulling GET /v1/snapshot from each child
// base URL with delta negotiation enabled (the tree-mode default: fan-in is
// exactly where snapshot bandwidth multiplies).
func NewTreeHTTP(cfg TreeConfig, client *http.Client, childURLs ...string) (*Aggregator, error) {
	srcs := make([]Source, len(childURLs))
	for i, u := range childURLs {
		srcs[i] = &HTTPSource{URL: u, Client: client, Delta: true}
	}
	return NewTree(cfg, srcs...)
}

// Tree returns the combiner's tree configuration, or nil for a flat
// aggregator.
func (a *Aggregator) Tree() *TreeConfig {
	if a.tree == nil {
		return nil
	}
	cfg := *a.tree
	return &cfg
}

// Sheds returns how many pull rounds hit the tree's RoundTimeout (children
// shed to stale serving).
func (a *Aggregator) Sheds() int { return int(a.sheds.Load()) }

// PushSource is a Source fed by pushes instead of pulls: a child behind NAT
// or a strict firewall POSTs its snapshots to the combiner's
// /v1/child/{name}/snapshot route (see NewTreeAggregatorHandler), and the
// combiner's pull loop reads the latest pushed payload locally. Offer
// replaces the retained payload — pushing is idempotent per snapshot, unlike
// POST /v1/merge, whose repeated application would double-count.
type PushSource struct {
	name    string
	mu      sync.Mutex
	payload []byte
	version uint64
}

// NewPushSource returns an empty push source. It contributes nothing until
// the first Offer.
func NewPushSource(name string) *PushSource { return &PushSource{name: name} }

// Name identifies the child in status reports.
func (ps *PushSource) Name() string { return ps.name }

// Offer replaces the retained snapshot payload with a newer one.
func (ps *PushSource) Offer(payload []byte) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	ps.payload = payload
	ps.version++
}

// Fetch implements Source over the retained pushed payload; unchanged
// payloads answer notModified, mirroring the HTTP 304 discipline.
func (ps *PushSource) Fetch(_ context.Context, etag string) ([]byte, string, bool, error) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ps.payload == nil {
		return nil, "", false, errors.New("cluster: no snapshot pushed yet")
	}
	tag := strconv.FormatUint(ps.version, 10)
	if etag == tag {
		return nil, etag, true, nil
	}
	return ps.payload, tag, false, nil
}

// NewTreeAggregatorHandler returns the HTTP API of a combiner: everything
// NewAggregatorHandler serves, plus a push route for each named child
// source:
//
//	POST /v1/child/{name}/snapshot  replace the child's retained snapshot
//	                                with the request body (a full wire
//	                                payload; unknown children 404, payloads
//	                                that are not wire containers 400)
//
// The push sources must also be among the aggregator's Sources — the
// combiner still merges them through its normal pull rounds.
func NewTreeAggregatorHandler(a *Aggregator, children ...*PushSource) http.Handler {
	byName := make(map[string]*PushSource, len(children))
	for _, ps := range children {
		byName[ps.name] = ps
	}
	mux := http.NewServeMux()
	registerAggregatorAPI(mux, a)
	handleBoth(mux, "POST /child/{name}/snapshot", func(w http.ResponseWriter, r *http.Request) {
		ps := byName[r.PathValue("name")]
		if ps == nil {
			httpError(w, http.StatusNotFound, "unknown child %q", r.PathValue("name"))
			return
		}
		body, err := readBody(w, r)
		if err != nil {
			return
		}
		if _, err := encoding.DetectKind(body); err != nil {
			httpError(w, http.StatusBadRequest, "pushed payload: %v", err)
			return
		}
		ps.Offer(body)
		writeJSON(w, map[string]any{"child": ps.name, "bytes": len(body)})
	})
	return mux
}
