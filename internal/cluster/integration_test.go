package cluster_test

// The end-to-end proof of the distributed tier: three real quantileserver
// HTTP nodes (httptest), one aggregator pulling their binary snapshots, and
// the exact oracle of internal/rank checking that the globally merged answers
// stay within the max per-node eps on every workload of the benchmark matrix
// — including the paper's own adversarial stream, the input the lower bound
// proves hardest.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"quantilelb/internal/bench"
	"quantilelb/internal/cluster"
	"quantilelb/internal/encoding"
	"quantilelb/internal/gk"
	"quantilelb/internal/kll"
	"quantilelb/internal/mlq"
	"quantilelb/internal/rank"
	"quantilelb/internal/sharded"
)

// nodeEps are the per-node accuracies; they differ on purpose so the test
// exercises the COMBINE budget eps_global = max_i eps_i rather than a
// symmetric special case.
var nodeEps = []float64{0.01, 0.02, 0.05}

const maxEps = 0.05

// startNode spins one writer node: a 4-way sharded GK summary behind the
// real HTTP handler.
func startNode(t *testing.T, eps float64) *httptest.Server {
	t.Helper()
	s := sharded.New(func() *gk.Summary[float64] { return gk.NewFloat64(eps) }, 4)
	srv := httptest.NewServer(cluster.NewServerHandler(s))
	t.Cleanup(srv.Close)
	return srv
}

// postBatch ships one JSON batch to a node's /update.
func postBatch(t *testing.T, url string, batch []float64) {
	t.Helper()
	body, err := json.Marshal(batch)
	if err != nil {
		t.Fatalf("marshaling batch: %v", err)
	}
	resp, err := http.Post(url+"/update", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /update: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /update: status %s", resp.Status)
	}
}

// TestClusterIntegrationAllWorkloads is the acceptance test of the tier:
// 3 servers + 1 aggregator, every workload of the matrix, global max rank
// error ≤ max per-node eps.
func TestClusterIntegrationAllWorkloads(t *testing.T) {
	cfg := bench.DefaultConfig()
	cfg.N = 12_000
	workloads, err := bench.Workloads(cfg)
	if err != nil {
		t.Fatalf("building workloads: %v", err)
	}
	for _, wl := range workloads {
		t.Run(wl.Name, func(t *testing.T) {
			urls := make([]string, len(nodeEps))
			sources := make([]cluster.Source, len(nodeEps))
			for i, eps := range nodeEps {
				srv := startNode(t, eps)
				urls[i] = srv.URL
				// Fresh pulls make the test deterministic: the node rebuilds
				// its snapshot before answering, so no update is hidden in a
				// write buffer when accuracy is measured.
				sources[i] = &cluster.HTTPSource{URL: srv.URL, Fresh: true}
			}

			// Spread the stream over the nodes in contiguous batches,
			// round-robin — the shape a load balancer produces.
			const batchSize = 500
			for i, next := 0, 0; i < len(wl.Items); i += batchSize {
				end := min(i+batchSize, len(wl.Items))
				postBatch(t, urls[next], wl.Items[i:end])
				next = (next + 1) % len(urls)
			}

			agg := cluster.New(sources...)
			if err := agg.PullOnce(context.Background()); err != nil {
				t.Fatalf("PullOnce: %v", err)
			}

			n := len(wl.Items)
			if agg.Count() != n {
				t.Fatalf("aggregator covers %d items, want %d", agg.Count(), n)
			}
			oracle := rank.Float64Oracle(wl.Items)
			limit := maxEps*float64(n) + 1
			for i := 0; i <= 100; i++ {
				phi := float64(i) / 100
				v, ok := agg.Query(phi)
				if !ok {
					t.Fatalf("Query(%g) on a non-empty aggregator", phi)
				}
				if e := oracle.RankError(v, phi); float64(e) > limit {
					t.Errorf("phi=%g: rank error %d exceeds max-eps budget %.0f", phi, e, limit)
				}
			}
		})
	}
}

// TestAggregatorHTTPAPI drives the aggregator's own HTTP surface: the read
// endpoints must answer with the same shapes as a server node, /stats must
// show every peer healthy, and /snapshot must re-export a payload that
// decodes to the global view (so aggregators can feed higher aggregators).
func TestAggregatorHTTPAPI(t *testing.T) {
	sources := make([]cluster.Source, len(nodeEps))
	for i, eps := range nodeEps {
		srv := startNode(t, eps)
		sources[i] = &cluster.HTTPSource{URL: srv.URL, Fresh: true}
		batch := make([]float64, 1000)
		for j := range batch {
			batch[j] = float64(i*1000 + j)
		}
		postBatch(t, srv.URL, batch)
	}
	agg := cluster.New(sources...)
	if err := agg.PullOnce(context.Background()); err != nil {
		t.Fatalf("PullOnce: %v", err)
	}
	aggSrv := httptest.NewServer(cluster.NewAggregatorHandler(agg))
	defer aggSrv.Close()

	var quantiles struct {
		Results []struct{ Phi, Value float64 }
		N       int
	}
	getJSON(t, aggSrv.URL+"/quantile?phi=0.5", &quantiles)
	if quantiles.N != 3000 || len(quantiles.Results) != 1 {
		t.Fatalf("GET /quantile: n=%d results=%d, want 3000/1", quantiles.N, len(quantiles.Results))
	}
	// The union is 0..2999, so the true median is ~1500 and the merged view
	// is 5%-accurate at worst.
	if med := quantiles.Results[0].Value; med < 1300 || med > 1700 {
		t.Errorf("global median = %g, want ~1500", med)
	}

	var stats struct {
		N            int
		Contributing int
		Peers        []cluster.PeerStatus
	}
	getJSON(t, aggSrv.URL+"/stats", &stats)
	if stats.Contributing != 3 || len(stats.Peers) != 3 {
		t.Fatalf("GET /stats: contributing=%d peers=%d, want 3/3", stats.Contributing, len(stats.Peers))
	}
	for _, p := range stats.Peers {
		if !p.Healthy || p.Kind != "gk" || p.N != 1000 {
			t.Errorf("peer %s: healthy=%t kind=%q n=%d, want true/gk/1000", p.Name, p.Healthy, p.Kind, p.N)
		}
	}

	resp, err := http.Get(aggSrv.URL + "/snapshot")
	if err != nil {
		t.Fatalf("GET /snapshot: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("reading re-exported snapshot: %v", err)
	}
	dec, err := encoding.Decode(buf.Bytes())
	if err != nil {
		t.Fatalf("decoding re-exported snapshot: %v", err)
	}
	global, ok := dec.(*gk.Summary[float64])
	if !ok {
		t.Fatalf("re-exported snapshot decodes to %T, want *gk.Summary[float64]", dec)
	}
	if global.Count() != 3000 {
		t.Errorf("re-exported snapshot covers %d items, want 3000", global.Count())
	}
	// The COMBINE budget across heterogeneous nodes is the max eps.
	if got := global.Epsilon(); got != maxEps {
		t.Errorf("merged eps = %g, want max over nodes = %g", got, maxEps)
	}
}

// TestAggregatorPeerFailure pins the failure-handling contract: a peer that
// dies keeps contributing its last snapshot, the pull error is surfaced, and
// recovery of the remaining peers continues.
func TestAggregatorPeerFailure(t *testing.T) {
	live := startNode(t, 0.01)
	dying := startNode(t, 0.01)
	postBatch(t, live.URL, seq(0, 500))
	postBatch(t, dying.URL, seq(500, 500))

	agg := cluster.New(
		&cluster.HTTPSource{URL: live.URL, Fresh: true},
		&cluster.HTTPSource{URL: dying.URL, Fresh: true},
	)
	if err := agg.PullOnce(context.Background()); err != nil {
		t.Fatalf("first pull: %v", err)
	}
	if agg.Count() != 1000 {
		t.Fatalf("after first pull: count = %d, want 1000", agg.Count())
	}

	dying.Close()
	postBatch(t, live.URL, seq(1000, 500))
	err := agg.PullOnce(context.Background())
	if err == nil {
		t.Fatal("second pull with a dead peer returned no error")
	}
	// The dead peer's 500 items stay in the view; the live peer's new 500
	// arrive: stale-but-available.
	if agg.Count() != 1500 {
		t.Errorf("after partial pull: count = %d, want 1500 (1000 live + 500 stale)", agg.Count())
	}
	statuses := agg.Status()
	if statuses[0].Healthy != true || statuses[1].Healthy != false {
		t.Errorf("peer health = %t/%t, want true/false", statuses[0].Healthy, statuses[1].Healthy)
	}
	if statuses[1].LastError == "" {
		t.Error("dead peer has no recorded error")
	}
}

// TestClusterMLQNodesEndToEnd runs the same 3-node + aggregator topology
// with every node holding a sharded mlq summary: the binary snapshots travel
// as KindMLQ payloads, the aggregator's COMBINE goes through mlq.Merge, and
// the merged view must stay within the shared eps — on the shuffled stream
// and on the paper's adversarial one. This is the wire-level proof that the
// new family participates in the distributed tier, not just the in-process
// ones. Unlike the GK topology above, every node runs the same eps: mlq
// summaries must agree on the block size b to merge, exactly as KLL
// summaries must agree on k.
func TestClusterMLQNodesEndToEnd(t *testing.T) {
	const mlqEps = 0.02
	cfg := bench.DefaultConfig()
	cfg.N = 12_000
	workloads, err := bench.Workloads(cfg)
	if err != nil {
		t.Fatalf("building workloads: %v", err)
	}
	for _, wl := range workloads {
		if wl.Name != "shuffled" && wl.Name != "adversarial-cv" {
			continue
		}
		t.Run(wl.Name, func(t *testing.T) {
			urls := make([]string, len(nodeEps))
			sources := make([]cluster.Source, len(nodeEps))
			for i := range nodeEps {
				s := sharded.New(func() *mlq.Summary { return mlq.NewFloat64(mlqEps) }, 4)
				srv := httptest.NewServer(cluster.NewServerHandler(s))
				t.Cleanup(srv.Close)
				urls[i] = srv.URL
				sources[i] = &cluster.HTTPSource{URL: srv.URL, Fresh: true}
			}
			const batchSize = 500
			for i, next := 0, 0; i < len(wl.Items); i += batchSize {
				end := min(i+batchSize, len(wl.Items))
				postBatch(t, urls[next], wl.Items[i:end])
				next = (next + 1) % len(urls)
			}
			agg := cluster.New(sources...)
			if err := agg.PullOnce(context.Background()); err != nil {
				t.Fatalf("PullOnce: %v", err)
			}
			n := len(wl.Items)
			if agg.Count() != n {
				t.Fatalf("aggregator covers %d items, want %d", agg.Count(), n)
			}
			oracle := rank.Float64Oracle(wl.Items)
			limit := mlqEps*float64(n) + 1
			for i := 0; i <= 100; i++ {
				phi := float64(i) / 100
				v, ok := agg.Query(phi)
				if !ok {
					t.Fatalf("Query(%g) on a non-empty aggregator", phi)
				}
				if e := oracle.RankError(v, phi); float64(e) > limit {
					t.Errorf("phi=%g: rank error %d exceeds eps budget %.0f", phi, e, limit)
				}
			}
			// The re-exported global snapshot is itself a KindMLQ payload:
			// aggregators of mlq nodes can feed higher aggregators.
			p, _, err := agg.SnapshotPayload()
			if err != nil {
				t.Fatalf("aggregator snapshot: %v", err)
			}
			dec, err := encoding.Decode(p)
			if err != nil {
				t.Fatalf("decoding aggregator snapshot: %v", err)
			}
			if _, ok := dec.(*mlq.Summary); !ok {
				t.Fatalf("aggregator re-exports %T, want *mlq.Summary", dec)
			}
		})
	}
}

// TestAggregatorETag pins the bandwidth contract: pulling an unchanged peer
// is answered 304 and ships no payload bytes.
func TestAggregatorETag(t *testing.T) {
	srv := startNode(t, 0.01)
	postBatch(t, srv.URL, seq(0, 100))
	agg := cluster.New(&cluster.HTTPSource{URL: srv.URL, Fresh: true})
	for i := 0; i < 3; i++ {
		if err := agg.PullOnce(context.Background()); err != nil {
			t.Fatalf("pull %d: %v", i, err)
		}
	}
	st := agg.Status()[0]
	if st.Fetches != 3 || st.NotModified != 2 {
		t.Errorf("fetches=%d notModified=%d, want 3/2 (first pull transfers, the rest 304)", st.Fetches, st.NotModified)
	}
	if agg.Count() != 100 {
		t.Errorf("count = %d, want 100", agg.Count())
	}
}

// TestAggregatorKindMismatch: peers running different families cannot be
// merged; the rebuild must fail loudly instead of serving a half-merged view.
func TestAggregatorKindMismatch(t *testing.T) {
	gkNode := gk.NewFloat64(0.01)
	gkNode.Update(1)
	kllPayload := kllNodePayload(t)
	agg := cluster.New(
		&cluster.SummarySource{SourceName: "gk-node", Payload: func() ([]byte, error) { return encoding.Encode(gkNode) }},
		&cluster.SummarySource{SourceName: "kll-node", Payload: func() ([]byte, error) { return kllPayload, nil }},
	)
	if err := agg.PullOnce(context.Background()); err == nil {
		t.Fatal("merging a GK peer with a KLL peer succeeded, want error")
	}
	if _, ok := agg.Query(0.5); ok {
		t.Error("a failed rebuild must not publish a partial view")
	}
	// The rebuild failure must be visible in the offending peer's status,
	// and its payload must not be retained (a kept payload plus ETag would
	// let later 304 rounds skip the rebuild and report success forever).
	st := agg.Status()
	if st[1].Healthy || st[1].LastError == "" {
		t.Errorf("unmergeable peer reported healthy=%t err=%q, want unhealthy with an error", st[1].Healthy, st[1].LastError)
	}
	if st[1].PayloadBytes != 0 {
		t.Errorf("unmergeable peer retains %d payload bytes, want 0 (refetch next round)", st[1].PayloadBytes)
	}
	// The failure is sticky across rounds, not silently swallowed.
	if err := agg.PullOnce(context.Background()); err == nil {
		t.Error("second pull with a persistent kind mismatch reported success")
	}
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("GET %s: decoding: %v", url, err)
	}
}

func seq(start, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(start + i)
	}
	return out
}

func kllNodePayload(t *testing.T) []byte {
	t.Helper()
	s := kll.NewFloat64(0.01)
	for i := 0; i < 100; i++ {
		s.Update(float64(i))
	}
	payload, err := encoding.Encode(s)
	if err != nil {
		t.Fatalf("encoding KLL payload: %v", err)
	}
	return payload
}
