// Package histogram builds equi-depth histograms from quantile summaries.
//
// Equi-depth histograms — buckets holding approximately equal numbers of
// items — are one of the motivating applications listed in Section 1 of the
// lower-bound paper. Given any ε-approximate quantile summary, the bucket
// boundaries are simply the i/b-quantiles for i = 1..b−1, and each bucket's
// population is within ±2εN of N/b.
package histogram

import (
	"fmt"
	"strings"

	"quantilelb/internal/order"
	"quantilelb/internal/summary"
)

// Bucket is one histogram bucket: the half-open value range [Lo, Hi) (the
// last bucket is closed) and the estimated number of items in it.
type Bucket[T any] struct {
	Lo, Hi         T
	EstimatedCount int
}

// Histogram is an equi-depth histogram.
type Histogram[T any] struct {
	Buckets []Bucket[T]
	// N is the number of items the summary had processed.
	N int
}

// Build constructs an equi-depth histogram with b buckets from the summary.
// It returns an error when the summary is empty or b < 1.
func Build[T any](s summary.Summary[T], b int) (*Histogram[T], error) {
	if b < 1 {
		return nil, fmt.Errorf("histogram: bucket count must be positive, got %d", b)
	}
	n := s.Count()
	if n == 0 {
		return nil, fmt.Errorf("histogram: summary is empty")
	}
	lo, ok := s.Query(0)
	if !ok {
		return nil, fmt.Errorf("histogram: summary cannot answer queries")
	}
	h := &Histogram[T]{N: n}
	prev := lo
	prevRank := 0
	for i := 1; i <= b; i++ {
		phi := float64(i) / float64(b)
		hi, ok := s.Query(phi)
		if !ok {
			return nil, fmt.Errorf("histogram: query %v failed", phi)
		}
		rank := s.EstimateRank(hi)
		if i == b {
			rank = n
		}
		h.Buckets = append(h.Buckets, Bucket[T]{Lo: prev, Hi: hi, EstimatedCount: rank - prevRank})
		prev = hi
		prevRank = rank
	}
	return h, nil
}

// MaxSkew returns the largest absolute deviation of a bucket's estimated
// population from the ideal N/b, in items.
func (h *Histogram[T]) MaxSkew() int {
	if len(h.Buckets) == 0 {
		return 0
	}
	ideal := h.N / len(h.Buckets)
	worst := 0
	for _, b := range h.Buckets {
		d := b.EstimatedCount - ideal
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}

// Render returns a rough ASCII rendering of the histogram (one line per
// bucket), useful in command-line tools and examples.
func (h *Histogram[T]) Render(format func(T) string, width int) string {
	if width < 1 {
		width = 40
	}
	maxCount := 1
	for _, b := range h.Buckets {
		if b.EstimatedCount > maxCount {
			maxCount = b.EstimatedCount
		}
	}
	var sb strings.Builder
	for _, b := range h.Buckets {
		bar := b.EstimatedCount * width / maxCount
		fmt.Fprintf(&sb, "[%12s, %12s) %7d %s\n", format(b.Lo), format(b.Hi), b.EstimatedCount, strings.Repeat("#", bar))
	}
	return sb.String()
}

// ExactCounts recomputes each bucket's true population from the raw data,
// returning the per-bucket absolute errors of the estimates. It is used by
// tests and experiments to validate the ±2εN bucket guarantee.
func (h *Histogram[T]) ExactCounts(cmp order.Comparator[T], data []T) []int {
	sorted := order.Sorted(cmp, data)
	errs := make([]int, len(h.Buckets))
	prev := 0
	for i, b := range h.Buckets {
		hi := order.CountLE(cmp, sorted, b.Hi)
		exact := hi - prev
		diff := exact - b.EstimatedCount
		if diff < 0 {
			diff = -diff
		}
		errs[i] = diff
		prev = hi
	}
	return errs
}
