package histogram

import (
	"fmt"
	"strings"
	"testing"

	"quantilelb/internal/gk"
	"quantilelb/internal/order"
	"quantilelb/internal/stream"
)

func buildSummary(eps float64, data []float64) *gk.Summary[float64] {
	s := gk.NewFloat64(eps)
	for _, x := range data {
		s.Update(x)
	}
	return s
}

func TestBuildValidation(t *testing.T) {
	s := buildSummary(0.1, []float64{1, 2, 3})
	if _, err := Build[float64](s, 0); err == nil {
		t.Errorf("zero buckets should error")
	}
	empty := gk.NewFloat64(0.1)
	if _, err := Build[float64](empty, 4); err == nil {
		t.Errorf("empty summary should error")
	}
}

func TestEquiDepthOnUniformData(t *testing.T) {
	gen := stream.NewGenerator(1)
	n := 50000
	eps := 0.01
	st := gen.Uniform(n)
	s := buildSummary(eps, st.Items())
	h, err := Build[float64](s, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Buckets) != 10 {
		t.Fatalf("bucket count = %d", len(h.Buckets))
	}
	if h.N != n {
		t.Fatalf("N = %d", h.N)
	}
	// Each bucket's estimated population should be within 2εN of N/b.
	ideal := n / 10
	for i, b := range h.Buckets {
		d := b.EstimatedCount - ideal
		if d < 0 {
			d = -d
		}
		if float64(d) > 2*eps*float64(n)+1 {
			t.Errorf("bucket %d count %d deviates from ideal %d by %d", i, b.EstimatedCount, ideal, d)
		}
	}
	if float64(h.MaxSkew()) > 2*eps*float64(n)+1 {
		t.Errorf("MaxSkew = %d too large", h.MaxSkew())
	}
	// Estimated counts should be close to exact counts.
	errs := h.ExactCounts(order.Floats[float64](), st.Items())
	for i, e := range errs {
		if float64(e) > 2*eps*float64(n)+1 {
			t.Errorf("bucket %d estimate off by %d", i, e)
		}
	}
	// Boundaries are non-decreasing.
	for i := 1; i < len(h.Buckets); i++ {
		if h.Buckets[i].Lo > h.Buckets[i].Hi {
			t.Errorf("bucket %d has Lo > Hi", i)
		}
		if h.Buckets[i-1].Hi != h.Buckets[i].Lo {
			t.Errorf("buckets %d and %d are not contiguous", i-1, i)
		}
	}
}

func TestEquiDepthOnClusteredData(t *testing.T) {
	// Clustered data is where equi-depth histograms shine: equal-width
	// buckets would be mostly empty.
	gen := stream.NewGenerator(2)
	n := 30000
	st := gen.Clustered(n, 5)
	s := buildSummary(0.01, st.Items())
	h, err := Build[float64](s, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range h.Buckets {
		if b.EstimatedCount < n/8-2*n/100-1 || b.EstimatedCount > n/8+2*n/100+1 {
			t.Errorf("bucket %d count %d far from equi-depth ideal %d", i, b.EstimatedCount, n/8)
		}
	}
}

func TestSingleBucket(t *testing.T) {
	s := buildSummary(0.1, []float64{5, 1, 3})
	h, err := Build[float64](s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Buckets) != 1 {
		t.Fatalf("want 1 bucket")
	}
	if h.Buckets[0].EstimatedCount != 3 {
		t.Errorf("single bucket should hold everything, got %d", h.Buckets[0].EstimatedCount)
	}
	if h.MaxSkew() != 0 {
		t.Errorf("single bucket skew should be 0")
	}
}

func TestRender(t *testing.T) {
	gen := stream.NewGenerator(3)
	s := buildSummary(0.05, gen.Gaussian(5000, 100, 10).Items())
	h, err := Build[float64](s, 5)
	if err != nil {
		t.Fatal(err)
	}
	out := h.Render(func(x float64) string { return fmt.Sprintf("%.1f", x) }, 30)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("expected 5 lines, got %d", len(lines))
	}
	if !strings.Contains(out, "#") {
		t.Errorf("render should contain bars")
	}
	// Width clamp.
	out2 := h.Render(func(x float64) string { return "x" }, 0)
	if !strings.Contains(out2, "#") {
		t.Errorf("render with clamped width should still draw bars")
	}
}

func TestMaxSkewEmpty(t *testing.T) {
	h := &Histogram[float64]{}
	if h.MaxSkew() != 0 {
		t.Errorf("empty histogram skew should be 0")
	}
}
