package req_test

// Property tests for the relative-error summary: every workload in the
// repository's matrix (including the paper's adversarial stream) is checked
// against the exact rank oracle under the STRICT relative gate — rank error
// at target t at most ε·(N−t+1), no slack — plus the family contracts the
// other summaries pin in their own packages: batch/update equivalence,
// weighted ingest vs the weighted oracle, NaN streams under the total
// order, COMBINE merge semantics, Prune degradation, and structural
// invariants after every operation. The cross-family accuracy matrix lives
// in internal/checker; these tests are the package-local teeth.

import (
	"math"
	"math/rand"
	"testing"

	"quantilelb/internal/bench"
	"quantilelb/internal/rank"
	"quantilelb/internal/req"
	"quantilelb/internal/stream"
	"quantilelb/internal/summary"
)

// Compile-time interface conformance, mirroring the facade's checks.
var (
	_ summary.Summary[float64]         = (*req.Summary)(nil)
	_ summary.Mergeable[*req.Summary]  = (*req.Summary)(nil)
	_ summary.WeightedUpdater[float64] = (*req.Summary)(nil)
	_ summary.Epsiloned                = (*req.Summary)(nil)
)

const (
	testN   = 30_000
	testEps = 0.02
)

// tailPhis are the quantiles the relative guarantee exists for: at
// N = 30000 and ε = 0.02 the 0.9999 budget is under one item, so the tail
// must be answered exactly.
var tailPhis = []float64{0.9, 0.99, 0.999, 0.9999, 1.0}

func testWorkloads(t testing.TB) []stream.Stream {
	t.Helper()
	gen := stream.NewGenerator(42)
	var out []stream.Stream
	for _, name := range []string{"sorted", "reverse", "shuffled", "zipf", "duplicates", "drift"} {
		st, err := gen.ByName(name, testN)
		if err != nil {
			t.Fatalf("workload %s: %v", name, err)
		}
		out = append(out, *st)
	}
	adv, err := bench.AdversarialWorkload(testN)
	if err != nil {
		t.Fatalf("adversarial workload: %v", err)
	}
	out = append(out, *stream.New(adv.Name, adv.Items))
	return out
}

// relBudget is the relative allowance at target rank t out of n: ε·(n−t+1).
func relBudget(eps float64, n, t int) float64 {
	return eps * float64(n-t+1)
}

// assertRelative drives a grid of quantile queries (dense in the tail) and
// asserts the strict relative gate against the oracle.
func assertRelative(t *testing.T, s *req.Summary, items []float64, eps float64) {
	t.Helper()
	oracle := rank.Float64Oracle(items)
	n := oracle.Len()
	phis := make([]float64, 0, 300)
	for i := 0; i <= 200; i++ {
		phis = append(phis, float64(i)/200)
	}
	// Geometric tail grid: from-the-top rank 1, 2, 4, ... so the strictest
	// budgets are all exercised.
	for r := 1; r < n; r *= 2 {
		phis = append(phis, float64(n-r)/float64(n))
	}
	phis = append(phis, tailPhis...)
	for _, phi := range phis {
		got, ok := s.Query(phi)
		if !ok {
			t.Fatalf("Query(%v) on non-empty summary returned !ok", phi)
		}
		e := oracle.RankError(got, phi)
		target := rank.QuantileRank(n, phi)
		if float64(e) > relBudget(eps, n, target) {
			t.Fatalf("phi=%v target=%d: rank error %d exceeds relative budget %.2f",
				phi, target, e, relBudget(eps, n, target))
		}
	}
}

func TestRelativeAccuracyAcrossWorkloads(t *testing.T) {
	for _, wl := range testWorkloads(t) {
		wl := wl
		t.Run(wl.Name(), func(t *testing.T) {
			s := req.NewFloat64(testEps)
			for _, x := range wl.Items() {
				s.Update(x)
			}
			if err := s.CheckInvariant(); err != nil {
				t.Fatalf("invariant after ingest: %v", err)
			}
			if s.Count() != wl.Len() {
				t.Fatalf("Count = %d, want %d", s.Count(), wl.Len())
			}
			assertRelative(t, s, wl.Items(), testEps)
		})
	}
}

func TestExactBelowBufferCapacity(t *testing.T) {
	s := req.NewFloat64(0.05)
	items := make([]float64, 0, 50)
	for i := 0; i < 50; i++ {
		x := float64((i * 37) % 23)
		items = append(items, x)
		s.Update(x)
	}
	oracle := rank.Float64Oracle(items)
	for i := 0; i <= 100; i++ {
		phi := float64(i) / 100
		got, _ := s.Query(phi)
		if e := oracle.RankError(got, phi); e != 0 {
			t.Fatalf("phi=%v: buffered-only summary answered with rank error %d, want exact", phi, e)
		}
	}
	for _, q := range items {
		if est, exact := s.EstimateRank(q), oracle.RankLE(q); est != exact {
			t.Fatalf("EstimateRank(%v) = %d, want exact %d", q, est, exact)
		}
	}
}

func TestUpdateBatchMatchesUpdate(t *testing.T) {
	items := stream.NewGenerator(7).Shuffled(20_000).Items()
	one := req.NewFloat64(testEps)
	batch := req.NewFloat64(testEps)
	for _, x := range items {
		one.Update(x)
	}
	for i := 0; i < len(items); i += 997 {
		batch.UpdateBatch(items[i:min(i+997, len(items))])
	}
	if one.Count() != batch.Count() {
		t.Fatalf("counts diverge: %d vs %d", one.Count(), batch.Count())
	}
	for i := 0; i <= 400; i++ {
		phi := float64(i) / 400
		a, _ := one.Query(phi)
		b, _ := batch.Query(phi)
		if a != b {
			t.Fatalf("phi=%v: update path answered %v, batch path %v", phi, a, b)
		}
	}
}

func TestWeightedRelativeAccuracy(t *testing.T) {
	gen := rand.New(rand.NewSource(11))
	n := 4_000
	items := make([]float64, n)
	weights := make([]int64, n)
	var totalW int64
	for i := range items {
		items[i] = gen.NormFloat64() * 100
		weights[i] = int64(gen.Intn(50) + 1)
		if i%211 == 0 {
			weights[i] <<= 12 // heavy runs
		}
		totalW += weights[i]
	}
	s := req.NewFloat64(testEps)
	s.WeightedUpdateBatch(items, weights)
	if err := s.CheckInvariant(); err != nil {
		t.Fatalf("invariant after weighted ingest: %v", err)
	}
	if int64(s.Count()) != totalW {
		t.Fatalf("Count = %d, want total weight %d", s.Count(), totalW)
	}
	oracle := rank.Float64WeightedOracle(items, weights)
	for i := 0; i <= 200; i++ {
		phi := float64(i) / 200
		got, _ := s.Query(phi)
		e := oracle.RankError(got, phi)
		target := rank.WeightedQuantileRank(totalW, phi)
		budget := testEps * float64(totalW-target+1)
		if float64(e) > budget {
			t.Fatalf("phi=%v: weighted rank error %d exceeds relative budget %.2f", phi, e, budget)
		}
	}
	for _, phi := range tailPhis {
		got, _ := s.Query(phi)
		e := oracle.RankError(got, phi)
		target := rank.WeightedQuantileRank(totalW, phi)
		if float64(e) > testEps*float64(totalW-target+1) {
			t.Fatalf("tail phi=%v: weighted rank error %d over budget", phi, e)
		}
	}
}

func TestNaNStream(t *testing.T) {
	s := req.NewFloat64(0.05)
	items := make([]float64, 0, 5_000)
	for i := 0; i < 5_000; i++ {
		x := float64((i * 7919) % 4001)
		if i%11 == 0 {
			x = math.NaN()
		}
		items = append(items, x)
		s.Update(x)
	}
	s.WeightedUpdate(math.NaN(), 7)
	items = append(items, math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN())
	if err := s.CheckInvariant(); err != nil {
		t.Fatalf("invariant with NaNs: %v", err)
	}
	// The NaN-aware oracle sorts NaN first, same as the summary's total
	// order; queries must stay within the relative budget and must not hang.
	assertRelative(t, s, items, 0.05)
	if est := s.EstimateRank(math.NaN()); est <= 0 {
		t.Fatalf("EstimateRank(NaN) = %d, want the NaN run's weight", est)
	}
}

func TestMergePreservesRelativeGuarantee(t *testing.T) {
	for _, parts := range []int{2, 8, 16} {
		for _, wl := range testWorkloads(t) {
			items := wl.Items()
			shards := make([]*req.Summary, parts)
			for i := range shards {
				shards[i] = req.NewFloat64(testEps)
			}
			for i, x := range items {
				shards[i%parts].Update(x)
			}
			dst := shards[0]
			for _, src := range shards[1:] {
				if err := dst.Merge(src); err != nil {
					t.Fatalf("merge: %v", err)
				}
			}
			if dst.Count() != len(items) {
				t.Fatalf("merged count %d, want %d", dst.Count(), len(items))
			}
			if err := dst.CheckInvariant(); err != nil {
				t.Fatalf("invariant after %d-way merge (%s): %v", parts, wl.Name(), err)
			}
			t.Run(wl.Name(), func(t *testing.T) {
				assertRelative(t, dst, items, testEps)
			})
		}
	}
}

func TestMergeTreeDepth(t *testing.T) {
	// A 64-leaf binary merge tree: the worst realistic fan-in shape for the
	// cluster tier. Error must not accumulate with depth.
	items := stream.NewGenerator(3).Shuffled(32_768).Items()
	leaves := make([]*req.Summary, 64)
	for i := range leaves {
		leaves[i] = req.NewFloat64(testEps)
	}
	for i, x := range items {
		leaves[i%len(leaves)].Update(x)
	}
	for len(leaves) > 1 {
		next := leaves[:0]
		for i := 0; i+1 < len(leaves); i += 2 {
			if err := leaves[i].Merge(leaves[i+1]); err != nil {
				t.Fatalf("merge: %v", err)
			}
			next = append(next, leaves[i])
		}
		leaves = next
	}
	root := leaves[0]
	if root.Count() != len(items) {
		t.Fatalf("root count %d, want %d", root.Count(), len(items))
	}
	assertRelative(t, root, items, testEps)
}

func TestMergeEpsIsMax(t *testing.T) {
	a := req.NewFloat64(0.01)
	b := req.NewFloat64(0.05)
	for i := 0; i < 1_000; i++ {
		a.Update(float64(i))
		b.Update(float64(-i))
	}
	if err := a.Merge(b); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if got := a.Epsilon(); got != 0.05 {
		t.Fatalf("merged Epsilon = %v, want max input 0.05", got)
	}
}

func TestMergeEdgeCases(t *testing.T) {
	s := req.NewFloat64(testEps)
	s.Update(1)
	if err := s.Merge(s); err == nil {
		t.Fatal("self-merge must error")
	}
	if err := s.Merge(nil); err != nil {
		t.Fatalf("nil merge: %v", err)
	}
	if err := s.Merge(req.NewFloat64(0.5)); err != nil {
		t.Fatalf("empty merge: %v", err)
	}
	if got := s.Epsilon(); got != testEps {
		t.Fatalf("empty merge changed Epsilon to %v", got)
	}
	if s.Count() != 1 {
		t.Fatalf("edge-case merges changed count to %d", s.Count())
	}
	// Merging into an empty destination adopts the source wholesale.
	empty := req.NewFloat64(testEps)
	if err := empty.Merge(s); err != nil {
		t.Fatalf("merge into empty: %v", err)
	}
	if empty.Count() != 1 {
		t.Fatalf("merge into empty lost items: count %d", empty.Count())
	}
}

func TestPrune(t *testing.T) {
	items := stream.NewGenerator(5).Shuffled(50_000).Items()
	oracle := rank.Float64Oracle(items)
	for _, k := range []int{5, 50, 500} {
		s := req.NewFloat64(0.01)
		s.UpdateBatch(items)
		before := s.Epsilon()
		s.Prune(k)
		if got := s.StoredCount(); got > k+1 {
			t.Fatalf("Prune(%d) left %d entries, want at most %d", k, got, k+1)
		}
		if err := s.CheckInvariant(); err != nil {
			t.Fatalf("invariant after Prune(%d): %v", k, err)
		}
		if s.Epsilon() < before {
			t.Fatalf("Prune(%d) tightened Epsilon from %v to %v", k, before, s.Epsilon())
		}
		if !(s.Epsilon() < 1) {
			t.Fatalf("Prune(%d) pushed Epsilon to %v, outside (0,1)", k, s.Epsilon())
		}
		if s.Count() != len(items) {
			t.Fatalf("Prune(%d) changed count to %d", k, s.Count())
		}
		// The exact extremes always survive a prune.
		if got, _ := s.Query(1); got != oracle.Select(len(items)) {
			t.Fatalf("Prune(%d) lost the maximum: Query(1) = %v", k, got)
		}
		if got, _ := s.Query(0); got != oracle.Select(1) {
			t.Fatalf("Prune(%d) lost the minimum: Query(0) = %v", k, got)
		}
		// The degraded guarantee still holds at the degraded ε.
		eps := s.Epsilon()
		for i := 0; i <= 100; i++ {
			phi := float64(i) / 100
			got, _ := s.Query(phi)
			e := oracle.RankError(got, phi)
			if float64(e) > eps*float64(len(items))+1 {
				t.Fatalf("Prune(%d) phi=%v: error %d over degraded uniform budget", k, phi, e)
			}
		}
	}
}

func TestPruneNoOpWhenSmall(t *testing.T) {
	s := req.NewFloat64(0.1)
	for i := 0; i < 30; i++ {
		s.Update(float64(i))
	}
	s.Prune(100)
	if got := s.Epsilon(); got != 0.1 {
		t.Fatalf("no-op prune degraded Epsilon to %v", got)
	}
	if got, _ := s.Query(0.5); got != 14 && got != 15 {
		t.Fatalf("no-op prune broke queries: Query(0.5) = %v", got)
	}
}

func TestRetainedSpaceIsLogarithmic(t *testing.T) {
	// The compaction rules admit O((1/ε)·log(εN) + K) entries; a regression
	// here (for example a broken drop rule) shows up as linear growth.
	s := req.NewFloat64(0.01)
	items := stream.NewGenerator(9).Shuffled(200_000).Items()
	s.UpdateBatch(items)
	if got := s.StoredCount(); got > 8_000 {
		t.Fatalf("retained %d items at N=200k, eps=0.01 — compaction is not engaging", got)
	}
	if got := s.StoredCount(); got < 100 {
		t.Fatalf("retained only %d items — suspiciously aggressive compaction", got)
	}
}

func TestRestoreRoundTrip(t *testing.T) {
	build := func(name string) *req.Summary {
		s := req.NewFloat64(testEps)
		switch name {
		case "empty":
		case "buffered":
			for i := 0; i < 10; i++ {
				s.Update(float64(i))
			}
			s.WeightedUpdate(3.5, 9)
		case "folded":
			s.UpdateBatch(stream.NewGenerator(1).Shuffled(10_000).Items())
		case "merged":
			s.UpdateBatch(stream.NewGenerator(1).Shuffled(5_000).Items())
			o := req.NewFloat64(0.05)
			o.UpdateBatch(stream.NewGenerator(2).Zipf(5_000, 1.5, 1).Items())
			if err := s.Merge(o); err != nil {
				t.Fatalf("merge: %v", err)
			}
		case "pruned":
			s.UpdateBatch(stream.NewGenerator(1).Shuffled(20_000).Items())
			s.Prune(100)
		case "nan":
			for i := 0; i < 3_000; i++ {
				if i%13 == 0 {
					s.Update(math.NaN())
				} else {
					s.Update(float64(i % 701))
				}
			}
		}
		return s
	}
	for _, name := range []string{"empty", "buffered", "folded", "merged", "pruned", "nan"} {
		s := build(name)
		r, err := req.Restore(s.Epsilon(), s.BufferSize(), s.Buffered(), s.Entries())
		if err != nil {
			t.Fatalf("%s: Restore: %v", name, err)
		}
		if r.Count() != s.Count() {
			t.Fatalf("%s: restored count %d, want %d", name, r.Count(), s.Count())
		}
		if err := r.CheckInvariant(); err != nil {
			t.Fatalf("%s: restored invariant: %v", name, err)
		}
		for i := 0; i <= 100; i++ {
			phi := float64(i) / 100
			a, aok := s.Query(phi)
			b, bok := r.Query(phi)
			if aok != bok || (aok && cmpNaN(a, b) != 0) {
				t.Fatalf("%s: phi=%v: original answered %v/%v, restored %v/%v", name, phi, a, aok, b, bok)
			}
		}
	}
}

func cmpNaN(a, b float64) int {
	if math.IsNaN(a) && math.IsNaN(b) {
		return 0
	}
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	case a == b:
		return 0
	}
	return 2
}

func TestRestoreRejections(t *testing.T) {
	good := req.NewFloat64(testEps)
	good.UpdateBatch(stream.NewGenerator(4).Shuffled(5_000).Items())
	entries := good.Entries()
	cases := []struct {
		name    string
		eps     float64
		b       int
		buf     []req.WeightedValue
		entries []req.Entry
	}{
		{"eps-zero", 0, 64, nil, entries},
		{"eps-one", 1, 64, nil, entries},
		{"buffer-size", testEps, 1, nil, entries},
		{"buffer-overflow", testEps, 2, []req.WeightedValue{{V: 1, W: 1}, {V: 2, W: 1}, {V: 3, W: 1}}, nil},
		{"non-positive-weight", testEps, 64, []req.WeightedValue{{V: 1, W: 0}}, nil},
		{"unsorted", testEps, 64, nil, []req.Entry{
			{V: 5, W: 1, Rmin: 0, Rmax: 1},
			{V: 2, W: 1, Rmin: 1, Rmax: 2},
		}},
		{"first-not-exact", testEps, 64, nil, []req.Entry{
			{V: 1, W: 1, Rmin: 0, Rmax: 3},
			{V: 2, W: 1, Rmin: 2, Rmax: 3},
		}},
		{"last-not-exact", testEps, 64, nil, []req.Entry{
			{V: 1, W: 1, Rmin: 0, Rmax: 1},
			{V: 2, W: 1, Rmin: 1, Rmax: 3},
		}},
		{"bounds-narrow", testEps, 64, nil, []req.Entry{
			{V: 1, W: 3, Rmin: 0, Rmax: 1},
		}},
		{"rmin-nonzero", testEps, 64, nil, []req.Entry{
			{V: 1, W: 1, Rmin: 2, Rmax: 3},
		}},
	}
	for _, c := range cases {
		if _, err := req.Restore(c.eps, c.b, c.buf, c.entries); err == nil {
			t.Fatalf("%s: Restore accepted an invalid state", c.name)
		}
	}
}

func TestPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	expectPanic("eps=0", func() { req.NewFloat64(0) })
	expectPanic("eps=1", func() { req.NewFloat64(1) })
	expectPanic("eps<0", func() { req.NewFloat64(-0.5) })
	s := req.NewFloat64(0.1)
	expectPanic("weight=0", func() { s.WeightedUpdate(1, 0) })
	expectPanic("weight<0", func() { s.WeightedUpdate(1, -3) })
	expectPanic("batch-mismatch", func() { s.WeightedUpdateBatch([]float64{1, 2}, []int64{1}) })
	expectPanic("prune<1", func() { s.Prune(0) })
}

func TestInvariantUnderRandomOps(t *testing.T) {
	// A deterministic op-fuzz: random interleavings of every mutation the
	// summary supports, with the structural invariant asserted throughout.
	gen := rand.New(rand.NewSource(99))
	s := req.NewFloat64(0.05)
	var n int64
	for op := 0; op < 4_000; op++ {
		switch gen.Intn(10) {
		case 0, 1, 2, 3, 4:
			s.Update(gen.NormFloat64() * 1000)
			n++
		case 5:
			xs := make([]float64, gen.Intn(300))
			for i := range xs {
				xs[i] = gen.Float64() * 100
			}
			s.UpdateBatch(xs)
			n += int64(len(xs))
		case 6:
			w := int64(gen.Intn(1000) + 1)
			s.WeightedUpdate(gen.Float64(), w)
			n += w
		case 7:
			o := req.NewFloat64([]float64{0.02, 0.05, 0.2}[gen.Intn(3)])
			cnt := gen.Intn(500)
			for i := 0; i < cnt; i++ {
				o.Update(gen.NormFloat64())
			}
			if err := s.Merge(o); err != nil {
				t.Fatalf("op %d merge: %v", op, err)
			}
			n += int64(cnt)
		case 8:
			if gen.Intn(10) == 0 {
				s.Prune(gen.Intn(200) + 10)
			}
		case 9:
			s.Query(gen.Float64())
			s.EstimateRank(gen.NormFloat64() * 1000)
		}
		if op%97 == 0 {
			if err := s.CheckInvariant(); err != nil {
				t.Fatalf("op %d: invariant: %v", op, err)
			}
			if int64(s.Count()) != n {
				t.Fatalf("op %d: count %d, want %d", op, s.Count(), n)
			}
		}
	}
	if err := s.CheckInvariant(); err != nil {
		t.Fatalf("final invariant: %v", err)
	}
}
