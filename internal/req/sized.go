package req

// RetainedBytes reports the heap bytes retained by the ingest buffers, the
// compacted entry array, and the reusable fold/view scratch, counting
// allocated capacity (summary.Sized). The ingest buffer is preallocated to
// b ≈ ⌈4/ε⌉ + slack floats, so a small key retains far more than
// StoredCount()×32 — the flat estimate the store used to charge — and the
// budget accounting must see the real footprint.
func (s *Summary) RetainedBytes() int {
	const entryBytes = 32    // Entry: V float64 + W, Rmin, Rmax int64
	const weightedBytes = 16 // WeightedValue: V float64 + W int64
	total := cap(s.buf)*8 + cap(s.wbuf)*weightedBytes
	total += (cap(s.entries) + cap(s.carry) + cap(s.merged) + cap(s.keep) +
		cap(s.view) + cap(s.viewScratch)) * entryBytes
	return total
}
