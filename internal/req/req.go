// Package req implements a mergeable relative-error quantile summary in the
// style of the ReqSketch of Cormode–Mishra–Ross–Veselý ("Theory meets
// Practice at the Median", PAPERS.md): rank error that scales with the
// distance from the top of the stream, so p99.9/p99.99 tail queries stay
// sharp where a uniform ε·N summary is useless.
//
// The guarantee is high-rank accuracy (the HRA mode of the ReqSketch
// family): for every target rank t ∈ [1, N] the answered item's rank is off
// by at most ε·(N−t+1) — the budget is the rank measured from the TOP of the
// stream, so the maximum is always exact, the p99.99 answer is off by at
// most ε·(N/10⁴), and the median still enjoys the uniform ε·N bound (which
// the relative guarantee implies everywhere, so req also passes the uniform
// differential matrix).
//
// Where the randomized ReqSketch stacks relative-compactors whose protected
// "sections" shield the tail from compaction, this summary is deterministic:
// it keeps one sorted list of entries carrying certified rank intervals
// (the Entry machinery of internal/mlq — Rmin/Rmax bounds that merging adds
// pairwise and compression never rewrites) and makes the section idea
// explicit in two rules enforced by every compaction pass:
//
//   - an airtight top section: every entry whose rank interval reaches into
//     the top K = ⌈4/ε⌉+64 ranks is never dropped. Entries are born exact
//     (buffers fold in via an exact merge), and exact regions stay exact
//     under MERGE, so the top section answers the extreme tail with zero
//     error — which the integer granularity of the tail demands: at
//     ϕ = 0.9999 and N = 30000 the budget is ε·2 < 1 item.
//   - a relative gap budget below it: an entry may be dropped only if the
//     certified uncertainty span this opens between its kept neighbours is
//     at most 2δ·r, where r is the from-the-top rank at the upper end of the
//     gap and δ = ε/2. A query landing in the gap answers with error at most
//     half the span ≤ δ·r, inside the ε·r budget with factor-2 margin.
//
// Allowed gaps double as the rank falls away from the top, so the summary
// retains O((1/ε)·log(εN)) entries plus the K exact top entries — the
// relative-error analogue of the paper's Ω((1/ε)·log(εN)) lower-bound shape
// for the uniform problem.
//
// Merging is a free COMBINE: rank bounds add pairwise, so both the gap
// budget and the airtight top are preserved additively (each input
// contributes gaps within 2δ of its own from-the-top ranks, and
// from-the-top ranks add across inputs), the merged error target is
// max(ε_a, ε_b), and no structural parameter has to match — any two req
// summaries merge, unlike KLL's k or mlq's block size. Compaction after the
// merge re-certifies every gap against the merged budget from scratch, so
// merge error does not accumulate with merge depth.
package req

import (
	"fmt"
	"math"
	"slices"
	"sort"
)

// Entry is one retained item with its certified rank interval, identical in
// meaning to mlq.Entry: Rmin lower-bounds the total weight of stream items
// strictly less than V, Rmax upper-bounds the total weight of items ≤ V, and
// W is the weight of the equal-to-V run the entry carries. Exact entries
// have Rmax−Rmin = W; merging adds bounds pairwise and compaction only drops
// whole entries, so bounds stay valid without ever being rewritten.
type Entry struct {
	V    float64
	W    int64
	Rmin int64
	Rmax int64
}

// WeightedValue is one buffered, not-yet-folded item with its weight; the
// encoding layer serializes the buffer as a slice of these.
type WeightedValue struct {
	V float64
	W int64
}

const (
	// minBuffer floors the ingest buffer so tiny ε targets still amortize
	// the sort; maxBuffer caps the flush working set near 256 KiB of
	// entries, mirroring mlq's cache-residency target.
	minBuffer = 64
	maxBuffer = 1 << 13

	// airtightSlack pads the exact top section beyond the 4/ε the error
	// argument needs, absorbing the boundary raggedness COMBINE merges can
	// introduce at the section's lower edge.
	airtightSlack = 64
)

// Summary is a mergeable relative-error quantile summary over float64 items.
// It implements the repository's Summary, Mergeable, Epsiloned, and
// WeightedUpdater interfaces. Like the other families it is not safe for
// concurrent use; wrap it in internal/sharded for that.
type Summary struct {
	epsTarget float64
	delta     float64 // per-gap budget ε/2
	airtight  int64   // exact top-section depth K = ⌈4/ε⌉ + airtightSlack
	b         int     // ingest buffer capacity
	n         int64

	buf  []float64       // unit-weight buffered items, unordered until folded
	wbuf []WeightedValue // weighted buffered items, unordered until folded

	entries []Entry // the compacted summary, ascending in V

	// fold/compact scratch, reused across flushes
	carry  []Entry
	merged []Entry
	keep   []Entry

	// cached merged view of entries+buffer for the read path
	view        []Entry
	viewScratch []Entry
	viewValid   bool
}

// NewFloat64 returns a relative-error summary with rank error at most
// ε·(N−t+1) for every target rank t. It panics when eps is outside (0, 1),
// matching the other families' constructors.
func NewFloat64(eps float64) *Summary {
	if !(eps > 0 && eps < 1) {
		panic(fmt.Sprintf("req: epsilon %v out of range (0,1)", eps))
	}
	s := &Summary{}
	s.setEps(eps)
	b := int(s.airtight)
	if b < minBuffer {
		b = minBuffer
	}
	if b > maxBuffer {
		b = maxBuffer
	}
	s.b = b
	s.buf = make([]float64, 0, b)
	return s
}

// setEps installs an error target and the derived gap budget and airtight
// depth. Called at construction and when Merge or Prune degrade the target.
func (s *Summary) setEps(eps float64) {
	s.epsTarget = eps
	s.delta = eps / 2
	s.airtight = int64(math.Ceil(4/eps)) + airtightSlack
}

// Epsilon returns the effective accuracy target: the construction-time ε,
// raised if a Merge or Prune degraded it.
func (s *Summary) Epsilon() float64 { return s.epsTarget }

// BufferSize returns the ingest buffer capacity.
func (s *Summary) BufferSize() int { return s.b }

// Count returns the total weight ingested (the number of items for
// unit-weight streams).
func (s *Summary) Count() int { return int(s.n) }

// Update processes the next stream item.
func (s *Summary) Update(x float64) {
	s.buf = append(s.buf, x)
	s.n++
	s.viewValid = false
	if len(s.buf)+len(s.wbuf) >= s.b {
		s.fold()
	}
}

// UpdateBatch processes a batch of items, filling the ingest buffer in bulk
// so the per-item cost is an append plus an amortized share of the sorted
// fold.
func (s *Summary) UpdateBatch(xs []float64) {
	if len(xs) == 0 {
		return
	}
	s.viewValid = false
	for len(xs) > 0 {
		free := s.b - len(s.buf) - len(s.wbuf)
		if free <= 0 {
			s.fold()
			continue
		}
		take := min(free, len(xs))
		s.buf = append(s.buf, xs[:take]...)
		s.n += int64(take)
		xs = xs[take:]
		if len(s.buf)+len(s.wbuf) >= s.b {
			s.fold()
		}
	}
}

// WeightedUpdate processes one item carrying weight w. It panics when
// w ≤ 0, matching the WeightedUpdater contract.
func (s *Summary) WeightedUpdate(x float64, w int64) {
	if w <= 0 {
		panic(fmt.Sprintf("req: weight %d is not positive", w))
	}
	if w == 1 {
		s.Update(x)
		return
	}
	s.wbuf = append(s.wbuf, WeightedValue{V: x, W: w})
	s.n += w
	s.viewValid = false
	if len(s.buf)+len(s.wbuf) >= s.b {
		s.fold()
	}
}

// WeightedUpdateBatch processes parallel item and weight slices. It panics
// when the lengths differ or any weight is ≤ 0.
func (s *Summary) WeightedUpdateBatch(xs []float64, ws []int64) {
	if len(xs) != len(ws) {
		panic(fmt.Sprintf("req: %d items with %d weights", len(xs), len(ws)))
	}
	for i, x := range xs {
		s.WeightedUpdate(x, ws[i])
	}
}

// fold sorts the buffered items into an exact summary, merges it into the
// entries list (an exact merge: no error is introduced), and compacts the
// result under the gap budget.
func (s *Summary) fold() {
	if len(s.buf) == 0 && len(s.wbuf) == 0 {
		return
	}
	slices.Sort(s.buf)
	sortWeighted(s.wbuf)
	s.carry = buildExact(s.carry[:0], s.buf, s.wbuf)
	s.buf = s.buf[:0]
	s.wbuf = s.wbuf[:0]
	if len(s.entries) == 0 {
		s.entries = append(s.entries[:0], s.carry...)
	} else {
		s.merged = mergeEntries(s.merged[:0], s.entries, s.carry)
		s.compact(s.merged, s.delta, s.airtight)
	}
	s.viewValid = false
}

// compact rebuilds s.entries from src, dropping every entry the two keep
// rules allow. It walks from the top so each drop is certified against the
// entry's final kept successor: an entry whose rank interval reaches into
// the top K ranks is always kept, and below the section an entry is dropped
// only when the certified uncertainty span it opens between its neighbours
// fits the relative gap budget 2δ·r at the gap's upper end. The first and
// last entries (the exact extremes) are always kept. Surviving entries keep
// their bounds unchanged, so compaction never compounds error — it only
// opens gaps it has certified.
func (s *Summary) compact(src []Entry, delta float64, airtight int64) {
	if len(src) <= 2 {
		s.entries = append(s.entries[:0], src...)
		return
	}
	n := totalWeight(src)
	last := len(src) - 1
	s.keep = append(s.keep[:0], src[last])
	f := &src[last] // kept successor of the candidate under consideration
	for i := last - 1; i >= 1; i-- {
		e := &src[i]
		if n-e.Rmin <= airtight {
			// The entry's interval reaches the exact top section: keep.
			s.keep = append(s.keep, *e)
			f = e
			continue
		}
		d := &src[i-1]
		span := (f.Rmax - f.W + 1) - (d.Rmin + d.W)
		if span > 0 {
			rtop := n - (f.Rmax - f.W)
			if rtop < 1 {
				rtop = 1
			}
			if float64(span) > 2*delta*float64(rtop) {
				s.keep = append(s.keep, *e)
				f = e
				continue
			}
		}
		// Dropped: the next candidate below is checked against the same f,
		// so the eventually-kept adjacent pair has had its full combined
		// span certified.
	}
	s.keep = append(s.keep, src[0])
	s.entries = s.entries[:0]
	for i := len(s.keep) - 1; i >= 0; i-- {
		s.entries = append(s.entries, s.keep[i])
	}
}

// cmpFloat is the NaN-aware total order every value comparison in this
// package goes through: NaN sorts before all other values and equals itself,
// the same order as order.Floats (and as slices.Sort on float64 slices).
// Raw <, >, == on values must not appear outside this function — under IEEE
// comparison NaN != NaN, which stalls buildExact's run-coalescing cursors
// and breaks mergeEntries' three-way split (the PR6 mlq lesson).
func cmpFloat(a, b float64) int {
	aNaN := a != a
	bNaN := b != b
	switch {
	case aNaN && bNaN:
		return 0
	case aNaN:
		return -1
	case bNaN:
		return 1
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// sortWeighted sorts the weighted buffer by value without allocating.
func sortWeighted(ws []WeightedValue) {
	slices.SortFunc(ws, func(a, b WeightedValue) int { return cmpFloat(a.V, b.V) })
}

// buildExact merges the sorted unit buffer and sorted weighted buffer into
// an exact summary in dst: equal values coalesce into one entry, and every
// entry has Rmin = weight strictly below it, Rmax = Rmin + W.
func buildExact(dst []Entry, buf []float64, wbuf []WeightedValue) []Entry {
	var cum int64
	i, j := 0, 0
	for i < len(buf) || j < len(wbuf) {
		var v float64
		if j >= len(wbuf) || (i < len(buf) && cmpFloat(buf[i], wbuf[j].V) <= 0) {
			v = buf[i]
		} else {
			v = wbuf[j].V
		}
		var w int64
		for i < len(buf) && cmpFloat(buf[i], v) == 0 {
			w++
			i++
		}
		for j < len(wbuf) && cmpFloat(wbuf[j].V, v) == 0 {
			w += wbuf[j].W
			j++
		}
		dst = append(dst, Entry{V: v, W: w, Rmin: cum, Rmax: cum + w})
		cum += w
	}
	return dst
}

// totalWeight returns the total weight a summary covers; by construction
// the last entry's Rmax is exact.
func totalWeight(es []Entry) int64 {
	if len(es) == 0 {
		return 0
	}
	return es[len(es)-1].Rmax
}

// mergeEntries is MERGE: the two-pointer combination of two summaries whose
// rank bounds add. An x-entry at value v gains from y a lower bound of its
// predecessor's Rmin+W (all of the predecessor's items are < v) and an upper
// bound of its successor's Rmax−W (the successor's own items are > v); equal
// values coalesce with both bound pairs summing. No error is introduced, so
// exact regions of both inputs stay exact in the result.
func mergeEntries(dst, x, y []Entry) []Entry {
	wx, wy := totalWeight(x), totalWeight(y)
	i, j := 0, 0
	for i < len(x) || j < len(y) {
		switch {
		case j >= len(y) || (i < len(x) && cmpFloat(x[i].V, y[j].V) < 0):
			e := x[i]
			var lo int64
			hi := wy
			if j > 0 {
				lo = y[j-1].Rmin + y[j-1].W
			}
			if j < len(y) {
				hi = y[j].Rmax - y[j].W
			}
			e.Rmin += lo
			e.Rmax += hi
			dst = append(dst, e)
			i++
		case i >= len(x) || cmpFloat(y[j].V, x[i].V) < 0:
			e := y[j]
			var lo int64
			hi := wx
			if i > 0 {
				lo = x[i-1].Rmin + x[i-1].W
			}
			if i < len(x) {
				hi = x[i].Rmax - x[i].W
			}
			e.Rmin += lo
			e.Rmax += hi
			dst = append(dst, e)
			j++
		default:
			dst = append(dst, Entry{
				V:    x[i].V,
				W:    x[i].W + y[j].W,
				Rmin: x[i].Rmin + y[j].Rmin,
				Rmax: x[i].Rmax + y[j].Rmax,
			})
			i++
			j++
		}
	}
	return dst
}

// ensureView folds the live buffer (as an exact summary) and the entries
// list into the cached merged view. Sorting the buffer in place is
// physically visible but logically neutral: the buffer is an unordered
// multiset until it folds.
func (s *Summary) ensureView() {
	if s.viewValid {
		return
	}
	slices.Sort(s.buf)
	sortWeighted(s.wbuf)
	cur := buildExact(s.view[:0], s.buf, s.wbuf)
	alt := s.viewScratch[:0]
	if len(s.entries) > 0 {
		if len(cur) == 0 {
			cur = append(cur, s.entries...)
		} else {
			alt = mergeEntries(alt, cur, s.entries)
			cur, alt = alt, cur
		}
	}
	s.view, s.viewScratch = cur, alt
	s.viewValid = true
}

// Query returns an approximate ϕ-quantile: the retained item whose rank
// interval is closest to the target rank ⌊ϕN⌋ (clamped to [1, N]), the same
// convention as the other families. The boolean is false when empty. The
// answered rank is within ε·(N−t+1) of the target t — exact at the maximum,
// relative in the tail, and within the uniform ε·N everywhere.
func (s *Summary) Query(phi float64) (float64, bool) {
	if s.n == 0 {
		return 0, false
	}
	s.ensureView()
	t := int64(math.Floor(phi * float64(s.n)))
	if t < 1 {
		t = 1
	}
	if t > s.n {
		t = s.n
	}
	view := s.view
	// An entry's W equal-valued items occupy a contiguous run of true ranks
	// somewhere inside (Rmin, Rmax]; answering it for target t is off by at
	// most the distance from t to the worst-case placement of that run. The
	// entry's own weight is not uncertainty — a heavy run answers every
	// target inside it exactly — so the bound subtracts W from both sides.
	best, bestErr := 0, int64(math.MaxInt64)
	for i := range view {
		e := &view[i]
		if e.Rmin+1-t >= bestErr {
			// Rmin is non-decreasing and errBound ≥ Rmin+1−t from here on.
			break
		}
		err := max64(t-(e.Rmin+e.W), (e.Rmax-e.W+1)-t)
		if err < 0 {
			err = 0
		}
		if err < bestErr {
			best, bestErr = i, err
		}
	}
	return view[best].V, true
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// EstimateRank estimates the total weight of stream items ≤ q as the
// midpoint of the merged view's bounds around q.
func (s *Summary) EstimateRank(q float64) int {
	if s.n == 0 {
		return 0
	}
	s.ensureView()
	view := s.view
	// e = last entry with V ≤ q, f = first entry with V > q (total order, so
	// q = NaN resolves to the weight of the NaN run rather than to n).
	f := sort.Search(len(view), func(i int) bool { return cmpFloat(view[i].V, q) > 0 })
	var lo, hi int64
	hi = s.n
	if f > 0 {
		lo = view[f-1].Rmin + view[f-1].W
	}
	if f < len(view) {
		hi = view[f].Rmax - view[f].W
	}
	if hi < lo {
		hi = lo
	}
	return int((lo + hi + 1) / 2)
}

// StoredItems returns every retained item — buffered values plus the
// entries list — in non-decreasing order. The slice is owned by the caller.
func (s *Summary) StoredItems() []float64 {
	out := make([]float64, 0, s.StoredCount())
	out = append(out, s.buf...)
	for _, p := range s.wbuf {
		out = append(out, p.V)
	}
	for i := range s.entries {
		out = append(out, s.entries[i].V)
	}
	slices.Sort(out)
	return out
}

// StoredCount returns the number of retained items without materializing
// them.
func (s *Summary) StoredCount() int {
	return len(s.buf) + len(s.wbuf) + len(s.entries)
}

// Merge is COMBINE: it folds other into s without modifying other. Rank
// bounds add pairwise, so the relative gap budget and the airtight top are
// both preserved (see the package comment), the merged target is
// max(ε_s, ε_other), and — unlike KLL's k or mlq's block size — no
// structural parameter has to match: any two req summaries merge.
func (s *Summary) Merge(other *Summary) error {
	if other == nil || other.n == 0 {
		// An empty source merges into anything of its own family, mirroring
		// the other families' Merge implementations (and CheckMergeable).
		return nil
	}
	if other == s {
		return fmt.Errorf("req: cannot merge a summary into itself")
	}
	s.fold()
	// Ingest other's buffered items through the normal buffered path.
	for _, v := range other.buf {
		s.Update(v)
	}
	for _, p := range other.wbuf {
		s.WeightedUpdate(p.V, p.W)
	}
	s.fold()
	if len(other.entries) > 0 {
		if other.epsTarget > s.epsTarget {
			s.setEps(other.epsTarget)
		}
		if len(s.entries) == 0 {
			s.entries = append(s.entries[:0], other.entries...)
		} else {
			s.merged = mergeEntries(s.merged[:0], s.entries, other.entries)
			s.compact(s.merged, s.delta, s.airtight)
		}
		s.n += totalWeight(other.entries)
	} else if other.epsTarget > s.epsTarget {
		s.setEps(other.epsTarget)
	}
	// Materialize the merged view before returning: a freshly merged summary
	// is the read path of snapshot fan-in (sharded, cluster), where multiple
	// goroutines query the result concurrently. Leaving the view valid makes
	// Query/EstimateRank pure reads until the next update.
	s.viewValid = false
	s.ensureView()
	return nil
}

// Prune shrinks the summary toward at most k+1 entries by re-compacting
// under a doubled gap budget until it fits, degrading the effective ε to the
// loosest budget used (Epsilon reports it). The relative guarantee survives
// at the degraded ε as long as doubling suffices; below the ~log₂(εN)
// entries the relative shape fundamentally needs, Prune falls back to an
// absolute mlq-style compression to honour the size contract, and the
// reported ε saturates just below 1 (vacuous, and still inside Restore's
// (0,1) range). It mirrors gk.Prune: a one-shot space/accuracy trade for
// snapshots.
func (s *Summary) Prune(k int) {
	if k < 1 {
		panic(fmt.Sprintf("req: prune size %d is not positive", k))
	}
	s.fold()
	if len(s.entries) <= k+1 {
		return
	}
	d := s.delta
	for len(s.entries) > k+1 && d < 0.5 {
		d *= 2
		if d > 0.5 {
			d = 0.5
		}
		airtight := int64(math.Ceil(1 / (2 * d)))
		src := append(s.merged[:0], s.entries...)
		s.merged = src
		s.compact(src, d, airtight)
	}
	eps := 2 * d
	if eps >= 1 {
		eps = math.Nextafter(1, 0)
	}
	if len(s.entries) > k+1 {
		// Absolute fallback: keep k+1 entries at evenly spaced rank targets.
		src := append(s.merged[:0], s.entries...)
		s.merged = src
		s.entries = compressAbsolute(s.entries[:0], src, k)
		eps = math.Nextafter(1, 0)
	}
	if eps > s.epsTarget {
		s.setEps(eps)
	}
	s.viewValid = false
}

// compressAbsolute keeps at most k+1 entries of src, chosen as in gk.Prune:
// for each target rank i·W/k keep the entry whose rank-interval midpoint is
// nearest, always keeping the first and last entries so the true extremes
// survive. Bounds are unchanged; the uniform error grows to about 1/k.
func compressAbsolute(dst, src []Entry, k int) []Entry {
	if len(src) <= k+1 {
		return append(dst, src...)
	}
	w := float64(totalWeight(src))
	last := len(src) - 1
	dst = append(dst, src[0])
	idx, prev := 0, 0
	for i := 1; i < k; i++ {
		t := float64(i) * w / float64(k)
		for idx+1 < last && midDist(src[idx+1], t) <= midDist(src[idx], t) {
			idx++
		}
		if idx > prev {
			dst = append(dst, src[idx])
			prev = idx
		}
	}
	dst = append(dst, src[last])
	return dst
}

func midDist(e Entry, t float64) float64 {
	return math.Abs(float64(e.Rmin+e.Rmax)/2 - t)
}

// Buffered returns the buffered, not-yet-folded items with their weights,
// for the encoding layer. Unit items carry W=1.
func (s *Summary) Buffered() []WeightedValue {
	out := make([]WeightedValue, 0, len(s.buf)+len(s.wbuf))
	for _, v := range s.buf {
		out = append(out, WeightedValue{V: v, W: 1})
	}
	out = append(out, s.wbuf...)
	return out
}

// Entries returns a copy of the compacted entries list in ascending order,
// for the encoding layer.
func (s *Summary) Entries() []Entry {
	return append([]Entry(nil), s.entries...)
}

// CheckInvariant verifies the structural invariants of the summary: entries
// strictly increasing in V under the NaN-first total order, rank bounds
// non-decreasing and consistent (Rmin₀ = 0, Rmax−Rmin ≥ W ≥ 1), both
// extremes exact (first entry Rmax = W; last entry Rmin+W = Rmax = entries
// weight — the anchor of the from-the-top budget), and total weight
// conservation across entries plus the buffer. The relative gap budget is
// deliberately not re-checked here: COMBINE merges are allowed to carry
// gaps certified against the pre-merge totals, and the differential suite
// gates the end-to-end relative error instead. It returns nil when the
// summary is consistent.
func (s *Summary) CheckInvariant() error {
	total := int64(len(s.buf))
	for _, p := range s.wbuf {
		if p.W <= 0 {
			return fmt.Errorf("req: buffered weight %d is not positive", p.W)
		}
		total += p.W
	}
	if len(s.entries) > 0 {
		es := s.entries
		if es[0].Rmin != 0 {
			return fmt.Errorf("req: first Rmin = %d, want 0", es[0].Rmin)
		}
		if es[0].Rmax != es[0].W {
			return fmt.Errorf("req: first entry bounds [%d,%d] not exact for weight %d", es[0].Rmin, es[0].Rmax, es[0].W)
		}
		for i, e := range es {
			if e.W < 1 {
				return fmt.Errorf("req: entry %d weight %d < 1", i, e.W)
			}
			if e.Rmax-e.Rmin < e.W {
				return fmt.Errorf("req: entry %d bounds [%d,%d] narrower than weight %d", i, e.Rmin, e.Rmax, e.W)
			}
			if i > 0 {
				prev := es[i-1]
				if !(cmpFloat(prev.V, e.V) < 0) {
					return fmt.Errorf("req: entries %d,%d not strictly increasing (%v, %v)", i-1, i, prev.V, e.V)
				}
				if e.Rmin < prev.Rmin || e.Rmax < prev.Rmax {
					return fmt.Errorf("req: rank bounds decrease at entry %d", i)
				}
			}
		}
		top := es[len(es)-1]
		if top.Rmin+top.W != top.Rmax {
			return fmt.Errorf("req: last entry bounds [%d,%d] not exact for weight %d", top.Rmin, top.Rmax, top.W)
		}
		total += top.Rmax
	}
	if total != s.n {
		return fmt.Errorf("req: retained weight %d does not conserve count %d", total, s.n)
	}
	return nil
}

// Restore rebuilds a summary from decoded state, validating it the way the
// other families' Restore functions do: it rejects out-of-range parameters,
// unsorted or inconsistent entries, and weight totals that do not conserve.
func Restore(eps float64, b int, buffered []WeightedValue, entries []Entry) (*Summary, error) {
	if !(eps > 0 && eps < 1) {
		return nil, fmt.Errorf("req: restore epsilon %v out of range (0,1)", eps)
	}
	if b < 2 || b > 1<<26 {
		return nil, fmt.Errorf("req: restore buffer size %d out of range", b)
	}
	if len(buffered) > b {
		return nil, fmt.Errorf("req: restore buffer holds %d items, capacity is %d", len(buffered), b)
	}
	s := &Summary{}
	s.setEps(eps)
	s.b = b
	s.buf = make([]float64, 0, b)
	for _, p := range buffered {
		if p.W <= 0 {
			return nil, fmt.Errorf("req: restore buffered weight %d is not positive", p.W)
		}
		if p.W == 1 {
			s.buf = append(s.buf, p.V)
		} else {
			s.wbuf = append(s.wbuf, p)
		}
		s.n += p.W
	}
	if len(entries) > 0 {
		s.entries = append([]Entry(nil), entries...)
		s.n += totalWeight(s.entries)
	}
	if err := s.CheckInvariant(); err != nil {
		return nil, err
	}
	return s, nil
}
