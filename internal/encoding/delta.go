package encoding

// Delta snapshots: the incremental wire format of the cluster tier's
// /v1/snapshot endpoint. A KindDelta payload carries only the byte ranges of
// a full snapshot that changed since a *base* snapshot the receiver already
// holds, as a sequence of copy-from-base and add-literal operations — the
// rsync discipline, applied to the already-compact wire payloads of this
// package. Because every summary family serializes its retained state as
// flat arrays (GK tuples, KLL compactor levels, MLQ cascade entries, REQ
// entry quadruples), an ingest round that touches a fraction of the
// structure leaves long unchanged runs in the payload, and the delta carries
// only the tuples/levels/entries that moved (shifted runs are found too: the
// encoder matches base blocks at any head offset).
//
// The format is deliberately family-agnostic: a delta between two KindGK
// payloads, two KindStore containers, or any other pair of identical-kind
// payloads round-trips the same way, so the cluster tier negotiates deltas
// without knowing which family a peer runs. Both endpoints are identified by
// content hash, which is also what the cluster derives snapshot ETags from:
// the delta names the exact base it applies to, and ApplyDelta refuses a
// base whose bytes do not hash to that name (ErrDeltaBaseMismatch) instead
// of reconstructing garbage.

import (
	"bytes"
	"errors"
	"fmt"
)

// MaxDeltaInputBytes bounds the payloads EncodeDelta will diff. Beyond it
// the quadratic-ish block scan stops being worth the bytes saved; callers
// fall back to shipping the full payload.
const MaxDeltaInputBytes = 16 << 20

// MaxDeltaHeadBytes bounds the reconstructed-payload length a KindDelta
// payload may declare, so a corrupt delta cannot demand a multi-gigabyte
// allocation. It matches the cluster tier's snapshot body cap.
const MaxDeltaHeadBytes = 64 << 20

// ErrDeltaBaseMismatch is returned by ApplyDelta when the supplied base
// payload is not the one the delta was computed against (its content hash
// differs from the recorded base hash). The caller should refetch a full
// snapshot.
var ErrDeltaBaseMismatch = errors.New("encoding: delta base payload does not match the delta's recorded base")

// deltaBlockSize is the granularity of base-block matching: the encoder
// indexes the base payload in 32-byte blocks (one GK tuple, four float64
// entries) and recognizes unchanged runs of at least this length.
const deltaBlockSize = 32

// delta op tags.
const (
	deltaOpCopy = 0 // u32 base offset, u32 length
	deltaOpAdd  = 1 // u32 length, raw bytes
)

// PayloadHash returns the FNV-1a 64-bit hash of a payload. It is the content
// identity the delta format (and the cluster tier's snapshot ETags) are built
// on: two byte-identical payloads hash equal across processes and restarts.
func PayloadHash(payload []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range payload {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// hashBlock hashes one fixed-size block for the encoder's base index; same
// FNV-1a core as PayloadHash, inlined over a block.
func hashBlock(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// EncodeDelta computes a KindDelta payload that reconstructs head from base.
// It succeeds for any two byte slices, but is only worth shipping when the
// result is smaller than head — callers (the cluster's snapshot handler)
// compare lengths and fall back to the full payload otherwise. Inputs longer
// than MaxDeltaInputBytes are refused; serve the full payload instead.
func EncodeDelta(base, head []byte) ([]byte, error) {
	if len(base) > MaxDeltaInputBytes || len(head) > MaxDeltaInputBytes {
		return nil, fmt.Errorf("encoding: payload of %d/%d bytes exceeds the %d-byte delta input cap", len(base), len(head), MaxDeltaInputBytes)
	}

	// Index the base in aligned blocks: block hash → first offset. First
	// occurrence wins; duplicate blocks (zero runs, repeated tuples) still
	// match, just against one canonical offset.
	index := make(map[uint64]int, len(base)/deltaBlockSize+1)
	for o := 0; o+deltaBlockSize <= len(base); o += deltaBlockSize {
		h := hashBlock(base[o : o+deltaBlockSize])
		if _, ok := index[h]; !ok {
			index[h] = o
		}
	}

	w := &writer{}
	w.u32(Magic)
	w.u16(Version)
	w.u16(uint16(KindDelta))
	w.u64(PayloadHash(base))
	w.u64(PayloadHash(head))
	w.u32(uint32(len(head)))

	// Ops are buffered so the count can be written before them.
	var ops writer
	opCount := 0
	litStart := 0
	emitAdd := func(lit []byte) {
		if len(lit) == 0 {
			return
		}
		ops.u16(deltaOpAdd)
		ops.u32(uint32(len(lit)))
		ops.raw(lit)
		opCount++
	}
	emitCopy := func(off, length int) {
		ops.u16(deltaOpCopy)
		ops.u32(uint32(off))
		ops.u32(uint32(length))
		opCount++
	}

	i := 0
	for i+deltaBlockSize <= len(head) {
		h := hashBlock(head[i : i+deltaBlockSize])
		o, ok := index[h]
		if !ok || !bytes.Equal(head[i:i+deltaBlockSize], base[o:o+deltaBlockSize]) {
			i++
			continue
		}
		// Extend the match backward into the pending literal, then forward as
		// far as the bytes agree, so one op covers a maximal unchanged run.
		start := i
		for start > litStart && o > 0 && head[start-1] == base[o-1] {
			start--
			o--
		}
		length := i - start + deltaBlockSize
		for start+length < len(head) && o+length < len(base) && head[start+length] == base[o+length] {
			length++
		}
		emitAdd(head[litStart:start])
		emitCopy(o, length)
		i = start + length
		litStart = i
	}
	emitAdd(head[litStart:])

	w.u32(uint32(opCount))
	w.raw(ops.buf.Bytes())
	if w.err != nil {
		return nil, w.err
	}
	if ops.err != nil {
		return nil, ops.err
	}
	return w.buf.Bytes(), nil
}

// DeltaHeader is the negotiation-relevant prefix of a KindDelta payload.
type DeltaHeader struct {
	// BaseHash is the content hash (PayloadHash) of the full payload the
	// delta applies to.
	BaseHash uint64
	// HeadHash is the content hash of the payload the delta reconstructs.
	HeadHash uint64
	// HeadLen is the reconstructed payload's length in bytes.
	HeadLen int
}

// DecodeDeltaHeader reads the header of a KindDelta payload without applying
// it.
func DecodeDeltaHeader(delta []byte) (DeltaHeader, error) {
	r, kind, err := openPayload(delta)
	if err != nil {
		return DeltaHeader{}, err
	}
	if kind != KindDelta {
		return DeltaHeader{}, fmt.Errorf("encoding: payload holds kind %d, want delta (%d)", kind, KindDelta)
	}
	hdr := DeltaHeader{BaseHash: r.u64(), HeadHash: r.u64(), HeadLen: int(r.u32())}
	if r.err != nil {
		return DeltaHeader{}, fmt.Errorf("encoding: truncated delta header: %w", r.err)
	}
	if hdr.HeadLen < 0 || hdr.HeadLen > MaxDeltaHeadBytes {
		return DeltaHeader{}, fmt.Errorf("encoding: delta declares a %d-byte payload, cap is %d", hdr.HeadLen, MaxDeltaHeadBytes)
	}
	return hdr, nil
}

// IsDelta reports whether a payload is a well-formed-enough KindDelta
// container (valid header and kind tag); the cluster's pull path uses it to
// decide whether a fetched snapshot needs ApplyDelta before decoding.
func IsDelta(payload []byte) bool {
	kind, err := DetectKind(payload)
	return err == nil && kind == KindDelta
}

// ApplyDelta reconstructs the full head payload from the base payload the
// delta was computed against. It verifies the base's content hash before
// applying (ErrDeltaBaseMismatch on a stale or wrong base) and the
// reconstructed head's hash after, so a corrupt delta can never hand a
// silently wrong payload to Decode. Every copy range and literal length is
// bounds-checked against the inputs, so a hostile delta cannot read outside
// the base or allocate beyond its declared (capped) head length.
func ApplyDelta(base, delta []byte) ([]byte, error) {
	r, kind, err := openPayload(delta)
	if err != nil {
		return nil, err
	}
	if kind != KindDelta {
		return nil, fmt.Errorf("encoding: payload holds kind %d, want delta (%d)", kind, KindDelta)
	}
	baseHash := r.u64()
	headHash := r.u64()
	headLen := r.u32()
	opCount := r.u32()
	if r.err != nil {
		return nil, fmt.Errorf("encoding: truncated delta header: %w", r.err)
	}
	if int64(headLen) > MaxDeltaHeadBytes {
		return nil, fmt.Errorf("encoding: delta declares a %d-byte payload, cap is %d", headLen, MaxDeltaHeadBytes)
	}
	// Each op occupies at least its 2-byte tag plus one u32.
	if !r.need(int64(opCount) * 6) {
		return nil, fmt.Errorf("encoding: truncated delta ops: %w", r.err)
	}
	if PayloadHash(base) != baseHash {
		return nil, ErrDeltaBaseMismatch
	}
	out := make([]byte, 0, headLen)
	for i := uint32(0); i < opCount; i++ {
		tag := r.u16()
		switch tag {
		case deltaOpCopy:
			off := r.u32()
			length := r.u32()
			if r.err != nil {
				return nil, fmt.Errorf("encoding: truncated delta copy op: %w", r.err)
			}
			end := int64(off) + int64(length)
			if end > int64(len(base)) {
				return nil, fmt.Errorf("encoding: delta copy [%d,%d) escapes the %d-byte base", off, end, len(base))
			}
			if int64(len(out))+int64(length) > int64(headLen) {
				return nil, fmt.Errorf("encoding: delta ops overflow the declared %d-byte payload", headLen)
			}
			out = append(out, base[off:end]...)
		case deltaOpAdd:
			length := r.u32()
			if r.err != nil {
				return nil, fmt.Errorf("encoding: truncated delta add op: %w", r.err)
			}
			if int64(len(out))+int64(length) > int64(headLen) {
				return nil, fmt.Errorf("encoding: delta ops overflow the declared %d-byte payload", headLen)
			}
			if !r.need(int64(length)) {
				return nil, fmt.Errorf("encoding: truncated delta literal: %w", r.err)
			}
			out = append(out, r.bytes(int(length))...)
		default:
			return nil, fmt.Errorf("encoding: unknown delta op tag %d", tag)
		}
		if r.err != nil {
			return nil, fmt.Errorf("encoding: truncated delta op: %w", r.err)
		}
	}
	if r.buf.Len() != 0 {
		return nil, fmt.Errorf("encoding: %d trailing bytes after delta ops", r.buf.Len())
	}
	if len(out) != int(headLen) {
		return nil, fmt.Errorf("encoding: delta reconstructed %d bytes, declared %d", len(out), headLen)
	}
	if PayloadHash(out) != headHash {
		return nil, errors.New("encoding: delta reconstruction does not hash to the declared head")
	}
	return out, nil
}
