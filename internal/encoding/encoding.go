// Package encoding provides compact binary serialization for the float64
// quantile summaries, so sketches can be shipped between workers and a
// coordinator (the distributed aggregation setting of Section 1 of the paper
// and the "mergeable summaries" line of work it cites) or checkpointed to
// disk. All mergeable families are covered — GK, KLL, MRL, the
// reservoir, the multi-level MLQ summary, and the relative-error REQ
// summary — so a coordinator can
// round-trip and merge whichever family its workers run, and the
// sliding-window summary round-trips as well (KindWindow)
// so every facade family can be checkpointed. The generic Encode/Decode pair
// dispatches on the Kind tag; per-kind functions remain for callers that know
// what they hold.
//
// The format is versioned, little-endian, and self-describing enough to
// reject foreign payloads: a 4-byte magic, a format version, a summary kind,
// followed by kind-specific fields (the full wire format is documented in
// DESIGN.md). Only the information needed to continue answering queries (and
// merging) is serialized; instrumentation counters are not.
package encoding

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"quantilelb/internal/biased"
	"quantilelb/internal/exact"
	"quantilelb/internal/fo"
	"quantilelb/internal/gk"
	"quantilelb/internal/kll"
	"quantilelb/internal/mlq"
	"quantilelb/internal/mrl"
	"quantilelb/internal/order"
	"quantilelb/internal/req"
	"quantilelb/internal/sampling"
	"quantilelb/internal/window"
)

// Magic identifies serialized summaries from this package.
const Magic = uint32(0x51534d31) // "QSM1"

// Version is the current format version. Version 2 added the per-tuple run
// weight to the GK record (weighted-input support); payloads written by
// version 1 are rejected rather than silently misread.
const Version = uint16(2)

// Kind identifies the summary type inside a payload.
type Kind uint16

// Supported kinds.
const (
	KindGK        Kind = 1
	KindKLL       Kind = 2
	KindMRL       Kind = 3
	KindReservoir Kind = 4
	KindWindow    Kind = 5
	KindStore     Kind = 6
	KindMLQ       Kind = 7
	KindREQ       Kind = 8
	KindDelta     Kind = 9
	KindExact     Kind = 10
	KindBiased    Kind = 11
	KindFO        Kind = 12
)

// String returns the short family name used in reports and peer status
// (e.g. "gk", "kll").
func (k Kind) String() string {
	switch k {
	case KindGK:
		return "gk"
	case KindKLL:
		return "kll"
	case KindMRL:
		return "mrl"
	case KindReservoir:
		return "reservoir"
	case KindWindow:
		return "window"
	case KindStore:
		return "store"
	case KindMLQ:
		return "mlq"
	case KindREQ:
		return "req"
	case KindDelta:
		return "delta"
	case KindExact:
		return "exact"
	case KindBiased:
		return "biased"
	case KindFO:
		return "fo"
	}
	return fmt.Sprintf("kind(%d)", uint16(k))
}

// ErrBadPayload is returned when the payload is not a serialized summary
// produced by this package.
var ErrBadPayload = errors.New("encoding: not a quantilelb summary payload")

type writer struct {
	buf bytes.Buffer
	err error
}

func (w *writer) u16(v uint16)  { w.bin(v) }
func (w *writer) u32(v uint32)  { w.bin(v) }
func (w *writer) u64(v uint64)  { w.bin(v) }
func (w *writer) i64(v int64)   { w.bin(v) }
func (w *writer) f64(v float64) { w.bin(math.Float64bits(v)) }

func (w *writer) bin(v interface{}) {
	if w.err != nil {
		return
	}
	w.err = binary.Write(&w.buf, binary.LittleEndian, v)
}

// raw appends bytes verbatim (delta literals); errors are sticky like bin's.
func (w *writer) raw(b []byte) {
	if w.err != nil {
		return
	}
	_, w.err = w.buf.Write(b)
}

type reader struct {
	buf *bytes.Reader
	err error
}

func (r *reader) u16() uint16  { var v uint16; r.bin(&v); return v }
func (r *reader) u32() uint32  { var v uint32; r.bin(&v); return v }
func (r *reader) u64() uint64  { var v uint64; r.bin(&v); return v }
func (r *reader) i64() int64   { var v int64; r.bin(&v); return v }
func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) bin(v interface{}) {
	if r.err != nil {
		return
	}
	r.err = binary.Read(r.buf, binary.LittleEndian, v)
}

// bytes reads exactly n raw bytes; the caller must have guarded n with need.
func (r *reader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	out := make([]byte, n)
	if _, err := io.ReadFull(r.buf, out); err != nil {
		r.err = err
		return nil
	}
	return out
}

// need reports whether at least n more payload bytes remain, poisoning the
// reader when they do not. Every length-prefixed allocation below is guarded
// by it so a corrupt payload can declare at most as many elements as it has
// bytes to back them — without the guard a few flipped length bits would
// make Decode attempt a multi-gigabyte allocation.
func (r *reader) need(n int64) bool {
	if r.err != nil {
		return false
	}
	if int64(r.buf.Len()) < n {
		r.err = fmt.Errorf("encoding: payload declares %d more bytes but only %d remain", n, r.buf.Len())
		return false
	}
	return true
}

// EncodeGK serializes a float64 Greenwald–Khanna summary.
func EncodeGK(s *gk.Summary[float64]) ([]byte, error) {
	if s == nil {
		return nil, errors.New("encoding: nil summary")
	}
	w := &writer{}
	w.u32(Magic)
	w.u16(Version)
	w.u16(uint16(KindGK))
	writeGKFields(w, s)
	return w.buf.Bytes(), w.err
}

// writeGKFields appends a GK summary's state (accuracy, policy, count,
// tuples — each with its weighted-run length) without the payload header, so
// it can serve both as the KindGK body and as the per-block record of
// KindWindow.
func writeGKFields(w *writer, s *gk.Summary[float64]) {
	w.f64(s.Epsilon())
	w.u16(uint16(s.PolicyUsed()))
	w.i64(int64(s.Count()))
	tuples := s.Tuples()
	w.u32(uint32(len(tuples)))
	for _, t := range tuples {
		w.f64(t.V)
		w.i64(int64(t.G))
		w.i64(int64(t.Delta))
		w.i64(int64(t.Wt))
	}
}

// readGKFields reads the record written by writeGKFields and restores the
// summary.
func readGKFields(r *reader) (*gk.Summary[float64], error) {
	eps := r.f64()
	policy := gk.Policy(r.u16())
	count := r.i64()
	numTuples := r.u32()
	if r.err != nil {
		return nil, fmt.Errorf("encoding: truncated GK header: %w", r.err)
	}
	if count < 0 || numTuples > uint32(count)+1 {
		return nil, fmt.Errorf("encoding: inconsistent GK payload (n=%d, tuples=%d)", count, numTuples)
	}
	if !r.need(int64(numTuples) * 32) {
		return nil, fmt.Errorf("encoding: truncated GK tuples: %w", r.err)
	}
	tuples := make([]gk.Tuple[float64], numTuples)
	for i := range tuples {
		tuples[i] = gk.Tuple[float64]{V: r.f64(), G: int(r.i64()), Delta: int(r.i64()), Wt: int(r.i64())}
	}
	if r.err != nil {
		return nil, fmt.Errorf("encoding: truncated GK tuples: %w", r.err)
	}
	s, err := gk.Restore(order.Floats[float64](), eps, policy, int(count), tuples)
	if err != nil {
		return nil, fmt.Errorf("encoding: %w", err)
	}
	return s, nil
}

// DecodeGK reconstructs a float64 Greenwald–Khanna summary.
func DecodeGK(payload []byte) (*gk.Summary[float64], error) {
	r, kind, err := openPayload(payload)
	if err != nil {
		return nil, err
	}
	if kind != KindGK {
		return nil, fmt.Errorf("encoding: payload holds kind %d, want GK (%d)", kind, KindGK)
	}
	return readGKFields(r)
}

// EncodeKLL serializes a float64 KLL sketch.
func EncodeKLL(s *kll.Sketch[float64]) ([]byte, error) {
	if s == nil {
		return nil, errors.New("encoding: nil sketch")
	}
	w := &writer{}
	w.u32(Magic)
	w.u16(Version)
	w.u16(uint16(KindKLL))
	w.i64(int64(s.K()))
	w.i64(int64(s.Count()))
	levels := s.Compactors()
	w.u32(uint32(len(levels)))
	for _, level := range levels {
		w.u32(uint32(len(level)))
		for _, x := range level {
			w.f64(x)
		}
	}
	mn, mx, ok := s.Extremes()
	writeExtremes(w, mn, mx, ok)
	return w.buf.Bytes(), w.err
}

// DecodeKLL reconstructs a float64 KLL sketch. The decoded sketch continues
// to accept updates and merges (its random source is freshly seeded from the
// retained state size, which does not affect correctness guarantees).
func DecodeKLL(payload []byte) (*kll.Sketch[float64], error) {
	r, kind, err := openPayload(payload)
	if err != nil {
		return nil, err
	}
	if kind != KindKLL {
		return nil, fmt.Errorf("encoding: payload holds kind %d, want KLL (%d)", kind, KindKLL)
	}
	k := int(r.i64())
	count := r.i64()
	numLevels := r.u32()
	if r.err != nil {
		return nil, fmt.Errorf("encoding: truncated KLL header: %w", r.err)
	}
	if k < 2 || count < 0 || numLevels > 64 {
		return nil, fmt.Errorf("encoding: inconsistent KLL payload (k=%d, n=%d, levels=%d)", k, count, numLevels)
	}
	levels := make([][]float64, numLevels)
	for i := range levels {
		sz := r.u32()
		if r.err != nil {
			return nil, fmt.Errorf("encoding: truncated KLL level header: %w", r.err)
		}
		if int64(sz) > count+1 {
			return nil, fmt.Errorf("encoding: inconsistent KLL level size %d", sz)
		}
		if !r.need(int64(sz) * 8) {
			return nil, fmt.Errorf("encoding: truncated KLL level: %w", r.err)
		}
		level := make([]float64, sz)
		for j := range level {
			level[j] = r.f64()
		}
		levels[i] = level
	}
	mn, mx, hasExtremes := readExtremes(r)
	if r.err != nil {
		return nil, fmt.Errorf("encoding: truncated KLL payload: %w", r.err)
	}
	s, err := kll.Restore(order.Floats[float64](), k, int(count), levels, mn, mx, hasExtremes)
	if err != nil {
		return nil, fmt.Errorf("encoding: %w", err)
	}
	return s, nil
}

// EncodeMRL serializes a float64 MRL summary: the per-buffer capacity, the
// declared maximum stream length, every full buffer level-wise, and the
// partially filled level-0 buffer.
func EncodeMRL(s *mrl.Summary[float64]) ([]byte, error) {
	if s == nil {
		return nil, errors.New("encoding: nil summary")
	}
	w := &writer{}
	w.u32(Magic)
	w.u16(Version)
	w.u16(uint16(KindMRL))
	w.f64(s.Epsilon())
	w.i64(int64(s.BufferCapacity()))
	w.i64(int64(s.MaxN()))
	w.i64(int64(s.Count()))
	levels := s.Buffers()
	w.u32(uint32(len(levels)))
	for _, bufs := range levels {
		w.u32(uint32(len(bufs)))
		for _, buf := range bufs {
			w.u32(uint32(len(buf)))
			for _, x := range buf {
				w.f64(x)
			}
		}
	}
	current := s.Pending()
	w.u32(uint32(len(current)))
	for _, x := range current {
		w.f64(x)
	}
	mn, mx, ok := s.Extremes()
	writeExtremes(w, mn, mx, ok)
	return w.buf.Bytes(), w.err
}

// DecodeMRL reconstructs a float64 MRL summary serialized by EncodeMRL. The
// decoded summary continues to accept updates and merges.
func DecodeMRL(payload []byte) (*mrl.Summary[float64], error) {
	r, kind, err := openPayload(payload)
	if err != nil {
		return nil, err
	}
	if kind != KindMRL {
		return nil, fmt.Errorf("encoding: payload holds kind %d, want MRL (%d)", kind, KindMRL)
	}
	eps := r.f64()
	capacity := r.i64()
	maxN := r.i64()
	count := r.i64()
	numLevels := r.u32()
	if r.err != nil {
		return nil, fmt.Errorf("encoding: truncated MRL header: %w", r.err)
	}
	if capacity < 1 || maxN < 1 || count < 0 || numLevels > 64 {
		return nil, fmt.Errorf("encoding: inconsistent MRL payload (capacity=%d, maxN=%d, n=%d, levels=%d)", capacity, maxN, count, numLevels)
	}
	levels := make([][][]float64, numLevels)
	for l := range levels {
		numBufs := r.u32()
		if r.err != nil {
			return nil, fmt.Errorf("encoding: truncated MRL level header: %w", r.err)
		}
		if int64(numBufs) > count {
			return nil, fmt.Errorf("encoding: inconsistent MRL level %d buffer count %d", l, numBufs)
		}
		// Each serialized buffer occupies at least its 4-byte length prefix.
		if !r.need(int64(numBufs) * 4) {
			return nil, fmt.Errorf("encoding: truncated MRL level: %w", r.err)
		}
		levels[l] = make([][]float64, numBufs)
		for b := range levels[l] {
			sz := r.u32()
			if r.err != nil {
				return nil, fmt.Errorf("encoding: truncated MRL buffer header: %w", r.err)
			}
			if int64(sz) > capacity {
				return nil, fmt.Errorf("encoding: MRL buffer of %d items exceeds capacity %d", sz, capacity)
			}
			if !r.need(int64(sz) * 8) {
				return nil, fmt.Errorf("encoding: truncated MRL buffer: %w", r.err)
			}
			buf := make([]float64, sz)
			for i := range buf {
				buf[i] = r.f64()
			}
			levels[l][b] = buf
		}
	}
	curLen := r.u32()
	if r.err != nil {
		return nil, fmt.Errorf("encoding: truncated MRL payload: %w", r.err)
	}
	if int64(curLen) > capacity {
		return nil, fmt.Errorf("encoding: MRL partial buffer of %d items exceeds capacity %d", curLen, capacity)
	}
	if !r.need(int64(curLen) * 8) {
		return nil, fmt.Errorf("encoding: truncated MRL payload: %w", r.err)
	}
	current := make([]float64, curLen)
	for i := range current {
		current[i] = r.f64()
	}
	mn, mx, hasExtremes := readExtremes(r)
	if r.err != nil {
		return nil, fmt.Errorf("encoding: truncated MRL payload: %w", r.err)
	}
	s, err := mrl.Restore(order.Floats[float64](), eps, int(capacity), int(maxN), int(count), levels, current, mn, mx, hasExtremes)
	if err != nil {
		return nil, fmt.Errorf("encoding: %w", err)
	}
	return s, nil
}

// EncodeReservoir serializes a float64 reservoir sampler: capacity, stream
// count, the sample, and the exact extremes.
func EncodeReservoir(r *sampling.Reservoir[float64]) ([]byte, error) {
	if r == nil {
		return nil, errors.New("encoding: nil reservoir")
	}
	w := &writer{}
	w.u32(Magic)
	w.u16(Version)
	w.u16(uint16(KindReservoir))
	w.i64(int64(r.Capacity()))
	w.i64(int64(r.Count()))
	sample := r.Sample()
	w.u32(uint32(len(sample)))
	for _, x := range sample {
		w.f64(x)
	}
	mn, mx, ok := r.Extremes()
	writeExtremes(w, mn, mx, ok)
	return w.buf.Bytes(), w.err
}

// DecodeReservoir reconstructs a float64 reservoir serialized by
// EncodeReservoir. The decoded reservoir continues to accept updates and
// merges (its random source is freshly seeded, which does not affect the
// uniformity of the restored sample).
func DecodeReservoir(payload []byte) (*sampling.Reservoir[float64], error) {
	r, kind, err := openPayload(payload)
	if err != nil {
		return nil, err
	}
	if kind != KindReservoir {
		return nil, fmt.Errorf("encoding: payload holds kind %d, want reservoir (%d)", kind, KindReservoir)
	}
	capacity := r.i64()
	count := r.i64()
	sampleLen := r.u32()
	if r.err != nil {
		return nil, fmt.Errorf("encoding: truncated reservoir header: %w", r.err)
	}
	if capacity < 1 || count < 0 || int64(sampleLen) > capacity || int64(sampleLen) > count {
		return nil, fmt.Errorf("encoding: inconsistent reservoir payload (capacity=%d, n=%d, sample=%d)", capacity, count, sampleLen)
	}
	if !r.need(int64(sampleLen) * 8) {
		return nil, fmt.Errorf("encoding: truncated reservoir sample: %w", r.err)
	}
	sample := make([]float64, sampleLen)
	for i := range sample {
		sample[i] = r.f64()
	}
	mn, mx, hasExtremes := readExtremes(r)
	if r.err != nil {
		return nil, fmt.Errorf("encoding: truncated reservoir payload: %w", r.err)
	}
	s, err := sampling.Restore(order.Floats[float64](), int(capacity), int(count), sample, mn, mx, hasExtremes)
	if err != nil {
		return nil, fmt.Errorf("encoding: %w", err)
	}
	return s, nil
}

// writeExtremes appends the shared extremes trailer: a u16 presence flag
// followed by min and max when present.
func writeExtremes(w *writer, mn, mx float64, ok bool) {
	if ok {
		w.u16(1)
		w.f64(mn)
		w.f64(mx)
	} else {
		w.u16(0)
	}
}

// readExtremes reads the extremes trailer written by writeExtremes.
func readExtremes(r *reader) (mn, mx float64, ok bool) {
	if r.u16() == 1 {
		return r.f64(), r.f64(), true
	}
	return 0, 0, false
}

// EncodeWindow serializes a float64 sliding-window summary: the accuracy and
// window length, the total items seen, and every live block (stream offset,
// item count, and the block's own ε/2-accurate GK summary as a nested GK
// record).
func EncodeWindow(s *window.Summary[float64]) ([]byte, error) {
	if s == nil {
		return nil, errors.New("encoding: nil summary")
	}
	w := &writer{}
	w.u32(Magic)
	w.u16(Version)
	w.u16(uint16(KindWindow))
	w.f64(s.Epsilon())
	w.i64(int64(s.WindowLen()))
	w.i64(int64(s.TotalSeen()))
	blocks := s.ExportBlocks()
	w.u32(uint32(len(blocks)))
	for _, b := range blocks {
		w.i64(int64(b.Start))
		w.i64(int64(b.Count))
		writeGKFields(w, b.Summary)
	}
	return w.buf.Bytes(), w.err
}

// DecodeWindow reconstructs a sliding-window summary serialized by
// EncodeWindow. The decoded summary continues to accept updates; expiry picks
// up exactly where the encoder's stream position left off.
func DecodeWindow(payload []byte) (*window.Summary[float64], error) {
	r, kind, err := openPayload(payload)
	if err != nil {
		return nil, err
	}
	if kind != KindWindow {
		return nil, fmt.Errorf("encoding: payload holds kind %d, want window (%d)", kind, KindWindow)
	}
	eps := r.f64()
	windowLen := r.i64()
	totalSeen := r.i64()
	numBlocks := r.u32()
	if r.err != nil {
		return nil, fmt.Errorf("encoding: truncated window header: %w", r.err)
	}
	if windowLen < 2 || totalSeen < 0 || int64(numBlocks) > totalSeen {
		return nil, fmt.Errorf("encoding: inconsistent window payload (W=%d, n=%d, blocks=%d)", windowLen, totalSeen, numBlocks)
	}
	// Each serialized block occupies at least its two offsets plus a minimal
	// GK record (eps, policy, count, tuple count): 8+8+8+2+8+4 bytes.
	if !r.need(int64(numBlocks) * 38) {
		return nil, fmt.Errorf("encoding: truncated window blocks: %w", r.err)
	}
	blocks := make([]window.BlockState[float64], numBlocks)
	for i := range blocks {
		start := r.i64()
		count := r.i64()
		if r.err != nil {
			return nil, fmt.Errorf("encoding: truncated window block header: %w", r.err)
		}
		sum, err := readGKFields(r)
		if err != nil {
			return nil, fmt.Errorf("encoding: window block %d: %w", i, err)
		}
		blocks[i] = window.BlockState[float64]{Start: int(start), Count: int(count), Summary: sum}
	}
	// RestoreOwned: the block summaries were freshly built from the payload
	// above, so the defensive deep copy of Restore would be pure waste.
	s, err := window.RestoreOwned(order.Floats[float64](), eps, int(windowLen), int(totalSeen), blocks)
	if err != nil {
		return nil, fmt.Errorf("encoding: %w", err)
	}
	return s, nil
}

// Encode serializes any supported float64 summary, dispatching on its
// concrete type; the payload records the kind so Decode can reverse it
// without being told what it holds. It is the entry point the distributed
// tier uses (internal/sharded.SnapshotPayload, internal/cluster).
func Encode(s any) ([]byte, error) {
	switch v := s.(type) {
	case *gk.Summary[float64]:
		return EncodeGK(v)
	case *kll.Sketch[float64]:
		return EncodeKLL(v)
	case *mrl.Summary[float64]:
		return EncodeMRL(v)
	case *sampling.Reservoir[float64]:
		return EncodeReservoir(v)
	case *window.Summary[float64]:
		return EncodeWindow(v)
	case *mlq.Summary:
		return EncodeMLQ(v)
	case *req.Summary:
		return EncodeREQ(v)
	case *exact.Buffer:
		return EncodeExact(v)
	case *biased.Summary[float64]:
		return EncodeBiased(v)
	case *fo.Summary[float64]:
		return EncodeFO(v)
	}
	return nil, fmt.Errorf("encoding: unsupported summary type %T", s)
}

// Decode reconstructs whichever summary a payload holds, dispatching on the
// Kind tag. The result is one of *gk.Summary[float64], *kll.Sketch[float64],
// *mrl.Summary[float64], *sampling.Reservoir[float64],
// *window.Summary[float64], *mlq.Summary, *req.Summary, or
// *fo.Summary[float64]; use DetectKind
// first when the caller needs to know without paying for the full decode.
func Decode(payload []byte) (any, error) {
	kind, err := DetectKind(payload)
	if err != nil {
		return nil, err
	}
	var (
		dec    any
		decErr error
	)
	switch kind {
	case KindGK:
		dec, decErr = DecodeGK(payload)
	case KindKLL:
		dec, decErr = DecodeKLL(payload)
	case KindMRL:
		dec, decErr = DecodeMRL(payload)
	case KindReservoir:
		dec, decErr = DecodeReservoir(payload)
	case KindWindow:
		dec, decErr = DecodeWindow(payload)
	case KindMLQ:
		dec, decErr = DecodeMLQ(payload)
	case KindREQ:
		dec, decErr = DecodeREQ(payload)
	case KindExact:
		dec, decErr = DecodeExact(payload)
	case KindBiased:
		dec, decErr = DecodeBiased(payload)
	case KindFO:
		dec, decErr = DecodeFO(payload)
	case KindStore:
		return nil, errors.New("encoding: payload is a KindStore container, not a single summary; use DecodeStore")
	case KindDelta:
		return nil, errors.New("encoding: payload is a KindDelta container, not a full summary; use ApplyDelta with its base payload first")
	default:
		return nil, fmt.Errorf("encoding: unknown summary kind %d", kind)
	}
	if decErr != nil {
		// Return an untyped nil: the per-kind decoders return typed nil
		// pointers on failure, which would make the any non-nil.
		return nil, decErr
	}
	return dec, nil
}

// DetectKind returns the summary kind stored in a payload without decoding it
// fully.
func DetectKind(payload []byte) (Kind, error) {
	_, kind, err := openPayload(payload)
	return kind, err
}

func openPayload(payload []byte) (*reader, Kind, error) {
	r := &reader{buf: bytes.NewReader(payload)}
	if r.u32() != Magic {
		return nil, 0, ErrBadPayload
	}
	if v := r.u16(); v != Version {
		return nil, 0, fmt.Errorf("encoding: unsupported format version %d", v)
	}
	kind := Kind(r.u16())
	if r.err != nil {
		return nil, 0, ErrBadPayload
	}
	return r, kind, nil
}
