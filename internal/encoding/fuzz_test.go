package encoding

// FuzzDecode is the decoder-robustness fuzz target run by CI's fuzz smoke
// job: Decode (and therefore every kind-specific decoder plus the Restore
// validators behind them) must never panic or over-allocate on corrupt
// payloads — it either returns a usable summary or an error. The seed corpus
// holds a valid payload of every kind plus truncations and bit flips of
// each, the corruption shapes a failing node or a broken transport actually
// produces.

import (
	"math"
	"testing"

	"quantilelb/internal/biased"
	"quantilelb/internal/exact"
	"quantilelb/internal/fo"
	"quantilelb/internal/gk"
	"quantilelb/internal/kll"
	"quantilelb/internal/mlq"
	"quantilelb/internal/mrl"
	"quantilelb/internal/req"
	"quantilelb/internal/sampling"
	"quantilelb/internal/window"
)

// seedPayloads builds one valid payload per kind — plus one per natively
// weighted family built through the weighted ingest path, so the corpus also
// covers heavy-run GK tuples (wt > 1), high compactor levels, and
// weight-expanded buffers — deterministic so the corpus is stable across
// runs.
func seedPayloads(tb testing.TB) [][]byte {
	gkS := gk.NewFloat64(0.02)
	kllS := kll.NewFloat64(0.02, kll.WithSeed(1))
	mrlS := mrl.NewFloat64(0.02, 50_000)
	resS := sampling.NewFloat64(0.1, 0.01, 1)
	winS := window.NewFloat64(0.1, 200)
	for i := 0; i < 2_000; i++ {
		x := float64((i * 7919) % 4001)
		gkS.Update(x)
		kllS.Update(x)
		mrlS.Update(x)
		resS.Update(x)
		winS.Update(x)
	}
	wgkS := gk.NewFloat64(0.02)
	wkllS := kll.NewFloat64(0.02, kll.WithSeed(2))
	wmrlS := mrl.NewFloat64(0.02, 1<<20)
	wresS := sampling.NewFloat64(0.1, 0.01, 2)
	for i := 0; i < 500; i++ {
		x := float64((i * 6151) % 997)
		w := int64(i%37 + 1)
		if i%97 == 0 {
			w <<= 10 // heavy runs: high KLL levels, whole MRL buffers
		}
		wgkS.WeightedUpdate(x, w)
		wkllS.WeightedUpdate(x, w)
		wmrlS.WeightedUpdate(x, w)
		wresS.WeightedUpdate(x, w)
	}
	// MLQ corpus shapes: empty, a single-level summary (one flush), a deep
	// cascade (tiny block, many levels), a weighted payload with a populated
	// weighted buffer, a NaN-bearing payload (valid under the NaN-first
	// total order — the fuzz body's queries would hang if the decoder ever
	// regressed to IEEE comparison), and a pruned payload whose oversized
	// flattened level sits at the top of the cascade.
	mlqEmpty := mlq.NewFloat64(0.02)
	mlqSingle := mlq.NewFloat64(0.02)
	for i := 0; i < mlqSingle.BlockSize(); i++ {
		mlqSingle.Update(float64((i * 7919) % 4001))
	}
	mlqDeep := mlq.NewFloat64(0.05, mlq.WithBlockSize(64))
	for i := 0; i < 5_000; i++ {
		mlqDeep.Update(float64((i * 6151) % 997))
	}
	wmlqS := mlq.NewFloat64(0.02)
	for i := 0; i < 500; i++ {
		w := int64(i%37 + 1)
		if i%97 == 0 {
			w <<= 10
		}
		wmlqS.WeightedUpdate(float64((i*7457)%1009), w)
	}
	nanmlqS := mlq.NewFloat64(0.05, mlq.WithBlockSize(64))
	for i := 0; i < 300; i++ {
		if i%7 == 0 {
			nanmlqS.Update(math.NaN())
		} else {
			nanmlqS.Update(float64((i * 7919) % 4001))
		}
	}
	nanmlqS.WeightedUpdate(math.NaN(), 5)
	prunedmlqS := mlq.NewFloat64(0.05, mlq.WithBlockSize(64))
	for i := 0; i < 20_000; i++ {
		prunedmlqS.Update(float64((i * 6151) % 997))
	}
	prunedmlqS.Prune(500)
	// REQ corpus shapes: empty, a folded summary with a partial buffer, a
	// weighted payload, a NaN-bearing payload (valid under the NaN-first
	// total order), a merged payload (merged entry lists carry widened rank
	// bounds the ingest path alone never produces), and a pruned payload
	// (degraded eps, absolute-fallback entry shapes).
	reqEmpty := req.NewFloat64(0.02)
	reqFolded := req.NewFloat64(0.02)
	for i := 0; i < 5_000; i++ {
		reqFolded.Update(float64((i * 7919) % 4001))
	}
	wreqS := req.NewFloat64(0.02)
	for i := 0; i < 500; i++ {
		w := int64(i%37 + 1)
		if i%97 == 0 {
			w <<= 10
		}
		wreqS.WeightedUpdate(float64((i*7457)%1009), w)
	}
	nanreqS := req.NewFloat64(0.05)
	for i := 0; i < 300; i++ {
		if i%7 == 0 {
			nanreqS.Update(math.NaN())
		} else {
			nanreqS.Update(float64((i * 7919) % 4001))
		}
	}
	nanreqS.WeightedUpdate(math.NaN(), 5)
	mergedreqS := req.NewFloat64(0.02)
	for i := 0; i < 4_000; i++ {
		mergedreqS.Update(float64((i * 6151) % 997))
	}
	if err := mergedreqS.Merge(reqFolded); err != nil {
		tb.Fatalf("building merged req seed: %v", err)
	}
	prunedreqS := req.NewFloat64(0.02)
	for i := 0; i < 20_000; i++ {
		prunedreqS.Update(float64((i * 6151) % 997))
	}
	prunedreqS.Prune(50)
	// Exact-buffer corpus shapes (the store's cold-key stage): empty, unit
	// representation, weighted representation with coalesced runs, and a
	// NaN-bearing weighted buffer.
	exactEmpty := exact.New()
	exactUnit := exact.New()
	for i := 0; i < 60; i++ {
		exactUnit.Update(float64((i * 7919) % 97))
	}
	exactWeighted := exact.New()
	for i := 0; i < 60; i++ {
		exactWeighted.WeightedUpdate(float64(i%13), int64(i%7+1))
	}
	exactNaN := exact.New()
	exactNaN.Update(math.NaN())
	exactNaN.Update(1)
	exactNaN.WeightedUpdate(math.NaN(), 5)
	// FO corpus shapes (the randomized cascade): empty, a small ingest-only
	// summary whose sampler still passes every item through (base 0), a deep
	// run whose sampler has folded (base > 0, open window mid-fill), a
	// weighted payload (binary-decomposed placements), a NaN-bearing payload
	// (valid under the NaN-first total order), a merged payload (summed δ,
	// levels realigned by absolute exponent), and a pruned payload
	// (coarsened eps). Each carries live splitmix64 generator state, so the
	// corpus exercises the decoder's full State surface.
	foEmpty := fo.NewFloat64(fo.Config{Eps: 0.05, Delta: 0.05, Seed: 1})
	foSmall := fo.NewFloat64(fo.Config{Eps: 0.05, Delta: 0.05, Seed: 2})
	for i := 0; i < 40; i++ {
		foSmall.Update(float64((i * 7919) % 4001))
	}
	foDeep := fo.NewFloat64(fo.Config{Eps: 0.1, Delta: 0.2, Seed: 3})
	for i := 0; i < 30_000; i++ {
		foDeep.Update(float64((i * 7919) % 4001))
	}
	wfoS := fo.NewFloat64(fo.Config{Eps: 0.05, Delta: 0.05, Seed: 4})
	for i := 0; i < 500; i++ {
		w := int64(i%37 + 1)
		if i%97 == 0 {
			w <<= 10
		}
		wfoS.WeightedUpdate(float64((i*7457)%1009), w)
	}
	nanfoS := fo.NewFloat64(fo.Config{Eps: 0.05, Delta: 0.05, Seed: 5})
	for i := 0; i < 300; i++ {
		if i%7 == 0 {
			nanfoS.Update(math.NaN())
		} else {
			nanfoS.Update(float64((i * 7919) % 4001))
		}
	}
	nanfoS.WeightedUpdate(math.NaN(), 5)
	mergedfoS := fo.NewFloat64(fo.Config{Eps: 0.05, Delta: 0.02, Seed: 6})
	for i := 0; i < 4_000; i++ {
		mergedfoS.Update(float64((i * 6151) % 997))
	}
	if err := mergedfoS.Merge(foDeep); err != nil {
		tb.Fatalf("building merged fo seed: %v", err)
	}
	prunedfoS := fo.NewFloat64(fo.Config{Eps: 0.05, Delta: 0.05, Seed: 7})
	for i := 0; i < 20_000; i++ {
		prunedfoS.Update(float64((i * 6151) % 997))
	}
	prunedfoS.Prune(64)
	// Biased-summary corpus shapes: small ingest-only, a compressed long
	// stream, and a merged summary (merged tuple lists carry rank bounds the
	// ingest path alone never produces).
	biasedS := biased.NewFloat64(0.05)
	for i := 0; i < 5_000; i++ {
		biasedS.Update(float64((i * 7919) % 4001))
	}
	mergedbiasedS := biased.NewFloat64(0.05)
	for i := 0; i < 2_000; i++ {
		mergedbiasedS.Update(float64((i * 6151) % 997))
	}
	if err := mergedbiasedS.Merge(biasedS); err != nil {
		tb.Fatalf("building merged biased seed: %v", err)
	}
	var out [][]byte
	for _, s := range []any{gkS, kllS, mrlS, resS, winS, wgkS, wkllS, wmrlS, wresS, mlqEmpty, mlqSingle, mlqDeep, wmlqS, nanmlqS, prunedmlqS, reqEmpty, reqFolded, wreqS, nanreqS, mergedreqS, prunedreqS, foEmpty, foSmall, foDeep, wfoS, nanfoS, mergedfoS, prunedfoS, exactEmpty, exactUnit, exactWeighted, exactNaN, biasedS, mergedbiasedS} {
		p, err := Encode(s)
		if err != nil {
			tb.Fatalf("building seed corpus: %v", err)
		}
		out = append(out, p)
	}
	return out
}

func FuzzDecode(f *testing.F) {
	for _, p := range seedPayloads(f) {
		f.Add(p)
		// Truncations at structurally interesting depths: inside the header,
		// inside length prefixes, inside element data.
		for _, cut := range []int{1, 6, 8, 9, 16, 24, len(p) / 2, len(p) - 1} {
			if cut > 0 && cut < len(p) {
				f.Add(append([]byte(nil), p[:cut]...))
			}
		}
		// Bit flips sprayed over the payload, hitting magic, version, kind,
		// counts, and values.
		for i := 0; i < len(p); i += 1 + len(p)/16 {
			flipped := append([]byte(nil), p...)
			flipped[i] ^= 0x80
			f.Add(flipped)
		}
	}
	f.Add([]byte{})
	f.Add([]byte("not a payload at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := Decode(data)
		if err != nil {
			if dec != nil {
				t.Fatalf("Decode returned both a summary and error %v", err)
			}
			return
		}
		// Whatever survives validation must be a usable summary: queries and
		// re-encoding must work without panicking, and the re-encoded payload
		// must decode again (idempotent round trip).
		type summary interface {
			Query(float64) (float64, bool)
			EstimateRank(float64) int
			Count() int
			StoredCount() int
		}
		s, ok := dec.(summary)
		if !ok {
			t.Fatalf("Decode returned non-summary %T", dec)
		}
		for _, phi := range []float64{0, 0.5, 1} {
			s.Query(phi)
		}
		s.EstimateRank(0)
		if s.StoredCount() < 0 || s.Count() < 0 {
			t.Fatalf("decoded summary has negative counters")
		}
		re, err := Encode(dec)
		if err != nil {
			t.Fatalf("re-encoding a decoded summary: %v", err)
		}
		if _, err := Decode(re); err != nil {
			t.Fatalf("re-decoding a re-encoded summary: %v", err)
		}
	})
}
