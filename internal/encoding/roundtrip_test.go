package encoding

// Round-trip tests for the MRL and reservoir kinds added alongside the batch
// ingestion paths; the GK and KLL round trips live in encoding_test.go.

import (
	"testing"

	"quantilelb/internal/mrl"
	"quantilelb/internal/sampling"
	"quantilelb/internal/stream"
)

func TestMRLRoundTrip(t *testing.T) {
	gen := stream.NewGenerator(4)
	st := gen.Shuffled(30_000)
	s := mrl.NewFloat64(0.01, 100_000)
	s.UpdateBatch(st.Items()[:25_000])
	for _, x := range st.Items()[25_000:] {
		s.Update(x) // leave a partially filled level-0 buffer
	}
	payload, err := EncodeMRL(s)
	if err != nil {
		t.Fatal(err)
	}
	if kind, err := DetectKind(payload); err != nil || kind != KindMRL {
		t.Fatalf("DetectKind = %v, %v", kind, err)
	}
	restored, err := DecodeMRL(payload)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Count() != s.Count() || restored.StoredCount() != s.StoredCount() {
		t.Fatalf("restored counts differ: %d/%d vs %d/%d",
			restored.Count(), restored.StoredCount(), s.Count(), s.StoredCount())
	}
	if restored.Epsilon() != s.Epsilon() || restored.BufferCapacity() != s.BufferCapacity() || restored.MaxN() != s.MaxN() {
		t.Errorf("restored parameters differ")
	}
	if err := restored.CheckInvariant(); err != nil {
		t.Fatalf("restored summary invariant: %v", err)
	}
	// MRL is deterministic, so the restored summary answers identically.
	for _, phi := range []float64{0, 0.1, 0.5, 0.9, 1} {
		a, _ := s.Query(phi)
		b, _ := restored.Query(phi)
		if a != b {
			t.Errorf("phi=%v: original %v, restored %v", phi, a, b)
		}
	}
	// Restored summaries still merge (the coordinator use case).
	other := mrl.NewFloat64(0.01, 100_000)
	other.UpdateBatch(gen.Shuffled(10_000).Items())
	if err := restored.Merge(other); err != nil {
		t.Fatalf("merge after restore: %v", err)
	}
	if restored.Count() != 40_000 {
		t.Errorf("count after merge = %d", restored.Count())
	}
}

func TestReservoirRoundTrip(t *testing.T) {
	gen := stream.NewGenerator(5)
	st := gen.Uniform(40_000)
	s := sampling.NewFloat64(0.05, 0.05, 3)
	s.UpdateBatch(st.Items())
	payload, err := EncodeReservoir(s)
	if err != nil {
		t.Fatal(err)
	}
	if kind, err := DetectKind(payload); err != nil || kind != KindReservoir {
		t.Fatalf("DetectKind = %v, %v", kind, err)
	}
	restored, err := DecodeReservoir(payload)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Count() != s.Count() || restored.Capacity() != s.Capacity() {
		t.Fatalf("restored counts differ")
	}
	a := s.Sample()
	b := restored.Sample()
	if len(a) != len(b) {
		t.Fatalf("sample sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample differs at %d", i)
		}
	}
	amn, amx, _ := s.Extremes()
	bmn, bmx, ok := restored.Extremes()
	if !ok || amn != bmn || amx != bmx {
		t.Errorf("extremes differ: (%v,%v) vs (%v,%v)", amn, amx, bmn, bmx)
	}
	// The restored reservoir keeps sampling uniformly.
	restored.UpdateBatch(gen.Uniform(10_000).Items())
	if restored.Count() != 50_000 {
		t.Errorf("count after further updates = %d", restored.Count())
	}
}

func TestNewKindsRejectNilAndWrongKind(t *testing.T) {
	if _, err := EncodeMRL(nil); err == nil {
		t.Errorf("nil MRL should error")
	}
	if _, err := EncodeReservoir(nil); err == nil {
		t.Errorf("nil reservoir should error")
	}
	s := mrl.NewFloat64(0.1, 100)
	s.Update(1)
	payload, err := EncodeMRL(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeReservoir(payload); err == nil {
		t.Errorf("DecodeReservoir should reject an MRL payload")
	}
	if _, err := DecodeGK(payload); err == nil {
		t.Errorf("DecodeGK should reject an MRL payload")
	}
	// Truncations of the new kinds must error, never panic.
	for cut := 0; cut < len(payload); cut += 3 {
		if _, err := DecodeMRL(payload[:cut]); err == nil {
			t.Errorf("DecodeMRL accepted a payload truncated to %d bytes", cut)
		}
	}
	r := sampling.NewFloat64(0.1, 0.1, 1)
	r.Update(2)
	payload2, err := EncodeReservoir(r)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(payload2); cut += 3 {
		if _, err := DecodeReservoir(payload2[:cut]); err == nil {
			t.Errorf("DecodeReservoir accepted a payload truncated to %d bytes", cut)
		}
	}
}

func TestEmptySummariesRoundTrip(t *testing.T) {
	m, err := DecodeMRL(mustEncodeMRL(t, mrl.NewFloat64(0.1, 100)))
	if err != nil {
		t.Fatalf("empty MRL: %v", err)
	}
	if m.Count() != 0 {
		t.Errorf("empty MRL count = %d", m.Count())
	}
	r, err := DecodeReservoir(mustEncodeReservoir(t, sampling.NewFloat64(0.1, 0.1, 1)))
	if err != nil {
		t.Fatalf("empty reservoir: %v", err)
	}
	if r.Count() != 0 {
		t.Errorf("empty reservoir count = %d", r.Count())
	}
}

func mustEncodeMRL(t *testing.T, s *mrl.Summary[float64]) []byte {
	t.Helper()
	payload, err := EncodeMRL(s)
	if err != nil {
		t.Fatal(err)
	}
	return payload
}

func mustEncodeReservoir(t *testing.T, s *sampling.Reservoir[float64]) []byte {
	t.Helper()
	payload, err := EncodeReservoir(s)
	if err != nil {
		t.Fatal(err)
	}
	return payload
}
