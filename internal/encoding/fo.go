package encoding

// KindFO is the wire format of the randomized Felber–Ostrovsky summary
// (internal/fo): the guarantee pair (eps, delta — δ must travel so COMBINE
// merges keep summing it honestly), the total weight, the cascade geometry
// (bottom weight exponent plus one length-prefixed value list per level),
// the open sampler window (its exponent, progress, pre-drawn pick and
// candidate value), the exact extremes, and the splitmix64 generator state —
// the last is what makes snapshot → restore → resume bit-for-bit identical
// to an uninterrupted run. Every length prefix is guarded by need() and
// fo.Restore re-validates the decoded structure (exponent ranges, window
// bounds, per-level occupancy against the block capacity, retained-weight
// plausibility), so corrupt payloads are rejected rather than revived.

import (
	"errors"
	"fmt"

	"quantilelb/internal/fo"
	"quantilelb/internal/order"
)

// EncodeFO serializes a randomized Felber–Ostrovsky summary.
func EncodeFO(s *fo.Summary[float64]) ([]byte, error) {
	if s == nil {
		return nil, errors.New("encoding: nil summary")
	}
	st := s.ExportState()
	w := &writer{}
	w.u32(Magic)
	w.u16(Version)
	w.u16(uint16(KindFO))
	w.f64(st.Eps)
	w.f64(st.Delta)
	w.i64(st.N)
	w.u16(uint16(st.Base))
	w.u16(uint16(st.WinExp))
	w.i64(st.WinSeen)
	w.i64(st.WinPick)
	w.f64(st.WinVal)
	w.u64(st.RNG)
	writeExtremes(w, st.Min, st.Max, st.HasMin && st.HasMax)
	w.u16(uint16(len(st.Levels)))
	for _, lv := range st.Levels {
		w.u32(uint32(len(lv)))
		for _, v := range lv {
			w.f64(v)
		}
	}
	return w.buf.Bytes(), w.err
}

// DecodeFO reconstructs a randomized summary, validating the payload both
// structurally (length guards, level-count cap) and semantically through
// fo.Restore's invariant checks.
func DecodeFO(payload []byte) (*fo.Summary[float64], error) {
	r, kind, err := openPayload(payload)
	if err != nil {
		return nil, err
	}
	if kind != KindFO {
		return nil, fmt.Errorf("encoding: payload holds kind %d, want FO (%d)", kind, KindFO)
	}
	var st fo.State[float64]
	st.Eps = r.f64()
	st.Delta = r.f64()
	st.N = r.i64()
	st.Base = int(r.u16())
	st.WinExp = int(r.u16())
	st.WinSeen = r.i64()
	st.WinPick = r.i64()
	st.WinVal = r.f64()
	st.RNG = r.u64()
	st.Min, st.Max, st.HasMin = readExtremes(r)
	st.HasMax = st.HasMin
	numLevels := r.u16()
	if r.err != nil {
		return nil, fmt.Errorf("encoding: truncated FO header: %w", r.err)
	}
	if numLevels > 64 {
		return nil, fmt.Errorf("encoding: FO payload declares %d levels, cap is 64", numLevels)
	}
	st.Levels = make([][]float64, numLevels)
	for i := range st.Levels {
		n := r.u32()
		if !r.need(int64(n) * 8) {
			return nil, fmt.Errorf("encoding: truncated FO level %d: %w", i, r.err)
		}
		lv := make([]float64, n)
		for j := range lv {
			lv[j] = r.f64()
		}
		st.Levels[i] = lv
	}
	if r.err != nil {
		return nil, fmt.Errorf("encoding: truncated FO payload: %w", r.err)
	}
	s, err := fo.Restore(order.Floats[float64](), st)
	if err != nil {
		return nil, fmt.Errorf("encoding: %w", err)
	}
	return s, nil
}
