package encoding

// KindMLQ is the wire format of the multi-level summary (internal/mlq): the
// construction parameters (eps, block size b, horizon L), the total weight,
// the buffered not-yet-flushed items as (value, weight) pairs, and each
// cascade level as its accumulated eps plus its entries — value, weight, and
// the Rmin/Rmax rank bounds, 32 bytes per entry. Every length prefix is
// guarded by need() like the other kinds, and mlq.Restore re-validates the
// decoded structure (sortedness, bound consistency, per-level entry caps,
// weight conservation) so a corrupt payload is rejected rather than revived
// into an inconsistent summary.

import (
	"errors"
	"fmt"

	"quantilelb/internal/mlq"
)

// maxMLQLevels bounds the declared level count; the cascade covers b·2^(L-1)
// weight by level L, so 64 levels exceed any attainable stream.
const maxMLQLevels = 64

// EncodeMLQ serializes a multi-level summary.
func EncodeMLQ(s *mlq.Summary) ([]byte, error) {
	if s == nil {
		return nil, errors.New("encoding: nil summary")
	}
	w := &writer{}
	w.u32(Magic)
	w.u16(Version)
	w.u16(uint16(KindMLQ))
	w.f64(s.Epsilon())
	w.u32(uint32(s.BlockSize()))
	w.u32(uint32(s.MaxLevels()))
	w.i64(int64(s.Count()))
	buffered := s.Buffered()
	w.u32(uint32(len(buffered)))
	for _, p := range buffered {
		w.f64(p.V)
		w.i64(p.W)
	}
	levels := s.Levels()
	w.u32(uint32(len(levels)))
	for _, lv := range levels {
		w.f64(lv.Eps)
		w.u32(uint32(len(lv.Entries)))
		for _, e := range lv.Entries {
			w.f64(e.V)
			w.i64(e.W)
			w.i64(e.Rmin)
			w.i64(e.Rmax)
		}
	}
	return w.buf.Bytes(), w.err
}

// DecodeMLQ reconstructs a multi-level summary, validating the payload both
// structurally (length guards, level caps) and semantically (mlq.Restore's
// invariant checks, including the per-level b+1 entry cap below the horizon
// and total-weight conservation against the recorded count).
func DecodeMLQ(payload []byte) (*mlq.Summary, error) {
	r, kind, err := openPayload(payload)
	if err != nil {
		return nil, err
	}
	if kind != KindMLQ {
		return nil, fmt.Errorf("encoding: payload holds kind %d, want MLQ (%d)", kind, KindMLQ)
	}
	eps := r.f64()
	b := r.u32()
	maxLevels := r.u32()
	count := r.i64()
	numBuffered := r.u32()
	if r.err != nil {
		return nil, fmt.Errorf("encoding: truncated MLQ header: %w", r.err)
	}
	if count < 0 || b < 2 || maxLevels > maxMLQLevels || numBuffered > b {
		return nil, fmt.Errorf("encoding: inconsistent MLQ payload (n=%d, b=%d, levels=%d, buffered=%d)", count, b, maxLevels, numBuffered)
	}
	if !r.need(int64(numBuffered) * 16) {
		return nil, fmt.Errorf("encoding: truncated MLQ buffer: %w", r.err)
	}
	buffered := make([]mlq.WeightedValue, numBuffered)
	for i := range buffered {
		buffered[i] = mlq.WeightedValue{V: r.f64(), W: r.i64()}
	}
	numLevels := r.u32()
	if r.err != nil {
		return nil, fmt.Errorf("encoding: truncated MLQ levels: %w", r.err)
	}
	if numLevels > maxMLQLevels {
		return nil, fmt.Errorf("encoding: MLQ payload declares %d levels (max %d)", numLevels, maxMLQLevels)
	}
	levels := make([]mlq.LevelState, numLevels)
	for l := range levels {
		levels[l].Eps = r.f64()
		numEntries := r.u32()
		if r.err != nil {
			return nil, fmt.Errorf("encoding: truncated MLQ level %d: %w", l, r.err)
		}
		if !r.need(int64(numEntries) * 32) {
			return nil, fmt.Errorf("encoding: truncated MLQ level %d entries: %w", l, r.err)
		}
		entries := make([]mlq.Entry, numEntries)
		for i := range entries {
			entries[i] = mlq.Entry{V: r.f64(), W: r.i64(), Rmin: r.i64(), Rmax: r.i64()}
		}
		levels[l].Entries = entries
	}
	if r.err != nil {
		return nil, fmt.Errorf("encoding: truncated MLQ payload: %w", r.err)
	}
	s, err := mlq.Restore(eps, int(b), int(maxLevels), buffered, levels)
	if err != nil {
		return nil, fmt.Errorf("encoding: %w", err)
	}
	if int64(s.Count()) != count {
		return nil, fmt.Errorf("encoding: MLQ payload count %d does not match restored weight %d", count, s.Count())
	}
	return s, nil
}
