package encoding

// Round-trip, determinism, and hardening tests for the FO kind. The family
// is randomized, so the wire format must carry the splitmix64 generator
// state: the determinism tests pin the PR's contract that the same seed and
// input produce byte-identical payloads, and that encode → decode → resume
// is bit-for-bit indistinguishable from an uninterrupted run. The rejection
// table drives hand-written payloads through every validator in DecodeFO and
// fo.Restore; FuzzFODecode sprays truncations and bit flips over the same
// shapes.

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"quantilelb/internal/fo"
	"quantilelb/internal/stream"
)

func foTestSummary(seed int64, n int) *fo.Summary[float64] {
	s := fo.NewFloat64(fo.Config{Eps: 0.02, Delta: 0.05, Seed: seed})
	gen := stream.NewGenerator(31)
	s.UpdateBatch(gen.Shuffled(n).Items())
	return s
}

func TestFORoundTrip(t *testing.T) {
	s := foTestSummary(7, 30_000)
	s.WeightedUpdate(12345.5, 321)
	payload, err := EncodeFO(s)
	if err != nil {
		t.Fatal(err)
	}
	if kind, err := DetectKind(payload); err != nil || kind != KindFO {
		t.Fatalf("DetectKind = %v, %v", kind, err)
	}
	restored, err := DecodeFO(payload)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Count() != s.Count() || restored.StoredCount() != s.StoredCount() {
		t.Fatalf("restored counts differ: %d/%d vs %d/%d",
			restored.Count(), restored.StoredCount(), s.Count(), s.StoredCount())
	}
	if restored.Epsilon() != s.Epsilon() || restored.Delta() != s.Delta() {
		t.Errorf("restored guarantee pair differs: (%v, %v) vs (%v, %v)",
			restored.Epsilon(), restored.Delta(), s.Epsilon(), s.Delta())
	}
	// Restore is faithful — the full exported state survives the wire,
	// including the generator state and the open sampler window.
	if !reflect.DeepEqual(restored.ExportState(), s.ExportState()) {
		t.Fatal("restored state differs from the original")
	}
	for _, phi := range []float64{0, 0.1, 0.5, 0.9, 0.999, 1} {
		a, aok := s.Query(phi)
		b, bok := restored.Query(phi)
		if aok != bok || a != b {
			t.Errorf("phi=%v: original %v,%v restored %v,%v", phi, a, aok, b, bok)
		}
		if s.EstimateRank(a) != restored.EstimateRank(a) {
			t.Errorf("phi=%v: EstimateRank diverges after restore", phi)
		}
	}
	// Restored summaries still merge (the coordinator use case) — with any
	// other fo summary, since the merge is a free COMBINE.
	other := fo.NewFloat64(fo.Config{Eps: 0.05, Delta: 0.01, Seed: 8})
	other.UpdateBatch(stream.NewGenerator(32).Shuffled(10_000).Items())
	if err := restored.Merge(other); err != nil {
		t.Fatalf("merge after restore: %v", err)
	}
	if restored.Count() != s.Count()+10_000 {
		t.Errorf("count after merge = %d", restored.Count())
	}
	if restored.Epsilon() != 0.05 {
		t.Errorf("merge eps = %v, want the max 0.05", restored.Epsilon())
	}
	if got := restored.Delta(); math.Abs(got-0.06) > 1e-12 {
		t.Errorf("merge delta = %v, want the sum 0.06", got)
	}
	// Round trip through the generic dispatch too.
	generic, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(generic)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := dec.(*fo.Summary[float64]); !ok {
		t.Fatalf("generic Decode returned %T", dec)
	}
}

// TestFORoundTripReachableStates walks every state the public API can
// produce — empty, sampler-passthrough, folded, weighted, NaN-bearing,
// merged, and pruned — and requires each to survive the wire with its full
// state intact.
func TestFORoundTripReachableStates(t *testing.T) {
	gen := stream.NewGenerator(33)
	build := map[string]func() *fo.Summary[float64]{
		"empty": func() *fo.Summary[float64] {
			return fo.NewFloat64(fo.Config{Eps: 0.05, Delta: 0.05, Seed: 1})
		},
		"passthrough": func() *fo.Summary[float64] {
			s := fo.NewFloat64(fo.Config{Eps: 0.05, Delta: 0.05, Seed: 2})
			for i := 0; i < 10; i++ {
				s.Update(float64(i))
			}
			return s
		},
		"folded": func() *fo.Summary[float64] {
			s := fo.NewFloat64(fo.Config{Eps: 0.1, Delta: 0.2, Seed: 3})
			s.UpdateBatch(gen.Shuffled(30_000).Items())
			return s
		},
		"weighted": func() *fo.Summary[float64] {
			s := fo.NewFloat64(fo.Config{Eps: 0.05, Delta: 0.05, Seed: 4})
			for i := 0; i < 200; i++ {
				s.WeightedUpdate(float64(i%31), int64(i%7+1)<<uint(i%11))
			}
			return s
		},
		"nan": func() *fo.Summary[float64] {
			s := fo.NewFloat64(fo.Config{Eps: 0.05, Delta: 0.05, Seed: 5})
			for i := 0; i < 2_000; i++ {
				if i%17 == 0 {
					s.Update(math.NaN())
				} else {
					s.Update(float64(i % 311))
				}
			}
			s.WeightedUpdate(math.NaN(), 9)
			return s
		},
		"merged": func() *fo.Summary[float64] {
			a := fo.NewFloat64(fo.Config{Eps: 0.05, Delta: 0.02, Seed: 6})
			a.UpdateBatch(gen.Zipf(8_000, 1.2, 16).Items())
			b := fo.NewFloat64(fo.Config{Eps: 0.02, Delta: 0.01, Seed: 7})
			b.UpdateBatch(gen.Sorted(8_000).Items())
			if err := a.Merge(b); err != nil {
				t.Fatal(err)
			}
			return a
		},
		"pruned": func() *fo.Summary[float64] {
			s := fo.NewFloat64(fo.Config{Eps: 0.02, Delta: 0.05, Seed: 8})
			s.UpdateBatch(gen.Shuffled(20_000).Items())
			s.Prune(64)
			return s
		},
	}
	for name, mk := range build {
		s := mk()
		payload, err := EncodeFO(s)
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		restored, err := DecodeFO(payload)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		// Byte-level identity instead of DeepEqual: the nan shape carries NaN
		// values, which never compare equal, but their bit patterns do.
		if again, err := EncodeFO(restored); err != nil || !bytes.Equal(payload, again) {
			t.Fatalf("%s: re-encode differs from the original payload (err=%v)", name, err)
		}
		for _, phi := range []float64{0, 0.5, 0.9999, 1} {
			a, aok := s.Query(phi)
			b, bok := restored.Query(phi)
			if aok != bok || (a != b && !(math.IsNaN(a) && math.IsNaN(b))) {
				t.Fatalf("%s: phi=%v: original %v,%v restored %v,%v", name, phi, a, aok, b, bok)
			}
		}
	}
}

// TestFOEncodeDeterministic pins the reproducibility contract: two summaries
// built from the same seed and the same input stream — in separate runs with
// nothing shared — must produce byte-identical payloads and identical
// answers. This is what makes every randomized test in the repository
// replayable from its logged seed.
func TestFOEncodeDeterministic(t *testing.T) {
	mk := func() *fo.Summary[float64] {
		s := foTestSummary(11, 30_000)
		s.WeightedUpdate(77.5, 1000)
		s.UpdateBatch(stream.NewGenerator(34).Zipf(5_000, 1.2, 16).Items())
		return s
	}
	a, b := mk(), mk()
	pa, err := EncodeFO(a)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := EncodeFO(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pa, pb) {
		t.Fatal("same seed + same input produced different payloads")
	}
	for i := 0; i <= 100; i++ {
		phi := float64(i) / 100
		va, _ := a.Query(phi)
		vb, _ := b.Query(phi)
		if va != vb {
			t.Fatalf("phi=%v: answers diverge: %v vs %v", phi, va, vb)
		}
	}
}

// TestFOResumeMatchesUninterrupted is the snapshot/restore half of the
// determinism contract: cut a run in the middle, push it through the wire,
// resume — the final payload must be byte-identical to the uninterrupted
// run's, because the wire carries the generator state and the open window.
func TestFOResumeMatchesUninterrupted(t *testing.T) {
	items := stream.NewGenerator(35).Shuffled(30_000).Items()
	const cut = 17_113 // mid-window on purpose: not a power-of-two boundary
	cfg := fo.Config{Eps: 0.02, Delta: 0.05, Seed: 13}

	uninterrupted := fo.NewFloat64(cfg)
	for _, x := range items {
		uninterrupted.Update(x)
	}

	first := fo.NewFloat64(cfg)
	for _, x := range items[:cut] {
		first.Update(x)
	}
	mid, err := EncodeFO(first)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := DecodeFO(mid)
	if err != nil {
		t.Fatal(err)
	}
	// encode → decode → encode is the identity.
	if again, err := EncodeFO(resumed); err != nil || !bytes.Equal(mid, again) {
		t.Fatalf("re-encode after decode differs (err=%v)", err)
	}
	for _, x := range items[cut:] {
		resumed.Update(x)
	}
	pu, err := EncodeFO(uninterrupted)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := EncodeFO(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pu, pr) {
		t.Fatal("resumed run's payload differs from the uninterrupted run's")
	}
	for i := 0; i <= 100; i++ {
		phi := float64(i) / 100
		va, _ := uninterrupted.Query(phi)
		vb, _ := resumed.Query(phi)
		if va != vb {
			t.Fatalf("phi=%v: resumed answers diverge: %v vs %v", phi, va, vb)
		}
	}
}

// foWire hand-writes an FO payload so tests can express states the encoder
// itself refuses to produce.
type foWire struct {
	eps, delta       float64
	n                int64
	base, winExp     uint16
	winSeen, winPick int64
	winVal           float64
	rng              uint64
	hasExt           bool
	min, max         float64
	levels           [][]float64
}

func (p foWire) bytes() []byte {
	w := &writer{}
	w.u32(Magic)
	w.u16(Version)
	w.u16(uint16(KindFO))
	w.f64(p.eps)
	w.f64(p.delta)
	w.i64(p.n)
	w.u16(p.base)
	w.u16(p.winExp)
	w.i64(p.winSeen)
	w.i64(p.winPick)
	w.f64(p.winVal)
	w.u64(p.rng)
	writeExtremes(w, p.min, p.max, p.hasExt)
	w.u16(uint16(len(p.levels)))
	for _, lv := range p.levels {
		w.u32(uint32(len(lv)))
		for _, v := range lv {
			w.f64(v)
		}
	}
	return w.buf.Bytes()
}

// foValidWire is a small consistent baseline the rejection cases perturb.
func foValidWire() foWire {
	return foWire{
		eps: 0.1, delta: 0.1, n: 100, base: 0, winExp: 0,
		hasExt: true, min: 1, max: 9,
		levels: [][]float64{{1, 3, 5, 7, 9}},
	}
}

// TestFODecodeRejections drives the decoder's hardening: each corrupt shape
// must produce an error naming the problem, not a summary.
func TestFODecodeRejections(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*foWire)
		wantErr string
	}{
		{"bad epsilon", func(p *foWire) { p.eps = 7 }, "eps"},
		{"zero epsilon", func(p *foWire) { p.eps = 0 }, "eps"},
		{"bad delta", func(p *foWire) { p.delta = 0 }, "delta"},
		{"delta of one", func(p *foWire) { p.delta = 1 }, "delta"},
		{"negative count", func(p *foWire) { p.n = -1 }, "negative count"},
		{"base exponent overflow", func(p *foWire) { p.base = 63 }, "base exponent"},
		{"window above base", func(p *foWire) { p.winExp = 1 }, "window exponent"},
		{"window progress overflow", func(p *foWire) {
			p.base, p.winExp = 3, 2
			p.winSeen = 4 // width is 1<<2
		}, "window progress"},
		{"window pick overflow", func(p *foWire) {
			p.base, p.winExp = 3, 2
			p.winPick = 7
		}, "window pick"},
		{"overfull level", func(p *foWire) {
			// BlockSize(0.1, 0.1) bounds per-level occupancy; 2000 is far above it.
			lv := make([]float64, 2000)
			for i := range lv {
				lv[i] = float64(i)
			}
			p.levels = [][]float64{lv}
			p.n = 1 << 20
		}, "block capacity"},
		{"level span beyond cap", func(p *foWire) {
			// LevelCap(0.1, b) is well under 40 empty levels.
			p.levels = make([][]float64, 40)
		}, "exceed the cap"},
		{"top exponent overflow", func(p *foWire) {
			p.base = 62
			p.levels = [][]float64{{1}, {2}}
			p.n = 1 << 62
		}, "overflows"},
		{"retained weight implausible", func(p *foWire) {
			p.n = 1
			p.levels = [][]float64{{1, 2, 3, 4, 5, 6, 7}}
		}, "implausible"},
	}
	for _, tc := range cases {
		p := foValidWire()
		tc.mutate(&p)
		_, err := DecodeFO(p.bytes())
		if err == nil {
			t.Errorf("%s: decoded without error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}

	// Structural corruption below the State level: declared lengths the
	// payload cannot back, and truncations inside the header.
	valid := foValidWire().bytes()
	t.Run("truncations", func(t *testing.T) {
		for cut := 0; cut < len(valid); cut++ {
			if _, err := DecodeFO(valid[:cut]); err == nil {
				t.Fatalf("truncation at %d decoded without error", cut)
			}
		}
	})
	t.Run("level count above span cap", func(t *testing.T) {
		p := append([]byte(nil), valid...)
		// The level-count u16 sits 6 bytes from the end of the single
		// 5-item level (4-byte length prefix + 5×8 data = 44 bytes).
		off := len(p) - 44 - 2
		p[off], p[off+1] = 65, 0
		if _, err := DecodeFO(p); err == nil || !strings.Contains(err.Error(), "cap is 64") {
			t.Fatalf("err = %v, want the span-cap rejection", err)
		}
	})
	t.Run("level length lies", func(t *testing.T) {
		p := append([]byte(nil), valid...)
		off := len(p) - 44 // the level's u32 length prefix
		p[off], p[off+1], p[off+2], p[off+3] = 0xff, 0xff, 0xff, 0x7f
		if _, err := DecodeFO(p); err == nil || !strings.Contains(err.Error(), "truncated FO level") {
			t.Fatalf("err = %v, want the need() rejection", err)
		}
	})
	t.Run("wrong kind", func(t *testing.T) {
		p := append([]byte(nil), valid...)
		p[6] = byte(KindGK) // kind u16 lives at offset 6
		if _, err := DecodeFO(p); err == nil || !strings.Contains(err.Error(), "want FO") {
			t.Fatalf("err = %v, want the kind rejection", err)
		}
	})
}

// FuzzFODecode is the FO-specific robustness target: DecodeFO must never
// panic or over-allocate on corrupt payloads, and anything it does accept
// must answer queries and survive a re-encode round trip.
func FuzzFODecode(f *testing.F) {
	shapes := []*fo.Summary[float64]{
		fo.NewFloat64(fo.Config{Eps: 0.05, Delta: 0.05, Seed: 1}),
		foTestSummary(2, 5_000),
		foTestSummary(3, 30_000),
	}
	weighted := fo.NewFloat64(fo.Config{Eps: 0.05, Delta: 0.05, Seed: 4})
	for i := 0; i < 200; i++ {
		weighted.WeightedUpdate(float64(i%31), int64(i%7+1)<<uint(i%11))
	}
	shapes = append(shapes, weighted)
	for _, s := range shapes {
		p, err := EncodeFO(s)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(p)
		for _, cut := range []int{1, 6, 8, 16, 34, 60, len(p) / 2, len(p) - 1} {
			if cut > 0 && cut < len(p) {
				f.Add(append([]byte(nil), p[:cut]...))
			}
		}
		for i := 0; i < len(p); i += 1 + len(p)/16 {
			flipped := append([]byte(nil), p...)
			flipped[i] ^= 0x80
			f.Add(flipped)
		}
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeFO(data)
		if err != nil {
			return
		}
		for _, phi := range []float64{0, 0.5, 1} {
			s.Query(phi)
		}
		p, err := EncodeFO(s)
		if err != nil {
			t.Fatalf("re-encode of accepted payload failed: %v", err)
		}
		if _, err := DecodeFO(p); err != nil {
			t.Fatalf("re-decode of re-encoded payload failed: %v", err)
		}
	})
}
