package encoding

// Weighted round-trip coverage for format version 2: the GK record carries
// each tuple's run weight, so a weighted summary must decode to identical
// answers and keep merging; the other weighted families round-trip through
// their unchanged bodies (their weighted state is ordinary level/buffer/
// sample state).

import (
	"testing"

	"quantilelb/internal/gk"
	"quantilelb/internal/kll"
	"quantilelb/internal/mrl"
	"quantilelb/internal/sampling"
)

func TestWeightedGKRoundTrip(t *testing.T) {
	s := gk.NewFloat64(0.02)
	for i := 0; i < 1_000; i++ {
		w := int64(i%23 + 1)
		if i%101 == 0 {
			w *= 4096
		}
		s.WeightedUpdate(float64((i*5407)%1009), w)
	}
	payload, err := EncodeGK(s)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := DecodeGK(payload)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Count() != s.Count() {
		t.Fatalf("restored Count = %d, want %d", restored.Count(), s.Count())
	}
	rt, st := restored.Tuples(), s.Tuples()
	for i := range st {
		if rt[i] != st[i] {
			t.Fatalf("tuple %d differs after round trip: %+v vs %+v", i, rt[i], st[i])
		}
	}
	for g := 0; g <= 40; g++ {
		phi := float64(g) / 40
		want, _ := s.Query(phi)
		got, _ := restored.Query(phi)
		if want != got {
			t.Fatalf("phi=%g: restored answers %g, original %g", phi, got, want)
		}
	}
	// The restored summary keeps accepting weighted updates and merging.
	restored.WeightedUpdate(3.25, 1<<20)
	if err := restored.CheckInvariant(); err != nil {
		t.Fatalf("restored summary after weighted update: %v", err)
	}
	other := gk.NewFloat64(0.02)
	other.WeightedUpdate(7.5, 512)
	if err := restored.Merge(other); err != nil {
		t.Fatalf("merging into restored summary: %v", err)
	}
}

func TestWeightedGKCorruptRunWeightRejected(t *testing.T) {
	s := gk.NewFloat64(0.05)
	s.WeightedUpdate(1, 10)
	s.WeightedUpdate(2, 20)
	s.WeightedUpdate(3, 30)
	payload, err := EncodeGK(s)
	if err != nil {
		t.Fatal(err)
	}
	// The last i64 of the payload is the final tuple's run weight; a run
	// weight above the tuple's g violates the weighted invariant and must be
	// rejected by Restore's validation.
	corrupt := append([]byte(nil), payload...)
	corrupt[len(corrupt)-8] = 0xFF
	if _, err := DecodeGK(corrupt); err == nil {
		t.Fatal("DecodeGK accepted a corrupt run weight")
	}
}

func TestWeightedFamiliesRoundTrip(t *testing.T) {
	kllS := kll.NewFloat64(0.02, kll.WithSeed(9))
	mrlS := mrl.NewFloat64(0.02, 1<<21)
	resS := sampling.NewFloat64(0.05, 0.01, 9)
	for i := 0; i < 800; i++ {
		x := float64((i * 2713) % 503)
		w := int64(i%19 + 1)
		if i%89 == 0 {
			w *= 2048
		}
		kllS.WeightedUpdate(x, w)
		mrlS.WeightedUpdate(x, w)
		resS.WeightedUpdate(x, w)
	}
	for _, tc := range []struct {
		name string
		s    any
	}{
		{"kll", kllS},
		{"mrl", mrlS},
		{"reservoir", resS},
	} {
		payload, err := Encode(tc.s)
		if err != nil {
			t.Fatalf("%s: encode: %v", tc.name, err)
		}
		dec, err := Decode(payload)
		if err != nil {
			t.Fatalf("%s: decode: %v", tc.name, err)
		}
		type counted interface {
			Count() int
			Query(float64) (float64, bool)
		}
		orig := tc.s.(counted)
		got := dec.(counted)
		if got.Count() != orig.Count() {
			t.Fatalf("%s: restored Count = %d, want %d", tc.name, got.Count(), orig.Count())
		}
		for g := 0; g <= 20; g++ {
			phi := float64(g) / 20
			want, _ := orig.Query(phi)
			have, _ := got.Query(phi)
			if want != have {
				t.Fatalf("%s: phi=%g: restored answers %g, original %g", tc.name, phi, have, want)
			}
		}
	}
}
