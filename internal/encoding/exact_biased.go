package encoding

import (
	"errors"
	"fmt"

	"quantilelb/internal/biased"
	"quantilelb/internal/exact"
)

// EncodeExact serializes an exact sorted-sample buffer (the cold-key stage of
// the multi-tenant store): total weight, a weighted-representation flag, the
// sorted values, and — when weighted — the parallel weights. A buffered store
// key snapshots as its exact items, so restore/merge reproduce it losslessly.
func EncodeExact(b *exact.Buffer) ([]byte, error) {
	if b == nil {
		return nil, errors.New("encoding: nil buffer")
	}
	w := &writer{}
	w.u32(Magic)
	w.u16(Version)
	w.u16(uint16(KindExact))
	w.i64(int64(b.Count()))
	vals := b.Values()
	wts := b.Weights()
	if wts == nil {
		w.u16(0)
	} else {
		w.u16(1)
	}
	w.u32(uint32(len(vals)))
	for _, v := range vals {
		w.f64(v)
	}
	for _, wt := range wts {
		w.i64(wt)
	}
	return w.buf.Bytes(), w.err
}

// DecodeExact reconstructs an exact buffer serialized by EncodeExact.
func DecodeExact(payload []byte) (*exact.Buffer, error) {
	r, kind, err := openPayload(payload)
	if err != nil {
		return nil, err
	}
	if kind != KindExact {
		return nil, fmt.Errorf("encoding: payload holds kind %d, want exact (%d)", kind, KindExact)
	}
	count := r.i64()
	weighted := r.u16()
	numVals := r.u32()
	if r.err != nil {
		return nil, fmt.Errorf("encoding: truncated exact header: %w", r.err)
	}
	if count < 0 || weighted > 1 || int64(numVals) > count {
		return nil, fmt.Errorf("encoding: inconsistent exact payload (n=%d, vals=%d, weighted=%d)", count, numVals, weighted)
	}
	perVal := int64(8)
	if weighted == 1 {
		perVal = 16
	}
	if !r.need(int64(numVals) * perVal) {
		return nil, fmt.Errorf("encoding: truncated exact values: %w", r.err)
	}
	vals := make([]float64, numVals)
	for i := range vals {
		vals[i] = r.f64()
	}
	var wts []int64
	if weighted == 1 {
		wts = make([]int64, numVals)
		for i := range wts {
			wts[i] = r.i64()
		}
	}
	if r.err != nil {
		return nil, fmt.Errorf("encoding: truncated exact payload: %w", r.err)
	}
	b, err := exact.Restore(vals, wts, count)
	if err != nil {
		return nil, fmt.Errorf("encoding: %w", err)
	}
	return b, nil
}

// EncodeBiased serializes a float64 biased (relative-error) summary: its
// relative accuracy, count, and (v, g, Δ) tuple list.
func EncodeBiased(s *biased.Summary[float64]) ([]byte, error) {
	if s == nil {
		return nil, errors.New("encoding: nil summary")
	}
	w := &writer{}
	w.u32(Magic)
	w.u16(Version)
	w.u16(uint16(KindBiased))
	w.f64(s.Epsilon())
	w.i64(int64(s.Count()))
	tuples := s.Tuples()
	w.u32(uint32(len(tuples)))
	for _, t := range tuples {
		w.f64(t.V)
		w.i64(int64(t.G))
		w.i64(int64(t.Delta))
	}
	return w.buf.Bytes(), w.err
}

// DecodeBiased reconstructs a float64 biased summary serialized by
// EncodeBiased.
func DecodeBiased(payload []byte) (*biased.Summary[float64], error) {
	r, kind, err := openPayload(payload)
	if err != nil {
		return nil, err
	}
	if kind != KindBiased {
		return nil, fmt.Errorf("encoding: payload holds kind %d, want biased (%d)", kind, KindBiased)
	}
	eps := r.f64()
	count := r.i64()
	numTuples := r.u32()
	if r.err != nil {
		return nil, fmt.Errorf("encoding: truncated biased header: %w", r.err)
	}
	if count < 0 || int64(numTuples) > count {
		return nil, fmt.Errorf("encoding: inconsistent biased payload (n=%d, tuples=%d)", count, numTuples)
	}
	if !r.need(int64(numTuples) * 24) {
		return nil, fmt.Errorf("encoding: truncated biased tuples: %w", r.err)
	}
	tuples := make([]biased.Tuple[float64], numTuples)
	for i := range tuples {
		tuples[i] = biased.Tuple[float64]{V: r.f64(), G: int(r.i64()), Delta: int(r.i64())}
	}
	if r.err != nil {
		return nil, fmt.Errorf("encoding: truncated biased tuples: %w", r.err)
	}
	s, err := biased.RestoreFloat64(eps, int(count), tuples)
	if err != nil {
		return nil, fmt.Errorf("encoding: %w", err)
	}
	return s, nil
}
