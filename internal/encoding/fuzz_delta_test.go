package encoding

// FuzzDeltaDecode is the delta-robustness fuzz target run by CI's fuzz smoke
// job: ApplyDelta (and DecodeDeltaHeader) must never panic or over-allocate on
// a corrupt or hostile delta — they either reconstruct a payload that
// hash-verifies against the delta's declared head, or return an error. The
// seed corpus holds real (base, delta) pairs from the snapshot lineages a
// combiner actually re-exports: plain incremental ingest, a NaN-bearing mlq
// stream, a pruned req summary, and a merged gk pair — plus truncations and
// bit flips of each.

import (
	"math"
	"testing"

	"quantilelb/internal/gk"
	"quantilelb/internal/mlq"
	"quantilelb/internal/req"
	"quantilelb/internal/stream"
)

// deltaSeedPairs builds deterministic (base, delta) seed pairs covering the
// mutated states the property tests pin: NaN, pruned, and merged summaries.
func deltaSeedPairs(tb testing.TB) [][2][]byte {
	tb.Helper()
	gen := stream.NewGenerator(21)
	items := gen.Shuffled(3000).Items()

	encode := func(s any) []byte {
		p, err := Encode(s)
		if err != nil {
			tb.Fatalf("encoding seed summary: %v", err)
		}
		return p
	}
	pair := func(base, head []byte) [2][]byte {
		d, err := EncodeDelta(base, head)
		if err != nil {
			tb.Fatalf("encoding seed delta: %v", err)
		}
		return [2][]byte{base, d}
	}

	var pairs [][2][]byte

	// Plain incremental ingest.
	g := gk.NewFloat64(0.02)
	g.UpdateBatch(items[:2000])
	gBase := encode(g)
	g.UpdateBatch(items[2000:])
	pairs = append(pairs, pair(gBase, encode(g)))

	// NaN-bearing mlq stream (NaN-first total order on the wire).
	m := mlq.NewFloat64(0.02)
	m.UpdateBatch(items[:2000])
	m.Update(math.NaN())
	mBase := encode(m)
	m.UpdateBatch(items[2000:])
	m.Update(math.NaN())
	pairs = append(pairs, pair(mBase, encode(m)))

	// Pruned req summary (degraded-eps state).
	r := req.NewFloat64(0.02)
	r.UpdateBatch(items[:2000])
	rBase := encode(r)
	r.UpdateBatch(items[2000:])
	r.Prune(64)
	pairs = append(pairs, pair(rBase, encode(r)))

	// Merged gk pair (COMBINE output as head).
	a := gk.NewFloat64(0.02)
	a.UpdateBatch(items[:1500])
	aBase := encode(a)
	b := gk.NewFloat64(0.02)
	b.UpdateBatch(items[1500:])
	if err := a.Merge(b); err != nil {
		tb.Fatalf("merging seed summaries: %v", err)
	}
	pairs = append(pairs, pair(aBase, encode(a)))

	return pairs
}

func FuzzDeltaDecode(f *testing.F) {
	for _, p := range deltaSeedPairs(f) {
		base, delta := p[0], p[1]
		f.Add(base, delta)
		// Full payload offered as a delta: must be rejected, never applied.
		f.Add(base, base)
		// Truncations and bit flips of the valid delta.
		for _, cut := range []int{0, 1, 7, len(delta) / 2, len(delta) - 1} {
			if cut <= len(delta) {
				f.Add(base, delta[:cut])
			}
		}
		for i := 0; i < len(delta); i += 13 {
			mut := append([]byte(nil), delta...)
			mut[i] ^= 0x20
			f.Add(base, mut)
		}
	}

	f.Fuzz(func(t *testing.T, base, delta []byte) {
		hdr, hdrErr := DecodeDeltaHeader(delta)
		out, err := ApplyDelta(base, delta)
		if err != nil {
			return
		}
		// A successful application implies a well-formed header, a verified
		// base, and a reconstruction that matches every declared property.
		if hdrErr != nil {
			t.Fatalf("ApplyDelta succeeded but DecodeDeltaHeader failed: %v", hdrErr)
		}
		if hdr.BaseHash != PayloadHash(base) {
			t.Fatalf("applied delta with base hash %x against base hashing %x", hdr.BaseHash, PayloadHash(base))
		}
		if len(out) != hdr.HeadLen {
			t.Fatalf("reconstructed %d bytes, header declares %d", len(out), hdr.HeadLen)
		}
		if PayloadHash(out) != hdr.HeadHash {
			t.Fatalf("reconstruction hashes to %x, header declares %x", PayloadHash(out), hdr.HeadHash)
		}
		if !IsDelta(delta) {
			t.Fatal("ApplyDelta succeeded on a payload IsDelta rejects")
		}
	})
}
