package encoding

// FuzzStoreDecode is the KindStore-container twin of FuzzDecode, run by CI's
// fuzz smoke job: DecodeStore (and the nested per-summary decoders behind
// it) must never panic or over-allocate on corrupt containers — truncations,
// bit flips, duplicated keys, and length-prefix lies are exactly what a
// failing node or broken transport ships. The seed corpus is built from
// round-trip payloads of multi-key stores holding every encodable family.

import (
	"encoding/binary"
	"testing"

	"quantilelb/internal/gk"
	"quantilelb/internal/kll"
	"quantilelb/internal/mrl"
	"quantilelb/internal/sampling"
	"quantilelb/internal/window"
)

// storeSeedPayloads builds deterministic KindStore containers: one holding a
// key per encodable family, one single-key, one empty.
func storeSeedPayloads(tb testing.TB) [][]byte {
	gkS := gk.NewFloat64(0.02)
	kllS := kll.NewFloat64(0.02, kll.WithSeed(1))
	mrlS := mrl.NewFloat64(0.02, 50_000)
	resS := sampling.NewFloat64(0.1, 0.01, 1)
	winS := window.NewFloat64(0.1, 200)
	for i := 0; i < 1_500; i++ {
		x := float64((i * 6007) % 3001)
		gkS.Update(x)
		kllS.Update(x)
		mrlS.Update(x)
		resS.Update(x)
		winS.Update(x)
	}
	var entries []KeyedPayload
	for key, s := range map[string]any{
		"m.gk": gkS, "m.kll": kllS, "m.mrl": mrlS, "m.res": resS, "m.win": winS,
	} {
		p, err := Encode(s)
		if err != nil {
			tb.Fatalf("building store seed corpus: %v", err)
		}
		entries = append(entries, KeyedPayload{Key: key, Payload: p})
	}
	full, err := EncodeStore(entries)
	if err != nil {
		tb.Fatalf("building store seed corpus: %v", err)
	}
	single, err := EncodeStore(entries[:1])
	if err != nil {
		tb.Fatalf("building store seed corpus: %v", err)
	}
	empty, err := EncodeStore(nil)
	if err != nil {
		tb.Fatalf("building store seed corpus: %v", err)
	}
	return [][]byte{full, single, empty}
}

func FuzzStoreDecode(f *testing.F) {
	for _, p := range storeSeedPayloads(f) {
		f.Add(p)
		// Truncations at structurally interesting depths: header, record
		// count, inside key bytes, inside nested payloads.
		for _, cut := range []int{1, 8, 12, 16, 20, len(p) / 4, len(p) / 2, len(p) - 1} {
			if cut > 0 && cut < len(p) {
				f.Add(append([]byte(nil), p[:cut]...))
			}
		}
		// Bit flips sprayed over the payload: magic, kind, record count, key
		// lengths, payload lengths, nested headers, values.
		for i := 0; i < len(p); i += 1 + len(p)/24 {
			flipped := append([]byte(nil), p...)
			flipped[i] ^= 0x80
			f.Add(flipped)
		}
		// A duplicated-key container: replay the first record's bytes as a
		// second record and bump the count, which DecodeStore must reject.
		if len(p) > 12 {
			dup := append([]byte(nil), p...)
			binary.LittleEndian.PutUint32(dup[8:12], binary.LittleEndian.Uint32(p[8:12])+1)
			dup = append(dup, p[12:]...)
			f.Add(dup)
		}
	}
	f.Add([]byte{})
	f.Add([]byte("not a container"))

	f.Fuzz(func(t *testing.T, data []byte) {
		records, err := DecodeStore(data)
		if err != nil {
			if records != nil {
				t.Fatalf("DecodeStore returned both records and error %v", err)
			}
			return
		}
		// Whatever survives validation must round-trip: distinct keys, every
		// nested payload either decodes to a usable summary or errors
		// cleanly, and re-encoding the records succeeds.
		seen := make(map[string]bool, len(records))
		for _, rec := range records {
			if seen[rec.Key] {
				t.Fatalf("DecodeStore let duplicate key %q through", rec.Key)
			}
			seen[rec.Key] = true
			dec, err := Decode(rec.Payload)
			if err != nil {
				continue // corrupt nested payload rejected cleanly: fine
			}
			type summary interface {
				Query(float64) (float64, bool)
				Count() int
				StoredCount() int
			}
			s, ok := dec.(summary)
			if !ok {
				t.Fatalf("nested decode returned non-summary %T", dec)
			}
			s.Query(0.5)
			if s.Count() < 0 || s.StoredCount() < 0 {
				t.Fatalf("nested summary has negative counters")
			}
		}
		if _, err := EncodeStore(records); err != nil {
			t.Fatalf("re-encoding decoded records: %v", err)
		}
	})
}
