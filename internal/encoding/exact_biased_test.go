package encoding

// Wire-format tests for the two kinds added with the multi-tenant store's
// cold-key stage: KindExact (the pre-promotion exact buffer) and KindBiased
// (the relative-error summary), plus the cross-stage merge dispatch
// (MergeAny replaying exact items into sketches, MergeAdopting replacing an
// exact destination with the absorbing sketch).

import (
	"math"
	"strings"
	"testing"

	"quantilelb/internal/biased"
	"quantilelb/internal/exact"
	"quantilelb/internal/gk"
	"quantilelb/internal/kll"
	"quantilelb/internal/rank"
)

func TestExactRoundTrip(t *testing.T) {
	cases := map[string]func() *exact.Buffer{
		"empty": exact.New,
		"unit": func() *exact.Buffer {
			b := exact.New()
			for i := 0; i < 50; i++ {
				b.Update(float64((i * 7919) % 97))
			}
			return b
		},
		"weighted": func() *exact.Buffer {
			b := exact.New()
			for i := 0; i < 50; i++ {
				b.WeightedUpdate(float64(i%13), int64(i%7+1))
			}
			return b
		},
		"nan": func() *exact.Buffer {
			b := exact.New()
			b.Update(math.NaN())
			b.Update(2)
			b.WeightedUpdate(math.NaN(), 3)
			return b
		},
	}
	for name, mk := range cases {
		t.Run(name, func(t *testing.T) {
			b := mk()
			payload, err := Encode(b) // generic dispatch must route the buffer
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			if kind, err := DetectKind(payload); err != nil || kind != KindExact {
				t.Fatalf("DetectKind = %v, %v", kind, err)
			}
			dec, err := Decode(payload)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			r, ok := dec.(*exact.Buffer)
			if !ok {
				t.Fatalf("Decode returned %T", dec)
			}
			if r.Count() != b.Count() || r.StoredCount() != b.StoredCount() {
				t.Fatalf("counts = %d/%d, want %d/%d", r.Count(), r.StoredCount(), b.Count(), b.StoredCount())
			}
			for _, phi := range []float64{0, 0.25, 0.5, 0.75, 1} {
				gv, gok := b.Query(phi)
				rv, rok := r.Query(phi)
				if gok != rok || (gok && gv != rv && !(math.IsNaN(gv) && math.IsNaN(rv))) {
					t.Fatalf("phi=%g: restored %v,%v vs original %v,%v", phi, rv, rok, gv, gok)
				}
			}
		})
	}
}

func TestBiasedRoundTrip(t *testing.T) {
	s := biased.NewFloat64(0.05)
	for i := 0; i < 10_000; i++ {
		s.Update(float64((i * 7919) % 4001))
	}
	payload, err := Encode(s)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if kind, err := DetectKind(payload); err != nil || kind != KindBiased {
		t.Fatalf("DetectKind = %v, %v", kind, err)
	}
	dec, err := Decode(payload)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	r, ok := dec.(*biased.Summary[float64])
	if !ok {
		t.Fatalf("Decode returned %T", dec)
	}
	if r.Count() != s.Count() || r.Epsilon() != s.Epsilon() || r.StoredCount() != s.StoredCount() {
		t.Fatalf("restored count/eps/stored = %d/%g/%d", r.Count(), r.Epsilon(), r.StoredCount())
	}
	if err := r.CheckInvariant(); err != nil {
		t.Fatalf("restored invariant: %v", err)
	}
	for _, q := range []float64{100, 2000, 3999} {
		if got, want := r.EstimateRank(q), s.EstimateRank(q); got != want {
			t.Errorf("rank(%g) = %d, want %d", q, got, want)
		}
	}
}

func TestExactBiasedRejectCorruption(t *testing.T) {
	b := exact.New()
	for i := 0; i < 20; i++ {
		b.WeightedUpdate(float64(i), 2)
	}
	pExact, err := Encode(b)
	if err != nil {
		t.Fatal(err)
	}
	s := biased.NewFloat64(0.1)
	for i := 0; i < 1_000; i++ {
		s.Update(float64(i % 101))
	}
	pBiased, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	for name, p := range map[string][]byte{"exact": pExact, "biased": pBiased} {
		t.Run(name, func(t *testing.T) {
			for cut := 1; cut < len(p); cut += 1 + len(p)/23 {
				if _, err := Decode(p[:cut]); err == nil {
					t.Fatalf("truncation at %d accepted", cut)
				}
			}
			// Wrong-kind dispatch errors cleanly in both directions.
			if _, err := DecodeExact(pBiased); err == nil || !strings.Contains(err.Error(), "want exact") {
				t.Errorf("DecodeExact on biased payload: %v", err)
			}
			if _, err := DecodeBiased(pExact); err == nil || !strings.Contains(err.Error(), "want biased") {
				t.Errorf("DecodeBiased on exact payload: %v", err)
			}
		})
	}
	if _, err := EncodeExact(nil); err == nil {
		t.Error("EncodeExact(nil) accepted")
	}
	if _, err := EncodeBiased(nil); err == nil {
		t.Error("EncodeBiased(nil) accepted")
	}
}

func TestMergeAnyReplaysExactIntoSketch(t *testing.T) {
	items := make([]float64, 0, 2_000)
	dst := gk.NewFloat64(0.02)
	for i := 0; i < 2_000; i++ {
		x := float64((i * 6151) % 997)
		dst.Update(x)
		items = append(items, x)
	}
	src := exact.New()
	for i := 0; i < 64; i++ {
		x := float64(i)
		src.WeightedUpdate(x, 3)
		items = append(items, x, x, x)
	}
	if err := CheckMergeable(dst, src); err != nil {
		t.Fatalf("CheckMergeable(sketch, exact): %v", err)
	}
	if err := MergeAny(dst, src); err != nil {
		t.Fatalf("MergeAny: %v", err)
	}
	if dst.Count() != len(items) {
		t.Fatalf("count = %d, want %d", dst.Count(), len(items))
	}
	oracle := rank.Float64Oracle(items)
	for _, phi := range []float64{0.1, 0.5, 0.9} {
		got, _ := dst.Query(phi)
		if e := oracle.RankError(got, phi); float64(e) > 0.02*float64(len(items))+1 {
			t.Errorf("phi=%g rank error %d exceeds eps after replay", phi, e)
		}
	}
}

func TestMergeAdoptingReplacesExactDst(t *testing.T) {
	dst := exact.New()
	for i := 0; i < 10; i++ {
		dst.Update(float64(i))
	}
	src := kll.NewFloat64(0.02, kll.WithSeed(3))
	for i := 0; i < 5_000; i++ {
		src.Update(float64((i * 7919) % 4001))
	}
	if err := CheckMergeable(dst, src); err != nil {
		t.Fatalf("CheckMergeable(exact, sketch): %v", err)
	}
	merged, err := MergeAdopting(dst, src)
	if err != nil {
		t.Fatalf("MergeAdopting: %v", err)
	}
	if merged != any(src) {
		t.Fatalf("MergeAdopting returned %T, want the absorbing sketch", merged)
	}
	if src.Count() != 5_010 {
		t.Fatalf("absorbed count = %d, want 5010", src.Count())
	}

	// Exact + exact merges in place and stays exact.
	a, b := exact.New(), exact.New()
	a.Update(1)
	b.WeightedUpdate(2, 4)
	merged, err = MergeAdopting(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if merged != any(a) {
		t.Fatalf("exact+exact adopted %T, want the receiver", merged)
	}
	if a.Count() != 5 {
		t.Fatalf("exact union count = %d, want 5", a.Count())
	}

	// MergeAny refuses an exact destination, pointing at MergeAdopting.
	if err := MergeAny(exact.New(), src); err == nil {
		t.Fatal("MergeAny with an exact destination should error")
	}
}

func TestBiasedMergeDispatch(t *testing.T) {
	a := biased.NewFloat64(0.05)
	b := biased.NewFloat64(0.1)
	for i := 0; i < 3_000; i++ {
		a.Update(float64(i % 251))
		b.Update(float64(i % 757))
	}
	if err := CheckMergeable(a, b); err != nil {
		t.Fatalf("CheckMergeable(biased, biased): %v", err)
	}
	if err := MergeAny(a, b); err != nil {
		t.Fatalf("MergeAny: %v", err)
	}
	if a.Count() != 6_000 {
		t.Fatalf("merged count = %d", a.Count())
	}
	// COMBINE degrades to the coarser accuracy.
	if a.Epsilon() != 0.1 {
		t.Fatalf("merged eps = %g, want 0.1", a.Epsilon())
	}
	if err := a.CheckInvariant(); err != nil {
		t.Fatalf("merged invariant: %v", err)
	}
	// Cross-family stays rejected.
	if err := CheckMergeable(biased.NewFloat64(0.1), gk.NewFloat64(0.1)); err == nil {
		t.Fatal("biased×gk accepted")
	}
}
