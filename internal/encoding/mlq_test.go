package encoding

// Round-trip and hardening tests for the MLQ kind: a decoded summary must
// answer identically to the original (the family is deterministic), keep
// merging, and the decoder must reject structurally inconsistent payloads —
// duplicate values inside a level, oversized levels below the horizon,
// oversized buffers, and weight totals that do not conserve — mirroring the
// KindStore container hardening.

import (
	"math"
	"strings"
	"testing"

	"quantilelb/internal/mlq"
	"quantilelb/internal/stream"
)

func TestMLQRoundTrip(t *testing.T) {
	gen := stream.NewGenerator(21)
	st := gen.Shuffled(30_000)
	s := mlq.NewFloat64(0.01)
	s.UpdateBatch(st.Items()[:25_000])
	for _, x := range st.Items()[25_000:] {
		s.Update(x) // leave a partially filled buffer
	}
	s.WeightedUpdate(12345.5, 321) // and a weighted buffered item
	payload, err := EncodeMLQ(s)
	if err != nil {
		t.Fatal(err)
	}
	if kind, err := DetectKind(payload); err != nil || kind != KindMLQ {
		t.Fatalf("DetectKind = %v, %v", kind, err)
	}
	restored, err := DecodeMLQ(payload)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Count() != s.Count() || restored.StoredCount() != s.StoredCount() {
		t.Fatalf("restored counts differ: %d/%d vs %d/%d",
			restored.Count(), restored.StoredCount(), s.Count(), s.StoredCount())
	}
	if restored.Epsilon() != s.Epsilon() || restored.BlockSize() != s.BlockSize() || restored.MaxLevels() != s.MaxLevels() {
		t.Errorf("restored parameters differ")
	}
	if err := restored.CheckInvariant(); err != nil {
		t.Fatalf("restored summary invariant: %v", err)
	}
	// MLQ is deterministic, so the restored summary answers identically.
	for _, phi := range []float64{0, 0.1, 0.5, 0.9, 1} {
		a, _ := s.Query(phi)
		b, _ := restored.Query(phi)
		if a != b {
			t.Errorf("phi=%v: original %v, restored %v", phi, a, b)
		}
		if s.EstimateRank(a) != restored.EstimateRank(a) {
			t.Errorf("phi=%v: EstimateRank diverges after restore", phi)
		}
	}
	// Restored summaries still merge (the coordinator use case).
	other := mlq.NewFloat64(0.01)
	other.UpdateBatch(gen.Shuffled(10_000).Items())
	if err := restored.Merge(other); err != nil {
		t.Fatalf("merge after restore: %v", err)
	}
	if restored.Count() != s.Count()+10_000 {
		t.Errorf("count after merge = %d", restored.Count())
	}
	// Round trip through the generic dispatch too.
	generic, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(generic)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := dec.(*mlq.Summary); !ok {
		t.Fatalf("generic Decode returned %T", dec)
	}
}

func TestMLQRoundTripEmptyAndDeep(t *testing.T) {
	empty := mlq.NewFloat64(0.05)
	deep := mlq.NewFloat64(0.05, mlq.WithBlockSize(64))
	for i := 0; i < 8_000; i++ {
		deep.Update(float64(i % 311))
	}
	for name, s := range map[string]*mlq.Summary{"empty": empty, "deep-cascade": deep} {
		payload, err := EncodeMLQ(s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		restored, err := DecodeMLQ(payload)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if restored.Count() != s.Count() || restored.StoredCount() != s.StoredCount() {
			t.Fatalf("%s: restored counts differ", name)
		}
		if err := restored.CheckInvariant(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// TestMLQNaNRoundTrip round-trips a NaN-bearing summary: mlq orders values
// under the NaN-first total order (like the other families), so NaN payloads
// are valid — and the restored summary must answer queries rather than hang
// in the buffer-fold path.
func TestMLQNaNRoundTrip(t *testing.T) {
	s := mlq.NewFloat64(0.05, mlq.WithBlockSize(64))
	for i := 0; i < 2_000; i++ {
		if i%17 == 0 {
			s.Update(math.NaN())
		} else {
			s.Update(float64(i % 311))
		}
	}
	s.WeightedUpdate(math.NaN(), 9) // a NaN in the weighted buffer too
	payload, err := EncodeMLQ(s)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := DecodeMLQ(payload)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Count() != s.Count() || restored.StoredCount() != s.StoredCount() {
		t.Fatalf("restored counts differ: %d/%d vs %d/%d",
			restored.Count(), restored.StoredCount(), s.Count(), s.StoredCount())
	}
	if err := restored.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	for _, phi := range []float64{0, 0.1, 0.5, 1} {
		a, _ := s.Query(phi)
		b, _ := restored.Query(phi)
		if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
			t.Errorf("phi=%v: original %v, restored %v", phi, a, b)
		}
	}
	if a, b := s.EstimateRank(math.NaN()), restored.EstimateRank(math.NaN()); a != b {
		t.Errorf("EstimateRank(NaN) diverges after restore: %d vs %d", a, b)
	}
}

// TestMLQPrunedRoundTrip encodes pruned summaries at both edge sizes: k far
// above b (the flattened summary exceeds b+1 entries, so it must sit on the
// top level, the one level Restore allows past the cap) and k = 1 (the +1/k
// degradation saturates and the recorded eps must stay inside (0,1)).
func TestMLQPrunedRoundTrip(t *testing.T) {
	for _, k := range []int{1, 500} {
		s := mlq.NewFloat64(0.05, mlq.WithBlockSize(64))
		for i := 0; i < 20_000; i++ {
			s.Update(float64((i * 6151) % 997))
		}
		s.Prune(k)
		payload, err := EncodeMLQ(s)
		if err != nil {
			t.Fatalf("Prune(%d): encode: %v", k, err)
		}
		restored, err := DecodeMLQ(payload)
		if err != nil {
			t.Fatalf("Prune(%d): decode: %v", k, err)
		}
		if restored.Count() != s.Count() || restored.StoredCount() != s.StoredCount() {
			t.Fatalf("Prune(%d): restored counts differ", k)
		}
		if restored.Epsilon() >= 1 {
			t.Fatalf("Prune(%d): restored eps %v escaped (0,1)", k, restored.Epsilon())
		}
		if err := restored.CheckInvariant(); err != nil {
			t.Fatalf("Prune(%d): %v", k, err)
		}
	}
}

// mlqPayload hand-writes an MLQ payload so tests can express states the
// encoder itself refuses to produce.
type mlqLevel struct {
	eps     float64
	entries []mlq.Entry
}

func mlqPayload(eps float64, b, maxLevels uint32, count int64, buffered []mlq.WeightedValue, levels []mlqLevel) []byte {
	w := &writer{}
	w.u32(Magic)
	w.u16(Version)
	w.u16(uint16(KindMLQ))
	w.f64(eps)
	w.u32(b)
	w.u32(maxLevels)
	w.i64(count)
	w.u32(uint32(len(buffered)))
	for _, p := range buffered {
		w.f64(p.V)
		w.i64(p.W)
	}
	w.u32(uint32(len(levels)))
	for _, lv := range levels {
		w.f64(lv.eps)
		w.u32(uint32(len(lv.entries)))
		for _, e := range lv.entries {
			w.f64(e.V)
			w.i64(e.W)
			w.i64(e.Rmin)
			w.i64(e.Rmax)
		}
	}
	return w.buf.Bytes()
}

// exactEntries builds an exact-summary entry slice over 1..n unit values.
func exactEntries(n int) []mlq.Entry {
	out := make([]mlq.Entry, n)
	for i := range out {
		out[i] = mlq.Entry{V: float64(i + 1), W: 1, Rmin: int64(i), Rmax: int64(i + 1)}
	}
	return out
}

// TestMLQDecodeRejections drives the decoder's hardening: each corrupt shape
// must produce an error naming the problem, not a summary.
func TestMLQDecodeRejections(t *testing.T) {
	cases := []struct {
		name    string
		payload []byte
		wantErr string
	}{
		{"oversized level below horizon",
			mlqPayload(0.1, 4, 4, 7, nil, []mlqLevel{{eps: 0, entries: exactEntries(7)}}),
			"entries"},
		{"duplicate values in a level",
			mlqPayload(0.1, 8, 4, 2, nil, []mlqLevel{{eps: 0, entries: []mlq.Entry{
				{V: 1, W: 1, Rmin: 0, Rmax: 1}, {V: 1, W: 1, Rmin: 1, Rmax: 2},
			}}}),
			"strictly increasing"},
		{"oversized buffer",
			mlqPayload(0.1, 4, 4, 6, []mlq.WeightedValue{{V: 1, W: 1}, {V: 2, W: 1}, {V: 3, W: 1}, {V: 4, W: 1}, {V: 5, W: 1}, {V: 6, W: 1}}, nil),
			"buffered"},
		{"non-positive buffered weight",
			mlqPayload(0.1, 8, 4, 1, []mlq.WeightedValue{{V: 1, W: 0}}, nil),
			"not positive"},
		{"count does not conserve",
			mlqPayload(0.1, 8, 4, 99, nil, []mlqLevel{{eps: 0, entries: exactEntries(3)}}),
			"count"},
		{"bad epsilon",
			mlqPayload(7, 8, 4, 0, nil, nil),
			"epsilon"},
		{"too many levels declared",
			mlqPayload(0.1, 8, 70, 0, nil, nil),
			"levels"},
		{"rank bounds narrower than weight",
			mlqPayload(0.1, 8, 4, 2, nil, []mlqLevel{{eps: 0, entries: []mlq.Entry{
				{V: 1, W: 2, Rmin: 0, Rmax: 1}, {V: 2, W: 1, Rmin: 1, Rmax: 2},
			}}}),
			"narrower"},
		// NaN equals NaN in the total order, so a repeated NaN entry is a
		// duplicate, and NaN after a finite value is out of order.
		{"duplicate NaN values in a level",
			mlqPayload(0.1, 8, 4, 2, nil, []mlqLevel{{eps: 0, entries: []mlq.Entry{
				{V: math.NaN(), W: 1, Rmin: 0, Rmax: 1}, {V: math.NaN(), W: 1, Rmin: 1, Rmax: 2},
			}}}),
			"strictly increasing"},
		{"NaN after a finite value",
			mlqPayload(0.1, 8, 4, 2, nil, []mlqLevel{{eps: 0, entries: []mlq.Entry{
				{V: 1, W: 1, Rmin: 0, Rmax: 1}, {V: math.NaN(), W: 1, Rmin: 1, Rmax: 2},
			}}}),
			"strictly increasing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := DecodeMLQ(tc.payload)
			if err == nil {
				t.Fatalf("decoded a %s payload into %v", tc.name, s)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
	// The weight-conservation case must also trip through generic Decode.
	if _, err := Decode(mlqPayload(0.1, 8, 4, 99, nil, nil)); err == nil {
		t.Fatal("generic Decode accepted a non-conserving MLQ payload")
	}
}

// TestMLQDecodeNaNPayloadUsable decodes the exact shape a hostile peer could
// ship — a NaN buffered value plus a single-entry NaN level, which the
// strictly-increasing check alone never inspects — and requires the result
// to answer queries. Before mlq adopted the NaN-first total order this
// payload decoded fine and the first Query/EstimateRank spun forever in the
// buffer fold, a remote DoS on the snapshot-merge tier; the test's own
// -timeout is the hang detector.
func TestMLQDecodeNaNPayloadUsable(t *testing.T) {
	nan := math.NaN()
	payload := mlqPayload(0.1, 8, 4, 5,
		[]mlq.WeightedValue{{V: nan, W: 2}, {V: 3, W: 1}},
		[]mlqLevel{{eps: 0, entries: []mlq.Entry{{V: nan, W: 2, Rmin: 0, Rmax: 2}}}})
	s, err := DecodeMLQ(payload)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Query(0); !ok || !math.IsNaN(v) {
		t.Fatalf("Query(0) = %v, %v; want NaN", v, ok)
	}
	if got := s.EstimateRank(nan); got != 4 {
		t.Fatalf("EstimateRank(NaN) = %d, want 4", got)
	}
	if err := s.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}
