package encoding

// Property tests of the KindDelta codec: for every family kind, the full
// base payload plus the delta base→head reconstructs the full head payload
// byte for byte (so the decoded summary answers every quantile identically
// to a direct decode of the head), across the workload shapes the matrix
// exercises, and hostile/degenerate deltas are rejected rather than applied.

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"quantilelb/internal/gk"
	"quantilelb/internal/kll"
	"quantilelb/internal/mlq"
	"quantilelb/internal/mrl"
	"quantilelb/internal/req"
	"quantilelb/internal/sampling"
	"quantilelb/internal/stream"
	"quantilelb/internal/summary"
	"quantilelb/internal/window"
)

// deltaFamily builds one summary kind incrementally: New yields a fresh
// summary, Ingest advances it, and Encode serializes it.
type deltaFamily struct {
	name   string
	new    func() any
	ingest func(s any, items []float64)
}

func deltaFamilies() []deltaFamily {
	return []deltaFamily{
		{"gk", func() any { return gk.NewFloat64(0.02) },
			func(s any, items []float64) { s.(*gk.Summary[float64]).UpdateBatch(items) }},
		{"kll", func() any { return kll.NewFloat64(0.02, kll.WithSeed(7)) },
			func(s any, items []float64) { s.(*kll.Sketch[float64]).UpdateBatch(items) }},
		{"mrl", func() any { return mrl.NewFloat64(0.02, 200_000) },
			func(s any, items []float64) { s.(*mrl.Summary[float64]).UpdateBatch(items) }},
		{"reservoir", func() any { return sampling.NewFloat64(0.05, 0.05, 11) },
			func(s any, items []float64) { s.(*sampling.Reservoir[float64]).UpdateBatch(items) }},
		{"window", func() any { return window.NewFloat64(0.02, 4096) },
			func(s any, items []float64) {
				w := s.(*window.Summary[float64])
				for _, x := range items {
					w.Update(x)
				}
			}},
		{"mlq", func() any { return mlq.NewFloat64(0.02) },
			func(s any, items []float64) { s.(*mlq.Summary).UpdateBatch(items) }},
		{"req", func() any { return req.NewFloat64(0.02) },
			func(s any, items []float64) { s.(*req.Summary).UpdateBatch(items) }},
	}
}

// deltaWorkloads are the stream shapes the round trip is proven over: the
// incremental-ingest regime the cluster tier actually ships deltas for.
func deltaWorkloads(t *testing.T, n int) []*stream.Stream {
	t.Helper()
	gen := stream.NewGenerator(42)
	out := []*stream.Stream{gen.Shuffled(n), gen.Sorted(n), gen.Duplicates(n, 17), gen.Drift(n)}
	return out
}

// TestDeltaRoundTripAllKinds: full(base) + delta(base→head) == full(head),
// byte for byte, for every family kind and workload; and the reconstruction
// decodes to a summary whose quantile answers match a direct decode of head.
func TestDeltaRoundTripAllKinds(t *testing.T) {
	const n = 6000
	for _, fam := range deltaFamilies() {
		for _, wl := range deltaWorkloads(t, n) {
			t.Run(fmt.Sprintf("%s/%s", fam.name, wl.Name()), func(t *testing.T) {
				s := fam.new()
				items := wl.Items()
				fam.ingest(s, items[:n*3/4])
				base, err := Encode(s)
				if err != nil {
					t.Fatalf("encoding base: %v", err)
				}
				fam.ingest(s, items[n*3/4:])
				head, err := Encode(s)
				if err != nil {
					t.Fatalf("encoding head: %v", err)
				}

				delta, err := EncodeDelta(base, head)
				if err != nil {
					t.Fatalf("EncodeDelta: %v", err)
				}
				if kind, err := DetectKind(delta); err != nil || kind != KindDelta {
					t.Fatalf("DetectKind(delta) = %v, %v", kind, err)
				}
				hdr, err := DecodeDeltaHeader(delta)
				if err != nil {
					t.Fatalf("DecodeDeltaHeader: %v", err)
				}
				if hdr.BaseHash != PayloadHash(base) || hdr.HeadHash != PayloadHash(head) || hdr.HeadLen != len(head) {
					t.Fatalf("header %+v does not describe base/head", hdr)
				}

				rebuilt, err := ApplyDelta(base, delta)
				if err != nil {
					t.Fatalf("ApplyDelta: %v", err)
				}
				if !bytes.Equal(rebuilt, head) {
					t.Fatalf("reconstruction differs from head (%d vs %d bytes)", len(rebuilt), len(head))
				}

				// Byte equality already implies identical answers; decode both
				// anyway so a regression in Decode's handling of reconstructed
				// payloads cannot hide behind the equality check.
				a, err := Decode(rebuilt)
				if err != nil {
					t.Fatalf("decoding reconstruction: %v", err)
				}
				b, err := Decode(head)
				if err != nil {
					t.Fatalf("decoding head: %v", err)
				}
				qa := a.(summary.Summary[float64])
				qb := b.(summary.Summary[float64])
				for _, phi := range []float64{0, 0.25, 0.5, 0.9, 0.999, 1} {
					va, oka := qa.Query(phi)
					vb, okb := qb.Query(phi)
					if oka != okb || va != vb {
						t.Errorf("phi=%v: reconstructed answers %v,%v vs head %v,%v", phi, va, oka, vb, okb)
					}
				}
			})
		}
	}
}

// TestDeltaRoundTripMutatedStates covers the states incremental ingest alone
// does not reach: NaN-bearing streams, merged summaries, and pruned
// summaries — the snapshot lineage a combiner actually re-exports.
func TestDeltaRoundTripMutatedStates(t *testing.T) {
	gen := stream.NewGenerator(9)
	items := gen.Shuffled(4000).Items()

	cases := []struct {
		name string
		base func() any
		head func(base any) any
	}{
		{"mlq-nan", func() any {
			s := mlq.NewFloat64(0.02)
			s.UpdateBatch(items[:3000])
			s.Update(math.NaN())
			return s
		}, func(b any) any {
			s := b.(*mlq.Summary)
			s.UpdateBatch(items[3000:])
			s.Update(math.NaN())
			return s
		}},
		{"req-pruned", func() any {
			s := req.NewFloat64(0.02)
			s.UpdateBatch(items[:3000])
			return s
		}, func(b any) any {
			s := b.(*req.Summary)
			s.UpdateBatch(items[3000:])
			s.Prune(64)
			return s
		}},
		{"gk-merged", func() any {
			s := gk.NewFloat64(0.02)
			s.UpdateBatch(items[:2000])
			return s
		}, func(b any) any {
			s := b.(*gk.Summary[float64])
			other := gk.NewFloat64(0.02)
			other.UpdateBatch(items[2000:])
			if err := s.Merge(other); err != nil {
				t.Fatalf("merge: %v", err)
			}
			return s
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.base()
			base, err := Encode(s)
			if err != nil {
				t.Fatalf("encoding base: %v", err)
			}
			head, err := Encode(tc.head(s))
			if err != nil {
				t.Fatalf("encoding head: %v", err)
			}
			delta, err := EncodeDelta(base, head)
			if err != nil {
				t.Fatalf("EncodeDelta: %v", err)
			}
			rebuilt, err := ApplyDelta(base, delta)
			if err != nil {
				t.Fatalf("ApplyDelta: %v", err)
			}
			if !bytes.Equal(rebuilt, head) {
				t.Fatalf("reconstruction differs from head")
			}
		})
	}
}

// TestDeltaStoreContainer: the codec is family-agnostic, so whole KindStore
// containers (the keyed tier's snapshot) delta the same way.
func TestDeltaStoreContainer(t *testing.T) {
	gen := stream.NewGenerator(3)
	items := gen.Shuffled(2000).Items()
	mk := func(n int) []byte {
		g := gk.NewFloat64(0.05)
		g.UpdateBatch(items[:n])
		p1, err := EncodeGK(g)
		if err != nil {
			t.Fatal(err)
		}
		payload, err := EncodeStore([]KeyedPayload{{Key: "a", Payload: p1}, {Key: "b", Payload: p1}})
		if err != nil {
			t.Fatal(err)
		}
		return payload
	}
	base, head := mk(1500), mk(2000)
	delta, err := EncodeDelta(base, head)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := ApplyDelta(base, delta)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rebuilt, head) {
		t.Fatal("store container delta reconstruction differs")
	}
}

// TestDeltaSavesBytesOnIncrementalIngest pins the reason the format exists:
// a small ingest round on a large summary must delta to a fraction of the
// full payload.
func TestDeltaSavesBytesOnIncrementalIngest(t *testing.T) {
	gen := stream.NewGenerator(12)
	items := gen.Shuffled(60_000).Items()
	s := mlq.NewFloat64(0.005)
	s.UpdateBatch(items[:59_000])
	base, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	s.UpdateBatch(items[59_000:59_200])
	head, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	delta, err := EncodeDelta(base, head)
	if err != nil {
		t.Fatal(err)
	}
	if len(delta) >= len(head)/2 {
		t.Fatalf("delta of a 200-item round is %d bytes vs %d full — not incremental", len(delta), len(head))
	}
	if rebuilt, err := ApplyDelta(base, delta); err != nil || !bytes.Equal(rebuilt, head) {
		t.Fatalf("reconstruction failed: %v", err)
	}
}

// TestDeltaRejections: hostile and stale inputs must error, never
// reconstruct silently wrong bytes.
func TestDeltaRejections(t *testing.T) {
	gen := stream.NewGenerator(8)
	s := gk.NewFloat64(0.05)
	s.UpdateBatch(gen.Shuffled(3000).Items())
	base, _ := EncodeGK(s)
	s.UpdateBatch(gen.Shuffled(500).Items())
	head, _ := EncodeGK(s)
	delta, err := EncodeDelta(base, head)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("wrong base", func(t *testing.T) {
		other := gk.NewFloat64(0.05)
		other.UpdateBatch(gen.Shuffled(100).Items())
		wrong, _ := EncodeGK(other)
		if _, err := ApplyDelta(wrong, delta); err != ErrDeltaBaseMismatch {
			t.Fatalf("ApplyDelta(wrong base) = %v, want ErrDeltaBaseMismatch", err)
		}
	})
	t.Run("not a delta", func(t *testing.T) {
		if _, err := ApplyDelta(base, head); err == nil {
			t.Fatal("ApplyDelta accepted a full payload as a delta")
		}
	})
	t.Run("decode refuses containers", func(t *testing.T) {
		if _, err := Decode(delta); err == nil {
			t.Fatal("Decode accepted a KindDelta container")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for cut := 1; cut < len(delta); cut += 7 {
			if _, err := ApplyDelta(base, delta[:cut]); err == nil {
				t.Fatalf("ApplyDelta accepted a delta truncated to %d bytes", cut)
			}
		}
	})
	t.Run("bit flips", func(t *testing.T) {
		for i := 8; i < len(delta); i += 11 {
			mut := bytes.Clone(delta)
			mut[i] ^= 0x40
			out, err := ApplyDelta(base, mut)
			if err == nil && !bytes.Equal(out, head) {
				t.Fatalf("bit flip at %d reconstructed wrong bytes without error", i)
			}
		}
	})
	t.Run("oversized head declaration", func(t *testing.T) {
		mut := bytes.Clone(delta)
		// headLen lives at offset 8 (header) + 16 (hashes).
		for i := 24; i < 28; i++ {
			mut[i] = 0xff
		}
		if _, err := ApplyDelta(base, mut); err == nil {
			t.Fatal("ApplyDelta accepted a delta declaring a 4GiB payload")
		}
	})
}
