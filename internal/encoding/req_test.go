package encoding

// Round-trip and hardening tests for the REQ kind: a decoded summary must
// answer identically to the original (the family is deterministic), keep
// merging, and the decoder must reject structurally inconsistent payloads —
// out-of-order entries, inexact extreme entries, oversized buffers, and
// weight totals that do not conserve — mirroring the MLQ hardening. Every
// state reachable through the public API round-trips: plain, buffered,
// weighted, NaN-bearing, merged, and pruned.

import (
	"math"
	"strings"
	"testing"

	"quantilelb/internal/req"
	"quantilelb/internal/stream"
)

func TestREQRoundTrip(t *testing.T) {
	gen := stream.NewGenerator(23)
	st := gen.Shuffled(30_000)
	s := req.NewFloat64(0.01)
	s.UpdateBatch(st.Items()[:25_000])
	for _, x := range st.Items()[25_000:] {
		s.Update(x) // leave a partially filled buffer
	}
	s.WeightedUpdate(12345.5, 321) // and a weighted buffered item
	payload, err := EncodeREQ(s)
	if err != nil {
		t.Fatal(err)
	}
	if kind, err := DetectKind(payload); err != nil || kind != KindREQ {
		t.Fatalf("DetectKind = %v, %v", kind, err)
	}
	restored, err := DecodeREQ(payload)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Count() != s.Count() || restored.StoredCount() != s.StoredCount() {
		t.Fatalf("restored counts differ: %d/%d vs %d/%d",
			restored.Count(), restored.StoredCount(), s.Count(), s.StoredCount())
	}
	if restored.Epsilon() != s.Epsilon() || restored.BufferSize() != s.BufferSize() {
		t.Errorf("restored parameters differ")
	}
	if err := restored.CheckInvariant(); err != nil {
		t.Fatalf("restored summary invariant: %v", err)
	}
	// REQ is deterministic, so the restored summary answers identically.
	for _, phi := range []float64{0, 0.1, 0.5, 0.9, 0.999, 1} {
		a, _ := s.Query(phi)
		b, _ := restored.Query(phi)
		if a != b {
			t.Errorf("phi=%v: original %v, restored %v", phi, a, b)
		}
		if s.EstimateRank(a) != restored.EstimateRank(a) {
			t.Errorf("phi=%v: EstimateRank diverges after restore", phi)
		}
	}
	// Restored summaries still merge (the coordinator use case) — with any
	// other req summary, since the merge is a free COMBINE.
	other := req.NewFloat64(0.02)
	other.UpdateBatch(gen.Shuffled(10_000).Items())
	if err := restored.Merge(other); err != nil {
		t.Fatalf("merge after restore: %v", err)
	}
	if restored.Count() != s.Count()+10_000 {
		t.Errorf("count after merge = %d", restored.Count())
	}
	if restored.Epsilon() != 0.02 {
		t.Errorf("merge eps = %v, want the max 0.02", restored.Epsilon())
	}
	// Round trip through the generic dispatch too.
	generic, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(generic)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := dec.(*req.Summary); !ok {
		t.Fatalf("generic Decode returned %T", dec)
	}
}

// TestREQRoundTripReachableStates walks every state the public API can
// produce — empty, buffer-only, folded, deeply compacted, merged, pruned, and
// pruned-to-one — and requires each to survive the wire unchanged.
func TestREQRoundTripReachableStates(t *testing.T) {
	gen := stream.NewGenerator(29)
	build := map[string]func() *req.Summary{
		"empty": func() *req.Summary { return req.NewFloat64(0.05) },
		"buffer-only": func() *req.Summary {
			s := req.NewFloat64(0.05)
			for i := 0; i < 10; i++ {
				s.Update(float64(i))
			}
			return s
		},
		"folded": func() *req.Summary {
			s := req.NewFloat64(0.05)
			s.UpdateBatch(gen.Shuffled(20_000).Items())
			return s
		},
		"merged": func() *req.Summary {
			a := req.NewFloat64(0.05)
			a.UpdateBatch(gen.Zipf(8_000, 1.2, 16).Items())
			b := req.NewFloat64(0.02)
			b.UpdateBatch(gen.Sorted(8_000).Items())
			if err := a.Merge(b); err != nil {
				t.Fatal(err)
			}
			return a
		},
		"pruned": func() *req.Summary {
			s := req.NewFloat64(0.02)
			s.UpdateBatch(gen.Shuffled(20_000).Items())
			s.Prune(50)
			return s
		},
		"pruned-to-one": func() *req.Summary {
			s := req.NewFloat64(0.02)
			s.UpdateBatch(gen.Shuffled(20_000).Items())
			s.Prune(1)
			return s
		},
	}
	for name, mk := range build {
		s := mk()
		payload, err := EncodeREQ(s)
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		restored, err := DecodeREQ(payload)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if restored.Count() != s.Count() || restored.StoredCount() != s.StoredCount() {
			t.Fatalf("%s: restored counts differ", name)
		}
		if restored.Epsilon() != s.Epsilon() {
			t.Fatalf("%s: restored eps %v, want %v", name, restored.Epsilon(), s.Epsilon())
		}
		if err := restored.CheckInvariant(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, phi := range []float64{0, 0.5, 0.9999, 1} {
			a, aok := s.Query(phi)
			b, bok := restored.Query(phi)
			if aok != bok || a != b {
				t.Fatalf("%s: phi=%v: original %v,%v restored %v,%v", name, phi, a, aok, b, bok)
			}
		}
	}
}

// TestREQNaNRoundTrip round-trips a NaN-bearing summary: req orders values
// under the NaN-first total order, so NaN payloads are valid — and the
// restored summary must answer queries rather than misbehave in the fold.
func TestREQNaNRoundTrip(t *testing.T) {
	s := req.NewFloat64(0.05)
	for i := 0; i < 2_000; i++ {
		if i%17 == 0 {
			s.Update(math.NaN())
		} else {
			s.Update(float64(i % 311))
		}
	}
	s.WeightedUpdate(math.NaN(), 9) // a NaN in the weighted buffer too
	payload, err := EncodeREQ(s)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := DecodeREQ(payload)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Count() != s.Count() || restored.StoredCount() != s.StoredCount() {
		t.Fatalf("restored counts differ: %d/%d vs %d/%d",
			restored.Count(), restored.StoredCount(), s.Count(), s.StoredCount())
	}
	if err := restored.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	for _, phi := range []float64{0, 0.1, 0.5, 1} {
		a, _ := s.Query(phi)
		b, _ := restored.Query(phi)
		if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
			t.Errorf("phi=%v: original %v, restored %v", phi, a, b)
		}
	}
	if a, b := s.EstimateRank(math.NaN()), restored.EstimateRank(math.NaN()); a != b {
		t.Errorf("EstimateRank(NaN) diverges after restore: %d vs %d", a, b)
	}
}

// reqPayload hand-writes a REQ payload so tests can express states the
// encoder itself refuses to produce.
func reqPayload(eps float64, b uint32, count int64, buffered []req.WeightedValue, entries []req.Entry) []byte {
	w := &writer{}
	w.u32(Magic)
	w.u16(Version)
	w.u16(uint16(KindREQ))
	w.f64(eps)
	w.u32(b)
	w.i64(count)
	w.u32(uint32(len(buffered)))
	for _, p := range buffered {
		w.f64(p.V)
		w.i64(p.W)
	}
	w.u32(uint32(len(entries)))
	for _, e := range entries {
		w.f64(e.V)
		w.i64(e.W)
		w.i64(e.Rmin)
		w.i64(e.Rmax)
	}
	return w.buf.Bytes()
}

// reqExactEntries builds an exact-summary entry slice over 1..n unit values.
func reqExactEntries(n int) []req.Entry {
	out := make([]req.Entry, n)
	for i := range out {
		out[i] = req.Entry{V: float64(i + 1), W: 1, Rmin: int64(i), Rmax: int64(i + 1)}
	}
	return out
}

// TestREQDecodeRejections drives the decoder's hardening: each corrupt shape
// must produce an error naming the problem, not a summary.
func TestREQDecodeRejections(t *testing.T) {
	cases := []struct {
		name    string
		payload []byte
		wantErr string
	}{
		{"oversized buffer",
			reqPayload(0.1, 2, 3, []req.WeightedValue{{V: 1, W: 1}, {V: 2, W: 1}, {V: 3, W: 1}}, nil),
			"buffered"},
		{"non-positive buffered weight",
			reqPayload(0.1, 8, 1, []req.WeightedValue{{V: 1, W: 0}}, nil),
			"not positive"},
		{"count does not conserve",
			reqPayload(0.1, 8, 99, nil, reqExactEntries(3)),
			"count"},
		{"bad epsilon",
			reqPayload(7, 8, 0, nil, nil),
			"epsilon"},
		{"tiny buffer size",
			reqPayload(0.1, 1, 0, nil, nil),
			"REQ payload"},
		{"duplicate values",
			reqPayload(0.1, 8, 2, nil, []req.Entry{
				{V: 1, W: 1, Rmin: 0, Rmax: 1}, {V: 1, W: 1, Rmin: 1, Rmax: 2},
			}),
			"strictly increasing"},
		{"rank bounds narrower than weight",
			reqPayload(0.1, 8, 4, nil, []req.Entry{
				{V: 1, W: 1, Rmin: 0, Rmax: 1},
				{V: 2, W: 2, Rmin: 1, Rmax: 2},
				{V: 3, W: 1, Rmin: 3, Rmax: 4},
			}),
			"narrower"},
		{"first entry not exact",
			reqPayload(0.1, 8, 3, nil, []req.Entry{
				{V: 1, W: 1, Rmin: 0, Rmax: 2}, {V: 2, W: 1, Rmin: 2, Rmax: 3},
			}),
			"first entry"},
		{"last entry not exact",
			reqPayload(0.1, 8, 3, nil, []req.Entry{
				{V: 1, W: 1, Rmin: 0, Rmax: 1}, {V: 2, W: 1, Rmin: 1, Rmax: 3},
			}),
			"last entry"},
		{"first Rmin nonzero",
			reqPayload(0.1, 8, 2, nil, []req.Entry{
				{V: 1, W: 1, Rmin: 1, Rmax: 2}, {V: 2, W: 1, Rmin: 1, Rmax: 2},
			}),
			"first Rmin"},
		// NaN equals NaN in the total order, so a repeated NaN entry is a
		// duplicate, and NaN after a finite value is out of order.
		{"duplicate NaN values",
			reqPayload(0.1, 8, 2, nil, []req.Entry{
				{V: math.NaN(), W: 1, Rmin: 0, Rmax: 1}, {V: math.NaN(), W: 1, Rmin: 1, Rmax: 2},
			}),
			"strictly increasing"},
		{"NaN after a finite value",
			reqPayload(0.1, 8, 2, nil, []req.Entry{
				{V: 1, W: 1, Rmin: 0, Rmax: 1}, {V: math.NaN(), W: 1, Rmin: 1, Rmax: 2},
			}),
			"strictly increasing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := DecodeREQ(tc.payload)
			if err == nil {
				t.Fatalf("decoded a %s payload into %v", tc.name, s)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
	// The weight-conservation case must also trip through generic Decode.
	if _, err := Decode(reqPayload(0.1, 8, 99, nil, nil)); err == nil {
		t.Fatal("generic Decode accepted a non-conserving REQ payload")
	}
}

// TestREQDecodeNaNPayloadUsable decodes the shape a hostile peer could ship —
// a NaN buffered value plus a single NaN entry, which the strictly-increasing
// check alone never inspects — and requires the result to answer queries
// under the NaN-first total order (the lesson the MLQ tier learned the hard
// way).
func TestREQDecodeNaNPayloadUsable(t *testing.T) {
	nan := math.NaN()
	payload := reqPayload(0.1, 8, 5,
		[]req.WeightedValue{{V: nan, W: 2}, {V: 3, W: 1}},
		[]req.Entry{{V: nan, W: 2, Rmin: 0, Rmax: 2}})
	s, err := DecodeREQ(payload)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Query(0); !ok || !math.IsNaN(v) {
		t.Fatalf("Query(0) = %v, %v; want NaN", v, ok)
	}
	if got := s.EstimateRank(nan); got != 4 {
		t.Fatalf("EstimateRank(NaN) = %d, want 4", got)
	}
	if err := s.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

// TestREQWrongKind pins the kind check: a payload of another family must not
// decode as REQ and vice versa.
func TestREQWrongKind(t *testing.T) {
	s := req.NewFloat64(0.05)
	s.Update(1)
	payload, err := EncodeREQ(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeMLQ(payload); err == nil {
		t.Fatal("DecodeMLQ accepted a REQ payload")
	}
	if _, err := DecodeGK(payload); err == nil {
		t.Fatal("DecodeGK accepted a REQ payload")
	}
}
