package encoding

// Tests for the generic Encode/Decode dispatchers and the KindWindow codec
// that completes the facade-family coverage.

import (
	"testing"

	"quantilelb/internal/gk"
	"quantilelb/internal/kll"
	"quantilelb/internal/mrl"
	"quantilelb/internal/sampling"
	"quantilelb/internal/stream"
	"quantilelb/internal/window"
)

// TestWindowRoundTrip: a sliding-window summary round-trips through the
// KindWindow payload, answering identically and continuing to expire.
func TestWindowRoundTrip(t *testing.T) {
	gen := stream.NewGenerator(9)
	st := gen.Shuffled(10_000)
	s := window.NewFloat64(0.05, 1_000)
	for _, x := range st.Items() {
		s.Update(x)
	}
	payload, err := EncodeWindow(s)
	if err != nil {
		t.Fatal(err)
	}
	if kind, err := DetectKind(payload); err != nil || kind != KindWindow {
		t.Fatalf("DetectKind = %v, %v", kind, err)
	}
	restored, err := DecodeWindow(payload)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Count() != s.Count() || restored.TotalSeen() != s.TotalSeen() ||
		restored.StoredCount() != s.StoredCount() || restored.Blocks() != s.Blocks() {
		t.Fatalf("restored counters differ")
	}
	if restored.Epsilon() != s.Epsilon() || restored.WindowLen() != s.WindowLen() {
		t.Errorf("restored parameters differ")
	}
	for g := 0; g <= 20; g++ {
		phi := float64(g) / 20
		want, _ := s.Query(phi)
		got, _ := restored.Query(phi)
		if want != got {
			t.Fatalf("phi=%g: restored answers %g, original %g", phi, got, want)
		}
	}
	// The restored summary must keep ingesting and expiring.
	for i := 0; i < 2_000; i++ {
		restored.Update(float64(i))
	}
	if err := restored.CheckInvariant(); err != nil {
		t.Fatalf("restored summary after more updates: %v", err)
	}
}

// TestGenericEncodeDecodeAllKinds: every supported family dispatches through
// Encode and comes back as the same concrete type with the same state.
func TestGenericEncodeDecodeAllKinds(t *testing.T) {
	gen := stream.NewGenerator(10)
	items := gen.Shuffled(5_000).Items()

	gkS := gk.NewFloat64(0.01)
	kllS := kll.NewFloat64(0.01, kll.WithSeed(1))
	mrlS := mrl.NewFloat64(0.01, 100_000)
	resS := sampling.NewFloat64(0.05, 0.01, 1)
	winS := window.NewFloat64(0.05, 1_000)
	for _, x := range items {
		gkS.Update(x)
		kllS.Update(x)
		mrlS.Update(x)
		resS.Update(x)
		winS.Update(x)
	}

	cases := []struct {
		name string
		sum  any
		kind Kind
	}{
		{"gk", gkS, KindGK},
		{"kll", kllS, KindKLL},
		{"mrl", mrlS, KindMRL},
		{"reservoir", resS, KindReservoir},
		{"window", winS, KindWindow},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			payload, err := Encode(tc.sum)
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			if kind, _ := DetectKind(payload); kind != tc.kind {
				t.Fatalf("DetectKind = %v, want %v", kind, tc.kind)
			}
			dec, err := Decode(payload)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			type counted interface {
				Count() int
				Query(float64) (float64, bool)
			}
			want := tc.sum.(counted)
			got, ok := dec.(counted)
			if !ok {
				t.Fatalf("decoded %T is not a summary", dec)
			}
			if got.Count() != want.Count() {
				t.Fatalf("decoded count %d, want %d", got.Count(), want.Count())
			}
			wm, _ := want.Query(0.5)
			gm, _ := got.Query(0.5)
			if wm != gm {
				t.Errorf("decoded median %g, want %g", gm, wm)
			}
		})
	}
}

// TestGenericEncodeRejectsUnsupported: the dispatcher must name the type it
// cannot handle instead of panicking or silently writing garbage.
func TestGenericEncodeRejectsUnsupported(t *testing.T) {
	if _, err := Encode(42); err == nil {
		t.Error("Encode(int) should fail")
	}
	if _, err := Encode(nil); err == nil {
		t.Error("Encode(nil) should fail")
	}
}

// TestKindString pins the names the cluster tier reports in peer status.
func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KindGK:        "gk",
		KindKLL:       "kll",
		KindMRL:       "mrl",
		KindReservoir: "reservoir",
		KindWindow:    "window",
		Kind(99):      "kind(99)",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", uint16(k), k.String(), s)
		}
	}
}
