package encoding

// KindREQ is the wire format of the relative-error summary (internal/req):
// the construction parameters (eps, ingest buffer size b), the total weight,
// the buffered not-yet-folded items as (value, weight) pairs, and the sorted
// entry list — value, weight, and the Rmin/Rmax rank bounds, 32 bytes per
// entry. Every length prefix is guarded by need() like the other kinds, and
// req.Restore re-validates the decoded structure (sortedness, bound
// consistency, exact first/last entries, weight conservation) so a corrupt
// payload is rejected rather than revived into an inconsistent summary.

import (
	"errors"
	"fmt"

	"quantilelb/internal/req"
)

// EncodeREQ serializes a relative-error summary.
func EncodeREQ(s *req.Summary) ([]byte, error) {
	if s == nil {
		return nil, errors.New("encoding: nil summary")
	}
	w := &writer{}
	w.u32(Magic)
	w.u16(Version)
	w.u16(uint16(KindREQ))
	w.f64(s.Epsilon())
	w.u32(uint32(s.BufferSize()))
	w.i64(int64(s.Count()))
	buffered := s.Buffered()
	w.u32(uint32(len(buffered)))
	for _, p := range buffered {
		w.f64(p.V)
		w.i64(p.W)
	}
	entries := s.Entries()
	w.u32(uint32(len(entries)))
	for _, e := range entries {
		w.f64(e.V)
		w.i64(e.W)
		w.i64(e.Rmin)
		w.i64(e.Rmax)
	}
	return w.buf.Bytes(), w.err
}

// DecodeREQ reconstructs a relative-error summary, validating the payload
// both structurally (length guards, buffer cap) and semantically
// (req.Restore's invariant checks, including exactness of the extreme
// entries and total-weight conservation against the recorded count).
func DecodeREQ(payload []byte) (*req.Summary, error) {
	r, kind, err := openPayload(payload)
	if err != nil {
		return nil, err
	}
	if kind != KindREQ {
		return nil, fmt.Errorf("encoding: payload holds kind %d, want REQ (%d)", kind, KindREQ)
	}
	eps := r.f64()
	b := r.u32()
	count := r.i64()
	numBuffered := r.u32()
	if r.err != nil {
		return nil, fmt.Errorf("encoding: truncated REQ header: %w", r.err)
	}
	if count < 0 || b < 2 || numBuffered > b {
		return nil, fmt.Errorf("encoding: inconsistent REQ payload (n=%d, b=%d, buffered=%d)", count, b, numBuffered)
	}
	if !r.need(int64(numBuffered) * 16) {
		return nil, fmt.Errorf("encoding: truncated REQ buffer: %w", r.err)
	}
	buffered := make([]req.WeightedValue, numBuffered)
	for i := range buffered {
		buffered[i] = req.WeightedValue{V: r.f64(), W: r.i64()}
	}
	numEntries := r.u32()
	if r.err != nil {
		return nil, fmt.Errorf("encoding: truncated REQ entry count: %w", r.err)
	}
	if !r.need(int64(numEntries) * 32) {
		return nil, fmt.Errorf("encoding: truncated REQ entries: %w", r.err)
	}
	entries := make([]req.Entry, numEntries)
	for i := range entries {
		entries[i] = req.Entry{V: r.f64(), W: r.i64(), Rmin: r.i64(), Rmax: r.i64()}
	}
	if r.err != nil {
		return nil, fmt.Errorf("encoding: truncated REQ payload: %w", r.err)
	}
	s, err := req.Restore(eps, int(b), buffered, entries)
	if err != nil {
		return nil, fmt.Errorf("encoding: %w", err)
	}
	if int64(s.Count()) != count {
		return nil, fmt.Errorf("encoding: REQ payload count %d does not match restored weight %d", count, s.Count())
	}
	return s, nil
}
