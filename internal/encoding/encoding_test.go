package encoding

import (
	"testing"
	"testing/quick"

	"quantilelb/internal/gk"
	"quantilelb/internal/kll"
	"quantilelb/internal/rank"
	"quantilelb/internal/stream"
)

func TestGKRoundTrip(t *testing.T) {
	gen := stream.NewGenerator(1)
	st := gen.Uniform(50000)
	eps := 0.01
	s := gk.NewFloat64(eps)
	for _, x := range st.Items() {
		s.Update(x)
	}
	payload, err := EncodeGK(s)
	if err != nil {
		t.Fatal(err)
	}
	if kind, err := DetectKind(payload); err != nil || kind != KindGK {
		t.Fatalf("DetectKind = %v, %v", kind, err)
	}
	restored, err := DecodeGK(payload)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Count() != s.Count() || restored.StoredCount() != s.StoredCount() {
		t.Fatalf("restored counts differ: %d/%d vs %d/%d",
			restored.Count(), restored.StoredCount(), s.Count(), s.StoredCount())
	}
	if restored.Epsilon() != eps || restored.PolicyUsed() != s.PolicyUsed() {
		t.Errorf("restored parameters differ")
	}
	// The restored summary answers queries identically.
	for _, phi := range []float64{0, 0.1, 0.5, 0.9, 1} {
		a, _ := s.Query(phi)
		b, _ := restored.Query(phi)
		if a != b {
			t.Errorf("phi=%v: original %v, restored %v", phi, a, b)
		}
	}
	// And it keeps working: continue the stream on the restored copy.
	oracle := rank.Float64Oracle(st.Items())
	more := gen.Uniform(10000)
	all := append(append([]float64(nil), st.Items()...), more.Items()...)
	for _, x := range more.Items() {
		restored.Update(x)
	}
	oracle = rank.Float64Oracle(all)
	for _, phi := range []float64{0.1, 0.5, 0.9} {
		got, _ := restored.Query(phi)
		if e := oracle.RankError(got, phi); float64(e) > eps*float64(len(all))+1 {
			t.Errorf("restored summary inaccurate after further updates at phi=%v: err %d", phi, e)
		}
	}
}

func TestKLLRoundTrip(t *testing.T) {
	gen := stream.NewGenerator(2)
	st := gen.Gaussian(60000, 10, 3)
	s := kll.NewFloat64(0.01, kll.WithSeed(5))
	for _, x := range st.Items() {
		s.Update(x)
	}
	payload, err := EncodeKLL(s)
	if err != nil {
		t.Fatal(err)
	}
	if kind, err := DetectKind(payload); err != nil || kind != KindKLL {
		t.Fatalf("DetectKind = %v, %v", kind, err)
	}
	restored, err := DecodeKLL(payload)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Count() != s.Count() || restored.StoredCount() != s.StoredCount() {
		t.Fatalf("restored counts differ")
	}
	if err := restored.CheckInvariant(); err != nil {
		t.Fatalf("restored sketch invariant: %v", err)
	}
	for _, phi := range []float64{0, 0.25, 0.5, 0.75, 1} {
		a, _ := s.Query(phi)
		b, _ := restored.Query(phi)
		if a != b {
			t.Errorf("phi=%v: original %v, restored %v", phi, a, b)
		}
	}
	// Restored sketches still merge.
	other := kll.NewFloat64(0.01, kll.WithSeed(9))
	for _, x := range gen.Gaussian(20000, 10, 3).Items() {
		other.Update(x)
	}
	if err := restored.Merge(other); err != nil {
		t.Fatalf("merge after restore: %v", err)
	}
	if restored.Count() != 80000 {
		t.Errorf("count after merge = %d", restored.Count())
	}
}

func TestEncodeNil(t *testing.T) {
	if _, err := EncodeGK(nil); err == nil {
		t.Errorf("nil GK should error")
	}
	if _, err := EncodeKLL(nil); err == nil {
		t.Errorf("nil KLL should error")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{1, 2, 3},
		[]byte("definitely not a summary payload"),
	}
	for _, payload := range cases {
		if _, err := DecodeGK(payload); err == nil {
			t.Errorf("DecodeGK accepted garbage %v", payload)
		}
		if _, err := DecodeKLL(payload); err == nil {
			t.Errorf("DecodeKLL accepted garbage %v", payload)
		}
		if _, err := DetectKind(payload); err == nil {
			t.Errorf("DetectKind accepted garbage %v", payload)
		}
	}
}

func TestDecodeRejectsWrongKind(t *testing.T) {
	s := gk.NewFloat64(0.1)
	s.Update(1)
	payload, err := EncodeGK(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeKLL(payload); err == nil {
		t.Errorf("DecodeKLL should reject a GK payload")
	}
	k := kll.NewFloat64(0.1)
	k.Update(1)
	payload2, err := EncodeKLL(k)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeGK(payload2); err == nil {
		t.Errorf("DecodeGK should reject a KLL payload")
	}
}

func TestDecodeRejectsTruncated(t *testing.T) {
	gen := stream.NewGenerator(3)
	s := gk.NewFloat64(0.05)
	for _, x := range gen.Uniform(1000).Items() {
		s.Update(x)
	}
	payload, err := EncodeGK(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{len(payload) / 2, len(payload) - 3, 9} {
		if _, err := DecodeGK(payload[:cut]); err == nil {
			t.Errorf("truncated payload (len %d) accepted", cut)
		}
	}
	k := kll.NewFloat64(0.05)
	for _, x := range gen.Uniform(1000).Items() {
		k.Update(x)
	}
	payload2, err := EncodeKLL(k)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{len(payload2) / 2, len(payload2) - 3, 9} {
		if _, err := DecodeKLL(payload2[:cut]); err == nil {
			t.Errorf("truncated KLL payload (len %d) accepted", cut)
		}
	}
}

func TestDecodeRejectsCorruptedCounts(t *testing.T) {
	s := gk.NewFloat64(0.1)
	for i := 0; i < 100; i++ {
		s.Update(float64(i))
	}
	payload, err := EncodeGK(s)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the item count field (offset: 4 magic + 2 version + 2 kind +
	// 8 eps + 2 policy = 18).
	corrupted := append([]byte(nil), payload...)
	corrupted[18] = 0xFF
	if _, err := DecodeGK(corrupted); err == nil {
		t.Errorf("corrupted GK payload accepted")
	}
}

// Property: encode/decode round-trips GK summaries built from arbitrary
// streams, preserving query answers.
func TestGKRoundTripProperty(t *testing.T) {
	f := func(items []float64) bool {
		s := gk.NewFloat64(0.1)
		for _, x := range items {
			s.Update(x)
		}
		payload, err := EncodeGK(s)
		if err != nil {
			return false
		}
		restored, err := DecodeGK(payload)
		if err != nil {
			return false
		}
		if restored.Count() != s.Count() {
			return false
		}
		for _, phi := range []float64{0, 0.5, 1} {
			a, okA := s.Query(phi)
			b, okB := restored.Query(phi)
			if okA != okB || (okA && a != b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
