package encoding

// KindStore is the multi-key container format of the keyed store tier
// (internal/store): a payload holding any number of (key, nested summary
// payload) records, so a whole multi-tenant store snapshots and restores as
// one wire object and the keyed aggregator can merge stores per key across
// peers. Nested payloads are ordinary single-summary payloads of this
// package (any kind except KindStore itself — the container does not nest),
// so every family a store can hold round-trips through it unchanged.

import (
	"errors"
	"fmt"
	"sort"

	"quantilelb/internal/biased"
	"quantilelb/internal/exact"
	"quantilelb/internal/fo"
	"quantilelb/internal/gk"
	"quantilelb/internal/kll"
	"quantilelb/internal/mlq"
	"quantilelb/internal/mrl"
	"quantilelb/internal/req"
	"quantilelb/internal/sampling"
	"quantilelb/internal/summary"
)

// MaxStoreKeyBytes bounds the serialized length of one store key. The HTTP
// tier enforces a tighter limit; the wire format rejects anything beyond this
// so a corrupt length prefix cannot demand a huge allocation.
const MaxStoreKeyBytes = 4096

// KeyedPayload is one record of a KindStore container: a store key and the
// wire payload of the summary held under it.
type KeyedPayload struct {
	// Key is the store key (per-metric / per-tenant identifier).
	Key string
	// Payload is a single-summary payload of this package (never KindStore).
	Payload []byte
}

// EncodeStore serializes keyed summary payloads as one KindStore container.
// Records are written in ascending key order regardless of input order, so
// equal stores produce byte-identical payloads. Duplicate keys, keys longer
// than MaxStoreKeyBytes, and nested payloads that are not themselves valid
// single-summary payloads are rejected.
func EncodeStore(entries []KeyedPayload) ([]byte, error) {
	sorted := make([]KeyedPayload, len(entries))
	copy(sorted, entries)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	seen := make(map[string]bool, len(sorted))
	for _, e := range sorted {
		if len(e.Key) > MaxStoreKeyBytes {
			return nil, fmt.Errorf("encoding: store key of %d bytes exceeds %d", len(e.Key), MaxStoreKeyBytes)
		}
		if seen[e.Key] {
			return nil, fmt.Errorf("encoding: duplicate store key %q", e.Key)
		}
		seen[e.Key] = true
		kind, err := DetectKind(e.Payload)
		if err != nil {
			return nil, fmt.Errorf("encoding: store key %q: invalid nested payload: %w", e.Key, err)
		}
		if kind == KindStore {
			return nil, fmt.Errorf("encoding: store key %q: KindStore containers do not nest", e.Key)
		}
	}
	w := &writer{}
	w.u32(Magic)
	w.u16(Version)
	w.u16(uint16(KindStore))
	w.u32(uint32(len(sorted)))
	for _, e := range sorted {
		w.u32(uint32(len(e.Key)))
		if w.err == nil {
			_, w.err = w.buf.WriteString(e.Key)
		}
		w.u32(uint32(len(e.Payload)))
		if w.err == nil {
			_, w.err = w.buf.Write(e.Payload)
		}
	}
	return w.buf.Bytes(), w.err
}

// DecodeStore reads a KindStore container back into its records, in the
// ascending key order EncodeStore wrote them. Each nested payload is
// validated to open as a single-summary payload (magic, version, non-store
// kind); fully decoding the nested summaries is the caller's job, so a store
// restore can skip keys it does not want. Duplicate keys are rejected — a
// keyed merge must never silently drop one of two states for the same key.
func DecodeStore(payload []byte) ([]KeyedPayload, error) {
	r, kind, err := openPayload(payload)
	if err != nil {
		return nil, err
	}
	if kind != KindStore {
		return nil, fmt.Errorf("encoding: payload holds kind %d, want store (%d)", kind, KindStore)
	}
	numKeys := r.u32()
	if r.err != nil {
		return nil, fmt.Errorf("encoding: truncated store header: %w", r.err)
	}
	// Each record occupies at least its two length prefixes.
	if !r.need(int64(numKeys) * 8) {
		return nil, fmt.Errorf("encoding: truncated store records: %w", r.err)
	}
	out := make([]KeyedPayload, 0, numKeys)
	seen := make(map[string]bool, numKeys)
	for i := uint32(0); i < numKeys; i++ {
		keyLen := r.u32()
		if r.err != nil {
			return nil, fmt.Errorf("encoding: truncated store record %d: %w", i, r.err)
		}
		if keyLen > MaxStoreKeyBytes {
			return nil, fmt.Errorf("encoding: store record %d declares a %d-byte key (max %d)", i, keyLen, MaxStoreKeyBytes)
		}
		if !r.need(int64(keyLen)) {
			return nil, fmt.Errorf("encoding: truncated store key: %w", r.err)
		}
		key := string(r.bytes(int(keyLen)))
		if seen[key] {
			return nil, fmt.Errorf("encoding: duplicate store key %q", key)
		}
		seen[key] = true
		payloadLen := r.u32()
		if r.err != nil {
			return nil, fmt.Errorf("encoding: truncated store record %q: %w", key, r.err)
		}
		if !r.need(int64(payloadLen)) {
			return nil, fmt.Errorf("encoding: truncated store payload for key %q: %w", key, r.err)
		}
		nested := r.bytes(int(payloadLen))
		if r.err != nil {
			return nil, fmt.Errorf("encoding: truncated store payload for key %q: %w", key, r.err)
		}
		nestedKind, err := DetectKind(nested)
		if err != nil {
			return nil, fmt.Errorf("encoding: store key %q: invalid nested payload: %w", key, err)
		}
		if nestedKind == KindStore {
			return nil, fmt.Errorf("encoding: store key %q: KindStore containers do not nest", key)
		}
		out = append(out, KeyedPayload{Key: key, Payload: nested})
	}
	return out, nil
}

// ErrNotMergeable is wrapped by MergeAny when the destination family has no
// merge operation (the sliding-window summary) or the two sides hold
// different families.
var ErrNotMergeable = errors.New("encoding: summaries are not mergeable")

// CheckMergeable reports whether MergeAny(dst, src) would succeed, without
// mutating either side. It covers every failure MergeAny can produce:
// mismatched or non-mergeable families, a KLL k mismatch, an MRL
// buffer-capacity mismatch, and an MLQ block-size mismatch (an empty src
// merges into anything of its own family, mirroring the Merge
// implementations). The keyed store uses it to
// validate a whole container against its current state before applying
// anything, so a bad record rejects the container whole instead of after a
// partial merge.
func CheckMergeable(dst, src any) error {
	// Cross-stage pairs involving the exact buffer: a buffered key merges with
	// anything that can ingest items. src exact → its items replay into dst;
	// dst exact + src sketch → the buffer's items replay into src, which then
	// replaces dst (callers must use MergeAdopting for that direction).
	if _, ok := src.(*exact.Buffer); ok {
		if _, ok := dst.(updater); ok {
			return nil
		}
		return fmt.Errorf("%w: cannot replay exact items into %T", ErrNotMergeable, dst)
	}
	if _, ok := dst.(*exact.Buffer); ok {
		if _, ok := src.(updater); ok {
			return nil
		}
		return fmt.Errorf("%w: cannot replay exact items into %T", ErrNotMergeable, src)
	}
	switch d := dst.(type) {
	case *gk.Summary[float64]:
		if _, ok := src.(*gk.Summary[float64]); ok {
			return nil
		}
	case *kll.Sketch[float64]:
		if s, ok := src.(*kll.Sketch[float64]); ok {
			if s.Count() > 0 && s.K() != d.K() {
				return fmt.Errorf("%w: kll k mismatch (%d vs %d)", ErrNotMergeable, d.K(), s.K())
			}
			return nil
		}
	case *mrl.Summary[float64]:
		if s, ok := src.(*mrl.Summary[float64]); ok {
			if s.Count() > 0 && s.BufferCapacity() != d.BufferCapacity() {
				return fmt.Errorf("%w: mrl buffer capacity mismatch (%d vs %d)", ErrNotMergeable, d.BufferCapacity(), s.BufferCapacity())
			}
			return nil
		}
	case *sampling.Reservoir[float64]:
		if _, ok := src.(*sampling.Reservoir[float64]); ok {
			return nil
		}
	case *mlq.Summary:
		if s, ok := src.(*mlq.Summary); ok {
			if s.Count() > 0 && s.BlockSize() != d.BlockSize() {
				return fmt.Errorf("%w: mlq block size mismatch (%d vs %d)", ErrNotMergeable, d.BlockSize(), s.BlockSize())
			}
			return nil
		}
	case *req.Summary:
		// req merge is a free COMBINE: no structural parameter must match
		// (compaction re-certifies gaps from scratch), so any two req
		// summaries merge.
		if _, ok := src.(*req.Summary); ok {
			return nil
		}
	case *biased.Summary[float64]:
		if _, ok := src.(*biased.Summary[float64]); ok {
			return nil
		}
	case *fo.Summary[float64]:
		// fo merge is a free COMBINE like req: eps takes the pairwise max,
		// the failure probabilities add, and levels align by absolute weight
		// exponent — no structural parameter must match.
		if _, ok := src.(*fo.Summary[float64]); ok {
			return nil
		}
	default:
		return fmt.Errorf("%w: %T has no merge operation", ErrNotMergeable, dst)
	}
	return fmt.Errorf("%w: cannot merge %T into %T; both sides must hold the same family", ErrNotMergeable, src, dst)
}

// updater is the minimal ingest interface every float64 summary implements;
// replayExact uses it as the universal fallback target.
type updater interface{ Update(float64) }

// weightedUpdater matches the native weighted-ingest path (summary.WeightedUpdater
// specialized to float64) without importing the generic interface here.
type weightedUpdater interface{ WeightedUpdate(float64, int64) }

// replayExact feeds every retained (value, weight) slot of an exact buffer
// into dst: through dst's native weighted path when it has one, and through
// the documented weight-expansion fallback otherwise (guarded by
// summary.MaxExpansionWeight so a corrupt weight cannot stall the process).
func replayExact(b *exact.Buffer, dst any) error {
	if wu, ok := dst.(weightedUpdater); ok {
		b.Each(func(v float64, w int64) { wu.WeightedUpdate(v, w) })
		return nil
	}
	u, ok := dst.(updater)
	if !ok {
		return fmt.Errorf("%w: cannot replay exact items into %T", ErrNotMergeable, dst)
	}
	var err error
	b.Each(func(v float64, w int64) {
		if err != nil {
			return
		}
		if w > summary.MaxExpansionWeight {
			err = fmt.Errorf("encoding: exact slot weight %d exceeds the expansion cap %d for %T", w, summary.MaxExpansionWeight, dst)
			return
		}
		for i := int64(0); i < w; i++ {
			u.Update(v)
		}
	})
	return err
}

// MergeAdopting merges src into dst and returns the summary that now holds
// the union. In the common case that is dst (MergeAny semantics). When dst is
// an exact buffer and src is a sketch, the buffer's items replay into src and
// src is returned — the cross-stage promotion path of keyed merges; the
// caller must own src (e.g. have freshly decoded it) and must adopt the
// returned summary in dst's place.
func MergeAdopting(dst, src any) (any, error) {
	if d, ok := dst.(*exact.Buffer); ok {
		if s, ok := src.(*exact.Buffer); ok {
			return d, d.Merge(s)
		}
		if err := replayExact(d, src); err != nil {
			return nil, err
		}
		return src, nil
	}
	return dst, MergeAny(dst, src)
}

// MergeAny folds src into dst when both hold the same mergeable concrete
// float64 summary family (GK, KLL, MRL, the reservoir, MLQ, or REQ). Every branch
// preserves the COMBINE budget eps_new = max(eps_dst, eps_src). It is the
// single merge-dispatch point shared by the cluster aggregator and the keyed
// store, so a new family becomes mergeable everywhere by extending it here.
func MergeAny(dst, src any) error {
	if s, ok := src.(*exact.Buffer); ok {
		if _, isExact := dst.(*exact.Buffer); !isExact {
			// A buffered key's exact items replay into the sketch dst through
			// its native ingest path — lossless for src, eps unchanged for dst.
			return replayExact(s, dst)
		}
	}
	switch d := dst.(type) {
	case *gk.Summary[float64]:
		if s, ok := src.(*gk.Summary[float64]); ok {
			return d.Merge(s)
		}
	case *kll.Sketch[float64]:
		if s, ok := src.(*kll.Sketch[float64]); ok {
			return d.Merge(s)
		}
	case *mrl.Summary[float64]:
		if s, ok := src.(*mrl.Summary[float64]); ok {
			return d.Merge(s)
		}
	case *sampling.Reservoir[float64]:
		if s, ok := src.(*sampling.Reservoir[float64]); ok {
			return d.Merge(s)
		}
	case *mlq.Summary:
		if s, ok := src.(*mlq.Summary); ok {
			return d.Merge(s)
		}
	case *req.Summary:
		if s, ok := src.(*req.Summary); ok {
			return d.Merge(s)
		}
	case *biased.Summary[float64]:
		if s, ok := src.(*biased.Summary[float64]); ok {
			return d.Merge(s)
		}
	case *fo.Summary[float64]:
		if s, ok := src.(*fo.Summary[float64]); ok {
			return d.Merge(s)
		}
	case *exact.Buffer:
		if s, ok := src.(*exact.Buffer); ok {
			return d.Merge(s)
		}
		return fmt.Errorf("%w: cannot merge %T into an exact buffer in place; use MergeAdopting", ErrNotMergeable, src)
	default:
		return fmt.Errorf("%w: %T has no merge operation", ErrNotMergeable, dst)
	}
	return fmt.Errorf("%w: cannot merge %T into %T; both sides must hold the same family", ErrNotMergeable, src, dst)
}
