package encoding

import (
	"strings"
	"testing"

	"quantilelb/internal/gk"
	"quantilelb/internal/kll"
	"quantilelb/internal/mrl"
)

func buildStorePayload(t testing.TB) []byte {
	t.Helper()
	gkS := gk.NewFloat64(0.02)
	kllS := kll.NewFloat64(0.02, kll.WithSeed(7))
	for i := 0; i < 3_000; i++ {
		gkS.Update(float64(i % 503))
		kllS.Update(float64(i % 769))
	}
	gkP, err := Encode(gkS)
	if err != nil {
		t.Fatalf("encode gk: %v", err)
	}
	kllP, err := Encode(kllS)
	if err != nil {
		t.Fatalf("encode kll: %v", err)
	}
	p, err := EncodeStore([]KeyedPayload{
		{Key: "lat.db", Payload: kllP},
		{Key: "lat.api", Payload: gkP},
	})
	if err != nil {
		t.Fatalf("EncodeStore: %v", err)
	}
	return p
}

func TestStoreContainerRoundTrip(t *testing.T) {
	p := buildStorePayload(t)
	kind, err := DetectKind(p)
	if err != nil || kind != KindStore {
		t.Fatalf("DetectKind = %v, %v", kind, err)
	}
	if kind.String() != "store" {
		t.Fatalf("Kind.String = %q", kind.String())
	}
	records, err := DecodeStore(p)
	if err != nil {
		t.Fatalf("DecodeStore: %v", err)
	}
	if len(records) != 2 {
		t.Fatalf("got %d records", len(records))
	}
	// EncodeStore sorts by key for deterministic output.
	if records[0].Key != "lat.api" || records[1].Key != "lat.db" {
		t.Fatalf("keys out of order: %q, %q", records[0].Key, records[1].Key)
	}
	for _, rec := range records {
		dec, err := Decode(rec.Payload)
		if err != nil {
			t.Fatalf("nested decode of %q: %v", rec.Key, err)
		}
		type counter interface{ Count() int }
		if dec.(counter).Count() != 3_000 {
			t.Fatalf("key %q restored count %d", rec.Key, dec.(counter).Count())
		}
	}
	// Re-encoding the records reproduces the payload byte-for-byte.
	re, err := EncodeStore(records)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if string(re) != string(p) {
		t.Fatal("round trip is not byte-identical")
	}
}

func TestStoreContainerEmpty(t *testing.T) {
	p, err := EncodeStore(nil)
	if err != nil {
		t.Fatalf("EncodeStore(nil): %v", err)
	}
	records, err := DecodeStore(p)
	if err != nil || len(records) != 0 {
		t.Fatalf("empty container: %v records, err %v", records, err)
	}
}

func TestStoreContainerRejectsAbuse(t *testing.T) {
	gkP, _ := Encode(gk.NewFloat64(0.1))
	cases := []struct {
		name    string
		entries []KeyedPayload
		wantErr string
	}{
		{"duplicate keys", []KeyedPayload{{Key: "a", Payload: gkP}, {Key: "a", Payload: gkP}}, "duplicate"},
		{"oversized key", []KeyedPayload{{Key: strings.Repeat("x", MaxStoreKeyBytes+1), Payload: gkP}}, "exceeds"},
		{"garbage nested payload", []KeyedPayload{{Key: "a", Payload: []byte("nope")}}, "invalid nested"},
		{"nested container", []KeyedPayload{{Key: "a", Payload: mustStore(gkP)}}, "do not nest"},
	}
	for _, tc := range cases {
		if _, err := EncodeStore(tc.entries); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
	// Decode paths: a single-summary payload is not a store container, and
	// Decode refuses containers with a pointer at DecodeStore.
	if _, err := DecodeStore(gkP); err == nil {
		t.Error("DecodeStore should reject a single-summary payload")
	}
	if _, err := Decode(buildStorePayload(t)); err == nil || !strings.Contains(err.Error(), "DecodeStore") {
		t.Errorf("Decode of a container should point at DecodeStore: %v", err)
	}
}

func mustStore(nested []byte) []byte {
	p, err := EncodeStore([]KeyedPayload{{Key: "inner", Payload: nested}})
	if err != nil {
		panic(err)
	}
	return p
}

func TestCheckMergeable(t *testing.T) {
	gkA, gkB := gk.NewFloat64(0.05), gk.NewFloat64(0.01)
	kllA := kll.NewFloat64(0.02, kll.WithSeed(1))
	kllB := kll.NewFloat64(0.002, kll.WithSeed(2)) // different k
	kllB.Update(1)
	if err := CheckMergeable(gkA, gkB); err != nil {
		t.Errorf("gk+gk (differing eps): %v", err)
	}
	if err := CheckMergeable(gkA, kllA); err == nil {
		t.Error("gk+kll should be rejected")
	}
	if err := CheckMergeable(kllA, kllB); err == nil {
		t.Error("kll k mismatch with items should be rejected")
	}
	// An empty src merges into anything of its family, mirroring Merge.
	if err := CheckMergeable(kllA, kll.NewFloat64(0.002, kll.WithSeed(3))); err != nil {
		t.Errorf("empty kll src: %v", err)
	}
	mrlA, mrlB := mrl.NewFloat64(0.02, 10_000), mrl.NewFloat64(0.002, 10_000)
	mrlB.Update(1)
	if err := CheckMergeable(mrlA, mrlB); err == nil {
		t.Error("mrl capacity mismatch with items should be rejected")
	}
	if err := CheckMergeable(42, gkA); err == nil {
		t.Error("non-summary destination should be rejected")
	}
	// CheckMergeable's verdict must agree with MergeAny's outcome on the
	// cases above that it accepts.
	if err := MergeAny(gkA, gkB); err != nil {
		t.Errorf("MergeAny disagreed with CheckMergeable: %v", err)
	}
}

func TestMergeAny(t *testing.T) {
	a, b := gk.NewFloat64(0.05), gk.NewFloat64(0.05)
	for i := 0; i < 100; i++ {
		a.Update(float64(i))
		b.Update(float64(i + 100))
	}
	if err := MergeAny(a, b); err != nil {
		t.Fatalf("gk+gk: %v", err)
	}
	if a.Count() != 200 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if err := MergeAny(a, kll.NewFloat64(0.05, kll.WithSeed(1))); err == nil {
		t.Fatal("gk+kll should fail")
	}
	if err := MergeAny(42, a); err == nil {
		t.Fatal("non-summary destination should fail")
	}
}
