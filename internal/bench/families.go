package bench

import (
	"sync/atomic"

	"quantilelb/internal/biased"
	"quantilelb/internal/capped"
	"quantilelb/internal/fo"
	"quantilelb/internal/gk"
	"quantilelb/internal/kll"
	"quantilelb/internal/mlq"
	"quantilelb/internal/mrl"
	"quantilelb/internal/order"
	"quantilelb/internal/req"
	"quantilelb/internal/sampling"
	"quantilelb/internal/sharded"
	"quantilelb/internal/window"
)

// Bytes-per-retained-item estimates. GK summaries (and everything stacked
// on them: sharded-gk, cluster, window blocks, the keyed store's default
// factory) store (value, G, Delta, Wt) tuples — one float64 plus three ints
// = 32 bytes since the weighted-input extension; the biased and capped
// summaries keep the original three-field (value, G, Delta) tuple at 24
// bytes; buffer-based summaries (kll, mrl, reservoir) store bare float64s.
const (
	gkTupleBytes  = 32
	tupleBytes    = 24
	itemBytes     = 8
	mlqEntryBytes = 32 // mlq.Entry: (value, W, Rmin, Rmax)
	reqEntryBytes = 32 // req.Entry: (value, W, Rmin, Rmax)
)

// cappedCapacity deliberately undercuts the GK bound so the matrix records
// what breaks when a summary is given o((1/eps)·log eps·N) items — the
// regime the lower bound proves impossible.
const cappedCapacity = 64

// shardedWidth is the shard count of the sharded variants, matching the
// cmd/quantileserver default.
const shardedWidth = 16

// DefaultFamilies returns every summary family the matrix covers, configured
// for cfg.Eps. maxN bounds the per-workload stream length (MRL needs it in
// advance).
func DefaultFamilies(cfg Config) []Family {
	eps := cfg.Eps
	maxN := cfg.N * 2 // headroom: adversarial workload length is quantized
	families := []Family{
		{
			Name:         "gk",
			New:          func() Target { return gk.NewFloat64(eps) },
			BytesPerItem: gkTupleBytes,
			EpsTarget:    eps,
		},
		{
			Name:         "gk-greedy",
			New:          func() Target { return gk.NewWithPolicy(order.Floats[float64](), eps, gk.PolicyGreedy) },
			BytesPerItem: gkTupleBytes,
			EpsTarget:    eps,
		},
		{
			Name:         "kll",
			New:          func() Target { return kll.NewFloat64(eps, kll.WithSeed(cfg.Seed)) },
			BytesPerItem: itemBytes,
			// Randomized guarantee: failure probability is constant per
			// query, so the recorded error can exceed eps on some grids;
			// EpsTarget is still the configured accuracy.
			EpsTarget: eps,
		},
		{
			Name:         "mrl",
			New:          func() Target { return mrl.NewFloat64(eps, maxN) },
			BytesPerItem: itemBytes,
			EpsTarget:    eps,
		},
		{
			Name: "mlq",
			// The cache-resident multi-level summary: a sorted-block buffer
			// absorbing updates, flushed through a binary-counter cascade of
			// merge+compress steps. The buffer keeps the hot ingest path in
			// L2 and amortizes comparison work across whole blocks.
			New:          func() Target { return mlq.NewFloat64(eps) },
			BytesPerItem: mlqEntryBytes,
			EpsTarget:    eps,
		},
		{
			Name:         "reservoir",
			New:          func() Target { return sampling.NewFloat64(eps, 0.01, cfg.Seed) },
			BytesPerItem: itemBytes,
			// DKW sizing gives a randomized uniform guarantee; like KLL the
			// observed error can exceed eps with probability delta.
			EpsTarget: eps,
		},
		{
			Name:         "biased",
			New:          func() Target { return biased.NewFloat64(eps) },
			BytesPerItem: tupleBytes,
			// Relative-error guarantee only — no uniform EpsTarget; the
			// recorded max_rank_error_frac shows what that costs at the
			// high quantiles.
		},
		{
			Name:         "capped",
			New:          func() Target { return capped.NewFloat64(cappedCapacity) },
			BytesPerItem: tupleBytes,
			// Deliberately unsound: the lower bound proves this family must
			// exceed any eps on some workload. Recorded to show the failure.
		},
		{
			Name: "sharded-gk",
			New: func() Target {
				return sharded.New(func() *gk.Summary[float64] { return gk.NewFloat64(eps) }, shardedWidth)
			},
			BytesPerItem: gkTupleBytes,
			EpsTarget:    eps,
		},
		{
			Name: "window",
			// Sized so the window covers the whole stream: the recorded rank
			// error is then measured against the same full-stream oracle as
			// every other family, while the ingest path still pays the
			// block/bucket bookkeeping of the sliding-window reduction.
			New:          func() Target { return window.NewFloat64(eps, maxN) },
			BytesPerItem: gkTupleBytes,
			EpsTarget:    eps,
		},
		{
			Name:         "cluster-gk",
			New:          func() Target { return newClusterTarget(eps) },
			BytesPerItem: gkTupleBytes,
			// COMBINE keeps eps_new = max over the nodes' equal eps, so the
			// merged global view carries the same uniform guarantee as one
			// node.
			EpsTarget: eps,
		},
		{
			Name: "sharded-mlq",
			New: func() Target {
				return sharded.New(func() *mlq.Summary { return mlq.NewFloat64(eps) }, shardedWidth)
			},
			BytesPerItem: mlqEntryBytes,
			EpsTarget:    eps,
		},
		{
			Name: "req",
			// The mergeable relative-error tail summary: a single sorted
			// entry list whose compaction certifies every dropped entry
			// against a from-the-top budget, so p99.9+ answers stay accurate
			// (and the maximum exact) at any stream length. The uniform gate
			// applies too — the high-tail guarantee implies ε·N everywhere —
			// and the cell records the tail-error column benchdiff gates.
			New:          func() Target { return req.NewFloat64(eps) },
			BytesPerItem: reqEntryBytes,
			EpsTarget:    eps,
			RelEpsTarget: eps,
		},
		{
			Name: "sharded-req",
			New: func() Target {
				return sharded.New(func() *req.Summary { return req.NewFloat64(eps) }, shardedWidth)
			},
			BytesPerItem: reqEntryBytes,
			// COMBINE keeps eps_new = max over the shards' equal eps, and
			// req's gap budgets are additive across merge inputs, so the
			// merged view carries the same relative guarantee as one shard.
			EpsTarget:    eps,
			RelEpsTarget: eps,
		},
		{
			Name: "sharded-kll",
			New: func() Target {
				var next atomic.Int64
				return sharded.New(func() *kll.Sketch[float64] {
					return kll.NewFloat64(eps, kll.WithSeed(cfg.Seed+next.Add(1)))
				}, shardedWidth)
			},
			BytesPerItem: itemBytes,
			EpsTarget:    eps,
		},
		{
			Name: "fo",
			// The randomized Felber–Ostrovsky summary: a seeded sampler in
			// front of a cascade of fixed-size blocks, retaining
			// O((1/eps)·log(1/eps)) items independent of N — below the
			// deterministic lower bound, which randomization may beat. Like
			// KLL, the per-run error can exceed eps with probability delta.
			New: func() Target {
				return fo.NewFloat64(fo.Config{Eps: eps, Delta: 0.01, Seed: cfg.Seed})
			},
			BytesPerItem: itemBytes,
			EpsTarget:    eps,
		},
		{
			Name: "sharded-fo",
			New: func() Target {
				var next atomic.Int64
				return sharded.New(func() *fo.Summary[float64] {
					return fo.NewFloat64(fo.Config{Eps: eps, Delta: 0.01, Seed: cfg.Seed + next.Add(1)})
				}, shardedWidth)
			},
			BytesPerItem: itemBytes,
			// COMBINE keeps eps_new = max over the shards' equal eps; the
			// merged view's failure probability is the sum of the shard
			// deltas (0.16 at 16 shards), still within the 3x gate slack.
			EpsTarget: eps,
		},
	}
	// Keyed-fanout families: the multi-tenant store at 1/100/10k keys with
	// zipf key popularity (see keyed.go).
	families = append(families, keyedFamilies(cfg)...)
	// Weighted-ingestion families: the weighted write path under constant
	// and zipf-distributed weights (see weighted.go).
	return append(families, weightedFamilies(cfg)...)
}
