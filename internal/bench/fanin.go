package bench

// The aggregation fan-in benchmark: 100 leaf keyed-store servers behind real
// HTTP, pulled by one keyed aggregator, measured in full-snapshot mode
// versus incremental-delta mode on two churn regimes. The matrix families
// measure what a summary costs to build; this family measures what the
// distributed tier costs to keep merged — the bandwidth of repeated
// snapshot pulls, which delta snapshots exist to cut, and the staleness of
// a pull round, which bounds how far the merged view can lag a leaf.
//
// The leaves are keyed stores (one GK summary per metric key) because the
// KindStore container has the byte-level locality incremental snapshots
// are built for: per-key sub-payloads are encoded from the live,
// incrementally evolving summaries in sorted key order, so the keys a churn
// round did not touch re-encode byte-identically and the delta diff copies
// them wholesale. A single-stream sharded leaf is the opposite extreme —
// its snapshot is rebuilt by re-merging shards into a fresh summary, which
// relays out nearly every byte even for small churn, so delta negotiation
// there correctly degrades to full payloads (the negotiation's size check
// handles it); the store tier is where deltas genuinely pay.

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"time"

	quantilelb "quantilelb"
	"quantilelb/internal/cluster"
	"quantilelb/internal/rank"
	"quantilelb/internal/store"
)

// FaninFamily is the family name of the fan-in cells; cmd/benchdiff keys its
// bandwidth gate on it.
const FaninFamily = "agg-fanin-100"

const (
	// faninLeaves is the fan-in: one aggregator over this many leaf servers.
	faninLeaves = 100
	// faninKeys is the number of metric keys each leaf store holds; every
	// leaf holds the same key set, so the aggregator merges each key across
	// all 100 leaves.
	faninKeys = 20
	// faninRounds is how many measured pull rounds each cell runs (after one
	// unmeasured warm-up round that pays for the initial full payloads).
	faninRounds = 6
	// faninHotIdle is how many leaves change between rounds on the idle-heavy
	// workload; the rest revalidate 304. hot-all churns every leaf.
	faninHotIdle = 5
)

// faninWorkloads are the churn regimes: idle-heavy models the steady state
// of a large fleet (a few leaves advance one hot key per pull interval,
// most answer 304), where delta mode should cut the transferred bytes by
// well over the gated 2×; hot-all churns every key of every leaf every
// round, the worst case for delta savings (every sub-payload changes, so a
// delta can copy almost nothing).
var faninWorkloads = []struct {
	name    string
	hot     int
	hotKeys int
}{
	{"idle-heavy", faninHotIdle, 1},
	{"hot-all", faninLeaves, faninKeys},
}

// faninLeaf is one leaf server: the keyed store (for direct ingest) and its
// HTTP server.
type faninLeaf struct {
	st  *store.Store
	srv *httptest.Server
}

// RunFanin measures the agg-fanin-100 family: for each churn regime and
// each snapshot mode (full, delta) it boots 100 keyed-store leaf servers
// over HTTP, seeds faninKeys metric keys on each with cfg.N items spread
// evenly, then runs faninRounds churn+pull rounds and records the
// aggregator-side wire bytes, their per-second rate, the mean round wall
// time (merge staleness), and the accuracy of the final per-key merged
// views against the exact oracle of each key's union stream. Cell.N is the
// per-key union count (the population one merged answer covers); the rank
// error columns report the worst key.
func RunFanin(cfg Config) ([]Cell, error) {
	var cells []Cell
	for _, wl := range faninWorkloads {
		for _, mode := range []string{"full", "delta"} {
			cell, err := runFaninCell(cfg, wl.name, wl.hot, wl.hotKeys, mode == "delta")
			if err != nil {
				return nil, fmt.Errorf("bench: fan-in cell %s/%s: %w", wl.name, mode, err)
			}
			cells = append(cells, cell)
		}
	}
	return cells, nil
}

func faninKeyName(k int) string { return fmt.Sprintf("metric.%02d", k) }

func runFaninCell(cfg Config, workload string, hotLeaves, hotKeys int, delta bool) (Cell, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	leaves := make([]*faninLeaf, faninLeaves)
	urls := make([]string, faninLeaves)
	for i := range leaves {
		st := quantilelb.NewStore(quantilelb.StoreConfig{Eps: cfg.Eps})
		srv := httptest.NewServer(cluster.NewKeyedServerHandler(st))
		defer srv.Close()
		leaves[i] = &faninLeaf{st: st, srv: srv}
		urls[i] = srv.URL
	}

	// Seed every leaf's keys with an even share of cfg.N items, tracking the
	// exact per-key union streams for the final accuracy sweep.
	perKey := cfg.N / (faninLeaves * faninKeys)
	if perKey < 5 {
		perKey = 5
	}
	byKey := make([][]float64, faninKeys)
	batch := make([]float64, perKey)
	for _, leaf := range leaves {
		for k := 0; k < faninKeys; k++ {
			for j := range batch {
				batch[j] = rng.Float64() * 1000
			}
			leaf.st.UpdateBatch(faninKeyName(k), batch)
			byKey[k] = append(byKey[k], batch...)
		}
	}

	client := &http.Client{Timeout: 30 * time.Second}
	srcs := make([]cluster.Source, faninLeaves)
	for i, u := range urls {
		srcs[i] = &cluster.HTTPSource{URL: u, Client: client, Path: "/v1/store/snapshot", Delta: delta}
	}
	agg := cluster.NewKeyed(srcs...)

	// Warm-up round: every leaf transfers its full container once and the
	// aggregator retains the bases deltas will be computed against. The
	// measured rounds then see only churn traffic, which is the steady state
	// the modes differ on.
	if err := agg.PullOnce(context.Background()); err != nil {
		return Cell{}, fmt.Errorf("warm-up pull: %w", err)
	}
	warmWire := wireTotal(agg.Status())

	// Churn + pull rounds. The hot set rotates so delta bases keep aging
	// realistically instead of one leaf absorbing all the churn.
	churn := perKey / 2
	if churn < 5 {
		churn = 5
	}
	churnBatch := make([]float64, churn)
	var elapsed time.Duration
	for round := 0; round < faninRounds; round++ {
		for h := 0; h < hotLeaves; h++ {
			leaf := leaves[(round*hotLeaves+h)%faninLeaves]
			for hk := 0; hk < hotKeys; hk++ {
				k := (round + hk) % faninKeys
				for j := range churnBatch {
					churnBatch[j] = rng.Float64() * 1000
				}
				leaf.st.UpdateBatch(faninKeyName(k), churnBatch)
				byKey[k] = append(byKey[k], churnBatch...)
			}
		}
		start := time.Now()
		if err := agg.PullOnce(context.Background()); err != nil {
			return Cell{}, fmt.Errorf("round %d pull: %w", round, err)
		}
		elapsed += time.Since(start)
	}

	status := agg.Status()
	wire := wireTotal(status) - warmWire
	deltaFetches := 0
	for _, ps := range status {
		deltaFetches += ps.DeltaFetches
	}

	// Accuracy of the merged per-key views: every key's answers must stay
	// within eps of its union stream's exact oracle (COMBINE adds no error,
	// so the budget is the per-leaf eps unchanged). N and the error columns
	// report the per-key population, worst key.
	worst, n := 0, 0
	for k := 0; k < faninKeys; k++ {
		oracle := rank.Float64Oracle(byKey[k])
		if len(byKey[k]) > n {
			n = len(byKey[k])
		}
		for i := 0; i <= cfg.Grid; i++ {
			phi := float64(i) / float64(cfg.Grid)
			got, ok := agg.Query(faninKeyName(k), phi)
			if !ok {
				return Cell{}, fmt.Errorf("key %s: merged view answered not-ok", faninKeyName(k))
			}
			if e := oracle.RankError(got, phi); e > worst {
				worst = e
			}
		}
	}

	return Cell{
		Family:           FaninFamily,
		Workload:         workload,
		Mode:             map[bool]string{false: "full", true: "delta"}[delta],
		N:                n,
		EpsTarget:        cfg.Eps,
		MaxRankError:     worst,
		MaxRankErrorFrac: float64(worst) / float64(n),
		WithinEps:        float64(worst) <= cfg.Eps*float64(n)+1,
		WireBytes:        wire,
		WireBytesPerSec:  float64(wire) / elapsed.Seconds(),
		MergeStalenessMs: float64(elapsed.Milliseconds()) / float64(faninRounds),
		DeltaFetches:     deltaFetches,
	}, nil
}

// wireTotal sums the snapshot bytes every peer has transferred so far.
func wireTotal(status []cluster.PeerStatus) int64 {
	var total int64
	for _, ps := range status {
		total += ps.WireBytes
	}
	return total
}
