package bench

import (
	"encoding/json"
	"testing"
)

// quickConfig keeps harness tests in the sub-second range.
func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.N = 5_000
	cfg.Repetitions = 1
	cfg.Grid = 50
	cfg.Label = "test"
	return cfg
}

// TestMatrixShape runs the full matrix at a small size and checks that every
// family appears for every workload, batched families get a batch-mode cell,
// and every cell carries sane measurements.
func TestMatrixShape(t *testing.T) {
	cfg := quickConfig()
	workloads, err := Workloads(cfg)
	if err != nil {
		t.Fatalf("workloads: %v", err)
	}
	if len(workloads) != 7 {
		t.Fatalf("got %d workloads, want 7", len(workloads))
	}
	families := DefaultFamilies(cfg)
	rep := Run(cfg, families, workloads)

	type key struct{ fam, wl, mode string }
	seen := map[key]bool{}
	for _, c := range rep.Cells {
		seen[key{c.Family, c.Workload, c.Mode}] = true
		if c.N <= 0 || c.NsPerOp <= 0 || c.ItemsPerSec <= 0 {
			t.Errorf("cell %s/%s/%s has degenerate timing: %+v", c.Family, c.Workload, c.Mode, c)
		}
		if c.RetainedItems <= 0 || c.RetainedBytes < c.RetainedItems*8 {
			t.Errorf("cell %s/%s/%s has degenerate space: %+v", c.Family, c.Workload, c.Mode, c)
		}
		if c.MaxRankError < 0 || c.MaxRankErrorFrac < 0 || c.MaxRankErrorFrac > 1 {
			t.Errorf("cell %s/%s/%s has degenerate error: %+v", c.Family, c.Workload, c.Mode, c)
		}
	}
	for _, wl := range workloads {
		for _, fam := range families {
			if !seen[key{fam.Name, wl.Name, "update"}] {
				t.Errorf("missing update cell for %s/%s", fam.Name, wl.Name)
			}
			if _, ok := fam.New().(BatchTarget); ok && !seen[key{fam.Name, wl.Name, "batch"}] {
				t.Errorf("missing batch cell for batched family %s/%s", fam.Name, wl.Name)
			}
		}
	}
}

// TestGuaranteesHold asserts the harness's accuracy measurements reproduce
// the theory on the shuffled workload: deterministic uniform-guarantee
// families stay within eps, and the capped strawman's recorded error
// documents its failure on at least one workload.
func TestGuaranteesHold(t *testing.T) {
	cfg := quickConfig()
	workloads, err := Workloads(cfg)
	if err != nil {
		t.Fatalf("workloads: %v", err)
	}
	rep := Run(cfg, DefaultFamilies(cfg), workloads)
	cappedFailedSomewhere := false
	for _, c := range rep.Cells {
		deterministic := c.Family == "gk" || c.Family == "gk-greedy" || c.Family == "mrl"
		if deterministic && c.Workload == "shuffled" && !c.WithinEps {
			t.Errorf("%s/%s/%s: deterministic family exceeded eps: %+v", c.Family, c.Workload, c.Mode, c)
		}
		if c.Family == "capped" && float64(c.MaxRankError) > cfg.Eps*float64(c.N) {
			cappedFailedSomewhere = true
		}
	}
	if !cappedFailedSomewhere {
		t.Errorf("capped strawman stayed within eps everywhere — the matrix should expose it")
	}
}

// TestAdversarialWorkload checks the construction-backed workload is
// deterministic, non-trivial, and bounded by the requested size.
func TestAdversarialWorkload(t *testing.T) {
	a, err := AdversarialWorkload(20_000)
	if err != nil {
		t.Fatalf("adversarial: %v", err)
	}
	b, err := AdversarialWorkload(20_000)
	if err != nil {
		t.Fatalf("adversarial: %v", err)
	}
	if len(a.Items) == 0 || len(a.Items) > 20_000 {
		t.Fatalf("adversarial workload has %d items, want (0, 20000]", len(a.Items))
	}
	if len(a.Items) != len(b.Items) {
		t.Fatalf("construction is not deterministic: %d vs %d items", len(a.Items), len(b.Items))
	}
	for i := range a.Items {
		if a.Items[i] != b.Items[i] {
			t.Fatalf("construction is not deterministic at position %d", i)
		}
	}
}

// TestReportRoundTrips ensures the report JSON-serializes and carries the
// fields the trajectory diffing relies on.
func TestReportRoundTrips(t *testing.T) {
	cfg := quickConfig()
	cfg.N = 2_000
	workloads, err := Workloads(cfg)
	if err != nil {
		t.Fatalf("workloads: %v", err)
	}
	rep := Run(cfg, DefaultFamilies(cfg)[:2], workloads[:1])
	payload, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Report
	if err := json.Unmarshal(payload, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Schema != 1 || back.Label != "test" || len(back.Cells) != len(rep.Cells) {
		t.Fatalf("round trip lost fields: %+v", back)
	}
}
