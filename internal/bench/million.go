package bench

// The million-key tenancy benchmark: one persistent keyed store driven to
// MillionKeys live keys with zipf-distributed popularity — the shape of a
// real per-metric/per-tenant fleet, where a handful of tenants are hot and
// the overwhelming majority hold a few items each. The cell records what the
// cold tail actually costs: with adaptive promotion every cold key is a tiny
// exact buffer instead of a fully provisioned sketch, so the mean bytes per
// live key must sit far below the per-key GK floor of
// 32·ceil((1/2ε)·log2(2εn̄+2)) bytes (n̄ = mean items per key) — cmd/benchdiff
// gates bytes/key at a quarter of that floor. The cell also records the
// promotion split (both stages must be live) and the wall time of a
// crash-recovery reopen: the run checkpoints mid-stream, keeps ingesting
// into the WAL, then abandons the store without closing it and measures a
// cold Open over the same directory — checkpoint load plus WAL replay.

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"quantilelb/internal/rank"
	"quantilelb/internal/store"
)

// MillionFamily is the family name of the million-key tenancy cell;
// cmd/benchdiff keys its bytes-per-key and recovery gates on it.
const MillionFamily = "store-zipf-1M"

// MillionKeys is the live-key count of the full run; cmd/bench scales it
// down under -quick.
const MillionKeys = 1_000_000

// millionStreamFactor is how many zipf-drawn items follow the key-creating
// pass, per key: total ingest is keys·(1+millionStreamFactor) items.
const millionStreamFactor = 2

// RunMillion measures the store-zipf-1M cell over nKeys live keys: every key
// is touched once (the creation pass that builds the full cold tail), then
// nKeys·millionStreamFactor more items are routed by zipf popularity, with a
// checkpoint taken halfway through the zipf stream so the recovery reopen
// replays a real WAL tail. Accuracy is measured on the hottest key (zipf
// rank 0, promoted to a sketch early on) against the exact oracle of its own
// routed stream, normalized by that stream's length.
func RunMillion(cfg Config, nKeys int) (Cell, error) {
	dir, err := os.MkdirTemp("", "bench-million-")
	if err != nil {
		return Cell{}, fmt.Errorf("bench: million temp dir: %w", err)
	}
	defer os.RemoveAll(dir)

	st, err := store.Open(store.Config{Eps: cfg.Eps, Dir: dir})
	if err != nil {
		return Cell{}, fmt.Errorf("bench: million open: %w", err)
	}

	keys := make([]string, nKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("metric-%07d", i)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rand.New(rand.NewSource(cfg.Seed+1)), zipfS, zipfV, uint64(nKeys-1))

	// Creation pass: one item per key, building the full cold tail. Then the
	// first half of the zipf stream, a checkpoint, and the second half — so
	// the abandoned store leaves behind both a populated checkpoint and a
	// live WAL tail for the recovery reopen to replay.
	var hot []float64
	ingest := func(key string, x float64) {
		st.Update(key, x)
		if key == keys[0] {
			hot = append(hot, x)
		}
	}
	extra := nKeys * millionStreamFactor
	total := nKeys + extra
	start := time.Now()
	for _, k := range keys {
		ingest(k, rng.Float64()*1000)
	}
	for i := 0; i < extra/2; i++ {
		ingest(keys[zipf.Uint64()], rng.Float64()*1000)
	}
	if err := st.Checkpoint(); err != nil {
		return Cell{}, fmt.Errorf("bench: million checkpoint: %w", err)
	}
	for i := extra / 2; i < extra; i++ {
		ingest(keys[zipf.Uint64()], rng.Float64()*1000)
	}
	elapsed := time.Since(start)

	stats := st.Stats()
	cell := Cell{
		Family:        MillionFamily,
		Workload:      "zipf",
		Mode:          "update",
		N:             total,
		NsPerOp:       float64(elapsed.Nanoseconds()) / float64(total),
		ItemsPerSec:   float64(total) / elapsed.Seconds(),
		RetainedItems: stats.RetainedItems,
		RetainedBytes: int(stats.RetainedBytes),
		LiveKeys:      stats.Keys,
		BytesPerKey:   float64(stats.RetainedBytes) / float64(stats.Keys),
		BufferedKeys:  stats.BufferedKeys,
		PromotedKeys:  stats.PromotedKeys,
		PromotionRate: float64(stats.PromotedKeys) / float64(stats.Keys),
	}
	if stats.Keys != nKeys {
		return Cell{}, fmt.Errorf("bench: million live keys = %d, want %d", stats.Keys, nKeys)
	}

	// Accuracy of the hottest key against the oracle of its own routed
	// stream; the fraction is normalized by that stream's length (not by
	// cell.N, which counts all keys' items).
	oracle := rank.Float64Oracle(hot)
	worst := 0
	for i := 0; i <= cfg.Grid; i++ {
		phi := float64(i) / float64(cfg.Grid)
		got, ok := st.Query(keys[0], phi)
		if !ok {
			return Cell{}, fmt.Errorf("bench: million hot key answered not-ok")
		}
		if e := oracle.RankError(got, phi); e > worst {
			worst = e
		}
	}
	cell.MaxRankError = worst
	cell.MaxRankErrorFrac = float64(worst) / float64(len(hot))

	// Crash-recovery reopen: abandon the live store without Close (its final
	// checkpoint must NOT run — the measured Open has to pay for the WAL
	// tail) and cold-open the directory. Drop the abandoned store first so
	// the two stores' footprints do not overlap at full scale.
	st = nil
	runtime.GC()
	recoverStart := time.Now()
	st2, err := store.Open(store.Config{Eps: cfg.Eps, Dir: dir})
	if err != nil {
		return Cell{}, fmt.Errorf("bench: million recovery open: %w", err)
	}
	cell.RecoveryMs = float64(time.Since(recoverStart).Microseconds()) / 1000
	if got := st2.Len(); got != nKeys {
		return Cell{}, fmt.Errorf("bench: recovery restored %d keys, want %d", got, nKeys)
	}
	if err := st2.Close(); err != nil {
		return Cell{}, fmt.Errorf("bench: million recovered close: %w", err)
	}
	return cell, nil
}
