package bench

import (
	"testing"
)

// TestKeyedFamiliesPresent pins the matrix coverage: the keyed-fanout
// families exist at the three documented fanouts and only the 10k-key
// family carries a budget.
func TestKeyedFamiliesPresent(t *testing.T) {
	fams := keyedFamilies(DefaultConfig())
	if len(fams) != 3 {
		t.Fatalf("got %d keyed families", len(fams))
	}
	want := map[string]int64{
		"store-zipf-1":   0,
		"store-zipf-100": 0,
		"store-zipf-10k": keyedBudgetBytes,
	}
	for _, f := range fams {
		budget, ok := want[f.Name]
		if !ok {
			t.Errorf("unexpected keyed family %q", f.Name)
			continue
		}
		if f.BudgetBytes != budget {
			t.Errorf("family %q budget = %d, want %d", f.Name, f.BudgetBytes, budget)
		}
	}
	// The 1-key family gates on the full uniform guarantee; the others are
	// per-key subsamples and must not.
	for _, f := range fams {
		wantEps := f.Name == "store-zipf-1"
		if (f.EpsTarget > 0) != wantEps {
			t.Errorf("family %q EpsTarget = %g", f.Name, f.EpsTarget)
		}
	}
}

// TestKeyed10kBudgetEnforced is the acceptance gate of the lifecycle cell:
// the 10k-key zipf family, driven with a full workload-sized stream, must
// stay within its global retained-bytes budget by evicting (not by OOMing,
// not by overshooting), and the harness must record both quantities in the
// cell.
func TestKeyed10kBudgetEnforced(t *testing.T) {
	cfg := DefaultConfig()
	cfg.N = 60_000
	cfg.Repetitions = 1
	gen := workloadItems(t, cfg)

	var fam Family
	for _, f := range keyedFamilies(cfg) {
		if f.Name == "store-zipf-10k" {
			fam = f
		}
	}
	if fam.New == nil {
		t.Fatal("store-zipf-10k family missing")
	}
	tgt := fam.New()
	for _, x := range gen {
		tgt.Update(x)
	}
	kt := tgt.(*keyedTarget)
	stats := kt.st.Stats()
	if stats.RetainedBytes > keyedBudgetBytes {
		t.Fatalf("retained %d bytes exceeds budget %d", stats.RetainedBytes, keyedBudgetBytes)
	}
	if kt.Evictions() == 0 {
		t.Fatal("no evictions observed: the budget never bit, so the cell proves nothing")
	}
	// The hot key survives LRU (it is touched constantly) and answers.
	if _, ok := tgt.Query(0.5); !ok {
		t.Fatal("hot key evicted or empty")
	}

	// The harness records both quantities in the cell.
	wl := Workload{Name: "shuffled", Items: gen}
	cell := measureForTest(cfg, fam, wl)
	if cell.BudgetBytes != keyedBudgetBytes {
		t.Errorf("cell budget = %d", cell.BudgetBytes)
	}
	if cell.Evictions == 0 {
		t.Error("cell records no evictions")
	}
	if int64(cell.RetainedBytes) > cell.BudgetBytes {
		t.Errorf("cell retained %d exceeds budget %d", cell.RetainedBytes, cell.BudgetBytes)
	}
}

// workloadItems materializes one shuffled stream of cfg.N items.
func workloadItems(t *testing.T, cfg Config) []float64 {
	t.Helper()
	wls, err := Workloads(Config{N: cfg.N, Seed: cfg.Seed})
	if err != nil {
		t.Fatalf("workloads: %v", err)
	}
	for _, wl := range wls {
		if wl.Name == "shuffled" {
			return wl.Items
		}
	}
	t.Fatal("no shuffled workload")
	return nil
}

// measureForTest runs one harness cell (the production measure path) with a
// small grid.
func measureForTest(cfg Config, fam Family, wl Workload) Cell {
	cfg.Grid = 50
	rep := Run(cfg, []Family{fam}, []Workload{wl})
	return rep.Cells[0]
}
