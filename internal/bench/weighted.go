package bench

// Weighted-ingestion families: the weighted write path measured in the same
// matrix as everything else. Two shapes:
//
//   - Constant weight (weighted-gk, weighted-kll, weighted-mlq): every item
//     carries the
//     same weight, so the weighted quantiles coincide with the plain ones
//     and the cell's rank error against the unweighted oracle remains a
//     valid accuracy gate — while the ingest path exercises heavy tuples,
//     high compactor levels, and total-weight thresholds throughout.
//   - Zipf-distributed weights (weighted-zipf): the realistic pre-counted
//     shape (a few huge counts, a long tail of small ones). Skewed weights
//     reshape the distribution, so the cell records its error without
//     gating on eps; the weighted differential suite (internal/checker)
//     carries the ε·W assertion for skewed weights against the weighted
//     oracle.

import (
	"math/rand"

	"quantilelb/internal/gk"
	"quantilelb/internal/kll"
	"quantilelb/internal/mlq"
	"quantilelb/internal/req"
)

// weightedConstFactor is the constant per-item weight of the weighted-gk and
// weighted-kll families: every cell ingests 16× its nominal item count in
// total weight.
const weightedConstFactor = 16

// weightedZipf parameterize the weighted-zipf family's weight distribution
// (zipf s=1.2 over 1..2^16: mostly 1s, occasionally tens of thousands).
const (
	weightedZipfS   = 1.2
	weightedZipfMax = 1 << 16
)

// weightedIngester is the native weighted surface the wrappers drive.
type weightedIngester interface {
	WeightedUpdate(x float64, w int64)
	WeightedUpdateBatch(xs []float64, ws []int64)
	Query(phi float64) (float64, bool)
	Count() int
	StoredCount() int
}

// weightedTarget adapts a natively weighted summary to the harness: Update
// routes through WeightedUpdate with the next weight from draw, UpdateBatch
// through WeightedUpdateBatch with a drawn weight column.
type weightedTarget struct {
	inner weightedIngester
	draw  func() int64
	ws    []int64 // batch scratch
}

// Update ingests one item at its drawn weight.
func (t *weightedTarget) Update(x float64) { t.inner.WeightedUpdate(x, t.draw()) }

// UpdateBatch ingests a batch with a freshly drawn weight per element.
func (t *weightedTarget) UpdateBatch(xs []float64) {
	t.ws = t.ws[:0]
	for range xs {
		t.ws = append(t.ws, t.draw())
	}
	t.inner.WeightedUpdateBatch(xs, t.ws)
}

// Query, Count, and StoredCount delegate to the wrapped summary.
func (t *weightedTarget) Query(phi float64) (float64, bool) { return t.inner.Query(phi) }
func (t *weightedTarget) Count() int                        { return t.inner.Count() }
func (t *weightedTarget) StoredCount() int                  { return t.inner.StoredCount() }

// constWeight returns a draw function yielding the constant w.
func constWeight(w int64) func() int64 {
	return func() int64 { return w }
}

// zipfWeight returns a deterministic zipf weight source.
func zipfWeight(seed int64) func() int64 {
	z := rand.NewZipf(rand.New(rand.NewSource(seed)), weightedZipfS, 1, weightedZipfMax-1)
	return func() int64 { return int64(z.Uint64()) + 1 }
}

// weightedFamilies returns the weighted-ingestion families for cfg.Eps.
func weightedFamilies(cfg Config) []Family {
	eps := cfg.Eps
	return []Family{
		{
			Name: "weighted-gk",
			New: func() Target {
				return &weightedTarget{inner: gk.NewFloat64(eps), draw: constWeight(weightedConstFactor)}
			},
			BytesPerItem: gkTupleBytes,
			// Constant weights leave quantiles unchanged, so the plain-oracle
			// gate applies at the configured eps.
			EpsTarget: eps,
		},
		{
			Name: "weighted-kll",
			New: func() Target {
				return &weightedTarget{inner: kll.NewFloat64(eps, kll.WithSeed(cfg.Seed)), draw: constWeight(weightedConstFactor)}
			},
			BytesPerItem: itemBytes,
			// Randomized, like the kll family: benchdiff applies its slack.
			EpsTarget: eps,
		},
		{
			Name: "weighted-mlq",
			New: func() Target {
				return &weightedTarget{inner: mlq.NewFloat64(eps), draw: constWeight(weightedConstFactor)}
			},
			BytesPerItem: mlqEntryBytes,
			// Deterministic family under constant weights: the plain-oracle
			// gate applies at the configured eps.
			EpsTarget: eps,
		},
		{
			Name: "weighted-req",
			New: func() Target {
				return &weightedTarget{inner: req.NewFloat64(eps), draw: constWeight(weightedConstFactor)}
			},
			BytesPerItem: reqEntryBytes,
			// Constant weights leave quantiles unchanged, so both the uniform
			// and the high-tail relative gate apply against the plain oracle
			// while the ingest path exercises the weighted fold.
			EpsTarget:    eps,
			RelEpsTarget: eps,
		},
		{
			Name: "weighted-zipf",
			New: func() Target {
				return &weightedTarget{inner: gk.NewFloat64(eps), draw: zipfWeight(cfg.Seed)}
			},
			BytesPerItem: gkTupleBytes,
			// Skewed weights reshape the distribution relative to the
			// unweighted oracle: record-only (the weighted differential
			// suite gates this shape against the weighted oracle).
		},
	}
}
