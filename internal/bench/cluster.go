package bench

import (
	"context"
	"fmt"

	"quantilelb/internal/cluster"
	"quantilelb/internal/encoding"
	"quantilelb/internal/gk"
)

// clusterNodes is the number of writer nodes the cluster family simulates,
// matching the 3-server quickstart in README.md.
const clusterNodes = 3

// clusterTarget drives the distributed tier of internal/cluster in-process:
// items are spread round-robin over K GK writer nodes, and queries are
// answered by an aggregator that pulls each node's wire payload (the real
// encode → decode → COMBINE-merge path, minus the HTTP transport) and serves
// the merged view. Its cells record what distribution costs: ingest ns/op of
// a node plus the routing, accuracy of the max-eps merged view.
type clusterTarget struct {
	nodes []*gk.Summary[float64]
	agg   *cluster.Aggregator
	next  int
}

func newClusterTarget(eps float64) *clusterTarget {
	t := &clusterTarget{}
	sources := make([]cluster.Source, clusterNodes)
	for i := 0; i < clusterNodes; i++ {
		node := gk.NewFloat64(eps)
		t.nodes = append(t.nodes, node)
		sources[i] = &cluster.SummarySource{
			SourceName: fmt.Sprintf("node-%d", i),
			Payload:    func() ([]byte, error) { return encoding.Encode(node) },
		}
	}
	t.agg = cluster.New(sources...)
	return t
}

// Update routes one item to the next node round-robin.
func (t *clusterTarget) Update(x float64) {
	t.nodes[t.next].Update(x)
	t.next = (t.next + 1) % len(t.nodes)
}

// UpdateBatch hands a whole batch to one node, like a load balancer routing
// an aggregated producer request.
func (t *clusterTarget) UpdateBatch(xs []float64) {
	t.nodes[t.next].UpdateBatch(xs)
	t.next = (t.next + 1) % len(t.nodes)
}

// Refresh pulls every node's payload and rebuilds the merged view; the
// harness calls it before measuring accuracy (same hook as the sharded
// wrapper).
func (t *clusterTarget) Refresh() {
	if err := t.agg.PullOnce(context.Background()); err != nil {
		// Local sources cannot fail to fetch; an error here means the
		// encode/decode/merge path is broken, which the matrix must surface.
		panic("bench: cluster pull failed: " + err.Error())
	}
}

// Query answers from the aggregator's merged view.
func (t *clusterTarget) Query(phi float64) (float64, bool) { return t.agg.Query(phi) }

// Count reports the total items across all nodes (the merged view's count).
func (t *clusterTarget) Count() int {
	n := 0
	for _, node := range t.nodes {
		n += node.Count()
	}
	return n
}

// StoredCount reports the items retained by the merged global view.
func (t *clusterTarget) StoredCount() int { return t.agg.StoredCount() }
