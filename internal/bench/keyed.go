package bench

// Keyed-fanout families: the multi-tenant store of internal/store driven at
// 1, 100, and 10 000 keys with zipf-distributed key popularity — the shape
// of real per-metric/per-tenant deployments, where a few keys are hot and a
// long tail is cold. The cells record what multi-tenancy costs on the write
// path (key routing, stripe locking, lazy creation) and what lifecycle
// management does under a global retained-bytes budget: the 10k-key family
// runs under a budget deliberately below its unevicted footprint, so its
// cells prove the store stays within budget by evicting cold keys rather
// than growing without bound.

import (
	"fmt"
	"math/rand"

	"quantilelb/internal/store"
)

// keyedBudgetBytes is the global retained-bytes budget of the 10k-key
// family: small enough that both the full matrix run and CI's -quick run
// exceed it without eviction, so every recorded cell shows the budget
// actually enforced (evictions > 0, retained <= budget).
const keyedBudgetBytes = 256 << 10

// zipfS and zipfV parameterize the key-popularity distribution; s = 1.1 is
// the classic web-workload skew (a few hot tenants, a long cold tail).
const (
	zipfS = 1.1
	zipfV = 1
)

// keyedTarget drives a store through the harness: every update draws a key
// from the zipf popularity distribution and routes the item to that key's
// summary. Queries are answered from the hottest key (zipf rank 0) — for
// the 1-key family that is the whole stream, so the family carries the full
// uniform guarantee; beyond one key the hot key holds a popularity-weighted
// subsample and the cell records its error without gating on eps.
type keyedTarget struct {
	st   *store.Store
	keys []string
	zipf *rand.Zipf
	n    int
}

// newKeyedTarget builds a store target with nKeys keys at accuracy eps under
// the given retained-bytes budget (0 = unbounded).
func newKeyedTarget(eps float64, nKeys int, seed int64, budget int64) *keyedTarget {
	// PromoteItems: -1 keeps every key a fully provisioned sketch from its
	// first item — the cost model these families have always measured, and
	// what makes the 10k-key family exceed its budget and prove eviction
	// runs. Adaptive promotion (cold keys as cheap exact buffers) is
	// measured by the store-zipf-1M cell instead.
	t := &keyedTarget{
		st:   store.New(store.Config{Eps: eps, MaxRetainedBytes: budget, PromoteItems: -1}),
		keys: make([]string, nKeys),
	}
	for i := range t.keys {
		t.keys[i] = fmt.Sprintf("metric-%05d", i)
	}
	if nKeys > 1 {
		// math/rand (v1): rand/v2 has no Zipf generator. Deterministic seed
		// so cells are comparable across runs.
		t.zipf = rand.NewZipf(rand.New(rand.NewSource(seed)), zipfS, zipfV, uint64(nKeys-1))
	}
	return t
}

// pick draws the key for the next item (or batch) from the popularity
// distribution.
func (t *keyedTarget) pick() string {
	if t.zipf == nil {
		return t.keys[0]
	}
	return t.keys[t.zipf.Uint64()]
}

// Update routes one item to a zipf-drawn key.
func (t *keyedTarget) Update(x float64) {
	t.st.Update(t.pick(), x)
	t.n++
}

// UpdateBatch routes a whole batch to one zipf-drawn key — the shape of a
// producer flushing a per-metric buffer — through the store's bulk path.
func (t *keyedTarget) UpdateBatch(xs []float64) {
	t.st.UpdateBatch(t.pick(), xs)
	t.n += len(xs)
}

// Query answers from the hottest key's summary.
func (t *keyedTarget) Query(phi float64) (float64, bool) {
	return t.st.Query(t.keys[0], phi)
}

// Count reports the items routed across all keys.
func (t *keyedTarget) Count() int { return t.n }

// StoredCount reports the items retained across all keys — the footprint
// the budget bounds.
func (t *keyedTarget) StoredCount() int { return t.st.Stats().RetainedItems }

// Evictions reports how many keys lifecycle management evicted.
func (t *keyedTarget) Evictions() int { return t.st.Evictions() }

// RetainedBytes reports the store's real budget-accounted footprint, so the
// recorded cells (and the benchdiff budget gate) use the same capacity-aware
// metric the store enforces MaxRetainedBytes against.
func (t *keyedTarget) RetainedBytes() int64 { return t.st.Stats().RetainedBytes }

// keyedFamilies returns the keyed-fanout families, configured for cfg.Eps.
func keyedFamilies(cfg Config) []Family {
	eps := cfg.Eps
	mk := func(name string, nKeys int, budget int64, epsTarget float64) Family {
		return Family{
			Name:         name,
			New:          func() Target { return newKeyedTarget(eps, nKeys, cfg.Seed, budget) },
			BytesPerItem: gkTupleBytes,
			EpsTarget:    epsTarget,
			BudgetBytes:  budget,
		}
	}
	return []Family{
		// One key: the pure overhead of the keyed tier over a bare GK
		// summary; the single key holds the whole stream, so the uniform
		// guarantee gates exactly as for "gk".
		mk("store-zipf-1", 1, 0, eps),
		// 100 keys, unbudgeted: routing + stripe cost at moderate fanout.
		// The hot key holds a subsample, so no uniform eps gates.
		mk("store-zipf-100", 100, 0, 0),
		// 10k keys under a budget below the unevicted footprint: the
		// lifecycle cell. benchdiff asserts retained <= budget.
		mk("store-zipf-10k", 10_000, keyedBudgetBytes, 0),
	}
}
