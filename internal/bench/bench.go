// Package bench is the workload benchmark harness behind cmd/bench: it runs
// every summary family in this repository against a matrix of workloads and
// measures, per (family, workload, ingestion-mode) cell, the ingestion speed
// (ns per item, items per second), the space actually retained (items and an
// estimate in bytes), and the worst rank error observed against the exact
// oracle of internal/rank.
//
// The harness exists because algorithm choice is workload-dependent — the
// central empirical message of Karnin–Lang–Liberty (FOCS 2016) and of
// Cormode et al., "Theory meets Practice at the Median" — while the paper
// reproduced here (Cormode & Veselý, PODS 2020) pins down the worst case:
// the adversarial workload in the matrix is the paper's own lower-bound
// stream π, materialized to float64, so the recorded trajectory always
// contains the input family the theory says is hardest. cmd/bench serializes
// the matrix to a BENCH_*.json file at the repository root; successive PRs
// diff these files to keep a recorded performance trajectory (ROADMAP.md).
package bench

import (
	"fmt"
	"runtime"
	"time"

	"quantilelb/internal/rank"
	"quantilelb/internal/stream"
)

// Target is the slice of the summary interface the harness drives: ingest,
// query, and space accounting. Every summary in this repository satisfies it.
type Target interface {
	Update(x float64)
	Query(phi float64) (float64, bool)
	Count() int
	StoredCount() int
}

// BatchTarget is the optional bulk-ingest fast path (gk, kll, mrl, sampling,
// and the sharded wrapper all provide it). Families whose target implements
// it get an extra "batch"-mode cell per workload.
type BatchTarget interface {
	UpdateBatch(xs []float64)
}

// refresher is implemented by the sharded wrapper; the harness forces a
// snapshot rebuild before measuring accuracy so buffered items are visible.
type refresher interface {
	Refresh()
}

// evictioner is implemented by the keyed-store targets; the harness records
// how many keys lifecycle management evicted during the cell.
type evictioner interface {
	Evictions() int
}

// retainedByteser is the optional capacity-aware footprint a target can
// report (the keyed-store targets surface store.Stats().RetainedBytes, which
// counts slice capacities via summary.Sized). Targets without it fall back to
// the flat StoredCount × BytesPerItem estimate — the same fallback the store
// itself documents for non-Sized summaries.
type retainedByteser interface {
	RetainedBytes() int64
}

// Family describes one summary family in the matrix.
type Family struct {
	// Name identifies the family in the report (e.g. "gk", "sharded-kll").
	Name string
	// New builds a fresh summary for one cell.
	New func() Target
	// BytesPerItem estimates the memory cost of one retained item (24 for
	// GK-lineage tuples holding value+G+Delta, 8 for plain float64 buffers).
	// RetainedBytes in a cell is StoredCount * BytesPerItem.
	BytesPerItem int
	// EpsTarget is the uniform accuracy the family was configured for, or 0
	// when the family makes no uniform guarantee (biased: relative error
	// only; capped: deliberately unsound; keyed fanout beyond one key: the
	// recorded answer is a per-key subsample of the workload).
	EpsTarget float64
	// BudgetBytes is the global retained-bytes budget a keyed-store family
	// runs under (0 for unbudgeted families). cmd/benchdiff gates
	// RetainedBytes <= BudgetBytes for cells that set it.
	BudgetBytes int64
	// RelEpsTarget is the high-tail relative accuracy the family guarantees
	// (internal/req lineage): rank error at most RelEpsTarget·(N−t+1) at
	// target rank t. 0 for families with no relative guarantee. Cells of
	// such families additionally record the tail-error column and
	// cmd/benchdiff gates it.
	RelEpsTarget float64
}

// Workload is one column of the matrix: a named, materialized stream.
type Workload struct {
	Name  string
	Items []float64
}

// Cell is one measured matrix entry.
type Cell struct {
	Family   string `json:"family"`
	Workload string `json:"workload"`
	// Mode is "update" (item-at-a-time) or "batch" (UpdateBatch in
	// config-sized chunks).
	Mode          string  `json:"mode"`
	N             int     `json:"n"`
	NsPerOp       float64 `json:"ns_per_op"`
	ItemsPerSec   float64 `json:"items_per_sec"`
	RetainedItems int     `json:"retained_items"`
	RetainedBytes int     `json:"retained_bytes"`
	// MaxRankError is the worst absolute rank error over the quantile grid,
	// measured against the exact oracle; MaxRankErrorFrac normalizes it by N
	// (comparable to eps).
	MaxRankError     int     `json:"max_rank_error"`
	MaxRankErrorFrac float64 `json:"max_rank_error_frac"`
	// EpsTarget and WithinEps are only meaningful for families with a
	// uniform guarantee (EpsTarget > 0).
	EpsTarget float64 `json:"eps_target,omitempty"`
	WithinEps bool    `json:"within_eps,omitempty"`
	// RelEpsTarget, TailRelError, and WithinRelEps are only set for families
	// with a high-tail relative guarantee (internal/req lineage):
	// TailRelError is the worst error-to-budget ratio observed at
	// ϕ ∈ {0.999, 0.9999, 1} (budget N−t+1, so the ratio is comparable to
	// eps; one item of rank-rounding error is forgiven before dividing,
	// matching the uniform gate's +1), and WithinRelEps is whether the
	// worst ratio over the whole grid plus the tail column stayed within
	// RelEpsTarget.
	RelEpsTarget float64 `json:"rel_eps_target,omitempty"`
	TailRelError float64 `json:"tail_rel_error,omitempty"`
	WithinRelEps bool    `json:"within_rel_eps,omitempty"`
	// BudgetBytes and Evictions are only set for keyed-store families:
	// BudgetBytes echoes the family's global retained-bytes budget (the
	// benchdiff gate asserts RetainedBytes <= BudgetBytes), and Evictions
	// counts the keys the store evicted to stay under it.
	BudgetBytes int64 `json:"budget_bytes,omitempty"`
	Evictions   int   `json:"evictions,omitempty"`
	// WireBytes, WireBytesPerSec, MergeStalenessMs, and DeltaFetches are only
	// set by the aggregation fan-in cells (RunFanin): the snapshot bytes the
	// aggregator received over HTTP across the measured pull rounds (after a
	// warm-up round paid for the initial full payloads), their per-second
	// rate over the measured wall time, the mean wall time of one pull round
	// in milliseconds (the merge staleness a change suffers once a round
	// begins), and how many fetches were answered with incremental KindDelta
	// payloads. cmd/benchdiff gates the delta-vs-full bandwidth ratio on
	// these columns.
	WireBytes        int64   `json:"wire_bytes,omitempty"`
	WireBytesPerSec  float64 `json:"wire_bytes_per_sec,omitempty"`
	MergeStalenessMs float64 `json:"merge_staleness_ms,omitempty"`
	DeltaFetches     int     `json:"delta_fetches,omitempty"`
	// LiveKeys through RecoveryMs are only set by the million-key tenancy
	// cell (RunMillion): the live key count at measurement, the mean
	// budget-accounted bytes per live key (cmd/benchdiff gates it against
	// the per-key GK-floor cost — adaptive promotion is what keeps the long
	// cold tail far below it), the split of keys still in the pre-promotion
	// exact-buffer stage versus promoted to sketches, the promoted fraction,
	// and the wall time of a crash-recovery reopen (checkpoint load + WAL
	// replay) in milliseconds.
	LiveKeys      int     `json:"live_keys,omitempty"`
	BytesPerKey   float64 `json:"bytes_per_key,omitempty"`
	BufferedKeys  int     `json:"buffered_keys,omitempty"`
	PromotedKeys  int     `json:"promoted_keys,omitempty"`
	PromotionRate float64 `json:"promotion_rate,omitempty"`
	RecoveryMs    float64 `json:"recovery_ms,omitempty"`
}

// Report is the machine-readable result of one full matrix run; cmd/bench
// writes it as BENCH_PR<n>.json at the repository root.
type Report struct {
	// Schema identifies the report layout for future diff tooling.
	Schema int `json:"schema"`
	// Label names the run (e.g. "PR2").
	Label     string `json:"label"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
	// Timestamp is RFC 3339 UTC.
	Timestamp string `json:"timestamp"`
	// Config echoes the run parameters.
	N         int     `json:"n"`
	Eps       float64 `json:"eps"`
	BatchSize int     `json:"batch_size"`
	Grid      int     `json:"grid"`
	Seed      int64   `json:"seed"`
	Cells     []Cell  `json:"cells"`
}

// Config parameterizes a matrix run.
type Config struct {
	// N is the stream length per workload (the adversarial workload has its
	// own construction-determined length, recorded per cell).
	N int
	// Eps is the accuracy every family is configured for.
	Eps float64
	// Seed drives the workload generators (and randomized summaries).
	Seed int64
	// BatchSize is the chunk size of batch-mode ingestion.
	BatchSize int
	// Grid is the number of evenly spaced quantile queries used to measure
	// rank error.
	Grid int
	// Repetitions: each cell's ingest is timed this many times on a fresh
	// summary and the fastest run is reported (best-of-k suppresses GC and
	// scheduler noise).
	Repetitions int
	// Label names the run in the report (e.g. "PR2").
	Label string
}

// DefaultConfig returns the configuration cmd/bench uses unless overridden:
// 200k items, eps = 1%, 1024-item batches, 200-point error grid, best of 3.
func DefaultConfig() Config {
	return Config{
		N:           200_000,
		Eps:         0.01,
		Seed:        1,
		BatchSize:   1024,
		Grid:        200,
		Repetitions: 3,
		Label:       "dev",
	}
}

// Workloads materializes the matrix columns for a config: sorted, reverse,
// shuffled (random), zipf (skewed), duplicates (heavy tie handling), drift
// (the sliding-window regime), and the paper's adversarial stream.
func Workloads(cfg Config) ([]Workload, error) {
	gen := stream.NewGenerator(cfg.Seed)
	out := make([]Workload, 0, 7)
	for _, name := range []string{"sorted", "reverse", "shuffled", "zipf", "duplicates", "drift"} {
		st, err := gen.ByName(name, cfg.N)
		if err != nil {
			return nil, err
		}
		out = append(out, Workload{Name: st.Name(), Items: st.Items()})
	}
	adv, err := AdversarialWorkload(cfg.N)
	if err != nil {
		return nil, fmt.Errorf("bench: building adversarial workload: %w", err)
	}
	out = append(out, adv)
	return out, nil
}

// Run executes the full family × workload × mode matrix and returns the
// report. Cells are measured sequentially so they never contend with each
// other.
func Run(cfg Config, families []Family, workloads []Workload) *Report {
	rep := &Report{
		Schema:    1,
		Label:     cfg.Label,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		N:         cfg.N,
		Eps:       cfg.Eps,
		BatchSize: cfg.BatchSize,
		Grid:      cfg.Grid,
		Seed:      cfg.Seed,
	}
	for _, wl := range workloads {
		oracle := rank.Float64Oracle(wl.Items)
		for _, fam := range families {
			rep.Cells = append(rep.Cells, measure(cfg, fam, wl, oracle, "update"))
			if _, ok := fam.New().(BatchTarget); ok {
				rep.Cells = append(rep.Cells, measure(cfg, fam, wl, oracle, "batch"))
			}
		}
	}
	return rep
}

// measure times ingestion of one cell (best of cfg.Repetitions) and verifies
// accuracy of the last-built summary against the oracle.
func measure(cfg Config, fam Family, wl Workload, oracle *rank.Oracle[float64], mode string) Cell {
	reps := cfg.Repetitions
	if reps < 1 {
		reps = 1
	}
	var best time.Duration
	var s Target
	for r := 0; r < reps; r++ {
		s = fam.New()
		start := time.Now()
		if mode == "batch" {
			bt := s.(BatchTarget)
			for i := 0; i < len(wl.Items); i += cfg.BatchSize {
				end := i + cfg.BatchSize
				if end > len(wl.Items) {
					end = len(wl.Items)
				}
				bt.UpdateBatch(wl.Items[i:end])
			}
		} else {
			for _, x := range wl.Items {
				s.Update(x)
			}
		}
		elapsed := time.Since(start)
		if r == 0 || elapsed < best {
			best = elapsed
		}
	}
	if rf, ok := s.(refresher); ok {
		rf.Refresh()
	}
	n := len(wl.Items)
	cell := Cell{
		Family:        fam.Name,
		Workload:      wl.Name,
		Mode:          mode,
		N:             n,
		NsPerOp:       float64(best.Nanoseconds()) / float64(n),
		ItemsPerSec:   float64(n) / best.Seconds(),
		RetainedItems: s.StoredCount(),
		RetainedBytes: s.StoredCount() * fam.BytesPerItem,
		EpsTarget:     fam.EpsTarget,
		BudgetBytes:   fam.BudgetBytes,
	}
	if rb, ok := s.(retainedByteser); ok {
		cell.RetainedBytes = int(rb.RetainedBytes())
	}
	if ev, ok := s.(evictioner); ok {
		cell.Evictions = ev.Evictions()
	}
	worst := 0
	for i := 0; i <= cfg.Grid; i++ {
		phi := float64(i) / float64(cfg.Grid)
		got, ok := s.Query(phi)
		if !ok {
			continue
		}
		if e := oracle.RankError(got, phi); e > worst {
			worst = e
		}
	}
	cell.MaxRankError = worst
	cell.MaxRankErrorFrac = float64(worst) / float64(n)
	if fam.EpsTarget > 0 {
		cell.WithinEps = float64(worst) <= fam.EpsTarget*float64(n)+1
	}
	if fam.RelEpsTarget > 0 {
		measureRelative(&cell, fam, s, wl, cfg.Grid)
	}
	return cell
}

// tailPhis is the tail column recorded for relative-guarantee families; 1.0
// is included because the high-tail budget there is a single item, making the
// cell an exactness assertion on the stream maximum.
var tailPhis = [3]float64{0.999, 0.9999, 1}

// measureRelative records the tail-error column of a relative-guarantee
// cell: each answer's rank error is divided by the high-tail budget
// (N−t+1 at target rank t), swept over the uniform grid plus the tail
// column, and gated at RelEpsTarget with no eps slack (the families
// carrying the guarantee are deterministic). One item of absolute error is
// forgiven before dividing, mirroring the uniform gate's +1: it absorbs the
// rank-rounding quantization between the summary's query grid and the
// oracle's (the weighted wrapper quantizes ranks in weight units, the
// item oracle in items), which would otherwise dominate the budget at the
// extreme tail where N−t+1 is a handful of items.
func measureRelative(cell *Cell, fam Family, s Target, wl Workload, grid int) {
	oracle := rank.NewRelativeOracle(wl.Items)
	cell.RelEpsTarget = fam.RelEpsTarget
	worstRatio := 0.0
	for i := 0; i <= grid+len(tailPhis); i++ {
		var phi float64
		if i <= grid {
			phi = float64(i) / float64(grid)
		} else {
			phi = tailPhis[i-grid-1]
		}
		got, ok := s.Query(phi)
		if !ok {
			continue
		}
		var ratio float64
		if budget := oracle.TopRank(phi); budget > 0 {
			if err := oracle.RankError(got, phi) - 1; err > 0 {
				ratio = float64(err) / float64(budget)
			}
		}
		if ratio > worstRatio {
			worstRatio = ratio
		}
		for _, tp := range tailPhis {
			if phi == tp && ratio > cell.TailRelError {
				cell.TailRelError = ratio
			}
		}
	}
	cell.WithinRelEps = worstRatio <= fam.RelEpsTarget+1e-9
}
