package mrl

// Weighted-input coverage: the weight-expanded buffer collapse must conserve
// weight, keep the buffer invariants, and answer within ε·W against the
// exact weighted oracle (MRL is deterministic, so no slack).

import (
	"math/rand"
	"testing"

	"quantilelb/internal/rank"
)

func TestWeightedUpdateWithinEps(t *testing.T) {
	const n, eps = 3000, 0.02
	rng := rand.New(rand.NewSource(29))
	items := make([]float64, n)
	weights := make([]int64, n)
	var totalW int64
	for i := range items {
		items[i] = float64(rng.Intn(n / 2))
		weights[i] = int64(1 + rng.Intn(40))
		if rng.Intn(200) == 0 {
			weights[i] = 5000 // several capacities' worth in one item
		}
		totalW += weights[i]
	}
	s := NewFloat64(eps, int(totalW))
	for i, x := range items {
		s.WeightedUpdate(x, weights[i])
		if i%500 == 0 {
			if err := s.CheckInvariant(); err != nil {
				t.Fatalf("invariant after %d weighted updates: %v", i+1, err)
			}
		}
	}
	if err := s.CheckInvariant(); err != nil {
		t.Fatalf("final invariant: %v", err)
	}
	oracle := rank.Float64WeightedOracle(items, weights)
	if int64(s.Count()) != oracle.TotalWeight() {
		t.Fatalf("Count = %d, want total weight %d", s.Count(), oracle.TotalWeight())
	}
	allowance := eps * float64(oracle.TotalWeight())
	for g := 0; g <= 100; g++ {
		phi := float64(g) / 100
		got, ok := s.Query(phi)
		if !ok {
			t.Fatalf("Query(%g) failed", phi)
		}
		if e := oracle.RankError(got, phi); float64(e) > allowance+1 {
			t.Errorf("phi=%g: weighted rank error %d exceeds allowance %.1f", phi, e, allowance)
		}
	}
}

func TestWeightedUpdateBatchAgreesWithSequential(t *testing.T) {
	// MRL is deterministic: the batch path must produce exactly the answers
	// of the pairwise path.
	const n, eps = 1000, 0.05
	rng := rand.New(rand.NewSource(31))
	items := make([]float64, n)
	weights := make([]int64, n)
	var totalW int64
	for i := range items {
		items[i] = rng.Float64() * 100
		weights[i] = int64(1 + rng.Intn(20))
		totalW += weights[i]
	}
	a := NewFloat64(eps, int(totalW))
	b := NewFloat64(eps, int(totalW))
	a.WeightedUpdateBatch(items, weights)
	for i, x := range items {
		b.WeightedUpdate(x, weights[i])
	}
	if a.Count() != b.Count() || a.StoredCount() != b.StoredCount() {
		t.Fatalf("batch diverged: n %d vs %d, stored %d vs %d", a.Count(), b.Count(), a.StoredCount(), b.StoredCount())
	}
	for g := 0; g <= 50; g++ {
		phi := float64(g) / 50
		av, _ := a.Query(phi)
		bv, _ := b.Query(phi)
		if av != bv {
			t.Fatalf("phi=%g: batch answers %g, sequential %g", phi, av, bv)
		}
	}
}

func TestWeightedUpdatePanics(t *testing.T) {
	assertPanics := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	s := NewFloat64(0.1, 1000)
	assertPanics("zero weight", func() { s.WeightedUpdate(1, 0) })
	assertPanics("batch length mismatch", func() { s.WeightedUpdateBatch([]float64{1}, nil) })
}
