package mrl

import (
	"math"
	"testing"
	"testing/quick"

	"quantilelb/internal/rank"
	"quantilelb/internal/stream"
)

func TestNewValidation(t *testing.T) {
	for _, c := range []struct {
		eps  float64
		maxN int
	}{{0, 100}, {-0.1, 100}, {1, 100}, {0.1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("eps=%v maxN=%d should panic", c.eps, c.maxN)
				}
			}()
			NewFloat64(c.eps, c.maxN)
		}()
	}
}

func TestEmpty(t *testing.T) {
	s := NewFloat64(0.1, 1000)
	if _, ok := s.Query(0.5); ok {
		t.Errorf("query on empty should fail")
	}
	if s.EstimateRank(1) != 0 {
		t.Errorf("rank on empty should be 0")
	}
	if s.Count() != 0 || s.StoredCount() != 0 || s.Levels() != 0 {
		t.Errorf("empty summary has nonzero counters")
	}
	if err := s.CheckInvariant(); err != nil {
		t.Errorf("invariant on empty: %v", err)
	}
}

func TestSingleAndExtremes(t *testing.T) {
	s := NewFloat64(0.1, 100)
	s.Update(7)
	if v, ok := s.Query(0.5); !ok || v != 7 {
		t.Errorf("Query = %v, %v", v, ok)
	}
	s2 := NewFloat64(0.1, 1000)
	for i := 1; i <= 1000; i++ {
		s2.Update(float64(i))
	}
	if v, _ := s2.Query(0); v != 1 {
		t.Errorf("phi=0 should return the minimum, got %v", v)
	}
	if v, _ := s2.Query(1); v != 1000 {
		t.Errorf("phi=1 should return the maximum, got %v", v)
	}
}

func TestAccuracyOnWorkloads(t *testing.T) {
	gen := stream.NewGenerator(1)
	for _, name := range []string{"sorted", "reverse", "shuffled", "uniform", "gaussian"} {
		for _, eps := range []float64{0.1, 0.05, 0.02} {
			n := 20000
			st, err := gen.ByName(name, n)
			if err != nil {
				t.Fatal(err)
			}
			s := NewFloat64(eps, n)
			for _, x := range st.Items() {
				s.Update(x)
			}
			if err := s.CheckInvariant(); err != nil {
				t.Fatalf("%s eps=%v: %v", name, eps, err)
			}
			oracle := rank.Float64Oracle(st.Items())
			for i := 0; i <= 100; i++ {
				phi := float64(i) / 100
				got, ok := s.Query(phi)
				if !ok {
					t.Fatalf("query failed")
				}
				if !oracle.IsApproxQuantile(got, phi, eps+1e-9) {
					t.Fatalf("%s eps=%v phi=%v: error %d > %v", name, eps, phi,
						oracle.RankError(got, phi), eps*float64(n))
				}
			}
		}
	}
}

func TestEstimateRank(t *testing.T) {
	gen := stream.NewGenerator(2)
	n := 20000
	eps := 0.05
	st := gen.Uniform(n)
	s := NewFloat64(eps, n)
	for _, x := range st.Items() {
		s.Update(x)
	}
	oracle := rank.Float64Oracle(st.Items())
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 1.0, -5} {
		est := s.EstimateRank(q)
		exact := oracle.RankLE(q)
		if math.Abs(float64(est-exact)) > eps*float64(n)+1 {
			t.Errorf("EstimateRank(%v) = %d, exact %d", q, est, exact)
		}
	}
}

func TestSpaceIsPolylog(t *testing.T) {
	n := 100000
	eps := 0.01
	s := NewFloat64(eps, n)
	gen := stream.NewGenerator(3)
	st := gen.Shuffled(n)
	maxStored := 0
	for _, x := range st.Items() {
		s.Update(x)
		if s.StoredCount() > maxStored {
			maxStored = s.StoredCount()
		}
	}
	if maxStored >= n/4 {
		t.Errorf("MRL not compressing: %d stored of %d", maxStored, n)
	}
	// MRL space should exceed GK asymptotically (log^2 vs log); just check
	// it is within its own theoretical bound times a small constant.
	if float64(maxStored) > 4*TheoreticalSize(eps, n) {
		t.Errorf("stored %d exceeds 4x theoretical %v", maxStored, TheoreticalSize(eps, n))
	}
}

func TestStoredItemsSortedAndCounted(t *testing.T) {
	s := NewFloat64(0.1, 5000)
	gen := stream.NewGenerator(4)
	for _, x := range gen.Uniform(5000).Items() {
		s.Update(x)
	}
	items := s.StoredItems()
	if len(items) != s.StoredCount() {
		t.Fatalf("StoredItems()=%d, StoredCount()=%d", len(items), s.StoredCount())
	}
	for i := 1; i < len(items); i++ {
		if items[i-1] > items[i] {
			t.Fatalf("StoredItems not sorted")
		}
	}
}

func TestBufferCapacityGrowsWithPrecision(t *testing.T) {
	a := NewFloat64(0.1, 100000).BufferCapacity()
	b := NewFloat64(0.01, 100000).BufferCapacity()
	if b <= a {
		t.Errorf("capacity should grow as eps shrinks: %d vs %d", a, b)
	}
	if NewFloat64(0.1, 100000).Epsilon() != 0.1 {
		t.Errorf("Epsilon accessor wrong")
	}
}

func TestTheoreticalSize(t *testing.T) {
	if TheoreticalSize(0, 10) != 0 || TheoreticalSize(0.1, 0) != 0 {
		t.Errorf("degenerate inputs should be 0")
	}
	if TheoreticalSize(0.01, 1_000_000) <= TheoreticalSize(0.01, 10_000) {
		t.Errorf("theoretical size should grow with N")
	}
}

// Property: the summary never loses the minimum or maximum.
func TestMinMaxProperty(t *testing.T) {
	f := func(items []float64) bool {
		if len(items) == 0 {
			return true
		}
		s := NewFloat64(0.1, len(items))
		mn, mx := items[0], items[0]
		for _, x := range items {
			s.Update(x)
			if x < mn {
				mn = x
			}
			if x > mx {
				mx = x
			}
		}
		lo, ok1 := s.Query(0)
		hi, ok2 := s.Query(1)
		return ok1 && ok2 && lo == mn && hi == mx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: invariant holds throughout random streams.
func TestInvariantProperty(t *testing.T) {
	f := func(items []float64) bool {
		if len(items) == 0 {
			return true
		}
		s := NewFloat64(0.2, len(items))
		for _, x := range items {
			s.Update(x)
			if s.CheckInvariant() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestMerge verifies the level-wise buffer merge: the merged summary must
// answer within max(eps_a, eps_b) of the truth for the combined stream and
// keep the structural invariant.
func TestMerge(t *testing.T) {
	gen := stream.NewGenerator(21)
	eps := 0.02
	const nA, nB = 40000, 25000
	a := NewFloat64(eps, nA+nB)
	b := New(a.cmp, eps, nA+nB)
	if a.BufferCapacity() != b.BufferCapacity() {
		t.Fatalf("same-parameter summaries got different capacities")
	}
	sa := gen.Uniform(nA).Items()
	sb := gen.Gaussian(nB, 2, 0.5).Items()
	for _, x := range sa {
		a.Update(x)
	}
	for _, x := range sb {
		b.Update(x)
	}
	bStored := b.StoredCount()
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != nA+nB {
		t.Fatalf("merged count = %d, want %d", a.Count(), nA+nB)
	}
	if err := a.CheckInvariant(); err != nil {
		t.Fatalf("invariant after merge: %v", err)
	}
	// The argument must be untouched.
	if b.Count() != nB || b.StoredCount() != bStored {
		t.Fatalf("merge modified its argument")
	}
	all := append(append([]float64(nil), sa...), sb...)
	oracle := rank.Float64Oracle(all)
	bound := eps*float64(len(all)) + 2
	for _, phi := range []float64{0.01, 0.1, 0.5, 0.9, 0.99} {
		got, ok := a.Query(phi)
		if !ok {
			t.Fatalf("query after merge failed")
		}
		if err := oracle.RankError(got, phi); float64(err) > bound {
			t.Errorf("phi=%v rank error %d exceeds eps*N=%v", phi, err, bound)
		}
	}
	// Argument keeps working after the merge.
	b.Update(1.5)
	if err := b.CheckInvariant(); err != nil {
		t.Fatalf("argument invariant after post-merge update: %v", err)
	}
}

func TestMergeErrors(t *testing.T) {
	a := NewFloat64(0.1, 1000)
	if err := a.Merge(nil); err != nil {
		t.Fatalf("merge nil: %v", err)
	}
	if err := a.Merge(NewFloat64(0.1, 1000)); err != nil {
		t.Fatalf("merge empty: %v", err)
	}
	// A wildly different eps yields a different buffer capacity, which must
	// be rejected.
	c := NewFloat64(0.001, 1_000_000)
	c.Update(1)
	if c.BufferCapacity() != a.BufferCapacity() {
		if err := a.Merge(c); err == nil {
			t.Fatalf("merging different capacities should fail")
		}
	}
}
