package mrl

import "unsafe"

// RetainedBytes reports the heap bytes retained by the level buffers and the
// partially filled current buffer, counting allocated capacity
// (summary.Sized). MRL stores bare items: ~8 bytes per slot on float64.
func (s *Summary[T]) RetainedBytes() int {
	itemSize := int(unsafe.Sizeof(*new(T)))
	total := cap(s.current) * itemSize
	for _, bufs := range s.levels {
		for _, buf := range bufs {
			total += cap(buf) * itemSize
		}
	}
	return total
}
