package mrl

import (
	"testing"

	"quantilelb/internal/rank"
	"quantilelb/internal/stream"
)

// TestUpdateBatchEquivalence asserts that the batch path preserves the MRL
// error guarantee and the structural invariants for batch sizes around the
// buffer capacity (the interesting boundaries: partial top-up, exact chunks,
// chunk + remainder, and whole-stream batches).
func TestUpdateBatchEquivalence(t *testing.T) {
	const eps = 0.02
	const n = 40_000
	gen := stream.NewGenerator(11)
	items := gen.Shuffled(n).Items()
	oracle := rank.Float64Oracle(items)
	allowance := int(eps*float64(n)) + 1

	ref := NewFloat64(eps, n)
	cap := ref.BufferCapacity()
	for _, batch := range []int{1, cap - 1, cap, cap + 1, 3*cap + 5, n} {
		s := NewFloat64(eps, n)
		for i := 0; i < len(items); i += batch {
			end := i + batch
			if end > len(items) {
				end = len(items)
			}
			s.UpdateBatch(items[i:end])
		}
		if s.Count() != n {
			t.Fatalf("batch=%d: count %d, want %d", batch, s.Count(), n)
		}
		if err := s.CheckInvariant(); err != nil {
			t.Fatalf("batch=%d: invariant: %v", batch, err)
		}
		worst := 0
		for i := 0; i <= 200; i++ {
			phi := float64(i) / 200
			got, ok := s.Query(phi)
			if !ok {
				t.Fatalf("batch=%d: query failed", batch)
			}
			if e := oracle.RankError(got, phi); e > worst {
				worst = e
			}
		}
		if worst > allowance {
			t.Errorf("batch=%d: worst rank error %d exceeds eps*n=%d", batch, worst, allowance)
		}
	}
}

// TestUpdateBatchEdgeCases covers empty and single-item batches and the
// interaction with an existing partial buffer.
func TestUpdateBatchEdgeCases(t *testing.T) {
	s := NewFloat64(0.1, 1000)
	s.UpdateBatch(nil)
	s.UpdateBatch([]float64{})
	if s.Count() != 0 {
		t.Fatalf("empty batches must not change the count, got %d", s.Count())
	}
	s.UpdateBatch([]float64{5})
	if s.Count() != 1 {
		t.Fatalf("count = %d, want 1", s.Count())
	}
	if v, ok := s.Query(0.5); !ok || v != 5 {
		t.Fatalf("Query(0.5) = %v, %v; want 5, true", v, ok)
	}
	// Interleave per-item and batched updates: the multiset semantics make
	// them freely mixable.
	s.Update(1)
	s.UpdateBatch([]float64{9, 2, 8})
	if s.Count() != 5 {
		t.Fatalf("count = %d, want 5", s.Count())
	}
	if err := s.CheckInvariant(); err != nil {
		t.Fatalf("invariant: %v", err)
	}
	mn, mx, ok := s.Extremes()
	if !ok || mn != 1 || mx != 9 {
		t.Fatalf("extremes (%v,%v), want (1,9)", mn, mx)
	}
}
