// Package mrl implements a Manku–Rajagopalan–Lindsay style deterministic
// quantile summary (SIGMOD 1998), the multi-level buffer-collapse algorithm
// that preceded Greenwald–Khanna and uses O((1/ε)·log²(εN)) space.
//
// As the lower-bound paper notes (Section 1), the MRL summary "relies on the
// advance knowledge of the stream length N"; this implementation keeps that
// requirement: the capacity of each buffer is derived from ε and the declared
// maximum stream length. The algorithm is comparison-based and deterministic,
// so the lower bound of Cormode & Veselý applies to it; experiments compare
// its space against GK and against the bound.
//
// The structure is a hierarchy of buffers. Level 0 receives incoming items
// with weight 1. When two buffers at the same level are full they are
// collapsed: their contents are merged and every second item is promoted to a
// buffer at the next level with doubled weight. Each collapse at level l
// perturbs ranks by at most 2^l, and the buffer capacity k is chosen so that
// the total perturbation is at most εN.
package mrl

import (
	"fmt"
	"math"
	"sort"

	"quantilelb/internal/order"
)

// Summary is an MRL-style deterministic quantile summary.
type Summary[T any] struct {
	cmp      order.Comparator[T]
	eps      float64
	capacity int // per-buffer capacity k
	maxN     int
	n        int

	// levels[l] holds the full buffers at level l (each of exactly capacity
	// items with weight 2^l); current is the partially filled level-0 buffer.
	levels  [][][]T
	current []T

	hasMin, hasMax bool
	min, max       T
}

// New returns a summary with accuracy eps for streams of at most maxN items.
// It panics if eps is not in (0, 1) or maxN < 1.
func New[T any](cmp order.Comparator[T], eps float64, maxN int) *Summary[T] {
	if !(eps > 0 && eps < 1) {
		panic("mrl: eps must be in (0, 1)")
	}
	if maxN < 1 {
		panic("mrl: maxN must be positive")
	}
	return &Summary[T]{
		cmp:      cmp,
		eps:      eps,
		capacity: bufferCapacity(eps, maxN),
		maxN:     maxN,
	}
}

// NewFloat64 returns a float64 summary.
func NewFloat64(eps float64, maxN int) *Summary[float64] {
	return New(order.Floats[float64](), eps, maxN)
}

// bufferCapacity chooses the per-buffer capacity k so that the cumulative
// collapse error L·N/(2k) stays below εN/2, where L = log2(N/k) is the number
// of levels; the remaining εN/2 covers the rank uncertainty within a buffer.
func bufferCapacity(eps float64, maxN int) int {
	k := 8
	for {
		levels := math.Log2(float64(maxN)/float64(k)) + 1
		if levels < 1 {
			levels = 1
		}
		need := levels / eps
		if float64(k) >= need || k >= maxN {
			break
		}
		k *= 2
	}
	return k
}

// Epsilon returns the accuracy parameter.
func (s *Summary[T]) Epsilon() float64 { return s.eps }

// BufferCapacity returns the per-buffer capacity k chosen at construction.
func (s *Summary[T]) BufferCapacity() int { return s.capacity }

// Count returns the number of items processed.
func (s *Summary[T]) Count() int { return s.n }

// Update processes one stream item. Processing more than the declared maximum
// number of items keeps the summary functional but voids the error guarantee
// (the guarantee is re-derived in terms of the actual length in experiments).
func (s *Summary[T]) Update(x T) {
	s.n++
	if !s.hasMin || s.cmp(x, s.min) < 0 {
		s.min, s.hasMin = x, true
	}
	if !s.hasMax || s.cmp(x, s.max) > 0 {
		s.max, s.hasMax = x, true
	}
	s.current = append(s.current, x)
	if len(s.current) >= s.capacity {
		buf := s.current
		s.current = nil
		order.Sort(s.cmp, buf)
		s.pushBuffer(0, buf)
	}
}

// UpdateBatch processes a batch of stream items in one pass. It is
// equivalent to calling Update for each item (the summary is a multiset, so
// intra-batch order is irrelevant): the partially filled level-0 buffer is
// topped up first, then full capacity-sized chunks of the batch become
// level-0 buffers directly — each chunk is copied and sorted once and handed
// to the collapse cascade — and the remainder stays in the partial buffer.
// Compared with m individual Updates this saves the per-item append/overflow
// check and sorts each chunk in place instead of growing the buffer item by
// item. This is the fast path the internal/sharded ingestion layer uses.
func (s *Summary[T]) UpdateBatch(xs []T) {
	if len(xs) == 0 {
		return
	}
	for _, x := range xs {
		if !s.hasMin || s.cmp(x, s.min) < 0 {
			s.min, s.hasMin = x, true
		}
		if !s.hasMax || s.cmp(x, s.max) > 0 {
			s.max, s.hasMax = x, true
		}
	}
	s.n += len(xs)
	i := 0
	// Top up the partially filled level-0 buffer.
	if len(s.current) > 0 {
		take := s.capacity - len(s.current)
		if take > len(xs) {
			take = len(xs)
		}
		s.current = append(s.current, xs[:take]...)
		i = take
		if len(s.current) >= s.capacity {
			buf := s.current
			s.current = nil
			order.Sort(s.cmp, buf)
			s.pushBuffer(0, buf)
		}
	}
	// Full chunks become level-0 buffers directly.
	for ; i+s.capacity <= len(xs); i += s.capacity {
		buf := append([]T(nil), xs[i:i+s.capacity]...)
		order.Sort(s.cmp, buf)
		s.pushBuffer(0, buf)
	}
	s.current = append(s.current, xs[i:]...)
}

// WeightedUpdate processes one item carrying an integer weight w ≥ 1,
// equivalent to w repeated Updates of x: the weight-expanded buffer
// collapse. A run of w copies decomposes into ⌊w/k⌋ full buffers of the
// per-buffer capacity k — all-equal, hence already sorted, and pushed
// directly at the level given by the binary decomposition of the buffer
// count (a buffer at level l carries weight k·2^l) — plus a remainder of
// w mod k copies through the ordinary level-0 buffer. Cost is O(k·log(w/k) +
// k) per weighted item instead of O(w). As with every MRL ingest, the error
// guarantee assumes the declared maximum stream length covers the total
// weight W. It panics if w is not positive.
func (s *Summary[T]) WeightedUpdate(x T, w int64) {
	if w <= 0 {
		panic("mrl: weight must be positive")
	}
	if int64(int(w)) != w {
		// The summary's counter is an int: fail loudly on 32-bit platforms
		// rather than truncate into a corrupt weight balance.
		panic("mrl: weight overflows int on this platform")
	}
	if !s.hasMin || s.cmp(x, s.min) < 0 {
		s.min, s.hasMin = x, true
	}
	if !s.hasMax || s.cmp(x, s.max) > 0 {
		s.max, s.hasMax = x, true
	}
	s.n += int(w)
	k := int64(s.capacity)
	q, rem := w/k, int(w%k)
	for l := 0; q > 0; l++ {
		if q&1 == 1 {
			buf := make([]T, k)
			for i := range buf {
				buf[i] = x
			}
			s.pushBuffer(l, buf)
		}
		q >>= 1
	}
	for i := 0; i < rem; i++ {
		s.current = append(s.current, x)
		if len(s.current) >= s.capacity {
			buf := s.current
			s.current = nil
			order.Sort(s.cmp, buf)
			s.pushBuffer(0, buf)
		}
	}
}

// WeightedUpdateBatch processes a batch of weighted items, equivalent to
// calling WeightedUpdate per pair (each weighted item is already ingested in
// sublinear time, so there is no extra batch-level saving to exploit).
// len(ws) must equal len(xs); it panics on a length mismatch or a
// non-positive weight.
func (s *Summary[T]) WeightedUpdateBatch(xs []T, ws []int64) {
	if len(xs) != len(ws) {
		panic("mrl: WeightedUpdateBatch: items and weights differ in length")
	}
	for i, x := range xs {
		s.WeightedUpdate(x, ws[i])
	}
}

// pushBuffer adds a full sorted buffer at the given level, collapsing pairs of
// buffers upward while a level holds two buffers.
func (s *Summary[T]) pushBuffer(level int, buf []T) {
	for len(s.levels) <= level {
		s.levels = append(s.levels, nil)
	}
	s.levels[level] = append(s.levels[level], buf)
	for l := level; l < len(s.levels) && len(s.levels[l]) >= 2; l++ {
		a := s.levels[l][0]
		b := s.levels[l][1]
		s.levels[l] = s.levels[l][2:]
		merged := order.Merge(s.cmp, a, b)
		// Promote every second item (offset 1 keeps the collapse unbiased
		// towards neither end and is fully deterministic).
		promoted := make([]T, 0, (len(merged)+1)/2)
		for i := 1; i < len(merged); i += 2 {
			promoted = append(promoted, merged[i])
		}
		if len(s.levels) <= l+1 {
			s.levels = append(s.levels, nil)
		}
		s.levels[l+1] = append(s.levels[l+1], promoted)
	}
}

// weighted returns the stored items with their weights, sorted by item.
type weighted[T any] struct {
	item   T
	weight int
}

func (s *Summary[T]) collect() []weighted[T] {
	var out []weighted[T]
	for _, x := range s.current {
		out = append(out, weighted[T]{item: x, weight: 1})
	}
	for l, bufs := range s.levels {
		w := 1 << uint(l)
		for _, buf := range bufs {
			for _, x := range buf {
				out = append(out, weighted[T]{item: x, weight: w})
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return s.cmp(out[i].item, out[j].item) < 0 })
	return out
}

// Query returns an approximate ϕ-quantile.
func (s *Summary[T]) Query(phi float64) (T, bool) {
	var zero T
	if s.n == 0 {
		return zero, false
	}
	if phi <= 0 {
		return s.min, true
	}
	if phi >= 1 {
		return s.max, true
	}
	target := int(phi * float64(s.n))
	if target < 1 {
		target = 1
	}
	items := s.collect()
	cum := 0
	for _, w := range items {
		cum += w.weight
		if cum >= target {
			return w.item, true
		}
	}
	return s.max, true
}

// EstimateRank estimates the number of items less than or equal to q.
func (s *Summary[T]) EstimateRank(q T) int {
	if s.n == 0 {
		return 0
	}
	est := 0
	for _, w := range s.collect() {
		if s.cmp(w.item, q) <= 0 {
			est += w.weight
		} else {
			break
		}
	}
	return est
}

// StoredItems returns all retained items in non-decreasing order.
func (s *Summary[T]) StoredItems() []T {
	ws := s.collect()
	out := make([]T, len(ws))
	for i, w := range ws {
		out[i] = w.item
	}
	return out
}

// StoredCount returns the number of retained items.
func (s *Summary[T]) StoredCount() int {
	count := len(s.current)
	for _, bufs := range s.levels {
		for _, buf := range bufs {
			count += len(buf)
		}
	}
	return count
}

// Levels returns the number of buffer levels currently in use.
func (s *Summary[T]) Levels() int { return len(s.levels) }

// Merge folds another summary into the receiver by appending the other
// summary's full buffers level-wise (collapsing pairs upward exactly as
// during streaming) and re-ingesting its partially filled level-0 buffer.
// Both summaries must have been built with the same per-buffer capacity —
// in practice, by the same factory — otherwise an error is returned.
//
// Error guarantee: eps_new = max(eps_a, eps_b) over the combined stream,
// provided each summary's declared maximum stream length covers its share of
// the combined stream (the merged summary behaves exactly like a single
// summary of capacity k that processed the concatenation). The receiver's
// declared maximum length becomes the sum of the two.
//
// The argument is read but never modified; its buffers are copied, so the
// receiver and the argument can continue to ingest independently afterwards
// (see internal/sharded).
func (s *Summary[T]) Merge(other *Summary[T]) error {
	if other == nil || other.n == 0 {
		return nil
	}
	if other.capacity != s.capacity {
		return fmt.Errorf("mrl: cannot merge summaries with different buffer capacities (%d vs %d)", s.capacity, other.capacity)
	}
	if other.eps > s.eps {
		s.eps = other.eps
	}
	s.maxN += other.maxN
	s.n += other.n
	if other.hasMin && (!s.hasMin || s.cmp(other.min, s.min) < 0) {
		s.min, s.hasMin = other.min, true
	}
	if other.hasMax && (!s.hasMax || s.cmp(other.max, s.max) > 0) {
		s.max, s.hasMax = other.max, true
	}
	for l, bufs := range other.levels {
		for _, buf := range bufs {
			s.pushBuffer(l, append([]T(nil), buf...))
		}
	}
	for _, x := range other.current {
		s.current = append(s.current, x)
		if len(s.current) >= s.capacity {
			buf := s.current
			s.current = nil
			order.Sort(s.cmp, buf)
			s.pushBuffer(0, buf)
		}
	}
	return nil
}

// CheckInvariant verifies structural invariants: every full buffer is sorted
// and holds at most the configured capacity, at most one partially filled
// buffer exists, and the total weight equals the item count. Tests use it as
// a structural oracle.
func (s *Summary[T]) CheckInvariant() error {
	if len(s.current) >= s.capacity {
		return fmt.Errorf("mrl: current buffer overfull: %d >= %d", len(s.current), s.capacity)
	}
	weight := len(s.current)
	for l, bufs := range s.levels {
		if len(bufs) > 1 {
			return fmt.Errorf("mrl: level %d holds %d buffers, want at most 1", l, len(bufs))
		}
		for _, buf := range bufs {
			if !order.IsSorted(s.cmp, buf) {
				return fmt.Errorf("mrl: level %d buffer not sorted", l)
			}
			if len(buf) > s.capacity {
				return fmt.Errorf("mrl: level %d buffer exceeds capacity: %d > %d", l, len(buf), s.capacity)
			}
			weight += len(buf) << uint(l)
		}
	}
	// Collapses drop at most one unit of weight per promotion when merged
	// buffers have odd length; with even capacities the weight is exact.
	if weight != s.n {
		return fmt.Errorf("mrl: total weight %d != n %d", weight, s.n)
	}
	return nil
}

// MaxN returns the declared maximum stream length (after merges, the sum of
// the declared lengths of the merged summaries).
func (s *Summary[T]) MaxN() int { return s.maxN }

// Buffers returns a deep copy of the full buffers: Buffers()[l] holds the
// sorted buffers at level l, whose items carry weight 2^l. It is used by the
// serialization layer.
func (s *Summary[T]) Buffers() [][][]T {
	out := make([][][]T, len(s.levels))
	for l, bufs := range s.levels {
		out[l] = make([][]T, len(bufs))
		for i, buf := range bufs {
			out[l][i] = append([]T(nil), buf...)
		}
	}
	return out
}

// Pending returns a copy of the partially filled level-0 buffer (weight-1
// items not yet part of any full buffer). It is used by the serialization
// layer.
func (s *Summary[T]) Pending() []T {
	return append([]T(nil), s.current...)
}

// Extremes returns the exact minimum and maximum seen so far; ok is false
// when the summary is empty.
func (s *Summary[T]) Extremes() (min, max T, ok bool) {
	return s.min, s.max, s.hasMin && s.hasMax
}

// Restore reconstructs a summary from previously exported state (capacity,
// declared maximum length, item count, full buffers per level, partial
// buffer, extremes), validating the structural invariants before accepting
// it. The capacity is restored verbatim rather than re-derived from eps and
// maxN because merges change maxN without re-deriving the capacity.
func Restore[T any](cmp order.Comparator[T], eps float64, capacity, maxN, count int, levels [][][]T, current []T, min, max T, hasExtremes bool) (*Summary[T], error) {
	if !(eps > 0 && eps < 1) {
		return nil, fmt.Errorf("mrl: restore: eps %v out of (0, 1)", eps)
	}
	if capacity < 1 || maxN < 1 || count < 0 {
		return nil, fmt.Errorf("mrl: restore: invalid capacity/maxN/count (%d, %d, %d)", capacity, maxN, count)
	}
	s := &Summary[T]{cmp: cmp, eps: eps, capacity: capacity, maxN: maxN, n: count}
	s.levels = make([][][]T, len(levels))
	for l, bufs := range levels {
		s.levels[l] = make([][]T, len(bufs))
		for i, buf := range bufs {
			s.levels[l][i] = append([]T(nil), buf...)
		}
	}
	s.current = append([]T(nil), current...)
	if hasExtremes {
		s.min, s.max = min, max
		s.hasMin, s.hasMax = true, true
	}
	if count > 0 && !hasExtremes {
		return nil, fmt.Errorf("mrl: restore: non-empty summary without extremes")
	}
	if err := s.CheckInvariant(); err != nil {
		return nil, fmt.Errorf("mrl: restore: %w", err)
	}
	return s, nil
}

// TheoreticalSize returns the O((1/ε)·log²(εN)) space bound the MRL analysis
// gives for this configuration, measured in items.
func TheoreticalSize(eps float64, n int) float64 {
	if eps <= 0 || n <= 0 {
		return 0
	}
	x := 2 * eps * float64(n)
	if x < 2 {
		x = 2
	}
	l := math.Log2(x)
	return (1 / eps) * l * l
}
