package order

// Multiset is a sorted multiset of items maintained as a slice. It supports
// the rank queries the adversarial construction needs (rank of an item within
// a stream, next/previous item in the ordering of a stream) with O(log n)
// lookups and O(n) inserts. Streams constructed by the adversary are built in
// large sorted batches, so AddSortedBatch is the common fast path.
type Multiset[T any] struct {
	cmp   Comparator[T]
	items []T
}

// NewMultiset returns an empty multiset ordered by cmp.
func NewMultiset[T any](cmp Comparator[T]) *Multiset[T] {
	return &Multiset[T]{cmp: cmp}
}

// Len returns the number of items in the multiset.
func (m *Multiset[T]) Len() int { return len(m.items) }

// Items returns the underlying sorted slice. The caller must not modify it.
func (m *Multiset[T]) Items() []T { return m.items }

// Add inserts a single item.
func (m *Multiset[T]) Add(x T) {
	m.items = InsertSorted(m.cmp, m.items, x)
}

// AddSortedBatch merges a sorted batch of items into the multiset.
func (m *Multiset[T]) AddSortedBatch(batch []T) {
	if len(batch) == 0 {
		return
	}
	if len(m.items) == 0 {
		m.items = append(m.items, batch...)
		return
	}
	m.items = Merge(m.cmp, m.items, batch)
}

// Rank returns the 1-based rank of x, defined (as in the paper, where all
// stream items are distinct) as one more than the number of items strictly
// smaller than x. x need not be present in the multiset.
func (m *Multiset[T]) Rank(x T) int {
	return CountLT(m.cmp, m.items, x) + 1
}

// CountLE returns the number of items less than or equal to x.
func (m *Multiset[T]) CountLE(x T) int { return CountLE(m.cmp, m.items, x) }

// CountLT returns the number of items strictly less than x.
func (m *Multiset[T]) CountLT(x T) int { return CountLT(m.cmp, m.items, x) }

// CountInOpen returns the number of items strictly inside the open interval
// (lo, hi). The has* flags mark which bounds are present (absent = unbounded).
func (m *Multiset[T]) CountInOpen(lo T, hasLo bool, hi T, hasHi bool) int {
	return len(Restrict(m.cmp, m.items, lo, hasLo, hi, hasHi))
}

// Contains reports whether x is present.
func (m *Multiset[T]) Contains(x T) bool { return Contains(m.cmp, m.items, x) }

// Min returns the smallest item. The boolean is false when the set is empty.
func (m *Multiset[T]) Min() (T, bool) {
	var zero T
	if len(m.items) == 0 {
		return zero, false
	}
	return m.items[0], true
}

// Max returns the largest item. The boolean is false when the set is empty.
func (m *Multiset[T]) Max() (T, bool) {
	var zero T
	if len(m.items) == 0 {
		return zero, false
	}
	return m.items[len(m.items)-1], true
}

// Next returns the smallest item strictly greater than x, mirroring the
// paper's next(σ, a). The boolean is false when no such item exists.
func (m *Multiset[T]) Next(x T) (T, bool) {
	var zero T
	i := SearchFirstGT(m.cmp, m.items, x)
	if i >= len(m.items) {
		return zero, false
	}
	return m.items[i], true
}

// Prev returns the largest item strictly smaller than x, mirroring the
// paper's prev(σ, b). The boolean is false when no such item exists.
func (m *Multiset[T]) Prev(x T) (T, bool) {
	var zero T
	i := SearchFirstGE(m.cmp, m.items, x)
	if i == 0 {
		return zero, false
	}
	return m.items[i-1], true
}

// Select returns the item with 1-based rank k (the k-th smallest item).
// It panics if k is out of range.
func (m *Multiset[T]) Select(k int) T {
	if k < 1 || k > len(m.items) {
		panic("order: Multiset.Select rank out of range")
	}
	return m.items[k-1]
}

// Clone returns a deep copy of the multiset.
func (m *Multiset[T]) Clone() *Multiset[T] {
	items := make([]T, len(m.items))
	copy(items, m.items)
	return &Multiset[T]{cmp: m.cmp, items: items}
}
