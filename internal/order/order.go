// Package order provides the comparison layer used throughout the library.
//
// The computational model of Cormode & Veselý (PODS 2020, Definition 2.1) only
// permits a data structure to compare two items or test them for equality.
// Everything in this repository that touches items goes through a Comparator,
// which makes "comparison-based" explicit in the type system and lets the
// instrumentation in this package count exactly how many comparisons a summary
// performs.
package order

import "sort"

// Comparator compares two items of type T. It returns a negative number when
// a < b, zero when a == b and a positive number when a > b, mirroring the
// contract of strings.Compare and cmp.Compare.
type Comparator[T any] func(a, b T) int

// Ints returns the natural comparator for any signed or unsigned integer type.
func Ints[T ~int | ~int8 | ~int16 | ~int32 | ~int64 | ~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64]() Comparator[T] {
	return func(a, b T) int {
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
}

// Floats returns the natural comparator for float types. NaNs are ordered
// before all other values so that the comparator induces a total order, which
// the summaries require.
func Floats[T ~float32 | ~float64]() Comparator[T] {
	return func(a, b T) int {
		// NaN != NaN, so detect NaNs via self-comparison.
		aNaN := a != a
		bNaN := b != b
		switch {
		case aNaN && bNaN:
			return 0
		case aNaN:
			return -1
		case bNaN:
			return 1
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
}

// Strings returns the lexicographic comparator for string-like types. The
// paper's example of a continuous universe is "a large enough set of long
// incompressible strings, ordered lexicographically".
func Strings[T ~string]() Comparator[T] {
	return func(a, b T) int {
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
}

// Reverse returns a comparator with the opposite ordering of c.
func Reverse[T any](c Comparator[T]) Comparator[T] {
	return func(a, b T) int { return -c(a, b) }
}

// Less reports whether a < b under c.
func Less[T any](c Comparator[T], a, b T) bool { return c(a, b) < 0 }

// Equal reports whether a == b under c.
func Equal[T any](c Comparator[T], a, b T) bool { return c(a, b) == 0 }

// Min returns the smaller of a and b under c (a on ties).
func Min[T any](c Comparator[T], a, b T) T {
	if c(b, a) < 0 {
		return b
	}
	return a
}

// Max returns the larger of a and b under c (a on ties).
func Max[T any](c Comparator[T], a, b T) T {
	if c(b, a) > 0 {
		return b
	}
	return a
}

// Counting wraps a comparator and counts the number of comparisons made.
// It is safe for single-goroutine use, which matches the streaming model
// (one item processed at a time).
type Counting[T any] struct {
	cmp   Comparator[T]
	count uint64
}

// NewCounting returns a Counting wrapper around cmp.
func NewCounting[T any](cmp Comparator[T]) *Counting[T] {
	return &Counting[T]{cmp: cmp}
}

// Compare compares a and b, incrementing the counter.
func (c *Counting[T]) Compare(a, b T) int {
	c.count++
	return c.cmp(a, b)
}

// Comparator returns a Comparator func backed by the counter.
func (c *Counting[T]) Comparator() Comparator[T] {
	return c.Compare
}

// Count returns the number of comparisons performed so far.
func (c *Counting[T]) Count() uint64 { return c.count }

// Reset sets the comparison counter back to zero.
func (c *Counting[T]) Reset() { c.count = 0 }

// IsSorted reports whether items are in non-decreasing order under cmp.
func IsSorted[T any](cmp Comparator[T], items []T) bool {
	for i := 1; i < len(items); i++ {
		if cmp(items[i-1], items[i]) > 0 {
			return false
		}
	}
	return true
}

// Sort sorts items in place into non-decreasing order under cmp. The sort is
// not stable; use SortStable when equal items must retain arrival order.
func Sort[T any](cmp Comparator[T], items []T) {
	sort.Slice(items, func(i, j int) bool { return cmp(items[i], items[j]) < 0 })
}

// SortStable sorts items in place, keeping the original order of equal items.
func SortStable[T any](cmp Comparator[T], items []T) {
	sort.SliceStable(items, func(i, j int) bool { return cmp(items[i], items[j]) < 0 })
}

// Sorted returns a sorted copy of items, leaving the input untouched.
func Sorted[T any](cmp Comparator[T], items []T) []T {
	out := make([]T, len(items))
	copy(out, items)
	Sort(cmp, out)
	return out
}

// SearchFirstGE returns the smallest index i in the sorted slice items such
// that items[i] >= x, or len(items) if every item is smaller than x.
func SearchFirstGE[T any](cmp Comparator[T], items []T, x T) int {
	return sort.Search(len(items), func(i int) bool { return cmp(items[i], x) >= 0 })
}

// SearchFirstGT returns the smallest index i in the sorted slice items such
// that items[i] > x, or len(items) if no item is greater than x.
func SearchFirstGT[T any](cmp Comparator[T], items []T, x T) int {
	return sort.Search(len(items), func(i int) bool { return cmp(items[i], x) > 0 })
}

// CountLE returns the number of elements of the sorted slice items that are
// less than or equal to x.
func CountLE[T any](cmp Comparator[T], items []T, x T) int {
	return SearchFirstGT(cmp, items, x)
}

// CountLT returns the number of elements of the sorted slice items that are
// strictly less than x.
func CountLT[T any](cmp Comparator[T], items []T, x T) int {
	return SearchFirstGE(cmp, items, x)
}

// Contains reports whether the sorted slice items contains x.
func Contains[T any](cmp Comparator[T], items []T, x T) bool {
	i := SearchFirstGE(cmp, items, x)
	return i < len(items) && cmp(items[i], x) == 0
}

// InsertSorted inserts x into the sorted slice items, keeping it sorted, and
// returns the extended slice. Equal items are inserted after existing ones.
func InsertSorted[T any](cmp Comparator[T], items []T, x T) []T {
	i := SearchFirstGT(cmp, items, x)
	items = append(items, x)
	copy(items[i+1:], items[i:])
	items[i] = x
	return items
}

// Merge merges two sorted slices into a new sorted slice.
func Merge[T any](cmp Comparator[T], a, b []T) []T {
	out := make([]T, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if cmp(a[i], b[j]) <= 0 {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Dedupe removes duplicate adjacent items from a sorted slice, returning a new
// slice that contains each distinct value once.
func Dedupe[T any](cmp Comparator[T], items []T) []T {
	if len(items) == 0 {
		return nil
	}
	out := make([]T, 0, len(items))
	out = append(out, items[0])
	for i := 1; i < len(items); i++ {
		if cmp(items[i-1], items[i]) != 0 {
			out = append(out, items[i])
		}
	}
	return out
}

// Restrict returns the sub-slice of the sorted slice items that lies strictly
// inside the open interval (lo, hi). The boolean flags indicate whether each
// bound is present; an absent bound means unbounded on that side.
func Restrict[T any](cmp Comparator[T], items []T, lo T, hasLo bool, hi T, hasHi bool) []T {
	start := 0
	if hasLo {
		start = SearchFirstGT(cmp, items, lo)
	}
	end := len(items)
	if hasHi {
		end = SearchFirstGE(cmp, items, hi)
	}
	if start > end {
		return nil
	}
	return items[start:end]
}
