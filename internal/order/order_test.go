package order

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestIntsComparator(t *testing.T) {
	cmp := Ints[int]()
	cases := []struct {
		a, b, want int
	}{
		{1, 2, -1},
		{2, 1, 1},
		{3, 3, 0},
		{-5, 5, -1},
		{0, 0, 0},
	}
	for _, c := range cases {
		got := cmp(c.a, c.b)
		if sign(got) != c.want {
			t.Errorf("cmp(%d,%d) = %d, want sign %d", c.a, c.b, got, c.want)
		}
	}
}

func TestFloatsComparatorNaN(t *testing.T) {
	cmp := Floats[float64]()
	nan := math.NaN()
	if cmp(nan, nan) != 0 {
		t.Errorf("NaN should equal NaN in total order")
	}
	if cmp(nan, 1.0) >= 0 {
		t.Errorf("NaN should sort before finite values")
	}
	if cmp(1.0, nan) <= 0 {
		t.Errorf("finite values should sort after NaN")
	}
	if cmp(1.5, 2.5) >= 0 || cmp(2.5, 1.5) <= 0 || cmp(2.5, 2.5) != 0 {
		t.Errorf("finite comparisons incorrect")
	}
}

func TestStringsComparator(t *testing.T) {
	cmp := Strings[string]()
	if cmp("abc", "abd") >= 0 {
		t.Errorf("lexicographic order broken")
	}
	if cmp("b", "a") <= 0 {
		t.Errorf("lexicographic order broken")
	}
	if cmp("x", "x") != 0 {
		t.Errorf("equality broken")
	}
}

func TestReverse(t *testing.T) {
	cmp := Ints[int]()
	rev := Reverse(cmp)
	if rev(1, 2) <= 0 {
		t.Errorf("Reverse should invert ordering")
	}
	if rev(2, 1) >= 0 {
		t.Errorf("Reverse should invert ordering")
	}
	if rev(2, 2) != 0 {
		t.Errorf("Reverse should preserve equality")
	}
}

func TestMinMaxLessEqual(t *testing.T) {
	cmp := Ints[int]()
	if Min(cmp, 3, 5) != 3 || Min(cmp, 5, 3) != 3 {
		t.Errorf("Min incorrect")
	}
	if Max(cmp, 3, 5) != 5 || Max(cmp, 5, 3) != 5 {
		t.Errorf("Max incorrect")
	}
	if !Less(cmp, 1, 2) || Less(cmp, 2, 1) || Less(cmp, 2, 2) {
		t.Errorf("Less incorrect")
	}
	if !Equal(cmp, 7, 7) || Equal(cmp, 7, 8) {
		t.Errorf("Equal incorrect")
	}
}

func TestCountingComparator(t *testing.T) {
	base := Ints[int]()
	c := NewCounting(base)
	cmp := c.Comparator()
	if c.Count() != 0 {
		t.Fatalf("expected 0 initial comparisons")
	}
	cmp(1, 2)
	cmp(2, 3)
	cmp(3, 3)
	if c.Count() != 3 {
		t.Fatalf("expected 3 comparisons, got %d", c.Count())
	}
	c.Reset()
	if c.Count() != 0 {
		t.Fatalf("expected 0 after reset, got %d", c.Count())
	}
	if cmp(5, 4) <= 0 {
		t.Errorf("counting comparator must preserve result")
	}
	if c.Count() != 1 {
		t.Errorf("expected 1 comparison after reset+compare, got %d", c.Count())
	}
}

func TestSortAndIsSorted(t *testing.T) {
	cmp := Ints[int]()
	items := []int{5, 3, 9, 1, 3, 7}
	if IsSorted(cmp, items) {
		t.Fatalf("unsorted input reported as sorted")
	}
	Sort(cmp, items)
	if !IsSorted(cmp, items) {
		t.Fatalf("Sort did not sort")
	}
	want := []int{1, 3, 3, 5, 7, 9}
	if !reflect.DeepEqual(items, want) {
		t.Fatalf("Sort = %v, want %v", items, want)
	}
	if !IsSorted(cmp, []int{}) || !IsSorted(cmp, []int{1}) {
		t.Errorf("empty and singleton slices are sorted")
	}
}

func TestSortedDoesNotMutate(t *testing.T) {
	cmp := Ints[int]()
	items := []int{3, 1, 2}
	out := Sorted(cmp, items)
	if !reflect.DeepEqual(items, []int{3, 1, 2}) {
		t.Errorf("Sorted mutated its input: %v", items)
	}
	if !reflect.DeepEqual(out, []int{1, 2, 3}) {
		t.Errorf("Sorted output = %v", out)
	}
}

func TestSearchAndCounts(t *testing.T) {
	cmp := Ints[int]()
	items := []int{1, 3, 3, 5, 7}
	if got := SearchFirstGE(cmp, items, 3); got != 1 {
		t.Errorf("SearchFirstGE(3) = %d, want 1", got)
	}
	if got := SearchFirstGT(cmp, items, 3); got != 3 {
		t.Errorf("SearchFirstGT(3) = %d, want 3", got)
	}
	if got := SearchFirstGE(cmp, items, 100); got != len(items) {
		t.Errorf("SearchFirstGE(100) = %d, want %d", got, len(items))
	}
	if got := CountLE(cmp, items, 3); got != 3 {
		t.Errorf("CountLE(3) = %d, want 3", got)
	}
	if got := CountLT(cmp, items, 3); got != 1 {
		t.Errorf("CountLT(3) = %d, want 1", got)
	}
	if got := CountLE(cmp, items, 0); got != 0 {
		t.Errorf("CountLE(0) = %d, want 0", got)
	}
	if !Contains(cmp, items, 5) || Contains(cmp, items, 4) {
		t.Errorf("Contains incorrect")
	}
}

func TestInsertSorted(t *testing.T) {
	cmp := Ints[int]()
	var items []int
	for _, x := range []int{5, 1, 3, 3, 9, 0} {
		items = InsertSorted(cmp, items, x)
		if !IsSorted(cmp, items) {
			t.Fatalf("not sorted after inserting %d: %v", x, items)
		}
	}
	want := []int{0, 1, 3, 3, 5, 9}
	if !reflect.DeepEqual(items, want) {
		t.Fatalf("InsertSorted result %v, want %v", items, want)
	}
}

func TestMerge(t *testing.T) {
	cmp := Ints[int]()
	a := []int{1, 4, 6}
	b := []int{2, 4, 5, 9}
	got := Merge(cmp, a, b)
	want := []int{1, 2, 4, 4, 5, 6, 9}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Merge = %v, want %v", got, want)
	}
	if got := Merge(cmp, nil, b); !reflect.DeepEqual(got, b) {
		t.Errorf("Merge(nil, b) = %v", got)
	}
	if got := Merge(cmp, a, nil); !reflect.DeepEqual(got, a) {
		t.Errorf("Merge(a, nil) = %v", got)
	}
}

func TestDedupe(t *testing.T) {
	cmp := Ints[int]()
	got := Dedupe(cmp, []int{1, 1, 2, 3, 3, 3, 4})
	want := []int{1, 2, 3, 4}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Dedupe = %v, want %v", got, want)
	}
	if Dedupe(cmp, nil) != nil {
		t.Errorf("Dedupe(nil) should be nil")
	}
}

func TestRestrict(t *testing.T) {
	cmp := Ints[int]()
	items := []int{1, 2, 3, 4, 5, 6, 7}
	got := Restrict(cmp, items, 2, true, 6, true)
	want := []int{3, 4, 5}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Restrict(2,6) = %v, want %v", got, want)
	}
	// Unbounded below.
	got = Restrict(cmp, items, 0, false, 4, true)
	want = []int{1, 2, 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Restrict(-inf,4) = %v, want %v", got, want)
	}
	// Unbounded above.
	got = Restrict(cmp, items, 5, true, 0, false)
	want = []int{6, 7}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Restrict(5,+inf) = %v, want %v", got, want)
	}
	// Fully unbounded.
	got = Restrict(cmp, items, 0, false, 0, false)
	if !reflect.DeepEqual(got, items) {
		t.Fatalf("Restrict(-inf,+inf) = %v, want all items", got)
	}
	// Empty interval.
	got = Restrict(cmp, items, 3, true, 4, true)
	if len(got) != 0 {
		t.Fatalf("Restrict(3,4) = %v, want empty", got)
	}
}

func TestMultisetBasic(t *testing.T) {
	m := NewMultiset(Ints[int]())
	if m.Len() != 0 {
		t.Fatalf("new multiset should be empty")
	}
	if _, ok := m.Min(); ok {
		t.Fatalf("Min on empty should report false")
	}
	if _, ok := m.Max(); ok {
		t.Fatalf("Max on empty should report false")
	}
	for _, x := range []int{5, 2, 8, 2, 11} {
		m.Add(x)
	}
	if m.Len() != 5 {
		t.Fatalf("Len = %d, want 5", m.Len())
	}
	if mn, _ := m.Min(); mn != 2 {
		t.Errorf("Min = %d, want 2", mn)
	}
	if mx, _ := m.Max(); mx != 11 {
		t.Errorf("Max = %d, want 11", mx)
	}
	if !m.Contains(8) || m.Contains(7) {
		t.Errorf("Contains incorrect")
	}
	if got := m.Rank(8); got != 4 {
		t.Errorf("Rank(8) = %d, want 4", got)
	}
	if got := m.Rank(1); got != 1 {
		t.Errorf("Rank(1) = %d, want 1", got)
	}
	if got := m.Rank(100); got != 6 {
		t.Errorf("Rank(100) = %d, want 6", got)
	}
	if got := m.CountLE(5); got != 3 {
		t.Errorf("CountLE(5) = %d, want 3", got)
	}
	if got := m.CountLT(5); got != 2 {
		t.Errorf("CountLT(5) = %d, want 2", got)
	}
	if got := m.Select(1); got != 2 {
		t.Errorf("Select(1) = %d, want 2", got)
	}
	if got := m.Select(5); got != 11 {
		t.Errorf("Select(5) = %d, want 11", got)
	}
}

func TestMultisetSelectPanics(t *testing.T) {
	m := NewMultiset(Ints[int]())
	m.Add(1)
	defer func() {
		if recover() == nil {
			t.Fatalf("Select out of range should panic")
		}
	}()
	m.Select(2)
}

func TestMultisetNextPrev(t *testing.T) {
	m := NewMultiset(Ints[int]())
	m.AddSortedBatch([]int{10, 20, 30, 40})
	if nx, ok := m.Next(20); !ok || nx != 30 {
		t.Errorf("Next(20) = %d,%v want 30,true", nx, ok)
	}
	if nx, ok := m.Next(25); !ok || nx != 30 {
		t.Errorf("Next(25) = %d,%v want 30,true", nx, ok)
	}
	if _, ok := m.Next(40); ok {
		t.Errorf("Next(max) should report false")
	}
	if pv, ok := m.Prev(20); !ok || pv != 10 {
		t.Errorf("Prev(20) = %d,%v want 10,true", pv, ok)
	}
	if pv, ok := m.Prev(25); !ok || pv != 20 {
		t.Errorf("Prev(25) = %d,%v want 20,true", pv, ok)
	}
	if _, ok := m.Prev(10); ok {
		t.Errorf("Prev(min) should report false")
	}
}

func TestMultisetAddSortedBatch(t *testing.T) {
	m := NewMultiset(Ints[int]())
	m.AddSortedBatch([]int{1, 3, 5})
	m.AddSortedBatch([]int{2, 4, 6})
	m.AddSortedBatch(nil)
	want := []int{1, 2, 3, 4, 5, 6}
	if !reflect.DeepEqual(m.Items(), want) {
		t.Fatalf("Items = %v, want %v", m.Items(), want)
	}
}

func TestMultisetCountInOpen(t *testing.T) {
	m := NewMultiset(Ints[int]())
	m.AddSortedBatch([]int{1, 2, 3, 4, 5})
	if got := m.CountInOpen(1, true, 5, true); got != 3 {
		t.Errorf("CountInOpen(1,5) = %d, want 3", got)
	}
	if got := m.CountInOpen(0, false, 3, true); got != 2 {
		t.Errorf("CountInOpen(-inf,3) = %d, want 2", got)
	}
	if got := m.CountInOpen(3, true, 0, false); got != 2 {
		t.Errorf("CountInOpen(3,+inf) = %d, want 2", got)
	}
}

func TestMultisetClone(t *testing.T) {
	m := NewMultiset(Ints[int]())
	m.AddSortedBatch([]int{1, 2, 3})
	c := m.Clone()
	c.Add(4)
	if m.Len() != 3 {
		t.Errorf("Clone should not share storage: original len %d", m.Len())
	}
	if c.Len() != 4 {
		t.Errorf("clone len = %d, want 4", c.Len())
	}
}

// Property: Sort agrees with sort.Ints on random inputs.
func TestSortMatchesStdlibProperty(t *testing.T) {
	cmp := Ints[int]()
	f := func(items []int) bool {
		mine := make([]int, len(items))
		copy(mine, items)
		theirs := make([]int, len(items))
		copy(theirs, items)
		Sort(cmp, mine)
		sort.Ints(theirs)
		return reflect.DeepEqual(mine, theirs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Merge of two sorted slices is sorted and has the right length.
func TestMergeProperty(t *testing.T) {
	cmp := Ints[int]()
	f := func(a, b []int) bool {
		sort.Ints(a)
		sort.Ints(b)
		m := Merge(cmp, a, b)
		return len(m) == len(a)+len(b) && IsSorted(cmp, m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Multiset.Rank matches a brute-force count on random inputs.
func TestMultisetRankProperty(t *testing.T) {
	f := func(items []int, q int) bool {
		m := NewMultiset(Ints[int]())
		for _, x := range items {
			m.Add(x)
		}
		brute := 1
		for _, x := range items {
			if x < q {
				brute++
			}
		}
		return m.Rank(q) == brute
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: InsertSorted keeps slices sorted regardless of insertion order.
func TestInsertSortedProperty(t *testing.T) {
	cmp := Ints[int]()
	f := func(items []int) bool {
		var s []int
		for _, x := range items {
			s = InsertSorted(cmp, s, x)
		}
		return len(s) == len(items) && IsSorted(cmp, s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Restrict returns exactly the items strictly inside the interval.
func TestRestrictProperty(t *testing.T) {
	cmp := Ints[int]()
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(50)
		items := make([]int, n)
		for i := range items {
			items[i] = rng.Intn(100)
		}
		sort.Ints(items)
		lo := rng.Intn(100)
		hi := lo + rng.Intn(100)
		got := Restrict(cmp, items, lo, true, hi, true)
		var want []int
		for _, x := range items {
			if x > lo && x < hi {
				want = append(want, x)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("Restrict length mismatch: got %v want %v", got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("Restrict mismatch: got %v want %v", got, want)
			}
		}
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	default:
		return 0
	}
}
