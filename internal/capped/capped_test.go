package capped

import (
	"testing"
	"testing/quick"

	"quantilelb/internal/order"
	"quantilelb/internal/rank"
	"quantilelb/internal/stream"
)

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("capacity < 3 should panic")
		}
	}()
	NewFloat64(2)
}

func TestEmpty(t *testing.T) {
	s := NewFloat64(8)
	if _, ok := s.Query(0.5); ok {
		t.Errorf("query on empty should fail")
	}
	if s.EstimateRank(1) != 0 {
		t.Errorf("rank on empty should be 0")
	}
	if err := s.CheckInvariant(); err != nil {
		t.Errorf("invariant on empty: %v", err)
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	s := NewFloat64(10)
	gen := stream.NewGenerator(1)
	for _, x := range gen.Shuffled(10000).Items() {
		s.Update(x)
		if s.StoredCount() > 10 {
			t.Fatalf("capacity exceeded: %d", s.StoredCount())
		}
	}
	if err := s.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	if s.Capacity() != 10 {
		t.Errorf("Capacity = %d", s.Capacity())
	}
	if s.Count() != 10000 {
		t.Errorf("Count = %d", s.Count())
	}
}

func TestMinMaxPreserved(t *testing.T) {
	s := NewFloat64(5)
	gen := stream.NewGenerator(2)
	st := gen.Shuffled(5000)
	for _, x := range st.Items() {
		s.Update(x)
	}
	items := s.StoredItems()
	if items[0] != 1 {
		t.Errorf("minimum lost: %v", items[0])
	}
	if items[len(items)-1] != 5000 {
		t.Errorf("maximum lost: %v", items[len(items)-1])
	}
}

func TestAccuracyWhenCapacityIsGenerous(t *testing.T) {
	// With capacity well above 1/(2 eps) on a random-order stream, the capped
	// summary is usually accurate; this is the "looks fine on benign input"
	// behaviour that the adversarial construction then defeats.
	eps := 0.05
	n := 20000
	s := NewFloat64(200)
	gen := stream.NewGenerator(3)
	st := gen.Shuffled(n)
	for _, x := range st.Items() {
		s.Update(x)
	}
	oracle := rank.Float64Oracle(st.Items())
	bad := 0
	for i := 0; i <= 100; i++ {
		phi := float64(i) / 100
		got, _ := s.Query(phi)
		if !oracle.IsApproxQuantile(got, phi, eps) {
			bad++
		}
	}
	if bad > 5 {
		t.Errorf("capped summary with generous capacity failed %d/101 queries on a random stream", bad)
	}
}

func TestQueryAndRankOnSmallStream(t *testing.T) {
	s := NewFloat64(100)
	for i := 1; i <= 50; i++ {
		s.Update(float64(i))
	}
	// Everything fits: answers are exact.
	if v, _ := s.Query(0.5); v != 25 {
		t.Errorf("median = %v, want 25", v)
	}
	if got := s.EstimateRank(30); got != 30 {
		t.Errorf("EstimateRank(30) = %d", got)
	}
	if got := s.EstimateRank(0); got != 0 {
		t.Errorf("EstimateRank(0) = %d", got)
	}
	if v, _ := s.Query(-1); v != 1 {
		t.Errorf("clamped phi<0 should return min")
	}
	if v, _ := s.Query(2); v != 50 {
		t.Errorf("clamped phi>1 should return max")
	}
}

func TestWeightsConserved(t *testing.T) {
	s := NewFloat64(7)
	gen := stream.NewGenerator(4)
	for i, x := range gen.Uniform(3000).Items() {
		s.Update(x)
		if i%101 == 0 {
			if err := s.CheckInvariant(); err != nil {
				t.Fatalf("after %d items: %v", i+1, err)
			}
		}
	}
	if err := s.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestStoredItemsSorted(t *testing.T) {
	s := New(order.Floats[float64](), 16)
	gen := stream.NewGenerator(5)
	for _, x := range gen.Uniform(2000).Items() {
		s.Update(x)
	}
	items := s.StoredItems()
	if !order.IsSorted(order.Floats[float64](), items) {
		t.Fatalf("StoredItems not sorted")
	}
	if len(items) != s.StoredCount() {
		t.Fatalf("StoredItems / StoredCount mismatch")
	}
}

// Property: invariant (sorted, weights positive, weights sum to n, capacity
// respected) holds for arbitrary inputs.
func TestInvariantProperty(t *testing.T) {
	f := func(items []float64) bool {
		s := NewFloat64(9)
		for _, x := range items {
			s.Update(x)
		}
		return s.CheckInvariant() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
