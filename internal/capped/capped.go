// Package capped implements a deterministic comparison-based quantile summary
// with a hard cap on the number of stored items.
//
// It is the strawman that the lower bound of Cormode & Veselý (PODS 2020)
// proves cannot work: any deterministic comparison-based summary using
// o((1/ε)·log εN) items must fail to provide some ε-approximate quantile.
// Experiments E4 and E8 run this summary (with capacity well below the bound)
// against the adversarial construction and then exhibit a quantile query it
// answers with error larger than εN, giving an executable demonstration of
// Lemma 3.4 and Theorem 6.1. On benign (random-order) streams the same
// summary looks perfectly accurate, which is exactly why a lower bound is
// needed to rule it out.
//
// Internally it maintains Greenwald–Khanna style tuples (v, g, Δ), where g is
// the rank increment from the previous stored item and Δ the uncertainty in
// the item's rank; insertions keep the bounds valid, and when the tuple count
// exceeds the capacity the interior pair with the smallest combined coverage
// (g_i + g_{i+1} + Δ_{i+1}) is merged. The minimum and maximum are never
// merged away, matching the model assumption in Section 2 of the paper.
package capped

import (
	"fmt"

	"quantilelb/internal/order"
)

// tuple is a stored item with GK-style rank bookkeeping.
type tuple[T any] struct {
	item  T
	g     int
	delta int
}

// Summary is a capacity-bounded deterministic quantile summary.
type Summary[T any] struct {
	cmp      order.Comparator[T]
	capacity int
	n        int
	tuples   []tuple[T]
}

// New returns a summary that never stores more than capacity items.
// It panics if capacity < 3 (the minimum, maximum and one interior item).
func New[T any](cmp order.Comparator[T], capacity int) *Summary[T] {
	if capacity < 3 {
		panic("capped: capacity must be at least 3")
	}
	return &Summary[T]{cmp: cmp, capacity: capacity}
}

// NewFloat64 returns a float64 summary with the given capacity.
func NewFloat64(capacity int) *Summary[float64] {
	return New(order.Floats[float64](), capacity)
}

// Capacity returns the configured capacity.
func (s *Summary[T]) Capacity() int { return s.capacity }

// Count returns the number of items processed.
func (s *Summary[T]) Count() int { return s.n }

// StoredCount returns the number of stored items.
func (s *Summary[T]) StoredCount() int { return len(s.tuples) }

// StoredItems returns the stored items in non-decreasing order.
func (s *Summary[T]) StoredItems() []T {
	out := make([]T, len(s.tuples))
	for i, e := range s.tuples {
		out[i] = e.item
	}
	return out
}

// Update processes one stream item.
func (s *Summary[T]) Update(x T) {
	s.n++
	idx := 0
	for idx < len(s.tuples) && s.cmp(s.tuples[idx].item, x) < 0 {
		idx++
	}
	var delta int
	if idx > 0 && idx < len(s.tuples) {
		// Interior insertion: the new item's true rank lies anywhere between
		// rmin(previous)+1 and rmax(successor), so it inherits the
		// successor's coverage as uncertainty (standard GK insertion).
		delta = s.tuples[idx].g + s.tuples[idx].delta - 1
		if delta < 0 {
			delta = 0
		}
	}
	s.tuples = append(s.tuples, tuple[T]{})
	copy(s.tuples[idx+1:], s.tuples[idx:])
	s.tuples[idx] = tuple[T]{item: x, g: 1, delta: delta}
	if len(s.tuples) > s.capacity {
		s.shrink()
	}
}

// shrink merges the interior adjacent pair with the smallest combined
// coverage, preserving the first and last tuples.
func (s *Summary[T]) shrink() {
	if len(s.tuples) < 4 {
		return
	}
	best := -1
	bestCover := 0
	for i := 1; i+1 <= len(s.tuples)-2; i++ {
		cover := s.tuples[i].g + s.tuples[i+1].g + s.tuples[i+1].delta
		if best == -1 || cover < bestCover {
			best, bestCover = i, cover
		}
	}
	if best == -1 {
		return
	}
	// Merge tuple best into best+1: the survivor absorbs the g weight; its
	// rank bounds remain valid.
	s.tuples[best+1].g += s.tuples[best].g
	s.tuples = append(s.tuples[:best], s.tuples[best+1:]...)
}

// rankBounds returns the claimed [rmin, rmax] for tuple index i.
func (s *Summary[T]) rankBounds(i int) (int, int) {
	rmin := 0
	for j := 0; j <= i; j++ {
		rmin += s.tuples[j].g
	}
	return rmin, rmin + s.tuples[i].delta
}

// MaxCoverage returns the largest value of g_i + Δ_i over stored tuples: the
// widest rank uncertainty, which bounds the worst-case query error. The
// adversarial experiments report it as the realized "gap".
func (s *Summary[T]) MaxCoverage() int {
	maxCover := 0
	for i := 1; i < len(s.tuples); i++ {
		c := s.tuples[i].g + s.tuples[i].delta
		if c > maxCover {
			maxCover = c
		}
	}
	return maxCover
}

// Query returns the stored item whose claimed rank interval is closest to the
// target rank ⌊ϕN⌋.
func (s *Summary[T]) Query(phi float64) (T, bool) {
	var zero T
	if s.n == 0 {
		return zero, false
	}
	if phi < 0 {
		phi = 0
	}
	if phi > 1 {
		phi = 1
	}
	target := int(phi * float64(s.n))
	if target < 1 {
		target = 1
	}
	bestIdx := 0
	bestDist := -1
	rmin := 0
	for i := range s.tuples {
		rmin += s.tuples[i].g
		rmax := rmin + s.tuples[i].delta
		dist := 0
		switch {
		case target < rmin:
			dist = rmin - target
		case target > rmax:
			dist = target - rmax
		}
		if bestDist == -1 || dist < bestDist {
			bestIdx, bestDist = i, dist
		}
	}
	return s.tuples[bestIdx].item, true
}

// EstimateRank estimates the number of items <= q using the claimed rank
// bounds of the bracketing stored items.
func (s *Summary[T]) EstimateRank(q T) int {
	if s.n == 0 {
		return 0
	}
	rmin := 0
	lastRmin := -1
	nextIdx := -1
	for i := range s.tuples {
		if s.cmp(s.tuples[i].item, q) > 0 {
			nextIdx = i
			break
		}
		rmin += s.tuples[i].g
		lastRmin = rmin
	}
	if lastRmin < 0 {
		return 0
	}
	upper := s.n
	if nextIdx >= 0 {
		upper = lastRmin + s.tuples[nextIdx].g + s.tuples[nextIdx].delta - 1
	}
	return (lastRmin + upper) / 2
}

// CheckInvariant verifies that tuples are sorted, g values are positive, the
// g values sum to n, the extreme tuples are exact, and the capacity cap is
// respected.
func (s *Summary[T]) CheckInvariant() error {
	if len(s.tuples) > s.capacity {
		return fmt.Errorf("capped: %d entries exceed capacity %d", len(s.tuples), s.capacity)
	}
	total := 0
	for i, e := range s.tuples {
		if e.g < 1 {
			return fmt.Errorf("capped: tuple %d has non-positive g", i)
		}
		if e.delta < 0 {
			return fmt.Errorf("capped: tuple %d has negative delta", i)
		}
		if i > 0 && s.cmp(s.tuples[i-1].item, e.item) > 0 {
			return fmt.Errorf("capped: tuples out of order at %d", i)
		}
		total += e.g
	}
	if total != s.n {
		return fmt.Errorf("capped: total g %d != n %d", total, s.n)
	}
	if len(s.tuples) > 0 {
		if s.tuples[0].delta != 0 {
			return fmt.Errorf("capped: first tuple has nonzero delta")
		}
		if s.tuples[len(s.tuples)-1].delta != 0 {
			return fmt.Errorf("capped: last tuple has nonzero delta")
		}
	}
	return nil
}
