// Package exact implements a tiny exact quantile buffer: a sorted sample of
// every item (or weighted value run) it has ingested, answering quantile and
// rank queries with zero error in O(items) space.
//
// It exists for the cold-tenant regime the lower bound of Cormode & Veselý
// (PODS 2020) makes expensive: the Ω((1/ε)·log εN) floor applies per key, so
// a million mostly-cold tenants would each pay the full sketch allocation for
// a handful of observations. The multi-tenant store starts every key as an
// exact Buffer — 8 bytes per retained item, exact answers — and promotes it
// to the configured sketch family only once the buffer outgrows the sketch's
// own floor (see store.Config.PromoteItems). Until then the key is strictly
// cheaper AND strictly more accurate than any summary, which is the
// observation that makes million-key tenancy affordable.
package exact

import (
	"errors"

	"quantilelb/internal/order"
)

// Buffer is an exact sorted-sample quantile summary over float64 items.
// The zero value is not usable; call New.
type Buffer struct {
	cmp order.Comparator[float64]
	// vals is sorted non-decreasing (NaNs first, per order.Floats). While wts
	// is nil every element carries unit weight and duplicates occupy separate
	// slots; once a weighted update arrives, wts is materialized parallel to
	// vals and equal values coalesce into one slot with summed weight.
	vals []float64
	wts  []int64
	n    int64 // total weight ingested
}

// New returns an empty exact buffer.
func New() *Buffer {
	return &Buffer{cmp: order.Floats[float64]()}
}

// Count returns the total weight ingested.
func (b *Buffer) Count() int { return int(b.n) }

// StoredCount returns the number of retained slots (the paper's space
// measure: one stored item per slot regardless of its weight).
func (b *Buffer) StoredCount() int { return len(b.vals) }

// StoredItems returns the retained items in non-decreasing order.
func (b *Buffer) StoredItems() []float64 {
	out := make([]float64, len(b.vals))
	copy(out, b.vals)
	return out
}

// Update ingests one item.
func (b *Buffer) Update(x float64) {
	b.n++
	if b.wts == nil {
		b.vals = order.InsertSorted(b.cmp, b.vals, x)
		return
	}
	b.insertWeighted(x, 1)
}

// UpdateBatch ingests a batch of items in one pass: the batch is sorted once
// and merged into the retained array, so large batches cost
// O((k + items)·log k) instead of k binary-search insertions.
func (b *Buffer) UpdateBatch(xs []float64) {
	if len(xs) == 0 {
		return
	}
	b.n += int64(len(xs))
	sorted := order.Sorted(b.cmp, xs)
	if b.wts == nil {
		b.vals = order.Merge(b.cmp, b.vals, sorted)
		return
	}
	for _, x := range sorted {
		b.insertWeighted(x, 1)
	}
}

// WeightedUpdate ingests one item carrying integer weight w ≥ 1 in O(log k)
// time: equal values coalesce into one slot, so pre-counted histogram buckets
// cost one slot each. It panics on w ≤ 0, matching the other families.
func (b *Buffer) WeightedUpdate(x float64, w int64) {
	if w <= 0 {
		panic("exact: weight must be positive")
	}
	b.materializeWeights()
	b.n += w
	b.insertWeighted(x, w)
}

// WeightedUpdateBatch ingests parallel item/weight slices.
func (b *Buffer) WeightedUpdateBatch(xs []float64, ws []int64) {
	if len(xs) != len(ws) {
		panic("exact: mismatched batch lengths")
	}
	for i, x := range xs {
		b.WeightedUpdate(x, ws[i])
	}
}

// materializeWeights switches the buffer to weighted representation,
// coalescing duplicate values into single slots.
func (b *Buffer) materializeWeights() {
	if b.wts != nil {
		return
	}
	vals := make([]float64, 0, len(b.vals))
	wts := make([]int64, 0, len(b.vals))
	for i, v := range b.vals {
		if i > 0 && b.cmp(vals[len(vals)-1], v) == 0 {
			wts[len(wts)-1]++
			continue
		}
		vals = append(vals, v)
		wts = append(wts, 1)
	}
	b.vals, b.wts = vals, wts
}

// insertWeighted adds weight w at value x in the weighted representation.
func (b *Buffer) insertWeighted(x float64, w int64) {
	i := order.SearchFirstGE(b.cmp, b.vals, x)
	if i < len(b.vals) && b.cmp(b.vals[i], x) == 0 {
		b.wts[i] += w
		return
	}
	b.vals = append(b.vals, 0)
	copy(b.vals[i+1:], b.vals[i:])
	b.vals[i] = x
	b.wts = append(b.wts, 0)
	copy(b.wts[i+1:], b.wts[i:])
	b.wts[i] = w
}

// Query returns the exact (weighted) ϕ-quantile; false when empty.
func (b *Buffer) Query(phi float64) (float64, bool) {
	if len(b.vals) == 0 {
		return 0, false
	}
	if phi <= 0 {
		return b.vals[0], true
	}
	if phi >= 1 {
		return b.vals[len(b.vals)-1], true
	}
	target := int64(phi * float64(b.n))
	if target < 1 {
		target = 1
	}
	if b.wts == nil {
		return b.vals[target-1], true
	}
	run := int64(0)
	for i, w := range b.wts {
		run += w
		if run >= target {
			return b.vals[i], true
		}
	}
	return b.vals[len(b.vals)-1], true
}

// EstimateRank returns the exact total weight of items ≤ q.
func (b *Buffer) EstimateRank(q float64) int {
	i := order.CountLE(b.cmp, b.vals, q)
	if b.wts == nil {
		return i
	}
	run := int64(0)
	for j := 0; j < i; j++ {
		run += b.wts[j]
	}
	return int(run)
}

// Merge folds another exact buffer into the receiver: the union stays exact.
// The argument is read but never modified.
func (b *Buffer) Merge(other *Buffer) error {
	if other == nil || other.n == 0 {
		return nil
	}
	if b.wts == nil && other.wts == nil {
		b.vals = order.Merge(b.cmp, b.vals, other.vals)
		b.n += other.n
		return nil
	}
	b.materializeWeights()
	other.Each(func(v float64, w int64) {
		b.insertWeighted(v, w)
	})
	b.n += other.n
	return nil
}

// Each calls fn for every retained slot in non-decreasing value order with
// its weight — the replay hook promotion and cross-stage merges use to feed
// the buffered items into a sketch's native weighted path.
func (b *Buffer) Each(fn func(v float64, w int64)) {
	for i, v := range b.vals {
		w := int64(1)
		if b.wts != nil {
			w = b.wts[i]
		}
		fn(v, w)
	}
}

// Values returns the retained values slice (not a copy; treat as read-only).
func (b *Buffer) Values() []float64 { return b.vals }

// Weights returns the parallel weights, or nil when every value carries unit
// weight (not a copy; treat as read-only).
func (b *Buffer) Weights() []int64 { return b.wts }

// RetainedBytes reports the heap bytes retained by the value and weight
// arrays, counting allocated capacity (summary.Sized): 8 bytes per unit slot,
// 16 once weights are materialized.
func (b *Buffer) RetainedBytes() int {
	return cap(b.vals)*8 + cap(b.wts)*8
}

// Restore reconstructs a buffer from exported state: sorted values, optional
// parallel weights (nil for all-unit), and the total weight n. It validates
// ordering and weight positivity, the invariants the wire decoder relies on.
func Restore(vals []float64, wts []int64, n int64) (*Buffer, error) {
	b := New()
	if wts != nil && len(wts) != len(vals) {
		return nil, errors.New("exact: restore: weights length mismatch")
	}
	if !order.IsSorted(b.cmp, vals) {
		return nil, errors.New("exact: restore: values not sorted")
	}
	total := int64(0)
	if wts == nil {
		total = int64(len(vals))
	} else {
		for _, w := range wts {
			if w <= 0 {
				return nil, errors.New("exact: restore: non-positive weight")
			}
			total += w
		}
	}
	if n != total {
		return nil, errors.New("exact: restore: count does not match weights")
	}
	b.vals = append([]float64(nil), vals...)
	if wts != nil {
		b.wts = append([]int64(nil), wts...)
	}
	b.n = n
	return b, nil
}
