package kll

// Weighted-input coverage: the binary level decomposition must conserve
// weight exactly, keep the compactor invariants, and answer within the
// randomized slack of ε·W against the exact weighted oracle.

import (
	"math/rand"
	"testing"

	"quantilelb/internal/rank"
)

func TestWeightedUpdateWithinEps(t *testing.T) {
	const n, eps, slack = 4000, 0.02, 3.0
	rng := rand.New(rand.NewSource(19))
	items := make([]float64, n)
	weights := make([]int64, n)
	for i := range items {
		items[i] = float64(rng.Intn(n / 2))
		weights[i] = int64(1 + rng.Intn(30))
		if rng.Intn(100) == 0 {
			weights[i] = int64(1) << uint(10+rng.Intn(10)) // up to 2^19
		}
	}
	s := NewFloat64(eps, WithSeed(7))
	for i, x := range items {
		s.WeightedUpdate(x, weights[i])
	}
	if err := s.CheckInvariant(); err != nil {
		t.Fatalf("invariant after weighted ingest: %v", err)
	}
	oracle := rank.Float64WeightedOracle(items, weights)
	if int64(s.Count()) != oracle.TotalWeight() {
		t.Fatalf("Count = %d, want total weight %d", s.Count(), oracle.TotalWeight())
	}
	allowance := slack * eps * float64(oracle.TotalWeight())
	for g := 0; g <= 100; g++ {
		phi := float64(g) / 100
		got, ok := s.Query(phi)
		if !ok {
			t.Fatalf("Query(%g) failed", phi)
		}
		if e := oracle.RankError(got, phi); float64(e) > allowance+1 {
			t.Errorf("phi=%g: weighted rank error %d exceeds allowance %.1f", phi, e, allowance)
		}
	}
}

func TestWeightedUpdateBatchMatchesSequential(t *testing.T) {
	// Same seed, same pairs: the batch path must land every item on the same
	// levels (only the cascade timing differs), so counts and invariants
	// agree and answers stay within the shared guarantee.
	const n, eps = 2000, 0.05
	rng := rand.New(rand.NewSource(23))
	items := make([]float64, n)
	weights := make([]int64, n)
	for i := range items {
		items[i] = rng.Float64() * 1000
		weights[i] = int64(1 + rng.Intn(9))
	}
	s := NewFloat64(eps, WithSeed(4))
	s.WeightedUpdateBatch(items, weights)
	if err := s.CheckInvariant(); err != nil {
		t.Fatalf("invariant after weighted batch: %v", err)
	}
	var want int64
	for _, w := range weights {
		want += w
	}
	if int64(s.Count()) != want {
		t.Fatalf("Count = %d, want %d", s.Count(), want)
	}
}

func TestWeightedUpdateMergesWithUnweighted(t *testing.T) {
	const eps = 0.05
	a := NewFloat64(eps, WithSeed(1))
	b := NewFloat64(eps, WithSeed(2))
	for i := 0; i < 1000; i++ {
		a.WeightedUpdate(float64(i), 5)
		b.Update(float64(i))
	}
	if err := a.Merge(b); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if err := a.CheckInvariant(); err != nil {
		t.Fatalf("post-merge invariant: %v", err)
	}
	if want := 1000*5 + 1000; a.Count() != want {
		t.Fatalf("merged Count = %d, want %d", a.Count(), want)
	}
}

func TestWeightedUpdatePanics(t *testing.T) {
	assertPanics := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	s := NewFloat64(0.1, WithSeed(1))
	assertPanics("zero weight", func() { s.WeightedUpdate(1, 0) })
	assertPanics("negative weight", func() { s.WeightedUpdate(1, -1) })
	assertPanics("batch length mismatch", func() { s.WeightedUpdateBatch([]float64{1}, nil) })
}
