package kll

import (
	"testing"

	"quantilelb/internal/rank"
	"quantilelb/internal/stream"
)

// maxRankError feeds a summary across an evenly spaced quantile grid and
// returns the worst absolute rank error against the exact oracle.
func maxRankError(t *testing.T, s *Sketch[float64], items []float64, grid int) int {
	t.Helper()
	oracle := rank.Float64Oracle(items)
	worst := 0
	for i := 0; i <= grid; i++ {
		phi := float64(i) / float64(grid)
		got, ok := s.Query(phi)
		if !ok {
			t.Fatalf("query phi=%v failed on non-empty sketch", phi)
		}
		if e := oracle.RankError(got, phi); e > worst {
			worst = e
		}
	}
	return worst
}

// TestUpdateBatchEquivalence asserts the batch path gives the same eps
// guarantee as item-at-a-time updates, across batch sizes that exercise the
// empty, single-item, sub-capacity and multi-cascade cases.
func TestUpdateBatchEquivalence(t *testing.T) {
	const eps = 0.02
	const n = 40_000
	gen := stream.NewGenerator(7)
	items := gen.Shuffled(n).Items()

	// KLL's guarantee is probabilistic (constant failure probability per
	// query), so the sequential path is the baseline: the batch path must be
	// within eps*n of item-at-a-time updates, not of the exact oracle.
	seq := NewFloat64(eps, WithSeed(3))
	for _, x := range items {
		seq.Update(x)
	}
	seqWorst := maxRankError(t, seq, items, 200)
	allowance := seqWorst + int(eps*float64(n)) + 1

	for _, batch := range []int{1, 7, 64, 1024, 8192, n} {
		bat := NewFloat64(eps, WithSeed(3))
		for i := 0; i < len(items); i += batch {
			end := i + batch
			if end > len(items) {
				end = len(items)
			}
			bat.UpdateBatch(items[i:end])
		}
		if bat.Count() != seq.Count() {
			t.Fatalf("batch=%d: count %d, want %d", batch, bat.Count(), seq.Count())
		}
		if err := bat.CheckInvariant(); err != nil {
			t.Fatalf("batch=%d: invariant: %v", batch, err)
		}
		bmin, bmax, ok := bat.Extremes()
		smin, smax, _ := seq.Extremes()
		if !ok || bmin != smin || bmax != smax {
			t.Fatalf("batch=%d: extremes (%v,%v), want (%v,%v)", batch, bmin, bmax, smin, smax)
		}
		if worst := maxRankError(t, bat, items, 200); worst > allowance {
			t.Errorf("batch=%d: worst rank error %d exceeds sequential baseline %d + eps*n", batch, worst, seqWorst)
		}
	}
}

// TestUpdateBatchEdgeCases covers the empty and single-item batches the
// sharded layer can produce when flushing write buffers.
func TestUpdateBatchEdgeCases(t *testing.T) {
	s := NewFloat64(0.1, WithSeed(1))
	s.UpdateBatch(nil)
	s.UpdateBatch([]float64{})
	if s.Count() != 0 {
		t.Fatalf("empty batches must not change the count, got %d", s.Count())
	}
	if _, ok := s.Query(0.5); ok {
		t.Fatalf("sketch should still be empty")
	}
	s.UpdateBatch([]float64{42})
	if s.Count() != 1 {
		t.Fatalf("count = %d, want 1", s.Count())
	}
	if v, ok := s.Query(0.5); !ok || v != 42 {
		t.Fatalf("Query(0.5) = %v, %v; want 42, true", v, ok)
	}
	if err := s.CheckInvariant(); err != nil {
		t.Fatalf("invariant: %v", err)
	}
	// A batch mixed into an existing stream keeps min/max exact.
	s.UpdateBatch([]float64{-7, 99, 3})
	mn, mx, ok := s.Extremes()
	if !ok || mn != -7 || mx != 99 {
		t.Fatalf("extremes (%v,%v), want (-7,99)", mn, mx)
	}
}
