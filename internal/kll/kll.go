// Package kll implements the Karnin–Lang–Liberty (FOCS 2016) randomized
// comparison-based quantile sketch, which achieves space
// O((1/ε)·log log (1/εδ)) with failure probability δ.
//
// Section 6.3 of Cormode & Veselý (PODS 2020) relates the deterministic lower
// bound to randomized summaries: a randomized comparison-based summary with
// failure probability below 1/N! can be derandomized, so it inherits the
// Ω((1/ε)·log εN) bound (Theorem 6.4). This implementation exists so the
// experiments can (a) contrast randomized space usage with the deterministic
// lower bound on the adversarial streams, and (b) illustrate that fixing the
// random bits turns KLL into a deterministic comparison-based summary to
// which the lower bound applies directly.
//
// The sketch is a hierarchy of compactors. Compactor h holds items of weight
// 2^h; when it exceeds its capacity it sorts itself and promotes either the
// odd- or even-indexed half (chosen by a coin flip) to level h+1. Capacities
// shrink geometrically for lower levels (factor 2/3), giving the log log
// bound.
package kll

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"quantilelb/internal/order"
)

// Sketch is a KLL quantile sketch over items of type T.
type Sketch[T any] struct {
	cmp order.Comparator[T]
	k   int
	c   float64
	rng *rand.Rand
	n   int

	compactors [][]T

	hasMin, hasMax bool
	min, max       T
}

// Option configures a Sketch.
type Option func(*config)

type config struct {
	seed int64
	c    float64
}

// WithSeed fixes the random seed, making the sketch deterministic. With a
// fixed seed the sketch is a deterministic comparison-based summary, so the
// paper's lower bound applies to it (the derandomization argument of §6.3).
func WithSeed(seed int64) Option {
	return func(c *config) { c.seed = seed }
}

// WithDecay overrides the capacity decay factor (default 2/3).
func WithDecay(c float64) Option {
	return func(cf *config) { cf.c = c }
}

// New returns a sketch with top-compactor capacity k (larger k = more
// accurate). A common rule of thumb is k ≈ 2/ε for worst-case error ε.
func New[T any](cmp order.Comparator[T], k int, opts ...Option) *Sketch[T] {
	if k < 2 {
		panic("kll: k must be at least 2")
	}
	cfg := config{seed: 1, c: 2.0 / 3.0}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.c <= 0.5 || cfg.c >= 1 {
		panic("kll: decay must be in (0.5, 1)")
	}
	return &Sketch[T]{
		cmp:        cmp,
		k:          k,
		c:          cfg.c,
		rng:        rand.New(rand.NewSource(cfg.seed)),
		compactors: [][]T{nil},
	}
}

// NewFloat64 returns a float64 sketch sized for accuracy eps.
func NewFloat64(eps float64, opts ...Option) *Sketch[float64] {
	return New(order.Floats[float64](), KForEpsilon(eps), opts...)
}

// KForEpsilon returns the top-compactor capacity used for a target accuracy.
func KForEpsilon(eps float64) int {
	if eps <= 0 || eps >= 1 {
		panic("kll: eps must be in (0, 1)")
	}
	k := int(math.Ceil(2 / eps))
	if k < 8 {
		k = 8
	}
	return k
}

// K returns the top-compactor capacity.
func (s *Sketch[T]) K() int { return s.k }

// Count returns the number of items processed.
func (s *Sketch[T]) Count() int { return s.n }

// capacityOf returns the capacity of compactor h when there are numLevels
// levels: k·c^(numLevels-1-h), but never below 2.
func (s *Sketch[T]) capacityOf(h, numLevels int) int {
	depth := numLevels - 1 - h
	cap := int(math.Ceil(float64(s.k) * math.Pow(s.c, float64(depth))))
	if cap < 2 {
		cap = 2
	}
	return cap
}

// Update processes one stream item.
func (s *Sketch[T]) Update(x T) {
	s.n++
	if !s.hasMin || s.cmp(x, s.min) < 0 {
		s.min, s.hasMin = x, true
	}
	if !s.hasMax || s.cmp(x, s.max) > 0 {
		s.max, s.hasMax = x, true
	}
	s.compactors[0] = append(s.compactors[0], x)
	s.compress()
}

// UpdateBatch processes a batch of stream items in one pass. It is
// equivalent to calling Update for each item — the sketch is a multiset, so
// intra-batch order is irrelevant, and compacting one large level-0 buffer
// introduces no more rank error than compacting it in capacity-sized pieces
// (each compaction at level h perturbs any fixed rank by at most 2^h
// regardless of buffer length). The speedup comes from bulk-loading the
// level-0 buffer and running the compaction cascade once per batch instead
// of once per item: m individual Updates pay m full passes over the level
// array, a batch pays one sort of the (larger) level-0 buffer and a single
// cascade. This is the fast path the internal/sharded ingestion layer and
// cmd/quantileserver use for pre-aggregated payloads.
func (s *Sketch[T]) UpdateBatch(xs []T) {
	if len(xs) == 0 {
		return
	}
	for _, x := range xs {
		if !s.hasMin || s.cmp(x, s.min) < 0 {
			s.min, s.hasMin = x, true
		}
		if !s.hasMax || s.cmp(x, s.max) > 0 {
			s.max, s.hasMax = x, true
		}
	}
	s.n += len(xs)
	s.compactors[0] = append(s.compactors[0], xs...)
	s.compress()
}

// WeightedUpdate processes one item carrying an integer weight w ≥ 1,
// equivalent to w repeated Updates of x. Compactor level h holds items of
// weight 2^h, so the weight is placed by its binary decomposition: one copy
// of x lands on every level whose bit is set in w — O(log w) appends instead
// of w, the standard weighted extension of compactor sketches. Weight is
// conserved exactly (CheckInvariant's total-weight identity still holds),
// and Count afterwards reports the total weight W. It panics if w is not
// positive.
func (s *Sketch[T]) WeightedUpdate(x T, w int64) {
	if w <= 0 {
		panic("kll: weight must be positive")
	}
	s.placeWeighted(x, w)
	s.compress()
}

// WeightedUpdateBatch processes a batch of weighted items in one pass: every
// pair is placed by its binary decomposition and the compaction cascade runs
// once for the whole batch, mirroring UpdateBatch. len(ws) must equal
// len(xs); it panics on a length mismatch or a non-positive weight.
func (s *Sketch[T]) WeightedUpdateBatch(xs []T, ws []int64) {
	if len(xs) != len(ws) {
		panic("kll: WeightedUpdateBatch: items and weights differ in length")
	}
	for i, x := range xs {
		if ws[i] <= 0 {
			panic("kll: weight must be positive")
		}
		s.placeWeighted(x, ws[i])
	}
	s.compress()
}

// placeWeighted updates the extremes and appends x to the compactor level of
// every set bit of w, without compressing. The sketch's counter is an int,
// so a weight that does not fit one (32-bit platforms) fails loudly rather
// than truncating.
func (s *Sketch[T]) placeWeighted(x T, w int64) {
	if int64(int(w)) != w {
		panic("kll: weight overflows int on this platform")
	}
	if !s.hasMin || s.cmp(x, s.min) < 0 {
		s.min, s.hasMin = x, true
	}
	if !s.hasMax || s.cmp(x, s.max) > 0 {
		s.max, s.hasMax = x, true
	}
	s.n += int(w)
	for h := 0; w > 0; h++ {
		if w&1 == 1 {
			for len(s.compactors) <= h {
				s.compactors = append(s.compactors, nil)
			}
			s.compactors[h] = append(s.compactors[h], x)
		}
		w >>= 1
	}
}

// compress compacts any level exceeding its capacity.
func (s *Sketch[T]) compress() {
	for h := 0; h < len(s.compactors); h++ {
		if len(s.compactors[h]) < s.capacityOf(h, len(s.compactors)) {
			continue
		}
		if h+1 >= len(s.compactors) {
			s.compactors = append(s.compactors, nil)
		}
		buf := s.compactors[h]
		sort.SliceStable(buf, func(i, j int) bool { return s.cmp(buf[i], buf[j]) < 0 })
		// If the buffer has odd length, hold one item back at this level so
		// that total weight is preserved exactly: promoting m (even) items of
		// weight w as m/2 items of weight 2w conserves weight.
		var keep []T
		if len(buf)%2 == 1 {
			keep = []T{buf[len(buf)-1]}
			buf = buf[:len(buf)-1]
		}
		offset := 0
		if s.rng.Intn(2) == 1 {
			offset = 1
		}
		for i := offset; i < len(buf); i += 2 {
			s.compactors[h+1] = append(s.compactors[h+1], buf[i])
		}
		s.compactors[h] = keep
	}
}

// weightedItem pairs an item with the weight of its compactor level.
type weightedItem[T any] struct {
	item   T
	weight int
}

func (s *Sketch[T]) collect() []weightedItem[T] {
	var out []weightedItem[T]
	for h, comp := range s.compactors {
		w := 1 << uint(h)
		for _, x := range comp {
			out = append(out, weightedItem[T]{item: x, weight: w})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return s.cmp(out[i].item, out[j].item) < 0 })
	return out
}

// Query returns an approximate ϕ-quantile.
func (s *Sketch[T]) Query(phi float64) (T, bool) {
	var zero T
	if s.n == 0 {
		return zero, false
	}
	if phi <= 0 {
		return s.min, true
	}
	if phi >= 1 {
		return s.max, true
	}
	items := s.collect()
	totalWeight := 0
	for _, w := range items {
		totalWeight += w.weight
	}
	target := phi * float64(totalWeight)
	if target < 1 {
		target = 1
	}
	cum := 0
	for _, w := range items {
		cum += w.weight
		if float64(cum) >= target {
			return w.item, true
		}
	}
	return s.max, true
}

// EstimateRank estimates the number of items less than or equal to q.
func (s *Sketch[T]) EstimateRank(q T) int {
	if s.n == 0 {
		return 0
	}
	est := 0
	total := 0
	for _, w := range s.collect() {
		total += w.weight
		if s.cmp(w.item, q) <= 0 {
			est += w.weight
		}
	}
	if total == 0 {
		return 0
	}
	// Scale to the true count: compaction retains total weight ~= n but an
	// unpaired item can make them differ slightly.
	return int(math.Round(float64(est) * float64(s.n) / float64(total)))
}

// StoredItems returns all retained items in non-decreasing order.
func (s *Sketch[T]) StoredItems() []T {
	ws := s.collect()
	out := make([]T, len(ws))
	for i, w := range ws {
		out[i] = w.item
	}
	return out
}

// StoredCount returns the number of retained items.
func (s *Sketch[T]) StoredCount() int {
	count := 0
	for _, comp := range s.compactors {
		count += len(comp)
	}
	return count
}

// Levels returns the number of compactor levels.
func (s *Sketch[T]) Levels() int { return len(s.compactors) }

// Merge folds another sketch into the receiver by appending its compactors
// level-wise and recompressing. The error of the merged sketch is bounded by
// the larger of the two sketches' errors (KLL sketches are fully mergeable).
func (s *Sketch[T]) Merge(other *Sketch[T]) error {
	if other == nil || other.n == 0 {
		return nil
	}
	if other.k != s.k {
		return fmt.Errorf("kll: cannot merge sketches with different k (%d vs %d)", s.k, other.k)
	}
	for len(s.compactors) < len(other.compactors) {
		s.compactors = append(s.compactors, nil)
	}
	for h, comp := range other.compactors {
		s.compactors[h] = append(s.compactors[h], comp...)
	}
	s.n += other.n
	if other.hasMin && (!s.hasMin || s.cmp(other.min, s.min) < 0) {
		s.min, s.hasMin = other.min, true
	}
	if other.hasMax && (!s.hasMax || s.cmp(other.max, s.max) > 0) {
		s.max, s.hasMax = other.max, true
	}
	s.compress()
	return nil
}

// CheckInvariant validates structural invariants: no compactor is above twice
// its capacity (compaction is triggered eagerly, but merges can briefly grow
// a level before compress restores it) and the total weight is within one
// top-level weight of n.
func (s *Sketch[T]) CheckInvariant() error {
	totalWeight := 0
	for h, comp := range s.compactors {
		if len(comp) > 2*s.capacityOf(h, len(s.compactors))+1 {
			return fmt.Errorf("kll: compactor %d has %d items, capacity %d", h, len(comp), s.capacityOf(h, len(s.compactors)))
		}
		totalWeight += len(comp) << uint(h)
	}
	if totalWeight != s.n {
		return fmt.Errorf("kll: total weight %d != n %d", totalWeight, s.n)
	}
	return nil
}

// TheoreticalSize returns the O((1/ε)·log log(1/(εδ))) bound on the number of
// retained items for failure probability δ, used for plotting.
func TheoreticalSize(eps, delta float64) float64 {
	if eps <= 0 || delta <= 0 || delta >= 1 {
		return 0
	}
	inner := math.Log2(1 / (eps * delta))
	if inner < 2 {
		inner = 2
	}
	return (1 / eps) * math.Log2(inner)
}

// Compactors returns a deep copy of the compactor levels (level h holds items
// of weight 2^h). It is used by the serialization layer.
func (s *Sketch[T]) Compactors() [][]T {
	out := make([][]T, len(s.compactors))
	for i, level := range s.compactors {
		out[i] = append([]T(nil), level...)
	}
	return out
}

// Extremes returns the exact minimum and maximum seen so far; ok is false
// when the sketch is empty.
func (s *Sketch[T]) Extremes() (min, max T, ok bool) {
	return s.min, s.max, s.hasMin && s.hasMax
}

// Restore reconstructs a sketch from previously exported state, validating
// weight conservation before accepting it. The restored sketch uses a fresh
// deterministic random source; this does not affect the accuracy guarantees.
func Restore[T any](cmp order.Comparator[T], k, count int, levels [][]T, min, max T, hasExtremes bool) (*Sketch[T], error) {
	if k < 2 {
		return nil, fmt.Errorf("kll: restore: k must be at least 2, got %d", k)
	}
	if count < 0 {
		return nil, fmt.Errorf("kll: restore: negative item count")
	}
	s := New(cmp, k, WithSeed(int64(count)+1))
	s.n = count
	s.compactors = make([][]T, len(levels))
	for i, level := range levels {
		s.compactors[i] = append([]T(nil), level...)
	}
	if len(s.compactors) == 0 {
		s.compactors = [][]T{nil}
	}
	if hasExtremes {
		s.min, s.max = min, max
		s.hasMin, s.hasMax = true, true
	}
	if err := s.CheckInvariant(); err != nil {
		return nil, fmt.Errorf("kll: restore: %w", err)
	}
	if count > 0 && !hasExtremes {
		return nil, fmt.Errorf("kll: restore: non-empty sketch without extremes")
	}
	return s, nil
}
