package kll_test

import (
	"fmt"

	"quantilelb/internal/kll"
)

// ExampleSketch_UpdateBatch shows the bulk ingestion fast path: hand the
// sketch pre-aggregated batches and it bulk-loads the level-0 buffer and
// runs the compaction cascade once per batch instead of once per item. A
// fixed seed makes the sketch — and this example — fully deterministic.
func ExampleSketch_UpdateBatch() {
	s := kll.NewFloat64(0.01, kll.WithSeed(1))
	batch := make([]float64, 1024)
	for start := 0; start < 10_240; start += len(batch) {
		for i := range batch {
			batch[i] = float64(start + i + 1)
		}
		s.UpdateBatch(batch)
	}
	median, _ := s.Query(0.5)
	fmt.Println("n:", s.Count())
	fmt.Println("median within 1%:", median >= 5018 && median <= 5222)
	// Output:
	// n: 10240
	// median within 1%: true
}
