package kll

import (
	"math"
	"testing"
	"testing/quick"

	"quantilelb/internal/order"
	"quantilelb/internal/rank"
	"quantilelb/internal/stream"
)

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("k < 2 should panic")
		}
	}()
	New(order.Floats[float64](), 1)
}

func TestKForEpsilonValidation(t *testing.T) {
	for _, eps := range []float64{0, 1, -0.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("eps=%v should panic", eps)
				}
			}()
			KForEpsilon(eps)
		}()
	}
	if KForEpsilon(0.01) != 200 {
		t.Errorf("KForEpsilon(0.01) = %d, want 200", KForEpsilon(0.01))
	}
	if KForEpsilon(0.9) != 8 {
		t.Errorf("KForEpsilon(0.9) should clamp to 8, got %d", KForEpsilon(0.9))
	}
}

func TestDecayValidation(t *testing.T) {
	for _, c := range []float64{0.5, 1.0, 0.2, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("decay %v should panic", c)
				}
			}()
			New(order.Floats[float64](), 10, WithDecay(c))
		}()
	}
}

func TestEmpty(t *testing.T) {
	s := NewFloat64(0.1)
	if _, ok := s.Query(0.5); ok {
		t.Errorf("query on empty should fail")
	}
	if s.EstimateRank(3) != 0 {
		t.Errorf("rank on empty should be 0")
	}
	if s.Count() != 0 || s.StoredCount() != 0 {
		t.Errorf("empty sketch has nonzero counts")
	}
	if err := s.CheckInvariant(); err != nil {
		t.Errorf("invariant on empty: %v", err)
	}
}

func TestSingleItem(t *testing.T) {
	s := NewFloat64(0.1)
	s.Update(42)
	for _, phi := range []float64{0, 0.5, 1} {
		if v, ok := s.Query(phi); !ok || v != 42 {
			t.Errorf("Query(%v) = %v, %v", phi, v, ok)
		}
	}
	if s.K() < 2 {
		t.Errorf("K accessor wrong")
	}
}

func TestAccuracyOnWorkloads(t *testing.T) {
	gen := stream.NewGenerator(1)
	n := 50000
	eps := 0.02
	for _, name := range []string{"sorted", "shuffled", "uniform", "gaussian", "zipf"} {
		st, err := gen.ByName(name, n)
		if err != nil {
			t.Fatal(err)
		}
		s := NewFloat64(eps, WithSeed(7))
		for _, x := range st.Items() {
			s.Update(x)
		}
		if err := s.CheckInvariant(); err != nil {
			t.Fatalf("%s: invariant: %v", name, err)
		}
		oracle := rank.Float64Oracle(st.Items())
		// Randomized guarantee: allow 3x slack over the configured eps and
		// require at least 95 of 101 query points to be within eps.
		within := 0
		for i := 0; i <= 100; i++ {
			phi := float64(i) / 100
			got, ok := s.Query(phi)
			if !ok {
				t.Fatalf("query failed")
			}
			errRank := oracle.RankError(got, phi)
			if float64(errRank) <= eps*float64(n) {
				within++
			}
			if float64(errRank) > 3*eps*float64(n) {
				t.Errorf("%s phi=%v: error %d > 3*eps*N", name, phi, errRank)
			}
		}
		if within < 95 {
			t.Errorf("%s: only %d/101 queries within eps", name, within)
		}
	}
}

func TestEstimateRank(t *testing.T) {
	gen := stream.NewGenerator(2)
	n := 50000
	eps := 0.02
	st := gen.Uniform(n)
	s := NewFloat64(eps, WithSeed(3))
	for _, x := range st.Items() {
		s.Update(x)
	}
	oracle := rank.Float64Oracle(st.Items())
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0} {
		est := s.EstimateRank(q)
		exact := oracle.RankLE(q)
		if math.Abs(float64(est-exact)) > 3*eps*float64(n) {
			t.Errorf("EstimateRank(%v) = %d, exact %d", q, est, exact)
		}
	}
	if s.EstimateRank(-1) > int(3*eps*float64(n)) {
		t.Errorf("rank below the minimum should be near 0")
	}
}

func TestSpaceIsSmall(t *testing.T) {
	n := 200000
	eps := 0.01
	s := NewFloat64(eps, WithSeed(5))
	gen := stream.NewGenerator(3)
	maxStored := 0
	for _, x := range gen.Shuffled(n).Items() {
		s.Update(x)
		if s.StoredCount() > maxStored {
			maxStored = s.StoredCount()
		}
	}
	// KLL stores O(k) = O(1/eps) items up to small factors, far below both n
	// and the deterministic GK bound for large n.
	if maxStored > 10*KForEpsilon(eps) {
		t.Errorf("KLL stored %d items, expected O(k)=O(%d)", maxStored, KForEpsilon(eps))
	}
	if s.Levels() < 2 {
		t.Errorf("expected multiple compactor levels, got %d", s.Levels())
	}
}

func TestDeterministicWithFixedSeed(t *testing.T) {
	gen := stream.NewGenerator(4)
	st := gen.Uniform(20000)
	a := NewFloat64(0.05, WithSeed(99))
	b := NewFloat64(0.05, WithSeed(99))
	for _, x := range st.Items() {
		a.Update(x)
		b.Update(x)
	}
	ia, ib := a.StoredItems(), b.StoredItems()
	if len(ia) != len(ib) {
		t.Fatalf("fixed-seed sketches diverged in size: %d vs %d", len(ia), len(ib))
	}
	for i := range ia {
		if ia[i] != ib[i] {
			t.Fatalf("fixed-seed sketches diverged at %d", i)
		}
	}
}

func TestMerge(t *testing.T) {
	gen := stream.NewGenerator(5)
	eps := 0.02
	a := NewFloat64(eps, WithSeed(1))
	b := NewFloat64(eps, WithSeed(2))
	s1 := gen.Uniform(30000)
	s2 := gen.Gaussian(30000, 0.5, 0.2)
	for _, x := range s1.Items() {
		a.Update(x)
	}
	for _, x := range s2.Items() {
		b.Update(x)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 60000 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if err := a.CheckInvariant(); err != nil {
		t.Fatalf("invariant after merge: %v", err)
	}
	all := append(append([]float64(nil), s1.Items()...), s2.Items()...)
	oracle := rank.Float64Oracle(all)
	for _, phi := range []float64{0.1, 0.5, 0.9} {
		got, ok := a.Query(phi)
		if !ok {
			t.Fatal("query failed after merge")
		}
		if err := oracle.RankError(got, phi); float64(err) > 4*eps*float64(len(all)) {
			t.Errorf("phi=%v error %d too large after merge", phi, err)
		}
	}
}

func TestMergeErrors(t *testing.T) {
	a := NewFloat64(0.1)
	if err := a.Merge(nil); err != nil {
		t.Errorf("merging nil should be a no-op, got %v", err)
	}
	b := New(order.Floats[float64](), 64)
	b.Update(1)
	if err := a.Merge(b); err == nil && a.K() != b.K() {
		t.Errorf("merging sketches with different k should error")
	}
}

func TestMinMaxAlwaysAnswered(t *testing.T) {
	gen := stream.NewGenerator(6)
	st := gen.Shuffled(10000)
	s := NewFloat64(0.01, WithSeed(8))
	for _, x := range st.Items() {
		s.Update(x)
	}
	if v, _ := s.Query(0); v != 1 {
		t.Errorf("phi=0 should return the minimum, got %v", v)
	}
	if v, _ := s.Query(1); v != 10000 {
		t.Errorf("phi=1 should return the maximum, got %v", v)
	}
}

func TestStoredItemsSorted(t *testing.T) {
	gen := stream.NewGenerator(7)
	s := NewFloat64(0.05)
	for _, x := range gen.Uniform(10000).Items() {
		s.Update(x)
	}
	items := s.StoredItems()
	if len(items) != s.StoredCount() {
		t.Fatalf("length mismatch")
	}
	for i := 1; i < len(items); i++ {
		if items[i-1] > items[i] {
			t.Fatalf("StoredItems not sorted")
		}
	}
}

func TestTheoreticalSize(t *testing.T) {
	if TheoreticalSize(0, 0.1) != 0 || TheoreticalSize(0.1, 0) != 0 || TheoreticalSize(0.1, 2) != 0 {
		t.Errorf("degenerate inputs should be 0")
	}
	if TheoreticalSize(0.001, 0.01) <= TheoreticalSize(0.01, 0.01) {
		t.Errorf("size should grow as eps shrinks")
	}
}

// Property: weight conservation — the invariant holds after every update for
// arbitrary item sequences and seeds.
func TestWeightConservationProperty(t *testing.T) {
	f := func(items []float64, seed int64) bool {
		s := NewFloat64(0.1, WithSeed(seed))
		for _, x := range items {
			s.Update(x)
			if s.CheckInvariant() != nil {
				return false
			}
		}
		return s.Count() == len(items)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
