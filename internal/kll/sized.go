package kll

import "unsafe"

// RetainedBytes reports the heap bytes retained across all compactor levels,
// counting allocated capacity (summary.Sized). KLL stores bare items, so for
// float64 streams this is ~8 bytes per retained slot — a quarter of the
// 32-byte flat estimate the store would otherwise charge.
func (s *Sketch[T]) RetainedBytes() int {
	itemSize := int(unsafe.Sizeof(*new(T)))
	total := 0
	for _, c := range s.compactors {
		total += cap(c) * itemSize
	}
	return total
}
