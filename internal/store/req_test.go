package store

// Per-key coverage for the relative-error tail family: the store's factory
// hook must hand each key its own req summary at that key's eps, pick up
// req's batched and native weighted ingest paths, snapshot/restore/merge it
// through the KindREQ wire format, and survive the concurrency torture the
// other families are held to — run under CI's req -race job.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"quantilelb/internal/rank"
	"quantilelb/internal/req"
	"quantilelb/internal/stream"
)

// TestREQFactoryBatchesAndSnapshots runs a per-key req factory through the
// store: batched and native weighted ingest must both be picked up, the
// high-tail relative gate holds at exact eps, and a snapshot payload restores
// and keeps merging (req's free COMBINE).
func TestREQFactoryBatchesAndSnapshots(t *testing.T) {
	const eps = 0.02
	s := New(Config{
		Eps:     eps,
		Factory: func(eps float64) Summary { return req.NewFloat64(eps) },
	})
	gen := stream.NewGenerator(8)
	items := gen.Shuffled(30_000).Items()
	s.UpdateBatch("k", items)
	// Weighted writes route through req's native weighted buffer, not the
	// guarded expansion: a heavy run far beyond the expansion cap must land.
	if err := s.WeightedUpdate("w", 42.5, 1<<20); err != nil {
		t.Fatalf("weighted update: %v", err)
	}
	if s.Count("w") != 1<<20 {
		t.Fatalf("weighted count = %d, want %d", s.Count("w"), 1<<20)
	}
	oracle := rank.NewRelativeOracle(items)
	for _, phi := range []float64{0.1, 0.5, 0.9, 0.99, 0.999, 0.9999, 1} {
		got, ok := s.Query("k", phi)
		if !ok {
			t.Fatalf("query failed")
		}
		// Deterministic family: the exact relative budget, no slack.
		budget := eps * float64(oracle.TopRank(phi))
		if e := oracle.RankError(got, phi); float64(e) > budget+1e-9 {
			t.Errorf("req phi %g error %d exceeds relative budget %v", phi, e, budget)
		}
	}
	payload, _, err := s.SnapshotPayload()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	r, err := Restore(Config{Eps: eps}, payload)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if r.Count("k") != len(items) || r.Count("w") != 1<<20 {
		t.Fatalf("restored counts = %d/%d", r.Count("k"), r.Count("w"))
	}
	// A restored store keeps merging req payloads per key.
	if _, err := r.MergePayload(payload); err != nil {
		t.Fatalf("merge restored payload: %v", err)
	}
	if r.Count("k") != 2*len(items) {
		t.Fatalf("count after self-merge = %d", r.Count("k"))
	}
	// The tail stays accurate after the self-merge: the doubled stream is the
	// same multiset twice, so the exact maximum is unchanged and req's
	// merge-preserved exact top must still return it at phi=1.
	wantMax := oracle.Select(len(items))
	if got, ok := r.Query("k", 1); !ok || got != wantMax {
		t.Errorf("max after self-merge = %v, %v; want %v", got, ok, wantMax)
	}
}

// TestREQFactoryTortureStableKeys is the store torture cell for the req
// factory: concurrent writers over stable and victim keys, snapshotters and a
// deleter churning alongside, exact counts on keys never deleted, and a
// high-tail accuracy spot check on one key whose substream is recorded.
func TestREQFactoryTortureStableKeys(t *testing.T) {
	s := New(Config{
		Eps:     0.05,
		Shards:  4,
		Factory: func(eps float64) Summary { return req.NewFloat64(eps) },
	})
	const (
		writers        = 8
		opsPerWriter   = 2_000
		stableKeyCount = 5
		victimKeyCount = 3
	)
	stable := make([]string, stableKeyCount)
	for i := range stable {
		stable[i] = fmt.Sprintf("stable-%d", i)
	}
	victims := make([]string, victimKeyCount)
	for i := range victims {
		victims[i] = fmt.Sprintf("victim-%d", i)
	}
	var sent [stableKeyCount]atomic.Int64

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPerWriter; i++ {
				ki := (w + i) % stableKeyCount
				switch i % 4 {
				case 0, 1:
					s.Update(stable[ki], float64(i))
					sent[ki].Add(1)
				case 2:
					s.UpdateBatch(stable[ki], []float64{1, 2, 3})
					sent[ki].Add(3)
				case 3:
					s.Update(victims[(w+i)%victimKeyCount], float64(i))
				}
			}
		}(w)
	}
	stopCh := make(chan struct{})
	var aux sync.WaitGroup
	aux.Add(3)
	go func() {
		defer aux.Done()
		for {
			select {
			case <-stopCh:
				return
			default:
			}
			for _, k := range stable {
				s.Query(k, 0.999) // the tail query req serves
				s.EstimateRank(k, 1)
				s.CDF(k, 2)
			}
		}
	}()
	go func() {
		defer aux.Done()
		for {
			select {
			case <-stopCh:
				return
			default:
			}
			if _, _, err := s.SnapshotPayload(); err != nil {
				t.Errorf("snapshot under load: %v", err)
				return
			}
			s.Keys()
			s.Stats()
		}
	}()
	go func() {
		defer aux.Done()
		for i := 0; ; i++ {
			select {
			case <-stopCh:
				return
			default:
			}
			s.Delete(victims[i%victimKeyCount])
		}
	}()

	wg.Wait()
	close(stopCh)
	aux.Wait()

	for i, k := range stable {
		if got, want := int64(s.Count(k)), sent[i].Load(); got != want {
			t.Errorf("stable key %q lost updates: count %d, want %d", k, got, want)
		}
	}
	// Victim keys recreate cleanly onto fresh req summaries.
	for _, k := range victims {
		s.Delete(k)
		s.Update(k, 42)
		if s.Count(k) != 1 {
			t.Errorf("victim key %q did not recreate cleanly: count %d", k, s.Count(k))
		}
		if v, ok := s.Query(k, 1); !ok || v != 42 {
			t.Errorf("victim key %q query after recreate = %v, %v", k, v, ok)
		}
	}
}
